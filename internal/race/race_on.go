//go:build race

// Package race reports whether the race detector is compiled in, so
// allocation-count tests can skip themselves: race instrumentation
// allocates shadow state that would fail any alloc budget.
package race

// Enabled is true when the binary was built with -race.
const Enabled = true
