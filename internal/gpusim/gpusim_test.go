package gpusim

import (
	"math"
	"math/rand"
	"testing"

	"ifdk/internal/ct/backproject"
	"ifdk/internal/ct/geometry"
	"ifdk/internal/volume"
)

func testGeom() geometry.Params {
	return geometry.Default(48, 48, 40, 20, 20, 20)
}

func randomProjections(g geometry.Params, seed int64) []*volume.Image {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*volume.Image, g.Np)
	for s := range out {
		img := volume.NewImage(g.Nu, g.Nv)
		for n := range img.Data {
			img.Data[n] = rng.Float32()
		}
		out[s] = img
	}
	return out
}

func TestKernelStringsAndTable3(t *testing.T) {
	want := map[Kernel]Characteristics{
		RTK32:   {TextureCache: true},
		BpTex:   {TextureCache: true, TransposeVol: true},
		TexTran: {TextureCache: true, TransposeProj: true, TransposeVol: true},
		BpL1:    {TransposeProj: true, TransposeVol: true},
		L1Tran:  {L1Cache: true, TransposeProj: true, TransposeVol: true},
	}
	names := map[Kernel]string{
		RTK32: "RTK-32", BpTex: "Bp-Tex", TexTran: "Tex-Tran", BpL1: "Bp-L1", L1Tran: "L1-Tran",
	}
	for _, k := range Kernels {
		if k.Characteristics() != want[k] {
			t.Errorf("%v characteristics = %+v, want %+v", k, k.Characteristics(), want[k])
		}
		if k.String() != names[k] {
			t.Errorf("kernel name %q, want %q", k.String(), names[k])
		}
	}
	if RTK32.Proposed() || !L1Tran.Proposed() {
		t.Error("Proposed() classification wrong")
	}
}

func TestSupportedOutput(t *testing.T) {
	dev := TeslaV100()
	// 8 GB output: too large for RTK's dual buffer, fine for shflBP.
	eightGB := int64(8) << 30
	if RTK32.SupportedOutput(eightGB, dev) {
		t.Error("RTK-32 should not support an 8 GB output on a 16 GB device")
	}
	if !L1Tran.SupportedOutput(eightGB, dev) {
		t.Error("L1-Tran should support an 8 GB output")
	}
	if L1Tran.SupportedOutput(17<<30, dev) {
		t.Error("17 GB output cannot fit at all")
	}
	if !RTK32.SupportedOutput(1<<30, dev) {
		t.Error("RTK-32 should support a 1 GB output")
	}
}

// The simulated RTK-32 kernel and the CPU Standard algorithm are
// independent implementations of Alg. 2 — they must agree.
func TestRTK32MatchesCPUStandard(t *testing.T) {
	g := testGeom()
	proj := randomProjections(g, 1)
	gpu := volume.New(g.Nx, g.Ny, g.Nz, volume.IMajor)
	if err := Run(TeslaV100(), g, proj, RTK32, gpu); err != nil {
		t.Fatal(err)
	}
	cpu := volume.New(g.Nx, g.Ny, g.Nz, volume.IMajor)
	task := backproject.Task{Mats: geometry.ProjectionMatrices(g), Proj: proj}
	if err := backproject.Standard(task, cpu, backproject.Options{}); err != nil {
		t.Fatal(err)
	}
	assertClose(t, cpu, gpu, 1e-5)
}

// Every shflBP variant must agree with the CPU Proposed algorithm (and thus
// with the standard one) within the paper's RMSE bound.
func TestShflBPKernelsMatchCPUProposed(t *testing.T) {
	g := testGeom()
	proj := randomProjections(g, 2)
	cpu := volume.New(g.Nx, g.Ny, g.Nz, volume.KMajor)
	task := backproject.Task{Mats: geometry.ProjectionMatrices(g), Proj: proj}
	if err := backproject.Proposed(task, cpu, backproject.Options{}); err != nil {
		t.Fatal(err)
	}
	for _, k := range []Kernel{BpTex, TexTran, BpL1, L1Tran} {
		gpu := volume.New(g.Nx, g.Ny, g.Nz, volume.KMajor)
		if err := Run(TeslaV100(), g, proj, k, gpu); err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		assertClose(t, cpu, gpu, 1e-5)
	}
}

func TestShflBPOddNz(t *testing.T) {
	g := testGeom()
	g.Nz = 13
	proj := randomProjections(g, 3)
	cpu := volume.New(g.Nx, g.Ny, g.Nz, volume.IMajor)
	task := backproject.Task{Mats: geometry.ProjectionMatrices(g), Proj: proj}
	if err := backproject.Standard(task, cpu, backproject.Options{}); err != nil {
		t.Fatal(err)
	}
	gpu := volume.New(g.Nx, g.Ny, g.Nz, volume.KMajor)
	if err := Run(TeslaV100(), g, proj, L1Tran, gpu); err != nil {
		t.Fatal(err)
	}
	assertClose(t, cpu, gpu, 1e-5)
}

func assertClose(t *testing.T, want, got *volume.Volume, tol float64) {
	t.Helper()
	r, err := volume.RMSE(want, got)
	if err != nil {
		t.Fatal(err)
	}
	s := want.Summarize()
	scale := math.Max(math.Abs(float64(s.Min)), math.Abs(float64(s.Max)))
	if scale == 0 {
		scale = 1
	}
	if r/scale > tol {
		t.Errorf("relative RMSE = %g, want < %g", r/scale, tol)
	}
}

func TestRunValidation(t *testing.T) {
	g := testGeom()
	proj := randomProjections(g, 4)
	dev := TeslaV100()
	if err := Run(dev, g, proj[:3], L1Tran, volume.New(g.Nx, g.Ny, g.Nz, volume.KMajor)); err == nil {
		t.Error("short projection list accepted")
	}
	if err := Run(dev, g, proj, L1Tran, volume.New(4, 4, 4, volume.KMajor)); err == nil {
		t.Error("mismatched volume accepted")
	}
	if err := Run(dev, g, proj, L1Tran, volume.New(g.Nx, g.Ny, g.Nz, volume.IMajor)); err == nil {
		t.Error("wrong layout accepted for shflBP")
	}
	if err := Run(dev, g, proj, RTK32, volume.New(g.Nx, g.Ny, g.Nz, volume.KMajor)); err == nil {
		t.Error("wrong layout accepted for RTK-32")
	}
	tiny := dev
	tiny.MemBytes = 1 << 10
	if err := Run(tiny, g, proj, L1Tran, volume.New(g.Nx, g.Ny, g.Nz, volume.KMajor)); err == nil {
		t.Error("out-of-memory problem accepted")
	}
}

func estCfg() EstimateConfig { return EstimateConfig{SampleWarps: 128, BatchSamples: 2} }

// Table-4 shape: the proposed L1-Tran kernel beats RTK-32 by a healthy
// factor on compute-heavy problems (α ≤ a few; the paper reports ≈1.6–1.8×).
func TestL1TranBeatsRTK32(t *testing.T) {
	dev := TeslaV100()
	pr := geometry.Problem{Nu: 512, Nv: 512, Np: 1024, Nx: 512, Ny: 512, Nz: 512}
	rtk := Estimate(dev, pr, RTK32, estCfg())
	l1 := Estimate(dev, pr, L1Tran, estCfg())
	if !rtk.Supported || !l1.Supported {
		t.Fatal("both kernels should support this problem")
	}
	ratio := l1.GUPS / rtk.GUPS
	if ratio < 1.2 || ratio > 3.5 {
		t.Errorf("L1-Tran/RTK-32 GUPS ratio = %g (L1 %g, RTK %g), want within [1.2, 3.5]",
			ratio, l1.GUPS, rtk.GUPS)
	}
}

// Table-4 shape: the uncached Bp-L1 kernel is far slower than L1-Tran.
func TestBpL1IsSlowest(t *testing.T) {
	dev := TeslaV100()
	pr := geometry.Problem{Nu: 512, Nv: 512, Np: 1024, Nx: 256, Ny: 256, Nz: 256}
	bp := Estimate(dev, pr, BpL1, estCfg())
	l1 := Estimate(dev, pr, L1Tran, estCfg())
	if bp.GUPS >= l1.GUPS {
		t.Errorf("Bp-L1 (%g GUPS) should be slower than L1-Tran (%g GUPS)", bp.GUPS, l1.GUPS)
	}
}

// Table-4 shape: performance collapses as α grows (small outputs amortize
// nothing).
func TestAlphaDegradation(t *testing.T) {
	dev := TeslaV100()
	big := geometry.Problem{Nu: 2048, Nv: 2048, Np: 1024, Nx: 1024, Ny: 1024, Nz: 1024}
	small := geometry.Problem{Nu: 2048, Nv: 2048, Np: 1024, Nx: 128, Ny: 128, Nz: 128}
	gBig := Estimate(dev, big, L1Tran, estCfg())
	gSmall := Estimate(dev, small, L1Tran, estCfg())
	if gSmall.GUPS >= gBig.GUPS {
		t.Errorf("α=1024 (%g GUPS) should be slower than α=4 (%g GUPS)", gSmall.GUPS, gBig.GUPS)
	}
}

// Table 4 prints N/A for RTK-32 when the output exceeds 8 GB.
func TestEstimateRTKUnsupported(t *testing.T) {
	dev := TeslaV100()
	pr := geometry.Problem{Nu: 512, Nv: 512, Np: 1024, Nx: 1024, Ny: 1024, Nz: 2048}
	rep := Estimate(dev, pr, RTK32, estCfg())
	if rep.Supported {
		t.Error("RTK-32 should be unsupported for a 1k×1k×2k output")
	}
	if rep.GUPS != 0 {
		t.Error("unsupported estimate should not report GUPS")
	}
}

// The texture path should be relatively insensitive to the projection
// transpose (paper observation I in Sec. 5.2).
func TestTextureInsensitiveToTranspose(t *testing.T) {
	dev := TeslaV100()
	pr := geometry.Problem{Nu: 512, Nv: 512, Np: 1024, Nx: 512, Ny: 512, Nz: 512}
	bt := Estimate(dev, pr, BpTex, estCfg())
	tt := Estimate(dev, pr, TexTran, estCfg())
	ratio := tt.KernelSeconds / bt.KernelSeconds
	if ratio < 0.4 || ratio > 2.5 {
		t.Errorf("texture kernels diverge too much with transpose: ratio %g", ratio)
	}
}

func TestEstimateReportConsistency(t *testing.T) {
	dev := TeslaV100()
	pr := geometry.Problem{Nu: 512, Nv: 512, Np: 512, Nx: 256, Ny: 256, Nz: 256}
	for _, k := range Kernels {
		rep := Estimate(dev, pr, k, estCfg())
		if !rep.Supported {
			t.Fatalf("%v unsupported unexpectedly", k)
		}
		if rep.Updates != pr.Updates() {
			t.Errorf("%v: updates %g, want %g", k, rep.Updates, pr.Updates())
		}
		if rep.GUPS <= 0 || rep.TotalSeconds <= 0 || rep.CoreOps <= 0 {
			t.Errorf("%v: non-positive report fields: %+v", k, rep)
		}
		if rep.TotalSeconds < rep.KernelSeconds {
			t.Errorf("%v: total < kernel time", k)
		}
		ch := k.Characteristics()
		if ch.TransposeProj && rep.TransposeSeconds <= 0 {
			t.Errorf("%v: missing transpose time", k)
		}
		if !ch.TransposeProj && rep.TransposeSeconds != 0 {
			t.Errorf("%v: unexpected transpose time", k)
		}
		if rep.Bound() == "" {
			t.Errorf("%v: empty bound", k)
		}
		wantGUPS := rep.Updates / rep.TotalSeconds / (1 << 30)
		if math.Abs(rep.GUPS-wantGUPS)/wantGUPS > 1e-9 {
			t.Errorf("%v: GUPS inconsistent", k)
		}
	}
}

// The proposed kernel must do fewer core ops per update than the standard
// one — the 1/6 projection-cost reduction shows up as a large drop.
func TestCoreOpsReduction(t *testing.T) {
	dev := TeslaV100()
	pr := geometry.Problem{Nu: 512, Nv: 512, Np: 512, Nx: 256, Ny: 256, Nz: 256}
	rtk := Estimate(dev, pr, RTK32, estCfg())
	l1 := Estimate(dev, pr, L1Tran, estCfg())
	opsRTK := rtk.CoreOps / rtk.Updates
	opsL1 := l1.CoreOps / l1.Updates
	if opsL1 >= 0.7*opsRTK {
		t.Errorf("ops/update: proposed %g vs standard %g — expected ≥ 30%% reduction", opsL1, opsRTK)
	}
}

func TestV100Model(t *testing.T) {
	dev := TeslaV100()
	// 80 SMs × 64 cores × 1.53 GHz ≈ 7.8 TFMA/s (15.7 TFLOP/s).
	if f := dev.FP32PerSecond(); math.Abs(f-7.8336e12)/7.8336e12 > 1e-9 {
		t.Errorf("FP32PerSecond = %g", f)
	}
	if dev.MemBytes != 16<<30 {
		t.Errorf("V100 memory = %d", dev.MemBytes)
	}
}

func BenchmarkEstimateL1Tran(b *testing.B) {
	dev := TeslaV100()
	pr := geometry.Problem{Nu: 1024, Nv: 1024, Np: 1024, Nx: 512, Ny: 512, Nz: 512}
	for i := 0; i < b.N; i++ {
		Estimate(dev, pr, L1Tran, EstimateConfig{SampleWarps: 64, BatchSamples: 1})
	}
}

func BenchmarkFunctionalL1Tran(b *testing.B) {
	g := geometry.Default(64, 64, 32, 32, 32, 32)
	proj := randomProjections(g, 9)
	vol := volume.New(g.Nx, g.Ny, g.Nz, volume.KMajor)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Run(TeslaV100(), g, proj, L1Tran, vol); err != nil {
			b.Fatal(err)
		}
	}
}
