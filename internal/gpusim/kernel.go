package gpusim

import "fmt"

// Kernel identifies one of the five back-projection CUDA kernels evaluated
// in the paper's Tables 3 and 4.
type Kernel int

const (
	// RTK32 is the production RTK kernel (kernel_fdk_3Dgrid) extended to
	// 32-projection batches and 32-bit texture fetches: the standard
	// algorithm (Alg. 2) with per-voxel threads and texture-cached
	// projections.
	RTK32 Kernel = iota
	// BpTex is the proposed shflBP kernel fetching untransposed projections
	// through the 2-D layered texture cache, volume stored k-major.
	BpTex
	// TexTran is shflBP with texture fetches on transposed projections.
	TexTran
	// BpL1 is shflBP reading transposed projections from global memory
	// without any cache benefit (neither texture nor __ldg L1 hints).
	BpL1
	// L1Tran is shflBP reading transposed projections through the L1 cache
	// (__ldg): the paper's best kernel.
	L1Tran
)

// Kernels lists all five in Table-3 order.
var Kernels = []Kernel{RTK32, BpTex, TexTran, BpL1, L1Tran}

// String implements fmt.Stringer using the paper's names.
func (k Kernel) String() string {
	switch k {
	case RTK32:
		return "RTK-32"
	case BpTex:
		return "Bp-Tex"
	case TexTran:
		return "Tex-Tran"
	case BpL1:
		return "Bp-L1"
	case L1Tran:
		return "L1-Tran"
	default:
		return fmt.Sprintf("Kernel(%d)", int(k))
	}
}

// Characteristics reproduces the rows of Table 3.
type Characteristics struct {
	TextureCache  bool // projections fetched through the 2-D texture cache
	L1Cache       bool // projections fetched through the L1 cache (__ldg)
	TransposeProj bool // projections transposed before the kernel
	TransposeVol  bool // volume stored in the transposed (k-major) layout
}

// Characteristics returns the Table-3 row for the kernel.
func (k Kernel) Characteristics() Characteristics {
	switch k {
	case RTK32:
		return Characteristics{TextureCache: true}
	case BpTex:
		return Characteristics{TextureCache: true, TransposeVol: true}
	case TexTran:
		return Characteristics{TextureCache: true, TransposeProj: true, TransposeVol: true}
	case BpL1:
		return Characteristics{TransposeProj: true, TransposeVol: true}
	case L1Tran:
		return Characteristics{L1Cache: true, TransposeProj: true, TransposeVol: true}
	default:
		return Characteristics{}
	}
}

// Proposed reports whether the kernel uses the proposed shflBP algorithm
// (Alg. 4 + warp shuffle); RTK-32 is the standard Alg. 2.
func (k Kernel) Proposed() bool { return k != RTK32 }

// NBatch is the number of projections processed per kernel pass
// (Listing 1: `__constant float4 ProjMat[32][3]`).
const NBatch = 32

// rtkMaxOutputBytes is RTK's output-size ceiling: it keeps a dual volume
// buffer, so on a 16 GB device the volume may not exceed 8 GB (Sec. 5.2).
const rtkMaxOutputBytes = 8 << 30

// SupportedOutput reports whether the kernel can generate an output volume
// of the given byte size on the device (Table 4 prints N/A otherwise).
func (k Kernel) SupportedOutput(outputBytes int64, dev Device) bool {
	if k == RTK32 {
		return outputBytes <= rtkMaxOutputBytes && 2*outputBytes < dev.MemBytes
	}
	return outputBytes < dev.MemBytes
}
