package gpusim

import (
	"math"

	"ifdk/internal/ct/geometry"
)

// EstimateConfig controls the sampled access-stream simulation.
type EstimateConfig struct {
	// SampleWarps is the per-problem budget of simulated warps (default
	// 384). Larger budgets tighten the cache-hit-rate estimate.
	SampleWarps int
	// BatchSamples is how many projection batches are sampled for angular
	// diversity (default 4).
	BatchSamples int
}

func (c EstimateConfig) withDefaults() EstimateConfig {
	if c.SampleWarps <= 0 {
		c.SampleWarps = 384
	}
	if c.BatchSamples <= 0 {
		c.BatchSamples = 4
	}
	return c
}

// Report is the outcome of a kernel time estimate — one cell of Table 4.
type Report struct {
	Kernel    Kernel
	Problem   geometry.Problem
	Supported bool // false → the paper prints N/A

	Updates        float64 // voxel updates Nx·Ny·Nz·Np
	CoreOps        float64 // FP32 core-cycle equivalents
	SectorAccesses float64 // 32-byte cache sector requests
	TexSamples     float64 // bilinear texture samples (texture kernels)
	DRAMBytes      float64 // bytes moved from device memory
	CacheHitRate   float64 // projection-fetch hit rate (L1 or texture)

	ComputeSeconds   float64 // FP32 pipeline roofline
	MemSeconds       float64 // DRAM roofline
	CacheSeconds     float64 // L1/texture throughput roofline
	LaunchSeconds    float64 // kernel-launch overhead
	TransposeSeconds float64 // projection transpose (Tran kernels)
	KernelSeconds    float64 // max of rooflines + launch
	TotalSeconds     float64 // kernel + transpose
	GUPS             float64 // updates / total / 2^30
}

// Bound names the roofline that limits the kernel.
func (r Report) Bound() string {
	switch math.Max(r.ComputeSeconds, math.Max(r.MemSeconds, r.CacheSeconds)) {
	case r.ComputeSeconds:
		return "compute"
	case r.MemSeconds:
		return "dram"
	default:
		return "cache"
	}
}

// Core-op costs (FP32 core-cycle equivalents): an FMA is 1, a reciprocal 4
// (quarter-rate SFU), a shuffle 1 issue slot, a bilinear interpolation ~10
// (fraction extraction, six lerp FMAs, address math).
const (
	opsDot4   = 4
	opsRcp    = 4
	opsInterp = 10
)

// Estimate predicts the kernel's Table-4 performance for the problem by
// simulating a sample of warps: their core operations are counted and their
// projection fetches are pushed through the modelled cache, then totals are
// scaled to the full problem and converted to time with a three-term
// roofline (FP32 pipeline, DRAM bandwidth, cache throughput) plus launch
// and transpose overheads.
func Estimate(dev Device, pr geometry.Problem, k Kernel, cfg EstimateConfig) Report {
	cfg = cfg.withDefaults()
	rep := Report{Kernel: k, Problem: pr, Updates: pr.Updates()}
	rep.Supported = k.SupportedOutput(pr.OutputBytes(), dev)
	if !rep.Supported {
		return rep
	}
	g := pr.Params()
	ch := k.Characteristics()

	var cache *Cache
	switch {
	case ch.TextureCache:
		cache = NewCache(dev.Tex)
	case ch.L1Cache:
		cache = NewCache(dev.L1)
	default:
		cache = nil // Bp-L1: every coalesced sector goes to DRAM
	}

	w := &walker{dev: dev, g: g, ch: ch, cache: cache}
	batches := (g.Np + NBatch - 1) / NBatch
	batchStep := max(1, batches/cfg.BatchSamples)
	warpsPerBatch := max(1, cfg.SampleWarps/min(cfg.BatchSamples, batches))
	for b := 0; b < batches; b += batchStep {
		s0 := b * NBatch
		nb := min(NBatch, g.Np-s0)
		w.sampleBatch(s0, nb, warpsPerBatch, k)
	}

	scale := rep.Updates / w.updates
	rep.CoreOps = w.coreOps * scale
	rep.SectorAccesses = w.sectors * scale
	rep.TexSamples = w.samples * scale
	missBytes := w.missBytes * scale
	volBytes := w.volBytes * scale
	rep.DRAMBytes = missBytes + volBytes
	if cache != nil {
		rep.CacheHitRate = cache.HitRate()
	}

	rep.ComputeSeconds = rep.CoreOps / (dev.FP32PerSecond() * dev.IssueEff)
	rep.MemSeconds = rep.DRAMBytes / dev.DRAMBw
	sectorRate := dev.UncachedSectorsPerCyc
	switch {
	case ch.TextureCache:
		sectorRate = dev.TexSectorsPerCyc
	case ch.L1Cache:
		sectorRate = dev.L1SectorsPerCyc
	}
	rep.CacheSeconds = rep.SectorAccesses / (float64(dev.SMs) * sectorRate * dev.ClockHz)
	// The texture unit also rate-limits whole bilinear samples (quads):
	// the filtering hardware serializes, which caps the texture kernels
	// near the paper's ~107–118 GUPS plateau.
	if ch.TextureCache && dev.TexSamplesPerCyc > 0 {
		sampleSeconds := rep.TexSamples / (float64(dev.SMs) * dev.TexSamplesPerCyc * dev.ClockHz)
		if sampleSeconds > rep.CacheSeconds {
			rep.CacheSeconds = sampleSeconds
		}
	}
	rep.LaunchSeconds = float64(batches) * dev.LaunchOH
	rep.KernelSeconds = math.Max(rep.ComputeSeconds, math.Max(rep.MemSeconds, rep.CacheSeconds)) + rep.LaunchSeconds
	if ch.TransposeProj {
		bytes := 2 * 4 * float64(g.Nu) * float64(g.Nv) * float64(g.Np)
		rep.TransposeSeconds = bytes / dev.TransposeBw
	}
	rep.TotalSeconds = rep.KernelSeconds + rep.TransposeSeconds
	rep.GUPS = rep.Updates / rep.TotalSeconds / (1 << 30)
	return rep
}

// walker accumulates sampled-warp statistics.
type walker struct {
	dev   Device
	g     geometry.Params
	ch    Characteristics
	cache *Cache

	updates   float64
	coreOps   float64
	sectors   float64
	samples   float64
	missBytes float64
	volBytes  float64

	sectorBuf []int64
}

// sampleBatch simulates warps of one 32-projection kernel pass. Warps are
// walked in grid order (contiguous columns) so neighbouring warps exercise
// the cache the way neighbouring thread blocks do.
func (w *walker) sampleBatch(s0, nb, budget int, k Kernel) {
	g := w.g
	mats := make([]geometry.ProjMat, nb)
	for t := range mats {
		mats[t] = geometry.ProjectionMatrix(g, g.Beta(s0+t))
	}
	if k == RTK32 {
		w.sampleRTKWarps(mats, budget)
		return
	}
	w.sampleShflWarps(mats, budget)
}

// sampleShflWarps walks shflBP warps: lanes along Z (lower half), one warp
// per (i, j, zWarp). Sampling covers a few j rows and walks i contiguously.
func (w *walker) sampleShflWarps(mats []geometry.ProjMat, budget int) {
	g := w.g
	nb := len(mats)
	halfUp := (g.Nz + 1) / 2
	lanes := min(32, halfUp)
	jRows := min(4, g.Ny)
	perRow := max(1, budget/jRows)
	for jr := 0; jr < jRows; jr++ {
		j := jr * g.Ny / jRows
		n := min(perRow, g.Nx)
		for i := 0; i < n; i++ {
			w.shflWarp(mats, i, j, 0, lanes, nb)
		}
	}
}

func (w *walker) shflWarp(mats []geometry.ProjMat, i, j, zBase, lanes, nb int) {
	g := w.g
	fi, fj := float64(i), float64(j)
	// Setup: each lane computes two inner products and a reciprocal.
	w.coreOps += float64(lanes) * (2*opsDot4 + opsRcp + 1)
	for s := 0; s < nb; s++ {
		u, _, z := mats[s].Project(fi, fj, float64(zBase))
		f := 1 / z
		// Per lane per s: 2 shuffles + y dot + v mul + vsym + wdis +
		// 2 interpolations + 2 mad.
		w.coreOps += float64(lanes) * (2 + opsDot4 + 1 + 1 + 1 + 2*opsInterp + 2)
		w.updates += float64(lanes) * 2
		// Detector rows for the warp's lanes.
		row1 := mats[s].Row(1)
		vBase := (row1[0]*fi + row1[1]*fj + row1[2]*float64(zBase) + row1[3]) * f
		vStep := row1[2] * f
		// Two samples per lane: v and its mirror.
		w.samples += float64(lanes) * 2
		w.touchBilinear(s, u, vBase, vStep, lanes)
		vSymBase := float64(g.Nv-1) - vBase
		w.touchBilinear(s, u, vSymBase, -vStep, lanes)
	}
	// Volume traffic: read+write of both halves once per batch pass.
	w.volBytes += float64(lanes) * 2 * 8
}

// sampleRTKWarps walks RTK-32 warps: lanes along X, one warp per
// (xWarp, j, k) cell.
func (w *walker) sampleRTKWarps(mats []geometry.ProjMat, budget int) {
	g := w.g
	nb := len(mats)
	lanes := min(32, g.Nx)
	kRows := min(4, g.Nz)
	perRow := max(1, budget/kRows)
	for kr := 0; kr < kRows; kr++ {
		k := kr * g.Nz / kRows
		n := min(perRow, g.Ny)
		for j := 0; j < n; j++ {
			w.rtkWarp(mats, j, k, lanes, nb)
		}
	}
}

func (w *walker) rtkWarp(mats []geometry.ProjMat, j, k, lanes, nb int) {
	for s := 0; s < nb; s++ {
		m := mats[s]
		w.coreOps += float64(lanes) * (3*opsDot4 + opsRcp + 2 + 1 + opsInterp + 1)
		w.updates += float64(lanes)
		// u varies along the lanes (consecutive i), v nearly constant.
		u0, v0, _ := m.Project(0, float64(j), float64(k))
		u1, v1, _ := m.Project(float64(lanes-1), float64(j), float64(k))
		uStep := (u1 - u0) / math.Max(1, float64(lanes-1))
		vStep := (v1 - v0) / math.Max(1, float64(lanes-1))
		w.samples += float64(lanes)
		w.touchBilinear2D(s, u0, uStep, v0, vStep, lanes)
	}
	w.volBytes += float64(lanes) * 8
}

// touchBilinear records the sectors of a warp instruction where u is uniform
// across lanes and v advances by vStep per lane (the shflBP pattern).
func (w *walker) touchBilinear(s int, u, vBase, vStep float64, lanes int) {
	w.sectorBuf = w.sectorBuf[:0]
	iu := int(math.Floor(u))
	for l := 0; l < lanes; l++ {
		v := vBase + vStep*float64(l)
		iv := int(math.Floor(v))
		for du := 0; du <= 1; du++ {
			for dv := 0; dv <= 1; dv++ {
				w.addSector(s, iu+du, iv+dv)
			}
		}
	}
	w.flushSectors()
}

// touchBilinear2D records the sectors of a warp instruction where both u
// and v advance per lane (the RTK pattern).
func (w *walker) touchBilinear2D(s int, u0, uStep, v0, vStep float64, lanes int) {
	w.sectorBuf = w.sectorBuf[:0]
	for l := 0; l < lanes; l++ {
		iu := int(math.Floor(u0 + uStep*float64(l)))
		iv := int(math.Floor(v0 + vStep*float64(l)))
		for du := 0; du <= 1; du++ {
			for dv := 0; dv <= 1; dv++ {
				w.addSector(s, iu+du, iv+dv)
			}
		}
	}
	w.flushSectors()
}

// addSector maps texel (u, v) of layer s to a cache sector key under the
// kernel's memory path and stages it for coalescing.
func (w *walker) addSector(s, u, v int) {
	g := w.g
	if u < 0 || v < 0 || u >= g.Nu || v >= g.Nv {
		return // border texels come from the boundary handler, not memory
	}
	var key int64
	switch {
	case w.ch.TextureCache:
		// Block-linear 4×2-texel sector tiles; after a transpose the
		// texture is (Nv × Nu) so the tile axes swap with the layout.
		if w.ch.TransposeProj {
			key = morton(v>>2, u>>1)
		} else {
			key = morton(u>>2, v>>1)
		}
	default:
		// Linear layout: 32-byte sectors of 8 consecutive texels.
		var elem int
		if w.ch.TransposeProj {
			elem = u*g.Nv + v
		} else {
			elem = v*g.Nu + u
		}
		key = int64(elem >> 3)
	}
	key |= int64(s) << 40 // layer
	w.sectorBuf = append(w.sectorBuf, key)
}

// flushSectors coalesces the staged lane requests and charges cache or
// DRAM. Coalescing uses a bounded window of recently seen sectors — lane
// requests are spatially ordered, so near-duplicates cluster; the window
// mirrors the hardware's finite coalescing buffers. Duplicates that slip
// past the window hit the cache anyway, so only the raw sector-access count
// is slightly conservative.
func (w *walker) flushSectors() {
	const window = 8
	var recent [window]int64
	var filled, cursor int
	for _, key := range w.sectorBuf {
		dup := false
		for m := 0; m < filled; m++ {
			if recent[m] == key {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		recent[cursor] = key
		cursor = (cursor + 1) % window
		if filled < window {
			filled++
		}
		w.sectors++
		if w.cache == nil {
			w.missBytes += 32
		} else if !w.cache.Access(key) {
			w.missBytes += 32
		}
	}
}
