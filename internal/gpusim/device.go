// Package gpusim simulates the GPU back-projection kernels of the paper's
// Sec. 3.3 and Table 3 on a modelled NVIDIA Tesla V100. Go has no CUDA, so
// this package substitutes the real GPU (see DESIGN.md) with:
//
//   - a functional warp-level executor (Run) that evaluates the kernels
//     lane-by-lane with true shuffle semantics, producing real voxel values
//     that are verified against the CPU reference algorithms; and
//   - a sampled access-stream simulator (Estimate) that walks a subset of
//     warps, pushes their memory transactions through set-associative L1
//     and 2-D texture cache models, counts core operations, and converts
//     the totals into kernel time with a roofline model — producing the
//     GUPS numbers of Table 4.
//
// The performance mechanisms are the paper's own: the proposed kernel does
// fewer inner products per update (Theorems 2+3 via warp shuffle), halves
// the coordinate work (Theorem 1 symmetry), and — after transposing the
// projections — turns the warp's detector-column accesses into contiguous
// lines, which the L1 path rewards and the texture path tolerates.
package gpusim

// CacheConfig describes one cache level.
type CacheConfig struct {
	SizeBytes int // total capacity
	LineBytes int // line/sector granularity
	Ways      int // associativity
}

// Sets returns the number of sets.
func (c CacheConfig) Sets() int {
	s := c.SizeBytes / (c.LineBytes * c.Ways)
	if s < 1 {
		return 1
	}
	return s
}

// Device models the throughput-relevant parameters of a GPU. Three
// calibration constants capture effects below the model's abstraction
// level; they are fixed once for the device, not per kernel:
//
//   - IssueEff: the achieved fraction of peak FP32 issue rate under real
//     instruction mix and latency (memory-heavy kernels do not dual-issue
//     perfectly);
//   - TexSectorsPerCyc / L1SectorsPerCyc: sector throughput of the texture
//     unit versus the __ldg L1 path (the texture unit filters but serializes
//     quads; the LSU sustains more sectors per cycle on coalesced lines);
//   - UncachedSectorsPerCyc: the latency-limited throughput of scattered
//     global loads that bypass both caches — the reason the paper's Bp-L1
//     column collapses.
type Device struct {
	Name       string
	SMs        int     // streaming multiprocessors
	ClockHz    float64 // SM clock
	CoresPerSM int     // FP32 cores per SM (FMA per cycle)
	DRAMBw     float64 // device memory bandwidth, bytes/s
	MemBytes   int64   // device memory capacity
	L1         CacheConfig
	Tex        CacheConfig

	IssueEff              float64 // achieved fraction of peak FP32 issue rate
	TexSectorsPerCyc      float64 // texture-path sectors per cycle per SM
	TexSamplesPerCyc      float64 // bilinear texture samples per cycle per SM
	L1SectorsPerCyc       float64 // __ldg L1-path sectors per cycle per SM
	UncachedSectorsPerCyc float64 // cache-bypassing load sectors per cycle per SM

	LaunchOH    float64 // kernel launch overhead, seconds
	TransposeBw float64 // effective bandwidth of the projection-transpose kernel, bytes/s
	PCIeBw      float64 // host↔device bandwidth per direction, bytes/s
}

// TeslaV100 returns the model of the paper's evaluation GPU: 80 SMs at
// 1.53 GHz with 64 FP32 cores each (15.7 TFLOP/s), 900 GB/s HBM2 and 16 GB
// of device memory, attached via PCIe gen3 x16 (the paper measured
// 11.9 GB/s per connector, Sec. 5.3.3). The calibration constants were set
// once so the L1-Tran kernel lands near the paper's ~200 GUPS on α ≤ 8
// problems; all relative behaviour then follows from the model.
func TeslaV100() Device {
	return Device{
		Name:       "Tesla V100-PCIe-16GB",
		SMs:        80,
		ClockHz:    1.53e9,
		CoresPerSM: 64,
		DRAMBw:     900e9,
		MemBytes:   16 << 30,
		L1:         CacheConfig{SizeBytes: 64 << 10, LineBytes: 32, Ways: 4},
		Tex:        CacheConfig{SizeBytes: 32 << 10, LineBytes: 32, Ways: 8},

		IssueEff:              0.42,
		TexSectorsPerCyc:      1.0,
		TexSamplesPerCyc:      1.0,
		L1SectorsPerCyc:       4.0,
		UncachedSectorsPerCyc: 0.0625,

		LaunchOH:    5e-6,
		TransposeBw: 130e9,
		PCIeBw:      11.9e9,
	}
}

// FP32PerSecond returns the peak FP32 core-op rate (1 FMA = 1 core-op).
func (d Device) FP32PerSecond() float64 {
	return float64(d.SMs) * float64(d.CoresPerSM) * d.ClockHz
}
