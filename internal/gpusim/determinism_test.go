package gpusim

import (
	"testing"

	"ifdk/internal/ct/geometry"
	"ifdk/internal/volume"
)

func newKVol(g geometry.Params) *volume.Volume {
	return volume.New(g.Nx, g.Ny, g.Nz, volume.KMajor)
}

// Estimates must be fully deterministic: the sampled walk uses no random
// source, so repeated runs agree bit-for-bit (a requirement for regenerable
// tables).
func TestEstimateDeterministic(t *testing.T) {
	dev := TeslaV100()
	pr := geometry.Problem{Nu: 512, Nv: 512, Np: 512, Nx: 256, Ny: 256, Nz: 256}
	for _, k := range Kernels {
		a := Estimate(dev, pr, k, estCfg())
		b := Estimate(dev, pr, k, estCfg())
		if a.GUPS != b.GUPS || a.DRAMBytes != b.DRAMBytes || a.CoreOps != b.CoreOps {
			t.Errorf("%v: estimate not deterministic", k)
		}
	}
}

// More sampled warps must not change the order-of-magnitude story — the
// estimator converges rather than drifting.
func TestEstimateSampleStability(t *testing.T) {
	dev := TeslaV100()
	pr := geometry.Problem{Nu: 512, Nv: 512, Np: 512, Nx: 256, Ny: 256, Nz: 256}
	small := Estimate(dev, pr, L1Tran, EstimateConfig{SampleWarps: 64, BatchSamples: 1})
	large := Estimate(dev, pr, L1Tran, EstimateConfig{SampleWarps: 512, BatchSamples: 4})
	ratio := small.GUPS / large.GUPS
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("estimate unstable across sampling budgets: %g vs %g GUPS", small.GUPS, large.GUPS)
	}
}

// Functional runs accumulate: two Run calls double the volume, the property
// iterative solvers rely on.
func TestRunAccumulates(t *testing.T) {
	g := geometry.Default(32, 32, 8, 12, 12, 12)
	proj := randomProjections(g, 11)
	once := newKVol(g)
	if err := Run(TeslaV100(), g, proj, L1Tran, once); err != nil {
		t.Fatal(err)
	}
	twice := newKVol(g)
	for n := 0; n < 2; n++ {
		if err := Run(TeslaV100(), g, proj, L1Tran, twice); err != nil {
			t.Fatal(err)
		}
	}
	for n := range once.Data {
		want := 2 * once.Data[n]
		got := twice.Data[n]
		diff := float64(got - want)
		if diff > 1e-4 || diff < -1e-4 {
			t.Fatalf("voxel %d: %g after two runs, want %g", n, got, want)
		}
	}
}
