package gpusim

import (
	"testing"
	"testing/quick"
)

func TestCacheHitAfterMiss(t *testing.T) {
	c := NewCache(CacheConfig{SizeBytes: 1024, LineBytes: 32, Ways: 2})
	if c.Access(5) {
		t.Error("first access should miss")
	}
	if !c.Access(5) {
		t.Error("second access should hit")
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Errorf("hits/misses = %d/%d", c.Hits(), c.Misses())
	}
	if c.HitRate() != 0.5 {
		t.Errorf("hit rate = %g", c.HitRate())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// One set, 2 ways: keys mapping to the same set evict in LRU order.
	c := NewCache(CacheConfig{SizeBytes: 64, LineBytes: 32, Ways: 2}) // 1 set
	c.Access(1)
	c.Access(2)
	c.Access(1) // 1 becomes MRU
	c.Access(3) // evicts 2
	if !c.Access(1) {
		t.Error("1 should still be cached")
	}
	if c.Access(2) {
		t.Error("2 should have been evicted")
	}
}

func TestCacheFullyAssociativeRetention(t *testing.T) {
	// A fully associative cache (one set) retains exactly Ways lines.
	cfg := CacheConfig{SizeBytes: 256, LineBytes: 32, Ways: 8} // 1 set
	c := NewCache(cfg)
	for k := int64(0); k < 8; k++ {
		c.Access(k)
	}
	for k := int64(0); k < 8; k++ {
		if !c.Access(k) {
			t.Errorf("key %d should still be resident", k)
		}
	}
	c.Access(100) // evicts the LRU line (key 0)
	if c.Access(0) {
		t.Error("key 0 should have been evicted")
	}
}

func TestCacheReset(t *testing.T) {
	c := NewCache(CacheConfig{SizeBytes: 1024, LineBytes: 32, Ways: 4})
	c.Access(1)
	c.Access(1)
	c.Reset()
	if c.Hits() != 0 || c.Misses() != 0 {
		t.Error("counters survived Reset")
	}
	if c.Access(1) {
		t.Error("contents survived Reset")
	}
	if c.HitRate() != 0 {
		t.Error("hit rate before any access should be 0")
	}
}

func TestCacheWorkingSetFits(t *testing.T) {
	// A working set comfortably below capacity mostly hits on re-walk
	// (hashed set mapping makes per-set occupancy statistical, so demand
	// near-perfect rather than perfect retention).
	cfg := CacheConfig{SizeBytes: 64 << 10, LineBytes: 32, Ways: 4} // 2048 lines
	c := NewCache(cfg)
	const ws = 256
	for k := int64(0); k < ws; k++ {
		c.Access(k)
	}
	before := c.Hits()
	for k := int64(0); k < ws; k++ {
		c.Access(k)
	}
	hits := c.Hits() - before
	if hits < ws*95/100 {
		t.Errorf("re-walk hits = %d of %d, want ≥ 95%%", hits, ws)
	}
}

func TestCacheSetsMinimumOne(t *testing.T) {
	cfg := CacheConfig{SizeBytes: 16, LineBytes: 32, Ways: 4}
	if cfg.Sets() != 1 {
		t.Errorf("Sets() = %d, want 1", cfg.Sets())
	}
}

// Property: morton is injective on the 16-bit grid and preserves 2-D
// locality (adjacent tiles differ in few bits).
func TestMortonInjectiveProperty(t *testing.T) {
	f := func(x1, y1, x2, y2 uint16) bool {
		a := morton(int(x1), int(y1))
		b := morton(int(x2), int(y2))
		if x1 == x2 && y1 == y2 {
			return a == b
		}
		return a != b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMortonInterleaving(t *testing.T) {
	if morton(1, 0) != 1 {
		t.Errorf("morton(1,0) = %d", morton(1, 0))
	}
	if morton(0, 1) != 2 {
		t.Errorf("morton(0,1) = %d", morton(0, 1))
	}
	if morton(3, 3) != 15 {
		t.Errorf("morton(3,3) = %d", morton(3, 3))
	}
}
