package gpusim

import (
	"fmt"

	"ifdk/internal/ct/geometry"
	"ifdk/internal/ct/interp"
	"ifdk/internal/volume"
)

// Run executes the kernel functionally on the simulated device, exactly
// following the lane/shuffle semantics of Listing 1, and accumulates into
// the volume. RTK-32 expects an i-major volume; the shflBP kernels expect
// k-major (their "Transpose Volume" characteristic).
//
// This is the correctness half of the GPU substitution: for small problems
// the output is compared against the CPU reference algorithms (RMSE < 1e-5,
// the paper's own verification bound).
func Run(dev Device, g geometry.Params, proj []*volume.Image, k Kernel, vol *volume.Volume) error {
	if len(proj) != g.Np {
		return fmt.Errorf("gpusim: %d projections for Np = %d", len(proj), g.Np)
	}
	if vol.Nx != g.Nx || vol.Ny != g.Ny || vol.Nz != g.Nz {
		return fmt.Errorf("gpusim: volume %dx%dx%d does not match geometry", vol.Nx, vol.Ny, vol.Nz)
	}
	need := int64(4) * (int64(vol.NumVoxels()) + int64(g.Nu)*int64(g.Nv)*NBatch)
	if k == RTK32 {
		need += 4 * int64(vol.NumVoxels()) // dual buffer
	}
	if need > dev.MemBytes {
		return fmt.Errorf("gpusim: problem needs %d bytes, device has %d", need, dev.MemBytes)
	}
	mats := geometry.ProjectionMatrices(g)
	if k == RTK32 {
		if vol.Layout != volume.IMajor {
			return fmt.Errorf("gpusim: RTK-32 requires an i-major volume")
		}
		return runRTK32(g, proj, mats, vol)
	}
	if vol.Layout != volume.KMajor {
		return fmt.Errorf("gpusim: %v requires a k-major volume", k)
	}
	return runShflBP(g, proj, mats, vol, k.Characteristics().TransposeProj)
}

// runRTK32 mirrors RTK's kernel_fdk_3Dgrid: one thread per voxel, a batch
// of 32 projection matrices in constant memory, three inner products and a
// texture fetch per projection (Alg. 2).
func runRTK32(g geometry.Params, proj []*volume.Image, mats []geometry.ProjMat, vol *volume.Volume) error {
	nx, ny, nz := g.Nx, g.Ny, g.Nz
	for s0 := 0; s0 < g.Np; s0 += NBatch {
		s1 := min(s0+NBatch, g.Np)
		rows := make([][3][4]float32, s1-s0)
		data := make([][]float32, s1-s0)
		for t := range rows {
			rows[t] = mats[s0+t].Rows32()
			data[t] = proj[s0+t].Data
		}
		for k := 0; k < nz; k++ {
			fk := float32(k)
			for j := 0; j < ny; j++ {
				fj := float32(j)
				base := (k*ny + j) * nx
				for i := 0; i < nx; i++ {
					fi := float32(i)
					var sum float32
					for t := range rows {
						r := &rows[t]
						x := r[0][0]*fi + r[0][1]*fj + r[0][2]*fk + r[0][3]
						y := r[1][0]*fi + r[1][1]*fj + r[1][2]*fk + r[1][3]
						z := r[2][0]*fi + r[2][1]*fj + r[2][2]*fk + r[2][3]
						f := 1 / z
						wdis := f * f
						sum += wdis * interp.Bilinear(data[t], g.Nu, g.Nv, x*f, y*f)
					}
					vol.Data[base+i] += sum
				}
			}
		}
	}
	return nil
}

// runShflBP mirrors Listing 1: a warp's 32 lanes walk consecutive voxels
// along Z in the lower half of the volume; lane l precomputes the registers
// U = u and Z = 1/z for projection l of the batch (legal because both are
// independent of the lane's Z index, Theorems 2+3); the batch loop shuffles
// U and Z from lane s and each lane updates its voxel and the Z-mirrored
// one (Theorem 1).
func runShflBP(g geometry.Params, proj []*volume.Image, mats []geometry.ProjMat, vol *volume.Volume, transposeProj bool) error {
	nx, ny, nz := g.Nx, g.Ny, g.Nz
	halfUp := (nz + 1) / 2 // lanes cover ceil(Nz/2); the middle plane of an odd Nz self-mirrors
	var qU, qV int
	for s0 := 0; s0 < g.Np; s0 += NBatch {
		s1 := min(s0+NBatch, g.Np)
		nb := s1 - s0
		rows := make([][3][4]float32, nb)
		data := make([][]float32, nb)
		for t := range rows {
			rows[t] = mats[s0+t].Rows32()
			if transposeProj {
				data[t] = proj[s0+t].Transpose().Data
				qU, qV = g.Nv, g.Nu // transposed: V is the fast axis
			} else {
				data[t] = proj[s0+t].Data
				qU, qV = g.Nu, g.Nv
			}
		}
		var regU, regZ [NBatch]float32
		var sum, sumSym [32]float32
		for j := 0; j < ny; j++ {
			fj := float32(j)
			for i := 0; i < nx; i++ {
				fi := float32(i)
				for zBase := 0; zBase < halfUp; zBase += 32 {
					lanes := min(32, halfUp-zBase)
					// `if (laneId < img_dim.z)`: lane l computes the
					// registers for projection l at its own voxel.
					// All 32 hardware lanes exist even when fewer voxels are
					// active; U and Z are Z-independent, so any lane's own
					// Z index is a valid evaluation point.
					for l := 0; l < nb; l++ {
						r := &rows[l]
						fz := float32(zBase + l)
						z := r[2][0]*fi + r[2][1]*fj + r[2][2]*fz + r[2][3]
						f := 1 / z
						x := r[0][0]*fi + r[0][1]*fj + r[0][2]*fz + r[0][3]
						regZ[l] = f
						regU[l] = x * f
					}
					for l := 0; l < lanes; l++ {
						sum[l], sumSym[l] = 0, 0
					}
					for s := 0; s < nb; s++ {
						u := regU[s] // __shfl_sync(0xffffffff, U, s)
						f := regZ[s] // __shfl_sync(0xffffffff, Z, s)
						wdis := f * f
						r := &rows[s]
						for l := 0; l < lanes; l++ {
							fz := float32(zBase + l)
							y := r[1][0]*fi + r[1][1]*fj + r[1][2]*fz + r[1][3]
							v := y * f
							vSym := float32(g.Nv-1) - v
							sum[l] += wdis * fetchProj(data[s], qU, qV, u, v, transposeProj)
							if int(fz) != nz-1-int(fz) {
								sumSym[l] += wdis * fetchProj(data[s], qU, qV, u, vSym, transposeProj)
							}
						}
					}
					base := (i*ny + j) * nz
					for l := 0; l < lanes; l++ {
						z := zBase + l
						vol.Data[base+z] += sum[l]
						if z != nz-1-z {
							vol.Data[base+nz-1-z] += sumSym[l]
						}
					}
				}
			}
		}
	}
	return nil
}

// fetchProj performs the texture/L1 fetch: bilinear interpolation on the
// (possibly transposed) projection.
func fetchProj(data []float32, w, h int, u, v float32, transposed bool) float32 {
	if transposed {
		return interp.Bilinear(data, w, h, v, u)
	}
	return interp.Bilinear(data, w, h, u, v)
}
