package gpusim

// Cache is a set-associative cache simulator with LRU replacement, used to
// model the per-SM L1 data cache and the 2-D texture cache. Keys are
// line/sector identifiers (already shifted by the line granularity).
type Cache struct {
	cfg    CacheConfig
	sets   [][]int64 // per set: line keys in LRU order (front = most recent)
	hits   int64
	misses int64
}

// NewCache builds an empty cache.
func NewCache(cfg CacheConfig) *Cache {
	return &Cache{cfg: cfg, sets: make([][]int64, cfg.Sets())}
}

// Access touches the line with the given key and reports whether it hit.
// The set index is derived from a spreading hash of the key: distinct
// projection layers live at distinct base addresses in real memory, so
// their lines must not alias onto the same sets.
func (c *Cache) Access(key int64) bool {
	h := uint64(key)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 29
	set := int(h % uint64(len(c.sets)))
	lines := c.sets[set]
	for i, k := range lines {
		if k == key {
			// Move to front (LRU).
			copy(lines[1:i+1], lines[:i])
			lines[0] = key
			c.hits++
			return true
		}
	}
	c.misses++
	if len(lines) < c.cfg.Ways {
		lines = append(lines, 0)
	}
	copy(lines[1:], lines)
	lines[0] = key
	c.sets[set] = lines
	return false
}

// Hits returns the number of hits so far.
func (c *Cache) Hits() int64 { return c.hits }

// Misses returns the number of misses so far.
func (c *Cache) Misses() int64 { return c.misses }

// HitRate returns hits/(hits+misses), or 0 before any access.
func (c *Cache) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.sets {
		c.sets[i] = nil
	}
	c.hits, c.misses = 0, 0
}

// morton interleaves the low 16 bits of x and y — the block-linear address
// mapping that gives the texture cache its 2-D locality.
func morton(x, y int) int64 {
	return int64(spread(x) | spread(y)<<1)
}

func spread(v int) uint64 {
	x := uint64(v) & 0xFFFF
	x = (x | x<<16) & 0x0000FFFF0000FFFF
	x = (x | x<<8) & 0x00FF00FF00FF00FF
	x = (x | x<<4) & 0x0F0F0F0F0F0F0F0F
	x = (x | x<<2) & 0x3333333333333333
	x = (x | x<<1) & 0x5555555555555555
	return x
}
