// Package simcluster replays the iFDK per-rank pipeline (Fig. 4) as a
// discrete-event simulation at full cluster scale. Where the paper measures
// 32–2,048 real V100 GPUs on ABCI, this package advances a virtual clock
// through the same per-round structure — load+filter, column AllGather,
// batched back-projection, then D2H, row Reduce and PFS store — using the
// micro-benchmarked stage throughputs of internal/perfmodel.
//
// Because rounds genuinely overlap in the simulation (the filter of round
// r+1 proceeds while round r back-projects), the pipeline gain δ > 1 of
// Table 5 emerges rather than being assumed, and the simulated "measured"
// series can be compared against the closed-form "potential peak" of the
// model exactly as Fig. 5 does.
package simcluster

import (
	"fmt"
	"math"

	"ifdk/internal/ct/geometry"
	"ifdk/internal/perfmodel"
)

// Config describes one simulated run.
type Config struct {
	Problem geometry.Problem
	R, C    int
	MB      perfmodel.MicroBench
	// Overhead inflates simulated stage times relative to the ideal
	// micro-benchmark rates, representing thread data exchange, buffer
	// management and first-call collective costs (the paper achieves ≈76%
	// of its model peak, Sec. 5.3.3). Default 1.25.
	Overhead float64
	// Batch is the back-projection batch size (default 32).
	Batch int
}

func (c Config) withDefaults() Config {
	if c.Overhead <= 0 {
		c.Overhead = 1.25
	}
	if c.Batch <= 0 {
		c.Batch = 32
	}
	return c
}

// Result combines the closed-form model with the simulated pipeline.
type Result struct {
	Problem geometry.Problem
	R, C    int
	NGpus   int

	Model perfmodel.Times // potential peak (Eqs. 8–19)

	// Simulated ("measured") series.
	SimFlt       float64 // filter busy time per rank
	SimAllGather float64 // AllGather busy time per rank
	SimBp        float64 // back-projection busy time per rank
	SimCompute   float64 // pipelined wall time of the overlapped phase
	SimD2H       float64
	SimReduce    float64
	SimStore     float64
	SimTotal     float64
	Delta        float64 // (SimFlt+SimAllGather+SimBp)/SimCompute (Table 5)
	GUPS         float64 // end-to-end, from SimTotal (Fig. 6)
}

// Simulate runs the discrete-event pipeline for the configuration.
func Simulate(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	pr := cfg.Problem
	if cfg.R < 1 || cfg.C < 1 {
		return Result{}, fmt.Errorf("simcluster: invalid grid %dx%d", cfg.R, cfg.C)
	}
	if pr.Np%(cfg.R*cfg.C) != 0 {
		return Result{}, fmt.Errorf("simcluster: Np = %d not divisible by R·C = %d", pr.Np, cfg.R*cfg.C)
	}
	model, err := perfmodel.Predict(pr, cfg.R, cfg.C, cfg.MB)
	if err != nil {
		return Result{}, err
	}
	res := Result{Problem: pr, R: cfg.R, C: cfg.C, NGpus: cfg.R * cfg.C, Model: model}
	mb := cfg.MB
	oh := cfg.Overhead

	// Per-round stage durations for one (symmetric) rank.
	quota := pr.Np / (cfg.R * cfg.C) // AllGather rounds per rank
	projPerRound := cfg.R            // projections delivered per round
	voxPerSub := float64(pr.Nx) * float64(pr.Ny) * float64(pr.Nz) / float64(cfg.R)
	projBytes := 4 * float64(pr.Nu) * float64(pr.Nv)

	// Load+filter one projection (the Filtering thread's unit of work).
	// PFS load bandwidth is shared by all loading ranks.
	nRanks := float64(cfg.R * cfg.C)
	loadOne := projBytes / (mb.BWLoad / nRanks) * oh
	fltOne := float64(mb.NGpuPerNode) / mb.THFlt * oh
	filterRound := loadOne + fltOne

	// One AllGather round: R ranks exchange one projection each (the
	// model's Eq. 10 total split evenly over the rounds).
	agRound := model.AllGather / float64(quota) * oh

	// Back-projecting one projection into the sub-volume, including its
	// share of the H2D copy.
	h2dOne := projBytes * float64(mb.NGpuPerNode) /
		(mb.BWPCIe * float64(mb.NPCIe) * mb.PCIeContention) * oh
	bpOne := 1/mb.THBpProj(voxPerSub)*oh + h2dOne

	// --- Event simulation over rounds.
	var tFilter, tAG, tBp float64 // completion clocks per pipeline thread
	var busyFlt, busyAG, busyBp float64
	batchAcc := 0
	for r := 0; r < quota; r++ {
		// Filtering thread produces round r's own projection.
		tFilter += filterRound
		busyFlt += filterRound
		// Main thread starts the AllGather when the projection is ready
		// and the previous AllGather finished.
		start := math.Max(tFilter, tAG)
		tAG = start + agRound
		busyAG += agRound
		// The round delivers R projections to the Bp thread; the kernel
		// launches on full batches (or at the end).
		batchAcc += projPerRound
		for batchAcc >= cfg.Batch {
			work := float64(cfg.Batch) * bpOne
			tBp = math.Max(tBp, tAG) + work
			busyBp += work
			batchAcc -= cfg.Batch
		}
	}
	if batchAcc > 0 {
		work := float64(batchAcc) * bpOne
		tBp = math.Max(tBp, tAG) + work
		busyBp += work
	}
	res.SimFlt = busyFlt
	res.SimAllGather = busyAG
	res.SimBp = busyBp
	res.SimCompute = math.Max(tBp, math.Max(tAG, tFilter))
	if res.SimCompute > 0 {
		res.Delta = (busyFlt + busyAG + busyBp) / res.SimCompute
	}

	// --- Post phase (sequential, Eq. 18/19): transpose + D2H + Reduce +
	// Store, each inflated by the overhead factor.
	res.SimD2H = (model.Trans + model.D2H) * oh
	res.SimReduce = model.Reduce * oh
	res.SimStore = model.Store * oh
	res.SimTotal = res.SimCompute + res.SimD2H + res.SimReduce + res.SimStore
	res.GUPS = pr.GUPS(res.SimTotal)
	return res, nil
}
