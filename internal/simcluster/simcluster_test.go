package simcluster

import (
	"testing"

	"ifdk/internal/ct/geometry"
	"ifdk/internal/perfmodel"
)

func fourK() geometry.Problem {
	return geometry.Problem{Nu: 2048, Nv: 2048, Np: 4096, Nx: 4096, Ny: 4096, Nz: 4096}
}

func eightK() geometry.Problem {
	return geometry.Problem{Nu: 2048, Nv: 2048, Np: 4096, Nx: 8192, Ny: 8192, Nz: 8192}
}

func sim(t *testing.T, pr geometry.Problem, r, c int) Result {
	t.Helper()
	res, err := Simulate(Config{Problem: pr, R: r, C: c, MB: perfmodel.ABCI()})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestValidation(t *testing.T) {
	if _, err := Simulate(Config{Problem: fourK(), R: 0, C: 1, MB: perfmodel.ABCI()}); err == nil {
		t.Error("R = 0 accepted")
	}
	if _, err := Simulate(Config{Problem: fourK(), R: 3, C: 7, MB: perfmodel.ABCI()}); err == nil {
		t.Error("non-divisible Np accepted")
	}
}

// Headline claim 1 (abstract): the 4K problem solves within 30 seconds on
// 2,048 GPUs, including I/O.
func TestFourKUnder30Seconds(t *testing.T) {
	res := sim(t, fourK(), 32, 64)
	if res.SimTotal >= 30 {
		t.Errorf("4K on 2048 GPUs = %.1fs, paper: < 30s", res.SimTotal)
	}
	if res.SimTotal < 10 {
		t.Errorf("4K on 2048 GPUs = %.1fs suspiciously fast (paper ≈ 18–20s)", res.SimTotal)
	}
}

// Headline claim 2: the 8K problem solves within 2 minutes on 2,048 GPUs.
func TestEightKUnder2Minutes(t *testing.T) {
	res := sim(t, eightK(), 256, 8)
	if res.SimTotal >= 120 {
		t.Errorf("8K on 2048 GPUs = %.1fs, paper: < 120s", res.SimTotal)
	}
	if res.SimTotal < 60 {
		t.Errorf("8K on 2048 GPUs = %.1fs suspiciously fast (paper ≈ 100–110s)", res.SimTotal)
	}
}

// Table 5: the pipeline gain δ lies in (1, 2] across the strong-scaling
// configurations — overlap helps but cannot exceed the 3-stage bound.
func TestDeltaRange(t *testing.T) {
	for _, cfg := range []struct{ r, c int }{{32, 1}, {32, 2}, {32, 4}, {32, 8}, {256, 1}, {256, 4}} {
		pr := fourK()
		if cfg.r == 256 {
			pr = eightK()
		}
		res := sim(t, pr, cfg.r, cfg.c)
		if res.Delta <= 1.0 || res.Delta > 2.5 {
			t.Errorf("R=%d C=%d: δ = %.2f outside (1, 2.5]", cfg.r, cfg.c, res.Delta)
		}
	}
}

// Fig. 5a: strong scaling — SimCompute shrinks with more GPUs while the
// post phase stays constant.
func TestStrongScalingShape(t *testing.T) {
	var prev Result
	for n, c := range []int{1, 2, 4, 8, 16, 32, 64} {
		res := sim(t, fourK(), 32, c)
		if n > 0 {
			if res.SimCompute >= prev.SimCompute {
				t.Errorf("C=%d: compute did not shrink (%g vs %g)", c, res.SimCompute, prev.SimCompute)
			}
			diff := res.SimStore - prev.SimStore
			if diff < -1e-9 || diff > 1e-9 {
				t.Errorf("C=%d: store changed under strong scaling", c)
			}
		}
		prev = res
	}
}

// Fig. 5c: weak scaling — Np grows with the GPU count, so the per-GPU
// compute stays nearly flat.
func TestWeakScalingShape(t *testing.T) {
	var first float64
	for n, c := range []int{1, 2, 4, 8, 16, 32, 64} {
		pr := fourK()
		pr.Np = 16 * 32 * c // Np = 16·Ngpus as in Fig. 5c
		res := sim(t, pr, 32, c)
		if n == 0 {
			first = res.SimCompute
			continue
		}
		ratio := res.SimCompute / first
		if ratio < 0.5 || ratio > 2.0 {
			t.Errorf("C=%d: weak-scaling compute drifted %.2fx from baseline", c, ratio)
		}
	}
}

// Fig. 6: end-to-end GUPS grows with the GPU count and the 8K output
// scales further than 4K (better device utilization, Sec. 5.3.3).
func TestGUPSScaling(t *testing.T) {
	g256 := sim(t, fourK(), 32, 8)
	g2048 := sim(t, fourK(), 32, 64)
	if g2048.GUPS <= g256.GUPS {
		t.Errorf("GUPS did not scale: %g at 256 vs %g at 2048", g256.GUPS, g2048.GUPS)
	}
	e2048 := sim(t, eightK(), 256, 8)
	if e2048.GUPS <= g2048.GUPS {
		t.Errorf("8K (%g) should out-scale 4K (%g) at 2048 GPUs", e2048.GUPS, g2048.GUPS)
	}
}

// The simulated "measured" time must exceed the model's potential peak
// (the paper achieves ≈76% of peak on average).
func TestSimSlowerThanModel(t *testing.T) {
	for _, c := range []int{1, 4, 16, 64} {
		res := sim(t, fourK(), 32, c)
		if res.SimTotal <= res.Model.Runtime {
			t.Errorf("C=%d: simulated %.1fs faster than model peak %.1fs", c, res.SimTotal, res.Model.Runtime)
		}
		eff := res.Model.Runtime / res.SimTotal
		if eff < 0.5 || eff > 0.99 {
			t.Errorf("C=%d: model efficiency %.2f outside [0.5, 0.99]", c, eff)
		}
	}
}

// Busy times must match the components the paper reports in Table 5:
// δ · Tcompute = Tflt + TAllGather + Tbp by definition.
func TestDeltaDefinition(t *testing.T) {
	res := sim(t, fourK(), 32, 4)
	lhs := res.Delta * res.SimCompute
	rhs := res.SimFlt + res.SimAllGather + res.SimBp
	if diff := lhs - rhs; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("δ definition violated: %g vs %g", lhs, rhs)
	}
}
