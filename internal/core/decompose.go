// Package core implements iFDK, the paper's distributed framework for
// instant high-resolution image reconstruction (Sec. 4): MPI ranks arranged
// in a 2-D grid of R rows × C columns, where
//
//   - each column group independently loads and filters a 1/C share of the
//     projections and exchanges them with an AllGather per projection round
//     (Fig. 3b, left), and
//   - each row group owns one mirrored pair of Z slabs of the output volume
//     (1/R of the voxels, the "2·R sub-volumes" of Fig. 3a) and combines
//     its per-column partial volumes with a single Reduce (Fig. 3b, right).
//
// Inside every rank three goroutines — Filtering, Main and Back-projection,
// connected by circular buffers — overlap I/O, filtering, communication and
// back-projection exactly as in Fig. 4.
package core

import (
	"fmt"
	"math/bits"

	"ifdk/internal/ct/geometry"
)

// RankRow returns the grid row of a rank; ranks are numbered column-major
// (Fig. 3a: column C0 holds ranks 0..R-1).
func RankRow(rank, r int) int { return rank % r }

// RankCol returns the grid column of a rank.
func RankCol(rank, r int) int { return rank / r }

// RankID returns the rank at (row, col).
func RankID(row, col, r int) int { return col*r + row }

// ColProjRange returns the half-open range of projection indices owned by
// a column group: column c of C handles Np/C consecutive projections.
func ColProjRange(col, np, c int) (lo, hi int) {
	quota := np / c
	return col * quota, (col + 1) * quota
}

// RankProjRange returns the projections one rank loads and filters:
// its row's 1/R share of its column's range (Eq. 5:
// Nproj_per_rank = Np/(C·R)).
func RankProjRange(row, col, np, r, c int) (lo, hi int) {
	colLo, _ := ColProjRange(col, np, c)
	quota := np / (r * c)
	return colLo + row*quota, colLo + (row+1)*quota
}

// RowSlab returns the lower-half Z slab [z0, z1) assigned to a grid row;
// together with its Theorem-1 mirror it forms the row's sub-volume.
func RowSlab(row, nz, r int) (z0, z1 int) {
	h := nz / (2 * r)
	return row * h, (row + 1) * h
}

// DefaultSubVolBytes is the per-GPU sub-volume size the paper adopts for
// high-resolution problems on 16 GB devices (Sec. 4.1.5): 8 GB.
const DefaultSubVolBytes = int64(8) << 30

// ChooseR selects the number of grid rows per Sec. 4.1.5: the smallest
// power of two R such that the per-rank sub-volume
// 4·Nx·Ny·Nz/R fits within subVolBytes, while the sub-volume plus a
// 32-projection batch stays inside device memory. R is minimized (and C
// maximized) because larger sub-volumes keep the back-projection kernel in
// its efficient low-α regime and shorter column tasks scale with C.
func ChooseR(pr geometry.Problem, devMemBytes, subVolBytes int64) (int, error) {
	if subVolBytes <= 0 {
		subVolBytes = DefaultSubVolBytes
	}
	out := pr.OutputBytes()
	r := int((out + subVolBytes - 1) / subVolBytes)
	if r < 1 {
		r = 1
	}
	r = 1 << bits.Len(uint(r-1)) // next power of two
	if r > pr.Nz/2 && pr.Nz >= 2 {
		r = pr.Nz / 2
	}
	projBatch := 4 * int64(pr.Nu) * int64(pr.Nv) * 32
	if devMemBytes > 0 && out/int64(r)+projBatch > devMemBytes {
		return 0, fmt.Errorf("core: sub-volume %d + projection batch %d exceed device memory %d",
			out/int64(r), projBatch, devMemBytes)
	}
	return r, nil
}
