package core

import (
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"ifdk/internal/ct/backproject"
	"ifdk/internal/hpc/pfs"
)

// sliceEvent records one SliceWritten callback.
type sliceEvent struct {
	z, written, total int
	onPFS             bool // the slice object existed when the callback fired
}

// The per-slice callback must fire exactly once per z, with the slice
// already durable on the PFS, in each row root's SlabPlanes order, with a
// serialized cumulative counter reaching exactly Nz.
func TestSliceCallbackOrdering(t *testing.T) {
	g, store, _ := testSetup(t)
	for _, grid := range [][2]int{{1, 1}, {2, 2}, {4, 2}, {2, 4}} {
		var mu sync.Mutex
		var events []sliceEvent
		cfg := Config{
			R: grid[0], C: grid[1],
			Geometry:     g,
			InputPrefix:  "in",
			OutputPrefix: "out",
			SliceWritten: func(z, written, total int) {
				mu.Lock()
				events = append(events, sliceEvent{
					z: z, written: written, total: total,
					onPFS: store.Exists(pfs.SlicePath("out", z)),
				})
				mu.Unlock()
			},
		}
		if _, err := Run(cfg, store); err != nil {
			t.Fatalf("grid %v: %v", grid, err)
		}
		if len(events) != g.Nz {
			t.Fatalf("grid %v: %d slice callbacks, want %d", grid, len(events), g.Nz)
		}
		seen := make(map[int]int)
		for i, e := range events {
			seen[e.z]++
			if e.total != g.Nz {
				t.Errorf("grid %v: event %d total = %d, want %d", grid, i, e.total, g.Nz)
			}
			if e.written != i+1 {
				t.Errorf("grid %v: event %d written = %d, want %d (serialized counter)", grid, i, e.written, i+1)
			}
			if !e.onPFS {
				t.Errorf("grid %v: slice %d callback fired before the PFS write", grid, e.z)
			}
		}
		for z := 0; z < g.Nz; z++ {
			if seen[z] != 1 {
				t.Errorf("grid %v: slice %d fired %d times, want exactly once", grid, z, seen[z])
			}
		}
		// Within each row group the z order must be the root's SlabPlanes
		// order; rows interleave freely, so check per-row subsequences.
		for row := 0; row < cfg.R; row++ {
			z0, z1 := RowSlab(row, g.Nz, cfg.R)
			want := backproject.SlabPlanes(g.Nz, z0, z1)
			inRow := make(map[int]bool, len(want))
			for _, z := range want {
				inRow[z] = true
			}
			var got []int
			for _, e := range events {
				if inRow[e.z] {
					got = append(got, e.z)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("grid %v row %d: %d events, want %d", grid, row, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("grid %v row %d: slab order %v, want %v", grid, row, got, want)
					break
				}
			}
		}
		// Fresh output namespace per grid.
		for _, path := range store.List("out/") {
			store.Delete(path)
		}
	}
}

// Cancelling mid-epilogue (from inside the first slice callback) must stop
// further slice publication almost immediately — each row root rechecks the
// context before every write, so at most one in-flight slice per row root
// can still land — and no callback may fire after RunContext has returned
// its cancellation error.
func TestSliceCallbackStopsOnCancel(t *testing.T) {
	g, store, _ := testSetup(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var returned atomic.Bool
	var calls atomic.Int64
	cfg := Config{
		R: 2, C: 2,
		Geometry:     g,
		InputPrefix:  "in",
		OutputPrefix: "out",
		SliceWritten: func(z, written, total int) {
			if returned.Load() {
				t.Errorf("slice %d callback after RunContext returned", z)
			}
			if calls.Add(1) == 1 {
				cancel()
			}
		},
	}
	_, err := RunContext(ctx, cfg, store)
	returned.Store(true)
	if err == nil || !strings.Contains(err.Error(), "cancelled") {
		t.Fatalf("RunContext error = %v, want cancellation", err)
	}
	if n := calls.Load(); n < 1 || n > int64(cfg.R) {
		t.Errorf("%d slice callbacks after cancel, want between 1 and R=%d", n, cfg.R)
	}
	if n := len(store.List("out/")); n >= g.Nz {
		t.Errorf("%d slices stored despite cancellation, want < %d", n, g.Nz)
	}
}
