package core

import (
	"context"
	"fmt"
	"time"

	"ifdk/internal/ct/filter"
	"ifdk/internal/ct/geometry"
	"ifdk/internal/volume"
)

// RowFilter is the filtering implementation a rank's filter thread runs one
// projection at a time. Filter processes img in place and reports how many
// co-scheduled projections the call was coalesced with (1 when unbatched) —
// the batch size recorded into RoundTrace. Close releases the rank's seat;
// it must not be called with a Filter still in flight.
type RowFilter interface {
	Filter(ctx context.Context, img *volume.Image) (batch int, err error)
	Close()
}

// directFilter is the default RowFilter: the memoized per-plan Filterer
// applied inline, exactly the pre-batching behaviour.
type directFilter struct{ f *filter.Filterer }

func (d directFilter) Filter(_ context.Context, img *volume.Image) (int, error) {
	return 1, d.f.ApplyInto(img, img)
}

func (d directFilter) Close() {}

// Config describes one distributed reconstruction.
type Config struct {
	R, C int // grid shape; Nranks = R·C, one rank per (simulated) GPU

	Geometry geometry.Params
	Window   filter.Window

	Workers    int // worker goroutines per rank inside stages (default 1)
	Batch      int // projections per back-projection pass (default 32)
	QueueDepth int // circular-buffer capacity between pipeline threads (default 8)

	InputPrefix  string // PFS prefix holding the Np input projections
	OutputPrefix string // PFS prefix for the output slices ("" = skip store)

	AssembleVolume bool // gather the full volume at rank 0 into Result.Volume

	// Progress, when non-nil, is invoked after every completed AllGather
	// round on any rank with the cumulative count of finished rounds and
	// the total: every rank performs Np/(R·C) rounds, so the grid performs
	// Np rounds in total and done reaches exactly Np. Calls may come from
	// any rank goroutine but are serialized by the framework. Excluded
	// from serialization so Config stays hashable for caching.
	Progress func(done, total int) `json:"-"`

	// CollectRounds, when set, records every AllGather round's filter and
	// collective timing into pre-sized per-rank buffers (Result.Rounds) —
	// the raw material for per-round trace spans. The buffers are sized
	// once before the pipeline starts, so the steady-state compute path
	// stays allocation-free. Excluded from serialization: observability
	// settings must not perturb content-addressed cache keys.
	CollectRounds bool `json:"-"`

	// NewRowFilter, when non-nil, supplies the filtering implementation for
	// every rank's filter thread — the hook the service layer uses to route
	// co-resident jobs sharing a (geometry, window) plan through one
	// coalesced row sweep (internal/service/batcher). Each rank calls it
	// once at pipeline start and Closes the returned RowFilter when its
	// quota is filtered (or the pipeline unwinds). nil selects the direct
	// per-rank path. Excluded from serialization so Config stays hashable
	// for caching.
	NewRowFilter func(g geometry.Params, win filter.Window) (RowFilter, error) `json:"-"`

	// SliceWritten, when non-nil and OutputPrefix != "", is invoked after
	// each output z-slice has been durably written to the PFS by its row
	// root during the epilogue — mid-run, long before the full volume is
	// assembled. Arguments are the global z index, the cumulative count of
	// written slices and the total (Geometry.Nz). Each z fires exactly
	// once, in the row root's SlabPlanes order (the mirrored slab pair:
	// the lower slab ascending, then the upper). Calls come from row-root
	// goroutines but are serialized by the framework, and never occur
	// after RunContext has returned. Excluded from serialization so Config
	// stays hashable for caching.
	SliceWritten func(z, written, total int) `json:"-"`
}

// Validate reports configuration problems.
func (c Config) Validate() error {
	if c.R < 1 || c.C < 1 {
		return fmt.Errorf("core: grid %dx%d must be at least 1x1", c.R, c.C)
	}
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	n := c.R * c.C
	if c.Geometry.Np%n != 0 {
		return fmt.Errorf("core: Np = %d must be divisible by R·C = %d", c.Geometry.Np, n)
	}
	if c.Geometry.Nz%(2*c.R) != 0 {
		return fmt.Errorf("core: Nz = %d must be divisible by 2R = %d (mirrored slab pairs)",
			c.Geometry.Nz, 2*c.R)
	}
	if c.InputPrefix == "" {
		return fmt.Errorf("core: InputPrefix is required")
	}
	return nil
}

func (c Config) workers() int {
	if c.Workers <= 0 {
		return 1
	}
	return c.Workers
}

// rowFilter resolves the filter thread's implementation: the configured
// factory, or the direct memoized-Filterer path.
func (c Config) rowFilter() (RowFilter, error) {
	if c.NewRowFilter != nil {
		return c.NewRowFilter(c.Geometry, c.Window)
	}
	f, err := filter.Cached(c.Geometry, c.Window)
	if err != nil {
		return nil, err
	}
	return directFilter{f: f}, nil
}

func (c Config) queueDepth() int {
	if c.QueueDepth <= 0 {
		return 8
	}
	return c.QueueDepth
}

// StageTimes records one rank's busy time per pipeline stage plus derived
// wall times. Load/Filter/AllGather/Backproject overlap inside Compute
// (Eq. 17); Reduce and Store follow it (Eq. 19).
type StageTimes struct {
	Load        time.Duration // reading projections from the PFS
	Filter      time.Duration // cosine + ramp filtering
	AllGather   time.Duration // column-group collective
	Backproject time.Duration // kernel time
	Compute     time.Duration // wall time of the overlapped phase
	Reduce      time.Duration // row-group volume reduction
	Store       time.Duration // writing output slices
	Total       time.Duration // end-to-end wall time
}

// Delta is the pipeline-overlap gain δ = (T_flt + T_AllGather + T_bp) /
// T_compute (Table 5); δ > 1 means the three threads genuinely overlapped.
func (s StageTimes) Delta() float64 {
	if s.Compute <= 0 {
		return 0
	}
	return float64(s.Filter+s.AllGather+s.Backproject) / float64(s.Compute)
}

// maxTimes folds per-rank stage times element-wise.
func maxTimes(a, b StageTimes) StageTimes {
	m := func(x, y time.Duration) time.Duration {
		if x > y {
			return x
		}
		return y
	}
	return StageTimes{
		Load:        m(a.Load, b.Load),
		Filter:      m(a.Filter, b.Filter),
		AllGather:   m(a.AllGather, b.AllGather),
		Backproject: m(a.Backproject, b.Backproject),
		Compute:     m(a.Compute, b.Compute),
		Reduce:      m(a.Reduce, b.Reduce),
		Store:       m(a.Store, b.Store),
		Total:       m(a.Total, b.Total),
	}
}

// RoundTrace records one AllGather round's stage timing on one rank, as
// offsets from the rank's pipeline start: when the round's own projection
// was loaded+filtered by the filtering thread, and when the column
// collective exchanged it. The per-rank slices are pre-sized before the
// pipeline starts, so recording is allocation-free in steady state; the
// service layer turns them into trace spans once, at job end.
type RoundTrace struct {
	Round     int           // round index r in [0, quota)
	FilterOff time.Duration // offset of the load+filter of this round's projection
	FilterDur time.Duration // load+filter busy time for that projection
	BatchSize int           // co-scheduled projections in the round's filter sweep (1 = unbatched)
	GatherOff time.Duration // offset of the round's AllGather
	GatherDur time.Duration // AllGather busy time
}

// Result is the outcome of a distributed reconstruction.
type Result struct {
	Volume    *volume.Volume // full volume at rank 0 (nil unless AssembleVolume)
	PerRank   []StageTimes
	Rounds    [][]RoundTrace // per-rank per-round stage timings (nil when CollectRounds is off)
	Max       StageTimes     // element-wise max over ranks
	BytesSent int64          // total MPI payload bytes
}
