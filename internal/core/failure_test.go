package core

import (
	"strings"
	"testing"

	"ifdk/internal/ct/geometry"
	"ifdk/internal/ct/phantom"
	"ifdk/internal/ct/projector"
	"ifdk/internal/hpc/pfs"
)

// Failure injection: when the PFS rejects writes mid-store, the whole run
// must fail cleanly (no deadlock, error propagated) rather than silently
// producing a partial volume.
func TestStoreFailurePropagates(t *testing.T) {
	g := geometry.Default(48, 48, 16, 16, 16, 16)
	ph := phantom.UniformSphere(g.FOVRadius()*0.5, 1)
	proj := projector.AnalyticAll(ph, g, 0)
	store := pfs.New(pfs.Config{})
	if err := StageProjections(store, "in", proj); err != nil {
		t.Fatal(err)
	}
	// Allow the input staging reads; fail a write during the output store.
	store.FailAfterWrites(4)
	cfg := Config{R: 2, C: 2, Geometry: g, InputPrefix: "in", OutputPrefix: "out"}
	_, err := Run(cfg, store)
	if err == nil {
		t.Fatal("injected store failure did not propagate")
	}
	if !strings.Contains(err.Error(), "injected write failure") {
		t.Errorf("unexpected error: %v", err)
	}
}

// A single corrupt projection object must abort the whole world without
// hanging the other ranks in their collectives.
func TestCorruptProjectionAborts(t *testing.T) {
	g := geometry.Default(48, 48, 16, 16, 16, 16)
	ph := phantom.UniformSphere(g.FOVRadius()*0.5, 1)
	proj := projector.AnalyticAll(ph, g, 0)
	store := pfs.New(pfs.Config{})
	if err := StageProjections(store, "in", proj); err != nil {
		t.Fatal(err)
	}
	// Overwrite one projection with garbage bytes.
	if _, err := store.Write(pfs.ProjectionPath("in", 5), []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	cfg := Config{R: 2, C: 2, Geometry: g, InputPrefix: "in"}
	if _, err := Run(cfg, store); err == nil {
		t.Fatal("corrupt projection did not propagate")
	}
}

// A wrongly sized projection (valid blob, wrong detector) must be rejected
// by the filtering stage and abort cleanly.
func TestWrongSizeProjectionAborts(t *testing.T) {
	g := geometry.Default(48, 48, 16, 16, 16, 16)
	ph := phantom.UniformSphere(g.FOVRadius()*0.5, 1)
	proj := projector.AnalyticAll(ph, g, 0)
	store := pfs.New(pfs.Config{})
	if err := StageProjections(store, "in", proj); err != nil {
		t.Fatal(err)
	}
	small := projector.Analytic(ph, geometry.Default(16, 16, 16, 8, 8, 8), 0)
	if _, err := store.WriteProjection("in", 3, small); err != nil {
		t.Fatal(err)
	}
	cfg := Config{R: 4, C: 1, Geometry: g, InputPrefix: "in"}
	if _, err := Run(cfg, store); err == nil {
		t.Fatal("wrong-size projection did not propagate")
	}
}
