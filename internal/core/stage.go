package core

import (
	"context"
	"fmt"

	"ifdk/internal/hpc/pfs"
	"ifdk/internal/volume"
)

// StageProjections writes a projection set to the PFS under the dataset
// prefix, using the naming convention the ranks read from.
func StageProjections(store *pfs.PFS, prefix string, imgs []*volume.Image) error {
	return StageProjectionsCtx(context.Background(), store, prefix, imgs)
}

// StageProjectionsCtx is StageProjections under a context: cancellation is
// checked between projection writes, so a cancelled job stops staging
// mid-dataset instead of writing the whole scan to the PFS. Callers that
// abort are responsible for deleting the partial prefix (the writes already
// performed are not rolled back here).
func StageProjectionsCtx(ctx context.Context, store *pfs.PFS, prefix string, imgs []*volume.Image) error {
	if prefix == "" {
		return fmt.Errorf("core: empty dataset prefix")
	}
	for s, img := range imgs {
		if err := ctx.Err(); err != nil {
			return err
		}
		if img == nil {
			return fmt.Errorf("core: projection %d is nil", s)
		}
		if _, err := store.WriteProjection(prefix, s, img); err != nil {
			return err
		}
	}
	return nil
}

// LoadVolume reads the output slices written by a Run back into a full
// i-major volume.
func LoadVolume(store *pfs.PFS, prefix string, nx, ny, nz int) (*volume.Volume, error) {
	vol, _, err := store.ReadVolumeSlices(prefix, nx, ny, nz)
	return vol, err
}
