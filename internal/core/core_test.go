package core

import (
	"math"
	"strings"
	"testing"

	"ifdk/internal/ct/fdk"
	"ifdk/internal/ct/geometry"
	"ifdk/internal/ct/phantom"
	"ifdk/internal/ct/projector"
	"ifdk/internal/hpc/pfs"
	"ifdk/internal/volume"
)

// testSetup stages a small analytic dataset and returns its geometry,
// the store and the serial reference reconstruction.
func testSetup(t *testing.T) (geometry.Params, *pfs.PFS, *volume.Volume) {
	t.Helper()
	g := geometry.Default(48, 48, 16, 16, 16, 16)
	ph := phantom.SheppLogan3D(g.FOVRadius() * 0.9)
	proj := projector.AnalyticAll(ph, g, 0)
	store := pfs.New(pfs.Config{})
	if err := StageProjections(store, "in", proj); err != nil {
		t.Fatal(err)
	}
	ref, err := fdk.Reconstruct(g, proj, fdk.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return g, store, ref
}

func relVolRMSE(t *testing.T, a, b *volume.Volume) float64 {
	t.Helper()
	r, err := volume.RMSE(a, b)
	if err != nil {
		t.Fatal(err)
	}
	s := a.Summarize()
	scale := math.Max(math.Abs(float64(s.Min)), math.Abs(float64(s.Max)))
	if scale == 0 {
		return r
	}
	return r / scale
}

// E10/E11: the distributed framework must reproduce the serial pipeline for
// every grid shape (within float reassociation tolerance).
func TestDistributedMatchesSerial(t *testing.T) {
	g, store, ref := testSetup(t)
	for _, grid := range [][2]int{{1, 1}, {2, 1}, {1, 2}, {2, 2}, {4, 2}, {2, 4}} {
		cfg := Config{
			R: grid[0], C: grid[1],
			Geometry:       g,
			InputPrefix:    "in",
			AssembleVolume: true,
		}
		res, err := Run(cfg, store)
		if err != nil {
			t.Fatalf("grid %v: %v", grid, err)
		}
		if res.Volume == nil {
			t.Fatalf("grid %v: no assembled volume", grid)
		}
		if r := relVolRMSE(t, ref, res.Volume); r > 1e-5 {
			t.Errorf("grid %v: relative RMSE vs serial = %g, want < 1e-5", grid, r)
		}
	}
}

func TestOutputSlicesStored(t *testing.T) {
	g, store, _ := testSetup(t)
	cfg := Config{
		R: 2, C: 2,
		Geometry:       g,
		InputPrefix:    "in",
		OutputPrefix:   "out",
		AssembleVolume: true,
	}
	res, err := Run(cfg, store)
	if err != nil {
		t.Fatal(err)
	}
	slices := store.List("out/")
	if len(slices) != g.Nz {
		t.Fatalf("stored %d slices, want %d", len(slices), g.Nz)
	}
	back, err := LoadVolume(store, "out", g.Nx, g.Ny, g.Nz)
	if err != nil {
		t.Fatal(err)
	}
	if r := relVolRMSE(t, res.Volume, back); r > 1e-7 {
		t.Errorf("stored volume differs from assembled: %g", r)
	}
}

func TestTimingsPopulated(t *testing.T) {
	g, store, _ := testSetup(t)
	cfg := Config{R: 2, C: 2, Geometry: g, InputPrefix: "in", OutputPrefix: "out"}
	res, err := Run(cfg, store)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerRank) != 4 {
		t.Fatalf("per-rank times: %d", len(res.PerRank))
	}
	m := res.Max
	if m.Filter <= 0 || m.Backproject <= 0 || m.Compute <= 0 || m.Total <= 0 {
		t.Errorf("stage times not populated: %+v", m)
	}
	if m.Total < m.Compute {
		t.Error("total < compute")
	}
	if m.Store <= 0 {
		t.Error("store time missing despite OutputPrefix")
	}
	if d := m.Delta(); d <= 0 {
		t.Errorf("delta = %g", d)
	}
	if res.BytesSent <= 0 {
		t.Error("BytesSent not recorded")
	}
}

func TestConfigValidation(t *testing.T) {
	g := geometry.Default(32, 32, 8, 8, 8, 8)
	good := Config{R: 2, C: 2, Geometry: g, InputPrefix: "in"}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []Config{
		{R: 0, C: 1, Geometry: g, InputPrefix: "in"},
		{R: 2, C: 3, Geometry: g, InputPrefix: "in"},                                   // Np=8 not divisible by 6
		{R: 8, C: 1, Geometry: g, InputPrefix: "in"},                                   // Nz=8 not divisible by 16
		{R: 1, C: 1, Geometry: g},                                                      // missing input
		{R: 1, C: 1, Geometry: geometry.Params{}, InputPrefix: "in"},                   // bad geometry
		{R: 1, C: 3, Geometry: geometry.Default(32, 32, 8, 8, 8, 8), InputPrefix: "x"}, // Np%3
	}
	for n, cfg := range cases {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", n, cfg)
		}
	}
}

func TestMissingInputFails(t *testing.T) {
	g := geometry.Default(32, 32, 8, 8, 8, 8)
	store := pfs.New(pfs.Config{})
	cfg := Config{R: 2, C: 2, Geometry: g, InputPrefix: "absent"}
	if _, err := Run(cfg, store); err == nil {
		t.Error("missing input should fail")
	} else if !strings.Contains(err.Error(), "no object") {
		t.Logf("error (ok): %v", err)
	}
}

func TestDecompositionHelpers(t *testing.T) {
	// Fig. 3a: R=8, C=4, 32 ranks; rank 9 is row 1, column 1.
	if RankRow(9, 8) != 1 || RankCol(9, 8) != 1 {
		t.Error("rank 9 should be (row 1, col 1)")
	}
	if RankID(1, 1, 8) != 9 {
		t.Error("RankID inverse broken")
	}
	lo, hi := ColProjRange(1, 1024, 4)
	if lo != 256 || hi != 512 {
		t.Errorf("column 1 range [%d,%d)", lo, hi)
	}
	lo, hi = RankProjRange(2, 1, 1024, 8, 4)
	if lo != 256+2*32 || hi != 256+3*32 {
		t.Errorf("rank range [%d,%d)", lo, hi)
	}
	z0, z1 := RowSlab(3, 4096, 32)
	if z0 != 3*64 || z1 != 4*64 {
		t.Errorf("slab [%d,%d)", z0, z1)
	}
}

// Projection coverage: every projection is loaded by exactly one rank, and
// each column covers its share exactly.
func TestProjectionPartition(t *testing.T) {
	const R, C, Np = 4, 3, 120
	seen := make([]int, Np)
	for col := 0; col < C; col++ {
		for row := 0; row < R; row++ {
			lo, hi := RankProjRange(row, col, Np, R, C)
			for s := lo; s < hi; s++ {
				seen[s]++
			}
		}
	}
	for s, n := range seen {
		if n != 1 {
			t.Fatalf("projection %d loaded %d times", s, n)
		}
	}
}

// Slab coverage: row slab pairs tile [0, Nz) exactly once.
func TestSlabPartition(t *testing.T) {
	const R, Nz = 8, 64
	seen := make([]int, Nz)
	for row := 0; row < R; row++ {
		z0, z1 := RowSlab(row, Nz, R)
		for _, k := range []int{z0, z1 - 1} {
			_ = k
		}
		for k := z0; k < z1; k++ {
			seen[k]++
			seen[Nz-1-k]++
		}
	}
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("plane %d covered %d times", k, n)
		}
	}
}

// Sec. 4.1.5: the paper uses R=32 for 4096³ and R=256 for 8192³ with 8 GB
// sub-volumes on 16 GB GPUs.
func TestChooseRMatchesPaper(t *testing.T) {
	dev := int64(16) << 30
	r4k, err := ChooseR(geometry.Problem{Nu: 2048, Nv: 2048, Np: 4096, Nx: 4096, Ny: 4096, Nz: 4096}, dev, 0)
	if err != nil || r4k != 32 {
		t.Errorf("4K: R = %d (%v), want 32", r4k, err)
	}
	r8k, err := ChooseR(geometry.Problem{Nu: 2048, Nv: 2048, Np: 4096, Nx: 8192, Ny: 8192, Nz: 8192}, dev, 0)
	if err != nil || r8k != 256 {
		t.Errorf("8K: R = %d (%v), want 256", r8k, err)
	}
	rSmall, err := ChooseR(geometry.Problem{Nu: 512, Nv: 512, Np: 512, Nx: 256, Ny: 256, Nz: 256}, dev, 0)
	if err != nil || rSmall != 1 {
		t.Errorf("small: R = %d (%v), want 1", rSmall, err)
	}
	// A tiny device cannot host the sub-volume plus a projection batch.
	if _, err := ChooseR(geometry.Problem{Nu: 2048, Nv: 2048, Np: 4096, Nx: 4096, Ny: 4096, Nz: 4096}, 1<<30, 8<<30); err == nil {
		t.Error("impossible device accepted")
	}
}

func TestStageProjectionsValidation(t *testing.T) {
	store := pfs.New(pfs.Config{})
	if err := StageProjections(store, "", nil); err == nil {
		t.Error("empty prefix accepted")
	}
	if err := StageProjections(store, "p", []*volume.Image{nil}); err == nil {
		t.Error("nil projection accepted")
	}
}

// CollectRounds must populate per-rank, per-round filter/AllGather timings
// without perturbing the reconstruction, and leave Rounds nil when off.
func TestCollectRounds(t *testing.T) {
	g, store, ref := testSetup(t)
	cfg := Config{
		R: 2, C: 2,
		Geometry:       g,
		InputPrefix:    "in",
		AssembleVolume: true,
		CollectRounds:  true,
	}
	res, err := Run(cfg, store)
	if err != nil {
		t.Fatal(err)
	}
	if r := relVolRMSE(t, ref, res.Volume); r > 1e-5 {
		t.Errorf("relative RMSE vs serial = %g, want < 1e-5", r)
	}
	quota := g.Np / (cfg.R * cfg.C)
	if len(res.Rounds) != cfg.R*cfg.C {
		t.Fatalf("Rounds covers %d ranks, want %d", len(res.Rounds), cfg.R*cfg.C)
	}
	for rank, rounds := range res.Rounds {
		if len(rounds) != quota {
			t.Fatalf("rank %d: %d rounds, want quota %d", rank, len(rounds), quota)
		}
		for i, rt := range rounds {
			if rt.Round != i {
				t.Errorf("rank %d round %d: Round = %d", rank, i, rt.Round)
			}
			if rt.FilterDur <= 0 || rt.GatherDur <= 0 {
				t.Errorf("rank %d round %d: zero durations %+v", rank, i, rt)
			}
			if rt.GatherOff < rt.FilterOff {
				t.Errorf("rank %d round %d: AllGather at %v before its filter at %v",
					rank, i, rt.GatherOff, rt.FilterOff)
			}
		}
	}

	cfg.CollectRounds = false
	res, err = Run(cfg, store)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != nil {
		t.Error("Rounds populated with CollectRounds off")
	}
}
