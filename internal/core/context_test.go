package core

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"ifdk/internal/ct/geometry"
	"ifdk/internal/ct/phantom"
	"ifdk/internal/ct/projector"
	"ifdk/internal/engine"
	"ifdk/internal/hpc/pfs"
)

// Progress must tick monotonically up to exactly Np rounds.
func TestRunContextProgress(t *testing.T) {
	g, store, _ := testSetup(t)
	var last, calls int
	cfg := Config{
		R: 2, C: 2,
		Geometry:    g,
		InputPrefix: "in",
		Progress: func(done, total int) {
			if total != g.Np {
				t.Errorf("total = %d, want %d", total, g.Np)
			}
			if done != last+1 {
				t.Errorf("done jumped from %d to %d", last, done)
			}
			last = done
			calls++
		},
	}
	if _, err := RunContext(context.Background(), cfg, store); err != nil {
		t.Fatal(err)
	}
	if calls != g.Np || last != g.Np {
		t.Fatalf("progress reached %d/%d in %d calls, want %d", last, g.Np, calls, g.Np)
	}
}

// waitGoroutines polls until the goroutine count drops back to the
// baseline (plus slack for runtime helpers) or the deadline expires.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d, baseline %d", runtime.NumGoroutine(), baseline)
}

// Cancelling mid-run must tear down all pipeline goroutines and surface the
// context error.
func TestRunContextCancelMidRun(t *testing.T) {
	g := geometry.Default(48, 48, 16, 16, 16, 16)
	ph := phantom.SheppLogan3D(g.FOVRadius() * 0.9)
	proj := projector.AnalyticAll(ph, g, 0)
	// Throttled storage stretches the run so cancellation lands mid-flight.
	store := pfs.New(pfs.Config{ReadBW: 2e6, Targets: 1, Throttle: true})
	if err := StageProjections(store, "in", proj); err != nil {
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()
	poolBaseline := engine.InUseBytes()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := Config{
		R: 2, C: 2,
		Geometry:       g,
		InputPrefix:    "in",
		AssembleVolume: true,
		Progress: func(done, total int) {
			if done == 2 {
				cancel() // strike while the pipeline is mid-flight
			}
		},
	}
	start := time.Now()
	res, err := RunContext(ctx, cfg, store)
	if err == nil {
		t.Fatal("cancelled run returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in the chain", err)
	}
	if res != nil {
		t.Error("cancelled run returned a result")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("cancellation took %v", d)
	}
	waitGoroutines(t, baseline)
	// An aborted pipeline must balance its pool books: slab volumes and
	// filtered projections stranded mid-flight go back, so the engine's
	// in-use gauge (which feeds /v1/metrics) does not drift per cancel.
	if got := engine.InUseBytes(); got != poolBaseline {
		t.Errorf("pool in-use bytes drifted across a cancelled run: %d -> %d", poolBaseline, got)
	}
}

// A pre-cancelled context fails immediately without leaking.
func TestRunContextAlreadyCancelled(t *testing.T) {
	g, store, _ := testSetup(t)
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := Config{R: 2, C: 2, Geometry: g, InputPrefix: "in"}
	if _, err := RunContext(ctx, cfg, store); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	waitGoroutines(t, baseline)
}

// StageProjectionsCtx must stop writing between projections once the
// context is cancelled, leaving only the already-written prefix.
func TestStageProjectionsCtxCancelled(t *testing.T) {
	g := geometry.Default(16, 16, 8, 8, 8, 8)
	ph := phantom.UniformSphere(g.FOVRadius()*0.5, 1)
	proj := projector.AnalyticAll(ph, g, 0)
	store := pfs.New(pfs.Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := StageProjectionsCtx(ctx, store, "in", proj); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := len(store.List("in/")); n != 0 {
		t.Errorf("%d projections written under a cancelled context", n)
	}
	if err := StageProjectionsCtx(context.Background(), store, "in", proj); err != nil {
		t.Fatal(err)
	}
	if n := len(store.List("in/")); n != g.Np {
		t.Errorf("staged %d projections, want %d", n, g.Np)
	}
}
