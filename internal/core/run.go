package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ifdk/internal/ct/backproject"
	"ifdk/internal/ct/geometry"
	"ifdk/internal/engine"
	"ifdk/internal/hpc/mpi"
	"ifdk/internal/hpc/pfs"
	"ifdk/internal/hpc/ringbuf"
	"ifdk/internal/volume"
)

// tag used by row roots to ship reduced sub-volumes to rank 0 for assembly.
const tagAssemble = 100

// projItem flows through the pipeline ring buffers: a filtered projection
// with its global index. Items from the filtering stage carry a pooled
// engine.Images image (buf == nil); items fanned out of the AllGather carry
// a pooled collective block (buf != nil) wrapped in a throwaway Image
// header — whoever consumes the item releases exactly its pooled backing.
type projItem struct {
	s   int
	img *volume.Image
	buf *engine.Buf[float32]
}

// Run executes a distributed reconstruction on R·C in-process MPI ranks,
// reading projections from and writing volume slices to the given PFS.
// It is the Go realization of the paper's Fig. 2–4 flow.
func Run(cfg Config, store *pfs.PFS) (*Result, error) {
	return RunContext(context.Background(), cfg, store)
}

// RunContext is Run with cancellation: when ctx is cancelled the MPI world
// aborts, the three pipeline goroutines of every rank drain and exit, and
// the call returns ctx's error. This is the teardown path the service layer
// uses to cancel an in-flight job without leaking goroutines.
func RunContext(ctx context.Context, cfg Config, store *pfs.PFS) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.R * cfg.C
	res := &Result{PerRank: make([]StageTimes, n)}
	if cfg.CollectRounds {
		res.Rounds = make([][]RoundTrace, n)
	}
	var assembled atomic.Pointer[volume.Volume]
	var bytesSent atomic.Int64

	tick := func() {}
	if cfg.Progress != nil {
		total := cfg.Geometry.Np // quota rounds × R·C ranks = Np ticks
		var mu sync.Mutex
		done := 0
		tick = func() {
			mu.Lock()
			done++
			cfg.Progress(done, total)
			mu.Unlock()
		}
	}
	sliceTick := func(int) {}
	if cfg.SliceWritten != nil && cfg.OutputPrefix != "" {
		total := cfg.Geometry.Nz // every row root stores its slab pair once
		var mu sync.Mutex
		written := 0
		sliceTick = func(z int) {
			mu.Lock()
			written++
			cfg.SliceWritten(z, written, total)
			mu.Unlock()
		}
	}

	err := mpi.RunContext(ctx, n, func(c *mpi.Comm) error {
		t, vol, rounds, err := runRank(ctx, cfg, store, c, tick, sliceTick)
		if err != nil {
			return err
		}
		res.PerRank[c.Rank()] = t
		if res.Rounds != nil {
			res.Rounds[c.Rank()] = rounds
		}
		if c.Rank() == 0 {
			bytesSent.Store(c.BytesSent())
			if vol != nil {
				assembled.Store(vol)
			}
		}
		return nil
	})
	if err != nil {
		if ctx.Err() != nil {
			return nil, fmt.Errorf("core: run cancelled: %w", ctx.Err())
		}
		return nil, err
	}
	for _, t := range res.PerRank {
		res.Max = maxTimes(res.Max, t)
	}
	res.Volume = assembled.Load()
	res.BytesSent = bytesSent.Load()
	return res, nil
}

// runRank is the body of one MPI rank: the three-thread pipeline of
// Fig. 4a followed by the reduce/store epilogue of Fig. 4b. tick is called
// once per completed AllGather round for progress reporting; sliceTick once
// per output slice written to the PFS, with its global z index.
func runRank(ctx context.Context, cfg Config, store *pfs.PFS, c *mpi.Comm, tick func(), sliceTick func(z int)) (StageTimes, *volume.Volume, []RoundTrace, error) {
	var t StageTimes
	g := cfg.Geometry
	row := RankRow(c.Rank(), cfg.R)
	col := RankCol(c.Rank(), cfg.R)
	colComm, err := c.Split(col, row) // column group: AllGather of projections
	if err != nil {
		return t, nil, nil, err
	}
	rowComm, err := c.Split(row, col) // row group: Reduce of sub-volumes
	if err != nil {
		return t, nil, nil, err
	}

	start := time.Now()
	quota := g.Np / (cfg.R * cfg.C)
	// Pre-sized per-rank round-trace buffer: the filter thread writes the
	// Filter* fields of entry s-myLo, the main thread the Gather* fields of
	// entry r — disjoint fields, fixed capacity, zero steady-state allocs.
	var rounds []RoundTrace
	if cfg.CollectRounds {
		rounds = make([]RoundTrace, quota)
		for i := range rounds {
			rounds[i].Round = i
		}
	}
	colLo, _ := ColProjRange(col, g.Np, cfg.C)
	myLo, myHi := RankProjRange(row, col, g.Np, cfg.R, cfg.C)
	z0, z1 := RowSlab(row, g.Nz, cfg.R)
	h := z1 - z0

	// --- Filtering thread (Fig. 4a, left): load + filter own projections
	// in round order and feed the Main thread through a circular buffer.
	// Each projection lives in one pooled image for its whole life on this
	// rank: decoded into it straight off the PFS, filtered in place, handed
	// through the ring, and released after the AllGather copies it out —
	// zero per-projection heap allocations in steady state.
	ringA := ringbuf.New[projItem](cfg.queueDepth())
	filterErr := make(chan error, 1)
	go func() {
		filterErr <- func() error {
			defer ringA.Close()
			flt, err := cfg.rowFilter()
			if err != nil {
				return err
			}
			defer flt.Close()
			for s := myLo; s < myHi; s++ {
				if err := ctx.Err(); err != nil {
					return err
				}
				roundOff := time.Since(start)
				loadStart := time.Now()
				img := engine.Images.Acquire(g.Nu, g.Nv)
				if _, err := store.ReadProjectionInto(img, cfg.InputPrefix, s); err != nil {
					engine.Images.Release(img)
					return fmt.Errorf("rank %d: %w", c.Rank(), err)
				}
				t.Load += time.Since(loadStart)
				fltStart := time.Now()
				batch, err := flt.Filter(ctx, img)
				if err != nil {
					engine.Images.Release(img)
					return err
				}
				t.Filter += time.Since(fltStart)
				if rounds != nil {
					rounds[s-myLo].FilterOff = roundOff
					rounds[s-myLo].FilterDur = time.Since(start) - roundOff
					rounds[s-myLo].BatchSize = batch
				}
				if !ringA.Put(projItem{s: s, img: img}) {
					engine.Images.Release(img)
					return nil // pipeline shut down
				}
			}
			return nil
		}()
	}()

	// --- Back-projection thread (Fig. 4a, right): batch incoming filtered
	// projections and accumulate them into the rank's slab-pair volume.
	ringB := ringbuf.New[projItem](cfg.queueDepth() * max(1, cfg.R))
	local := engine.Volumes.Acquire(g.Nx, g.Ny, 2*h, volume.KMajor)
	bpErr := make(chan error, 1)
	go func() {
		bpErr <- func() error {
			batchSize := cfg.Batch
			if batchSize <= 0 {
				batchSize = backproject.DefaultBatch
			}
			var imgs []*volume.Image
			var mats []geometry.ProjMat
			var bufs []*engine.Buf[float32]
			releaseBufs := func() {
				for _, b := range bufs {
					b.Release()
				}
				bufs = bufs[:0]
			}
			flush := func() error {
				if len(imgs) == 0 {
					return nil
				}
				bpStart := time.Now()
				task := backproject.Task{Mats: mats, Proj: imgs}
				opt := backproject.Options{Workers: cfg.workers(), Batch: batchSize}
				err := backproject.ProposedSlabPair(task, local, opt, g.Nz, z0, z1)
				// The batch is consumed (or abandoned) either way: its
				// pooled AllGather blocks go back for the next round.
				releaseBufs()
				if err != nil {
					return err
				}
				t.Backproject += time.Since(bpStart)
				imgs, mats = imgs[:0], mats[:0]
				return nil
			}
			for {
				it, ok := ringB.Get()
				if !ok {
					return flush()
				}
				imgs = append(imgs, it.img)
				bufs = append(bufs, it.buf)
				mats = append(mats, geometry.ProjectionMatrix(g, g.Beta(it.s)))
				if len(imgs) == batchSize {
					if err := flush(); err != nil {
						return err
					}
				}
			}
		}()
	}()

	// --- Main thread: one AllGather per projection round (Sec. 4.1.3);
	// round r exchanges each column rank's r-th filtered projection, whose
	// global index is colLo + i·quota + r for the rank at column position i.
	mainErr := func() error {
		defer ringB.Close()
		for r := 0; r < quota; r++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			it, ok := ringA.Get()
			if !ok {
				return fmt.Errorf("rank %d: filtering ended early at round %d", c.Rank(), r)
			}
			if it.s != myLo+r {
				engine.Images.Release(it.img)
				return fmt.Errorf("rank %d: projection %d out of order (want %d)", c.Rank(), it.s, myLo+r)
			}
			agOff := time.Since(start)
			agStart := time.Now()
			blocks, err := colComm.AllGatherBufs(it.img.Data)
			// The AllGather copies the payload into its own pooled blocks,
			// so the pooled projection can be recycled immediately.
			engine.Images.Release(it.img)
			if err != nil {
				return err
			}
			t.AllGather += time.Since(agStart)
			if rounds != nil {
				rounds[r].GatherOff = agOff
				rounds[r].GatherDur = time.Since(agStart)
			}
			for i, blk := range blocks {
				s := colLo + i*quota + r
				if !ringB.Put(projItem{s: s, img: &volume.Image{W: g.Nu, H: g.Nv, Data: blk.Data}, buf: blk}) {
					for _, rest := range blocks[i:] {
						rest.Release() // never enqueued: back to the pool here
					}
					return fmt.Errorf("rank %d: back-projection ended early", c.Rank())
				}
			}
			tick()
		}
		return nil
	}()
	// abandon unwinds an aborted pipeline without leaking pooled buffers:
	// filtered projections stranded in ringA, AllGather blocks stranded in
	// ringB and the rank's slab-pair volume go back to their pools (the
	// engine's in-use gauges feed admission metrics, so cancelled jobs must
	// balance their books too). Both rings are closed by then, so Get
	// drains the leftovers and reports !ok.
	abandon := func() {
		for {
			it, ok := ringA.Get()
			if !ok {
				break
			}
			engine.Images.Release(it.img)
		}
		for {
			it, ok := ringB.Get()
			if !ok {
				break
			}
			it.buf.Release() // the wrapped Image header is throwaway
		}
		engine.Volumes.Release(local)
	}
	if mainErr != nil {
		ringA.Close()
		ringB.Close()
		<-filterErr
		<-bpErr
		abandon()
		return t, nil, nil, mainErr
	}
	if err := <-filterErr; err != nil {
		ringB.Close()
		<-bpErr
		abandon()
		return t, nil, nil, err
	}
	if err := <-bpErr; err != nil {
		abandon()
		return t, nil, nil, err
	}
	t.Compute = time.Since(start)

	// --- Epilogue (Fig. 4b): reduce the row's partial volumes, store the
	// output slices, optionally assemble the full volume at rank 0. The
	// whole epilogue runs on pooled collective blocks: ReduceBufs hands the
	// row root a pooled accumulator, which is either released here or its
	// ownership transferred to rank 0 via SendBuf — no per-job heap copies.
	redStart := time.Now()
	red, err := rowComm.ReduceBufs(0, local.Data, mpi.OpSum)
	// ReduceBufs copies the payload into its own pooled accumulator, so the
	// slab pair goes back for the next job regardless of the outcome.
	engine.Volumes.Release(local)
	if err != nil {
		return t, nil, nil, err
	}
	// Only the row root holds a block; release it on every exit path unless
	// its ownership has been handed off (red set to nil below).
	defer func() {
		if red != nil {
			red.Release()
		}
	}()
	t.Reduce = time.Since(redStart)

	var full *volume.Volume
	if rowComm.Rank() == 0 { // row root (grid column 0)
		reduced := &volume.Volume{Nx: g.Nx, Ny: g.Ny, Nz: 2 * h, Layout: volume.KMajor, Data: red.Data}
		if cfg.OutputPrefix != "" {
			storeStart := time.Now()
			planes := backproject.SlabPlanes(g.Nz, z0, z1)
			for p, globalZ := range planes {
				// Honour cancellation between slices so an aborted job
				// stops publishing output (and slice callbacks) promptly.
				if err := ctx.Err(); err != nil {
					return t, nil, nil, err
				}
				img := reduced.SliceZ(p)
				if _, err := store.Write(pfs.SlicePath(cfg.OutputPrefix, globalZ), volume.ImageToBytes(img)); err != nil {
					return t, nil, nil, err
				}
				sliceTick(globalZ)
			}
			t.Store = time.Since(storeStart)
		}
		if cfg.AssembleVolume {
			if c.Rank() == 0 {
				full = volume.New(g.Nx, g.Ny, g.Nz, volume.IMajor)
				if err := backproject.SlabPairToGlobal(reduced, full, g.Nz, z0, z1); err != nil {
					return t, nil, nil, err
				}
				for otherRow := 1; otherRow < cfg.R; otherRow++ {
					blk, err := c.RecvBuf(RankID(otherRow, 0, cfg.R), tagAssemble)
					if err != nil {
						return t, nil, nil, err
					}
					oz0, oz1 := RowSlab(otherRow, g.Nz, cfg.R)
					part := &volume.Volume{Nx: g.Nx, Ny: g.Ny, Nz: 2 * (oz1 - oz0), Layout: volume.KMajor, Data: blk.Data}
					err = backproject.SlabPairToGlobal(part, full, g.Nz, oz0, oz1)
					blk.Release()
					if err != nil {
						return t, nil, nil, err
					}
				}
			} else {
				// SendBuf transfers ownership of the reduced block to rank 0's
				// mailbox zero-copy — clear red first so the deferred release
				// does not double-free it.
				blk := red
				red = nil
				if err := c.SendBuf(0, tagAssemble, blk); err != nil {
					return t, nil, nil, err
				}
			}
		}
	}
	t.Total = time.Since(start)
	return t, full, rounds, nil
}
