// Package bench regenerates every table and figure of the paper's
// evaluation (Sec. 5) from the simulated substrates: Table 3 (kernel
// characteristics), Table 4 (back-projection kernel GUPS), Table 5
// (Tcompute breakdown and pipeline gain δ), Fig. 5a–d (strong/weak
// scaling), Fig. 6 (end-to-end GUPS) and Fig. 7 (volume reduction demo).
// The cmd/ifdk-bench binary and the root-level Go benchmarks are thin
// wrappers over this package.
package bench

import (
	"fmt"
	"strings"

	"ifdk/internal/ct/geometry"
	"ifdk/internal/gpusim"
)

// Table4Problems returns the 15 image-reconstruction problems of Table 4:
// three input sizes × five output sizes.
func Table4Problems() []geometry.Problem {
	const k = 1024
	inputs := [][3]int{
		{512, 512, k},
		{k, k, k},
		{2 * k, 2 * k, k},
	}
	outputs := [][3]int{
		{128, 128, 128},
		{256, 256, 256},
		{512, 512, 512},
		{k, k, k},
		{k, k, 2 * k},
	}
	var out []geometry.Problem
	for _, in := range inputs {
		for _, o := range outputs {
			out = append(out, geometry.Problem{
				Nu: in[0], Nv: in[1], Np: in[2],
				Nx: o[0], Ny: o[1], Nz: o[2],
			})
		}
	}
	return out
}

// Table4Row is one row of Table 4: a problem, its α, and the modelled GUPS
// of each kernel (NaN-free: unsupported cells are reported via Supported).
type Table4Row struct {
	Problem geometry.Problem
	Alpha   float64
	Reports []gpusim.Report // indexed like gpusim.Kernels
}

// Table4 evaluates all kernels on all problems with the given sampling
// budget (zero values use the estimator defaults).
func Table4(dev gpusim.Device, cfg gpusim.EstimateConfig) []Table4Row {
	problems := Table4Problems()
	rows := make([]Table4Row, 0, len(problems))
	for _, pr := range problems {
		row := Table4Row{Problem: pr, Alpha: pr.Alpha()}
		for _, k := range gpusim.Kernels {
			row.Reports = append(row.Reports, gpusim.Estimate(dev, pr, k, cfg))
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderTable4 formats the rows like the paper's Table 4 (N/A where the
// kernel cannot hold the output).
func RenderTable4(rows []Table4Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4: back-projection kernel performance (modelled %s), GUPS\n", "Tesla V100")
	fmt.Fprintf(&b, "%-28s %8s", "FDK problem (pixel->voxel)", "alpha")
	for _, k := range gpusim.Kernels {
		fmt.Fprintf(&b, " %9s", k)
	}
	b.WriteByte('\n')
	for _, row := range rows {
		fmt.Fprintf(&b, "%-28s %8s", row.Problem, formatAlpha(row.Alpha))
		for _, rep := range row.Reports {
			if !rep.Supported {
				fmt.Fprintf(&b, " %9s", "N/A")
			} else {
				fmt.Fprintf(&b, " %9.1f", rep.GUPS)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func formatAlpha(a float64) string {
	if a >= 1 {
		return fmt.Sprintf("%.0f", a)
	}
	return fmt.Sprintf("1/%.0f", 1/a)
}

// Table4Speedup summarizes E3, the abstract's headline kernel claim: the
// proposed L1-Tran kernel versus the RTK-32 baseline over the rows where
// both run. The claim lives in the practical low-α regime ("in most
// applications the value of α is typically very small", Sec. 5.2): at large
// α the transpose overhead dominates and RTK-32 wins, in the paper as here.
type Table4Speedup struct {
	Min, Max, Mean float64 // over all comparable rows
	MeanLowAlpha   float64 // over rows with α ≤ 8 (the practical regime)
	Rows, LowRows  int
}

// Speedup computes the L1-Tran / RTK-32 GUPS ratio across rows.
func Speedup(rows []Table4Row) Table4Speedup {
	var s Table4Speedup
	var sum, lowSum float64
	s.Min = 1e300
	for _, row := range rows {
		rtk := row.Reports[0]
		l1 := row.Reports[len(row.Reports)-1]
		if !rtk.Supported || !l1.Supported {
			continue
		}
		ratio := l1.GUPS / rtk.GUPS
		sum += ratio
		if ratio < s.Min {
			s.Min = ratio
		}
		if ratio > s.Max {
			s.Max = ratio
		}
		s.Rows++
		if row.Alpha <= 8 {
			lowSum += ratio
			s.LowRows++
		}
	}
	if s.Rows > 0 {
		s.Mean = sum / float64(s.Rows)
	}
	if s.LowRows > 0 {
		s.MeanLowAlpha = lowSum / float64(s.LowRows)
	}
	return s
}

// RenderTable3 reproduces the characteristics matrix of Table 3.
func RenderTable3() string {
	var b strings.Builder
	b.WriteString("Table 3: back-projection kernel characteristics\n")
	fmt.Fprintf(&b, "%-9s %-13s %-9s %-20s %-16s\n",
		"Kernel", "Texture cache", "L1 cache", "Transpose projection", "Transpose volume")
	mark := func(v bool) string {
		if v {
			return "yes"
		}
		return "-"
	}
	for _, k := range gpusim.Kernels {
		ch := k.Characteristics()
		fmt.Fprintf(&b, "%-9s %-13s %-9s %-20s %-16s\n",
			k, mark(ch.TextureCache), mark(ch.L1Cache), mark(ch.TransposeProj), mark(ch.TransposeVol))
	}
	return b.String()
}
