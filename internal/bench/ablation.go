package bench

import (
	"fmt"
	"strings"
	"time"

	"ifdk/internal/ct/backproject"
	"ifdk/internal/ct/geometry"
	"ifdk/internal/volume"
)

// AblationRow measures one back-projection variant on the real CPU — the
// design-choice ablation called out in DESIGN.md: how much of Alg. 4's win
// comes from the Theorem-1 symmetry, the Theorem-2/3 reuse and the
// transposed layout, respectively.
type AblationRow struct {
	Name    string
	Variant backproject.Variant
	Seconds float64
	MUPS    float64 // mega-updates per second (CPU scale)
}

// Ablation times the standard algorithm and all proposed-variant
// combinations on a synthetic problem of the given size.
func Ablation(n, np int, seed int64) ([]AblationRow, error) {
	g := geometry.Default(2*n, 2*n, np, n, n, n)
	task := syntheticTask(g, seed)
	updates := float64(n) * float64(n) * float64(n) * float64(np)

	var rows []AblationRow
	timeIt := func(name string, f func() error, va backproject.Variant) error {
		start := time.Now()
		if err := f(); err != nil {
			return err
		}
		sec := time.Since(start).Seconds()
		rows = append(rows, AblationRow{Name: name, Variant: va, Seconds: sec, MUPS: updates / sec / 1e6})
		return nil
	}

	stdVol := volume.New(g.Nx, g.Ny, g.Nz, volume.IMajor)
	if err := timeIt("standard (Alg 2)", func() error {
		return backproject.Standard(task, stdVol, backproject.Options{})
	}, backproject.Variant{}); err != nil {
		return nil, err
	}
	variants := []struct {
		name string
		va   backproject.Variant
	}{
		{"naive k-major", backproject.Variant{}},
		{"+symmetry", backproject.Variant{Symmetry: true}},
		{"+reuse", backproject.Variant{Reuse: true}},
		{"+transpose", backproject.Variant{Transpose: true}},
		{"+symmetry+reuse", backproject.Variant{Symmetry: true, Reuse: true}},
		{"proposed (Alg 4)", backproject.ProposedVariant},
	}
	for _, v := range variants {
		vol := volume.New(g.Nx, g.Ny, g.Nz, volume.KMajor)
		va := v.va
		if err := timeIt(v.name, func() error {
			return backproject.Ablate(task, vol, backproject.Options{}, va)
		}, va); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

func syntheticTask(g geometry.Params, seed int64) backproject.Task {
	task := backproject.Task{Mats: geometry.ProjectionMatrices(g)}
	state := uint64(seed)*2654435761 + 1
	for s := 0; s < g.Np; s++ {
		img := volume.NewImage(g.Nu, g.Nv)
		for n := range img.Data {
			state = state*6364136223846793005 + 1442695040888963407
			img.Data[n] = float32(state>>40) / float32(1<<24)
		}
		task.Proj = append(task.Proj, img)
	}
	return task
}

// RenderAblation formats the rows.
func RenderAblation(rows []AblationRow) string {
	var b strings.Builder
	b.WriteString("Ablation: CPU back-projection variants (design choices of Alg 4)\n")
	fmt.Fprintf(&b, "%-20s %9s %9s %9s %9s %9s\n", "variant", "symmetry", "reuse", "transpose", "time(s)", "MUPS")
	mark := func(v bool) string {
		if v {
			return "yes"
		}
		return "-"
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "%-20s %9s %9s %9s %9.3f %9.1f\n",
			r.Name, mark(r.Variant.Symmetry), mark(r.Variant.Reuse), mark(r.Variant.Transpose), r.Seconds, r.MUPS)
	}
	return b.String()
}
