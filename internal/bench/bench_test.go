package bench

import (
	"strings"
	"testing"

	"ifdk/internal/gpusim"
	"ifdk/internal/perfmodel"
)

func quickEst() gpusim.EstimateConfig {
	return gpusim.EstimateConfig{SampleWarps: 48, BatchSamples: 1}
}

func TestTable4ProblemsMatchPaper(t *testing.T) {
	problems := Table4Problems()
	if len(problems) != 15 {
		t.Fatalf("Table 4 has %d problems, want 15", len(problems))
	}
	if problems[0].String() != "512x512x1024->128x128x128" {
		t.Errorf("first problem = %s", problems[0])
	}
	// α of the first row is 512·512·1024 / 128³ = 128 (Table 4).
	if a := problems[0].Alpha(); a != 128 {
		t.Errorf("first α = %g, want 128", a)
	}
	last := problems[14]
	if last.String() != "2048x2048x1024->1024x1024x2048" {
		t.Errorf("last problem = %s", last)
	}
	if a := last.Alpha(); a != 2 {
		t.Errorf("last α = %g, want 2", a)
	}
}

func TestTable4RowsAndNA(t *testing.T) {
	rows := Table4(gpusim.TeslaV100(), quickEst())
	if len(rows) != 15 {
		t.Fatalf("%d rows", len(rows))
	}
	naCount := 0
	for _, row := range rows {
		if len(row.Reports) != len(gpusim.Kernels) {
			t.Fatalf("row has %d reports", len(row.Reports))
		}
		for ki, rep := range row.Reports {
			if !rep.Supported {
				naCount++
				if gpusim.Kernels[ki] != gpusim.RTK32 {
					t.Errorf("unexpected N/A for %v on %s", gpusim.Kernels[ki], row.Problem)
				}
			}
		}
	}
	// RTK-32 is N/A exactly for the three 1k×1k×2k outputs (8 GiB).
	if naCount != 3 {
		t.Errorf("N/A count = %d, want 3", naCount)
	}
	text := RenderTable4(rows)
	if !strings.Contains(text, "N/A") || !strings.Contains(text, "RTK-32") {
		t.Error("rendered table incomplete")
	}
	if strings.Count(text, "\n") < 16 {
		t.Error("rendered table too short")
	}
}

// E3: the abstract claims the proposed kernel is up to 1.6x faster than the
// standard implementation; the mean modelled speedup must comfortably
// exceed 1 and the max must reach at least 1.6.
func TestSpeedupClaim(t *testing.T) {
	rows := Table4(gpusim.TeslaV100(), quickEst())
	s := Speedup(rows)
	if s.Rows == 0 {
		t.Fatal("no comparable rows")
	}
	if s.Max < 1.6 {
		t.Errorf("max speedup %.2f, paper claims up to 1.6x", s.Max)
	}
	if s.LowRows == 0 {
		t.Fatal("no low-α rows")
	}
	if s.MeanLowAlpha < 1.4 {
		t.Errorf("mean low-α speedup %.2f, want ≥ 1.4 (paper ≈ 1.7)", s.MeanLowAlpha)
	}
	// At large α the transpose overhead lets RTK-32 win, as in the paper.
	if s.Min >= 1 {
		t.Errorf("min speedup %.2f — expected RTK-32 to win somewhere at large α", s.Min)
	}
}

func TestRenderTable3(t *testing.T) {
	text := RenderTable3()
	for _, want := range []string{"RTK-32", "Bp-Tex", "Tex-Tran", "Bp-L1", "L1-Tran"} {
		if !strings.Contains(text, want) {
			t.Errorf("Table 3 missing %s", want)
		}
	}
}

func TestFig5Configs(t *testing.T) {
	mb := perfmodel.ABCI()
	for _, cfg := range []Fig5Config{Fig5a(), Fig5b(), Fig5c(), Fig5d()} {
		points, err := RunFig5(cfg, mb)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if len(points) != len(cfg.NGpus) {
			t.Fatalf("%s: %d points", cfg.Name, len(points))
		}
		text := RenderFig5(cfg, points)
		if !strings.Contains(text, cfg.Name) {
			t.Errorf("%s: render missing name", cfg.Name)
		}
		// Strong scaling: compute decreases monotonically.
		if cfg.WeakNp == 0 {
			for i := 1; i < len(points); i++ {
				if points[i].Res.SimCompute >= points[i-1].Res.SimCompute {
					t.Errorf("%s: compute not decreasing at %d GPUs", cfg.Name, points[i].NGpus)
				}
			}
		}
		// C=1 points have no reduce.
		if points[0].NGpus == cfg.R && points[0].Res.SimReduce != 0 {
			t.Errorf("%s: reduce nonzero at C=1", cfg.Name)
		}
	}
}

func TestTable5(t *testing.T) {
	points, err := Table5(perfmodel.ABCI())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 8 {
		t.Fatalf("%d rows, want 8 (4 per volume)", len(points))
	}
	for _, p := range points {
		if p.Res.Delta <= 1 {
			t.Errorf("%d GPUs: δ = %.2f, want > 1 (Table 5)", p.NGpus, p.Res.Delta)
		}
	}
	text := RenderTable5(points)
	if !strings.Contains(text, "delta") || !strings.Contains(text, "4096^3") {
		t.Error("Table 5 render incomplete")
	}
}

func TestFig6(t *testing.T) {
	series, err := Fig6(perfmodel.ABCI())
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("%d series", len(series))
	}
	// GUPS grows along each series.
	for _, s := range series {
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].Res.GUPS <= s.Points[i-1].Res.GUPS {
				t.Errorf("%s: GUPS not increasing at %d GPUs", s.Label, s.Points[i].NGpus)
			}
		}
	}
	// At 2048 GPUs the 8K output out-scales the 4K output (Sec. 5.3.3).
	last := func(s Fig6Series) float64 { return s.Points[len(s.Points)-1].Res.GUPS }
	if last(series[2]) <= last(series[1]) {
		t.Errorf("8K (%g) should exceed 4K (%g) at 2048 GPUs", last(series[2]), last(series[1]))
	}
	text := RenderFig6(series)
	if !strings.Contains(text, "8192^3") {
		t.Error("Fig 6 render incomplete")
	}
}

func TestFig7(t *testing.T) {
	res, err := Fig7(16, perfmodel.ABCI())
	if err != nil {
		t.Fatal(err)
	}
	if res.RMSEvsSerial > 1e-5 {
		t.Errorf("fig7 RMSE vs serial = %g", res.RMSEvsSerial)
	}
	if res.RealGUPS <= 0 {
		t.Error("fig7 real GUPS missing")
	}
	if res.CenterSlice == nil || res.CenterSlice.W != 16 {
		t.Error("fig7 centre slice missing")
	}
	if res.ModelGUPS < 300 || res.ModelGUPS > 4000 {
		t.Errorf("fig7 model GUPS = %g, paper reports 1,134", res.ModelGUPS)
	}
	if !strings.Contains(RenderFig7(res), "16 GPUs") {
		t.Error("fig7 render incomplete")
	}
	if _, err := Fig7(9, perfmodel.ABCI()); err == nil {
		t.Error("invalid fig7 scale accepted")
	}
}

func TestAblation(t *testing.T) {
	rows, err := Ablation(12, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("%d ablation rows", len(rows))
	}
	for _, r := range rows {
		if r.Seconds <= 0 || r.MUPS <= 0 {
			t.Errorf("%s: empty measurement", r.Name)
		}
	}
	if !strings.Contains(RenderAblation(rows), "proposed (Alg 4)") {
		t.Error("ablation render incomplete")
	}
}
