package bench

import (
	"fmt"
	"math"
	"strings"
	"time"

	"ifdk/internal/core"
	"ifdk/internal/ct/fdk"
	"ifdk/internal/ct/geometry"
	"ifdk/internal/ct/phantom"
	"ifdk/internal/ct/projector"
	"ifdk/internal/hpc/pfs"
	"ifdk/internal/perfmodel"
	"ifdk/internal/simcluster"
	"ifdk/internal/volume"
)

// Fig7Result is the volume-reduction demo of Fig. 7: a real (scaled-down)
// iFDK run on a 4×4 grid plus the full-scale model point the paper reports
// (2048²×4096 → 2048³ on 16 GPUs at 1,134 GUPS).
type Fig7Result struct {
	// Real run (laptop scale).
	Geometry     geometry.Params
	RealGUPS     float64
	RMSEvsSerial float64
	CenterSlice  *volume.Image

	// Full-scale model point.
	ModelProblem geometry.Problem
	ModelGUPS    float64
}

// Fig7 executes the demo: a real R=4, C=4 distributed reconstruction of the
// Shepp–Logan phantom at the given scale (nx voxels per side), verified
// against the serial pipeline, plus the simulated full-scale counterpart.
func Fig7(nx int, mb perfmodel.MicroBench) (*Fig7Result, error) {
	if nx < 8 || nx%8 != 0 {
		return nil, fmt.Errorf("bench: fig7 scale %d must be a multiple of 8 (R=4 slab pairs)", nx)
	}
	g := geometry.Default(2*nx, 2*nx, 2*nx, nx, nx, nx)
	ph := phantom.SheppLogan3D(g.FOVRadius() * 0.9)
	proj := projector.AnalyticAll(ph, g, 0)
	store := pfs.New(pfs.Config{})
	if err := core.StageProjections(store, "fig7/in", proj); err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := core.Run(core.Config{
		R: 4, C: 4,
		Geometry:       g,
		InputPrefix:    "fig7/in",
		OutputPrefix:   "fig7/out",
		AssembleVolume: true,
	}, store)
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start).Seconds()
	serial, err := fdk.Reconstruct(g, proj, fdk.Config{})
	if err != nil {
		return nil, err
	}
	rmse, err := volume.RMSE(serial, res.Volume)
	if err != nil {
		return nil, err
	}
	s := serial.Summarize()
	scale := math.Max(math.Abs(float64(s.Min)), math.Abs(float64(s.Max)))
	if scale > 0 {
		rmse /= scale
	}
	pr := geometry.Problem{Nu: g.Nu, Nv: g.Nv, Np: g.Np, Nx: g.Nx, Ny: g.Ny, Nz: g.Nz}

	sim, err := simcluster.Simulate(simcluster.Config{Problem: TwoK(), R: 4, C: 4, MB: mb})
	if err != nil {
		return nil, err
	}
	return &Fig7Result{
		Geometry:     g,
		RealGUPS:     pr.GUPS(elapsed),
		RMSEvsSerial: rmse,
		CenterSlice:  res.Volume.SliceZ(g.Nz / 2),
		ModelProblem: TwoK(),
		ModelGUPS:    sim.GUPS,
	}, nil
}

// RenderFig7 summarizes the demo.
func RenderFig7(r *Fig7Result) string {
	var b strings.Builder
	b.WriteString("Fig 7: volume reduction on a 4x4 grid (16 ranks, MPI_Reduce per row)\n")
	fmt.Fprintf(&b, "  real run      : %dx%dx%d -> %dx%dx%d, %.3f GUPS, RMSE vs serial %.2e\n",
		r.Geometry.Nu, r.Geometry.Nv, r.Geometry.Np, r.Geometry.Nx, r.Geometry.Ny, r.Geometry.Nz,
		r.RealGUPS, r.RMSEvsSerial)
	fmt.Fprintf(&b, "  full-scale sim: %s on 16 GPUs = %.0f GUPS (paper: 1,134)\n",
		r.ModelProblem, r.ModelGUPS)
	return b.String()
}
