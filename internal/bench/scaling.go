package bench

import (
	"fmt"
	"strings"

	"ifdk/internal/ct/geometry"
	"ifdk/internal/perfmodel"
	"ifdk/internal/simcluster"
)

// FourK is the paper's 4K problem: 2048²×4096 → 4096³ (256 GiB output).
func FourK() geometry.Problem {
	return geometry.Problem{Nu: 2048, Nv: 2048, Np: 4096, Nx: 4096, Ny: 4096, Nz: 4096}
}

// EightK is the paper's 8K problem: 2048²×4096 → 8192³ (2 TiB output).
func EightK() geometry.Problem {
	return geometry.Problem{Nu: 2048, Nv: 2048, Np: 4096, Nx: 8192, Ny: 8192, Nz: 8192}
}

// TwoK is the smaller problem of Fig. 6/7: 2048²×4096 → 2048³.
func TwoK() geometry.Problem {
	return geometry.Problem{Nu: 2048, Nv: 2048, Np: 4096, Nx: 2048, Ny: 2048, Nz: 2048}
}

// ScalingPoint is one bar group of Fig. 5 (plus the Table 5 columns).
type ScalingPoint struct {
	NGpus int
	Res   simcluster.Result
}

// Fig5Config selects one of the four scaling sub-figures.
type Fig5Config struct {
	Name    string
	Problem geometry.Problem
	R       int
	NGpus   []int
	WeakNp  int // projections per GPU for weak scaling (0 = strong scaling)
}

// Fig5a is strong scaling of the 4K problem: R=32, C=Ngpus/32 (Fig. 5a).
func Fig5a() Fig5Config {
	return Fig5Config{Name: "fig5a strong 4K", Problem: FourK(), R: 32,
		NGpus: []int{32, 64, 128, 256, 512, 1024, 2048}}
}

// Fig5b is strong scaling of the 8K problem: R=256 (Fig. 5b).
func Fig5b() Fig5Config {
	return Fig5Config{Name: "fig5b strong 8K", Problem: EightK(), R: 256,
		NGpus: []int{256, 512, 1024, 2048}}
}

// Fig5c is weak scaling of the 4K problem: Np = 16·Ngpus (Fig. 5c).
func Fig5c() Fig5Config {
	cfg := Fig5a()
	cfg.Name = "fig5c weak 4K"
	cfg.WeakNp = 16
	return cfg
}

// Fig5d is weak scaling of the 8K problem: Np = 4·Ngpus (Fig. 5d).
func Fig5d() Fig5Config {
	cfg := Fig5b()
	cfg.Name = "fig5d weak 8K"
	cfg.WeakNp = 4
	return cfg
}

// RunFig5 simulates every GPU count of the sub-figure.
func RunFig5(cfg Fig5Config, mb perfmodel.MicroBench) ([]ScalingPoint, error) {
	var out []ScalingPoint
	for _, n := range cfg.NGpus {
		pr := cfg.Problem
		if cfg.WeakNp > 0 {
			pr.Np = cfg.WeakNp * n
		}
		res, err := simcluster.Simulate(simcluster.Config{
			Problem: pr, R: cfg.R, C: n / cfg.R, MB: mb,
		})
		if err != nil {
			return nil, fmt.Errorf("%s at %d GPUs: %w", cfg.Name, n, err)
		}
		out = append(out, ScalingPoint{NGpus: n, Res: res})
	}
	return out, nil
}

// RenderFig5 prints the stacked series of one sub-figure: simulated
// ("measured") compute/D2H/store/reduce plus the model peak, like the bar
// annotations of Fig. 5.
func RenderFig5(cfg Fig5Config, points []ScalingPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s, R=%d\n", cfg.Name, cfg.Problem, cfg.R)
	fmt.Fprintf(&b, "%6s | %33s | %33s\n", "", "simulated (s)", "model peak (s)")
	fmt.Fprintf(&b, "%6s | %7s %7s %7s %7s | %7s %7s %7s %7s | %6s\n",
		"Ngpus", "Tcomp", "TD2H", "Tstore", "Tred", "Tcomp", "TD2H", "Tstore", "Tred", "total")
	for _, p := range points {
		r := p.Res
		fmt.Fprintf(&b, "%6d | %7.1f %7.1f %7.1f %7s | %7.1f %7.1f %7.1f %7s | %6.1f\n",
			p.NGpus,
			r.SimCompute, r.SimD2H, r.SimStore, naIfZero(r.SimReduce),
			r.Model.Compute, r.Model.Trans+r.Model.D2H, r.Model.Store, naIfZero(r.Model.Reduce),
			r.SimTotal)
	}
	return b.String()
}

func naIfZero(v float64) string {
	if v == 0 {
		return "N/A"
	}
	return fmt.Sprintf("%.1f", v)
}

// Table5 reproduces the Tcompute breakdown: Tflt, TAllGather, Tbp,
// Tcompute and δ for the strong-scaling configurations of Fig. 5a/5b.
func Table5(mb perfmodel.MicroBench) ([]ScalingPoint, error) {
	var out []ScalingPoint
	for _, cfg := range []struct {
		pr geometry.Problem
		r  int
		ns []int
	}{
		{FourK(), 32, []int{32, 64, 128, 256}},
		{EightK(), 256, []int{256, 512, 1024, 2048}},
	} {
		for _, n := range cfg.ns {
			res, err := simcluster.Simulate(simcluster.Config{
				Problem: cfg.pr, R: cfg.r, C: n / cfg.r, MB: mb,
			})
			if err != nil {
				return nil, err
			}
			out = append(out, ScalingPoint{NGpus: n, Res: res})
		}
	}
	return out, nil
}

// RenderTable5 formats the breakdown like the paper's Table 5.
func RenderTable5(points []ScalingPoint) string {
	var b strings.Builder
	b.WriteString("Table 5: details of Tcompute (simulated)\n")
	fmt.Fprintf(&b, "%-14s %6s %6s | %7s %10s %7s %9s %6s\n",
		"volume", "Ngpus", "Ncpus", "Tflt", "TAllGather", "Tbp", "Tcompute", "delta")
	for _, p := range points {
		r := p.Res
		vol := fmt.Sprintf("%d^3", r.Problem.Nx)
		fmt.Fprintf(&b, "%-14s %6d %6d | %7.1f %10.1f %7.1f %9.1f %6.2f\n",
			vol, p.NGpus, p.NGpus/2, r.SimFlt, r.SimAllGather, r.SimBp, r.SimCompute, r.Delta)
	}
	return b.String()
}

// Fig6Series computes the end-to-end GUPS of Fig. 6 for one output size.
type Fig6Series struct {
	Label  string
	R      int
	Points []ScalingPoint
}

// Fig6 evaluates the three output sizes over the paper's GPU counts.
func Fig6(mb perfmodel.MicroBench) ([]Fig6Series, error) {
	specs := []struct {
		pr    geometry.Problem
		r     int
		gpus  []int
		label string
	}{
		{TwoK(), 4, []int{4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048}, "2048^3"},
		{FourK(), 32, []int{32, 64, 128, 256, 512, 1024, 2048}, "4096^3"},
		{EightK(), 256, []int{256, 512, 1024, 2048}, "8192^3"},
	}
	var out []Fig6Series
	for _, spec := range specs {
		s := Fig6Series{Label: spec.label, R: spec.r}
		for _, n := range spec.gpus {
			res, err := simcluster.Simulate(simcluster.Config{
				Problem: spec.pr, R: spec.r, C: n / spec.r, MB: mb,
			})
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, ScalingPoint{NGpus: n, Res: res})
		}
		out = append(out, s)
	}
	return out, nil
}

// RenderFig6 prints the GUPS series.
func RenderFig6(series []Fig6Series) string {
	var b strings.Builder
	b.WriteString("Fig 6: end-to-end performance (GUPS, simulated)\n")
	fmt.Fprintf(&b, "%8s", "Ngpus")
	for _, s := range series {
		fmt.Fprintf(&b, " %10s", s.Label)
	}
	b.WriteByte('\n')
	gpus := series[0].Points
	for i := range gpus {
		fmt.Fprintf(&b, "%8d", series[0].Points[i].NGpus)
		n := series[0].Points[i].NGpus
		for _, s := range series {
			val := ""
			for _, p := range s.Points {
				if p.NGpus == n {
					val = fmt.Sprintf("%.0f", p.Res.GUPS)
				}
			}
			if val == "" {
				val = "-"
			}
			fmt.Fprintf(&b, " %10s", val)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
