package bench

import (
	"encoding/json"
	"os"
	"sync"
	"time"
)

// RecordEnv names the environment variable that, when set, makes Record
// append machine-readable benchmark results to the named file. CI points it
// at BENCH_kernels.json so successive PRs accumulate a regression
// trajectory; when unset (the default for local `go test -bench`), Record is
// a no-op.
const RecordEnv = "IFDK_BENCH_OUT"

var recordMu sync.Mutex

// Record appends one JSON line {"bench": name, "unix": t, ...metrics} to
// $IFDK_BENCH_OUT. Failures are silently ignored: trajectory capture must
// never fail a benchmark run.
func Record(name string, metrics map[string]float64) {
	path := os.Getenv(RecordEnv)
	if path == "" {
		return
	}
	rec := make(map[string]any, len(metrics)+2)
	rec["bench"] = name
	rec["unix"] = time.Now().Unix()
	for k, v := range metrics {
		rec[k] = v
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return
	}
	recordMu.Lock()
	defer recordMu.Unlock()
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return
	}
	defer f.Close()
	f.Write(append(line, '\n'))
}
