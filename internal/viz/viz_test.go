package viz

import (
	"testing"

	"ifdk/internal/volume"
)

func testVol() *volume.Volume {
	vol := volume.New(4, 3, 2, volume.IMajor)
	// Voxel values encode their coordinates so projections are checkable.
	for k := 0; k < 2; k++ {
		for j := 0; j < 3; j++ {
			for i := 0; i < 4; i++ {
				vol.Set(i, j, k, float32(100*k+10*j+i))
			}
		}
	}
	return vol
}

func TestMIPAxisZ(t *testing.T) {
	img, err := MIP(testVol(), AxisZ)
	if err != nil {
		t.Fatal(err)
	}
	if img.W != 4 || img.H != 3 {
		t.Fatalf("size %dx%d", img.W, img.H)
	}
	// Max along k is always the k=1 plane.
	if img.At(2, 1) != 112 {
		t.Errorf("MIP(2,1) = %g, want 112", img.At(2, 1))
	}
}

func TestMIPAxisY(t *testing.T) {
	img, err := MIP(testVol(), AxisY)
	if err != nil {
		t.Fatal(err)
	}
	if img.W != 4 || img.H != 2 {
		t.Fatalf("size %dx%d", img.W, img.H)
	}
	// Max along j is j=2.
	if img.At(3, 1) != 123 {
		t.Errorf("MIP(3,1) = %g, want 123", img.At(3, 1))
	}
}

func TestMIPAxisX(t *testing.T) {
	img, err := MIP(testVol(), AxisX)
	if err != nil {
		t.Fatal(err)
	}
	if img.W != 3 || img.H != 2 {
		t.Fatalf("size %dx%d", img.W, img.H)
	}
	// Max along i is i=3.
	if img.At(0, 0) != 3 {
		t.Errorf("MIP(0,0) = %g, want 3", img.At(0, 0))
	}
	if _, err := MIP(testVol(), Axis(9)); err == nil {
		t.Error("unknown axis accepted")
	}
}

func TestContactSheet(t *testing.T) {
	vol := volume.New(4, 3, 6, volume.IMajor)
	for k := 0; k < 6; k++ {
		for j := 0; j < 3; j++ {
			for i := 0; i < 4; i++ {
				vol.Set(i, j, k, float32(k))
			}
		}
	}
	sheet, err := ContactSheet(vol, 2, 2) // slices 0, 2, 4 → 2 cols, 2 rows
	if err != nil {
		t.Fatal(err)
	}
	if sheet.W != 8 || sheet.H != 6 {
		t.Fatalf("sheet size %dx%d", sheet.W, sheet.H)
	}
	// Tile 0 = slice 0, tile 1 = slice 2, tile 2 = slice 4.
	if sheet.At(0, 0) != 0 || sheet.At(4, 0) != 2 || sheet.At(0, 3) != 4 {
		t.Errorf("tiles wrong: %g %g %g", sheet.At(0, 0), sheet.At(4, 0), sheet.At(0, 3))
	}
	if _, err := ContactSheet(vol, 0, 1); err == nil {
		t.Error("zero cols accepted")
	}
}

func TestOrthogonal(t *testing.T) {
	vol := testVol()
	axial, coronal, sagittal := Orthogonal(vol)
	if axial.W != 4 || axial.H != 3 {
		t.Errorf("axial %dx%d", axial.W, axial.H)
	}
	if coronal.W != 4 || coronal.H != 2 {
		t.Errorf("coronal %dx%d", coronal.W, coronal.H)
	}
	if sagittal.W != 3 || sagittal.H != 2 {
		t.Errorf("sagittal %dx%d", sagittal.W, sagittal.H)
	}
	// Centre planes: k=1, j=1, i=2.
	if axial.At(1, 2) != 121 {
		t.Errorf("axial(1,2) = %g", axial.At(1, 2))
	}
	if coronal.At(1, 0) != 11 {
		t.Errorf("coronal(1,0) = %g", coronal.At(1, 0))
	}
	if sagittal.At(1, 1) != 112 {
		t.Errorf("sagittal(1,1) = %g", sagittal.At(1, 1))
	}
}
