// Package viz provides lightweight volume visualization — the second of
// the paper's future-work items (Sec. 8) and the stand-in for the ImageJ
// inspection step of its measurement methodology (Sec. 5.1): maximum
// intensity projections and slice contact sheets, renderable to PNG via
// volume.Image.
package viz

import (
	"fmt"

	"ifdk/internal/volume"
)

// Axis selects a projection direction.
type Axis int

const (
	// AxisX projects along i, producing an Ny×Nz image.
	AxisX Axis = iota
	// AxisY projects along j, producing an Nx×Nz image.
	AxisY
	// AxisZ projects along k, producing an Nx×Ny image.
	AxisZ
)

// MIP computes the maximum-intensity projection of the volume along the
// axis — the standard quick-look rendering for CT volumes.
func MIP(vol *volume.Volume, axis Axis) (*volume.Image, error) {
	switch axis {
	case AxisZ:
		img := volume.NewImage(vol.Nx, vol.Ny)
		for j := 0; j < vol.Ny; j++ {
			for i := 0; i < vol.Nx; i++ {
				best := vol.At(i, j, 0)
				for k := 1; k < vol.Nz; k++ {
					if v := vol.At(i, j, k); v > best {
						best = v
					}
				}
				img.Set(i, j, best)
			}
		}
		return img, nil
	case AxisY:
		img := volume.NewImage(vol.Nx, vol.Nz)
		for k := 0; k < vol.Nz; k++ {
			for i := 0; i < vol.Nx; i++ {
				best := vol.At(i, 0, k)
				for j := 1; j < vol.Ny; j++ {
					if v := vol.At(i, j, k); v > best {
						best = v
					}
				}
				img.Set(i, k, best)
			}
		}
		return img, nil
	case AxisX:
		img := volume.NewImage(vol.Ny, vol.Nz)
		for k := 0; k < vol.Nz; k++ {
			for j := 0; j < vol.Ny; j++ {
				best := vol.At(0, j, k)
				for i := 1; i < vol.Nx; i++ {
					if v := vol.At(i, j, k); v > best {
						best = v
					}
				}
				img.Set(j, k, best)
			}
		}
		return img, nil
	default:
		return nil, fmt.Errorf("viz: unknown axis %d", axis)
	}
}

// ContactSheet tiles every stride-th axial slice into a cols-wide mosaic —
// the classic radiology overview sheet.
func ContactSheet(vol *volume.Volume, cols, stride int) (*volume.Image, error) {
	if cols <= 0 || stride <= 0 {
		return nil, fmt.Errorf("viz: cols %d and stride %d must be positive", cols, stride)
	}
	n := (vol.Nz + stride - 1) / stride
	rows := (n + cols - 1) / cols
	sheet := volume.NewImage(cols*vol.Nx, rows*vol.Ny)
	tile := 0
	for k := 0; k < vol.Nz; k += stride {
		slice := vol.SliceZ(k)
		ox := (tile % cols) * vol.Nx
		oy := (tile / cols) * vol.Ny
		for j := 0; j < vol.Ny; j++ {
			for i := 0; i < vol.Nx; i++ {
				sheet.Set(ox+i, oy+j, slice.At(i, j))
			}
		}
		tile++
	}
	return sheet, nil
}

// Orthogonal returns the three centre planes (axial, coronal, sagittal) —
// the standard tri-planar view.
func Orthogonal(vol *volume.Volume) (axial, coronal, sagittal *volume.Image) {
	axial = vol.SliceZ(vol.Nz / 2)
	coronal = volume.NewImage(vol.Nx, vol.Nz)
	j := vol.Ny / 2
	for k := 0; k < vol.Nz; k++ {
		for i := 0; i < vol.Nx; i++ {
			coronal.Set(i, k, vol.At(i, j, k))
		}
	}
	sagittal = volume.NewImage(vol.Ny, vol.Nz)
	i := vol.Nx / 2
	for k := 0; k < vol.Nz; k++ {
		for j := 0; j < vol.Ny; j++ {
			sagittal.Set(j, k, vol.At(i, j, k))
		}
	}
	return axial, coronal, sagittal
}
