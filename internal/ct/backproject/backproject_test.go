package backproject

import (
	"math"
	"math/rand"
	"testing"

	"ifdk/internal/ct/geometry"
	"ifdk/internal/volume"
)

// randomTask builds projection matrices from a real geometry and fills the
// projections with smooth pseudo-random data. Back-projection equivalence
// tests do not need physically meaningful projections.
func randomTask(g geometry.Params, seed int64) Task {
	rng := rand.New(rand.NewSource(seed))
	t := Task{Mats: geometry.ProjectionMatrices(g)}
	for s := 0; s < g.Np; s++ {
		img := volume.NewImage(g.Nu, g.Nv)
		for n := range img.Data {
			img.Data[n] = rng.Float32()
		}
		t.Proj = append(t.Proj, img)
	}
	return t
}

func smallGeom() geometry.Params {
	return geometry.Default(48, 48, 24, 20, 20, 20)
}

func relRMSE(t *testing.T, a, b *volume.Volume) float64 {
	t.Helper()
	r, err := volume.RMSE(a, b)
	if err != nil {
		t.Fatal(err)
	}
	s := a.Summarize()
	scale := math.Max(math.Abs(float64(s.Min)), math.Abs(float64(s.Max)))
	if scale == 0 {
		return r
	}
	return r / scale
}

// E11: the proposed algorithm must match the standard one within the
// paper's RMSE < 1e-5 verification bound (Sec. 5.1).
func TestProposedMatchesStandard(t *testing.T) {
	g := smallGeom()
	task := randomTask(g, 1)
	std := volume.New(g.Nx, g.Ny, g.Nz, volume.IMajor)
	if err := Standard(task, std, Options{}); err != nil {
		t.Fatal(err)
	}
	prop := volume.New(g.Nx, g.Ny, g.Nz, volume.KMajor)
	if err := Proposed(task, prop, Options{}); err != nil {
		t.Fatal(err)
	}
	if r := relRMSE(t, std, prop); r > 1e-5 {
		t.Errorf("relative RMSE standard vs proposed = %g, want < 1e-5", r)
	}
}

func TestProposedOddNz(t *testing.T) {
	g := smallGeom()
	g.Nz = 15
	task := randomTask(g, 2)
	std := volume.New(g.Nx, g.Ny, g.Nz, volume.IMajor)
	if err := Standard(task, std, Options{}); err != nil {
		t.Fatal(err)
	}
	prop := volume.New(g.Nx, g.Ny, g.Nz, volume.KMajor)
	if err := Proposed(task, prop, Options{}); err != nil {
		t.Fatal(err)
	}
	if r := relRMSE(t, std, prop); r > 1e-5 {
		t.Errorf("odd-Nz relative RMSE = %g", r)
	}
}

// Every ablation variant computes the same volume; the optimizations change
// only cost, not math.
func TestAblationVariantsEquivalent(t *testing.T) {
	g := smallGeom()
	task := randomTask(g, 3)
	std := volume.New(g.Nx, g.Ny, g.Nz, volume.IMajor)
	if err := Standard(task, std, Options{}); err != nil {
		t.Fatal(err)
	}
	for _, va := range []Variant{
		{},
		{Symmetry: true},
		{Reuse: true},
		{Transpose: true},
		{Symmetry: true, Reuse: true},
		{Symmetry: true, Transpose: true},
		{Reuse: true, Transpose: true},
		{Symmetry: true, Reuse: true, Transpose: true},
	} {
		vol := volume.New(g.Nx, g.Ny, g.Nz, volume.KMajor)
		if err := Ablate(task, vol, Options{}, va); err != nil {
			t.Fatalf("%+v: %v", va, err)
		}
		if r := relRMSE(t, std, vol); r > 1e-5 {
			t.Errorf("variant %+v: relative RMSE = %g", va, r)
		}
	}
}

func TestWorkerCountInvariance(t *testing.T) {
	g := smallGeom()
	task := randomTask(g, 4)
	a := volume.New(g.Nx, g.Ny, g.Nz, volume.KMajor)
	b := volume.New(g.Nx, g.Ny, g.Nz, volume.KMajor)
	if err := Proposed(task, a, Options{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if err := Proposed(task, b, Options{Workers: 7}); err != nil {
		t.Fatal(err)
	}
	for n := range a.Data {
		if a.Data[n] != b.Data[n] {
			t.Fatalf("worker-count changed result at voxel %d: %v vs %v", n, a.Data[n], b.Data[n])
		}
	}
}

func TestBatchSizeNearInvariance(t *testing.T) {
	// Different batch sizes reassociate the per-voxel sum, so results agree
	// only within float32 rounding.
	g := smallGeom()
	task := randomTask(g, 5)
	a := volume.New(g.Nx, g.Ny, g.Nz, volume.KMajor)
	b := volume.New(g.Nx, g.Ny, g.Nz, volume.KMajor)
	if err := Proposed(task, a, Options{Batch: 4}); err != nil {
		t.Fatal(err)
	}
	if err := Proposed(task, b, Options{Batch: 32}); err != nil {
		t.Fatal(err)
	}
	if r := relRMSE(t, a, b); r > 1e-6 {
		t.Errorf("batch-size relative RMSE = %g", r)
	}
}

func TestDeterminism(t *testing.T) {
	g := smallGeom()
	task := randomTask(g, 6)
	a := volume.New(g.Nx, g.Ny, g.Nz, volume.KMajor)
	b := volume.New(g.Nx, g.Ny, g.Nz, volume.KMajor)
	for _, v := range []*volume.Volume{a, b} {
		if err := Proposed(task, v, Options{Workers: 4}); err != nil {
			t.Fatal(err)
		}
	}
	for n := range a.Data {
		if a.Data[n] != b.Data[n] {
			t.Fatal("repeated runs differ")
		}
	}
}

// A delta projection hitting the exact centre pixel reconstructs the centre
// voxel with weight 1/d² — a closed-form check of the weighting chain.
func TestCenterDeltaWeight(t *testing.T) {
	g := geometry.Default(64, 64, 1, 17, 17, 17) // odd: centre voxel on-grid
	g.Np = 1
	mats := geometry.ProjectionMatrices(g)
	img := volume.NewImage(g.Nu, g.Nv)
	// The centre voxel projects to the detector centre (non-integer for an
	// even detector): set the 4 neighbouring pixels so bilinear interp
	// returns exactly 1 there.
	cu, cv := g.DetCenterU(), g.DetCenterV()
	for _, du := range []int{0, 1} {
		for _, dv := range []int{0, 1} {
			img.Set(int(cu)+du, int(cv)+dv, 1)
		}
	}
	task := Task{Mats: mats, Proj: []*volume.Image{img}}
	vol := volume.New(g.Nx, g.Ny, g.Nz, volume.IMajor)
	if err := Standard(task, vol, Options{}); err != nil {
		t.Fatal(err)
	}
	got := float64(vol.At(8, 8, 8))
	want := 1 / (g.SAD * g.SAD)
	if math.Abs(got-want) > 1e-3*want {
		t.Errorf("centre voxel = %g, want %g", got, want)
	}
}

func TestValidateErrors(t *testing.T) {
	g := smallGeom()
	good := randomTask(g, 7)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid task rejected: %v", err)
	}
	if err := (Task{}).Validate(); err == nil {
		t.Error("empty task accepted")
	}
	bad := good
	bad.Mats = bad.Mats[:len(bad.Mats)-1]
	if err := bad.Validate(); err == nil {
		t.Error("length mismatch accepted")
	}
	mixed := randomTask(g, 8)
	mixed.Proj[2] = volume.NewImage(3, 3)
	if err := mixed.Validate(); err == nil {
		t.Error("mixed projection sizes accepted")
	}
	nilProj := randomTask(g, 9)
	nilProj.Proj[0] = nil
	if err := nilProj.Validate(); err == nil {
		t.Error("nil projection accepted")
	}
}

func TestLayoutErrors(t *testing.T) {
	g := smallGeom()
	task := randomTask(g, 10)
	if err := Standard(task, volume.New(4, 4, 4, volume.KMajor), Options{}); err == nil {
		t.Error("Standard accepted a k-major volume")
	}
	if err := Proposed(task, volume.New(4, 4, 4, volume.IMajor), Options{}); err == nil {
		t.Error("Proposed accepted an i-major volume")
	}
}

func TestAccumulatesIntoExistingVolume(t *testing.T) {
	// Back-projection adds to I rather than overwriting (Alg. 2 line 10) —
	// the property iterative methods rely on (Sec. 1).
	g := smallGeom()
	task := randomTask(g, 11)
	once := volume.New(g.Nx, g.Ny, g.Nz, volume.KMajor)
	if err := Proposed(task, once, Options{}); err != nil {
		t.Fatal(err)
	}
	twice := volume.New(g.Nx, g.Ny, g.Nz, volume.KMajor)
	for n := 0; n < 2; n++ {
		if err := Proposed(task, twice, Options{}); err != nil {
			t.Fatal(err)
		}
	}
	for n := range once.Data {
		want := once.Data[n] * 2
		if math.Abs(float64(twice.Data[n]-want)) > 1e-5*(1+math.Abs(float64(want))) {
			t.Fatalf("voxel %d: %v after two passes, want %v", n, twice.Data[n], want)
		}
	}
}

func benchTask(b *testing.B) (geometry.Params, Task) {
	g := geometry.Default(128, 128, 32, 64, 64, 64)
	return g, randomTask(g, 42)
}

func BenchmarkStandard(b *testing.B) {
	g, task := benchTask(b)
	vol := volume.New(g.Nx, g.Ny, g.Nz, volume.IMajor)
	b.SetBytes(int64(g.Nx) * int64(g.Ny) * int64(g.Nz) * int64(g.Np) * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Standard(task, vol, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProposed(b *testing.B) {
	g, task := benchTask(b)
	vol := volume.New(g.Nx, g.Ny, g.Nz, volume.KMajor)
	b.SetBytes(int64(g.Nx) * int64(g.Ny) * int64(g.Nz) * int64(g.Np) * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Proposed(task, vol, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
