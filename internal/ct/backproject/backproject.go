// Package backproject implements the back-projection stage of FDK on the
// CPU: the standard algorithm of the paper's Alg. 2 (the scheme used by RTK
// and RabbitCT) and the proposed algorithm of Alg. 4, which
//
//   - reuses u and the distance weight W_dis along each vertical voxel line
//     (Theorems 2 and 3: both are independent of k),
//   - computes only one of the three inner products per voxel (the y row),
//   - processes only half of the Z range and derives the mirrored detector
//     row ṽ = Nv-1-v for the symmetric voxel (Theorem 1), and
//   - transposes the projections and stores the volume k-major so both are
//     walked contiguously.
//
// Together these reduce the projection-coordinate computation to 1/6 of the
// standard algorithm (Sec. 3.2.2).
//
// All arithmetic is float32 to match the GPU kernels; projection matrices
// are narrowed per Listing 1's constant-memory layout. Both algorithms
// accumulate per voxel in ascending projection order, so results are
// deterministic and independent of the worker count.
package backproject

import (
	"fmt"

	"ifdk/internal/ct/geometry"
	"ifdk/internal/ct/interp"
	"ifdk/internal/ct/kernels"
	"ifdk/internal/engine"
	"ifdk/internal/volume"
)

// Pooled per-batch and per-worker scratch. Parallel sections run on the
// shared engine scheduler, and every buffer whose lifetime is one batch (the
// narrowed matrices, the projection-data table, the transposed projections)
// or one worker chunk (the per-column register files of Listing 1) is
// acquired from an engine pool, so steady-state back-projection performs no
// per-projection heap allocations.
var (
	matPool  engine.BufPool[[3][4]float32]
	dataPool engine.BufPool[[]float32]
	imgsPool engine.BufPool[*volume.Image]
	colPool  engine.BufPool[float32]
)

// DefaultBatch is the number of projections accumulated per volume pass,
// matching the GPU kernels' N_batch = 32 (Listing 1).
const DefaultBatch = 32

// Task bundles the filtered projections with their projection matrices.
type Task struct {
	Mats []geometry.ProjMat
	Proj []*volume.Image // filtered projections Q_i, each Nu×Nv
}

// Validate reports structural problems with the task.
func (t Task) Validate() error {
	if len(t.Mats) == 0 {
		return fmt.Errorf("backproject: empty task")
	}
	if len(t.Mats) != len(t.Proj) {
		return fmt.Errorf("backproject: %d matrices for %d projections", len(t.Mats), len(t.Proj))
	}
	for n, p := range t.Proj {
		if p == nil {
			return fmt.Errorf("backproject: projection %d is nil", n)
		}
	}
	w, h := t.Proj[0].W, t.Proj[0].H
	for n, p := range t.Proj {
		if p.W != w || p.H != h {
			return fmt.Errorf("backproject: projection %d is %dx%d, want %dx%d", n, p.W, p.H, w, h)
		}
	}
	return nil
}

// Options controls parallelism and batching.
type Options struct {
	Workers int // worker goroutines; 0 means GOMAXPROCS
	Batch   int // projections per volume pass; 0 means DefaultBatch
}

func (o Options) batch() int {
	if o.Batch <= 0 {
		return DefaultBatch
	}
	return o.Batch
}

// Variant toggles the individual optimizations of the proposed algorithm
// for ablation studies (DESIGN.md E2/E3 ablations). The zero Variant is the
// fully naive per-voxel scheme on a k-major volume; Proposed uses all three.
type Variant struct {
	Symmetry  bool // exploit Theorem 1: process k and Nz-1-k together
	Reuse     bool // exploit Theorems 2+3: hoist u and W_dis out of the k loop
	Transpose bool // transpose projections for contiguous V-axis access
}

// ProposedVariant is the Variant used by Proposed.
var ProposedVariant = Variant{Symmetry: true, Reuse: true, Transpose: true}

// Standard back-projects the task into an i-major volume following Alg. 2
// exactly: three inner products and a full interpolation per voxel per
// projection. Parallelism is over Z slabs; accumulation per voxel stays in
// ascending projection order.
//
//ifdk:hotpath
func Standard(task Task, vol *volume.Volume, opt Options) error {
	if err := task.Validate(); err != nil {
		return err
	}
	if vol.Layout != volume.IMajor {
		return fmt.Errorf("backproject: Standard requires an i-major volume, got %v", vol.Layout)
	}
	nx, ny, nz := vol.Nx, vol.Ny, vol.Nz
	w, h := task.Proj[0].W, task.Proj[0].H
	batch := opt.batch()
	for s0 := 0; s0 < len(task.Proj); s0 += batch {
		s1 := min(s0+batch, len(task.Proj))
		bufs := acquireBatch(task.Mats[s0:s1], task.Proj[s0:s1], false)
		rows, data := bufs.rows.Data, bufs.data.Data
		engine.ParallelRange(nz, opt.Workers, func(k0, k1 int) {
			for k := k0; k < k1; k++ {
				fk := float32(k)
				for j := 0; j < ny; j++ {
					fj := float32(j)
					base := (k*ny + j) * nx
					for i := 0; i < nx; i++ {
						fi := float32(i)
						var sum float32
						for t := range rows {
							r := &rows[t]
							// Three inner products (Alg. 2 line 6).
							x := r[0][0]*fi + r[0][1]*fj + r[0][2]*fk + r[0][3]
							y := r[1][0]*fi + r[1][1]*fj + r[1][2]*fk + r[1][3]
							z := r[2][0]*fi + r[2][1]*fj + r[2][2]*fk + r[2][3]
							f := 1 / z
							wdis := f * f
							u := x * f
							v := y * f
							sum += wdis * interp.Bilinear(data[t], w, h, u, v)
						}
						vol.Data[base+i] += sum
					}
				}
			}
		})
		bufs.release()
	}
	return nil
}

// Proposed back-projects the task into a k-major volume following Alg. 4.
func Proposed(task Task, vol *volume.Volume, opt Options) error {
	return Ablate(task, vol, opt, ProposedVariant)
}

// Ablate runs the proposed algorithm with individual optimizations toggled
// by the variant. All variants compute the same volume (within float32
// rounding); only the operation count and access pattern change. The full
// ProposedVariant takes the kernels column path, which performs the exact
// same floating-point operations in the same order — ablation variants keep
// the original voxel-at-a-time loop.
func Ablate(task Task, vol *volume.Volume, opt Options, va Variant) error {
	if err := task.Validate(); err != nil {
		return err
	}
	if vol.Layout != volume.KMajor {
		return fmt.Errorf("backproject: Proposed requires a k-major volume, got %v", vol.Layout)
	}
	if va == ProposedVariant {
		return proposedColumns(task, vol, opt)
	}
	nx, ny, nz := vol.Nx, vol.Ny, vol.Nz
	w, h := task.Proj[0].W, task.Proj[0].H
	batch := opt.batch()
	for s0 := 0; s0 < len(task.Proj); s0 += batch {
		s1 := min(s0+batch, len(task.Proj))
		// Transpose the batch once (Alg. 4 line 3); its cost is a small
		// fraction of the back-projection (Sec. 3.2.3). Transpose buffers
		// come from the shared image pool and return after the batch.
		bufs := acquireBatch(task.Mats[s0:s1], task.Proj[s0:s1], va.Transpose)
		rows, data := bufs.rows.Data, bufs.data.Data
		var tw, th int
		if va.Transpose {
			tw, th = h, w // transposed: V is now the fast axis
		} else {
			tw, th = w, h
		}
		nb := s1 - s0
		engine.ParallelRange(ny, opt.Workers, func(j0, j1 int) {
			regs, us, fs, ws := acquireRegs(nb)
			for j := j0; j < j1; j++ {
				fj := float32(j)
				for i := 0; i < nx; i++ {
					fi := float32(i)
					if va.Reuse {
						// Two inner products per column (Alg. 4 line 7).
						for t := range rows {
							r := &rows[t]
							x := r[0][0]*fi + r[0][1]*fj + r[0][3]
							z := r[2][0]*fi + r[2][1]*fj + r[2][3]
							f := 1 / z
							us[t] = x * f
							fs[t] = f
							ws[t] = f * f
						}
					}
					base := (i*ny + j) * nz
					kHalf := nz / 2
					if !va.Symmetry {
						kHalf = nz
					}
					for k := 0; k < kHalf; k++ {
						fk := float32(k)
						var sum, sumSym float32
						for t := range rows {
							r := &rows[t]
							var u, f, wdis float32
							if va.Reuse {
								u, f, wdis = us[t], fs[t], ws[t]
							} else {
								x := r[0][0]*fi + r[0][1]*fj + r[0][2]*fk + r[0][3]
								z := r[2][0]*fi + r[2][1]*fj + r[2][2]*fk + r[2][3]
								f = 1 / z
								u = x * f
								wdis = f * f
							}
							// One inner product per voxel (Alg. 4 line 12).
							y := r[1][0]*fi + r[1][1]*fj + r[1][2]*fk + r[1][3]
							v := y * f
							sum += wdis * sampleProj(data[t], tw, th, u, v, va.Transpose)
							if va.Symmetry {
								vSym := float32(h-1) - v // Theorem 1
								sumSym += wdis * sampleProj(data[t], tw, th, u, vSym, va.Transpose)
							}
						}
						vol.Data[base+k] += sum
						if va.Symmetry {
							vol.Data[base+nz-1-k] += sumSym
						}
					}
					if va.Symmetry && nz%2 == 1 {
						// Odd Nz: the central plane has no mirror partner.
						k := nz / 2
						fk := float32(k)
						var sum float32
						for t := range rows {
							r := &rows[t]
							var u, f, wdis float32
							if va.Reuse {
								u, f, wdis = us[t], fs[t], ws[t]
							} else {
								x := r[0][0]*fi + r[0][1]*fj + r[0][2]*fk + r[0][3]
								z := r[2][0]*fi + r[2][1]*fj + r[2][2]*fk + r[2][3]
								f = 1 / z
								u = x * f
								wdis = f * f
							}
							y := r[1][0]*fi + r[1][1]*fj + r[1][2]*fk + r[1][3]
							sum += wdis * sampleProj(data[t], tw, th, u, y*f, va.Transpose)
						}
						vol.Data[base+k] += sum
					}
				}
			}
			regs.Release()
		})
		bufs.release()
	}
	return nil
}

// proposedColumns is Alg. 4 with all three optimizations, restructured for
// the kernels layer: instead of walking voxels k-innermost and projections
// t-innermost, each (i, j) column accumulates one projection at a time into
// a pooled pair of line buffers (the lower half-line and its Theorem-1
// mirror), then scatters the two lines into the volume. The per-voxel
// accumulation order over t is unchanged, so the result is bit-identical to
// the voxel-at-a-time loop — but the inner walk is now stride-1 along both
// the transposed detector rows and the line buffers, which is what
// kernels.AccumLinePair vectorizes.
//
//ifdk:hotpath
func proposedColumns(task Task, vol *volume.Volume, opt Options) error {
	nx, ny, nz := vol.Nx, vol.Ny, vol.Nz
	w, h := task.Proj[0].W, task.Proj[0].H
	tw, th := h, w // transposed: V is the fast axis
	vm1 := float32(h - 1)
	batch := opt.batch()
	for s0 := 0; s0 < len(task.Proj); s0 += batch {
		s1 := min(s0+batch, len(task.Proj))
		bufs := acquireBatch(task.Mats[s0:s1], task.Proj[s0:s1], true)
		rows, data := bufs.rows.Data, bufs.data.Data
		nb := s1 - s0
		kHalf := nz / 2
		engine.ParallelRange(ny, opt.Workers, func(j0, j1 int) {
			regs, us, fs, ws := acquireRegs(nb)
			lines := colPool.Acquire(2 * kHalf)
			sum, sym := lines.Data[:kHalf], lines.Data[kHalf:]
			for j := j0; j < j1; j++ {
				fj := float32(j)
				for i := 0; i < nx; i++ {
					fi := float32(i)
					kernels.ColumnGeom(us, fs, ws, rows, fi, fj)
					clear(sum)
					clear(sym)
					for t := range rows {
						r := &rows[t]
						yb := r[1][0]*fi + r[1][1]*fj
						kernels.AccumLinePair(sum, sym, data[t], tw, th,
							us[t], fs[t], ws[t], yb, r[1][2], r[1][3], vm1, 0)
					}
					base := (i*ny + j) * nz
					for k := 0; k < kHalf; k++ {
						vol.Data[base+k] += sum[k]
						vol.Data[base+nz-1-k] += sym[k]
					}
					if nz%2 == 1 {
						// Odd Nz: the central plane has no mirror partner.
						k := nz / 2
						fk := float32(k)
						var csum float32
						for t := range rows {
							r := &rows[t]
							u, f, wdis := us[t], fs[t], ws[t]
							y := r[1][0]*fi + r[1][1]*fj + r[1][2]*fk + r[1][3]
							csum += wdis * sampleProj(data[t], tw, th, u, y*f, true)
						}
						vol.Data[base+k] += csum
					}
				}
			}
			lines.Release()
			regs.Release()
		})
		bufs.release()
	}
	return nil
}

// sampleProj interpolates the projection at detector coordinates (u, v).
// For a transposed projection the axes are swapped: V is the fast axis.
//
//ifdk:hotpath
func sampleProj(data []float32, w, h int, u, v float32, transposed bool) float32 {
	if transposed {
		return interp.Bilinear(data, w, h, v, u)
	}
	return interp.Bilinear(data, w, h, u, v)
}

// batchBufs bundles the pooled per-batch state shared by all kernels: the
// narrowed matrices, the projection-data table, and (when transposing) the
// transposed projections. Acquire with acquireBatch, release with release —
// the pool-ownership choreography lives here and nowhere else.
type batchBufs struct {
	rows       *engine.Buf[[3][4]float32]
	data       *engine.Buf[[]float32]
	transposed *engine.Buf[*volume.Image]
}

// acquireBatch narrows the batch's matrices and builds its projection-data
// table, transposing each projection into a pooled image when transpose is
// set (Alg. 4 line 3).
func acquireBatch(mats []geometry.ProjMat, imgs []*volume.Image, transpose bool) batchBufs {
	b := batchBufs{rows: narrowMats(mats)}
	if transpose {
		b.transposed = transposeBatch(imgs)
		b.data = dataPool.Acquire(len(imgs))
		for t, tp := range b.transposed.Data {
			b.data.Data[t] = tp.Data
		}
	} else {
		b.data = projData(imgs)
	}
	return b
}

// release returns every pooled buffer of the batch.
func (b batchBufs) release() {
	releaseData(b.data)
	releaseTransposed(b.transposed)
	b.rows.Release()
}

// acquireRegs hands out one worker chunk's register files (the U, Z, W_dis
// registers of Listing 1): three nb-wide rows carved from a single pooled
// buffer. Release the returned buffer when the chunk completes.
func acquireRegs(nb int) (regs *engine.Buf[float32], us, fs, ws []float32) {
	regs = colPool.Acquire(3 * nb)
	return regs, regs.Data[:nb], regs.Data[nb : 2*nb], regs.Data[2*nb:]
}

// narrowMats fills a pooled table with the float32-narrowed matrix rows of
// one batch (Listing 1's constant-memory layout).
func narrowMats(mats []geometry.ProjMat) *engine.Buf[[3][4]float32] {
	buf := matPool.Acquire(len(mats))
	for n, m := range mats {
		buf.Data[n] = m.Rows32()
	}
	return buf
}

// projData fills a pooled table with the batch's projection payloads.
func projData(imgs []*volume.Image) *engine.Buf[[]float32] {
	buf := dataPool.Acquire(len(imgs))
	for n, p := range imgs {
		buf.Data[n] = p.Data
	}
	return buf
}

// releaseData clears the payload references (so the pool does not pin the
// projections until the next batch) and releases the table.
func releaseData(buf *engine.Buf[[]float32]) {
	clear(buf.Data)
	buf.Release()
}

// transposeBatch transposes every projection of a batch into pooled images.
func transposeBatch(imgs []*volume.Image) *engine.Buf[*volume.Image] {
	buf := imgsPool.Acquire(len(imgs))
	for t, p := range imgs {
		tp := engine.Images.Acquire(p.H, p.W)
		p.TransposeInto(tp)
		buf.Data[t] = tp
	}
	return buf
}

// releaseTransposed returns the batch's transpose buffers to the image pool
// (nil when the variant did not transpose).
func releaseTransposed(buf *engine.Buf[*volume.Image]) {
	if buf == nil {
		return
	}
	for t, tp := range buf.Data {
		engine.Images.Release(tp)
		buf.Data[t] = nil
	}
	buf.Release()
}
