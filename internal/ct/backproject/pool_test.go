package backproject

import (
	"testing"

	"ifdk/internal/race"
	"ifdk/internal/volume"
)

// Back-projection with warm (dirty) engine pools must be bit-identical to a
// cold run: buffer reuse must not perturb the deterministic accumulation
// order or leak state between jobs.
func TestPooledRunsBitIdentical(t *testing.T) {
	g := smallGeom()
	task := randomTask(g, 31)
	run := func() *volume.Volume {
		vol := volume.New(g.Nx, g.Ny, g.Nz, volume.KMajor)
		if err := Proposed(task, vol, Options{Workers: 3}); err != nil {
			t.Fatal(err)
		}
		return vol
	}
	cold := run()
	// Dirty every pool with a different workload (other dims would use
	// other pool keys, so reuse the same geometry with junk data).
	junk := randomTask(g, 99)
	junkVol := volume.New(g.Nx, g.Ny, g.Nz, volume.KMajor)
	if err := Proposed(junk, junkVol, Options{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	warm := run()
	for n := range cold.Data {
		if cold.Data[n] != warm.Data[n] {
			t.Fatalf("pooled rerun differs at voxel %d: %g vs %g", n, cold.Data[n], warm.Data[n])
		}
	}
}

// Same guarantee for the slab-pair kernel used by the distributed pipeline.
func TestPooledSlabPairBitIdentical(t *testing.T) {
	g := smallGeom()
	z0, z1 := 2, g.Nz/2
	run := func(seed int64, workers int) *volume.Volume {
		tk := randomTask(g, seed)
		vol := volume.New(g.Nx, g.Ny, 2*(z1-z0), volume.KMajor)
		if err := ProposedSlabPair(tk, vol, Options{Workers: workers}, g.Nz, z0, z1); err != nil {
			t.Fatal(err)
		}
		return vol
	}
	cold := run(7, 4)
	run(55, 2) // dirty the pools
	warm := run(7, 4)
	for n := range cold.Data {
		if cold.Data[n] != warm.Data[n] {
			t.Fatalf("pooled slab rerun differs at voxel %d", n)
		}
	}
}

// Steady-state back-projection must not allocate per projection: all batch
// and worker scratch comes from engine pools. A handful of allocations per
// *call* (scheduler bookkeeping under contention) is tolerated; anything
// scaling with the projection count is a regression.
func TestBackprojectSteadyStateAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("race instrumentation allocates")
	}
	g := smallGeom() // 24 projections per call
	task := randomTask(g, 3)
	vol := volume.New(g.Nx, g.Ny, g.Nz, volume.KMajor)
	opt := Options{Workers: 2}
	for i := 0; i < 5; i++ { // warm the pools
		if err := Proposed(task, vol, opt); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(20, func() {
		if err := Proposed(task, vol, opt); err != nil {
			t.Fatal(err)
		}
	})
	perProj := avg / float64(g.Np)
	if perProj > 0.25 {
		t.Errorf("back-projection allocates %.2f objects/call (%.3f per projection) in steady state",
			avg, perProj)
	}
}
