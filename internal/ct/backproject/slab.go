package backproject

import (
	"fmt"

	"ifdk/internal/ct/kernels"
	"ifdk/internal/engine"
	"ifdk/internal/volume"
)

// ProposedSlabPair runs the proposed algorithm (Alg. 4) restricted to one
// mirrored pair of Z slabs — the unit of the iFDK row decomposition. In the
// distributed framework each row of the 2-D rank grid owns the voxels with
// z ∈ [z0, z1) ∪ [Nz-z1, Nz-z0); because the proposed kernel touches a
// voxel and its Theorem-1 mirror together, this pair is exactly what one
// rank computes (the "2·R sub-volumes" of Fig. 3a).
//
// The destination volume is the compact local buffer of size
// Nx×Ny×2·(z1-z0) in k-major layout: local plane p < h holds global plane
// z0+p (the lower slab); local plane h+p holds global plane Nz-z1+p (the
// upper slab, ascending).
func ProposedSlabPair(task Task, vol *volume.Volume, opt Options, nzFull, z0, z1 int) error {
	if err := task.Validate(); err != nil {
		return err
	}
	if vol.Layout != volume.KMajor {
		return fmt.Errorf("backproject: slab pair requires a k-major volume, got %v", vol.Layout)
	}
	if nzFull%2 != 0 {
		return fmt.Errorf("backproject: slab decomposition requires an even Nz, got %d", nzFull)
	}
	h := z1 - z0
	if z0 < 0 || z1 > nzFull/2 || h <= 0 {
		return fmt.Errorf("backproject: slab [%d,%d) outside half-range [0,%d)", z0, z1, nzFull/2)
	}
	if vol.Nz != 2*h {
		return fmt.Errorf("backproject: local volume depth %d, want %d", vol.Nz, 2*h)
	}
	nx, ny := vol.Nx, vol.Ny
	w, ht := task.Proj[0].W, task.Proj[0].H
	vm1 := float32(ht - 1)
	batch := opt.batch()
	for s0 := 0; s0 < len(task.Proj); s0 += batch {
		s1 := min(s0+batch, len(task.Proj))
		bufs := acquireBatch(task.Mats[s0:s1], task.Proj[s0:s1], true)
		rows, data := bufs.rows.Data, bufs.data.Data
		nb := s1 - s0
		engine.ParallelRange(ny, opt.Workers, func(j0, j1 int) {
			regs, us, fs, ws := acquireRegs(nb)
			lines := colPool.Acquire(2 * h)
			sum, sym := lines.Data[:h], lines.Data[h:]
			for j := j0; j < j1; j++ {
				fj := float32(j)
				for i := 0; i < nx; i++ {
					fi := float32(i)
					kernels.ColumnGeom(us, fs, ws, rows, fi, fj)
					clear(sum)
					clear(sym)
					for t := range rows {
						r := &rows[t]
						yb := r[1][0]*fi + r[1][1]*fj
						kernels.AccumLinePair(sum, sym, data[t], ht, w,
							us[t], fs[t], ws[t], yb, r[1][2], r[1][3], vm1, z0)
					}
					base := (i*ny + j) * vol.Nz
					for kk := 0; kk < h; kk++ {
						// Lower slab: local plane k-z0 = kk. Upper slab
						// ascending: global Nz-1-k is local
						// h + (Nz-1-k - (Nz-z1)) = h + z1-1-k = 2h-1-kk.
						vol.Data[base+kk] += sum[kk]
						vol.Data[base+2*h-1-kk] += sym[kk]
					}
				}
			}
			lines.Release()
			regs.Release()
		})
		bufs.release()
	}
	return nil
}

// SlabPairToGlobal copies a slab-pair local volume into the right planes of
// a full i-major volume (used to assemble distributed results).
func SlabPairToGlobal(local *volume.Volume, global *volume.Volume, nzFull, z0, z1 int) error {
	h := z1 - z0
	if local.Nz != 2*h || global.Nz != nzFull {
		return fmt.Errorf("backproject: slab assembly size mismatch (local %d, global %d)", local.Nz, global.Nz)
	}
	if local.Nx != global.Nx || local.Ny != global.Ny {
		return fmt.Errorf("backproject: slab assembly XY mismatch")
	}
	for p := 0; p < h; p++ {
		lower := z0 + p
		upper := nzFull - z1 + p
		for j := 0; j < local.Ny; j++ {
			for i := 0; i < local.Nx; i++ {
				global.Set(i, j, lower, local.At(i, j, p))
				global.Set(i, j, upper, local.At(i, j, h+p))
			}
		}
	}
	return nil
}

// SlabPlanes returns the global Z planes covered by the slab pair, in local
// plane order (useful for writing output slices).
func SlabPlanes(nzFull, z0, z1 int) []int {
	h := z1 - z0
	out := make([]int, 0, 2*h)
	for p := 0; p < h; p++ {
		out = append(out, z0+p)
	}
	for p := 0; p < h; p++ {
		out = append(out, nzFull-z1+p)
	}
	return out
}
