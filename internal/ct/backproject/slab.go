package backproject

import (
	"fmt"

	"ifdk/internal/ct/interp"
	"ifdk/internal/engine"
	"ifdk/internal/volume"
)

// ProposedSlabPair runs the proposed algorithm (Alg. 4) restricted to one
// mirrored pair of Z slabs — the unit of the iFDK row decomposition. In the
// distributed framework each row of the 2-D rank grid owns the voxels with
// z ∈ [z0, z1) ∪ [Nz-z1, Nz-z0); because the proposed kernel touches a
// voxel and its Theorem-1 mirror together, this pair is exactly what one
// rank computes (the "2·R sub-volumes" of Fig. 3a).
//
// The destination volume is the compact local buffer of size
// Nx×Ny×2·(z1-z0) in k-major layout: local plane p < h holds global plane
// z0+p (the lower slab); local plane h+p holds global plane Nz-z1+p (the
// upper slab, ascending).
func ProposedSlabPair(task Task, vol *volume.Volume, opt Options, nzFull, z0, z1 int) error {
	if err := task.Validate(); err != nil {
		return err
	}
	if vol.Layout != volume.KMajor {
		return fmt.Errorf("backproject: slab pair requires a k-major volume, got %v", vol.Layout)
	}
	if nzFull%2 != 0 {
		return fmt.Errorf("backproject: slab decomposition requires an even Nz, got %d", nzFull)
	}
	h := z1 - z0
	if z0 < 0 || z1 > nzFull/2 || h <= 0 {
		return fmt.Errorf("backproject: slab [%d,%d) outside half-range [0,%d)", z0, z1, nzFull/2)
	}
	if vol.Nz != 2*h {
		return fmt.Errorf("backproject: local volume depth %d, want %d", vol.Nz, 2*h)
	}
	nx, ny := vol.Nx, vol.Ny
	w, ht := task.Proj[0].W, task.Proj[0].H
	batch := opt.batch()
	for s0 := 0; s0 < len(task.Proj); s0 += batch {
		s1 := min(s0+batch, len(task.Proj))
		bufs := acquireBatch(task.Mats[s0:s1], task.Proj[s0:s1], true)
		rows, data := bufs.rows.Data, bufs.data.Data
		nb := s1 - s0
		engine.ParallelRange(ny, opt.Workers, func(j0, j1 int) {
			regs, us, fs, ws := acquireRegs(nb)
			for j := j0; j < j1; j++ {
				fj := float32(j)
				for i := 0; i < nx; i++ {
					fi := float32(i)
					for t := range rows {
						r := &rows[t]
						x := r[0][0]*fi + r[0][1]*fj + r[0][3]
						z := r[2][0]*fi + r[2][1]*fj + r[2][3]
						f := 1 / z
						us[t] = x * f
						fs[t] = f
						ws[t] = f * f
					}
					base := (i*ny + j) * vol.Nz
					for k := z0; k < z1; k++ {
						fk := float32(k)
						var sum, sumSym float32
						for t := range rows {
							r := &rows[t]
							u, f, wdis := us[t], fs[t], ws[t]
							y := r[1][0]*fi + r[1][1]*fj + r[1][2]*fk + r[1][3]
							v := y * f
							vSym := float32(ht-1) - v
							sum += wdis * interp.Bilinear(data[t], ht, w, v, u)
							sumSym += wdis * interp.Bilinear(data[t], ht, w, vSym, u)
						}
						// Lower slab: local plane k-z0.
						vol.Data[base+k-z0] += sum
						// Upper slab ascending: global Nz-1-k is local
						// h + (Nz-1-k - (Nz-z1)) = h + z1-1-k.
						vol.Data[base+h+z1-1-k] += sumSym
					}
				}
			}
			regs.Release()
		})
		bufs.release()
	}
	return nil
}

// SlabPairToGlobal copies a slab-pair local volume into the right planes of
// a full i-major volume (used to assemble distributed results).
func SlabPairToGlobal(local *volume.Volume, global *volume.Volume, nzFull, z0, z1 int) error {
	h := z1 - z0
	if local.Nz != 2*h || global.Nz != nzFull {
		return fmt.Errorf("backproject: slab assembly size mismatch (local %d, global %d)", local.Nz, global.Nz)
	}
	if local.Nx != global.Nx || local.Ny != global.Ny {
		return fmt.Errorf("backproject: slab assembly XY mismatch")
	}
	for p := 0; p < h; p++ {
		lower := z0 + p
		upper := nzFull - z1 + p
		for j := 0; j < local.Ny; j++ {
			for i := 0; i < local.Nx; i++ {
				global.Set(i, j, lower, local.At(i, j, p))
				global.Set(i, j, upper, local.At(i, j, h+p))
			}
		}
	}
	return nil
}

// SlabPlanes returns the global Z planes covered by the slab pair, in local
// plane order (useful for writing output slices).
func SlabPlanes(nzFull, z0, z1 int) []int {
	h := z1 - z0
	out := make([]int, 0, 2*h)
	for p := 0; p < h; p++ {
		out = append(out, z0+p)
	}
	for p := 0; p < h; p++ {
		out = append(out, nzFull-z1+p)
	}
	return out
}
