package backproject

import (
	"testing"

	"ifdk/internal/ct/geometry"
	"ifdk/internal/volume"
)

// Slab pairs over all rows must tile the full volume and reproduce the
// full-volume reconstruction exactly.
func TestSlabPairsTileFullVolume(t *testing.T) {
	g := geometry.Default(48, 48, 24, 16, 16, 16)
	task := randomTask(g, 21)
	full := volume.New(g.Nx, g.Ny, g.Nz, volume.KMajor)
	if err := Proposed(task, full, Options{}); err != nil {
		t.Fatal(err)
	}
	fullI := full.Reshape(volume.IMajor)
	for _, r := range []int{1, 2, 4} {
		h := g.Nz / (2 * r)
		assembled := volume.New(g.Nx, g.Ny, g.Nz, volume.IMajor)
		for row := 0; row < r; row++ {
			z0, z1 := row*h, (row+1)*h
			local := volume.New(g.Nx, g.Ny, 2*h, volume.KMajor)
			if err := ProposedSlabPair(task, local, Options{}, g.Nz, z0, z1); err != nil {
				t.Fatalf("R=%d row=%d: %v", r, row, err)
			}
			if err := SlabPairToGlobal(local, assembled, g.Nz, z0, z1); err != nil {
				t.Fatal(err)
			}
		}
		rmse, err := volume.RMSE(fullI, assembled)
		if err != nil {
			t.Fatal(err)
		}
		if rmse > 1e-6 {
			t.Errorf("R=%d: slab assembly RMSE = %g", r, rmse)
		}
	}
}

func TestSlabPairValidation(t *testing.T) {
	g := geometry.Default(32, 32, 8, 8, 8, 8)
	task := randomTask(g, 22)
	if err := ProposedSlabPair(task, volume.New(8, 8, 4, volume.IMajor), Options{}, 8, 0, 2); err == nil {
		t.Error("i-major local volume accepted")
	}
	if err := ProposedSlabPair(task, volume.New(8, 8, 4, volume.KMajor), Options{}, 7, 0, 2); err == nil {
		t.Error("odd Nz accepted")
	}
	if err := ProposedSlabPair(task, volume.New(8, 8, 4, volume.KMajor), Options{}, 8, 2, 6); err == nil {
		t.Error("slab outside half-range accepted")
	}
	if err := ProposedSlabPair(task, volume.New(8, 8, 6, volume.KMajor), Options{}, 8, 0, 2); err == nil {
		t.Error("wrong local depth accepted")
	}
	if err := SlabPairToGlobal(volume.New(8, 8, 4, volume.KMajor), volume.New(8, 8, 6, volume.IMajor), 8, 0, 2); err == nil {
		t.Error("mismatched global depth accepted")
	}
	if err := SlabPairToGlobal(volume.New(8, 8, 4, volume.KMajor), volume.New(4, 4, 8, volume.IMajor), 8, 0, 2); err == nil {
		t.Error("mismatched XY accepted")
	}
}

func TestSlabPlanes(t *testing.T) {
	got := SlabPlanes(16, 2, 4)
	want := []int{2, 3, 12, 13}
	if len(got) != len(want) {
		t.Fatalf("planes %v", got)
	}
	for n := range want {
		if got[n] != want[n] {
			t.Errorf("plane %d = %d, want %d", n, got[n], want[n])
		}
	}
}
