package projector

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"ifdk/internal/ct/geometry"
	"ifdk/internal/ct/phantom"
	"ifdk/internal/volume"
)

func testGeom() geometry.Params {
	return geometry.Default(48, 48, 12, 24, 24, 24)
}

func TestAnalyticCentralPixel(t *testing.T) {
	g := testGeom()
	r := g.FOVRadius() * 0.5
	ph := phantom.UniformSphere(r, 1)
	img := Analytic(ph, g, 0)
	if img.W != g.Nu || img.H != g.Nv {
		t.Fatalf("projection size %dx%d", img.W, img.H)
	}
	// The exact central ray passes through the sphere centre; with an even
	// detector the centre falls between pixels, so evaluate the exact centre
	// via the ray API for the reference and check the nearest pixel is close.
	centreRay := geometry.DetectorRay(g, 0, g.DetCenterU(), g.DetCenterV())
	want := ph.LineIntegral(centreRay)
	if math.Abs(want-2*r) > 1e-9 {
		t.Fatalf("central integral = %g, want %g", want, 2*r)
	}
	got := float64(img.At(g.Nu/2, g.Nv/2))
	if math.Abs(got-want) > 0.05*want {
		t.Errorf("central pixel = %g, want ≈ %g", got, want)
	}
}

func TestAnalyticAllMatchesSingle(t *testing.T) {
	g := testGeom()
	ph := phantom.SheppLogan3D(g.FOVRadius() * 0.9)
	all := AnalyticAll(ph, g, 2)
	if len(all) != g.Np {
		t.Fatalf("got %d projections", len(all))
	}
	for _, s := range []int{0, g.Np / 2, g.Np - 1} {
		single := Analytic(ph, g, s)
		r, err := volume.ImageRMSE(all[s], single)
		if err != nil || r != 0 {
			t.Errorf("s=%d: parallel projection differs (rmse %g, err %v)", s, r, err)
		}
	}
}

func TestProjectionSymmetryOppositeAngles(t *testing.T) {
	// For a phantom symmetric under 180° rotation about Z (a centred
	// sphere), opposite projections are mirror images in U.
	g := geometry.Default(32, 32, 8, 16, 16, 16)
	ph := phantom.UniformSphere(g.FOVRadius()*0.6, 1)
	a := Analytic(ph, g, 0)
	b := Analytic(ph, g, g.Np/2) // β + π
	var worst float64
	for v := 0; v < g.Nv; v++ {
		for u := 0; u < g.Nu; u++ {
			d := math.Abs(float64(a.At(u, v)) - float64(b.At(g.Nu-1-u, v)))
			if d > worst {
				worst = d
			}
		}
	}
	if worst > 1e-4 {
		t.Errorf("opposite projections differ by %g", worst)
	}
}

func TestRaycastMatchesAnalytic(t *testing.T) {
	// Ray marching through the voxelized sphere should approximate the
	// analytic integrals (within discretization error).
	g := geometry.Default(32, 32, 4, 32, 32, 32)
	ph := phantom.UniformSphere(g.FOVRadius()*0.6, 1)
	vol := ph.Voxelize(g)
	exact := Analytic(ph, g, 1)
	marched := Raycast(vol, g, 1, DefaultStep(g))
	r, err := volume.ImageRMSE(exact, marched)
	if err != nil {
		t.Fatal(err)
	}
	s := exact.Summarize()
	if r > 0.15*float64(s.Max) {
		t.Errorf("raycast RMSE %g too large vs max %g", r, s.Max)
	}
}

func TestRaycastEmptyVolume(t *testing.T) {
	g := geometry.Default(16, 16, 4, 8, 8, 8)
	vol := volume.New(8, 8, 8, volume.IMajor)
	img := Raycast(vol, g, 0, DefaultStep(g))
	s := img.Summarize()
	if s.Min != 0 || s.Max != 0 {
		t.Errorf("projection of empty volume has range [%g, %g]", s.Min, s.Max)
	}
}

func TestAddPoissonNoise(t *testing.T) {
	g := geometry.Default(64, 64, 4, 16, 16, 16)
	ph := phantom.UniformSphere(g.FOVRadius()*0.6, 0.02)
	img := Analytic(ph, g, 0)
	clean := img.Clone()
	rng := rand.New(rand.NewSource(1))
	AddPoissonNoise(img, 1e5, rng)
	r, _ := volume.ImageRMSE(clean, img)
	if r == 0 {
		t.Error("noise did not change the image")
	}
	if r > 0.1 {
		t.Errorf("noise RMSE %g too large for I0=1e5", r)
	}
	// More photons → less noise.
	img2 := clean.Clone()
	AddPoissonNoise(img2, 1e7, rng)
	r2, _ := volume.ImageRMSE(clean, img2)
	if r2 >= r {
		t.Errorf("noise did not decrease with more photons: %g vs %g", r2, r)
	}
}

func TestParallelForCoversAll(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		hits := make([]int32, 37)
		parallelFor(len(hits), workers, func(i int) { hits[i]++ })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
}

func BenchmarkAnalyticProjection64(b *testing.B) {
	g := geometry.Default(64, 64, 8, 32, 32, 32)
	ph := phantom.SheppLogan3D(g.FOVRadius() * 0.9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Analytic(ph, g, i%g.Np)
	}
}

func TestAnalyticAllCtxCancelled(t *testing.T) {
	g := testGeom()
	ph := phantom.UniformSphere(g.FOVRadius()*0.5, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: no projection may be rendered
	imgs, err := AnalyticAllCtx(ctx, ph, g, 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if imgs != nil {
		t.Fatal("cancelled render returned projections")
	}
	// An alive context renders the full set, identical to AnalyticAll.
	imgs, err = AnalyticAllCtx(context.Background(), ph, g, 2)
	if err != nil || len(imgs) != g.Np {
		t.Fatalf("live render: %d projections, err %v", len(imgs), err)
	}
	for s, img := range imgs {
		if img == nil {
			t.Fatalf("projection %d missing", s)
		}
	}
}
