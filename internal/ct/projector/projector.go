// Package projector generates cone-beam projections — the input E_i of the
// FDK pipeline. It replaces the RTK forward-projection tool used by the
// paper (Sec. 5.1) with two implementations:
//
//   - Analytic: exact line integrals through an ellipsoid phantom (fast and
//     noise-free; used by tests and benchmarks), and
//   - Raycast: trilinear ray marching through an arbitrary voxel volume
//     (used to project non-analytic objects).
//
// Both produce images in the (Nv rows × Nu cols) detector layout of
// Table 1.
package projector

import (
	"context"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"ifdk/internal/ct/geometry"
	"ifdk/internal/ct/phantom"
	"ifdk/internal/volume"
)

// Analytic renders the projection at angle index s by evaluating exact
// ellipsoid line integrals for every detector pixel.
func Analytic(ph phantom.Phantom, g geometry.Params, s int) *volume.Image {
	img := volume.NewImage(g.Nu, g.Nv)
	beta := g.Beta(s)
	for v := 0; v < g.Nv; v++ {
		row := img.Row(v)
		for u := 0; u < g.Nu; u++ {
			ray := geometry.DetectorRay(g, beta, float64(u), float64(v))
			row[u] = float32(ph.LineIntegral(ray))
		}
	}
	return img
}

// AnalyticAll renders all Np projections using the given number of worker
// goroutines (0 means GOMAXPROCS).
func AnalyticAll(ph phantom.Phantom, g geometry.Params, workers int) []*volume.Image {
	out, _ := AnalyticAllCtx(context.Background(), ph, g, workers)
	return out
}

// AnalyticAllCtx is AnalyticAll under a context: cancellation is checked
// between projections, so a cancelled job (or a daemon shutdown) stops
// synthesizing mid-scan instead of rendering the whole dataset. On
// cancellation it returns ctx's error and a nil slice; already-rendered
// projections become garbage.
func AnalyticAllCtx(ctx context.Context, ph phantom.Phantom, g geometry.Params, workers int) ([]*volume.Image, error) {
	out := make([]*volume.Image, g.Np)
	parallelFor(g.Np, workers, func(s int) {
		if ctx.Err() != nil {
			return // drain remaining indices without rendering
		}
		out[s] = Analytic(ph, g, s)
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Raycast renders the projection at angle index s by marching each detector
// ray through the voxel volume with trilinear sampling at the given step
// (in world units; a step of half the smallest voxel pitch is a good
// default, see DefaultStep).
func Raycast(vol *volume.Volume, g geometry.Params, s int, step float64) *volume.Image {
	img := volume.NewImage(g.Nu, g.Nv)
	beta := g.Beta(s)
	// March between the two spheres bounding the volume to skip empty space.
	bound := volumeBoundRadius(g)
	for v := 0; v < g.Nv; v++ {
		row := img.Row(v)
		for u := 0; u < g.Nu; u++ {
			ray := geometry.DetectorRay(g, beta, float64(u), float64(v))
			row[u] = float32(marchRay(vol, g, ray, step, bound))
		}
	}
	return img
}

// DefaultStep returns half the smallest voxel pitch, the conventional
// sampling density for ray marching.
func DefaultStep(g geometry.Params) float64 {
	return math.Min(g.Dx, math.Min(g.Dy, g.Dz)) / 2
}

func volumeBoundRadius(g geometry.Params) float64 {
	hx := float64(g.Nx) * g.Dx / 2
	hy := float64(g.Ny) * g.Dy / 2
	hz := float64(g.Nz) * g.Dz / 2
	return math.Sqrt(hx*hx + hy*hy + hz*hz)
}

func marchRay(vol *volume.Volume, g geometry.Params, ray geometry.Ray, step, bound float64) float64 {
	// Solve |o + t d|² = bound² for the entry/exit parameters.
	b := 2 * ray.Origin.Dot(ray.Dir)
	c := ray.Origin.Dot(ray.Origin) - bound*bound
	disc := b*b - 4*c
	if disc <= 0 {
		return 0
	}
	sq := math.Sqrt(disc)
	t0 := (-b - sq) / 2
	t1 := (-b + sq) / 2
	if t1 < 0 {
		return 0
	}
	if t0 < 0 {
		t0 = 0
	}
	var sum float64
	for t := t0 + step/2; t < t1; t += step {
		p := ray.Origin.Add(ray.Dir.Scale(t))
		sum += sampleTrilinear(vol, g, p)
	}
	return sum * step
}

// sampleTrilinear samples the volume at a world point by inverting the M0
// mapping to fractional voxel indices and blending the 8 neighbours.
func sampleTrilinear(vol *volume.Volume, g geometry.Params, p geometry.Vec3) float64 {
	fi := p.X/g.Dx + float64(g.Nx-1)/2
	fj := float64(g.Ny-1)/2 - p.Y/g.Dy
	fk := float64(g.Nz-1)/2 - p.Z/g.Dz
	i0 := int(math.Floor(fi))
	j0 := int(math.Floor(fj))
	k0 := int(math.Floor(fk))
	di := fi - float64(i0)
	dj := fj - float64(j0)
	dk := fk - float64(k0)
	var sum float64
	for dz := 0; dz < 2; dz++ {
		wz := dk
		if dz == 0 {
			wz = 1 - dk
		}
		k := k0 + dz
		if k < 0 || k >= vol.Nz {
			continue
		}
		for dy := 0; dy < 2; dy++ {
			wy := dj
			if dy == 0 {
				wy = 1 - dj
			}
			j := j0 + dy
			if j < 0 || j >= vol.Ny {
				continue
			}
			for dx := 0; dx < 2; dx++ {
				wx := di
				if dx == 0 {
					wx = 1 - di
				}
				i := i0 + dx
				if i < 0 || i >= vol.Nx {
					continue
				}
				sum += wx * wy * wz * float64(vol.At(i, j, k))
			}
		}
	}
	return sum
}

// AddPoissonNoise perturbs a projection with the photon statistics of a
// transmission measurement: the ideal intensity I = I0·exp(-p) receives
// Gaussian-approximated Poisson noise, and the projection becomes
// -ln(I/I0). Larger i0 (photons per detector pixel) means less noise.
// The image is modified in place; rng may be shared across calls but not
// across goroutines.
func AddPoissonNoise(img *volume.Image, i0 float64, rng *rand.Rand) {
	for n, p := range img.Data {
		ideal := i0 * math.Exp(-float64(p))
		noisy := ideal + rng.NormFloat64()*math.Sqrt(ideal)
		if noisy < 1 {
			noisy = 1
		}
		img.Data[n] = float32(math.Log(i0 / noisy))
	}
}

// parallelFor runs body(i) for i in [0, n) on the given number of workers.
func parallelFor(n, workers int, body func(int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	var next sync.Mutex
	cursor := 0
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				next.Lock()
				i := cursor
				cursor++
				next.Unlock()
				if i >= n {
					return
				}
				body(i)
			}
		}()
	}
	wg.Wait()
}
