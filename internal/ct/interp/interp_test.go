package interp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// grid builds a w×h image with data[v*w+u] = f(u, v).
func grid(w, h int, f func(u, v int) float32) []float32 {
	out := make([]float32, w*h)
	for v := 0; v < h; v++ {
		for u := 0; u < w; u++ {
			out[v*w+u] = f(u, v)
		}
	}
	return out
}

func TestExactAtGridPoints(t *testing.T) {
	w, h := 5, 4
	data := grid(w, h, func(u, v int) float32 { return float32(10*v + u) })
	for v := 0; v < h; v++ {
		for u := 0; u < w; u++ {
			got := Bilinear(data, w, h, float32(u), float32(v))
			want := float32(10*v + u)
			if got != want {
				t.Fatalf("at (%d,%d): got %g want %g", u, v, got, want)
			}
		}
	}
}

func TestMidpointAverages(t *testing.T) {
	w, h := 3, 3
	data := grid(w, h, func(u, v int) float32 { return float32(u + v) })
	got := Bilinear(data, w, h, 0.5, 0.5)
	// Average of 0, 1, 1, 2 = 1.
	if math.Abs(float64(got)-1) > 1e-6 {
		t.Errorf("midpoint = %g, want 1", got)
	}
}

// Property: bilinear interpolation reproduces affine images exactly
// (within float32 rounding) at any interior point.
func TestReproducesAffineProperty(t *testing.T) {
	const w, h = 16, 12
	f := func(a, b, c float32, fu, fv float64) bool {
		// Clamp coefficients to a tame range.
		a = float32(math.Mod(float64(a), 4))
		b = float32(math.Mod(float64(b), 4))
		c = float32(math.Mod(float64(c), 4))
		data := grid(w, h, func(u, v int) float32 {
			return a*float32(u) + b*float32(v) + c
		})
		u := float32(math.Mod(math.Abs(fu), 1) * (w - 1))
		v := float32(math.Mod(math.Abs(fv), 1) * (h - 1))
		got := Bilinear(data, w, h, u, v)
		want := a*u + b*v + c
		return math.Abs(float64(got-want)) <= 1e-4*(1+math.Abs(float64(want)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestOutsideReturnsZero(t *testing.T) {
	w, h := 4, 4
	data := grid(w, h, func(u, v int) float32 { return 7 })
	cases := [][2]float32{{-2, 1}, {1, -2}, {4, 1}, {1, 4}, {-1.5, -1.5}, {100, 100}}
	for _, c := range cases {
		if got := Bilinear(data, w, h, c[0], c[1]); got != 0 {
			t.Errorf("at (%g,%g): got %g, want 0", c[0], c[1], got)
		}
	}
}

func TestBorderFadesToZero(t *testing.T) {
	// Between -1 and 0 the sample blends with the zero border.
	w, h := 4, 4
	data := grid(w, h, func(u, v int) float32 { return 8 })
	got := Bilinear(data, w, h, -0.5, 1)
	if math.Abs(float64(got)-4) > 1e-6 {
		t.Errorf("border blend = %g, want 4", got)
	}
	got = Bilinear(data, w, h, 3.5, 1) // last column blends with border
	if math.Abs(float64(got)-4) > 1e-6 {
		t.Errorf("right border blend = %g, want 4", got)
	}
}

// Property: interpolated values are bounded by the min/max of the image
// in the fully interior region.
func TestBoundedProperty(t *testing.T) {
	const w, h = 8, 8
	f := func(seed int64, fu, fv float64) bool {
		rng := rand.New(rand.NewSource(seed))
		data := make([]float32, w*h)
		lo, hi := float32(math.Inf(1)), float32(math.Inf(-1))
		for n := range data {
			data[n] = rng.Float32()*10 - 5
			if data[n] < lo {
				lo = data[n]
			}
			if data[n] > hi {
				hi = data[n]
			}
		}
		u := float32(math.Mod(math.Abs(fu), 1) * (w - 1))
		v := float32(math.Mod(math.Abs(fv), 1) * (h - 1))
		got := Bilinear(data, w, h, u, v)
		return got >= lo-1e-5 && got <= hi+1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFloorInt(t *testing.T) {
	cases := map[float32]int{0: 0, 0.9: 0, 1.0: 1, -0.1: -1, -1.0: -1, -1.5: -2, 2.5: 2}
	for in, want := range cases {
		if got := floorInt(in); got != want {
			t.Errorf("floorInt(%g) = %d, want %d", in, got, want)
		}
	}
}

func BenchmarkBilinear(b *testing.B) {
	const w, h = 512, 512
	data := grid(w, h, func(u, v int) float32 { return float32(u ^ v) })
	var sink float32
	for i := 0; i < b.N; i++ {
		sink += Bilinear(data, w, h, float32(i%510)+0.3, float32((i*7)%510)+0.6)
	}
	_ = sink
}
