// Package interp implements the sub-pixel bilinear interpolation of the
// paper's Algorithm 3, the primitive every back-projection kernel uses to
// fetch a filtered-projection value at a non-integer detector coordinate.
//
// Arithmetic is performed in float32 to match the GPU kernels, so the CPU
// reference algorithms and the simulated CUDA kernels produce bit-comparable
// results. Samples outside the detector contribute zero, the border
// behaviour of RTK's texture fetch with a zero border.
package interp

// Bilinear samples the w×h row-major image data at fractional coordinates
// (u, v), where u indexes columns (stride 1) and v rows (stride w).
// Out-of-range neighbours contribute zero.
//
//ifdk:hotpath
func Bilinear(data []float32, w, h int, u, v float32) float32 {
	if u <= -1 || v <= -1 || u >= float32(w) || v >= float32(h) {
		return 0
	}
	nu := floorInt(u)
	nv := floorInt(v)
	du := u - float32(nu)
	dv := v - float32(nv)
	x00 := sample(data, w, h, nu, nv)
	x10 := sample(data, w, h, nu+1, nv)
	x01 := sample(data, w, h, nu, nv+1)
	x11 := sample(data, w, h, nu+1, nv+1)
	t1 := x00*(1-du) + x10*du // sub-pixel value on row nv   (Alg. 3 line 4)
	t2 := x01*(1-du) + x11*du // sub-pixel value on row nv+1 (Alg. 3 line 5)
	return t1*(1-dv) + t2*dv
}

//ifdk:hotpath
func sample(data []float32, w, h, u, v int) float32 {
	if u < 0 || v < 0 || u >= w || v >= h {
		return 0
	}
	return data[v*w+u]
}

//ifdk:hotpath
func floorInt(x float32) int {
	n := int(x)
	if float32(n) > x { // negative fractional values truncate toward zero
		n--
	}
	return n
}
