package phantom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ifdk/internal/ct/geometry"
)

func TestUniformSphereDensity(t *testing.T) {
	p := UniformSphere(10, 2.5)
	if got := p.Density(0, 0, 0); got != 2.5 {
		t.Errorf("density at centre = %g", got)
	}
	if got := p.Density(9.9, 0, 0); got != 2.5 {
		t.Errorf("density just inside = %g", got)
	}
	if got := p.Density(10.1, 0, 0); got != 0 {
		t.Errorf("density outside = %g", got)
	}
}

func TestSphereChordThroughCenter(t *testing.T) {
	p := UniformSphere(7, 3)
	ray := geometry.Ray{Origin: geometry.Vec3{X: -100}, Dir: geometry.Vec3{X: 1}}
	got := p.LineIntegral(ray)
	want := 2.0 * 7 * 3 // diameter × rho
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("central chord integral = %g, want %g", got, want)
	}
}

func TestSphereChordOffCenter(t *testing.T) {
	// Chord at impact parameter b: 2·sqrt(r²-b²).
	r, rho, b := 5.0, 1.0, 3.0
	p := UniformSphere(r, rho)
	ray := geometry.Ray{Origin: geometry.Vec3{X: -100, Y: b}, Dir: geometry.Vec3{X: 1}}
	got := p.LineIntegral(ray)
	want := 2 * math.Sqrt(r*r-b*b) * rho
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("chord integral = %g, want %g", got, want)
	}
	// Miss entirely.
	miss := geometry.Ray{Origin: geometry.Vec3{X: -100, Y: r + 1}, Dir: geometry.Vec3{X: 1}}
	if p.LineIntegral(miss) != 0 {
		t.Error("ray missing the sphere should integrate to 0")
	}
}

func TestChordClipsBehindOrigin(t *testing.T) {
	p := UniformSphere(5, 1)
	// Origin at centre: only the forward half contributes.
	ray := geometry.Ray{Origin: geometry.Vec3{}, Dir: geometry.Vec3{X: 1}}
	if got := p.LineIntegral(ray); math.Abs(got-5) > 1e-9 {
		t.Errorf("half-chord = %g, want 5", got)
	}
	// Sphere entirely behind the origin.
	behind := geometry.Ray{Origin: geometry.Vec3{X: 100}, Dir: geometry.Vec3{X: 1}}
	if got := p.LineIntegral(behind); got != 0 {
		t.Errorf("behind-origin integral = %g", got)
	}
}

func TestRotatedEllipsoidChord(t *testing.T) {
	// An ellipsoid rotated 90° about Z swaps its A and B axes.
	e := Ellipsoid{A: 2, B: 6, C: 1, Phi: math.Pi / 2, Rho: 1}
	p := Phantom{Ellipsoids: []Ellipsoid{e}}
	alongX := geometry.Ray{Origin: geometry.Vec3{X: -100}, Dir: geometry.Vec3{X: 1}}
	if got := p.LineIntegral(alongX); math.Abs(got-12) > 1e-9 {
		t.Errorf("chord along X = %g, want 12 (rotated B axis)", got)
	}
	alongY := geometry.Ray{Origin: geometry.Vec3{Y: -100}, Dir: geometry.Vec3{Y: 1}}
	if got := p.LineIntegral(alongY); math.Abs(got-4) > 1e-9 {
		t.Errorf("chord along Y = %g, want 4 (rotated A axis)", got)
	}
}

// Property: the analytic line integral matches numeric ray marching of
// Density for random rays through a random two-ellipsoid phantom.
func TestLineIntegralMatchesNumeric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ph := Phantom{}
		for n := 0; n < 2; n++ {
			ph.Ellipsoids = append(ph.Ellipsoids, Ellipsoid{
				A: 1 + rng.Float64()*3, B: 1 + rng.Float64()*3, C: 1 + rng.Float64()*3,
				X0: rng.Float64()*4 - 2, Y0: rng.Float64()*4 - 2, Z0: rng.Float64()*4 - 2,
				Phi: rng.Float64() * math.Pi,
				Rho: rng.Float64()*2 - 0.5,
			})
		}
		dir := geometry.Vec3{X: rng.Float64() - 0.5, Y: rng.Float64() - 0.5, Z: rng.Float64() - 0.5}
		if dir.Norm() < 1e-3 {
			dir = geometry.Vec3{X: 1}
		}
		ray := geometry.Ray{
			Origin: geometry.Vec3{X: -30 * dir.Normalize().X, Y: -30 * dir.Normalize().Y, Z: -30 * dir.Normalize().Z},
			Dir:    dir.Normalize(),
		}
		analytic := ph.LineIntegral(ray)
		const step = 1e-3
		var numeric float64
		for s := 0.0; s < 60; s += step {
			p := ray.Origin.Add(ray.Dir.Scale(s + step/2))
			numeric += ph.Density(p.X, p.Y, p.Z) * step
		}
		return math.Abs(analytic-numeric) < 2e-2*(1+math.Abs(analytic))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestSheppLoganStructure(t *testing.T) {
	p := SheppLogan3D(1)
	if len(p.Ellipsoids) != 10 {
		t.Fatalf("Shepp-Logan has %d ellipsoids", len(p.Ellipsoids))
	}
	// Inside the skull but outside the brain features, density is
	// 1 - 0.8 = 0.2.
	if got := p.Density(0, 0.6, 0); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("brain tissue density = %g, want 0.2", got)
	}
	// Outside everything.
	if got := p.Density(2, 0, 0); got != 0 {
		t.Errorf("outside density = %g", got)
	}
	// The skull shell (between outer and inner ellipsoid) has density 1.
	if got := p.Density(0, 0.9, 0); math.Abs(got-1) > 1e-12 {
		t.Errorf("skull density = %g, want 1", got)
	}
}

func TestSheppLoganScales(t *testing.T) {
	small := SheppLogan3D(1)
	big := SheppLogan3D(50)
	// Same density structure at scaled positions.
	if small.Density(0.22, 0, 0) != big.Density(11, 0, 0) {
		t.Error("scaled phantom density mismatch")
	}
}

func TestVoxelize(t *testing.T) {
	g := geometry.Default(64, 64, 30, 16, 16, 16)
	ph := UniformSphere(g.FOVRadius()*0.5, 1)
	vol := ph.Voxelize(g)
	if vol.Nx != 16 || vol.Ny != 16 || vol.Nz != 16 {
		t.Fatalf("voxelized size %dx%dx%d", vol.Nx, vol.Ny, vol.Nz)
	}
	// Centre voxel inside, corner voxel outside.
	if vol.At(8, 8, 8) != 1 {
		t.Errorf("centre voxel = %g", vol.At(8, 8, 8))
	}
	if vol.At(0, 0, 0) != 0 {
		t.Errorf("corner voxel = %g", vol.At(0, 0, 0))
	}
}

func TestIndustrialBlockDefects(t *testing.T) {
	p := IndustrialBlock(10)
	// The body is dense.
	if got := p.Density(0, 3, 0); got < 1.9 {
		t.Errorf("body density = %g", got)
	}
	// The first void has body minus void density ≈ 0.
	if got := p.Density(4, 2, 2); math.Abs(got) > 1e-12 {
		t.Errorf("void density = %g, want 0", got)
	}
	// The slag inclusion is denser than the body.
	if got := p.Density(-2, 3.5, -3); got < 3 {
		t.Errorf("inclusion density = %g", got)
	}
}
