// Package phantom provides analytic test objects for CT reconstruction:
// sets of ellipsoids with additive densities. The paper generates its input
// projections from the standard Shepp–Logan phantom with RTK's
// forward-projection tool (Sec. 5.1); this package plays the same role and,
// because ellipsoid line integrals have a closed form, also provides exact
// reference projections for testing the projector and the full pipeline.
package phantom

import (
	"math"

	"ifdk/internal/ct/geometry"
	"ifdk/internal/volume"
)

// Ellipsoid is an axis-scaled, Z-rotated, translated unit sphere with an
// additive density Rho. Overlapping ellipsoids sum their densities, which is
// how the Shepp–Logan phantom carves ventricles and tumours out of the
// skull.
type Ellipsoid struct {
	A, B, C    float64 // semi-axes along X, Y, Z (world units)
	X0, Y0, Z0 float64 // centre (world units)
	Phi        float64 // rotation about the Z axis (radians)
	Rho        float64 // additive density
}

// contains reports whether world point (x, y, z) lies inside the ellipsoid.
func (e Ellipsoid) contains(x, y, z float64) bool {
	sin, cos := math.Sincos(e.Phi)
	dx, dy, dz := x-e.X0, y-e.Y0, z-e.Z0
	// Rotate by -Phi into the ellipsoid frame.
	rx := cos*dx + sin*dy
	ry := -sin*dx + cos*dy
	q := rx*rx/(e.A*e.A) + ry*ry/(e.B*e.B) + dz*dz/(e.C*e.C)
	return q <= 1
}

// chord returns the length of the intersection of the ray with the
// ellipsoid. The ray direction must be unit length so the chord is in world
// units. Intersections behind the ray origin are clipped (the X-ray source
// is outside the object in any valid geometry).
func (e Ellipsoid) chord(r geometry.Ray) float64 {
	sin, cos := math.Sincos(e.Phi)
	// Transform origin and direction into the unit-sphere frame.
	ox, oy, oz := r.Origin.X-e.X0, r.Origin.Y-e.Y0, r.Origin.Z-e.Z0
	q0 := geometry.Vec3{
		X: (cos*ox + sin*oy) / e.A,
		Y: (-sin*ox + cos*oy) / e.B,
		Z: oz / e.C,
	}
	d := geometry.Vec3{
		X: (cos*r.Dir.X + sin*r.Dir.Y) / e.A,
		Y: (-sin*r.Dir.X + cos*r.Dir.Y) / e.B,
		Z: r.Dir.Z / e.C,
	}
	a := d.Dot(d)
	b := 2 * q0.Dot(d)
	c := q0.Dot(q0) - 1
	disc := b*b - 4*a*c
	if disc <= 0 || a == 0 {
		return 0
	}
	sq := math.Sqrt(disc)
	t1 := (-b - sq) / (2 * a)
	t2 := (-b + sq) / (2 * a)
	if t2 < 0 {
		return 0
	}
	if t1 < 0 {
		t1 = 0
	}
	return t2 - t1
}

// Phantom is a set of ellipsoids with additive densities.
type Phantom struct {
	Ellipsoids []Ellipsoid
}

// Density returns the phantom density at world point (x, y, z).
func (p Phantom) Density(x, y, z float64) float64 {
	var rho float64
	for _, e := range p.Ellipsoids {
		if e.contains(x, y, z) {
			rho += e.Rho
		}
	}
	return rho
}

// LineIntegral returns the exact integral of the density along the ray
// (chord length × density, summed over ellipsoids).
func (p Phantom) LineIntegral(r geometry.Ray) float64 {
	var sum float64
	for _, e := range p.Ellipsoids {
		if l := e.chord(r); l > 0 {
			sum += l * e.Rho
		}
	}
	return sum
}

// Voxelize samples the phantom at the voxel centres of the geometry's
// volume grid, producing the ground-truth volume for reconstruction error
// measurements. The result uses the i-major layout.
func (p Phantom) Voxelize(g geometry.Params) *volume.Volume {
	vol := volume.New(g.Nx, g.Ny, g.Nz, volume.IMajor)
	for k := 0; k < g.Nz; k++ {
		for j := 0; j < g.Ny; j++ {
			for i := 0; i < g.Nx; i++ {
				x, y, z := g.VoxelCenter(float64(i), float64(j), float64(k))
				vol.Set(i, j, k, float32(p.Density(x, y, z)))
			}
		}
	}
	return vol
}

// sheppLoganSpec is the canonical 3-D Shepp–Logan parameterization on the
// unit sphere (semi-axes, centre, Z-rotation in degrees, density), after
// Kak & Slaney and the common phantom3d tool.
var sheppLoganSpec = [10][8]float64{
	// a, b, c, x0, y0, z0, phiDeg, rho
	{0.6900, 0.920, 0.810, 0, 0, 0, 0, 1},
	{0.6624, 0.874, 0.780, 0, -0.0184, 0, 0, -0.8},
	{0.1100, 0.310, 0.220, 0.22, 0, 0, -18, -0.2},
	{0.1600, 0.410, 0.280, -0.22, 0, 0, 18, -0.2},
	{0.2100, 0.250, 0.410, 0, 0.35, -0.15, 0, 0.1},
	{0.0460, 0.046, 0.050, 0, 0.1, 0.25, 0, 0.1},
	{0.0460, 0.046, 0.050, 0, -0.1, 0.25, 0, 0.1},
	{0.0460, 0.023, 0.050, -0.08, -0.605, 0, 0, 0.1},
	{0.0230, 0.023, 0.020, 0, -0.606, 0, 0, 0.1},
	{0.0230, 0.046, 0.020, 0.06, -0.605, 0, 0, 0.1},
}

// SheppLogan3D returns the modified (high-contrast) 3-D Shepp–Logan head
// phantom scaled so its bounding unit sphere has the given radius in world
// units. Pick radius ≲ the geometry's FOVRadius so the whole head is imaged.
func SheppLogan3D(radius float64) Phantom {
	out := Phantom{Ellipsoids: make([]Ellipsoid, 0, len(sheppLoganSpec))}
	for _, s := range sheppLoganSpec {
		out.Ellipsoids = append(out.Ellipsoids, Ellipsoid{
			A: s[0] * radius, B: s[1] * radius, C: s[2] * radius,
			X0: s[3] * radius, Y0: s[4] * radius, Z0: s[5] * radius,
			Phi: s[6] * math.Pi / 180,
			Rho: s[7],
		})
	}
	return out
}

// UniformSphere returns a single homogeneous sphere, the simplest object
// with a closed-form everything — used to pin down the absolute
// reconstruction scale of the FDK pipeline.
func UniformSphere(radius, rho float64) Phantom {
	return Phantom{Ellipsoids: []Ellipsoid{{A: radius, B: radius, C: radius, Rho: rho}}}
}

// IndustrialBlock models the paper's non-destructive-inspection use case
// (Sec. 6.1): a dense oblong part containing small low-density voids
// ("defects") that the reconstruction should reveal. All features are
// ellipsoids so projections stay analytic.
func IndustrialBlock(radius float64) Phantom {
	r := radius
	return Phantom{Ellipsoids: []Ellipsoid{
		// The part body: a stubby cylinder approximated by a flat ellipsoid.
		{A: 0.85 * r, B: 0.6 * r, C: 0.7 * r, Rho: 2.0},
		// An internal bore.
		{A: 0.18 * r, B: 0.18 * r, C: 0.75 * r, Rho: -1.6},
		// Three void defects of decreasing size.
		{A: 0.08 * r, B: 0.08 * r, C: 0.08 * r, X0: 0.4 * r, Y0: 0.2 * r, Z0: 0.2 * r, Rho: -2.0},
		{A: 0.05 * r, B: 0.05 * r, C: 0.05 * r, X0: -0.35 * r, Y0: -0.25 * r, Z0: -0.15 * r, Rho: -2.0},
		{A: 0.03 * r, B: 0.03 * r, C: 0.03 * r, X0: 0.1 * r, Y0: -0.38 * r, Z0: 0.35 * r, Rho: -2.0},
		// A denser inclusion (slag).
		{A: 0.06 * r, B: 0.06 * r, C: 0.06 * r, X0: -0.2 * r, Y0: 0.35 * r, Z0: -0.3 * r, Rho: 1.5},
	}}
}
