package kernels

import (
	"testing"

	"math/rand"
)

// AccRow and BlockMean follow the strict branch of the parity policy (see
// kernels_test.go): both variants perform the same float32 operations in the
// same order, so fast and ref must be BIT-identical, NaN/Inf included.

func TestAccRowParity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range widths {
		for trial := 0; trial < 20; trial++ {
			src := randRow(rng, n, trial%3 == 0)
			accR := randRow(rng, n, trial%5 == 0)
			accF := append([]float32(nil), accR...)
			AccRowRef(accR, src)
			accRowFast(accF, src)
			for i := range accR {
				if !eqBits(accR[i], accF[i]) {
					t.Fatalf("n=%d: acc[%d] ref=%v fast=%v", n, i, accR[i], accF[i])
				}
			}
		}
	}
}

func TestBlockMeanParity(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, n := range widths {
		for _, d := range []int{1, 2, 3, 4, 5, 8} {
			for trial := 0; trial < 10; trial++ {
				acc := randRow(rng, n*d, trial%3 == 0)
				scale := float32(1) / float32(d*d)
				dstR := make([]float32, n)
				dstF := make([]float32, n)
				BlockMeanRef(dstR, acc, d, scale)
				blockMeanFast(dstF, acc, d, scale)
				for i := range dstR {
					if !eqBits(dstR[i], dstF[i]) {
						t.Fatalf("n=%d d=%d: dst[%d] ref=%v fast=%v", n, d, i, dstR[i], dstF[i])
					}
				}
			}
		}
	}
}

// TestBlockMeanRefOrder pins the summation order contract: each block sums
// left to right. A change in association would silently break the preview
// tier's bit-exact determinism promise.
func TestBlockMeanRefOrder(t *testing.T) {
	// Values chosen so float32 rounding distinguishes (a+b)+c from a+(b+c).
	acc := []float32{1e8, 1, 1, -1e8, 1, 1}
	dst := make([]float32, 2)
	BlockMean(dst, acc, 3, 1)
	want := make([]float32, 2)
	for u := range want {
		s := acc[u*3]
		s += acc[u*3+1]
		s += acc[u*3+2]
		want[u] = s
	}
	if !eqBits(dst[0], want[0]) || !eqBits(dst[1], want[1]) {
		t.Fatalf("block sums not left-to-right: got (%v,%v) want (%v,%v)", dst[0], dst[1], want[0], want[1])
	}
}
