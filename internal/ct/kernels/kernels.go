// Package kernels holds the innermost loops of the reconstruction pipeline
// — cosine weighting, the spectral ramp multiply, the FFT butterfly passes,
// and the back-projection per-voxel inner product — in two interchangeable
// forms:
//
//   - a scalar *reference* implementation (the exact loops the pipeline ran
//     before this package existed), and
//   - a *fast* implementation restructured so the Go compiler can keep the
//     inner loop free of bounds checks and function calls: slice windows are
//     hoisted once per loop (eliminating per-element bounds checks), access
//     is stride-1, and bodies are 4×-unrolled to expose independent
//     operations to the scheduler. No assembly and no GOEXPERIMENT flags:
//     plain Go that vectorizes/pipelines well on any GOARCH.
//
// Every fast kernel performs the same floating-point operations in the same
// order as its reference, so the two are bit-identical (property tests
// assert exact equality, far inside the required ≤1e-5 parity bound). Border
// and non-finite coordinates in the back-projection kernel fall back to the
// reference formula per sample, so NaN/Inf propagate identically.
//
// Selection is a process-wide runtime switch (SetMode, default "fast") so a
// deployment can pin the reference paths with -kernels=ref without
// rebuilding.
package kernels

import (
	"fmt"
	"sync/atomic"
)

// fastEnabled selects the fast implementations when true. It is read with a
// single atomic load per kernel call (outside the hot loops).
var fastEnabled atomic.Bool

func init() { fastEnabled.Store(true) }

// SetMode selects the kernel implementations process-wide: "fast" (the
// default) or "ref" for the retained scalar reference paths. "auto" is an
// alias for "fast" (selection needs no CPU-feature probe: the fast paths are
// portable Go).
func SetMode(mode string) error {
	switch mode {
	case "fast", "auto":
		fastEnabled.Store(true)
	case "ref":
		fastEnabled.Store(false)
	default:
		return fmt.Errorf("kernels: unknown mode %q (want ref or fast)", mode)
	}
	return nil
}

// Mode reports the active implementation set: "fast" or "ref".
func Mode() string {
	if fastEnabled.Load() {
		return "fast"
	}
	return "ref"
}
