package kernels

import (
	"math"
	"math/rand"
	"testing"
)

// Parity policy, asserted by these tests:
//
//   - CosineWeight, SpectralMul, ColumnGeom and AccumLinePair perform the
//     same float32 operations in the same order in both variants, so fast
//     and ref are BIT-identical — including NaN/Inf propagation.
//   - ButterflyStage, RealUnpack and RealRepack decompose the complex64
//     multiply into explicit float32 arithmetic in the fast variant (the
//     builtin rounds through float64), so they differ by ~1 ulp per
//     operation: parity is checked to 1e-6 relative — 10× tighter than the
//     required ≤1e-5 bound — and non-finite inputs must poison exactly the
//     same elements in both variants.

func eqBits(a, b float32) bool {
	return a == b || (math.IsNaN(float64(a)) && math.IsNaN(float64(b)))
}

func finite(c complex64) bool {
	re, im := float64(real(c)), float64(imag(c))
	return !math.IsNaN(re) && !math.IsInf(re, 0) && !math.IsNaN(im) && !math.IsInf(im, 0)
}

// checkComplexParity compares two complex slices element-wise: finite
// elements must agree within tol·peak, and non-finite ("poisoned") elements
// must coincide.
func checkComplexParity(t *testing.T, name string, ref, fast []complex64, tol float64) {
	t.Helper()
	var peak float64
	for _, c := range ref {
		if finite(c) {
			peak = math.Max(peak, math.Max(math.Abs(float64(real(c))), math.Abs(float64(imag(c)))))
		}
	}
	bound := tol * (peak + 1)
	for i := range ref {
		rf, ff := finite(ref[i]), finite(fast[i])
		if rf != ff {
			t.Fatalf("%s: element %d poisoned in one variant only: ref=%v fast=%v", name, i, ref[i], fast[i])
		}
		if !rf {
			continue
		}
		if d := math.Max(math.Abs(float64(real(ref[i])-real(fast[i]))),
			math.Abs(float64(imag(ref[i])-imag(fast[i])))); d > bound {
			t.Fatalf("%s: element %d diverges by %g (> %g): ref=%v fast=%v", name, i, d, bound, ref[i], fast[i])
		}
	}
}

// widths covers odd/even and non-power-of-two row lengths, including the
// unroll tail cases 1..3.
var widths = []int{0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 33, 100, 513}

func randRow(rng *rand.Rand, n int, poison bool) []float32 {
	row := make([]float32, n)
	for i := range row {
		row[i] = float32(rng.NormFloat64())
	}
	if poison && n > 0 {
		switch rng.Intn(3) {
		case 0:
			row[rng.Intn(n)] = float32(math.NaN())
		case 1:
			row[rng.Intn(n)] = float32(math.Inf(1))
		case 2:
			row[rng.Intn(n)] = float32(math.Inf(-1))
		}
	}
	return row
}

func TestCosineWeightParity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range widths {
		for trial := 0; trial < 20; trial++ {
			src := randRow(rng, n, trial%3 == 0)
			cos := randRow(rng, n, trial%5 == 0)
			ref := make([]float32, n)
			fast := make([]float32, n)
			CosineWeightRef(ref, src, cos)
			cosineWeightFast(fast, src, cos)
			for i := range ref {
				if !eqBits(ref[i], fast[i]) {
					t.Fatalf("n=%d: dst[%d] ref=%v fast=%v", n, i, ref[i], fast[i])
				}
			}
			// In-place aliasing (dst == src), as used by the filter.
			inPlace := append([]float32(nil), src...)
			cosineWeightFast(inPlace, inPlace, cos)
			for i := range ref {
				if !eqBits(ref[i], inPlace[i]) {
					t.Fatalf("n=%d: aliased dst[%d] ref=%v fast=%v", n, i, ref[i], inPlace[i])
				}
			}
		}
	}
}

func TestSpectralMulParity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range widths {
		for trial := 0; trial < 20; trial++ {
			re := randRow(rng, n, trial%3 == 0)
			im := randRow(rng, n, trial%4 == 0)
			gain := randRow(rng, n, trial%5 == 0)
			ref := make([]complex64, n)
			fast := make([]complex64, n)
			for i := range ref {
				ref[i] = complex(re[i], im[i])
				fast[i] = ref[i]
			}
			SpectralMulRef(ref, gain)
			spectralMulFast(fast, gain)
			for i := range ref {
				if !eqBits(real(ref[i]), real(fast[i])) || !eqBits(imag(ref[i]), imag(fast[i])) {
					t.Fatalf("n=%d: spec[%d] ref=%v fast=%v", n, i, ref[i], fast[i])
				}
			}
		}
	}
}

func TestColumnGeomParity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, nb := range []int{1, 2, 3, 5, 8, 31, 32} {
		rows := make([][3][4]float32, nb)
		for tr := range rows {
			for r := 0; r < 3; r++ {
				for c := 0; c < 4; c++ {
					rows[tr][r][c] = float32(rng.NormFloat64())
				}
			}
		}
		// One singular projection: z = 0 divides to ±Inf, which must flow
		// through identically.
		rows[0][2] = [4]float32{}
		usR, fsR, wsR := make([]float32, nb), make([]float32, nb), make([]float32, nb)
		usF, fsF, wsF := make([]float32, nb), make([]float32, nb), make([]float32, nb)
		fi, fj := float32(rng.Intn(512)), float32(rng.Intn(512))
		ColumnGeomRef(usR, fsR, wsR, rows, fi, fj)
		columnGeomFast(usF, fsF, wsF, rows, fi, fj)
		for i := 0; i < nb; i++ {
			if !eqBits(usR[i], usF[i]) || !eqBits(fsR[i], fsF[i]) || !eqBits(wsR[i], wsF[i]) {
				t.Fatalf("nb=%d t=%d: ref=(%v,%v,%v) fast=(%v,%v,%v)",
					nb, i, usR[i], fsR[i], wsR[i], usF[i], fsF[i], wsF[i])
			}
		}
	}
}

// twiddles builds the forward (or conjugated inverse) twiddle table for an
// n-point transform, mirroring fft.NewPlan32.
func twiddles(n int, inverse bool) []complex64 {
	tw := make([]complex64, n/2)
	for k := range tw {
		angle := -2 * math.Pi * float64(k) / float64(n)
		if inverse {
			angle = -angle
		}
		tw[k] = complex(float32(math.Cos(angle)), float32(math.Sin(angle)))
	}
	return tw
}

func TestButterflyStageParity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{2, 4, 8, 16, 64, 256, 1024} {
		for _, inverse := range []bool{false, true} {
			tw := twiddles(n, inverse)
			for trial := 0; trial < 10; trial++ {
				poison := trial >= 7
				re := randRow(rng, n, poison)
				im := randRow(rng, n, poison)
				ref := make([]complex64, n)
				fast := make([]complex64, n)
				for i := range ref {
					ref[i] = complex(re[i], im[i])
					fast[i] = ref[i]
				}
				// Run every stage of the transform so each (size, step)
				// combination — and the size-2/4 special cases — is hit.
				for size := 2; size <= n; size <<= 1 {
					ButterflyStageRef(ref, tw, size, n/size)
					butterflyStageFast(fast, tw, size, n/size)
					checkComplexParity(t, "butterfly", ref, fast, 1e-6)
					// Re-sync so per-stage differences do not compound into
					// the next stage's comparison.
					copy(fast, ref)
				}
			}
		}
	}
}

func TestRealUnpackRepackParity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, m := range []int{1, 2, 4, 8, 32, 128, 512} {
		w := make([]complex64, m/2+1)
		for k := range w {
			angle := -2 * math.Pi * float64(k) / float64(2*m)
			w[k] = complex(float32(math.Cos(angle)), float32(math.Sin(angle)))
		}
		for trial := 0; trial < 10; trial++ {
			poison := trial >= 7
			re := randRow(rng, m+1, poison)
			im := randRow(rng, m+1, poison)
			ref := make([]complex64, m+1)
			fast := make([]complex64, m+1)
			for i := range ref {
				ref[i] = complex(re[i], im[i])
				fast[i] = ref[i]
			}
			RealUnpackRef(ref, w, m)
			realUnpackFast(fast, w, m)
			checkComplexParity(t, "unpack", ref, fast, 1e-6)

			for i := range ref {
				ref[i] = complex(re[i], im[i])
				fast[i] = ref[i]
			}
			RealRepackRef(ref, w, m)
			realRepackFast(fast, w, m)
			checkComplexParity(t, "repack", ref, fast, 1e-6)
		}
	}
}

func TestAccumLinePairParity(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	dims := []struct{ rw, rh int }{{3, 3}, {5, 8}, {8, 5}, {17, 33}, {64, 64}, {33, 100}}
	for _, d := range dims {
		proj := randRow(rng, d.rw*d.rh, false)
		// Sprinkle non-finite detector values too.
		proj[rng.Intn(len(proj))] = float32(math.NaN())
		proj[rng.Intn(len(proj))] = float32(math.Inf(1))
		for trial := 0; trial < 60; trial++ {
			nk := rng.Intn(9) // includes 0-length lines
			sumR, symR := randRow(rng, nk, false), randRow(rng, nk, false)
			sumF := append([]float32(nil), sumR...)
			symF := append([]float32(nil), symR...)
			// u sweeps the interior, both borders, fully outside, and NaN/Inf.
			us := []float32{
				float32(rng.Float64()) * float32(d.rh),
				-0.5, -1.5, float32(d.rh) - 1, float32(d.rh) - 0.5, float32(d.rh) + 2,
				float32(math.NaN()), float32(math.Inf(1)),
			}
			u := us[trial%len(us)]
			f := float32(rng.NormFloat64())
			wdis := f * f
			yb := float32(rng.NormFloat64()) * 10
			ry2 := float32(rng.NormFloat64())
			ry3 := float32(rng.NormFloat64())
			if trial%11 == 0 {
				ry2 = float32(math.NaN()) // poisons v for every k
			}
			vm1 := float32(d.rw - 1)
			k0 := rng.Intn(16)
			AccumLinePairRef(sumR, symR, proj, d.rw, d.rh, u, f, wdis, yb, ry2, ry3, vm1, k0)
			accumLinePairFast(sumF, symF, proj, d.rw, d.rh, u, f, wdis, yb, ry2, ry3, vm1, k0)
			for i := 0; i < nk; i++ {
				if !eqBits(sumR[i], sumF[i]) || !eqBits(symR[i], symF[i]) {
					t.Fatalf("rw=%d rh=%d u=%v k=%d: ref=(%v,%v) fast=(%v,%v)",
						d.rw, d.rh, u, i, sumR[i], symR[i], sumF[i], symF[i])
				}
			}
		}
	}
}

func TestSetMode(t *testing.T) {
	t.Cleanup(func() { fastEnabled.Store(true) })
	if err := SetMode("ref"); err != nil || Mode() != "ref" {
		t.Fatalf("SetMode(ref): err=%v mode=%q", err, Mode())
	}
	for _, m := range []string{"fast", "auto"} {
		if err := SetMode(m); err != nil || Mode() != "fast" {
			t.Fatalf("SetMode(%s): err=%v mode=%q", m, err, Mode())
		}
	}
	if err := SetMode("avx512"); err == nil {
		t.Fatal("SetMode accepted an unknown mode")
	}
}
