package kernels

// Preview-tier decimation kernels: the two O(n) loops that downsample a
// full-resolution projection into its d×d block mean — row accumulation
// across the d detector rows of a block, then the horizontal block reduce.
// Together they are the innermost work of the coarse preview reconstruction,
// so they follow the same ref/fast contract as the filtering kernels:
// identical floating-point order, bit-exact results.

// AccRow accumulates acc[i] += src[i] for i < len(src). acc must be at least
// len(src) long.
//
//ifdk:hotpath
func AccRow(acc, src []float32) {
	if fastEnabled.Load() {
		accRowFast(acc, src)
		return
	}
	AccRowRef(acc, src)
}

// AccRowRef is the scalar reference for AccRow.
//
//ifdk:hotpath
func AccRowRef(acc, src []float32) {
	for u := range src {
		acc[u] += src[u]
	}
}

//ifdk:hotpath
func accRowFast(acc, src []float32) {
	n := len(src)
	acc = acc[:n]
	u := 0
	for ; u+4 <= n; u += 4 {
		a0 := acc[u] + src[u]
		a1 := acc[u+1] + src[u+1]
		a2 := acc[u+2] + src[u+2]
		a3 := acc[u+3] + src[u+3]
		acc[u] = a0
		acc[u+1] = a1
		acc[u+2] = a2
		acc[u+3] = a3
	}
	for ; u < n; u++ {
		acc[u] += src[u]
	}
}

// BlockMean reduces acc horizontally into dst:
// dst[u] = (acc[u·d] + … + acc[u·d+d-1]) · scale for u < len(dst), summing
// left to right within each block. acc must be at least len(dst)·d long and
// d must be positive. With scale = 1/d² and acc holding the sum of d rows,
// dst is the d×d block mean.
//
//ifdk:hotpath
func BlockMean(dst, acc []float32, d int, scale float32) {
	if fastEnabled.Load() {
		blockMeanFast(dst, acc, d, scale)
		return
	}
	BlockMeanRef(dst, acc, d, scale)
}

// BlockMeanRef is the scalar reference for BlockMean.
//
//ifdk:hotpath
func BlockMeanRef(dst, acc []float32, d int, scale float32) {
	for u := range dst {
		s := float32(0)
		for k := 0; k < d; k++ {
			s += acc[u*d+k]
		}
		dst[u] = s * scale
	}
}

//ifdk:hotpath
func blockMeanFast(dst, acc []float32, d int, scale float32) {
	n := len(dst)
	acc = acc[:n*d]
	u := 0
	for ; u+4 <= n; u += 4 {
		// Each output sums its block left to right, matching the reference
		// order exactly; the four independent blocks overlap in the pipeline.
		var s0, s1, s2, s3 float32
		b0, b1, b2, b3 := u*d, (u+1)*d, (u+2)*d, (u+3)*d
		for k := 0; k < d; k++ {
			s0 += acc[b0+k]
			s1 += acc[b1+k]
			s2 += acc[b2+k]
			s3 += acc[b3+k]
		}
		dst[u] = s0 * scale
		dst[u+1] = s1 * scale
		dst[u+2] = s2 * scale
		dst[u+3] = s3 * scale
	}
	for ; u < n; u++ {
		s := float32(0)
		b := u * d
		for k := 0; k < d; k++ {
			s += acc[b+k]
		}
		dst[u] = s * scale
	}
}
