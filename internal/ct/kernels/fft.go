package kernels

// FFT butterfly kernel: one radix-2 pass of the iterative Cooley-Tukey
// transform over complex64. The direction is encoded entirely in the twiddle
// table (callers pass conjugated twiddles for the inverse transform), so the
// per-butterfly direction branch of the pre-kernel implementation is gone
// from the hot loop in both variants.

// ButterflyStage applies the radix-2 butterflies of one transform stage in
// place: for every aligned block of `size` elements of x and every
// k < size/2,
//
//	a, b := x[s+k], x[s+k+size/2]·tw[k·step]
//	x[s+k], x[s+k+size/2] = a+b, a-b
//
// len(x) must be a multiple of size; size must be a power of two ≥ 2; tw
// must hold at least (size/2-1)·step+1 twiddles.
//
//ifdk:hotpath
func ButterflyStage(x, tw []complex64, size, step int) {
	if fastEnabled.Load() {
		butterflyStageFast(x, tw, size, step)
		return
	}
	ButterflyStageRef(x, tw, size, step)
}

// ButterflyStageRef is the scalar reference for ButterflyStage.
//
//ifdk:hotpath
func ButterflyStageRef(x, tw []complex64, size, step int) {
	half := size >> 1
	for start := 0; start+size <= len(x); start += size {
		for k := 0; k < half; k++ {
			w := tw[k*step]
			a := x[start+k]
			b := x[start+k+half] * w
			x[start+k] = a + b
			x[start+k+half] = a - b
		}
	}
}

//ifdk:hotpath
func butterflyStageFast(x, tw []complex64, size, step int) {
	half := size >> 1
	if half == 1 {
		// First stage: w = tw[0] = 1, adjacent pairs, pure adds.
		for i := 0; i+2 <= len(x); i += 2 {
			a, b := x[i], x[i+1]
			x[i] = a + b
			x[i+1] = a - b
		}
		return
	}
	if half == 2 {
		// Second stage: w0 = 1 and w1 = tw[step] ≈ ∓i (the float32 twiddle
		// may carry a ~1e-17 real part from rounding cos(π/2), which the
		// shortcut drops — far below the kernel parity bound).
		s := imag(tw[step])
		for i := 0; i+4 <= len(x); i += 4 {
			a0, a1 := x[i], x[i+1]
			b0 := x[i+2]
			b1v := x[i+3]
			b1 := complex(-s*imag(b1v), s*real(b1v))
			x[i] = a0 + b0
			x[i+1] = a1 + b1
			x[i+2] = a0 - b0
			x[i+3] = a1 - b1
		}
		return
	}
	step2, step3 := 2*step, 3*step
	for start := 0; start+size <= len(x); start += size {
		// Full-width capped windows over the block's two halves: one bounds
		// check each here buys check-free stride-1 indexing below. The
		// twiddle multiply is decomposed into explicit float32 arithmetic —
		// the complex64 operator would round-trip through float64 — so the
		// loop is pure float32 mul/add the compiler can pipeline.
		xa := x[start : start+half : start+half]
		xb := x[start+half : start+size : start+size]
		k, ti := 0, 0
		for ; k+4 <= half; k, ti = k+4, ti+4*step {
			b0 := cmul(xb[k], tw[ti])
			b1 := cmul(xb[k+1], tw[ti+step])
			b2 := cmul(xb[k+2], tw[ti+step2])
			b3 := cmul(xb[k+3], tw[ti+step3])
			a0, a1, a2, a3 := xa[k], xa[k+1], xa[k+2], xa[k+3]
			xa[k] = a0 + b0
			xa[k+1] = a1 + b1
			xa[k+2] = a2 + b2
			xa[k+3] = a3 + b3
			xb[k] = a0 - b0
			xb[k+1] = a1 - b1
			xb[k+2] = a2 - b2
			xb[k+3] = a3 - b3
		}
		for ; k < half; k, ti = k+1, ti+step {
			a := xa[k]
			b := cmul(xb[k], tw[ti])
			xa[k] = a + b
			xb[k] = a - b
		}
	}
}

// RealUnpack performs the O(n) "realft" unpack after the half-length
// complex transform of a packed real signal: dst[:m] holds Z = FFT(z) with
// z[j] = x[2j] + i·x[2j+1], and on return dst[0..m] holds the half spectrum
// X[0..m]. w are the unpack twiddles exp(-2πi k/n) for k ≤ m/2 (n = 2m).
//
//ifdk:hotpath
func RealUnpack(dst, w []complex64, m int) {
	if fastEnabled.Load() {
		realUnpackFast(dst, w, m)
		return
	}
	RealUnpackRef(dst, w, m)
}

// RealUnpackRef is the scalar reference for RealUnpack. With E/O the DFTs
// of the even/odd subsequences:
//
//	Z[k] = E[k] + i·O[k],  conj(Z[m-k]) = E[k] - i·O[k]
//	X[k]   = E[k] + w^k·O[k]
//	X[m-k] = conj(E[k] - w^k·O[k])
//
//ifdk:hotpath
func RealUnpackRef(dst, w []complex64, m int) {
	z := dst[:m]
	z0 := z[0]
	dst[0] = complex(real(z0)+imag(z0), 0)
	dst[m] = complex(real(z0)-imag(z0), 0)
	for k := 1; k <= m/2; k++ {
		a, b := z[k], z[m-k]
		e := complex(0.5*(real(a)+real(b)), 0.5*(imag(a)-imag(b))) // E[k]
		o := complex(0.5*(imag(a)+imag(b)), 0.5*(real(b)-real(a))) // O[k] = -i·(a-conj(b))/2
		wo := w[k] * o
		dst[k] = e + wo
		dst[m-k] = complex(real(e)-real(wo), imag(wo)-imag(e)) // conj(E - w·O)
	}
}

//ifdk:hotpath
func realUnpackFast(dst, w []complex64, m int) {
	z0 := dst[0]
	dst[0] = complex(real(z0)+imag(z0), 0)
	dst[m] = complex(real(z0)-imag(z0), 0)
	w = w[:m/2+1]
	for k := 1; k <= m/2; k++ {
		a, b := dst[k], dst[m-k]
		er := 0.5 * (real(a) + real(b))
		ei := 0.5 * (imag(a) - imag(b))
		or := 0.5 * (imag(a) + imag(b))
		oi := 0.5 * (real(b) - real(a))
		wk := w[k]
		wr, wi := real(wk), imag(wk)
		wor := wr*or - wi*oi
		woi := wr*oi + wi*or
		dst[k] = complex(er+wor, ei+woi)
		dst[m-k] = complex(er-wor, woi-ei)
	}
}

// RealRepack is the inverse of RealUnpack: spec[0..m] holds the half
// spectrum X, and on return spec[:m] holds the packed m-point spectrum Z
// whose inverse transform interleaves back to the real signal.
//
//ifdk:hotpath
func RealRepack(spec, w []complex64, m int) {
	if fastEnabled.Load() {
		realRepackFast(spec, w, m)
		return
	}
	RealRepackRef(spec, w, m)
}

// RealRepackRef is the scalar reference for RealRepack:
//
//	E[k] = (X[k] + conj(X[m-k]))/2
//	O[k] = conj(w^k)·(X[k] - conj(X[m-k]))/2
//	Z[k] = E[k] + i·O[k]
//
//ifdk:hotpath
func RealRepackRef(spec, w []complex64, m int) {
	x0, xm := real(spec[0]), real(spec[m])
	spec[0] = complex(0.5*(x0+xm), 0.5*(x0-xm))
	for k := 1; k <= m/2; k++ {
		a, b := spec[k], spec[m-k]
		e := complex(0.5*(real(a)+real(b)), 0.5*(imag(a)-imag(b)))
		wo := complex(0.5*(real(a)-real(b)), 0.5*(imag(a)+imag(b))) // w^k·O[k]
		wk := w[k]
		o := complex(real(wk), -imag(wk)) * wo // conj(w^k)·(w^k·O[k])
		// Z[k] = E + i·O; Z[m-k] = conj(E) + i·conj(O).
		spec[k] = complex(real(e)-imag(o), imag(e)+real(o))
		spec[m-k] = complex(real(e)+imag(o), real(o)-imag(e))
	}
}

//ifdk:hotpath
func realRepackFast(spec, w []complex64, m int) {
	x0, xm := real(spec[0]), real(spec[m])
	spec[0] = complex(0.5*(x0+xm), 0.5*(x0-xm))
	w = w[:m/2+1]
	for k := 1; k <= m/2; k++ {
		a, b := spec[k], spec[m-k]
		er := 0.5 * (real(a) + real(b))
		ei := 0.5 * (imag(a) - imag(b))
		wor := 0.5 * (real(a) - real(b))
		woi := 0.5 * (imag(a) + imag(b))
		wk := w[k]
		wr, wi := real(wk), imag(wk)
		or := wr*wor + wi*woi // conj(w)·(w·O)
		oi := wr*woi - wi*wor
		spec[k] = complex(er-oi, ei+or)
		spec[m-k] = complex(er+oi, or-ei)
	}
}

// cmul multiplies two complex64 values in single precision. The builtin
// complex64 product promotes through float64 and rounds back; keeping every
// operation in float32 differs from it by at most one rounding step per
// component (double rounding of a·c-b·d), far inside the kernel parity
// bound, and roughly halves the cost of the butterfly.
//
//ifdk:hotpath
func cmul(a, w complex64) complex64 {
	ar, ai := real(a), imag(a)
	wr, wi := real(w), imag(w)
	return complex(ar*wr-ai*wi, ar*wi+ai*wr)
}
