package kernels_test

import (
	"math"
	"math/rand"
	"testing"

	"ifdk/internal/bench"
	"ifdk/internal/ct/kernels"
)

// Benchmarks for every fast/ref kernel pair at the shapes the pipeline
// actually runs (Nu = 512 geometry: 1024-point padded rows, 512-point
// half transforms, 512² transposed projections). Results are appended to
// $IFDK_BENCH_OUT as JSON lines via bench.Record so CI accumulates a
// cross-PR regression trajectory.

func record(b *testing.B, bytesPerOp int64) {
	b.SetBytes(bytesPerOp)
	nsPerOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	bench.Record(b.Name(), map[string]float64{
		"ns_per_op": nsPerOp,
		"mb_per_s":  float64(bytesPerOp) / nsPerOp * 1e9 / 1e6,
	})
}

func randF32(rng *rand.Rand, n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = float32(rng.NormFloat64())
	}
	return out
}

func randC64(rng *rand.Rand, n int) []complex64 {
	out := make([]complex64, n)
	for i := range out {
		out[i] = complex(float32(rng.NormFloat64()), float32(rng.NormFloat64()))
	}
	return out
}

// withMode runs the body with the process-wide kernel mode pinned.
func withMode(b *testing.B, mode string, body func(*testing.B)) {
	if err := kernels.SetMode(mode); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { kernels.SetMode("fast") })
	body(b)
}

func BenchmarkKernelsCosineWeight(b *testing.B) {
	const n = 1024
	rng := rand.New(rand.NewSource(1))
	src, cos, dst := randF32(rng, n), randF32(rng, n), make([]float32, n)
	for _, mode := range []string{"ref", "fast"} {
		b.Run(mode, func(b *testing.B) {
			withMode(b, mode, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					kernels.CosineWeight(dst, src, cos)
				}
				record(b, 4*n)
			})
		})
	}
}

func BenchmarkKernelsSpectralMul(b *testing.B) {
	const n = 513 // half spectrum of a 1024-point row
	rng := rand.New(rand.NewSource(2))
	// Unit-magnitude gains keep the repeatedly rescaled spectrum out of the
	// denormal range, which would distort the timing.
	gain := make([]float32, n)
	for i := range gain {
		gain[i] = float32(1 - 2*rng.Intn(2))
	}
	spec := randC64(rng, n)
	for _, mode := range []string{"ref", "fast"} {
		b.Run(mode, func(b *testing.B) {
			withMode(b, mode, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					kernels.SpectralMul(spec, gain)
				}
				record(b, 8*n)
			})
		})
	}
}

func BenchmarkKernelsButterfly(b *testing.B) {
	const n = 512 // the half transform behind a 1024-point padded row
	rng := rand.New(rand.NewSource(3))
	tw := make([]complex64, n/2)
	for k := range tw {
		angle := -2 * math.Pi * float64(k) / float64(n)
		tw[k] = complex(float32(math.Cos(angle)), float32(math.Sin(angle)))
	}
	x0 := randC64(rng, n)
	x := make([]complex64, n)
	for _, mode := range []string{"ref", "fast"} {
		b.Run(mode, func(b *testing.B) {
			withMode(b, mode, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					// Reset from a pristine copy: a full stage sweep grows
					// magnitudes ~n×, which would hit Inf within a few
					// iterations. One full sweep = the butterflies of one FFT.
					copy(x, x0)
					for size := 2; size <= n; size <<= 1 {
						kernels.ButterflyStage(x, tw, size, n/size)
					}
				}
				record(b, 8*n)
			})
		})
	}
}

func BenchmarkKernelsRealUnpack(b *testing.B) {
	const m = 512
	rng := rand.New(rand.NewSource(4))
	w := make([]complex64, m/2+1)
	for k := range w {
		angle := -2 * math.Pi * float64(k) / float64(2*m)
		w[k] = complex(float32(math.Cos(angle)), float32(math.Sin(angle)))
	}
	spec := randC64(rng, m+1)
	for _, mode := range []string{"ref", "fast"} {
		b.Run(mode, func(b *testing.B) {
			withMode(b, mode, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					kernels.RealUnpack(spec, w, m)
					kernels.RealRepack(spec, w, m)
				}
				record(b, 2*8*m)
			})
		})
	}
}

func BenchmarkKernelsAccumLinePair(b *testing.B) {
	const rw, rh, nk = 512, 512, 256
	rng := rand.New(rand.NewSource(5))
	proj := randF32(rng, rw*rh)
	sum, sym := make([]float32, nk), make([]float32, nk)
	for _, mode := range []string{"ref", "fast"} {
		b.Run(mode, func(b *testing.B) {
			withMode(b, mode, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					kernels.AccumLinePair(sum, sym, proj, rw, rh,
						200.25, 0.002, 4e-6, 30, 0.45, 1.5, rw-1, 0)
				}
				record(b, 2*4*nk)
			})
		})
	}
}
