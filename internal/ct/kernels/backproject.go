package kernels

import "ifdk/internal/ct/interp"

// Back-projection kernels for the proposed algorithm (Alg. 4) on transposed
// projections. The surrounding loop structure lives in internal/ct/backproject;
// what lives here is the per-(i,j)-column work:
//
//   - ColumnGeom: the two inner products per projection that are independent
//     of k (Theorems 2+3 — u, 1/z and the distance weight),
//   - AccumLinePair: the per-voxel inner product and bilinear fetch for one
//     projection along a full vertical voxel line and its Theorem-1 mirror.
//
// AccumLinePair is where the transpose pays off: for a fixed projection t
// the detector row index is floor(u) — constant along the voxel line — so
// the fast path hoists the two detector rows once and walks them stride-1
// as v advances, with no per-sample bounds checks. Samples whose v lands on
// the detector border (or is NaN/Inf) are delegated to interp.Bilinear, the
// reference sampler, so edge and non-finite semantics are exactly those of
// the reference kernel.

// ColumnGeom fills the per-projection column registers (Listing 1's U, Z and
// W_dis registers) for voxel column (fi, fj): for each projection t,
//
//	x := r[0][0]·fi + r[0][1]·fj + r[0][3]
//	z := r[2][0]·fi + r[2][1]·fj + r[2][3]
//	us[t], fs[t], ws[t] = x/z, 1/z, 1/z²
//
// us, fs and ws must be at least len(rows) long.
//
//ifdk:hotpath
func ColumnGeom(us, fs, ws []float32, rows [][3][4]float32, fi, fj float32) {
	if fastEnabled.Load() {
		columnGeomFast(us, fs, ws, rows, fi, fj)
		return
	}
	ColumnGeomRef(us, fs, ws, rows, fi, fj)
}

// ColumnGeomRef is the scalar reference for ColumnGeom.
//
//ifdk:hotpath
func ColumnGeomRef(us, fs, ws []float32, rows [][3][4]float32, fi, fj float32) {
	for t := range rows {
		r := &rows[t]
		x := r[0][0]*fi + r[0][1]*fj + r[0][3]
		z := r[2][0]*fi + r[2][1]*fj + r[2][3]
		f := 1 / z
		us[t] = x * f
		fs[t] = f
		ws[t] = f * f
	}
}

//ifdk:hotpath
func columnGeomFast(us, fs, ws []float32, rows [][3][4]float32, fi, fj float32) {
	n := len(rows)
	us = us[:n]
	fs = fs[:n]
	ws = ws[:n]
	for t := range rows {
		r := &rows[t]
		x := r[0][0]*fi + r[0][1]*fj + r[0][3]
		z := r[2][0]*fi + r[2][1]*fj + r[2][3]
		f := 1 / z
		us[t] = x * f
		fs[t] = f
		ws[t] = f * f
	}
}

// AccumLinePair accumulates one projection's contribution to a vertical
// voxel line and its Theorem-1 mirror. proj is a transposed projection laid
// out rw×rh (rw = original detector height Nv as the fast axis, rh = Nu
// rows); u, f and wdis are the column-constant registers from ColumnGeom;
// yb carries the k-independent part r[1][0]·fi + r[1][1]·fj of the y inner
// product and ry2, ry3 its fk coefficient and constant; vm1 = float32(Nv-1)
// is the Theorem-1 mirror pivot. For each kk < len(sum), with
// fk = float32(k0+kk):
//
//	v    := (yb + ry2·fk + ry3)·f
//	sum[kk] += wdis·proj(v, u)     // bilinear, V fast axis
//	sym[kk] += wdis·proj(vm1-v, u)
//
// len(sym) must equal len(sum).
//
//ifdk:hotpath
func AccumLinePair(sum, sym, proj []float32, rw, rh int, u, f, wdis, yb, ry2, ry3, vm1 float32, k0 int) {
	if fastEnabled.Load() {
		accumLinePairFast(sum, sym, proj, rw, rh, u, f, wdis, yb, ry2, ry3, vm1, k0)
		return
	}
	AccumLinePairRef(sum, sym, proj, rw, rh, u, f, wdis, yb, ry2, ry3, vm1, k0)
}

// AccumLinePairRef is the scalar reference for AccumLinePair: the loop body
// is exactly the pre-kernel per-voxel code, one interp.Bilinear call per
// sample.
//
//ifdk:hotpath
func AccumLinePairRef(sum, sym, proj []float32, rw, rh int, u, f, wdis, yb, ry2, ry3, vm1 float32, k0 int) {
	for kk := range sum {
		fk := float32(k0 + kk)
		y := yb + ry2*fk + ry3
		v := y * f
		vSym := vm1 - v
		sum[kk] += wdis * interp.Bilinear(proj, rw, rh, v, u)
		sym[kk] += wdis * interp.Bilinear(proj, rw, rh, vSym, u)
	}
}

//ifdk:hotpath
func accumLinePairFast(sum, sym, proj []float32, rw, rh int, u, f, wdis, yb, ry2, ry3, vm1 float32, k0 int) {
	// The fast path needs both detector rows floor(u) and floor(u)+1 fully
	// inside the projection; border columns (and NaN u, which fails the
	// positive comparison) keep the reference path.
	if !(u >= 0 && u < float32(rh-1)) {
		AccumLinePairRef(sum, sym, proj, rw, rh, u, f, wdis, yb, ry2, ry3, vm1, k0)
		return
	}
	nu := int(u) // u ≥ 0, so truncation is floor
	du := u - float32(nu)
	row0 := proj[nu*rw : (nu+1)*rw : (nu+1)*rw]
	row1 := proj[(nu+1)*rw : (nu+2)*rw : (nu+2)*rw]
	vMax := float32(rw - 1)
	sym = sym[:len(sum)]
	for kk := range sum {
		fk := float32(k0 + kk)
		y := yb + ry2*fk + ry3
		v := y * f
		vSym := vm1 - v
		var a, b float32
		if v >= 0 && v < vMax {
			nv := int(v)
			dv := v - float32(nv)
			t1 := row0[nv]*(1-dv) + row0[nv+1]*dv
			t2 := row1[nv]*(1-dv) + row1[nv+1]*dv
			a = t1*(1-du) + t2*du
		} else {
			a = interp.Bilinear(proj, rw, rh, v, u)
		}
		if vSym >= 0 && vSym < vMax {
			nv := int(vSym)
			dv := vSym - float32(nv)
			t1 := row0[nv]*(1-dv) + row0[nv+1]*dv
			t2 := row1[nv]*(1-dv) + row1[nv+1]*dv
			b = t1*(1-du) + t2*du
		} else {
			b = interp.Bilinear(proj, rw, rh, vSym, u)
		}
		sum[kk] += wdis * a
		sym[kk] += wdis * b
	}
}
