package kernels

// Filtering-stage kernels: the two O(Nu) loops executed once per detector
// row (Alg. 1) — point-wise cosine weighting and the half-spectrum ramp
// multiply.

// CosineWeight computes dst[i] = src[i]·cos[i] for i < len(src). dst and
// cos must be at least len(src) long; dst may alias src.
//
//ifdk:hotpath
func CosineWeight(dst, src, cos []float32) {
	if fastEnabled.Load() {
		cosineWeightFast(dst, src, cos)
		return
	}
	CosineWeightRef(dst, src, cos)
}

// CosineWeightRef is the scalar reference for CosineWeight.
//
//ifdk:hotpath
func CosineWeightRef(dst, src, cos []float32) {
	for u := range src {
		dst[u] = src[u] * cos[u]
	}
}

//ifdk:hotpath
func cosineWeightFast(dst, src, cos []float32) {
	n := len(src)
	// Reslicing all three operands to the common length lets the compiler
	// drop the bounds checks inside the unrolled loop.
	dst = dst[:n]
	cos = cos[:n]
	u := 0
	for ; u+4 <= n; u += 4 {
		d0 := src[u] * cos[u]
		d1 := src[u+1] * cos[u+1]
		d2 := src[u+2] * cos[u+2]
		d3 := src[u+3] * cos[u+3]
		dst[u] = d0
		dst[u+1] = d1
		dst[u+2] = d2
		dst[u+3] = d3
	}
	for ; u < n; u++ {
		dst[u] = src[u] * cos[u]
	}
}

// SpectralMul scales each spectrum bin by a real gain:
// spec[k] = spec[k]·gain[k] for k < len(gain). len(spec) must be at least
// len(gain).
//
//ifdk:hotpath
func SpectralMul(spec []complex64, gain []float32) {
	if fastEnabled.Load() {
		spectralMulFast(spec, gain)
		return
	}
	SpectralMulRef(spec, gain)
}

// SpectralMulRef is the scalar reference for SpectralMul.
//
//ifdk:hotpath
func SpectralMulRef(spec []complex64, gain []float32) {
	for k, g := range gain {
		v := spec[k]
		spec[k] = complex(real(v)*g, imag(v)*g)
	}
}

//ifdk:hotpath
func spectralMulFast(spec []complex64, gain []float32) {
	n := len(gain)
	spec = spec[:n]
	k := 0
	for ; k+4 <= n; k += 4 {
		v0, g0 := spec[k], gain[k]
		v1, g1 := spec[k+1], gain[k+1]
		v2, g2 := spec[k+2], gain[k+2]
		v3, g3 := spec[k+3], gain[k+3]
		spec[k] = complex(real(v0)*g0, imag(v0)*g0)
		spec[k+1] = complex(real(v1)*g1, imag(v1)*g1)
		spec[k+2] = complex(real(v2)*g2, imag(v2)*g2)
		spec[k+3] = complex(real(v3)*g3, imag(v3)*g3)
	}
	for ; k < n; k++ {
		v, g := spec[k], gain[k]
		spec[k] = complex(real(v)*g, imag(v)*g)
	}
}
