// Package preview builds decimated preview reconstructions: the coarse tier
// of the service's coarse-to-fine ("progressive") serving mode.
//
// A preview is a full FDK reconstruction of a downsampled problem derived
// from the full-resolution geometry by one integer factor d: every d-th
// projection is kept, each kept projection is reduced to its d×d block
// means, and the volume grid drops to (Nx/d, Ny/d, Nz/d) voxels of d× the
// pitch. Counts divide and pitches multiply, so the physical field of view —
// and, because block means average symmetric pixel groups, the detector and
// volume centres — are exactly those of the full problem: a preview voxel is
// a genuine coarse sample of the same object, not a reconstruction of a
// different scanner. Keeping every d-th of Np projections also keeps the
// angular sampling exact: the i-th kept projection sits at angle
// i·2π/(Np/d), which is precisely Beta(i) of the coarse geometry.
//
// The work drops steeply with d — filtering by ~d² (rows × row length, less
// the shorter FFT), back-projection by ~d⁴ (voxels × projections) — which is
// what turns a seconds-scale job into the ~100 ms interactive tier. The
// decimation itself is two O(n) kernels loops (kernels.AccRow /
// kernels.BlockMean) over pooled scratch, so the path stays
// allocation-free in steady state like the rest of the pipeline.
//
// A preview is a pure function of the full-resolution dataset and the plan:
// it always downsamples the staged projections, never an analytic shortcut,
// so journal replay after a crash reproduces it bit-exactly.
package preview

import (
	"context"
	"fmt"
	"time"

	"ifdk/internal/ct/fdk"
	"ifdk/internal/ct/filter"
	"ifdk/internal/ct/geometry"
	"ifdk/internal/ct/kernels"
	"ifdk/internal/engine"
	"ifdk/internal/volume"
)

// MaxFactor is the largest decimation factor PlanFor considers. Beyond 4 the
// coarse grids of typical service-sized jobs fall under minDim and the
// preview stops resembling the object.
const MaxFactor = 4

// minDim is the smallest detector / volume side and projection count a
// coarse problem may have; below it a preview carries no usable structure.
const minDim = 8

// Plan is one preview-tier reconstruction derived from a full-resolution
// geometry: the coarse problem plus the factor connecting the two.
type Plan struct {
	Full   geometry.Params // the full-resolution problem
	Coarse geometry.Params // the decimated problem (Decimated(Full, Factor))
	Factor int             // decimation factor d ≥ 1
}

// Decimated returns the coarse geometry at factor d: counts divided,
// pitches multiplied, source-detector distances unchanged. d must divide
// Np, Nu, Nv, Nx, Ny and Nz (PlanFor guarantees this).
func Decimated(g geometry.Params, d int) geometry.Params {
	c := g
	c.Np = g.Np / d
	c.Nu, c.Nv = g.Nu/d, g.Nv/d
	c.Du, c.Dv = g.Du*float64(d), g.Dv*float64(d)
	c.Nx, c.Ny, c.Nz = g.Nx/d, g.Ny/d, g.Nz/d
	c.Dx, c.Dy, c.Dz = g.Dx*float64(d), g.Dy*float64(d), g.Dz*float64(d)
	return c
}

// PlanFor picks the preview plan for a full-resolution geometry: the largest
// factor ≤ maxFactor (0 → MaxFactor) that divides every count and keeps the
// coarse problem above minDim on every axis. Factor 1 — a serial
// full-resolution pass — is the guaranteed fallback for jobs already too
// small to decimate, so PlanFor fails only on an invalid geometry.
func PlanFor(g geometry.Params, maxFactor int) (Plan, error) {
	if err := g.Validate(); err != nil {
		return Plan{}, fmt.Errorf("preview: %w", err)
	}
	if maxFactor <= 0 || maxFactor > MaxFactor {
		maxFactor = MaxFactor
	}
	for d := maxFactor; d > 1; d-- {
		if !divides(d, g.Np, g.Nu, g.Nv, g.Nx, g.Ny, g.Nz) {
			continue
		}
		c := Decimated(g, d)
		if c.Np < minDim || c.Nu < minDim || c.Nv < minDim ||
			c.Nx < minDim || c.Ny < minDim || c.Nz < minDim {
			continue
		}
		return Plan{Full: g, Coarse: c, Factor: d}, nil
	}
	return Plan{Full: g, Coarse: g, Factor: 1}, nil
}

func divides(d int, ns ...int) bool {
	for _, n := range ns {
		if n%d != 0 {
			return false
		}
	}
	return true
}

// accPool holds the one accumulator row DecimateInto needs per in-flight
// call, shared across previews the way the filter shares its row scratch.
var accPool engine.BufPool[float32]

// DecimateInto reduces the full-resolution projection src (Nu×Nv) to its
// d×d block means in dst (Nu/d × Nv/d): each coarse pixel is the mean of
// its d×d source block, accumulated rows-first so the float32 order is
// deterministic. dst must not alias src. Steady state performs zero heap
// allocations.
//
//ifdk:hotpath
func DecimateInto(dst, src *volume.Image, d int) error {
	if d < 1 {
		return fmt.Errorf("preview: decimation factor %d", d)
	}
	if dst.W*d != src.W || dst.H*d != src.H {
		return fmt.Errorf("preview: %dx%d is not %dx%d decimated by %d",
			dst.W, dst.H, src.W, src.H, d)
	}
	inv := 1 / float32(d*d)
	acc := accPool.Acquire(src.W)
	for v := 0; v < dst.H; v++ {
		clear(acc.Data)
		for k := 0; k < d; k++ {
			kernels.AccRow(acc.Data, src.Row(v*d+k))
		}
		kernels.BlockMean(dst.Row(v), acc.Data, d, inv)
	}
	acc.Release()
	return nil
}

// Timings splits one preview build into its pipeline segments (seconds).
// Load covers reading the full-resolution projections, Decimate the block
// means, Filter the coarse ramp filtering, Backproject the coarse FDK
// back-projection; Total is wall time of the whole build.
type Timings struct {
	Load, Decimate, Filter, Backproject, Total float64
}

// Options tunes one Reconstruct call.
type Options struct {
	// Workers bounds the goroutines of the filter and back-projection
	// stages (0 = GOMAXPROCS).
	Workers int
	// Window is the ramp apodization, matching the full-resolution job so
	// the preview previews the same filter.
	Window filter.Window
	// Filter, when non-nil, replaces the local filtering stage — the hook
	// the service uses to ride previews through the cross-job batcher. It
	// must filter the coarse projection in place. When nil, Reconstruct
	// filters locally with the cached coarse Filterer.
	Filter func(ctx context.Context, img *volume.Image) error
}

// Reconstruct builds the preview volume for the plan. read fills dst (a
// pooled full-resolution Nu×Nv image) with source projection s; Reconstruct
// calls it once per kept projection (s = i·Factor), decimates each into a
// pooled coarse image, filters the coarse set, and back-projects it on the
// coarse grid. The result is a fresh i-major coarse volume the caller owns.
func (p Plan) Reconstruct(ctx context.Context, read func(dst *volume.Image, s int) error, opt Options) (*volume.Volume, Timings, error) {
	start := time.Now()
	var tm Timings
	cg := p.Coarse
	imgs := make([]*volume.Image, 0, cg.Np)
	defer func() {
		for _, img := range imgs {
			engine.Images.Release(img)
		}
	}()

	full := engine.Images.Acquire(p.Full.Nu, p.Full.Nv)
	defer engine.Images.Release(full)
	for i := 0; i < cg.Np; i++ {
		if err := ctx.Err(); err != nil {
			return nil, tm, err
		}
		t0 := time.Now()
		if err := read(full, i*p.Factor); err != nil {
			return nil, tm, fmt.Errorf("preview: projection %d: %w", i*p.Factor, err)
		}
		t1 := time.Now()
		tm.Load += t1.Sub(t0).Seconds()
		coarse := engine.Images.Acquire(cg.Nu, cg.Nv)
		imgs = append(imgs, coarse)
		if err := DecimateInto(coarse, full, p.Factor); err != nil {
			return nil, tm, err
		}
		tm.Decimate += time.Since(t1).Seconds()
	}

	t0 := time.Now()
	if opt.Filter != nil {
		for _, img := range imgs {
			if err := opt.Filter(ctx, img); err != nil {
				return nil, tm, fmt.Errorf("preview: filter: %w", err)
			}
		}
	} else {
		flt, err := filter.Cached(cg, opt.Window)
		if err != nil {
			return nil, tm, err
		}
		if err := flt.Sweep(imgs, imgs, opt.Workers); err != nil {
			return nil, tm, err
		}
	}
	t1 := time.Now()
	tm.Filter = t1.Sub(t0).Seconds()

	vol, err := fdk.BackprojectFiltered(cg, imgs, fdk.Config{Workers: opt.Workers})
	if err != nil {
		return nil, tm, err
	}
	tm.Backproject = time.Since(t1).Seconds()
	tm.Total = time.Since(start).Seconds()
	return vol, tm, nil
}
