package preview

import (
	"context"
	"fmt"
	"math"
	"testing"

	"ifdk/internal/bench"
	"ifdk/internal/ct/fdk"
	"ifdk/internal/ct/geometry"
	"ifdk/internal/ct/phantom"
	"ifdk/internal/ct/projector"
	"ifdk/internal/engine"
	"ifdk/internal/volume"
)

func TestDecimatedGeometry(t *testing.T) {
	g := geometry.Default(64, 64, 64, 32, 32, 32)
	c := Decimated(g, 4)
	if c.Np != 16 || c.Nu != 16 || c.Nv != 16 || c.Nx != 8 || c.Ny != 8 || c.Nz != 8 {
		t.Fatalf("coarse counts = %d,%d,%d / %d,%d,%d", c.Np, c.Nu, c.Nv, c.Nx, c.Ny, c.Nz)
	}
	if c.Du != 4*g.Du || c.Dv != 4*g.Dv || c.Dx != 4*g.Dx || c.Dy != 4*g.Dy || c.Dz != 4*g.Dz {
		t.Fatalf("coarse pitches not scaled ×4: %+v", c)
	}
	if c.SAD != g.SAD || c.SDD != g.SDD {
		t.Fatalf("source-detector distances changed: %+v", c)
	}
	// The physical problem is preserved: detector extent, volume extent and
	// field of view are exactly those of the full geometry.
	if c.Du*float64(c.Nu) != g.Du*float64(g.Nu) || c.Dx*float64(c.Nx) != g.Dx*float64(g.Nx) {
		t.Fatalf("physical extents changed: %+v vs %+v", c, g)
	}
	if c.FOVRadius() != g.FOVRadius() {
		t.Fatalf("FOV radius %g != %g", c.FOVRadius(), g.FOVRadius())
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("coarse geometry invalid: %v", err)
	}
}

func TestPlanFor(t *testing.T) {
	// Everything divisible by 4 and large enough: the full factor.
	g := geometry.Default(64, 64, 64, 32, 32, 32)
	p, err := PlanFor(g, 0)
	if err != nil || p.Factor != 4 {
		t.Fatalf("PlanFor = factor %d, err %v; want 4", p.Factor, err)
	}
	// An explicit cap wins over MaxFactor.
	if p, _ = PlanFor(g, 2); p.Factor != 2 {
		t.Fatalf("capped PlanFor = factor %d, want 2", p.Factor)
	}
	// Np = 30 rules out 4, keeps 3 (30 and 48 divisible; coarse dims ≥ 8).
	g3 := geometry.Default(48, 48, 30, 48, 48, 48)
	if p, _ = PlanFor(g3, 0); p.Factor != 3 {
		t.Fatalf("PlanFor(30 projections) = factor %d, want 3", p.Factor)
	}
	// Too small to decimate without falling under minDim: the factor-1
	// fallback, with the coarse problem the full problem.
	small := geometry.Default(16, 16, 16, 12, 12, 12)
	p, err = PlanFor(small, 0)
	if err != nil || p.Factor != 1 || p.Coarse != small {
		t.Fatalf("small PlanFor = %+v, err %v; want factor-1 identity", p, err)
	}
	// Invalid geometry is the only error.
	if _, err = PlanFor(geometry.Params{}, 0); err == nil {
		t.Fatal("PlanFor accepted an invalid geometry")
	}
}

// naiveBlockMean mirrors DecimateInto's documented float32 order — rows
// accumulated first, blocks summed left to right, one multiply by 1/d² —
// so the kernel-backed path must match it bit for bit.
func naiveBlockMean(src *volume.Image, d int) *volume.Image {
	dst := volume.NewImage(src.W/d, src.H/d)
	inv := 1 / float32(d*d)
	acc := make([]float32, src.W)
	for v := 0; v < dst.H; v++ {
		clear(acc)
		for k := 0; k < d; k++ {
			row := src.Row(v*d + k)
			for u := range row {
				acc[u] += row[u]
			}
		}
		for u := 0; u < dst.W; u++ {
			s := float32(0)
			for k := 0; k < d; k++ {
				s += acc[u*d+k]
			}
			dst.Set(u, v, s*inv)
		}
	}
	return dst
}

func TestDecimateIntoMatchesNaive(t *testing.T) {
	for _, d := range []int{1, 2, 3, 4} {
		src := volume.NewImage(12*d, 8*d)
		for i := range src.Data {
			src.Data[i] = float32(math.Sin(float64(i)*0.7)) * 3.25
		}
		dst := volume.NewImage(12, 8)
		if err := DecimateInto(dst, src, d); err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		want := naiveBlockMean(src, d)
		for i := range want.Data {
			if dst.Data[i] != want.Data[i] {
				t.Fatalf("d=%d: pixel %d = %v, want %v", d, i, dst.Data[i], want.Data[i])
			}
		}
	}
	// Dimension mismatches and non-positive factors are rejected.
	if err := DecimateInto(volume.NewImage(5, 4), volume.NewImage(12, 8), 2); err == nil {
		t.Fatal("DecimateInto accepted mismatched dimensions")
	}
	if err := DecimateInto(volume.NewImage(6, 4), volume.NewImage(12, 8), 0); err == nil {
		t.Fatal("DecimateInto accepted factor 0")
	}
}

// previewFixture builds a full-resolution projection set and the plan for
// its preview.
func previewFixture(t testing.TB, g geometry.Params, maxFactor int) (Plan, []*volume.Image) {
	t.Helper()
	plan, err := PlanFor(g, maxFactor)
	if err != nil {
		t.Fatal(err)
	}
	ph := phantom.SheppLogan3D(g.FOVRadius() * 0.9)
	return plan, projector.AnalyticAll(ph, g, 0)
}

func readFrom(proj []*volume.Image) func(dst *volume.Image, s int) error {
	return func(dst *volume.Image, s int) error {
		copy(dst.Data, proj[s].Data)
		return nil
	}
}

// The preview pipeline is the plain coarse pipeline: reconstructing through
// Plan.Reconstruct must be bit-identical to decimating by hand and running
// the stock fdk.Reconstruct on the coarse problem.
func TestReconstructMatchesDirectCoarse(t *testing.T) {
	g := geometry.Default(32, 32, 32, 16, 16, 16)
	plan, proj := previewFixture(t, g, 2)
	if plan.Factor != 2 {
		t.Fatalf("factor %d, want 2", plan.Factor)
	}
	got, tm, err := plan.Reconstruct(context.Background(), readFrom(proj), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tm.Total <= 0 {
		t.Fatalf("timings not populated: %+v", tm)
	}

	coarse := make([]*volume.Image, plan.Coarse.Np)
	for i := range coarse {
		coarse[i] = volume.NewImage(plan.Coarse.Nu, plan.Coarse.Nv)
		if err := DecimateInto(coarse[i], proj[i*plan.Factor], plan.Factor); err != nil {
			t.Fatal(err)
		}
	}
	want, err := fdk.Reconstruct(plan.Coarse, coarse, fdk.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Nx != plan.Coarse.Nx || got.Nz != plan.Coarse.Nz {
		t.Fatalf("preview volume is %dx%dx%d, want coarse grid", got.Nx, got.Ny, got.Nz)
	}
	rmse, err := volume.RMSE(got, want)
	if err != nil {
		t.Fatal(err)
	}
	if rmse != 0 {
		t.Fatalf("preview diverges from direct coarse reconstruction: RMSE %g", rmse)
	}
}

// Determinism across worker counts: the preview is served, cached and
// journal-replayed as a pure function of the dataset, so parallelism must
// not change a single bit.
func TestReconstructDeterministic(t *testing.T) {
	g := geometry.Default(32, 32, 32, 16, 16, 16)
	plan, proj := previewFixture(t, g, 2)
	var ref *volume.Volume
	for _, workers := range []int{1, 2, 4} {
		vol, _, err := plan.Reconstruct(context.Background(), readFrom(proj), Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = vol
			continue
		}
		rmse, err := volume.RMSE(ref, vol)
		if err != nil {
			t.Fatal(err)
		}
		if rmse != 0 {
			t.Fatalf("workers=%d changed the preview: RMSE %g", workers, rmse)
		}
	}
}

// A cancelled context aborts between projections without leaking pooled
// buffers.
func TestReconstructCancel(t *testing.T) {
	g := geometry.Default(32, 32, 32, 16, 16, 16)
	plan, proj := previewFixture(t, g, 2)
	before := engine.InUseBytes()
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	read := func(dst *volume.Image, s int) error {
		if n++; n == 3 {
			cancel()
		}
		copy(dst.Data, proj[s].Data)
		return nil
	}
	if _, _, err := plan.Reconstruct(ctx, read, Options{}); err == nil {
		t.Fatal("cancelled Reconstruct returned no error")
	}
	if after := engine.InUseBytes(); after != before {
		t.Fatalf("pooled bytes leaked across cancel: %d -> %d", before, after)
	}
}

// DecimateInto's steady state must stay allocation-free (//ifdk:hotpath).
func TestDecimateIntoNoAllocs(t *testing.T) {
	src := volume.NewImage(64, 64)
	dst := volume.NewImage(16, 16)
	if err := DecimateInto(dst, src, 4); err != nil { // warm the pool
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(50, func() {
		if err := DecimateInto(dst, src, 4); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0 {
		t.Fatalf("DecimateInto allocates %.1f times per call in steady state", avg)
	}
}

func BenchmarkPreviewDecimate(b *testing.B) {
	src := volume.NewImage(512, 512)
	for i := range src.Data {
		src.Data[i] = float32(i % 97)
	}
	dst := volume.NewImage(128, 128)
	b.SetBytes(int64(4 * len(src.Data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := DecimateInto(dst, src, 4); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	pixPerSec := float64(len(src.Data)) * float64(b.N) / b.Elapsed().Seconds()
	bench.Record("preview_decimate", map[string]float64{
		"pixels_per_sec": pixPerSec,
		"ns_per_op":      float64(b.Elapsed().Nanoseconds()) / float64(b.N),
	})
}

func BenchmarkPreviewReconstruct(b *testing.B) {
	g := geometry.Default(64, 64, 64, 32, 32, 32)
	plan, proj := previewFixture(b, g, 0)
	read := readFrom(proj)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vol, _, err := plan.Reconstruct(context.Background(), read, Options{})
		if err != nil {
			b.Fatal(err)
		}
		_ = vol
	}
	b.StopTimer()
	sec := b.Elapsed().Seconds() / float64(b.N)
	bench.Record(fmt.Sprintf("preview_reconstruct_f%d", plan.Factor), map[string]float64{
		"seconds_per_preview": sec,
		"factor":              float64(plan.Factor),
	})
}
