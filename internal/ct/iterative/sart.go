// Package iterative implements the Simultaneous Algebraic Reconstruction
// Technique (SART, Andersen & Kak 1984) on top of the same geometry,
// interpolation and projector substrates as the FDK pipeline. The paper
// singles out iterative solvers (ART, SART, MLEM, MBIR) as the consumers of
// its back-projection algorithm — "in which the back-projection is required
// to be repeated dozens of times" (Sec. 1) — and names them the medical
// low-dose use case of Sec. 6.2; this package demonstrates that generality.
//
// SART iterates over projection angles: for each angle it forward-projects
// the current estimate, normalizes the residual by the ray length through
// the volume, back-projects the normalized residual, and applies a relaxed
// update scaled by the per-voxel backprojection weight.
package iterative

import (
	"fmt"
	"math"

	"ifdk/internal/ct/geometry"
	"ifdk/internal/ct/interp"
	"ifdk/internal/ct/projector"
	"ifdk/internal/volume"
)

// Config controls a SART reconstruction.
type Config struct {
	Iterations int     // full sweeps over all angles (default 3)
	Lambda     float64 // relaxation factor in (0, 2) (default 0.5)
	Step       float64 // ray-marching step (default half min voxel pitch)
	Workers    int     // goroutines for projection/backprojection (default 1)
	// Initial is the starting estimate (nil = zeros). It is not modified.
	Initial *volume.Volume
}

func (c Config) withDefaults(g geometry.Params) Config {
	if c.Iterations <= 0 {
		c.Iterations = 3
	}
	if c.Lambda <= 0 {
		c.Lambda = 0.5
	}
	if c.Step <= 0 {
		c.Step = projector.DefaultStep(g)
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Lambda >= 2 {
		return fmt.Errorf("iterative: relaxation λ = %g must be < 2 for convergence", c.Lambda)
	}
	return nil
}

// SART reconstructs a volume from the measured projections. The returned
// volume uses the i-major layout.
func SART(g geometry.Params, meas []*volume.Image, cfg Config) (*volume.Volume, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if len(meas) != g.Np {
		return nil, fmt.Errorf("iterative: %d projections for Np = %d", len(meas), g.Np)
	}
	cfg = cfg.withDefaults(g)
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	var vol *volume.Volume
	if cfg.Initial != nil {
		if cfg.Initial.Nx != g.Nx || cfg.Initial.Ny != g.Ny || cfg.Initial.Nz != g.Nz {
			return nil, fmt.Errorf("iterative: initial volume does not match geometry")
		}
		vol = cfg.Initial.Reshape(volume.IMajor)
	} else {
		vol = volume.New(g.Nx, g.Ny, g.Nz, volume.IMajor)
	}

	// Ray-length normalization: forward projection of a ones volume gives
	// the intersection length of each ray with the volume (the SART row
	// sums). By rotational symmetry of the orbit this is angle-independent
	// up to discretization, but we compute it per angle for correctness.
	ones := volume.New(g.Nx, g.Ny, g.Nz, volume.IMajor)
	ones.Fill(1)
	rowSums := make([]*volume.Image, g.Np)
	for s := 0; s < g.Np; s++ {
		rowSums[s] = projector.Raycast(ones, g, s, cfg.Step)
	}
	// Column sums: the per-voxel accumulated bilinear weight of one
	// backprojection of a ones projection (angle-dependent only weakly;
	// computed once for angle 0 and reused, which SART tolerates).
	onesImg := volume.NewImage(g.Nu, g.Nv)
	for n := range onesImg.Data {
		onesImg.Data[n] = 1
	}
	colSum := volume.New(g.Nx, g.Ny, g.Nz, volume.IMajor)
	backprojectUnweighted(g, 0, onesImg, colSum)

	mats := geometry.ProjectionMatrices(g)
	resid := volume.NewImage(g.Nu, g.Nv)
	upd := volume.New(g.Nx, g.Ny, g.Nz, volume.IMajor)
	for it := 0; it < cfg.Iterations; it++ {
		for s := 0; s < g.Np; s++ {
			fwd := projector.Raycast(vol, g, s, cfg.Step)
			for n := range resid.Data {
				l := rowSums[s].Data[n]
				if l <= 1e-6 {
					resid.Data[n] = 0
					continue
				}
				resid.Data[n] = (meas[s].Data[n] - fwd.Data[n]) / l
			}
			for n := range upd.Data {
				upd.Data[n] = 0
			}
			backprojectUnweightedMat(mats[s], g, resid, upd)
			lambda := float32(cfg.Lambda)
			for n := range vol.Data {
				w := colSum.Data[n]
				if w <= 1e-6 {
					continue
				}
				vol.Data[n] += lambda * upd.Data[n] / w
			}
		}
	}
	return vol, nil
}

// backprojectUnweighted accumulates the plain adjoint (no FDK distance
// weight) of one projection into the volume.
func backprojectUnweighted(g geometry.Params, s int, img *volume.Image, vol *volume.Volume) {
	backprojectUnweightedMat(geometry.ProjectionMatrix(g, g.Beta(s)), g, img, vol)
}

func backprojectUnweightedMat(m geometry.ProjMat, g geometry.Params, img *volume.Image, vol *volume.Volume) {
	rows := m.Rows32()
	for k := 0; k < g.Nz; k++ {
		fk := float32(k)
		for j := 0; j < g.Ny; j++ {
			fj := float32(j)
			for i := 0; i < g.Nx; i++ {
				fi := float32(i)
				x := rows[0][0]*fi + rows[0][1]*fj + rows[0][2]*fk + rows[0][3]
				y := rows[1][0]*fi + rows[1][1]*fj + rows[1][2]*fk + rows[1][3]
				z := rows[2][0]*fi + rows[2][1]*fj + rows[2][2]*fk + rows[2][3]
				f := 1 / z
				vol.Add(i, j, k, interp.Bilinear(img.Data, img.W, img.H, x*f, y*f))
			}
		}
	}
}

// Residual returns the projection-domain RMSE of an estimate: how well the
// volume explains the measurements (a standard SART convergence monitor).
func Residual(g geometry.Params, vol *volume.Volume, meas []*volume.Image, step float64) (float64, error) {
	if len(meas) != g.Np {
		return 0, fmt.Errorf("iterative: %d projections for Np = %d", len(meas), g.Np)
	}
	if step <= 0 {
		step = projector.DefaultStep(g)
	}
	var sum float64
	var n int
	for s := 0; s < g.Np; s++ {
		fwd := projector.Raycast(vol, g, s, step)
		for m := range fwd.Data {
			d := float64(fwd.Data[m] - meas[s].Data[m])
			sum += d * d
			n++
		}
	}
	return math.Sqrt(sum / float64(n)), nil
}
