package iterative

import (
	"testing"

	"ifdk/internal/ct/geometry"
	"ifdk/internal/ct/phantom"
	"ifdk/internal/ct/projector"
	"ifdk/internal/volume"
)

func sartSetup() (geometry.Params, phantom.Phantom, []*volume.Image) {
	g := geometry.Default(32, 32, 12, 16, 16, 16)
	ph := phantom.UniformSphere(g.FOVRadius()*0.5, 1)
	return g, ph, projector.AnalyticAll(ph, g, 0)
}

func TestSARTReducesResidual(t *testing.T) {
	g, _, meas := sartSetup()
	zero := volume.New(g.Nx, g.Ny, g.Nz, volume.IMajor)
	r0, err := Residual(g, zero, meas, 0)
	if err != nil {
		t.Fatal(err)
	}
	one, err := SART(g, meas, Config{Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Residual(g, one, meas, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r1 >= r0 {
		t.Fatalf("one SART sweep did not reduce the residual: %g -> %g", r0, r1)
	}
	three, err := SART(g, meas, Config{Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	r3, err := Residual(g, three, meas, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r3 >= r1 {
		t.Fatalf("more sweeps did not help: %g -> %g", r1, r3)
	}
}

func TestSARTApproachesPhantom(t *testing.T) {
	g, ph, meas := sartSetup()
	truth := ph.Voxelize(g)
	rec, err := SART(g, meas, Config{Iterations: 4, Lambda: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	zero := volume.New(g.Nx, g.Ny, g.Nz, volume.IMajor)
	rmseZero, _ := volume.RMSE(truth, zero)
	rmseRec, _ := volume.RMSE(truth, rec)
	if rmseRec >= 0.6*rmseZero {
		t.Errorf("SART volume RMSE %g did not improve enough over empty %g", rmseRec, rmseZero)
	}
	// The centre of the sphere should approach its density.
	c := float64(rec.At(8, 8, 8))
	if c < 0.5 || c > 1.5 {
		t.Errorf("centre voxel = %g, want ≈ 1", c)
	}
}

func TestSARTWarmStart(t *testing.T) {
	g, _, meas := sartSetup()
	cold, err := SART(g, meas, Config{Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := SART(g, meas, Config{Iterations: 1, Initial: cold})
	if err != nil {
		t.Fatal(err)
	}
	rCold, _ := Residual(g, cold, meas, 0)
	rWarm, _ := Residual(g, warm, meas, 0)
	if rWarm >= rCold {
		t.Errorf("warm start did not improve: %g -> %g", rCold, rWarm)
	}
	// Initial must not be modified.
	again, _ := Residual(g, cold, meas, 0)
	if again != rCold {
		t.Error("SART modified the initial volume")
	}
}

func TestSARTValidation(t *testing.T) {
	g, _, meas := sartSetup()
	if _, err := SART(g, meas[:3], Config{}); err == nil {
		t.Error("short projection list accepted")
	}
	if _, err := SART(g, meas, Config{Lambda: 2.5}); err == nil {
		t.Error("λ ≥ 2 accepted")
	}
	if _, err := SART(g, meas, Config{Initial: volume.New(4, 4, 4, volume.IMajor)}); err == nil {
		t.Error("mismatched initial volume accepted")
	}
	bad := g
	bad.Np = 0
	if _, err := SART(bad, nil, Config{}); err == nil {
		t.Error("invalid geometry accepted")
	}
	if _, err := Residual(g, volume.New(g.Nx, g.Ny, g.Nz, volume.IMajor), meas[:2], 0); err == nil {
		t.Error("Residual with short list accepted")
	}
}
