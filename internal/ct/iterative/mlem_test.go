package iterative

import (
	"testing"

	"ifdk/internal/volume"
)

func TestMLEMReducesResidual(t *testing.T) {
	g, _, meas := sartSetup()
	one, err := MLEM(g, meas, MLEMConfig{Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	five, err := MLEM(g, meas, MLEMConfig{Iterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Residual(g, one, meas, 0)
	if err != nil {
		t.Fatal(err)
	}
	r5, err := Residual(g, five, meas, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r5 >= r1 {
		t.Errorf("MLEM residual did not decrease: %g -> %g", r1, r5)
	}
}

func TestMLEMStaysNonNegative(t *testing.T) {
	g, _, meas := sartSetup()
	vol, err := MLEM(g, meas, MLEMConfig{Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	for n, v := range vol.Data {
		if v < 0 {
			t.Fatalf("voxel %d went negative: %g", n, v)
		}
	}
}

func TestMLEMApproachesPhantom(t *testing.T) {
	g, ph, meas := sartSetup()
	truth := ph.Voxelize(g)
	rec, err := MLEM(g, meas, MLEMConfig{Iterations: 6})
	if err != nil {
		t.Fatal(err)
	}
	// Compare against the flat unit start: reconstruction must be closer
	// to the truth than the initializer.
	start := volume.New(g.Nx, g.Ny, g.Nz, volume.IMajor)
	start.Fill(1)
	rmseStart, _ := volume.RMSE(truth, start)
	rmseRec, _ := volume.RMSE(truth, rec)
	if rmseRec >= rmseStart {
		t.Errorf("MLEM did not improve over the flat start: %g vs %g", rmseRec, rmseStart)
	}
}

func TestMLEMValidation(t *testing.T) {
	g, _, meas := sartSetup()
	if _, err := MLEM(g, meas[:2], MLEMConfig{}); err == nil {
		t.Error("short projection list accepted")
	}
	neg := meas[0].Clone()
	neg.Data[0] = -1
	bad := append([]*volume.Image{neg}, meas[1:]...)
	if _, err := MLEM(g, bad, MLEMConfig{}); err == nil {
		t.Error("negative measurement accepted")
	}
}
