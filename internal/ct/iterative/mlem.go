package iterative

import (
	"fmt"

	"ifdk/internal/ct/geometry"
	"ifdk/internal/ct/projector"
	"ifdk/internal/volume"
)

// MLEMConfig controls an MLEM reconstruction.
type MLEMConfig struct {
	Iterations int     // multiplicative update sweeps (default 5)
	Step       float64 // ray-marching step (default half min voxel pitch)
	// Epsilon guards divisions against empty forward projections.
	Epsilon float64
}

func (c MLEMConfig) withDefaults(g geometry.Params) MLEMConfig {
	if c.Iterations <= 0 {
		c.Iterations = 5
	}
	if c.Step <= 0 {
		c.Step = projector.DefaultStep(g)
	}
	if c.Epsilon <= 0 {
		c.Epsilon = 1e-6
	}
	return c
}

// MLEM reconstructs a non-negative volume with the maximum-likelihood
// expectation-maximization iteration of Shepp & Vardi (1982), the second
// iterative solver the paper names as a consumer of fast back-projection
// (Sec. 1). The update is multiplicative:
//
//	v ← v · BP(m / (A v)) / BP(1)
//
// where A is the forward projector and BP the plain adjoint. Measurements
// must be non-negative; the iterate stays non-negative by construction.
func MLEM(g geometry.Params, meas []*volume.Image, cfg MLEMConfig) (*volume.Volume, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if len(meas) != g.Np {
		return nil, fmt.Errorf("iterative: %d projections for Np = %d", len(meas), g.Np)
	}
	for s, m := range meas {
		for _, v := range m.Data {
			if v < 0 {
				return nil, fmt.Errorf("iterative: MLEM requires non-negative measurements (projection %d)", s)
			}
		}
	}
	cfg = cfg.withDefaults(g)

	mats := geometry.ProjectionMatrices(g)
	// Sensitivity image BP(1): the denominator, computed once.
	onesImg := volume.NewImage(g.Nu, g.Nv)
	for n := range onesImg.Data {
		onesImg.Data[n] = 1
	}
	sens := volume.New(g.Nx, g.Ny, g.Nz, volume.IMajor)
	for s := 0; s < g.Np; s++ {
		backprojectUnweightedMat(mats[s], g, onesImg, sens)
	}

	// Uniform positive start.
	vol := volume.New(g.Nx, g.Ny, g.Nz, volume.IMajor)
	vol.Fill(1)
	eps := float32(cfg.Epsilon)
	ratio := volume.NewImage(g.Nu, g.Nv)
	num := volume.New(g.Nx, g.Ny, g.Nz, volume.IMajor)
	for it := 0; it < cfg.Iterations; it++ {
		for n := range num.Data {
			num.Data[n] = 0
		}
		for s := 0; s < g.Np; s++ {
			fwd := projector.Raycast(vol, g, s, cfg.Step)
			for n := range ratio.Data {
				d := fwd.Data[n]
				if d < eps {
					d = eps
				}
				ratio.Data[n] = meas[s].Data[n] / d
			}
			backprojectUnweightedMat(mats[s], g, ratio, num)
		}
		for n := range vol.Data {
			if sens.Data[n] <= eps {
				continue
			}
			vol.Data[n] *= num.Data[n] / sens.Data[n]
		}
	}
	return vol, nil
}
