package fdk

import (
	"math"
	"testing"

	"ifdk/internal/ct/filter"
	"ifdk/internal/ct/geometry"
	"ifdk/internal/ct/phantom"
	"ifdk/internal/ct/projector"
	"ifdk/internal/volume"
)

// reconstructionCase runs the full pipeline on an analytic phantom.
func reconstructionCase(t *testing.T, ph phantom.Phantom, g geometry.Params, cfg Config) *volume.Volume {
	t.Helper()
	proj := projector.AnalyticAll(ph, g, 0)
	vol, err := Reconstruct(g, proj, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return vol
}

// The absolute scale of the FDK chain: a uniform sphere must reconstruct to
// its density at the centre. This pins the θ·d²·τ/2 constant folded into
// the filter (a wrong constant shows up here as a multiplicative bias).
func TestSphereReconstructsDensity(t *testing.T) {
	g := geometry.Default(64, 64, 64, 32, 32, 32)
	const rho = 1.0
	ph := phantom.UniformSphere(g.FOVRadius()*0.55, rho)
	vol := reconstructionCase(t, ph, g, Config{})
	centre := float64(vol.At(16, 16, 16))
	if math.Abs(centre-rho) > 0.12*rho {
		t.Errorf("centre voxel = %g, want ≈ %g (±12%%)", centre, rho)
	}
	// Well outside the sphere the value should be near zero.
	edge := float64(vol.At(1, 1, 16))
	if math.Abs(edge) > 0.12*rho {
		t.Errorf("outside voxel = %g, want ≈ 0", edge)
	}
}

// E11: the standard and proposed pipelines agree within the paper's RMSE
// bound on a real reconstruction.
func TestPipelinesAgree(t *testing.T) {
	g := geometry.Default(48, 48, 36, 24, 24, 24)
	ph := phantom.SheppLogan3D(g.FOVRadius() * 0.9)
	proj := projector.AnalyticAll(ph, g, 0)
	std, err := Reconstruct(g, proj, Config{Algorithm: AlgStandard})
	if err != nil {
		t.Fatal(err)
	}
	prop, err := Reconstruct(g, proj, Config{Algorithm: AlgProposed})
	if err != nil {
		t.Fatal(err)
	}
	r, err := volume.RMSE(std, prop)
	if err != nil {
		t.Fatal(err)
	}
	s := std.Summarize()
	scale := math.Max(math.Abs(float64(s.Min)), math.Abs(float64(s.Max)))
	if r/scale > 1e-5 {
		t.Errorf("relative RMSE standard vs proposed = %g, want < 1e-5", r/scale)
	}
}

// The reconstruction should resemble the voxelized ground truth: high
// correlation on the central slice.
func TestSheppLoganFidelity(t *testing.T) {
	g := geometry.Default(64, 64, 72, 32, 32, 32)
	ph := phantom.SheppLogan3D(g.FOVRadius() * 0.9)
	vol := reconstructionCase(t, ph, g, Config{})
	truth := ph.Voxelize(g)
	rec := vol.SliceZ(16)
	ref := truth.SliceZ(16)
	if c := correlation(rec.Data, ref.Data); c < 0.85 {
		t.Errorf("central-slice correlation = %g, want > 0.85", c)
	}
}

func correlation(a, b []float32) float64 {
	var ma, mb float64
	for i := range a {
		ma += float64(a[i])
		mb += float64(b[i])
	}
	n := float64(len(a))
	ma /= n
	mb /= n
	var cov, va, vb float64
	for i := range a {
		da := float64(a[i]) - ma
		db := float64(b[i]) - mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

func TestWindowChangesResult(t *testing.T) {
	g := geometry.Default(48, 48, 24, 16, 16, 16)
	ph := phantom.UniformSphere(g.FOVRadius()*0.5, 1)
	proj := projector.AnalyticAll(ph, g, 0)
	ramLak, err := Reconstruct(g, proj, Config{Window: filter.RamLak})
	if err != nil {
		t.Fatal(err)
	}
	hann, err := Reconstruct(g, proj, Config{Window: filter.Hann})
	if err != nil {
		t.Fatal(err)
	}
	r, _ := volume.RMSE(ramLak, hann)
	if r == 0 {
		t.Error("window had no effect on reconstruction")
	}
}

func TestReconstructValidatesInput(t *testing.T) {
	g := geometry.Default(32, 32, 8, 8, 8, 8)
	if _, err := Reconstruct(g, nil, Config{}); err == nil {
		t.Error("Reconstruct with no projections should fail")
	}
	if _, err := BackprojectFiltered(g, make([]*volume.Image, g.Np), Config{Algorithm: Algorithm(99)}); err == nil {
		t.Error("unknown algorithm should fail")
	}
}

func TestAlgorithmString(t *testing.T) {
	if AlgProposed.String() != "proposed" || AlgStandard.String() != "standard" {
		t.Error("Algorithm.String mismatch")
	}
	if Algorithm(9).String() == "" {
		t.Error("unknown algorithm should format")
	}
}

func TestOutputLayoutIsIMajor(t *testing.T) {
	g := geometry.Default(32, 32, 8, 8, 8, 8)
	ph := phantom.UniformSphere(g.FOVRadius()*0.5, 1)
	proj := projector.AnalyticAll(ph, g, 0)
	for _, alg := range []Algorithm{AlgStandard, AlgProposed} {
		vol, err := Reconstruct(g, proj, Config{Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		if vol.Layout != volume.IMajor {
			t.Errorf("%v: output layout = %v", alg, vol.Layout)
		}
	}
}
