// Package fdk composes the filtering stage and the back-projection stage
// into the complete single-node FDK reconstruction (Sec. 2.2.2): the
// reference pipeline that the distributed iFDK framework (internal/core)
// must reproduce, and the workhorse of the examples.
package fdk

import (
	"fmt"

	"ifdk/internal/ct/backproject"
	"ifdk/internal/ct/filter"
	"ifdk/internal/ct/geometry"
	"ifdk/internal/engine"
	"ifdk/internal/volume"
)

// Algorithm selects the back-projection implementation.
type Algorithm int

const (
	// AlgProposed is the paper's Alg. 4 (default).
	AlgProposed Algorithm = iota
	// AlgStandard is the RTK-style Alg. 2 baseline.
	AlgStandard
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case AlgProposed:
		return "proposed"
	case AlgStandard:
		return "standard"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Config controls a reconstruction.
type Config struct {
	Window    filter.Window // ramp apodization (default Ram-Lak)
	Algorithm Algorithm     // back-projection algorithm (default proposed)
	Workers   int           // goroutines for both stages (0 = GOMAXPROCS)
	Batch     int           // projections per back-projection pass (0 = 32)
}

// Reconstruct filters the projections and back-projects them into a new
// volume. The result always uses the i-major layout (the storage layout),
// reshaped from k-major when the proposed algorithm ran (Alg. 4 line 22).
// The filtered projections live in pooled images that return to the engine
// after back-projection, so repeated reconstructions (the service's
// verification path) reuse one working set.
func Reconstruct(g geometry.Params, proj []*volume.Image, cfg Config) (*volume.Volume, error) {
	if len(proj) != g.Np {
		return nil, fmt.Errorf("fdk: %d projections for Np = %d", len(proj), g.Np)
	}
	flt, err := filter.Cached(g, cfg.Window)
	if err != nil {
		return nil, err
	}
	q, err := flt.ApplyBatch(proj, cfg.Workers)
	if err != nil {
		return nil, err
	}
	vol, err := BackprojectFiltered(g, q, cfg)
	for _, img := range q {
		engine.Images.Release(img)
	}
	return vol, err
}

// BackprojectFiltered runs only the back-projection stage on projections
// that are already filtered. The distributed pipeline uses this entry point
// because filtering happened on another rank's CPU.
func BackprojectFiltered(g geometry.Params, q []*volume.Image, cfg Config) (*volume.Volume, error) {
	task := backproject.Task{Mats: geometry.ProjectionMatrices(g), Proj: q}
	opt := backproject.Options{Workers: cfg.Workers, Batch: cfg.Batch}
	switch cfg.Algorithm {
	case AlgStandard:
		vol := volume.New(g.Nx, g.Ny, g.Nz, volume.IMajor)
		if err := backproject.Standard(task, vol, opt); err != nil {
			return nil, err
		}
		return vol, nil
	case AlgProposed:
		// The k-major volume is an intermediate (the result is reshaped to
		// the storage layout), so it comes from and returns to the pool.
		vol := engine.Volumes.Acquire(g.Nx, g.Ny, g.Nz, volume.KMajor)
		if err := backproject.Proposed(task, vol, opt); err != nil {
			engine.Volumes.Release(vol)
			return nil, err
		}
		out := vol.Reshape(volume.IMajor)
		engine.Volumes.Release(vol)
		return out, nil
	default:
		return nil, fmt.Errorf("fdk: unknown algorithm %v", cfg.Algorithm)
	}
}
