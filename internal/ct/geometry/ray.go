package geometry

import "math"

// Vec3 is a 3-D vector in world coordinates.
type Vec3 struct{ X, Y, Z float64 }

// Add returns a+b.
func (a Vec3) Add(b Vec3) Vec3 { return Vec3{a.X + b.X, a.Y + b.Y, a.Z + b.Z} }

// Sub returns a-b.
func (a Vec3) Sub(b Vec3) Vec3 { return Vec3{a.X - b.X, a.Y - b.Y, a.Z - b.Z} }

// Scale returns s·a.
func (a Vec3) Scale(s float64) Vec3 { return Vec3{s * a.X, s * a.Y, s * a.Z} }

// Dot returns a·b.
func (a Vec3) Dot(b Vec3) float64 { return a.X*b.X + a.Y*b.Y + a.Z*b.Z }

// Norm returns |a|.
func (a Vec3) Norm() float64 { return math.Sqrt(a.Dot(a)) }

// Normalize returns a/|a| (or the zero vector when |a| = 0).
func (a Vec3) Normalize() Vec3 {
	n := a.Norm()
	if n == 0 {
		return a
	}
	return a.Scale(1 / n)
}

// SourcePosition returns the X-ray source location in world coordinates at
// gantry angle β. It is the preimage of the camera origin:
// S(β) = Rz(-β) · (0, -d, 0)ᵀ = (-d·sin β, -d·cos β, 0).
func SourcePosition(p Params, beta float64) Vec3 {
	sin, cos := math.Sincos(beta)
	return Vec3{-p.SAD * sin, -p.SAD * cos, 0}
}

// Ray is a parametric half-line Origin + t·Dir with |Dir| = 1.
type Ray struct {
	Origin Vec3
	Dir    Vec3
}

// DetectorRay returns the ray from the source through the centre of detector
// pixel (u, v) at gantry angle β, in world coordinates. It inverts the M1
// and Mrot transforms: in the camera frame the ray direction is
// ((u-cu)·Du/D, (v-cv)·Dv/D, 1); the axis permutation of Mrot maps camera
// (x, y, z) to rotated-world (x, z, -y), which Rz(-β) returns to the world.
func DetectorRay(p Params, beta, u, v float64) Ray {
	dgx := (u - p.DetCenterU()) * p.Du / p.SDD
	dgy := (v - p.DetCenterV()) * p.Dv / p.SDD
	// Camera → rotated world: x_r = g.x, y_r = g.z, z_r = -g.y.
	dr := Vec3{dgx, 1, -dgy}
	sin, cos := math.Sincos(beta)
	// World = Rz(-β) · rotated.
	dw := Vec3{
		cos*dr.X + sin*dr.Y,
		-sin*dr.X + cos*dr.Y,
		dr.Z,
	}
	return Ray{Origin: SourcePosition(p, beta), Dir: dw.Normalize()}
}
