package geometry

// ProjMat is the 3×4 projection matrix P_i of Eq. 2 in row-major order:
// the first three rows of M1 · Mrot(β) · M0. Applying it to a homogeneous
// voxel index [i, j, k, 1]ᵀ yields [x, y, z]ᵀ; the detector coordinates are
// u = x/z, v = y/z and z is the source-to-voxel depth used by the FDK
// distance weight (Alg. 2 lines 6–9).
type ProjMat [12]float64

// ProjectionMatrix builds P for gantry angle β.
func ProjectionMatrix(p Params, beta float64) ProjMat {
	m := M1(p).Mul(Mrot(p, beta)).Mul(M0(p))
	var out ProjMat
	copy(out[:], m[:12])
	return out
}

// ProjectionMatrices builds the Np matrices P_0..P_{Np-1} at the uniform
// angles β_s = s·θ.
func ProjectionMatrices(p Params) []ProjMat {
	out := make([]ProjMat, p.Np)
	for s := range out {
		out[s] = ProjectionMatrix(p, p.Beta(s))
	}
	return out
}

// Apply computes [x, y, z]ᵀ = P · [i, j, k, 1]ᵀ (the three inner products of
// Alg. 2 line 6).
func (P ProjMat) Apply(i, j, k float64) (x, y, z float64) {
	x = P[0]*i + P[1]*j + P[2]*k + P[3]
	y = P[4]*i + P[5]*j + P[6]*k + P[7]
	z = P[8]*i + P[9]*j + P[10]*k + P[11]
	return
}

// Project returns the detector coordinates (u, v) of voxel (i, j, k) and
// the depth z (Eq. 1).
func (P ProjMat) Project(i, j, k float64) (u, v, z float64) {
	x, y, z := P.Apply(i, j, k)
	f := 1 / z
	return x * f, y * f, z
}

// Row returns row r (r ∈ {0, 1, 2}) as a 4-vector; the proposed algorithm
// consumes the rows separately (Alg. 4 lines 7 and 12).
func (P ProjMat) Row(r int) [4]float64 {
	return [4]float64{P[4*r], P[4*r+1], P[4*r+2], P[4*r+3]}
}

// Rows32 narrows the matrix to float32 rows in the layout used by the GPU
// kernels' constant memory (Listing 1: `__constant float4 ProjMat[32][3]`).
func (P ProjMat) Rows32() [3][4]float32 {
	var out [3][4]float32
	for r := 0; r < 3; r++ {
		for c := 0; c < 4; c++ {
			out[r][c] = float32(P[4*r+c])
		}
	}
	return out
}
