package geometry

import "math"

// Mat4 is a dense 4×4 matrix in row-major order, used to compose the
// homogeneous transforms M0, Mrot and M1 of Eq. 2.
type Mat4 [16]float64

// At returns element (r, c).
func (m Mat4) At(r, c int) float64 { return m[4*r+c] }

// Mul returns m·n.
func (m Mat4) Mul(n Mat4) Mat4 {
	var out Mat4
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			var sum float64
			for k := 0; k < 4; k++ {
				sum += m[4*r+k] * n[4*k+c]
			}
			out[4*r+c] = sum
		}
	}
	return out
}

// MulVec applies m to the homogeneous column vector v.
func (m Mat4) MulVec(v [4]float64) [4]float64 {
	var out [4]float64
	for r := 0; r < 4; r++ {
		out[r] = m[4*r]*v[0] + m[4*r+1]*v[1] + m[4*r+2]*v[2] + m[4*r+3]*v[3]
	}
	return out
}

// Identity returns the 4×4 identity matrix.
func Identity() Mat4 {
	return Mat4{
		1, 0, 0, 0,
		0, 1, 0, 0,
		0, 0, 1, 0,
		0, 0, 0, 1,
	}
}

// M0 builds the volume→world transform of Eq. 2: voxel indices are centred
// ((Nx-1)/2, ...), the j and k axes flipped, then scaled by the voxel pitch:
//
//	M0 = diag(Dx, Dy, Dz, 1) · [[1,0,0,-(Nx-1)/2], [0,-1,0,(Ny-1)/2],
//	                            [0,0,-1,(Nz-1)/2], [0,0,0,1]].
func M0(p Params) Mat4 {
	scale := Mat4{
		p.Dx, 0, 0, 0,
		0, p.Dy, 0, 0,
		0, 0, p.Dz, 0,
		0, 0, 0, 1,
	}
	center := Mat4{
		1, 0, 0, -float64(p.Nx-1) / 2,
		0, -1, 0, float64(p.Ny-1) / 2,
		0, 0, -1, float64(p.Nz-1) / 2,
		0, 0, 0, 1,
	}
	return scale.Mul(center)
}

// Mrot builds the gantry transform of Eq. 2 for rotation angle β: a rotation
// by β around the world Z axis followed by the axis permutation that points
// the camera's third coordinate at the detector and offsets it by the
// source-axis distance d:
//
//	Mrot = [[1,0,0,0], [0,0,-1,0], [0,1,0,d], [0,0,0,1]] · Rz(β).
func Mrot(p Params, beta float64) Mat4 {
	sin, cos := math.Sincos(beta)
	rot := Mat4{
		cos, -sin, 0, 0,
		sin, cos, 0, 0,
		0, 0, 1, 0,
		0, 0, 0, 1,
	}
	axis := Mat4{
		1, 0, 0, 0,
		0, 0, -1, 0,
		0, 1, 0, p.SAD,
		0, 0, 0, 1,
	}
	return axis.Mul(rot)
}

// M1 builds the pinhole projection of Eq. 2 mapping camera coordinates to
// homogeneous detector pixels:
//
//	M1 = diag(1/Du, 1/Dv, 1, 1) · [[D,0,(Nu-1)·Du/2,0], [0,D,(Nv-1)·Dv/2,0],
//	                               [0,0,1,0], [0,0,0,1]].
func M1(p Params) Mat4 {
	pitch := Mat4{
		1 / p.Du, 0, 0, 0,
		0, 1 / p.Dv, 0, 0,
		0, 0, 1, 0,
		0, 0, 0, 1,
	}
	proj := Mat4{
		p.SDD, 0, float64(p.Nu-1) * p.Du / 2, 0,
		0, p.SDD, float64(p.Nv-1) * p.Dv / 2, 0,
		0, 0, 1, 0,
		0, 0, 0, 1,
	}
	return pitch.Mul(proj)
}
