package geometry

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randParams produces a random but valid geometry for property testing.
func randParams(seed int64) Params {
	rng := rand.New(rand.NewSource(seed))
	p := Default(
		32+rng.Intn(96),  // Nu
		32+rng.Intn(96),  // Nv
		30+rng.Intn(300), // Np
		8+rng.Intn(56),   // Nx
		8+rng.Intn(56),   // Ny
		8+rng.Intn(56),   // Nz
	)
	p.SAD = 500 + rng.Float64()*1500
	p.SDD = p.SAD * (1.1 + rng.Float64())
	p.Du = 0.5 + rng.Float64()
	p.Dv = 0.5 + rng.Float64()
	p.Dx = 0.2 + rng.Float64()
	p.Dy = 0.2 + rng.Float64()
	p.Dz = 0.2 + rng.Float64()
	return p
}

// Theorem 1 (proven in [77], restated Sec. 3.2.1): voxels symmetric about
// the XY mid-plane project to detector points symmetric about the detector's
// horizontal centre line: u_A = u_B and v_A + v_B = Nv - 1.
func TestTheorem1Symmetry(t *testing.T) {
	f := func(seed int64, angleFrac, fi, fj float64, kIdx uint8) bool {
		p := randParams(seed)
		beta := math.Mod(math.Abs(angleFrac), 1) * 2 * math.Pi
		P := ProjectionMatrix(p, beta)
		i := math.Mod(math.Abs(fi), 1) * float64(p.Nx-1)
		j := math.Mod(math.Abs(fj), 1) * float64(p.Ny-1)
		k := float64(int(kIdx) % p.Nz)
		kSym := float64(p.Nz-1) - k
		uA, vA, _ := P.Project(i, j, k)
		uB, vB, _ := P.Project(i, j, kSym)
		tolU := 1e-6 * (1 + math.Abs(uA))
		return math.Abs(uA-uB) < tolU &&
			math.Abs(vA+vB-float64(p.Nv-1)) < 1e-6*(1+math.Abs(vA))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Theorem 2: along a vertical voxel line (fixed i, j), the projected u is
// constant — the projection of the line is parallel to the detector V axis.
func TestTheorem2ConstantU(t *testing.T) {
	f := func(seed int64, angleFrac, fi, fj float64) bool {
		p := randParams(seed)
		beta := math.Mod(math.Abs(angleFrac), 1) * 2 * math.Pi
		P := ProjectionMatrix(p, beta)
		i := math.Mod(math.Abs(fi), 1) * float64(p.Nx-1)
		j := math.Mod(math.Abs(fj), 1) * float64(p.Ny-1)
		u0, _, _ := P.Project(i, j, 0)
		for k := 1; k < p.Nz; k++ {
			u, _, _ := P.Project(i, j, float64(k))
			if math.Abs(u-u0) > 1e-6*(1+math.Abs(u0)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Theorem 3 (proven in the paper): the depth z is independent of k and
// equals Eq. 3: z = d + sin(β)·(i-(Nx-1)/2)·Dx - cos(β)·(j-(Ny-1)/2)·Dy.
func TestTheorem3ConstantZ(t *testing.T) {
	f := func(seed int64, angleFrac, fi, fj float64) bool {
		p := randParams(seed)
		beta := math.Mod(math.Abs(angleFrac), 1) * 2 * math.Pi
		P := ProjectionMatrix(p, beta)
		i := math.Mod(math.Abs(fi), 1) * float64(p.Nx-1)
		j := math.Mod(math.Abs(fj), 1) * float64(p.Ny-1)
		sin, cos := math.Sincos(beta)
		want := p.SAD + sin*(i-float64(p.Nx-1)/2)*p.Dx - cos*(j-float64(p.Ny-1)/2)*p.Dy
		for k := 0; k < p.Nz; k += max(1, p.Nz/7) {
			_, _, z := P.Project(i, j, float64(k))
			if math.Abs(z-want) > 1e-6*(1+math.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// The 1/6 cost claim rests on Theorems 2+3: per (i, j) column only one of
// the three inner products (the y row) varies with k. Verify the matrix
// rows directly: P[2] (z row) and P[0] (x row) have zero k coefficient...
// they do not in general — rather u and z are constant because the k
// dependence of x and z rows cancels. This test checks that the derived
// quantities, not the raw rows, are k-invariant, and that the y row alone
// reproduces v via the shared 1/z.
func TestSharedDepthReconstructsV(t *testing.T) {
	p := Default(128, 128, 180, 48, 48, 48)
	P := ProjectionMatrix(p, 2.1)
	i, j := 13.0, 29.0
	// Compute u and f = 1/z once at k = 0 (Alg. 4 lines 6–9).
	x0, _, z0 := P.Apply(i, j, 0)
	f := 1 / z0
	u := x0 * f
	row1 := P.Row(1)
	for k := 0; k < p.Nz; k++ {
		y := row1[0]*i + row1[1]*j + row1[2]*float64(k) + row1[3]
		v := y * f
		wantU, wantV, _ := P.Project(i, j, float64(k))
		if math.Abs(u-wantU) > 1e-9 || math.Abs(v-wantV) > 1e-9 {
			t.Fatalf("k=%d: shared-depth (u,v)=(%g,%g), want (%g,%g)", k, u, v, wantU, wantV)
		}
	}
}

func TestSourcePositionOrbit(t *testing.T) {
	p := Default(64, 64, 90, 32, 32, 32)
	for _, beta := range []float64{0, 1, 2, 4, 6} {
		s := SourcePosition(p, beta)
		if math.Abs(s.Norm()-p.SAD) > 1e-9 {
			t.Errorf("β=%g: |S| = %g, want %g", beta, s.Norm(), p.SAD)
		}
		if s.Z != 0 {
			t.Errorf("β=%g: source left the rotation plane: %g", beta, s.Z)
		}
	}
	s0 := SourcePosition(p, 0)
	if math.Abs(s0.X) > 1e-12 || math.Abs(s0.Y+p.SAD) > 1e-12 {
		t.Errorf("S(0) = %v, want (0,-d,0)", s0)
	}
}

// Consistency between the matrix path and the ray path: the ray cast through
// the pixel a voxel projects to must pass within float tolerance of that
// voxel's world position.
func TestDetectorRayConsistentWithProjection(t *testing.T) {
	f := func(seed int64, angleFrac, fi, fj, fk float64) bool {
		p := randParams(seed)
		beta := math.Mod(math.Abs(angleFrac), 1) * 2 * math.Pi
		P := ProjectionMatrix(p, beta)
		i := math.Mod(math.Abs(fi), 1) * float64(p.Nx-1)
		j := math.Mod(math.Abs(fj), 1) * float64(p.Ny-1)
		k := math.Mod(math.Abs(fk), 1) * float64(p.Nz-1)
		u, v, _ := P.Project(i, j, k)
		ray := DetectorRay(p, beta, u, v)
		wx, wy, wz := p.VoxelCenter(i, j, k)
		w := Vec3{wx, wy, wz}
		// Distance from w to the ray.
		d := w.Sub(ray.Origin)
		along := d.Dot(ray.Dir)
		perp := d.Sub(ray.Dir.Scale(along)).Norm()
		return perp < 1e-6*(1+d.Norm()) && along > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestVec3Ops(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{-1, 0.5, 2}
	if a.Add(b) != (Vec3{0, 2.5, 5}) {
		t.Error("Add")
	}
	if a.Sub(b) != (Vec3{2, 1.5, 1}) {
		t.Error("Sub")
	}
	if a.Scale(2) != (Vec3{2, 4, 6}) {
		t.Error("Scale")
	}
	if math.Abs(a.Dot(b)-6) > 1e-12 {
		t.Error("Dot")
	}
	if n := (Vec3{3, 4, 0}).Normalize().Norm(); math.Abs(n-1) > 1e-12 {
		t.Error("Normalize")
	}
	z := Vec3{}
	if z.Normalize() != z {
		t.Error("Normalize of zero vector should be zero")
	}
}

func TestFOVRadiusPositive(t *testing.T) {
	p := Default(512, 512, 360, 256, 256, 256)
	r := p.FOVRadius()
	if r <= 0 || r >= p.SAD {
		t.Errorf("FOVRadius = %g out of range (0, %g)", r, p.SAD)
	}
	// The fitted volume must sit inside the FOV.
	halfDiag := math.Hypot(float64(p.Nx)*p.Dx/2, float64(p.Ny)*p.Dy/2)
	if halfDiag > r {
		t.Errorf("fitted volume half-diagonal %g exceeds FOV radius %g", halfDiag, r)
	}
}
