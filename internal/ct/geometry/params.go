// Package geometry implements the cone-beam CT (CBCT) geometry of the
// paper's Sec. 2.2: the acquisition parameters of Table 1, the projection
// matrices P_i = (M1 · Mrot · M0)[0:3] of Eq. 2, and the source/detector
// rays used by the forward projector.
//
// Frames. The "world" (volume physical) frame is the output frame of M0:
// millimetric coordinates centred in the volume with X along i, Y along -j
// and Z along -k (Fig. 1b). Mrot rotates the world by the gantry angle β
// around Z and re-expresses the result in the "camera" frame whose origin is
// the X-ray source and whose third axis points at the detector. M1 applies
// the pinhole projection onto the flat-panel detector (FPD) in pixel units.
package geometry

import (
	"fmt"
	"math"
)

// Params collects the CBCT acquisition parameters of Table 1.
type Params struct {
	Np     int     // number of 2-D projections over the full 2π orbit
	Nu, Nv int     // detector width and height in pixels
	Du, Dv float64 // detector pixel pitch (mm/pixel) in U and V
	SAD    float64 // d: distance of X-ray source to the rotation (Z) axis
	SDD    float64 // D: distance of X-ray source to the FPD centre

	Nx, Ny, Nz int     // voxel counts
	Dx, Dy, Dz float64 // voxel pitch (mm/voxel)
}

// Theta returns the rotation step angle θ = 2π/Np.
func (p Params) Theta() float64 { return 2 * math.Pi / float64(p.Np) }

// Beta returns the gantry angle of the s-th projection, s ∈ [0, Np).
func (p Params) Beta(s int) float64 { return float64(s) * p.Theta() }

// DetCenterU returns (Nu-1)/2, the U coordinate of the detector centre.
func (p Params) DetCenterU() float64 { return float64(p.Nu-1) / 2 }

// DetCenterV returns (Nv-1)/2, the V coordinate of the detector centre.
func (p Params) DetCenterV() float64 { return float64(p.Nv-1) / 2 }

// Magnification returns D/d, the cone-beam magnification at the rotation
// axis.
func (p Params) Magnification() float64 { return p.SDD / p.SAD }

// VoxelCenter returns the world coordinates of the centre of voxel
// (i, j, k), i.e. M0 · [i, j, k, 1]ᵀ.
func (p Params) VoxelCenter(i, j, k float64) (x, y, z float64) {
	x = p.Dx * (i - float64(p.Nx-1)/2)
	y = p.Dy * (float64(p.Ny-1)/2 - j)
	z = p.Dz * (float64(p.Nz-1)/2 - k)
	return
}

// FOVRadius returns the radius (mm) of the cylindrical field of view that is
// visible on the detector at every angle: the fan half-width projected back
// to the rotation axis.
func (p Params) FOVRadius() float64 {
	halfFan := float64(p.Nu) * p.Du / 2
	return p.SAD * halfFan / math.Sqrt(p.SDD*p.SDD+halfFan*halfFan)
}

// Validate reports a descriptive error when the parameter set is not
// physically meaningful.
func (p Params) Validate() error {
	switch {
	case p.Np <= 0:
		return fmt.Errorf("geometry: Np = %d must be positive", p.Np)
	case p.Nu <= 0 || p.Nv <= 0:
		return fmt.Errorf("geometry: detector %dx%d must be positive", p.Nu, p.Nv)
	case p.Nx <= 0 || p.Ny <= 0 || p.Nz <= 0:
		return fmt.Errorf("geometry: volume %dx%dx%d must be positive", p.Nx, p.Ny, p.Nz)
	case p.Du <= 0 || p.Dv <= 0:
		return fmt.Errorf("geometry: detector pitch %gx%g must be positive", p.Du, p.Dv)
	case p.Dx <= 0 || p.Dy <= 0 || p.Dz <= 0:
		return fmt.Errorf("geometry: voxel pitch %gx%gx%g must be positive", p.Dx, p.Dy, p.Dz)
	case p.SAD <= 0 || p.SDD <= 0:
		return fmt.Errorf("geometry: d = %g, D = %g must be positive", p.SAD, p.SDD)
	case p.SDD < p.SAD:
		return fmt.Errorf("geometry: D = %g must be ≥ d = %g", p.SDD, p.SAD)
	}
	return nil
}

// Default returns a parameter set for the image-reconstruction problem
// Nu×Nv×Np → Nx×Ny×Nz with unit detector pitch and the voxel pitch chosen
// so the volume snugly fits the guaranteed field of view. Distances follow
// the paper's convention of measuring d and D in detector-pixel units
// (Table 1): d = 1000 px and D = 1536 px, a typical C-arm ratio.
func Default(nu, nv, np, nx, ny, nz int) Params {
	p := Params{
		Np: np, Nu: nu, Nv: nv,
		Du: 1, Dv: 1,
		SAD: 1000, SDD: 1536,
		Nx: nx, Ny: ny, Nz: nz,
	}
	// Fit the volume diagonal inside the cylindrical FOV with 5% margin.
	r := p.FOVRadius() * 0.95
	p.Dx = 2 * r / math.Sqrt2 / float64(nx)
	p.Dy = 2 * r / math.Sqrt2 / float64(ny)
	// Vertical extent: the cone half-height at the axis.
	halfCone := float64(nv) * p.Dv / 2 * p.SAD / p.SDD * 0.95
	p.Dz = 2 * halfCone / float64(nz)
	return p
}

// Problem describes an image-reconstruction problem in the paper's notation
// Nu×Nv×Np → Nx×Ny×Nz (Sec. 2.3, definition I).
type Problem struct {
	Nu, Nv, Np int
	Nx, Ny, Nz int
}

// String formats the problem in the paper's arrow notation.
func (pr Problem) String() string {
	return fmt.Sprintf("%dx%dx%d->%dx%dx%d", pr.Nu, pr.Nv, pr.Np, pr.Nx, pr.Ny, pr.Nz)
}

// Alpha returns α, the ratio of input to output problem size (Table 4).
func (pr Problem) Alpha() float64 {
	in := float64(pr.Nu) * float64(pr.Nv) * float64(pr.Np)
	out := float64(pr.Nx) * float64(pr.Ny) * float64(pr.Nz)
	return in / out
}

// InputBytes returns the size of the input projections in bytes (float32).
func (pr Problem) InputBytes() int64 {
	return 4 * int64(pr.Nu) * int64(pr.Nv) * int64(pr.Np)
}

// OutputBytes returns the size of the output volume in bytes (float32).
func (pr Problem) OutputBytes() int64 {
	return 4 * int64(pr.Nx) * int64(pr.Ny) * int64(pr.Nz)
}

// Updates returns the total number of voxel updates Nx·Ny·Nz·Np, the
// numerator of the GUPS metric (Sec. 2.3, definition II).
func (pr Problem) Updates() float64 {
	return float64(pr.Nx) * float64(pr.Ny) * float64(pr.Nz) * float64(pr.Np)
}

// GUPS converts an execution time for this problem into giga-updates per
// second: Nx·Ny·Nz·Np / (T · 2³⁰).
func (pr Problem) GUPS(seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return pr.Updates() / seconds / (1 << 30)
}

// Params instantiates full geometry parameters for the problem via Default.
func (pr Problem) Params() Params {
	return Default(pr.Nu, pr.Nv, pr.Np, pr.Nx, pr.Ny, pr.Nz)
}
