package geometry

import (
	"math"
	"testing"
)

func TestCenterVoxelProjectsToDetectorCenter(t *testing.T) {
	p := Default(128, 96, 180, 64, 64, 64)
	ci := float64(p.Nx-1) / 2
	cj := float64(p.Ny-1) / 2
	ck := float64(p.Nz-1) / 2
	for s := 0; s < p.Np; s += 17 {
		P := ProjectionMatrix(p, p.Beta(s))
		u, v, z := P.Project(ci, cj, ck)
		if math.Abs(u-p.DetCenterU()) > 1e-9 || math.Abs(v-p.DetCenterV()) > 1e-9 {
			t.Errorf("s=%d: centre projects to (%g,%g), want (%g,%g)",
				s, u, v, p.DetCenterU(), p.DetCenterV())
		}
		if math.Abs(z-p.SAD) > 1e-9 {
			t.Errorf("s=%d: depth of centre = %g, want d = %g", s, z, p.SAD)
		}
	}
}

func TestProjectionMatricesCount(t *testing.T) {
	p := Default(32, 32, 45, 16, 16, 16)
	ms := ProjectionMatrices(p)
	if len(ms) != 45 {
		t.Fatalf("got %d matrices", len(ms))
	}
	// Distinct angles must produce distinct matrices.
	if ms[0] == ms[1] {
		t.Error("P_0 == P_1")
	}
}

func TestMagnificationAtIsocentre(t *testing.T) {
	// A point offset along world X at β=0 lies parallel to the detector at
	// depth d, so its offset is magnified by exactly D/d.
	p := Default(256, 256, 360, 64, 64, 64)
	P := ProjectionMatrix(p, 0)
	ci := float64(p.Nx-1) / 2
	cj := float64(p.Ny-1) / 2
	ck := float64(p.Nz-1) / 2
	u0, _, _ := P.Project(ci, cj, ck)
	u1, _, _ := P.Project(ci+1, cj, ck)
	gotMag := (u1 - u0) * p.Du / p.Dx
	if math.Abs(gotMag-p.Magnification()) > 1e-9 {
		t.Errorf("magnification = %g, want %g", gotMag, p.Magnification())
	}
}

func TestRow(t *testing.T) {
	var P ProjMat
	for i := range P {
		P[i] = float64(i)
	}
	r1 := P.Row(1)
	if r1 != [4]float64{4, 5, 6, 7} {
		t.Errorf("Row(1) = %v", r1)
	}
}

func TestRows32(t *testing.T) {
	p := Default(64, 64, 90, 32, 32, 32)
	P := ProjectionMatrix(p, 0.7)
	rows := P.Rows32()
	for r := 0; r < 3; r++ {
		for c := 0; c < 4; c++ {
			if math.Abs(float64(rows[r][c])-P[4*r+c]) > 1e-4*math.Max(1, math.Abs(P[4*r+c])) {
				t.Errorf("Rows32[%d][%d] = %g, want %g", r, c, rows[r][c], P[4*r+c])
			}
		}
	}
}

func TestApplyMatchesMatrixVector(t *testing.T) {
	p := Default(64, 64, 90, 32, 32, 32)
	beta := 1.234
	P := ProjectionMatrix(p, beta)
	full := M1(p).Mul(Mrot(p, beta)).Mul(M0(p))
	for _, ijk := range [][3]float64{{0, 0, 0}, {31, 0, 15}, {7, 21, 3}} {
		x, y, z := P.Apply(ijk[0], ijk[1], ijk[2])
		want := full.MulVec([4]float64{ijk[0], ijk[1], ijk[2], 1})
		if math.Abs(x-want[0]) > 1e-12 || math.Abs(y-want[1]) > 1e-12 || math.Abs(z-want[2]) > 1e-12 {
			t.Errorf("Apply(%v) = (%g,%g,%g), want (%g,%g,%g)", ijk, x, y, z, want[0], want[1], want[2])
		}
	}
}

func TestValidate(t *testing.T) {
	good := Default(64, 64, 90, 32, 32, 32)
	if err := good.Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	bad := []Params{
		{},
		func() Params { p := good; p.Np = 0; return p }(),
		func() Params { p := good; p.Du = -1; return p }(),
		func() Params { p := good; p.SDD = p.SAD / 2; return p }(),
		func() Params { p := good; p.Nx = 0; return p }(),
		func() Params { p := good; p.Dz = 0; return p }(),
	}
	for n, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted", n)
		}
	}
}

func TestProblemHelpers(t *testing.T) {
	pr := Problem{Nu: 512, Nv: 512, Np: 1024, Nx: 256, Ny: 256, Nz: 256}
	if got := pr.Alpha(); math.Abs(got-16) > 1e-12 {
		t.Errorf("Alpha = %g, want 16", got)
	}
	if pr.InputBytes() != 4*512*512*1024 {
		t.Errorf("InputBytes = %d", pr.InputBytes())
	}
	if pr.OutputBytes() != 4*256*256*256 {
		t.Errorf("OutputBytes = %d", pr.OutputBytes())
	}
	if pr.String() != "512x512x1024->256x256x256" {
		t.Errorf("String = %q", pr.String())
	}
	// 2^24 voxels × 2^10 projections = 2^34 updates in 16 s = 1 GUPS.
	if g := pr.GUPS(16); math.Abs(g-1) > 1e-12 {
		t.Errorf("GUPS(16) = %g, want 1", g)
	}
	if pr.GUPS(0) != 0 {
		t.Error("GUPS(0) should be 0")
	}
}
