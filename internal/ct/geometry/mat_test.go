package geometry

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randMat(seed int64) Mat4 {
	rng := rand.New(rand.NewSource(seed))
	var m Mat4
	for i := range m {
		m[i] = rng.Float64()*2 - 1
	}
	return m
}

func matApproxEqual(a, b Mat4, tol float64) bool {
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func TestIdentityMul(t *testing.T) {
	m := randMat(1)
	if !matApproxEqual(Identity().Mul(m), m, 0) {
		t.Error("I·M != M")
	}
	if !matApproxEqual(m.Mul(Identity()), m, 0) {
		t.Error("M·I != M")
	}
}

func TestMulAssociativeProperty(t *testing.T) {
	f := func(s1, s2, s3 int64) bool {
		a, b, c := randMat(s1), randMat(s2), randMat(s3)
		return matApproxEqual(a.Mul(b).Mul(c), a.Mul(b.Mul(c)), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMulVecMatchesMul(t *testing.T) {
	a, b := randMat(5), randMat(6)
	v := [4]float64{1, -2, 3, 1}
	lhs := a.Mul(b).MulVec(v)
	rhs := a.MulVec(b.MulVec(v))
	for i := range lhs {
		if math.Abs(lhs[i]-rhs[i]) > 1e-12 {
			t.Fatalf("(AB)v != A(Bv) at %d", i)
		}
	}
}

func TestAt(t *testing.T) {
	var m Mat4
	for i := range m {
		m[i] = float64(i)
	}
	if m.At(1, 2) != 6 || m.At(3, 3) != 15 {
		t.Error("At indexing wrong")
	}
}

func TestM0MapsVoxelToWorld(t *testing.T) {
	p := Default(64, 64, 90, 32, 32, 32)
	m0 := M0(p)
	for _, ijk := range [][3]float64{{0, 0, 0}, {15.5, 15.5, 15.5}, {31, 31, 31}, {3, 17, 29}} {
		got := m0.MulVec([4]float64{ijk[0], ijk[1], ijk[2], 1})
		wx, wy, wz := p.VoxelCenter(ijk[0], ijk[1], ijk[2])
		if math.Abs(got[0]-wx) > 1e-12 || math.Abs(got[1]-wy) > 1e-12 || math.Abs(got[2]-wz) > 1e-12 {
			t.Errorf("M0(%v) = (%g,%g,%g), want (%g,%g,%g)", ijk, got[0], got[1], got[2], wx, wy, wz)
		}
		if got[3] != 1 {
			t.Errorf("homogeneous coordinate = %g", got[3])
		}
	}
}

func TestMrotDepthOffset(t *testing.T) {
	// The world origin must map to camera depth d at every angle.
	p := Default(64, 64, 90, 32, 32, 32)
	for _, beta := range []float64{0, 0.3, math.Pi / 2, math.Pi, 5.1} {
		g := Mrot(p, beta).MulVec([4]float64{0, 0, 0, 1})
		if math.Abs(g[2]-p.SAD) > 1e-12 {
			t.Errorf("β=%g: depth of isocentre = %g, want %g", beta, g[2], p.SAD)
		}
	}
}
