package filter

import (
	"sync"
	"testing"

	"ifdk/internal/ct/geometry"
)

func TestCachedSharesFilterers(t *testing.T) {
	g := testGeom()
	a, err := Cached(g, Hamming)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Cached(g, Hamming)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same (geometry, window) did not share a Filterer")
	}
	c, err := Cached(g, Hann)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("different windows shared a Filterer")
	}
	g2 := g
	g2.Nu *= 2
	d, err := Cached(g2, Hamming)
	if err != nil {
		t.Fatal(err)
	}
	if d == a {
		t.Error("different geometries shared a Filterer")
	}
	bad := g
	bad.Np = 0
	if _, err := Cached(bad, RamLak); err == nil {
		t.Error("invalid geometry should not be cached or returned")
	}
}

func TestCachedConcurrentFirstUse(t *testing.T) {
	g := geometry.Default(32, 8, 16, 8, 8, 8)
	g.Dv *= 1.0000001 // unique key so this test really races the build
	var wg sync.WaitGroup
	got := make([]*Filterer, 8)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f, err := Cached(g, Cosine)
			if err != nil {
				t.Error(err)
				return
			}
			got[i] = f
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(got); i++ {
		if got[i] != got[0] {
			t.Fatal("concurrent first use produced distinct Filterers")
		}
	}
}
