package filter

import (
	"math"
	"math/rand"
	"testing"

	"ifdk/internal/ct/geometry"
	"ifdk/internal/race"
	"ifdk/internal/volume"
)

// The RFFT hot path must reproduce the complex128 reference within
// single-precision tolerance for every apodization window. Measured worst
// relative error is ~2.5e-7; the bound leaves ~40x margin.
func TestRFFTMatchesComplex128AllWindows(t *testing.T) {
	g := geometry.Default(96, 8, 90, 32, 32, 32)
	rng := rand.New(rand.NewSource(42))
	e := volume.NewImage(g.Nu, g.Nv)
	for n := range e.Data {
		e.Data[n] = rng.Float32()*2 - 1
	}
	for _, w := range []Window{RamLak, SheppLogan, Cosine, Hamming, Hann} {
		f, err := New(g, w)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := f.ApplyRef(e)
		if err != nil {
			t.Fatal(err)
		}
		got, err := f.Apply(e)
		if err != nil {
			t.Fatal(err)
		}
		var peak float64
		for _, x := range ref.Data {
			if a := math.Abs(float64(x)); a > peak {
				peak = a
			}
		}
		tol := 1e-5 * (peak + 1)
		for n := range ref.Data {
			if d := math.Abs(float64(got.Data[n] - ref.Data[n])); d > tol {
				t.Fatalf("%v: pixel %d differs by %g (peak %g)", w, n, d, peak)
			}
		}
	}
}

// In-place filtering (q == e) must produce the same bits as out-of-place.
func TestApplyIntoInPlace(t *testing.T) {
	g := testGeom()
	f, err := New(g, Hann)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	e := volume.NewImage(g.Nu, g.Nv)
	for n := range e.Data {
		e.Data[n] = rng.Float32()
	}
	out, err := f.Apply(e) // out-of-place
	if err != nil {
		t.Fatal(err)
	}
	if err := f.ApplyInto(e, e); err != nil { // in place
		t.Fatal(err)
	}
	for n := range e.Data {
		if e.Data[n] != out.Data[n] {
			t.Fatalf("in-place result differs at %d: %g vs %g", n, e.Data[n], out.Data[n])
		}
	}
}

func TestApplyIntoRejectsMismatchedOutput(t *testing.T) {
	f, err := New(testGeom(), RamLak)
	if err != nil {
		t.Fatal(err)
	}
	e := volume.NewImage(f.Geometry().Nu, f.Geometry().Nv)
	if err := f.ApplyInto(e, volume.NewImage(3, 3)); err == nil {
		t.Error("mismatched output image should fail")
	}
	if _, err := f.ApplyRef(volume.NewImage(3, 3)); err == nil {
		t.Error("ApplyRef with mismatched image should fail")
	}
}

// Runs with warm (dirty) scratch pools must be bit-identical to cold runs:
// pooling must not change a single bit of the output.
func TestPooledRunsBitIdentical(t *testing.T) {
	g := testGeom()
	f, err := New(g, SheppLogan)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	e := volume.NewImage(g.Nu, g.Nv)
	for n := range e.Data {
		e.Data[n] = rng.Float32()*2 - 1
	}
	cold, err := f.Apply(e)
	if err != nil {
		t.Fatal(err)
	}
	// Dirty the pools with unrelated data, then re-run.
	junk := volume.NewImage(g.Nu, g.Nv)
	for n := range junk.Data {
		junk.Data[n] = 1e9
	}
	if _, err := f.Apply(junk); err != nil {
		t.Fatal(err)
	}
	warm, err := f.Apply(e)
	if err != nil {
		t.Fatal(err)
	}
	for n := range cold.Data {
		if cold.Data[n] != warm.Data[n] {
			t.Fatalf("pooled rerun differs at %d: %g vs %g", n, cold.Data[n], warm.Data[n])
		}
	}
}

// Steady-state ApplyInto must not allocate: the zero-per-projection
// guarantee of the filtering stage.
func TestApplyIntoSteadyStateAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("race instrumentation allocates")
	}
	g := testGeom()
	f, err := New(g, RamLak)
	if err != nil {
		t.Fatal(err)
	}
	e := volume.NewImage(g.Nu, g.Nv)
	q := volume.NewImage(g.Nu, g.Nv)
	for n := range e.Data {
		e.Data[n] = float32(n % 13)
	}
	for i := 0; i < 10; i++ { // warm the scratch pools
		if err := f.ApplyInto(e, q); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(100, func() {
		if err := f.ApplyInto(e, q); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0.5 {
		t.Errorf("ApplyInto allocates %.2f objects/projection in steady state", avg)
	}
}
