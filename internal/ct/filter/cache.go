package filter

import (
	"sync"

	"ifdk/internal/ct/geometry"
)

// A Filterer is immutable after construction and safe for concurrent use,
// but building one is expensive: two FFT plans, a construction-time
// transform of the ramp kernel, two spectra and an Nu×Nv cosine table.
// Every rank of every job needs the same tables for the same (geometry,
// window), so the service-facing entry points share them through this
// process-wide memo — the same shape-keyed reuse the engine pools apply to
// buffers, applied to precomputed state.

type filtererKey struct {
	g   geometry.Params
	win Window
}

var (
	filtererMu    sync.Mutex
	filterers     = map[filtererKey]*Filterer{}
	filtererLimit = 32 // distinct (geometry, window) pairs kept resident
)

// Cached returns a shared Filterer for the geometry and window, building
// and memoizing it on first use. When the memo is full an arbitrary entry
// is dropped: entries are immutable, so losing one only costs a rebuild.
func Cached(g geometry.Params, win Window) (*Filterer, error) {
	key := filtererKey{g: g, win: win}
	filtererMu.Lock()
	f, ok := filterers[key]
	filtererMu.Unlock()
	if ok {
		return f, nil
	}
	f, err := New(g, win) // heavy: build outside the lock
	if err != nil {
		return nil, err
	}
	filtererMu.Lock()
	defer filtererMu.Unlock()
	if prior, ok := filterers[key]; ok {
		return prior, nil // another goroutine won the build race
	}
	if len(filterers) >= filtererLimit {
		for k := range filterers {
			delete(filterers, k)
			break
		}
	}
	filterers[key] = f
	return f, nil
}
