package filter

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ifdk/internal/ct/geometry"
	"ifdk/internal/volume"
)

// Property: the filtering stage is linear — Apply(a·X + Y) equals
// a·Apply(X) + Apply(Y) within float tolerance. (Cosine weighting and ramp
// convolution are both linear operators.)
func TestFilterLinearityProperty(t *testing.T) {
	g := geometry.Default(32, 8, 16, 8, 8, 8)
	f, err := New(g, RamLak)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(seed int64, aRaw float64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := float32(math.Mod(aRaw, 3))
		x := volume.NewImage(g.Nu, g.Nv)
		y := volume.NewImage(g.Nu, g.Nv)
		mix := volume.NewImage(g.Nu, g.Nv)
		for n := range x.Data {
			x.Data[n] = rng.Float32()*2 - 1
			y.Data[n] = rng.Float32()*2 - 1
			mix.Data[n] = a*x.Data[n] + y.Data[n]
		}
		qx, err := f.Apply(x)
		if err != nil {
			return false
		}
		qy, err := f.Apply(y)
		if err != nil {
			return false
		}
		qm, err := f.Apply(mix)
		if err != nil {
			return false
		}
		// The ramp filter is high-pass: it amplifies the float32 rounding
		// noise of forming a·X + Y uniformly across the image, so the
		// tolerance must scale with the filtered image's magnitude — a
		// per-element relative bound flags exact results wherever the
		// output happens to pass near zero. Measured headroom is ~3000×.
		scale := 0.0
		for n := range qm.Data {
			if w := math.Abs(float64(a)*float64(qx.Data[n]) + float64(qy.Data[n])); w > scale {
				scale = w
			}
		}
		for n := range qm.Data {
			want := float64(a)*float64(qx.Data[n]) + float64(qy.Data[n])
			if math.Abs(float64(qm.Data[n])-want) > 1e-3*(1+scale) {
				return false
			}
		}
		return true
	}
	// Fixed seed: the property must hold for any input, but CI runs must be
	// reproducible — a time-seeded failure cannot be re-run.
	cfg := &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// Property: filtering is shift-covariant along rows away from the edges —
// shifting the input shifts the output.
func TestFilterShiftCovariance(t *testing.T) {
	g := geometry.Default(64, 4, 16, 8, 8, 8)
	f, err := New(g, RamLak)
	if err != nil {
		t.Fatal(err)
	}
	// Build an impulse at two nearby central positions; the cosine table
	// varies slowly there, so responses should match after shifting.
	mk := func(u int) *volume.Image {
		img := volume.NewImage(g.Nu, g.Nv)
		img.Set(u, 2, 1)
		return img
	}
	q1, err := f.Apply(mk(31))
	if err != nil {
		t.Fatal(err)
	}
	q2, err := f.Apply(mk(33))
	if err != nil {
		t.Fatal(err)
	}
	for off := -4; off <= 4; off++ {
		a := float64(q1.At(31+off, 2))
		b := float64(q2.At(33+off, 2))
		if math.Abs(a-b) > 2e-2*(1+math.Abs(a)) {
			t.Errorf("offset %d: responses differ: %g vs %g", off, a, b)
		}
	}
}
