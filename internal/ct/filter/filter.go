// Package filter implements the FDK filtering stage (Algorithm 1 of the
// paper): each projection is weighted by the 2-D cosine table F_cos and each
// row is convolved with the 1-D ramp filter F_ramp via FFT (the Convolution
// Theorem path of Sec. 2.2.3).
//
// The paper runs this stage on the CPUs with multi-threading and SIMD; here
// the multi-threading maps to the shared engine scheduler (ApplyBatch) and
// the FFT primitive is internal/fft.
//
// Hot path. Detector rows are real float32, so the production path
// (Apply/ApplyInto) transforms each row with a half-spectrum real FFT and
// multiplies by a precomputed float32 ramp spectrum — no complex128 round
// trip, no per-row allocation (scratch comes from engine buffer pools, and
// ApplyInto may filter a projection in place). The original complex128 path
// is kept as ApplyRef: it is the high-precision reference that parity tests
// and benchmarks compare against.
//
// Scaling. The filtered projections are pre-multiplied by the FDK constants
// θ·d²·τ/2 (angular step × distance-weight numerator × effective detector
// pitch at the isocentre / 2), so that the back-projection stage only
// applies the per-voxel 1/z² weight of Alg. 2/4 and the reconstructed values
// approximate the object density directly.
package filter

import (
	"fmt"
	"math"

	"ifdk/internal/ct/geometry"
	"ifdk/internal/ct/kernels"
	"ifdk/internal/engine"
	"ifdk/internal/fft"
	"ifdk/internal/volume"
)

// Shared scratch pools for row filtering: one padded real row and one half
// spectrum per in-flight ApplyInto call, reused across rows, projections and
// Filterers (pools key by length, and all Filterers of one geometry share
// lengths).
var (
	rowPool  engine.BufPool[float32]
	specPool engine.BufPool[complex64]
)

// Window selects the apodization applied to the ramp filter's frequency
// response. The paper notes the ramp shape affects image quality but not
// compute intensity (Sec. 2.2.2); all windows here cost the same.
type Window int

const (
	// RamLak is the unapodized band-limited ramp |ω|.
	RamLak Window = iota
	// SheppLogan multiplies the ramp by sinc(f/2), a mild noise reducer.
	SheppLogan
	// Cosine multiplies the ramp by cos(π f/2).
	Cosine
	// Hamming multiplies the ramp by 0.54 + 0.46·cos(π f).
	Hamming
	// Hann multiplies the ramp by 0.5·(1 + cos(π f)).
	Hann
)

// String implements fmt.Stringer.
func (w Window) String() string {
	switch w {
	case RamLak:
		return "ram-lak"
	case SheppLogan:
		return "shepp-logan"
	case Cosine:
		return "cosine"
	case Hamming:
		return "hamming"
	case Hann:
		return "hann"
	default:
		return fmt.Sprintf("Window(%d)", int(w))
	}
}

// gain returns the window multiplier at normalized frequency f ∈ [0, 1]
// (fraction of the Nyquist frequency). All windows equal 1 at f = 0.
func (w Window) gain(f float64) float64 {
	switch w {
	case SheppLogan:
		x := math.Pi * f / 2
		if x == 0 {
			return 1
		}
		return math.Sin(x) / x
	case Cosine:
		return math.Cos(math.Pi * f / 2)
	case Hamming:
		return 0.54 + 0.46*math.Cos(math.Pi*f)
	case Hann:
		return 0.5 * (1 + math.Cos(math.Pi*f))
	default:
		return 1
	}
}

// RampKernel returns the spatial taps of the band-limited ramp filter
// h(n·tau) of Feldkamp et al. (also Kak & Slaney eq. 61) for offsets
// n ∈ [-(n-1), n-1], centred at index n-1:
//
//	h(0) = 1/(4τ²),  h(n even) = 0,  h(n odd) = -1/(n π τ)².
func RampKernel(n int, tau float64) []float64 {
	taps := make([]float64, 2*n-1)
	taps[n-1] = 1 / (4 * tau * tau)
	for k := 1; k < n; k++ {
		if k%2 == 1 {
			v := -1 / (math.Pi * math.Pi * float64(k) * float64(k) * tau * tau)
			taps[n-1+k] = v
			taps[n-1-k] = v
		}
	}
	return taps
}

// CosineTable builds F_cos of size (Nv, Nu) (Table 1): the cone-angle cosine
// D/√(D² + ū² + v̄²) of each detector pixel, with ū, v̄ the physical offsets
// from the detector centre.
func CosineTable(g geometry.Params) *volume.Image {
	tab := volume.NewImage(g.Nu, g.Nv)
	for v := 0; v < g.Nv; v++ {
		vb := (float64(v) - g.DetCenterV()) * g.Dv
		row := tab.Row(v)
		for u := 0; u < g.Nu; u++ {
			ub := (float64(u) - g.DetCenterU()) * g.Du
			row[u] = float32(g.SDD / math.Sqrt(g.SDD*g.SDD+ub*ub+vb*vb))
		}
	}
	return tab
}

// Filterer applies the filtering stage to projections of a fixed geometry.
// It precomputes the cosine table and the windowed ramp spectrum once; a
// Filterer is safe for concurrent use by multiple goroutines.
type Filterer struct {
	g      geometry.Params
	win    Window
	cosTab *volume.Image
	l      int
	// Hot path: half-spectrum real FFT over float32.
	rplan  *fft.RealPlan
	spec32 []float32 // scaled, windowed ramp spectrum, bins 0..L/2 (real-valued)
	// Reference path: the original complex128 round trip (ApplyRef).
	plan *fft.Plan
	spec []complex128 // scaled, windowed ramp spectrum (length L)
}

// New builds a Filterer for the geometry and window.
func New(g geometry.Params, win Window) (*Filterer, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	l := fft.NextPow2(2 * g.Nu)
	plan, err := fft.NewPlan(l)
	if err != nil {
		return nil, err
	}
	// Effective detector pitch rescaled to the virtual detector through the
	// rotation axis: τ = Du·d/D.
	tau := g.Du * g.SAD / g.SDD
	taps := RampKernel(g.Nu, tau)
	// Arrange taps circularly: offset 0 at index 0, negative offsets wrap.
	buf := make([]complex128, l)
	n := g.Nu
	for k := 0; k < n; k++ {
		buf[k] = complex(taps[n-1+k], 0)
	}
	for k := 1; k < n; k++ {
		buf[l-k] = complex(taps[n-1-k], 0)
	}
	plan.Forward(buf)
	// FDK constants folded into the spectrum: θ·d²·τ/2.
	scale := g.Theta() * g.SAD * g.SAD * tau / 2
	for k := range buf {
		f := float64(k)
		if k > l/2 {
			f = float64(l - k)
		}
		f /= float64(l / 2) // fraction of Nyquist
		buf[k] *= complex(scale*win.gain(f), 0)
	}
	// The circular arrangement is symmetric (taps[k] at k and L-k), so the
	// spectrum is real and even: the half spectrum narrows to a float32
	// gain per bin, computed in float64 above and rounded once.
	rplan, err := fft.NewRealPlan(l)
	if err != nil {
		return nil, err
	}
	spec32 := make([]float32, l/2+1)
	for k := range spec32 {
		spec32[k] = float32(real(buf[k]))
	}
	return &Filterer{
		g: g, win: win, cosTab: CosineTable(g), l: l,
		rplan: rplan, spec32: spec32,
		plan: plan, spec: buf,
	}, nil
}

// Geometry returns the geometry this Filterer was built for.
func (f *Filterer) Geometry() geometry.Params { return f.g }

// Window returns the configured apodization window.
func (f *Filterer) Window() Window { return f.win }

// Apply filters one projection E_i, returning the filtered Q_i
// (Alg. 1: Ẽ = E·F_cos, then each row convolved with F_ramp).
func (f *Filterer) Apply(e *volume.Image) (*volume.Image, error) {
	if e.W != f.g.Nu || e.H != f.g.Nv {
		return nil, fmt.Errorf("filter: projection %dx%d does not match geometry %dx%d",
			e.W, e.H, f.g.Nu, f.g.Nv)
	}
	q := volume.NewImage(e.W, e.H)
	return q, f.ApplyInto(e, q)
}

// ApplyInto filters e into q, which must both match the geometry. q may be
// e itself: rows are fully read into pooled scratch before being written
// back, so in-place filtering is safe — the pipeline filters each loaded
// projection in place and never allocates a second image. Steady state
// performs zero heap allocations.
//
//ifdk:hotpath
func (f *Filterer) ApplyInto(e, q *volume.Image) error {
	if e.W != f.g.Nu || e.H != f.g.Nv {
		return fmt.Errorf("filter: projection %dx%d does not match geometry %dx%d",
			e.W, e.H, f.g.Nu, f.g.Nv)
	}
	if q.W != e.W || q.H != e.H {
		return fmt.Errorf("filter: output %dx%d does not match projection %dx%d",
			q.W, q.H, e.W, e.H)
	}
	row := rowPool.Acquire(f.l)
	spec := specPool.Acquire(f.l/2 + 1)
	for v := 0; v < e.H; v++ {
		f.filterRowRFFT(e.Row(v), f.cosTab.Row(v), q.Row(v), row.Data, spec.Data)
	}
	spec.Release()
	row.Release()
	return nil
}

// filterRowRFFT is the hot path: cosine-weight the row, transform with the
// half-spectrum real plan, scale each bin by the real ramp gain, transform
// back. All arithmetic is float32; the O(Nu) loops are kernels calls.
//
//ifdk:hotpath
func (f *Filterer) filterRowRFFT(in, cos, out, row []float32, spec []complex64) {
	kernels.CosineWeight(row, in, cos) // point-wise ·F_cos
	clear(row[len(in):])
	f.rplan.Forward(spec, row)
	kernels.SpectralMul(spec, f.spec32)
	f.rplan.Inverse(row, spec)
	copy(out, row[:len(out)])
}

// ApplyRef filters one projection through the original complex128 path. It
// is the high-precision reference implementation: parity tests pin the RFFT
// hot path to it, and BenchmarkFilterRFFT measures the gap. Not used by the
// pipeline.
func (f *Filterer) ApplyRef(e *volume.Image) (*volume.Image, error) {
	if e.W != f.g.Nu || e.H != f.g.Nv {
		return nil, fmt.Errorf("filter: projection %dx%d does not match geometry %dx%d",
			e.W, e.H, f.g.Nu, f.g.Nv)
	}
	q := volume.NewImage(e.W, e.H)
	buf := make([]complex128, f.l)
	for v := 0; v < e.H; v++ {
		f.filterRow(e.Row(v), f.cosTab.Row(v), q.Row(v), buf)
	}
	return q, nil
}

func (f *Filterer) filterRow(in, cos, out []float32, buf []complex128) {
	for u := range buf {
		buf[u] = 0
	}
	for u := range in {
		buf[u] = complex(float64(in[u])*float64(cos[u]), 0) // point-wise ·F_cos
	}
	f.plan.Forward(buf)
	for k := range buf {
		buf[k] *= f.spec[k]
	}
	f.plan.Inverse(buf)
	for u := range out {
		out[u] = float32(real(buf[u]))
	}
}

// Sweep filters every projection of ins into the matching entry of outs in
// one shared pass: all rows of all projections form a single flat index
// space scheduled as one engine.ParallelRange, so N co-scheduled projections
// (from one job's batch or from several co-resident jobs sharing this
// memoized plan) cost one sweep over the cosine table and ramp spectrum
// instead of N. workers 0 means GOMAXPROCS. outs[i] may be ins[i] (rows are
// staged through pooled scratch, as in ApplyInto). Dimensions are validated
// up front; nothing is written when an error is returned. Steady state
// allocates nothing beyond the scheduler's pooled job descriptors.
//
//ifdk:hotpath
func (f *Filterer) Sweep(ins, outs []*volume.Image, workers int) error {
	if len(ins) != len(outs) {
		return fmt.Errorf("filter: sweep over %d inputs with %d outputs", len(ins), len(outs))
	}
	for n, e := range ins {
		if e.W != f.g.Nu || e.H != f.g.Nv {
			return fmt.Errorf("filter: projection %d is %dx%d, does not match geometry %dx%d",
				n, e.W, e.H, f.g.Nu, f.g.Nv)
		}
		if q := outs[n]; q.W != e.W || q.H != e.H {
			return fmt.Errorf("filter: output %d is %dx%d, does not match projection %dx%d",
				n, q.W, q.H, e.W, e.H)
		}
	}
	nv := f.g.Nv
	engine.ParallelRange(len(ins)*nv, workers, func(lo, hi int) {
		row := rowPool.Acquire(f.l)
		spec := specPool.Acquire(f.l/2 + 1)
		for idx := lo; idx < hi; idx++ {
			e, q, v := ins[idx/nv], outs[idx/nv], idx%nv
			f.filterRowRFFT(e.Row(v), f.cosTab.Row(v), q.Row(v), row.Data, spec.Data)
		}
		spec.Release()
		row.Release()
	})
	return nil
}

// ApplyBatch filters a batch of projections with the given number of worker
// goroutines (0 means GOMAXPROCS), mirroring the OpenMP parallel filtering
// inside each rank's Filtering-thread (Sec. 4.1.3). It is Sweep with
// pool-acquired outputs: scheduling is the shared row sweep and the result
// order matches the input order. The outputs are acquired from
// engine.Images: callers that are done with them may hand them back via
// engine.Images.Release (optional — an output that escapes simply becomes
// ordinary garbage).
func (f *Filterer) ApplyBatch(imgs []*volume.Image, workers int) ([]*volume.Image, error) {
	out := make([]*volume.Image, len(imgs))
	for i := range out {
		out[i] = engine.Images.Acquire(f.g.Nu, f.g.Nv)
	}
	if err := f.Sweep(imgs, out, workers); err != nil {
		for _, q := range out {
			engine.Images.Release(q)
		}
		return nil, err
	}
	return out, nil
}
