package filter

import (
	"math"
	"testing"

	"ifdk/internal/ct/geometry"
	"ifdk/internal/volume"
)

func testGeom() geometry.Params {
	return geometry.Default(64, 32, 90, 32, 32, 32)
}

func TestRampKernelTaps(t *testing.T) {
	tau := 0.5
	taps := RampKernel(8, tau)
	if len(taps) != 15 {
		t.Fatalf("taps length %d", len(taps))
	}
	c := 7 // centre index
	if math.Abs(taps[c]-1/(4*tau*tau)) > 1e-12 {
		t.Errorf("h(0) = %g", taps[c])
	}
	for n := 1; n < 8; n++ {
		want := 0.0
		if n%2 == 1 {
			want = -1 / (math.Pi * math.Pi * float64(n*n) * tau * tau)
		}
		if math.Abs(taps[c+n]-want) > 1e-12 || math.Abs(taps[c-n]-want) > 1e-12 {
			t.Errorf("h(±%d) = %g/%g, want %g", n, taps[c+n], taps[c-n], want)
		}
	}
}

func TestRampKernelDCNearZero(t *testing.T) {
	// Σh → 0 as the kernel grows (Σ_odd 1/n² = π²/8 exactly).
	taps := RampKernel(4096, 1)
	var sum float64
	for _, v := range taps {
		sum += v
	}
	if math.Abs(sum) > 1e-4 {
		t.Errorf("kernel DC sum = %g", sum)
	}
}

func TestWindowGainAtZero(t *testing.T) {
	for _, w := range []Window{RamLak, SheppLogan, Cosine, Hamming, Hann} {
		if g := w.gain(0); math.Abs(g-1) > 1e-12 {
			t.Errorf("%v gain(0) = %g", w, g)
		}
		if w.String() == "" {
			t.Errorf("window %d has empty name", w)
		}
	}
	if Window(42).String() == "" {
		t.Error("unknown window should still format")
	}
}

func TestWindowHighFrequencyOrdering(t *testing.T) {
	// At Nyquist the smooth windows must attenuate more than Ram-Lak.
	rl := RamLak.gain(1)
	for _, w := range []Window{SheppLogan, Cosine, Hamming, Hann} {
		if g := w.gain(1); g >= rl {
			t.Errorf("%v gain(1) = %g, want < %g", w, g, rl)
		}
	}
	if h := Hann.gain(1); math.Abs(h) > 1e-12 {
		t.Errorf("hann gain(1) = %g, want 0", h)
	}
}

func TestCosineTable(t *testing.T) {
	g := testGeom()
	tab := CosineTable(g)
	if tab.W != g.Nu || tab.H != g.Nv {
		t.Fatalf("table size %dx%d", tab.W, tab.H)
	}
	// With an even detector the exact centre lies between pixels; the four
	// centre pixels share the max value < 1 and corners are the smallest.
	s := tab.Summarize()
	if s.Max >= 1 || s.Max < 0.99 {
		t.Errorf("max cosine = %g", s.Max)
	}
	if tab.At(0, 0) != s.Min {
		t.Errorf("corner %g is not the minimum %g", tab.At(0, 0), s.Min)
	}
	// Symmetry: F_cos(u, v) = F_cos(Nu-1-u, Nv-1-v).
	for v := 0; v < g.Nv; v += 5 {
		for u := 0; u < g.Nu; u += 7 {
			a := tab.At(u, v)
			b := tab.At(g.Nu-1-u, g.Nv-1-v)
			if math.Abs(float64(a-b)) > 1e-6 {
				t.Fatalf("cosine table asymmetric at (%d,%d)", u, v)
			}
		}
	}
}

func TestNewRejectsBadGeometry(t *testing.T) {
	bad := testGeom()
	bad.Np = 0
	if _, err := New(bad, RamLak); err == nil {
		t.Error("New with invalid geometry should fail")
	}
}

func TestApplyRejectsWrongSize(t *testing.T) {
	f, err := New(testGeom(), RamLak)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Apply(volume.NewImage(3, 3)); err == nil {
		t.Error("Apply with mismatched image should fail")
	}
}

func TestConstantProjectionFiltersToNearZero(t *testing.T) {
	// The ramp filter removes DC; a flat projection row should filter to
	// (approximately) zero away from the edges.
	g := testGeom()
	f, err := New(g, RamLak)
	if err != nil {
		t.Fatal(err)
	}
	e := volume.NewImage(g.Nu, g.Nv)
	for n := range e.Data {
		e.Data[n] = 1
	}
	q, err := f.Apply(e)
	if err != nil {
		t.Fatal(err)
	}
	// Compare interior magnitude to the impulse response magnitude.
	imp := volume.NewImage(g.Nu, g.Nv)
	imp.Set(g.Nu/2, g.Nv/2, 1)
	qImp, _ := f.Apply(imp)
	ref := math.Abs(float64(qImp.At(g.Nu/2, g.Nv/2)))
	mid := math.Abs(float64(q.At(g.Nu/2, g.Nv/2)))
	if mid > 0.05*ref {
		t.Errorf("flat row filtered to %g, impulse ref %g", mid, ref)
	}
}

func TestImpulseResponseMatchesKernel(t *testing.T) {
	// A unit impulse at the row centre reproduces the scaled ramp taps
	// (modulo the cosine weight at that pixel).
	g := testGeom()
	f, err := New(g, RamLak)
	if err != nil {
		t.Fatal(err)
	}
	e := volume.NewImage(g.Nu, g.Nv)
	cu, cv := g.Nu/2, g.Nv/2
	e.Set(cu, cv, 1)
	// The complex128 reference path keeps this tight tolerance; the RFFT
	// hot path is pinned to the reference by the parity tests.
	q, err := f.ApplyRef(e)
	if err != nil {
		t.Fatal(err)
	}
	tau := g.Du * g.SAD / g.SDD
	scale := g.Theta() * g.SAD * g.SAD * tau / 2 * float64(CosineTable(g).At(cu, cv))
	taps := RampKernel(g.Nu, tau)
	for off := -3; off <= 3; off++ {
		got := float64(q.At(cu+off, cv))
		want := scale * taps[g.Nu-1+off]
		if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
			t.Errorf("impulse response at offset %d = %g, want %g", off, got, want)
		}
	}
	// Other rows stay zero (row-wise convolution only).
	if q.At(cu, cv+1) != 0 {
		t.Error("filtering leaked across rows")
	}
}

func TestApplyBatchMatchesSequential(t *testing.T) {
	g := testGeom()
	f, err := New(g, Hamming)
	if err != nil {
		t.Fatal(err)
	}
	imgs := make([]*volume.Image, 7)
	for n := range imgs {
		imgs[n] = volume.NewImage(g.Nu, g.Nv)
		for m := range imgs[n].Data {
			imgs[n].Data[m] = float32((n*31+m*7)%17) / 17
		}
	}
	batch, err := f.ApplyBatch(imgs, 4)
	if err != nil {
		t.Fatal(err)
	}
	for n := range imgs {
		single, err := f.Apply(imgs[n])
		if err != nil {
			t.Fatal(err)
		}
		r, _ := volume.ImageRMSE(batch[n], single)
		if r != 0 {
			t.Errorf("projection %d: batch result differs (rmse %g)", n, r)
		}
	}
}

func TestApplyBatchPropagatesError(t *testing.T) {
	g := testGeom()
	f, _ := New(g, RamLak)
	imgs := []*volume.Image{volume.NewImage(g.Nu, g.Nv), volume.NewImage(2, 2)}
	if _, err := f.ApplyBatch(imgs, 2); err == nil {
		t.Error("batch with a bad image should fail")
	}
}

func TestWindowReducesRinging(t *testing.T) {
	// The Hann-filtered impulse response has a smaller peak than Ram-Lak.
	g := testGeom()
	e := volume.NewImage(g.Nu, g.Nv)
	e.Set(g.Nu/2, g.Nv/2, 1)
	fr, _ := New(g, RamLak)
	fh, _ := New(g, Hann)
	qr, _ := fr.Apply(e)
	qh, _ := fh.Apply(e)
	if math.Abs(float64(qh.At(g.Nu/2, g.Nv/2))) >= math.Abs(float64(qr.At(g.Nu/2, g.Nv/2))) {
		t.Error("Hann peak should be below Ram-Lak peak")
	}
}

func BenchmarkApply512(b *testing.B) {
	g := geometry.Default(512, 8, 90, 32, 32, 32)
	f, err := New(g, RamLak)
	if err != nil {
		b.Fatal(err)
	}
	e := volume.NewImage(g.Nu, g.Nv)
	for n := range e.Data {
		e.Data[n] = float32(n % 13)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Apply(e); err != nil {
			b.Fatal(err)
		}
	}
}
