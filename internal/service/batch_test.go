package service

import (
	"testing"
	"time"
)

// With cross-job filter batching on, concurrent jobs sharing a plan must
// still reconstruct correctly (verified against the serial reference), the
// batcher metrics must move, and the per-round trace spans must carry the
// observed batch size.
func TestFilterBatchingEndToEnd(t *testing.T) {
	m := NewManager(Options{Workers: 2, FilterBatchWindow: 500 * time.Microsecond})
	defer shutdown(t, m)

	// Two distinct specs (no cache sharing), same geometry → same filter
	// plan: their ranks all coalesce through one batcher group.
	var ids []string
	for i := 0; i < 2; i++ {
		s := testSpec()
		s.NP = 32 + 4*i
		s.Verify = true
		v, err := m.Submit(s)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
	}
	for _, id := range ids {
		v := waitState(t, m, id, 60*time.Second)
		if v.State != StateDone {
			t.Fatalf("job %s settled %s: %s", id, v.State, v.Error)
		}
		if !v.Verified || v.RelRMSE > 1e-5 {
			t.Fatalf("job %s verified=%v relRMSE=%g", id, v.Verified, v.RelRMSE)
		}
	}

	if n := m.met.filterSweeps.Value(); n == 0 {
		t.Error("no shared filter sweeps recorded")
	}
	if n := m.met.filterBatchedProj.Value(); n < 64 {
		t.Errorf("batched projections %d, want >= 64 (every round routed through the batcher)", n)
	}

	// Per-round spans carry the batch size the round observed.
	tr, err := m.TraceFor(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	sawBatch := false
	for _, s := range tr.Spans {
		if s.Name == "filter.round" && s.Attrs["batch_size"] != "" {
			sawBatch = true
			break
		}
	}
	if !sawBatch {
		t.Error("no filter.round span carries a batch_size attribute")
	}
}

// Cancelling a job mid-run with batching on must tear down cleanly: the
// other job in the group finishes, and the batcher does not deadlock.
func TestFilterBatchingCancelMidRound(t *testing.T) {
	m := NewManager(Options{Workers: 2, FilterBatchWindow: 500 * time.Microsecond, PFS: pfsThrottled()})
	defer shutdown(t, m)

	victim := testSpec()
	victim.NP = 64
	survivorSpec := testSpec()
	survivorSpec.NP = 68
	v1, err := m.Submit(victim)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := m.Submit(survivorSpec)
	if err != nil {
		t.Fatal(err)
	}
	// Give both jobs time to enter the pipeline, then cancel one.
	time.Sleep(50 * time.Millisecond)
	if err := m.Cancel(v1.ID); err != nil {
		t.Fatal(err)
	}
	got := waitState(t, m, v1.ID, 60*time.Second)
	if got.State != StateCancelled && got.State != StateDone {
		t.Fatalf("victim settled %s: %s", got.State, got.Error)
	}
	sv := waitState(t, m, v2.ID, 60*time.Second)
	if sv.State != StateDone {
		t.Fatalf("survivor settled %s: %s", sv.State, sv.Error)
	}
}
