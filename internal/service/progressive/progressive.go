// Package progressive is the service-side home of the coarse-to-fine quality
// knob: parsing and semantics of the v1 Spec's quality field, the cache-key
// derivation that keeps preview results from ever aliasing full-resolution
// entries, and the runner that executes the preview tier (internal/ct/preview)
// against the service's staged PFS datasets and cross-job filter batcher.
package progressive

import (
	"context"
	"fmt"
	"strconv"

	"ifdk/internal/ct/filter"
	"ifdk/internal/ct/preview"
	"ifdk/internal/hpc/pfs"
	"ifdk/internal/service/batcher"
	"ifdk/internal/volume"
	"ifdk/pkg/api"
)

// Quality is the resolved tier of a Spec's quality knob.
type Quality int

const (
	// Full is the default: one full-resolution reconstruction.
	Full Quality = iota
	// Preview reconstructs only the decimated preview volume.
	Preview
	// Progressive builds the preview first, streams it, then refines to
	// full resolution under the same job ID.
	Progressive
)

// ParseQuality resolves a Spec's quality field. The empty string is Full
// (wire compatibility: pre-quality Specs are full-quality Specs); anything
// unrecognized is an invalid-spec error.
func ParseQuality(s string) (Quality, error) {
	switch s {
	case "", api.QualityFull:
		return Full, nil
	case api.QualityPreview:
		return Preview, nil
	case api.QualityProgressive:
		return Progressive, nil
	default:
		return Full, fmt.Errorf("unknown quality %q (want %s, %s or %s)",
			s, api.QualityFull, api.QualityPreview, api.QualityProgressive)
	}
}

// String returns the wire form of the tier.
func (q Quality) String() string {
	switch q {
	case Preview:
		return api.QualityPreview
	case Progressive:
		return api.QualityProgressive
	default:
		return api.QualityFull
	}
}

// WantsPreview reports whether the tier builds a decimated preview volume.
func (q Quality) WantsPreview() bool { return q == Preview || q == Progressive }

// WantsFull reports whether the tier runs the full-resolution pipeline.
func (q Quality) WantsFull() bool { return q == Full || q == Progressive }

// PreviewKey derives the result-cache key of the preview tier from the
// full-resolution key. Full keys are SHA-256 hex, so the suffixed form can
// never collide with any full-resolution key: a preview entry (a coarse
// volume) is structurally unable to alias a full-resolution entry, in the
// cache, in the PFS spill tier, and in the router's rendezvous placement —
// which also means preview jobs hash to their own backend instead of warming
// the full-resolution key's cache shard. The derivation is a pure function
// of (full key, factor), so journal replay re-derives it bit-identically.
func PreviewKey(fullKey string, factor int) string {
	return fullKey + ".p" + strconv.Itoa(factor)
}

// BatchClass names the batcher coalescing class of preview sweeps at one
// decimation factor, keeping coarse rounds out of full-resolution sweeps
// (and vice versa) even when their filter plans coincide.
func BatchClass(factor int) string {
	return "preview/" + strconv.Itoa(factor)
}

// Runner executes preview builds for the service: projections come from the
// staged dataset on the PFS, and filtering rides the cross-job batcher when
// one is attached.
type Runner struct {
	Store   *pfs.PFS
	Batch   *batcher.Pool // optional: coalesce preview filter sweeps across jobs
	Workers int
}

// Build reconstructs the plan's preview volume from the staged dataset at
// inputPrefix. It is deterministic for a given (plan, dataset, window):
// always the block-mean decimation of the staged full-resolution
// projections, so crash-replayed jobs rebuild byte-identical previews.
func (r *Runner) Build(ctx context.Context, plan preview.Plan, inputPrefix string, win filter.Window) (*volume.Volume, preview.Timings, error) {
	opt := preview.Options{Workers: r.Workers, Window: win}
	if r.Batch != nil {
		m, err := r.Batch.JoinClass(plan.Coarse, win, BatchClass(plan.Factor))
		if err != nil {
			return nil, preview.Timings{}, err
		}
		defer m.Close()
		opt.Filter = func(ctx context.Context, img *volume.Image) error {
			_, err := m.Filter(ctx, img)
			return err
		}
	}
	return plan.Reconstruct(ctx, func(dst *volume.Image, s int) error {
		_, err := r.Store.ReadProjectionInto(dst, inputPrefix, s)
		return err
	}, opt)
}
