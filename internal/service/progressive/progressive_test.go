package progressive

import (
	"strings"
	"testing"
)

func TestParseQuality(t *testing.T) {
	cases := []struct {
		in      string
		want    Quality
		wantErr bool
	}{
		{"", Full, false}, // wire compatibility: absent field means full
		{"full", Full, false},
		{"preview", Preview, false},
		{"progressive", Progressive, false},
		{"4k", Full, true},
		{"Full", Full, true}, // the contract is case-sensitive
	}
	for _, c := range cases {
		q, err := ParseQuality(c.in)
		if (err != nil) != c.wantErr || q != c.want {
			t.Fatalf("ParseQuality(%q) = %v, %v; want %v, err=%v", c.in, q, err, c.want, c.wantErr)
		}
	}
}

func TestQualitySemantics(t *testing.T) {
	for _, c := range []struct {
		q             Quality
		str           string
		preview, full bool
	}{
		{Full, "full", false, true},
		{Preview, "preview", true, false},
		{Progressive, "progressive", true, true},
	} {
		if c.q.String() != c.str {
			t.Fatalf("%v.String() = %q, want %q", c.q, c.q.String(), c.str)
		}
		if c.q.WantsPreview() != c.preview || c.q.WantsFull() != c.full {
			t.Fatalf("%v: WantsPreview=%v WantsFull=%v, want %v/%v",
				c.q, c.q.WantsPreview(), c.q.WantsFull(), c.preview, c.full)
		}
	}
}

// PreviewKey's suffixed form must be structurally unable to collide with a
// full-resolution key (64-char SHA-256 hex) and must stay a pure function
// of its inputs — journal replay re-derives it bit-identically.
func TestPreviewKeyShape(t *testing.T) {
	full := strings.Repeat("ab", 32)
	k := PreviewKey(full, 4)
	if k != full+".p4" {
		t.Fatalf("PreviewKey = %q", k)
	}
	if len(k) == len(full) {
		t.Fatal("preview key has full-key length: could alias a full entry")
	}
	if PreviewKey(full, 2) == k {
		t.Fatal("factor does not separate preview keys")
	}
	if BatchClass(3) != "preview/3" {
		t.Fatalf("BatchClass(3) = %q", BatchClass(3))
	}
}
