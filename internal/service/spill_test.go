package service

import (
	"math"
	"testing"

	"ifdk/internal/hpc/pfs"
	"ifdk/internal/volume"
)

// spillCache builds a cache with the given byte budget backed by a fresh
// in-memory PFS, the way OpenManager wires it.
func spillCache(maxBytes int64) (*Cache, *pfs.PFS) {
	store := pfs.New(pfs.Config{})
	c := NewCache(maxBytes)
	c.enableSpill(store)
	return c, store
}

// patternedEntry builds an entry whose voxels carry a recognizable pattern,
// so a spill round-trip can be checked bit-for-bit.
func patternedEntry(nx int, seed float32) *Entry {
	v := volume.New(nx, nx, nx, volume.IMajor)
	for n := range v.Data {
		v.Data[n] = seed + float32(n%251)
	}
	return &Entry{Volume: v, BytesSent: 1234, RelRMSE: 0.5, Verified: true}
}

// An entry evicted under byte pressure must be written to the PFS and come
// back bit-exact through Get, which readmits it to memory.
func TestCacheSpillOnEvictAndReadmit(t *testing.T) {
	// Budget fits one 16³ entry but not two.
	c, store := spillCache(entrySize(entryOfSize(16)) + 256)
	a := patternedEntry(16, 1)
	c.Put("a", a)
	c.Put("b", patternedEntry(16, 2)) // evicts a → spill tier

	if st := c.Stats(); st.Spills != 1 || st.SpillErrors != 0 {
		t.Fatalf("eviction did not spill exactly once: %+v", st)
	}
	if !store.Exists(spillMetaPath("a")) {
		t.Fatal("spill meta object missing from the PFS")
	}

	got, ok := c.Get("a")
	if !ok {
		t.Fatal("evicted entry not served from the spill tier")
	}
	if got.BytesSent != a.BytesSent || got.RelRMSE != a.RelRMSE || !got.Verified {
		t.Fatalf("spill dropped metadata: %+v", got)
	}
	if len(got.Volume.Data) != len(a.Volume.Data) {
		t.Fatalf("volume shape changed across spill: %d voxels", len(got.Volume.Data))
	}
	for n := range a.Volume.Data {
		if got.Volume.Data[n] != a.Volume.Data[n] {
			t.Fatalf("voxel %d differs after spill round-trip: %v != %v",
				n, got.Volume.Data[n], a.Volume.Data[n])
		}
	}
	st := c.Stats()
	if st.SpillHits != 1 {
		t.Fatalf("SpillHits = %d, want 1: %+v", st.SpillHits, st)
	}
	// The readmit displaced b; a second Get must now be a plain memory hit.
	hitsBefore := st.Hits
	if _, ok := c.Get("a"); !ok {
		t.Fatal("readmitted entry missing from memory")
	}
	st = c.Stats()
	if st.Hits != hitsBefore+1 || st.SpillHits != 1 {
		t.Fatalf("readmitted Get not served from memory: %+v", st)
	}
}

// An entry larger than the whole budget skips memory and spills directly,
// and Get still serves it (without ever readmitting it to memory).
func TestCacheOversizeEntrySpillsDirectly(t *testing.T) {
	c, store := spillCache(entrySize(entryOfSize(8)) + 1)
	big := patternedEntry(16, 3)
	c.Put("big", big)

	st := c.Stats()
	if st.Entries != 0 {
		t.Fatalf("oversize entry held in memory: %+v", st)
	}
	if st.Spills != 1 {
		t.Fatalf("oversize entry not spilled: %+v", st)
	}
	if !store.Exists(spillMetaPath("big")) {
		t.Fatal("spill meta object missing from the PFS")
	}
	got, ok := c.Get("big")
	if !ok {
		t.Fatal("oversize spilled entry not served")
	}
	if got.Volume.Data[7] != big.Volume.Data[7] {
		t.Fatal("oversize spill corrupted the payload")
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("oversize entry readmitted past the budget: %+v", st)
	}
}

// A readmitted entry already has a durable copy; evicting it again must not
// rewrite the spill objects.
func TestCacheSpilledFlagSkipsRewrite(t *testing.T) {
	c, _ := spillCache(entrySize(entryOfSize(16)) + 256)
	c.Put("a", patternedEntry(16, 1))
	c.Put("b", patternedEntry(16, 2)) // evicts a → spill #1
	if _, ok := c.Get("a"); !ok {     // spill read, readmit (evicts b → spill #2)
		t.Fatal("spill read failed")
	}
	c.Put("c", patternedEntry(16, 4)) // evicts a again — already durable
	st := c.Stats()
	if st.Spills != 2 {
		t.Fatalf("re-evicting a readmitted entry rewrote its spill: %+v", st)
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("twice-evicted entry lost despite durable copy")
	}
}

// Without a backing store, evictions drop entries — the pre-spill behaviour
// — and no spill counters move.
func TestCacheNoStoreDropsOnEvict(t *testing.T) {
	c := NewCache(entrySize(entryOfSize(16)) + 256)
	c.Put("a", patternedEntry(16, 1))
	c.Put("b", patternedEntry(16, 2))
	if _, ok := c.Get("a"); ok {
		t.Fatal("evicted entry survived without a spill store")
	}
	st := c.Stats()
	if st.Spills != 0 || st.SpillHits != 0 || st.SpillBytes != 0 {
		t.Fatalf("spill counters moved without a store: %+v", st)
	}
}

// A disabled cache must stay inert even with a store attached: Get must not
// consult the spill tier it can never have written.
func TestCacheDisabledSkipsSpillTier(t *testing.T) {
	store := pfs.New(pfs.Config{})
	c := NewCache(-1)
	c.enableSpill(store)
	c.Put("a", patternedEntry(8, 1))
	if _, ok := c.Get("a"); ok {
		t.Fatal("disabled cache served an entry")
	}
	if st := c.Stats(); st.Spills != 0 {
		t.Fatalf("disabled cache spilled: %+v", st)
	}
}

// CacheKey must refuse to hash a config it cannot canonically encode: a
// silent fallback would fork the keyspace across fleet members.
func TestCacheKeyPanicsOnNonFiniteGeometry(t *testing.T) {
	cfg := testCfg(16)
	cfg.Geometry.SAD = math.NaN()
	defer func() {
		if recover() == nil {
			t.Fatal("CacheKey accepted a non-encodable config")
		}
	}()
	CacheKey(cfg)
}
