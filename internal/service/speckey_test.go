package service

import "testing"

// SpecKey is the router's sharding key; if it ever drifts from the key
// Submit derives internally, fleet placement and per-node cache affinity
// silently break. Pin them together.
func TestSpecKeyMatchesSubmitKey(t *testing.T) {
	m := NewManager(Options{Workers: 1, CacheBytes: -1})
	defer shutdown(t, m)
	specs := []Spec{
		{},
		{Phantom: "sphere", NX: 16, NP: 96},
		{Phantom: "industrial", NX: 24, NU: 64, NP: 48, R: 2, C: 2, Window: "hann"},
		{Phantom: "shepplogan", NX: 16, Verify: true, Priority: "high", Client: "alice"},
	}
	for i, s := range specs {
		key, err := SpecKey(s)
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		v, err := m.Submit(s)
		if err != nil {
			t.Fatalf("spec %d submit: %v", i, err)
		}
		j, ok := m.job(v.ID)
		if !ok {
			t.Fatalf("spec %d: job %s vanished", i, v.ID)
		}
		if j.cacheKey != key {
			t.Errorf("spec %d: SpecKey %s != Submit's key %s", i, key, j.cacheKey)
		}
	}
	// Verify/Priority/Client must NOT shard (they do not change the
	// reconstruction), while geometry must.
	base := Spec{Phantom: "sphere", NX: 16}
	k0, _ := SpecKey(base)
	same := base
	same.Verify, same.Priority, same.Client = true, "high", "bob"
	if k1, _ := SpecKey(same); k1 != k0 {
		t.Error("verify/priority/client changed the sharding key")
	}
	diff := base
	diff.NX = 32
	if k2, _ := SpecKey(diff); k2 == k0 {
		t.Error("different geometry produced the same sharding key")
	}
	if _, err := SpecKey(Spec{Phantom: "banana"}); err == nil {
		t.Error("SpecKey accepted an invalid spec")
	}
}
