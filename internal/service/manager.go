package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ifdk/internal/core"
	"ifdk/internal/ct/fdk"
	"ifdk/internal/ct/filter"
	"ifdk/internal/ct/geometry"
	"ifdk/internal/ct/projector"
	"ifdk/internal/engine"
	"ifdk/internal/hpc/pfs"
	"ifdk/internal/obs"
	"ifdk/internal/perfmodel"
	"ifdk/internal/service/batcher"
	"ifdk/internal/service/progressive"
	"ifdk/internal/volume"
	"ifdk/pkg/api"
)

// ErrQuota is returned by Submit when the client's token bucket is empty —
// the HTTP layer translates it to 429.
var ErrQuota = errors.New("service: client quota exceeded")

// ErrWorkingSet is returned by Submit when admitting the job would push the
// estimated in-flight working set past the configured byte budget.
var ErrWorkingSet = errors.New("service: in-flight working-set budget exhausted")

// ErrAlreadyTerminal is reported by Cancel when the job is already in a
// terminal state; DELETE handlers fall through to record deletion on it.
var ErrAlreadyTerminal = errors.New("service: job already terminal")

// ErrNotFound is reported for operations on unknown job IDs.
var ErrNotFound = errors.New("service: no such job")

// Options configures a Manager.
type Options struct {
	Workers    int        // concurrent reconstructions (default 2)
	QueueCap   int        // bounded admission queue, jobs (default 4·Workers)
	CacheBytes int64      // result-cache budget in bytes (default 1 GiB, < 0 disables)
	MaxJobs    int        // retained job records; oldest terminal ones are pruned (default 1024)
	PFS        pfs.Config // simulated storage backing all jobs (zero = defaults)

	// NodeID, when set, prefixes every job ID ("b2-j00000001" instead of
	// "j00000001"), making IDs globally unique across a fleet of ifdkd
	// instances behind a front router — the router attributes any job ID to
	// its backend without a shared sequencer.
	NodeID string

	// JournalDir, when set, makes accepted jobs durable: every lifecycle
	// transition is appended to a write-ahead journal under this real
	// filesystem directory (fsynced before the submit is acked) and
	// replayed on the next start, so a crashed daemon recovers its job
	// table — terminal jobs as views, queued and mid-run jobs by
	// re-entering admission under their original public IDs. Empty
	// disables journaling (the pre-durability behaviour).
	JournalDir string

	// Cost-aware admission. Each job's runtime and working set are
	// estimated at submit time from the paper's performance model
	// (perfmodel.Estimate) and calibrated against observed runtimes.
	MaxQueuedSec     float64 // max estimated seconds of queued work (0 = unlimited)
	MaxInflightBytes int64   // max estimated bytes of in-flight working set (0 = unlimited)
	CostScale        float64 // initial model→wall-clock calibration factor (default 1)

	// Fairness. Aging is the wait after which a queued job's effective
	// priority rises one class (0 = default 15s, < 0 disables aging).
	// QuotaRPS rate-limits submissions per client id with a token bucket
	// of depth QuotaBurst (0 = no quotas; burst defaults to max(1, 2·rps)).
	Aging      time.Duration
	QuotaRPS   float64
	QuotaBurst float64

	// FilterBatchWindow enables cross-job shared filter sweeps: ranks of
	// co-resident jobs with the same (geometry, window) plan coalesce their
	// per-round filtering into one engine sweep, waiting up to this window
	// for stragglers (a full round flushes immediately). 0 disables
	// batching — every rank filters independently, the pre-batching
	// behaviour. A few hundred microseconds is a good starting point; see
	// ifdkd's -filter-batch flag.
	FilterBatchWindow time.Duration

	// EventLogCap bounds the per-job event log backing /events and
	// /stream: it is the replay window for late subscribers and
	// Last-Event-ID resumption (0 = default 1024).
	EventLogCap int

	// Logger receives the manager's structured lifecycle records (job
	// admitted / started / settled, each with job_id and trace_id fields).
	// nil discards them — library default, daemons wire obs.NewLogger.
	Logger *slog.Logger

	// TraceCap bounds the in-memory ring of finished job traces backing
	// GET /v1/jobs/{id}/trace (0 = default 256 traces of 512 spans).
	TraceCap int

	// PreviewWorkers bounds the goroutines a preview build may use
	// (0 = GOMAXPROCS). Previews are the cheap interactive tier; capping
	// their parallelism keeps a burst of them from starving the engine
	// slots full-resolution rounds are running on. See ifdkd's
	// -preview-workers flag.
	PreviewWorkers int

	// testOnSlice, when non-nil, runs synchronously on the publishing
	// row-root goroutine after each slice event, while the job is still
	// mid-epilogue. Tests block here to observe the service with a slice
	// published but the job provably still running.
	testOnSlice func(job string, z int)

	// testOnPreview, when non-nil, runs synchronously on the worker
	// goroutine after the preview event is published, before a progressive
	// job's full-resolution pipeline starts. Tests block here to observe
	// the service with a preview available but zero full-resolution rounds
	// completed.
	testOnPreview func(job string, factor int)
}

func (o Options) withDefaults() Options {
	if o.Workers < 1 {
		o.Workers = 2
	}
	if o.QueueCap < 1 {
		o.QueueCap = 4 * o.Workers
	}
	if o.CacheBytes == 0 {
		o.CacheBytes = 1 << 30
	}
	if o.MaxJobs < 1 {
		o.MaxJobs = 1024
	}
	if o.CostScale <= 0 {
		o.CostScale = 1
	}
	switch {
	case o.Aging == 0:
		o.Aging = 15 * time.Second
	case o.Aging < 0:
		o.Aging = 0 // aging disabled
	}
	if o.QuotaRPS > 0 && o.QuotaBurst <= 0 {
		o.QuotaBurst = math.Max(1, 2*o.QuotaRPS)
	}
	return o
}

// Manager is the reconstruction service: it owns the job table, the
// cost-aware priority queue, the worker pool, the shared PFS namespace tree
// and the result cache. One Manager serves many concurrent clients.
//
// Namespace layout inside the shared PFS:
//
//	ds/<hash>/proj_*      staged projection datasets, content-addressed and
//	                      shared by all jobs with identical scans
//	jobs/<id>/out/slice_* per-job output slices (each job's own namespace)
type Manager struct {
	opt    Options
	store  *pfs.PFS
	queue  *Queue
	cache  *Cache
	events *Bus

	mu            sync.Mutex
	jobs          map[string]*Job
	order         []string // submission order, for List
	seq           int64
	open          bool
	inflightBytes int64 // sum of charged jobs' estBytes (queued + running)
	chargedJobs   int   // jobs currently holding an admission charge

	costMu    sync.Mutex
	costScale float64 // EWMA of observed wall seconds per model second

	quotaMu sync.Mutex
	quota   map[string]*tokenBucket

	waitMu      sync.Mutex
	waits       [numPriorities][]float64 // ring of recent queue waits, seconds
	waitNext    [numPriorities]int
	waitCounts  [numPriorities]int64
	waitSamples int // ring capacity

	stageMu sync.Mutex
	staged  map[string]*stageState

	wg      sync.WaitGroup
	busy    atomic.Int64
	started time.Time

	// journal is the write-ahead job journal (nil when Options.JournalDir
	// is empty); crashed marks a simulated kill -9 (tests), after which
	// workers abandon whatever they pop instead of running it.
	journal *journal
	crashed atomic.Bool

	// Observability plane: the counters the hot paths bump live inside the
	// metrics registry (met), so the JSON /v1/metrics snapshot and the
	// Prometheus exposition at GET /metrics read the same cells; tracer
	// retains finished job traces and log carries structured lifecycle
	// records.
	met    *metricsSet
	tracer *obs.Tracer
	log    *slog.Logger

	// batch, when non-nil, coalesces co-resident jobs' filtering into
	// shared sweeps (Options.FilterBatchWindow > 0).
	batch *batcher.Pool
}

type stageState struct {
	done chan struct{}
	err  error
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

// NewManager starts a manager with opt.Workers worker goroutines. It is
// OpenManager with the error path folded into a panic — construction
// cannot fail unless Options.JournalDir is set, where opening or replaying
// the write-ahead journal can; daemons that journal use OpenManager.
func NewManager(opt Options) *Manager {
	m, err := OpenManager(opt)
	if err != nil {
		panic(err)
	}
	return m
}

// OpenManager starts a manager with opt.Workers worker goroutines,
// replaying the write-ahead journal first when Options.JournalDir is set:
// recovered jobs are in the table (and the queue) before the first worker
// or HTTP request sees the manager.
func OpenManager(opt Options) (*Manager, error) {
	opt = opt.withDefaults()
	m := &Manager{
		opt:         opt,
		store:       pfs.New(opt.PFS),
		queue:       NewQueue(opt.QueueCap, opt.MaxQueuedSec, opt.Aging),
		cache:       NewCache(opt.CacheBytes),
		events:      NewBus(opt.EventLogCap),
		jobs:        make(map[string]*Job),
		costScale:   opt.CostScale,
		quota:       make(map[string]*tokenBucket),
		waitSamples: 512,
		staged:      make(map[string]*stageState),
		open:        true,
		started:     time.Now(),
		tracer:      obs.NewTracer(opt.TraceCap, 0),
		log:         opt.Logger,
	}
	if m.log == nil {
		m.log = obs.NopLogger()
	}
	m.met = newMetricsSet(m)
	if opt.FilterBatchWindow > 0 {
		m.batch = batcher.New(batcher.Options{
			Window: opt.FilterBatchWindow,
			OnSweep: func(batch int) {
				m.met.filterSweeps.Inc()
				m.met.filterBatchedProj.Add(int64(batch))
				m.met.filterBatchSize.Observe(float64(batch))
			},
		})
	}
	m.cache.enableSpill(m.store)
	if opt.JournalDir != "" {
		jn, recovered, maxSeq, err := openJournal(opt.JournalDir)
		if err != nil {
			return nil, err
		}
		m.journal = jn
		m.seq = maxSeq
		m.recoverJobs(recovered)
	}
	for i := 0; i < opt.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m, nil
}

// jAppend writes one journal record when journaling is on. Worker-side
// appends (start/terminal/delete) are best-effort: a failure is logged and
// counted, never fatal — the job's in-memory lifecycle proceeds and the
// worst case on a later replay is rerunning finished deterministic work.
// The submit path checks the error itself (fsync-before-ack).
func (m *Manager) jAppend(rec journalRecord) error {
	if m.journal == nil {
		return nil
	}
	err := m.journal.append(rec)
	switch {
	case err == nil:
		m.met.journalRecords.With(rec.T).Inc()
	case errors.Is(err, errJournalClosed):
		// Shutdown or simulated kill: the process is "gone"; drop silently.
	default:
		m.met.journalErrors.Inc()
		m.log.Error("journal append failed", "type", rec.T, "job_id", rec.ID, "err", err.Error())
	}
	return err
}

// recoverJobs readmits the journal's merged recovery set. Terminal jobs
// come back as metadata-only views (their volumes lived in the in-process
// PFS and cache, which a crash destroys; resubmitting the same spec
// re-derives them bit-exactly). Non-terminal jobs — queued or mid-run at
// the crash — re-enter the queue under their original public IDs.
func (m *Manager) recoverJobs(jobs []recoveredJob) {
	for i := range jobs {
		if err := m.recoverJob(&jobs[i]); err != nil {
			m.met.journalErrors.Inc()
			m.log.Error("journal replay: job not recovered", "job_id", jobs[i].ID, "err", err.Error())
		}
	}
}

func (m *Manager) recoverJob(r *recoveredJob) error {
	rs, err := resolveSpec(r.Spec)
	if err != nil {
		return err
	}
	est, err := m.estimate(rs)
	if err != nil {
		return err
	}
	j := &Job{
		ID:          r.ID,
		Spec:        rs.spec,
		Priority:    rs.prio,
		state:       StateQueued,
		submitted:   r.Submitted,
		ph:          rs.ph,
		cfg:         rs.cfg,
		cacheKey:    rs.key,
		qual:        rs.qual,
		plan:        rs.plan,
		previewKey:  rs.prevKey,
		estModelSec: est.RunSec,
		estCost:     est.RunSec * m.scaleNow(),
		estBytes:    est.WorkingSetBytes,
		traceID:     r.TraceID,
		parentSpan:  r.ParentSpan,
		recovered:   true,
	}
	if j.submitted.IsZero() {
		j.submitted = time.Now()
	}
	if j.traceID == "" {
		j.traceID = obs.NewTraceID()
	}
	m.mu.Lock()
	m.jobs[j.ID] = j
	m.order = append(m.order, j.ID)
	m.mu.Unlock()
	if r.State.Terminal() {
		j.mu.Lock()
		j.state = r.State
		j.err = r.Error
		j.cacheHit = r.CacheHit
		j.verified = r.Verified
		j.relRMSE = r.RelRMSE
		j.times = stagesToTimes(r.Stages)
		j.started = r.Started
		j.finished = r.Finished
		if j.finished.IsZero() {
			j.finished = j.submitted
		}
		j.mu.Unlock()
		m.events.Publish(j.ID, Event{Type: EventQueued, State: StateQueued})
		m.publishTerminal(j.ID, terminalEvent(r.State, r.Error))
		m.met.recovered.With("terminal").Inc()
		return nil
	}
	// Re-enter admission under the original ID, bypassing the capacity and
	// cost budgets: this job was admitted once already and must not be lost
	// to a transiently smaller or busier queue.
	j.charged = true
	m.mu.Lock()
	m.inflightBytes += j.estBytes
	m.chargedJobs++
	m.mu.Unlock()
	m.events.Publish(j.ID, Event{Type: EventQueued, State: StateQueued})
	m.queue.forcePush(j)
	m.met.recovered.With("requeued").Inc()
	m.log.Info("job recovered from journal", "job_id", j.ID, "trace_id", j.traceID,
		"priority", rs.prio.String(), "quality", rs.qual.String())
	return nil
}

// terminalEvent maps a terminal state to its bus event.
func terminalEvent(st State, errStr string) Event {
	switch st {
	case StateFailed:
		return Event{Type: EventFailed, State: StateFailed, Error: errStr}
	case StateCancelled:
		return Event{Type: EventCancelled, State: StateCancelled, Error: errStr}
	default:
		return Event{Type: EventDone, State: StateDone}
	}
}

// Store exposes the backing PFS (tests and tooling).
func (m *Manager) Store() *pfs.PFS { return m.store }

// Events exposes the per-job event bus backing /events and /stream.
func (m *Manager) Events() *Bus { return m.events }

// Registry exposes the metrics registry backing both GET /metrics (text
// exposition) and the JSON /v1/metrics snapshot.
func (m *Manager) Registry() *obs.Registry { return m.met.reg }

// job returns the live job record for id.
func (m *Manager) job(id string) (*Job, bool) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	return j, ok
}

// subscribe attaches a consumer to a job's event stream, replaying retained
// events with Seq > after. It owns the subscribe/DELETE race: Subscribe can
// recreate a topic a concurrent Delete just dropped, so the job table is
// re-checked afterwards and the stray topic dropped again — deleted jobs
// must never leak topics. Callers must Close the subscription.
func (m *Manager) subscribe(id string, after int64) (*Subscription, error) {
	sub := m.events.Subscribe(id, after)
	if _, ok := m.job(id); !ok {
		sub.Close()
		m.events.Drop(id)
		return nil, fmt.Errorf("job %q: %w", id, ErrNotFound)
	}
	return sub, nil
}

// publishTerminal publishes an event for a job that is (or just became)
// terminal. Terminal jobs are deletable, and a concurrent Delete's
// Bus.Drop could interleave with this publish and have the topic silently
// recreated; re-checking the job table afterwards closes that window so
// deleted jobs never leak topics.
func (m *Manager) publishTerminal(id string, e Event) {
	m.events.Publish(id, e)
	if _, ok := m.job(id); !ok {
		m.events.Drop(id)
	}
}

// datasetPrefix content-addresses the staged scan of a spec: jobs with the
// same phantom and geometry share one projection set on the PFS.
func datasetPrefix(spec Spec, cfg core.Config) string {
	probe := core.Config{Geometry: cfg.Geometry}
	probe.InputPrefix = spec.Phantom // fold the phantom into the hash
	return "ds/" + CacheKey(probe)[:16]
}

// takeToken charges one submission against the client's token bucket and
// reports whether it fit. Buckets refill at QuotaRPS tokens/s up to
// QuotaBurst; a client unseen for long enough simply finds a full bucket.
func (m *Manager) takeToken(client string) bool {
	if m.opt.QuotaRPS <= 0 {
		return true
	}
	now := time.Now()
	m.quotaMu.Lock()
	defer m.quotaMu.Unlock()
	b, ok := m.quota[client]
	if !ok {
		// Bound the table: drop buckets that have refilled to the brim
		// (they are indistinguishable from fresh ones).
		if len(m.quota) >= 4096 {
			for id, old := range m.quota {
				if now.Sub(old.last).Seconds()*m.opt.QuotaRPS >= m.opt.QuotaBurst {
					delete(m.quota, id)
				}
			}
		}
		b = &tokenBucket{tokens: m.opt.QuotaBurst, last: now}
		m.quota[client] = b
	}
	b.tokens = math.Min(m.opt.QuotaBurst, b.tokens+now.Sub(b.last).Seconds()*m.opt.QuotaRPS)
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// estimate prices a resolved spec for admission, per quality tier: full
// jobs cost the Sec. 4.2 model estimate as before; preview jobs cost only
// their decimated problem (the cheap admission class — a preview never
// charges the queue or byte budget for work it will not do); progressive
// jobs cost both tiers.
func (m *Manager) estimate(rs resolvedSpec) (perfmodel.Cost, error) {
	switch rs.qual {
	case progressive.Preview:
		return perfmodel.EstimatePreview(rs.cfg, rs.plan.Coarse, rs.plan.Factor)
	case progressive.Progressive:
		return perfmodel.EstimateProgressive(rs.cfg, rs.plan.Coarse, rs.plan.Factor)
	default:
		return perfmodel.Estimate(rs.cfg)
	}
}

// scaleNow returns the current model→wall-clock calibration factor.
func (m *Manager) scaleNow() float64 {
	m.costMu.Lock()
	defer m.costMu.Unlock()
	return m.costScale
}

// observeRuntime folds one completed run's observed wall-clock/model ratio
// into the calibration EWMA, so cost estimates converge to this machine's
// actual throughput instead of the paper's testbed constants.
func (m *Manager) observeRuntime(modelSec, wallSec float64) {
	if modelSec <= 0 || wallSec <= 0 {
		return
	}
	ratio := wallSec / modelSec
	m.costMu.Lock()
	m.costScale = 0.75*m.costScale + 0.25*ratio
	m.costMu.Unlock()
}

// recordWait adds one queue-wait observation for a priority class: the
// percentile ring behind /v1/metrics and the exposition histogram.
func (m *Manager) recordWait(p Priority, d time.Duration) {
	sec := d.Seconds()
	m.met.queueWait.With(p.String()).Observe(sec)
	m.waitMu.Lock()
	defer m.waitMu.Unlock()
	if len(m.waits[p]) < m.waitSamples {
		m.waits[p] = append(m.waits[p], sec)
	} else {
		m.waits[p][m.waitNext[p]] = sec
		m.waitNext[p] = (m.waitNext[p] + 1) % m.waitSamples
	}
	m.waitCounts[p]++
}

// settle releases a job's admission charge (working-set bytes) exactly
// once, when the job reaches a terminal state.
func (m *Manager) settle(j *Job) {
	j.mu.Lock()
	release := j.charged && !j.settled
	j.settled = true
	j.mu.Unlock()
	if !release {
		return
	}
	m.mu.Lock()
	m.inflightBytes -= j.estBytes
	m.chargedJobs--
	if m.chargedJobs == 0 {
		m.inflightBytes = 0 // clamp drift
	}
	m.mu.Unlock()
}

// Submit validates and admits a job. A result-cache hit completes the job
// instantly; otherwise the job is admitted against the queue capacity, the
// queued-work cost budget and the in-flight working-set budget (ErrQueueFull
// / ErrCostBudget / ErrWorkingSet — callers should retry with backoff) and
// against the client's rate quota (ErrQuota).
func (m *Manager) Submit(spec Spec) (View, error) {
	return m.SubmitWithTrace(spec, "")
}

// SubmitWithTrace is Submit carrying the caller's W3C traceparent header
// value: a parseable header makes the job a child of the caller's trace
// (one trace ID from SDK through router to backend); anything else mints a
// fresh trace so every job is traceable regardless of the caller.
func (m *Manager) SubmitWithTrace(spec Spec, traceparent string) (View, error) {
	traceID, parentSpan, tpErr := api.ParseTraceParent(traceparent)
	if tpErr != nil {
		traceID, parentSpan = obs.NewTraceID(), ""
	}
	rs, err := resolveSpec(spec)
	if err != nil {
		return View{}, err
	}
	spec = rs.spec
	if !m.takeToken(spec.Client) {
		m.met.rejectedQuota.Inc()
		m.log.Warn("job rejected", "reason", "quota", "client", spec.Client, "trace_id", traceID)
		return View{}, fmt.Errorf("client %q: %w", spec.Client, ErrQuota)
	}
	est, err := m.estimate(rs)
	if err != nil {
		return View{}, err
	}

	m.mu.Lock()
	if !m.open {
		m.mu.Unlock()
		return View{}, ErrClosed
	}
	m.seq++
	id := fmt.Sprintf("j%08d", m.seq)
	if m.opt.NodeID != "" {
		id = m.opt.NodeID + "-" + id
	}
	j := &Job{
		ID:          id,
		Spec:        spec,
		Priority:    rs.prio,
		state:       StateQueued,
		submitted:   time.Now(),
		ph:          rs.ph,
		cfg:         rs.cfg,
		cacheKey:    rs.key,
		qual:        rs.qual,
		plan:        rs.plan,
		previewKey:  rs.prevKey,
		estModelSec: est.RunSec,
		estCost:     est.RunSec * m.scaleNow(),
		estBytes:    est.WorkingSetBytes,
		traceID:     traceID,
		parentSpan:  parentSpan,
	}
	// A cached entry only satisfies a verify request if the run that
	// produced it was itself verified; otherwise the job runs (and its
	// verified entry replaces the cached one). The lookup key is quality-
	// aware (rs.key): a preview job hits only preview entries, and a
	// progressive job hitting its full-resolution entry completes outright —
	// the refined volume already exists, so no preview tier is owed.
	if e, ok := m.cache.Get(rs.key); ok && (!spec.Verify || e.Verified) {
		j.state = StateDone
		j.cacheHit = true
		j.finished = j.submitted
		j.times = e.Times
		j.relRMSE = e.RelRMSE
		j.verified = e.Verified
		j.result = e
		m.jobs[j.ID] = j
		m.order = append(m.order, j.ID)
		m.met.cacheHits.Inc()
		pruned := m.pruneLocked()
		m.mu.Unlock()
		// A cache hit still gets a (degenerate) event stream and trace, so
		// streaming clients see a uniform lifecycle regardless of where the
		// volume came from.
		m.events.Publish(j.ID, Event{Type: EventQueued, State: StateQueued})
		m.publishTrace(j)
		m.publishTerminal(j.ID, Event{Type: EventDone, State: StateDone})
		m.scrub(pruned)
		// Journal the hit as an already-terminal job (best-effort: the view
		// below hands the client everything; durability only affects whether
		// a restarted daemon still shows this ID).
		_ = m.jAppend(j.submitRecord())
		_ = m.jAppend(j.terminalRecord())
		m.log.Info("job served from cache", "job_id", j.ID, "trace_id", traceID, "client", spec.Client)
		return j.snapshot(), nil
	}
	if m.opt.MaxInflightBytes > 0 && m.chargedJobs > 0 &&
		m.inflightBytes+j.estBytes > m.opt.MaxInflightBytes {
		m.mu.Unlock()
		m.met.rejectedBytes.Inc()
		m.log.Warn("job rejected", "reason", "working_set", "trace_id", traceID,
			"est_bytes", j.estBytes)
		return View{}, fmt.Errorf("job needs ~%d MiB against %d MiB in flight: %w",
			j.estBytes>>20, m.opt.MaxInflightBytes>>20, ErrWorkingSet)
	}
	// Publish the queued event BEFORE Push makes the job poppable: a worker
	// can pick it up instantly, and its started event must sequence after
	// queued. Mark the charge first for the same reason: once the job is in
	// the queue a worker can pop, finish and settle it, and settle must find
	// charged == true or the byte accounting leaks for good.
	m.events.Publish(j.ID, Event{Type: EventQueued, State: StateQueued})
	j.charged = true
	if err := m.queue.Push(j); err != nil {
		j.charged = false
		m.mu.Unlock()
		m.events.Drop(j.ID) // never admitted: no stream to replay
		reason := "queue_full"
		switch {
		case errors.Is(err, ErrQueueFull):
			m.met.rejectedFull.Inc()
		case errors.Is(err, ErrCostBudget):
			m.met.rejectedCost.Inc()
			reason = "cost_budget"
		}
		m.log.Warn("job rejected", "reason", reason, "trace_id", traceID)
		return View{}, err
	}
	m.inflightBytes += j.estBytes
	m.chargedJobs++
	m.jobs[j.ID] = j
	m.order = append(m.order, j.ID)
	m.met.admitted.Inc()
	pruned := m.pruneLocked()
	m.mu.Unlock()
	m.scrub(pruned)
	// fsync-before-ack: the submit record must be durable before the client
	// hears "accepted". On append failure the admission is compensated with
	// a best-effort cancel (a worker may already be running the job) and the
	// client gets an error to retry — an unjournaled accepted job would be
	// silently lost by the next restart, which is the one lie the journal
	// exists to prevent.
	if err := m.jAppend(j.submitRecord()); err != nil {
		_ = m.Cancel(j.ID)
		return View{}, fmt.Errorf("service: job not durable: %w", err)
	}
	m.log.Info("job admitted", "job_id", j.ID, "trace_id", traceID,
		"client", spec.Client, "priority", rs.prio.String(), "quality", rs.qual.String(),
		"est_cost_sec", j.estCost)
	return j.snapshot(), nil
}

// pruneLocked evicts the oldest terminal job records beyond MaxJobs so a
// long-lived daemon's job table stays bounded; callers must hold m.mu and
// pass the returned IDs to scrub. Live jobs are never pruned.
func (m *Manager) pruneLocked() []string {
	var pruned []string
	for i := 0; len(m.order) > m.opt.MaxJobs && i < len(m.order)-1; {
		id := m.order[i]
		j, ok := m.jobs[id]
		if ok && !j.State().Terminal() {
			i++
			continue
		}
		delete(m.jobs, id)
		m.order = append(m.order[:i], m.order[i+1:]...)
		pruned = append(pruned, id)
	}
	return pruned
}

// scrub deletes pruned jobs' output namespaces from the PFS, their event
// streams from the bus, their traces from the ring and their journal
// presence (a delete record now, physically dropped at the next boot
// compaction).
func (m *Manager) scrub(ids []string) {
	for _, id := range ids {
		m.events.Drop(id)
		m.tracer.Drop(id)
		for _, path := range m.store.List("jobs/" + id + "/") {
			m.store.Delete(path)
		}
		_ = m.jAppend(journalRecord{T: recDelete, ID: id})
	}
}

// Get returns a job's current view.
func (m *Manager) Get(id string) (View, bool) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return View{}, false
	}
	return j.snapshot(), true
}

// resultFor returns a job's terminal result entry, falling through to the
// cache — and through it to the PFS spill tier — when the job record does
// not hold one itself (a done job readmitted from spill, or one whose
// entry another path dropped). nil when no result is reachable.
func (m *Manager) resultFor(j *Job) *Entry {
	if e := j.Result(); e != nil {
		return e
	}
	if j.State() != StateDone {
		return nil
	}
	if e, ok := m.cache.Get(j.cacheKey); ok {
		return e
	}
	return nil
}

// Volume returns a done job's reconstructed volume.
func (m *Manager) Volume(id string) (*volume.Volume, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("job %q: %w", id, ErrNotFound)
	}
	e := m.resultFor(j)
	if e == nil || e.Volume == nil {
		return nil, fmt.Errorf("service: job %s has no result (state %s)", id, j.State())
	}
	return e.Volume, nil
}

// List returns all jobs in submission order.
func (m *Manager) List() []View {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		if j, ok := m.jobs[id]; ok {
			jobs = append(jobs, j)
		}
	}
	m.mu.Unlock()
	out := make([]View, len(jobs))
	for i, j := range jobs {
		out[i] = j.snapshot()
	}
	return out
}

// Cancel stops a job: a queued job is withdrawn immediately, a running job
// has its context cancelled (the MPI world aborts and the pipeline drains).
// Cancelling a job that already reached a terminal state reports
// ErrAlreadyTerminal.
func (m *Manager) Cancel(id string) error {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("job %q: %w", id, ErrNotFound)
	}
	j.mu.Lock()
	switch j.state {
	case StateQueued:
		j.state = StateCancelled
		j.finished = time.Now()
		j.mu.Unlock()
		m.queue.Remove(id) // best-effort: a worker may have popped it already
		m.met.cancelled.Inc()
		m.publishTrace(j)
		m.publishTerminal(id, Event{Type: EventCancelled, State: StateCancelled, Error: "cancelled while queued"})
		m.settle(j)
		_ = m.jAppend(j.terminalRecord())
		m.log.Info("job cancelled while queued", "job_id", id, "trace_id", j.traceID)
		return nil
	case StateRunning:
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return nil
	default:
		st := j.state
		j.mu.Unlock()
		return fmt.Errorf("job %s is %s: %w", id, st, ErrAlreadyTerminal)
	}
}

// Delete removes a terminal job's record and its output namespace from the
// PFS. Cached results survive (they may serve future submissions).
func (m *Manager) Delete(id string) error {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if ok && !j.State().Terminal() {
		m.mu.Unlock()
		return fmt.Errorf("service: job %s is not terminal; cancel it first", id)
	}
	if ok {
		delete(m.jobs, id)
		for i, oid := range m.order {
			if oid == id {
				m.order = append(m.order[:i], m.order[i+1:]...)
				break
			}
		}
	}
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("job %q: %w", id, ErrNotFound)
	}
	m.events.Drop(id)
	m.tracer.Drop(id)
	for _, path := range m.store.List("jobs/" + id + "/") {
		m.store.Delete(path)
	}
	_ = m.jAppend(journalRecord{T: recDelete, ID: id})
	return nil
}

// worker is one slot of the pool: it pops jobs until the queue is closed
// and drained.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		j, ok := m.queue.Pop()
		if !ok {
			return
		}
		if m.crashed.Load() {
			continue // simulated kill -9: abandon the pop, run nothing
		}
		// Re-check terminal state after the pop: Cancel's queue.Remove is
		// best-effort and loses the race against a concurrent Pop, so a job
		// the client was just told is cancelled can surface here. runJob
		// re-checks under j.mu too; this early skip keeps the worker from
		// even charging the busy gauge for a corpse.
		if j.State().Terminal() {
			continue
		}
		m.runJob(j)
	}
}

// runJob drives one job through running → terminal.
func (m *Manager) runJob(j *Job) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	j.mu.Lock()
	if j.state != StateQueued { // cancelled between Pop and here
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	j.cancel = cancel
	waited := j.started.Sub(j.submitted)
	j.mu.Unlock()
	m.recordWait(j.Priority, waited)
	m.events.Publish(j.ID, Event{Type: EventStarted, State: StateRunning})
	_ = m.jAppend(j.startRecord())
	m.log.Info("job started", "job_id", j.ID, "trace_id", j.traceID,
		"wait_sec", waited.Seconds())

	m.busy.Add(1)
	entry, err := m.execute(ctx, j)
	m.busy.Add(-1)

	j.mu.Lock()
	j.finished = time.Now()
	j.cancel = nil
	terminal := Event{Type: EventDone, State: StateDone}
	switch {
	case err == nil:
		j.state = StateDone
		j.result = entry
		j.times = entry.Times
		j.relRMSE = entry.RelRMSE
		j.verified = entry.Verified
		m.met.completed.Inc()
	case ctx.Err() != nil:
		j.state = StateCancelled
		j.err = err.Error()
		m.met.cancelled.Inc()
		terminal = Event{Type: EventCancelled, State: StateCancelled, Error: j.err}
	default:
		j.state = StateFailed
		j.err = err.Error()
		m.met.failed.Inc()
		terminal = Event{Type: EventFailed, State: StateFailed, Error: j.err}
	}
	state, runSec := j.state, j.finished.Sub(j.started).Seconds()
	j.mu.Unlock()
	m.publishTrace(j)
	m.publishTerminal(j.ID, terminal)
	m.settle(j)
	_ = m.jAppend(j.terminalRecord())
	switch {
	case err == nil:
		m.met.observeStages(stagesOf(entry.Times))
		m.log.Info("job finished", "job_id", j.ID, "trace_id", j.traceID,
			"state", string(state), "run_sec", runSec)
	default:
		m.log.Error("job settled with error", "job_id", j.ID, "trace_id", j.traceID,
			"state", string(state), "run_sec", runSec, "err", err.Error())
	}
	if err == nil {
		// Calibrate against the pipeline's own stage clock (max over
		// ranks), not submit-to-finish wall time: staging is paid only by
		// the first job per dataset and verification doubles the compute,
		// so folding either into the EWMA would inflate every later
		// estimate and shed work the budget actually had room for.
		m.observeRuntime(j.estModelSec, entry.Times.Total.Seconds())
		m.cache.Put(j.cacheKey, entry)
	}
}

// execute stages the dataset (once per content hash), runs the distributed
// reconstruction under the job's context, and optionally verifies the
// volume against the serial FDK reference.
func (m *Manager) execute(ctx context.Context, j *Job) (*Entry, error) {
	j.mu.Lock()
	j.tStage0 = time.Now()
	j.mu.Unlock()
	if err := m.stageDataset(ctx, j); err != nil {
		return nil, err
	}
	now := time.Now()
	j.mu.Lock()
	j.tStage1, j.tRun0 = now, now
	j.mu.Unlock()
	// The preview tier runs first, from the same staged dataset the full
	// pipeline will read: for preview-quality jobs it IS the job; for
	// progressive jobs it is streamed (EventPreview, the leading stream
	// parts) before the first full-resolution round completes.
	if j.qual.WantsPreview() {
		pe, err := m.buildPreview(ctx, j)
		if err != nil {
			return nil, err
		}
		if j.qual == progressive.Preview {
			if j.Spec.Verify {
				// Verify a copy: pe may be the live cached entry, and the
				// verification fields must not mutate under concurrent
				// readers. runJob's Put replaces the cache entry with the
				// verified copy.
				ve := *pe
				pe = &ve
				if err := m.verifyPreview(ctx, j, pe); err != nil {
					return nil, fmt.Errorf("verification: %w", err)
				}
			}
			return pe, nil
		}
	}
	cfg := j.cfg
	cfg.OutputPrefix = j.outPrefix()
	// Route every rank's filter thread through the shared-sweep batcher when
	// cross-job coalescing is on: co-resident jobs (and this job's own ranks)
	// with the same plan filter in joint engine sweeps.
	if m.batch != nil {
		pool := m.batch
		cfg.NewRowFilter = func(g geometry.Params, win filter.Window) (core.RowFilter, error) {
			return pool.Join(g, win)
		}
	}
	// Per-round filter/AllGather timings feed the job's trace spans; the
	// buffers are pre-sized per rank, so the compute plane stays
	// allocation-free in steady state.
	cfg.CollectRounds = true
	cfg.Progress = func(done, total int) {
		j.mu.Lock()
		j.done, j.total = done, total
		j.mu.Unlock()
		m.events.Publish(j.ID, Event{Type: EventRound, Done: done, Total: total})
	}
	// Publish each slice the moment its row root lands it on the PFS: the
	// event precedes the epilogue's next write, so by the time a streaming
	// client reacts the payload is durably readable.
	cfg.SliceWritten = func(z, written, total int) {
		m.events.Publish(j.ID, Event{Type: EventSlice, Z: z, Written: written, Total: total})
		if m.opt.testOnSlice != nil {
			m.opt.testOnSlice(j.ID, z)
		}
	}
	res, err := core.RunContext(ctx, cfg, m.store)
	if err != nil {
		return nil, err
	}
	if len(res.Rounds) > 0 {
		j.mu.Lock()
		j.rounds = res.Rounds[0] // rank 0's clock stands in for the grid
		j.mu.Unlock()
	}
	entry := &Entry{Volume: res.Volume, Times: res.Max, BytesSent: res.BytesSent}
	if j.Spec.Verify {
		j.mu.Lock()
		j.tVerify0 = time.Now()
		j.mu.Unlock()
		if err := m.verifyAgainstSerial(ctx, j, entry); err != nil {
			return nil, fmt.Errorf("verification: %w", err)
		}
		j.mu.Lock()
		j.tVerify1 = time.Now()
		j.mu.Unlock()
	}
	return entry, nil
}

// stageDataset synthesizes and stores the projections for a job's scan,
// deduplicated across jobs by content hash (single-flight). The leader
// stages under its own job's context, checking it between projections, so
// a cancelled job (or a shutdown) stops synthesizing and writing mid-scan;
// a partial dataset is deleted and the single-flight slot is released. A
// follower whose leader was cancelled retries as the new leader, so one
// cancelled job never poisons the dataset for the jobs waiting on it.
func (m *Manager) stageDataset(ctx context.Context, j *Job) error {
	key := j.cfg.InputPrefix
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		m.stageMu.Lock()
		st, ok := m.staged[key]
		if !ok {
			st = &stageState{done: make(chan struct{})}
			m.staged[key] = st
			m.stageMu.Unlock()
			st.err = m.renderAndStage(ctx, j, key)
			if st.err != nil { // allow a later job to retry
				for _, path := range m.store.List(key + "/") {
					m.store.Delete(path) // no one may read a partial scan
				}
				m.stageMu.Lock()
				delete(m.staged, key)
				m.stageMu.Unlock()
			}
			close(st.done)
			return st.err
		}
		m.stageMu.Unlock()
		select {
		case <-st.done:
			if st.err != nil && errors.Is(st.err, context.Canceled) && ctx.Err() == nil {
				continue // the leader was cancelled, we were not: take over
			}
			return st.err
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// renderAndStage synthesizes the scan's projections and writes them to the
// PFS, honouring ctx between projections in both phases.
func (m *Manager) renderAndStage(ctx context.Context, j *Job, key string) error {
	proj, err := projector.AnalyticAllCtx(ctx, j.ph, j.cfg.Geometry, 0)
	if err != nil {
		return err
	}
	return core.StageProjectionsCtx(ctx, m.store, key, proj)
}

// verifyAgainstSerial recomputes the volume with the serial FDK pipeline
// and records the relative RMSE (the paper's < 1e-5 equivalence check).
// The working set — the staged projections and the reference volume — is
// transient, so all of it cycles through the engine pools; only the
// client-facing result volume in the Entry stays unpooled (it escapes to
// the cache and HTTP handlers).
func (m *Manager) verifyAgainstSerial(ctx context.Context, j *Job, e *Entry) error {
	g := j.cfg.Geometry
	proj := make([]*volume.Image, g.Np)
	release := func() {
		for _, img := range proj {
			engine.Images.Release(img) // nil-safe
		}
	}
	defer release()
	for s := range proj {
		if err := ctx.Err(); err != nil {
			return err
		}
		img := engine.Images.Acquire(g.Nu, g.Nv)
		if _, err := m.store.ReadProjectionInto(img, j.cfg.InputPrefix, s); err != nil {
			engine.Images.Release(img)
			return err
		}
		proj[s] = img
	}
	// ref is a fresh allocation owned by fdk.Reconstruct's caller, not a
	// pooled buffer: it is dropped as garbage, never Released — releasing
	// a foreign buffer would corrupt the pools' footprint accounting.
	ref, err := fdk.Reconstruct(g, proj, fdk.Config{Window: j.cfg.Window})
	if err != nil {
		return err
	}
	rmse, err := volume.RMSE(ref, e.Volume)
	if err != nil {
		return err
	}
	s := ref.Summarize()
	scale := math.Max(math.Abs(float64(s.Min)), math.Abs(float64(s.Max)))
	if scale > 0 {
		rmse /= scale
	}
	e.RelRMSE = rmse
	e.Verified = true
	return nil
}

// The Metrics, AdmissionStats and WaitStats wire types live in pkg/api (see
// wire.go).

// waitStats snapshots the per-class wait percentiles.
func (m *Manager) waitStats() map[string]WaitStats {
	out := make(map[string]WaitStats, numPriorities)
	m.waitMu.Lock()
	defer m.waitMu.Unlock()
	for p := Priority(0); p < numPriorities; p++ {
		if m.waitCounts[p] == 0 {
			continue
		}
		s := append([]float64(nil), m.waits[p]...)
		sort.Float64s(s)
		pct := func(q float64) float64 { return s[int(q*float64(len(s)-1))] }
		out[p.String()] = WaitStats{Count: m.waitCounts[p], P50: pct(0.50), P90: pct(0.90), P99: pct(0.99)}
	}
	return out
}

// Metrics returns a snapshot of queue, pool, cache and storage counters.
func (m *Manager) Metrics() Metrics {
	states := map[string]int{}
	m.mu.Lock()
	for _, j := range m.jobs {
		states[string(j.State())]++
	}
	inflight := m.inflightBytes
	m.mu.Unlock()
	up := time.Since(m.started).Seconds()
	done := m.met.completed.Value()
	ps := m.store.Stats()
	mt := Metrics{
		UptimeSec:     up,
		Workers:       m.opt.Workers,
		BusyWorkers:   int(m.busy.Load()),
		QueueDepth:    m.queue.Len(),
		QueueCap:      m.queue.Cap(),
		QueueCostSec:  m.queue.CostSec(),
		MaxQueuedSec:  m.queue.MaxCostSec(),
		InflightBytes: inflight,
		MaxInflight:   m.opt.MaxInflightBytes,
		PoolBytes:     engine.InUseBytes(),
		CostScale:     m.scaleNow(),
		Jobs:          states,
		Completed:     done,
		CacheHits:     m.met.cacheHits.Value(),
		Failed:        m.met.failed.Value(),
		Cancelled:     m.met.cancelled.Value(),
		Admission: AdmissionStats{
			Admitted:      m.met.admitted.Value(),
			RejectedFull:  m.met.rejectedFull.Value(),
			RejectedCost:  m.met.rejectedCost.Value(),
			RejectedBytes: m.met.rejectedBytes.Value(),
			RejectedQuota: m.met.rejectedQuota.Value(),
		},
		WaitSec:    m.waitStats(),
		Cache:      m.cache.Stats(),
		PFSReadMB:  float64(ps.BytesRead) / (1 << 20),
		PFSWriteMB: float64(ps.BytesWritten) / (1 << 20),
		PFSObjects: ps.Objects,
		EventDrops: m.events.Drops(),
	}
	if up > 0 {
		mt.JobsPerSec = float64(done) / up
	}
	return mt
}

// Shutdown stops admission, drains the queue and waits for in-flight jobs.
// When ctx expires first, all remaining jobs are cancelled and Shutdown
// waits for the pool to unwind before returning ctx's error.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	m.open = false
	m.mu.Unlock()
	m.queue.Close()
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		if m.journal != nil {
			m.journal.close()
		}
		return nil
	case <-ctx.Done():
		for _, v := range m.List() {
			if !v.State.Terminal() {
				_ = m.Cancel(v.ID)
			}
		}
		<-done
		if m.journal != nil {
			m.journal.close()
		}
		return ctx.Err()
	}
}

// Crash simulates a kill -9 for the crash/restart tests. The journal is
// closed first — that is the cut point: nothing a still-live goroutine
// appends afterwards reaches the file, exactly like writes issued after a
// real kill. Then admission stops, queued jobs are abandoned unrun, and
// running jobs' contexts are cancelled. Unlike a real kill it does wait
// for the worker goroutines to unwind (their post-crash transitions die
// against the closed journal), so tests leak nothing.
//
//ifdk:noctx test support: simulated kill, bounded by running-job cancellation
func (m *Manager) Crash() {
	if m.journal != nil {
		m.journal.close()
	}
	m.crashed.Store(true)
	m.mu.Lock()
	m.open = false
	m.mu.Unlock()
	m.queue.Close()
	for _, v := range m.List() {
		if v.State == StateRunning {
			_ = m.Cancel(v.ID)
		}
	}
	m.wg.Wait()
}
