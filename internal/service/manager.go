package service

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"ifdk/internal/core"
	"ifdk/internal/ct/fdk"
	"ifdk/internal/ct/projector"
	"ifdk/internal/engine"
	"ifdk/internal/hpc/pfs"
	"ifdk/internal/volume"
)

// Options configures a Manager.
type Options struct {
	Workers    int        // concurrent reconstructions (default 2)
	QueueCap   int        // bounded admission queue (default 4·Workers)
	CacheBytes int64      // result-cache budget in bytes (default 1 GiB, < 0 disables)
	MaxJobs    int        // retained job records; oldest terminal ones are pruned (default 1024)
	PFS        pfs.Config // simulated storage backing all jobs (zero = defaults)
}

func (o Options) withDefaults() Options {
	if o.Workers < 1 {
		o.Workers = 2
	}
	if o.QueueCap < 1 {
		o.QueueCap = 4 * o.Workers
	}
	if o.CacheBytes == 0 {
		o.CacheBytes = 1 << 30
	}
	if o.MaxJobs < 1 {
		o.MaxJobs = 1024
	}
	return o
}

// Manager is the reconstruction service: it owns the job table, the bounded
// priority queue, the worker pool, the shared PFS namespace tree and the
// result cache. One Manager serves many concurrent clients.
//
// Namespace layout inside the shared PFS:
//
//	ds/<hash>/proj_*      staged projection datasets, content-addressed and
//	                      shared by all jobs with identical scans
//	jobs/<id>/out/slice_* per-job output slices (each job's own namespace)
type Manager struct {
	opt   Options
	store *pfs.PFS
	queue *Queue
	cache *Cache

	mu    sync.Mutex
	jobs  map[string]*Job
	order []string // submission order, for List
	seq   int64
	open  bool

	stageMu sync.Mutex
	staged  map[string]*stageState

	wg        sync.WaitGroup
	busy      atomic.Int64
	started   time.Time
	completed atomic.Int64
	failed    atomic.Int64
	cancelled atomic.Int64
}

type stageState struct {
	done chan struct{}
	err  error
}

// NewManager starts a manager with opt.Workers worker goroutines.
func NewManager(opt Options) *Manager {
	opt = opt.withDefaults()
	m := &Manager{
		opt:     opt,
		store:   pfs.New(opt.PFS),
		queue:   NewQueue(opt.QueueCap),
		cache:   NewCache(opt.CacheBytes),
		jobs:    make(map[string]*Job),
		staged:  make(map[string]*stageState),
		open:    true,
		started: time.Now(),
	}
	for i := 0; i < opt.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Store exposes the backing PFS (tests and tooling).
func (m *Manager) Store() *pfs.PFS { return m.store }

// datasetPrefix content-addresses the staged scan of a spec: jobs with the
// same phantom and geometry share one projection set on the PFS.
func datasetPrefix(spec Spec, cfg core.Config) string {
	probe := core.Config{Geometry: cfg.Geometry}
	probe.InputPrefix = spec.Phantom // fold the phantom into the hash
	return "ds/" + CacheKey(probe)[:16]
}

// Submit validates and admits a job. A result-cache hit completes the job
// instantly; otherwise the job enters the bounded queue (ErrQueueFull when
// the service is saturated — callers should retry with backoff).
func (m *Manager) Submit(spec Spec) (View, error) {
	ph, cfg, err := spec.compile()
	if err != nil {
		return View{}, err
	}
	spec = spec.withDefaults()
	prio, err := ParsePriority(spec.Priority)
	if err != nil {
		return View{}, err
	}
	cfg.InputPrefix = datasetPrefix(spec, cfg)
	cfg.AssembleVolume = true
	key := CacheKey(cfg)

	m.mu.Lock()
	if !m.open {
		m.mu.Unlock()
		return View{}, ErrClosed
	}
	m.seq++
	j := &Job{
		ID:        fmt.Sprintf("j%08d", m.seq),
		Spec:      spec,
		Priority:  prio,
		state:     StateQueued,
		submitted: time.Now(),
		ph:        ph,
		cfg:       cfg,
		cacheKey:  key,
	}
	// A cached entry only satisfies a verify request if the run that
	// produced it was itself verified; otherwise the job runs (and its
	// verified entry replaces the cached one).
	if e, ok := m.cache.Get(key); ok && (!spec.Verify || e.Verified) {
		j.state = StateDone
		j.cacheHit = true
		j.finished = j.submitted
		j.times = e.Times
		j.relRMSE = e.RelRMSE
		j.verified = e.Verified
		j.result = e
		m.jobs[j.ID] = j
		m.order = append(m.order, j.ID)
		m.completed.Add(1)
		pruned := m.pruneLocked()
		m.mu.Unlock()
		m.scrub(pruned)
		return j.snapshot(), nil
	}
	if err := m.queue.Push(j); err != nil {
		m.mu.Unlock()
		return View{}, err
	}
	m.jobs[j.ID] = j
	m.order = append(m.order, j.ID)
	pruned := m.pruneLocked()
	m.mu.Unlock()
	m.scrub(pruned)
	return j.snapshot(), nil
}

// pruneLocked evicts the oldest terminal job records beyond MaxJobs so a
// long-lived daemon's job table stays bounded; callers must hold m.mu and
// pass the returned IDs to scrub. Live jobs are never pruned.
func (m *Manager) pruneLocked() []string {
	var pruned []string
	for i := 0; len(m.order) > m.opt.MaxJobs && i < len(m.order)-1; {
		id := m.order[i]
		j, ok := m.jobs[id]
		if ok && !j.State().Terminal() {
			i++
			continue
		}
		delete(m.jobs, id)
		m.order = append(m.order[:i], m.order[i+1:]...)
		pruned = append(pruned, id)
	}
	return pruned
}

// scrub deletes pruned jobs' output namespaces from the PFS.
func (m *Manager) scrub(ids []string) {
	for _, id := range ids {
		for _, path := range m.store.List("jobs/" + id + "/") {
			m.store.Delete(path)
		}
	}
}

// Get returns a job's current view.
func (m *Manager) Get(id string) (View, bool) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return View{}, false
	}
	return j.snapshot(), true
}

// Volume returns a done job's reconstructed volume.
func (m *Manager) Volume(id string) (*volume.Volume, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("service: no job %q", id)
	}
	e := j.Result()
	if e == nil || e.Volume == nil {
		return nil, fmt.Errorf("service: job %s has no result (state %s)", id, j.State())
	}
	return e.Volume, nil
}

// List returns all jobs in submission order.
func (m *Manager) List() []View {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		if j, ok := m.jobs[id]; ok {
			jobs = append(jobs, j)
		}
	}
	m.mu.Unlock()
	out := make([]View, len(jobs))
	for i, j := range jobs {
		out[i] = j.snapshot()
	}
	return out
}

// Cancel stops a job: a queued job is withdrawn immediately, a running job
// has its context cancelled (the MPI world aborts and the pipeline drains).
func (m *Manager) Cancel(id string) error {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("service: no job %q", id)
	}
	j.mu.Lock()
	switch j.state {
	case StateQueued:
		j.state = StateCancelled
		j.finished = time.Now()
		j.mu.Unlock()
		m.queue.Remove(id) // best-effort: a worker may have popped it already
		m.cancelled.Add(1)
		return nil
	case StateRunning:
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return nil
	default:
		st := j.state
		j.mu.Unlock()
		return fmt.Errorf("service: job %s already %s", id, st)
	}
}

// Delete removes a terminal job's record and its output namespace from the
// PFS. Cached results survive (they may serve future submissions).
func (m *Manager) Delete(id string) error {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if ok && !j.State().Terminal() {
		m.mu.Unlock()
		return fmt.Errorf("service: job %s is not terminal; cancel it first", id)
	}
	if ok {
		delete(m.jobs, id)
		for i, oid := range m.order {
			if oid == id {
				m.order = append(m.order[:i], m.order[i+1:]...)
				break
			}
		}
	}
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("service: no job %q", id)
	}
	for _, path := range m.store.List("jobs/" + id + "/") {
		m.store.Delete(path)
	}
	return nil
}

// worker is one slot of the pool: it pops jobs until the queue is closed
// and drained.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		j, ok := m.queue.Pop()
		if !ok {
			return
		}
		m.runJob(j)
	}
}

// runJob drives one job through running → terminal.
func (m *Manager) runJob(j *Job) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	j.mu.Lock()
	if j.state != StateQueued { // cancelled between Pop and here
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	j.cancel = cancel
	j.mu.Unlock()

	m.busy.Add(1)
	entry, err := m.execute(ctx, j)
	m.busy.Add(-1)

	j.mu.Lock()
	j.finished = time.Now()
	j.cancel = nil
	switch {
	case err == nil:
		j.state = StateDone
		j.result = entry
		j.times = entry.Times
		j.relRMSE = entry.RelRMSE
		j.verified = entry.Verified
		m.completed.Add(1)
	case ctx.Err() != nil:
		j.state = StateCancelled
		j.err = err.Error()
		m.cancelled.Add(1)
	default:
		j.state = StateFailed
		j.err = err.Error()
		m.failed.Add(1)
	}
	j.mu.Unlock()
	if err == nil {
		m.cache.Put(j.cacheKey, entry)
	}
}

// execute stages the dataset (once per content hash), runs the distributed
// reconstruction under the job's context, and optionally verifies the
// volume against the serial FDK reference.
func (m *Manager) execute(ctx context.Context, j *Job) (*Entry, error) {
	if err := m.stageDataset(ctx, j); err != nil {
		return nil, err
	}
	cfg := j.cfg
	cfg.OutputPrefix = "jobs/" + j.ID + "/out"
	cfg.Progress = func(done, total int) {
		j.mu.Lock()
		j.done, j.total = done, total
		j.mu.Unlock()
	}
	res, err := core.RunContext(ctx, cfg, m.store)
	if err != nil {
		return nil, err
	}
	entry := &Entry{Volume: res.Volume, Times: res.Max, BytesSent: res.BytesSent}
	if j.Spec.Verify {
		if err := m.verifyAgainstSerial(ctx, j, entry); err != nil {
			return nil, fmt.Errorf("verification: %w", err)
		}
	}
	return entry, nil
}

// stageDataset synthesizes and stores the projections for a job's scan,
// deduplicated across jobs by content hash (single-flight).
func (m *Manager) stageDataset(ctx context.Context, j *Job) error {
	key := j.cfg.InputPrefix
	m.stageMu.Lock()
	st, ok := m.staged[key]
	if !ok {
		st = &stageState{done: make(chan struct{})}
		m.staged[key] = st
		m.stageMu.Unlock()
		proj := projector.AnalyticAll(j.ph, j.cfg.Geometry, 0)
		st.err = core.StageProjections(m.store, key, proj)
		if st.err != nil { // allow a later job to retry
			m.stageMu.Lock()
			delete(m.staged, key)
			m.stageMu.Unlock()
		}
		close(st.done)
		return st.err
	}
	m.stageMu.Unlock()
	select {
	case <-st.done:
		return st.err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// verifyAgainstSerial recomputes the volume with the serial FDK pipeline
// and records the relative RMSE (the paper's < 1e-5 equivalence check).
// The working set — the staged projections and the reference volume — is
// transient, so all of it cycles through the engine pools; only the
// client-facing result volume in the Entry stays unpooled (it escapes to
// the cache and HTTP handlers).
func (m *Manager) verifyAgainstSerial(ctx context.Context, j *Job, e *Entry) error {
	g := j.cfg.Geometry
	proj := make([]*volume.Image, g.Np)
	release := func() {
		for _, img := range proj {
			engine.Images.Release(img) // nil-safe
		}
	}
	defer release()
	for s := range proj {
		if err := ctx.Err(); err != nil {
			return err
		}
		img := engine.Images.Acquire(g.Nu, g.Nv)
		if _, err := m.store.ReadProjectionInto(img, j.cfg.InputPrefix, s); err != nil {
			engine.Images.Release(img)
			return err
		}
		proj[s] = img
	}
	ref, err := fdk.Reconstruct(g, proj, fdk.Config{Window: j.cfg.Window})
	if err != nil {
		return err
	}
	rmse, err := volume.RMSE(ref, e.Volume)
	if err != nil {
		engine.Volumes.Release(ref)
		return err
	}
	s := ref.Summarize()
	engine.Volumes.Release(ref)
	scale := math.Max(math.Abs(float64(s.Min)), math.Abs(float64(s.Max)))
	if scale > 0 {
		rmse /= scale
	}
	e.RelRMSE = rmse
	e.Verified = true
	return nil
}

// Metrics is the service-level counters snapshot served by /v1/metrics.
type Metrics struct {
	UptimeSec   float64        `json:"uptime_sec"`
	Workers     int            `json:"workers"`
	BusyWorkers int            `json:"busy_workers"`
	QueueDepth  int            `json:"queue_depth"`
	QueueCap    int            `json:"queue_cap"`
	Jobs        map[string]int `json:"jobs"`
	Completed   int64          `json:"completed"`
	Failed      int64          `json:"failed"`
	Cancelled   int64          `json:"cancelled"`
	JobsPerSec  float64        `json:"jobs_per_sec"`
	Cache       CacheStats     `json:"cache"`
	PFSReadMB   float64        `json:"pfs_read_mb"`
	PFSWriteMB  float64        `json:"pfs_write_mb"`
	PFSObjects  int            `json:"pfs_objects"`
}

// Metrics returns a snapshot of queue, pool, cache and storage counters.
func (m *Manager) Metrics() Metrics {
	states := map[string]int{}
	m.mu.Lock()
	for _, j := range m.jobs {
		states[string(j.State())]++
	}
	m.mu.Unlock()
	up := time.Since(m.started).Seconds()
	done := m.completed.Load()
	ps := m.store.Stats()
	mt := Metrics{
		UptimeSec:   up,
		Workers:     m.opt.Workers,
		BusyWorkers: int(m.busy.Load()),
		QueueDepth:  m.queue.Len(),
		QueueCap:    m.queue.Cap(),
		Jobs:        states,
		Completed:   done,
		Failed:      m.failed.Load(),
		Cancelled:   m.cancelled.Load(),
		Cache:       m.cache.Stats(),
		PFSReadMB:   float64(ps.BytesRead) / (1 << 20),
		PFSWriteMB:  float64(ps.BytesWritten) / (1 << 20),
		PFSObjects:  ps.Objects,
	}
	if up > 0 {
		mt.JobsPerSec = float64(done) / up
	}
	return mt
}

// Shutdown stops admission, drains the queue and waits for in-flight jobs.
// When ctx expires first, all remaining jobs are cancelled and Shutdown
// waits for the pool to unwind before returning ctx's error.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	m.open = false
	m.mu.Unlock()
	m.queue.Close()
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		for _, v := range m.List() {
			if !v.State.Terminal() {
				_ = m.Cancel(v.ID)
			}
		}
		<-done
		return ctx.Err()
	}
}
