package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"mime"
	"mime/multipart"
	"net/http"
	"strconv"
	"testing"
	"time"

	"ifdk/internal/compress"
	"ifdk/internal/volume"
	"ifdk/pkg/api"
)

// progSpec is the shared scan of these tests: NX=16 defaults to a
// 32×32×32 → 16³ problem, whose preview plan decimates by 2 to a coarse
// 16×16×16 → 8³ problem.
func progSpec(quality string) Spec {
	return Spec{Phantom: "shepplogan", NX: 16, R: 2, C: 2, Quality: quality}
}

// prevPart is one decoded part of a /stream or /preview multipart response,
// preview-factor aware.
type prevPart struct {
	z, total, factor int // factor 0 on full-resolution parts
	img              *volume.Image
}

// openStreamPrev attaches to a multipart stream URL and decodes every slice
// part with its preview factor, in arrival order.
func openStreamPrev(t *testing.T, ctx context.Context, url string) (<-chan prevPart, <-chan View) {
	t.Helper()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("stream: HTTP %d", resp.StatusCode)
	}
	_, params, err := mime.ParseMediaType(resp.Header.Get("Content-Type"))
	if err != nil || params["boundary"] == "" {
		resp.Body.Close()
		t.Fatalf("stream: Content-Type %q (%v)", resp.Header.Get("Content-Type"), err)
	}
	parts := make(chan prevPart, 1024)
	views := make(chan View, 1)
	go func() {
		defer close(parts)
		defer close(views)
		defer resp.Body.Close()
		mr := multipart.NewReader(resp.Body, params["boundary"])
		for {
			p, err := mr.NextPart()
			if err != nil {
				return
			}
			if p.Header.Get("Content-Type") == "application/json" {
				var v View
				if json.NewDecoder(p).Decode(&v) == nil {
					views <- v
				}
				continue
			}
			z, err := strconv.Atoi(p.Header.Get(api.HeaderSliceZ))
			if err != nil {
				continue
			}
			total, _ := strconv.Atoi(p.Header.Get(api.HeaderSliceTotal))
			factor := 0
			if pf := p.Header.Get(api.HeaderPreviewFactor); pf != "" {
				if factor, err = strconv.Atoi(pf); err != nil {
					continue
				}
			}
			blob, err := io.ReadAll(p)
			if err != nil {
				return
			}
			if p.Header.Get("Content-Encoding") == "gzip" {
				if blob, err = compress.Gunzip(blob); err != nil {
					continue
				}
			}
			img, err := volume.ImageFromBytes(blob)
			if err != nil {
				continue
			}
			parts <- prevPart{z: z, total: total, factor: factor, img: img}
		}
	}()
	return parts, views
}

// The progressive tentpole: a client on /v1/jobs/{id}/stream receives the
// COMPLETE coarse preview tier — every coarse slice, marked with the
// decimation factor — strictly before the first full-resolution part, while
// the job is provably still mid-reconstruction; the refined volume that
// follows is bit-identical to a non-progressive full-resolution job of the
// same spec, and the preview tier is bit-identical to a preview-quality job
// of the same spec.
func TestE2EProgressiveCoarseToFine(t *testing.T) {
	gate := newSliceGate()
	defer gate.open()
	opt := Options{Workers: 2}
	opt.testOnSlice = gate.hook // parks the epilogue at the first full-res slice
	ts, m := startTestServer(t, opt)

	resp, v := postJob(t, ts.URL, progSpec(api.QualityProgressive))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	id := v.ID
	if v.Quality != api.QualityProgressive {
		t.Fatalf("submit view quality = %q, want progressive", v.Quality)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	parts, views := openStreamPrev(t, ctx, ts.URL+"/v1/jobs/"+id+"/stream")

	// Phase 1 — with the epilogue parked inside the first slice callback,
	// the whole coarse tier must arrive. 16³ decimated by 2 is 8 slices.
	const coarseNz = 8
	preview := volume.New(coarseNz, coarseNz, coarseNz, volume.IMajor)
	for got := 0; got < coarseNz; {
		select {
		case p, ok := <-parts:
			if !ok {
				t.Fatalf("stream ended after %d preview parts", got)
			}
			if p.factor == 0 {
				t.Fatalf("full-resolution slice %d arrived before the preview tier completed (%d/%d)", p.z, got, coarseNz)
			}
			if p.factor != 2 || p.total != coarseNz {
				t.Fatalf("preview part factor=%d total=%d, want 2 and %d", p.factor, p.total, coarseNz)
			}
			if err := preview.SetSliceZ(p.z, p.img); err != nil {
				t.Fatal(err)
			}
			got++
		case <-ctx.Done():
			t.Fatal("timed out waiting for the preview tier")
		}
	}
	if code, view := getView(t, ts.URL, id); code != http.StatusOK || view.State != StateRunning {
		t.Fatalf("job state with full preview delivered = %s (HTTP %d), want running", view.State, code)
	} else if view.PreviewFactor != 2 {
		t.Fatalf("running view preview_factor = %d, want 2", view.PreviewFactor)
	}
	gate.open()

	// Phase 2 — the refinement: exactly the 16 full-resolution slices, none
	// marked as preview, reassembling to the job's own result.
	full := volume.New(16, 16, 16, volume.IMajor)
	seen := map[int]int{}
	for p := range parts {
		if p.factor != 0 {
			t.Fatalf("preview part (z=%d) after the tier completed", p.z)
		}
		seen[p.z]++
		if err := full.SetSliceZ(p.z, p.img); err != nil {
			t.Fatal(err)
		}
	}
	for z := 0; z < 16; z++ {
		if seen[z] != 1 {
			t.Fatalf("full slice %d streamed %d times, want exactly once", z, seen[z])
		}
	}
	if final, ok := <-views; !ok || final.State != StateDone {
		t.Fatalf("terminal stream part = %+v (ok=%v), want done", final, ok)
	}

	// Refinement is lossless: bit-identical to a plain full-quality job.
	cv, err := m.Submit(progSpec(""))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, cv.ID, time.Minute)
	want, err := m.Volume(cv.ID)
	if err != nil {
		t.Fatal(err)
	}
	if d, err := volume.MaxAbsDiff(want, full); err != nil || d != 0 {
		t.Fatalf("progressive refinement differs from the full-quality job: maxAbsDiff=%g err=%v", d, err)
	}

	// The preview tier is the preview-quality job's exact result (they share
	// the preview cache key, so this submission is also an instant hit).
	pv, err := m.Submit(progSpec(api.QualityPreview))
	if err != nil {
		t.Fatal(err)
	}
	if !pv.CacheHit {
		t.Errorf("preview-quality submit after a progressive run was not a cache hit")
	}
	waitState(t, m, pv.ID, time.Minute)
	pVol, err := m.Volume(pv.ID)
	if err != nil {
		t.Fatal(err)
	}
	if d, err := volume.MaxAbsDiff(pVol, preview); err != nil || d != 0 {
		t.Fatalf("streamed preview differs from the preview-quality job: maxAbsDiff=%g err=%v", d, err)
	}
}

// A preview-quality job is a complete job whose result IS the coarse
// volume: coarse slice count on /stream and /slice, no preview part
// markers, quality and factor on the view, and verification through the
// independent rebuild path.
func TestPreviewQualityServing(t *testing.T) {
	ts, m := startTestServer(t, Options{Workers: 2})
	spec := progSpec(api.QualityPreview)
	spec.Verify = true
	resp, v := postJob(t, ts.URL, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	fv := waitState(t, m, v.ID, time.Minute)
	if fv.State != StateDone {
		t.Fatalf("preview job finished %s (%s), want done", fv.State, fv.Error)
	}
	if fv.Quality != api.QualityPreview || fv.PreviewFactor != 2 {
		t.Fatalf("view quality=%q factor=%d, want preview/2", fv.Quality, fv.PreviewFactor)
	}
	if !fv.Verified || fv.RelRMSE != 0 {
		t.Fatalf("preview verification: verified=%v relRMSE=%g, want true/0 (deterministic rebuild)", fv.Verified, fv.RelRMSE)
	}
	vol, err := m.Volume(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if vol.Nx != 8 || vol.Nz != 8 {
		t.Fatalf("preview result is %dx%dx%d, want the coarse 8³ grid", vol.Nx, vol.Ny, vol.Nz)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	parts, views := openStreamPrev(t, ctx, ts.URL+"/v1/jobs/"+v.ID+"/stream")
	count := 0
	for p := range parts {
		if p.factor != 0 {
			t.Fatalf("preview-quality stream carried a preview-marked part (z=%d)", p.z)
		}
		if p.total != 8 {
			t.Fatalf("part total = %d, want the coarse slice count 8", p.total)
		}
		count++
	}
	if count != 8 {
		t.Fatalf("streamed %d slices, want 8", count)
	}
	if final, ok := <-views; !ok || final.State != StateDone {
		t.Fatalf("terminal stream part = %+v (ok=%v)", final, ok)
	}

	// /slice honours the coarse range: 7 exists, 12 is out of range.
	if r, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/slice/7"); err != nil || r.StatusCode != http.StatusOK {
		t.Fatalf("coarse slice 7: %v HTTP %d", err, r.StatusCode)
	} else {
		r.Body.Close()
	}
	r, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/slice/12")
	if err != nil {
		t.Fatal(err)
	}
	if e := decodeAPIError(t, r); r.StatusCode != http.StatusBadRequest || e.Code != api.CodeBadRequest {
		t.Fatalf("out-of-range coarse slice: HTTP %d code %s", r.StatusCode, e.Code)
	}
}

// Preview and full-resolution results of one spec must never alias in the
// result cache: a full submit after a preview run reconstructs, and vice
// versa, while same-quality resubmits hit.
func TestPreviewCacheNeverAliases(t *testing.T) {
	ts, m := startTestServer(t, Options{Workers: 1})

	_, pv := postJob(t, ts.URL, progSpec(api.QualityPreview))
	waitState(t, m, pv.ID, time.Minute)

	// Same scan at full quality: a cold miss (202), never the coarse entry.
	resp, fv := postJob(t, ts.URL, progSpec(""))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("full submit after preview: HTTP %d, want 202 (no aliasing)", resp.StatusCode)
	}
	waitState(t, m, fv.ID, time.Minute)

	// Same-quality resubmits are instant hits on their own keys.
	if resp, v := postJob(t, ts.URL, progSpec(api.QualityPreview)); resp.StatusCode != http.StatusOK || !v.CacheHit {
		t.Fatalf("preview resubmit: HTTP %d hit=%v, want 200 hit", resp.StatusCode, v.CacheHit)
	}
	if resp, v := postJob(t, ts.URL, progSpec("")); resp.StatusCode != http.StatusOK || !v.CacheHit {
		t.Fatalf("full resubmit: HTTP %d hit=%v, want 200 hit", resp.StatusCode, v.CacheHit)
	}

	// The two results are different volumes under different keys.
	pVol, err := m.Volume(pv.ID)
	if err != nil {
		t.Fatal(err)
	}
	fVol, err := m.Volume(fv.ID)
	if err != nil {
		t.Fatal(err)
	}
	if pVol.Nz == fVol.Nz {
		t.Fatalf("preview and full results have the same grid (%d): aliased?", pVol.Nz)
	}
	pk, err := SpecKey(progSpec(api.QualityPreview))
	if err != nil {
		t.Fatal(err)
	}
	fk, err := SpecKey(progSpec(""))
	if err != nil {
		t.Fatal(err)
	}
	if pk == fk {
		t.Fatalf("SpecKey ignores quality: %s", pk)
	}
	if gk, _ := SpecKey(progSpec(api.QualityProgressive)); gk != fk {
		t.Fatalf("progressive SpecKey %s != full key %s (must share the full-res shard)", gk, fk)
	}
}

// GET /v1/jobs/{id}/preview serves the coarse tier as a complete multipart
// artifact once built, and answers the documented error codes otherwise.
func TestPreviewEndpoint(t *testing.T) {
	ts, m := startTestServer(t, Options{Workers: 2})
	_, v := postJob(t, ts.URL, progSpec(api.QualityProgressive))
	waitState(t, m, v.ID, time.Minute)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/preview")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("preview: HTTP %d", resp.StatusCode)
	}
	if f := resp.Header.Get(api.HeaderPreviewFactor); f != "2" {
		t.Fatalf("top-level %s = %q, want 2", api.HeaderPreviewFactor, f)
	}
	_, params, err := mime.ParseMediaType(resp.Header.Get("Content-Type"))
	if err != nil || params["boundary"] == "" {
		t.Fatalf("preview Content-Type %q (%v)", resp.Header.Get("Content-Type"), err)
	}
	mr := multipart.NewReader(resp.Body, params["boundary"])
	count := 0
	for {
		p, err := mr.NextPart()
		if err != nil {
			break
		}
		if p.Header.Get(api.HeaderPreviewFactor) != "2" {
			t.Fatalf("part %d missing the preview factor header", count)
		}
		blob, err := io.ReadAll(p)
		if err != nil {
			t.Fatal(err)
		}
		if p.Header.Get("Content-Encoding") == "gzip" {
			if blob, err = compress.Gunzip(blob); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := volume.ImageFromBytes(blob); err != nil {
			t.Fatalf("part %d payload: %v", count, err)
		}
		count++
	}
	if count != 8 {
		t.Fatalf("preview carried %d parts, want 8", count)
	}

	// A full-quality job has no preview tier: bad_request, not retryable.
	_, f := postJob(t, ts.URL, progSpec(""))
	waitState(t, m, f.ID, time.Minute)
	r2, err := http.Get(ts.URL + "/v1/jobs/" + f.ID + "/preview")
	if err != nil {
		t.Fatal(err)
	}
	if e := decodeAPIError(t, r2); r2.StatusCode != http.StatusBadRequest || e.Code != api.CodeBadRequest {
		t.Fatalf("full-quality preview fetch: HTTP %d code %s, want 400 bad_request", r2.StatusCode, e.Code)
	}
}

// An unknown quality is a spec validation failure: the invalid_spec
// envelope, named field, HTTP 400.
func TestQualityValidation(t *testing.T) {
	ts, _ := startTestServer(t, Options{Workers: 1})
	body, _ := json.Marshal(progSpec("4k"))
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	e := decodeAPIError(t, resp)
	if resp.StatusCode != http.StatusBadRequest || e.Code != api.CodeInvalidSpec {
		t.Fatalf("bad quality: HTTP %d code %s, want 400 invalid_spec", resp.StatusCode, e.Code)
	}
}

// Quality survives the write-ahead journal: a daemon crashed mid-run
// recovers preview and progressive jobs with their tier intact and
// re-executes them to bit-identical results.
func TestCrashRestartPreservesQuality(t *testing.T) {
	dir := t.TempDir()
	specs := []Spec{
		progSpec(api.QualityProgressive),
		progSpec(api.QualityPreview),
	}
	m1, err := OpenManager(Options{Workers: 1, NodeID: "b0", JournalDir: dir, PFS: pfsThrottled()})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, spec := range specs {
		v, err := m1.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
	}
	waitRunning(t, m1, ids[0])
	m1.Crash()

	m2, err := OpenManager(Options{Workers: 2, NodeID: "b0", JournalDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = m2.Shutdown(ctx)
	}()
	for i, id := range ids {
		v, ok := m2.Get(id)
		if !ok {
			t.Fatalf("job %d (%s) lost across the crash", i, id)
		}
		if v.Quality != specs[i].Quality {
			t.Fatalf("job %s quality %q after replay, want %q", id, v.Quality, specs[i].Quality)
		}
	}
	for _, id := range ids {
		if v := waitState(t, m2, id, 2*time.Minute); v.State != StateDone {
			t.Fatalf("recovered job %s finished %s (%s), want done", id, v.State, v.Error)
		}
	}

	control := NewManager(Options{Workers: 2})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = control.Shutdown(ctx)
	}()
	for i, spec := range specs {
		cv, err := control.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, control, cv.ID, 2*time.Minute)
		want, err := control.Volume(cv.ID)
		if err != nil {
			t.Fatal(err)
		}
		got, err := m2.Volume(ids[i])
		if err != nil {
			t.Fatalf("recovered job %s: %v", ids[i], err)
		}
		if d, err := volume.MaxAbsDiff(want, got); err != nil || d != 0 {
			t.Fatalf("quality job %d not bit-exact across crash/restart: maxAbsDiff=%g err=%v", i, d, err)
		}
	}
}
