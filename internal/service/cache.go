package service

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"

	"ifdk/internal/core"
	"ifdk/internal/volume"
)

// Entry is one cached reconstruction result: the assembled volume plus the
// timings of the run that produced it. Entries are immutable once stored
// and may be shared by many jobs.
type Entry struct {
	Volume    *volume.Volume
	Times     core.StageTimes
	BytesSent int64
	RelRMSE   float64 // serial-reference error, when the producing job verified
	Verified  bool
}

// CacheKey content-addresses a reconstruction: the SHA-256 of the canonical
// JSON of the core.Config with the per-job fields (output prefix, progress
// callback) zeroed, so two jobs asking for the same volume from the same
// input data map to the same key regardless of where they write or who
// watches them. The input prefix is part of the Config and is itself
// content-derived by the manager (a hash of phantom + geometry), making the
// whole key a content hash of "what is reconstructed from which data".
func CacheKey(cfg core.Config) string {
	cfg.OutputPrefix = ""
	cfg.Progress = nil
	blob, err := json.Marshal(cfg)
	if err != nil {
		// Config is a plain struct of values; Marshal cannot fail once
		// Progress is cleared. Keep a defensive fallback anyway.
		blob = []byte(fmt.Sprintf("%+v", cfg))
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:])
}

// Cache is a fixed-capacity LRU over reconstruction results. It is the
// serving-layer realization of "instant": a repeated identical request
// costs one map lookup instead of a full pipeline run.
type Cache struct {
	mu     sync.Mutex
	cap    int
	ll     *list.List // front = most recently used
	items  map[string]*list.Element
	hits   int64
	misses int64
}

type cacheItem struct {
	key   string
	entry *Entry
}

// NewCache creates an LRU holding at most capacity entries; capacity < 1
// disables caching (every Get misses, Put is a no-op).
func NewCache(capacity int) *Cache {
	return &Cache{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the entry for key, promoting it to most recently used.
func (c *Cache) Get(key string) (*Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheItem).entry, true
	}
	c.misses++
	return nil, false
}

// Put stores an entry, evicting the least recently used when full.
func (c *Cache) Put(key string, e *Entry) {
	if c.cap < 1 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheItem).entry = e
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheItem{key: key, entry: e})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheItem).key)
	}
}

// CacheStats is a counters snapshot.
type CacheStats struct {
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Entries int   `json:"entries"`
	Cap     int   `json:"cap"`
}

// Stats returns a snapshot of the hit/miss counters and occupancy.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Entries: c.ll.Len(), Cap: c.cap}
}
