package service

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"

	"ifdk/internal/core"
	"ifdk/internal/volume"
)

// Entry is one cached reconstruction result: the assembled volume plus the
// timings of the run that produced it. Entries are immutable once stored
// and may be shared by many jobs.
type Entry struct {
	Volume    *volume.Volume
	Times     core.StageTimes
	BytesSent int64
	RelRMSE   float64 // serial-reference error, when the producing job verified
	Verified  bool
}

// CacheKey content-addresses a reconstruction: the SHA-256 of the canonical
// JSON of the core.Config with the per-job fields (output prefix, progress
// callback) zeroed, so two jobs asking for the same volume from the same
// input data map to the same key regardless of where they write or who
// watches them. The input prefix is part of the Config and is itself
// content-derived by the manager (a hash of phantom + geometry), making the
// whole key a content hash of "what is reconstructed from which data".
func CacheKey(cfg core.Config) string {
	cfg.OutputPrefix = ""
	cfg.Progress = nil
	blob, err := json.Marshal(cfg)
	if err != nil {
		// Config is a plain struct of values; Marshal cannot fail once
		// Progress is cleared. Keep a defensive fallback anyway.
		blob = []byte(fmt.Sprintf("%+v", cfg))
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:])
}

// Cache is a byte-budgeted LRU over reconstruction results. It is the
// serving-layer realization of "instant": a repeated identical request
// costs one map lookup instead of a full pipeline run.
//
// Eviction is by total payload bytes, not entry count: entries are whole
// volumes whose sizes span orders of magnitude (a 64³ preview is 1 MiB, a
// 1024³ render is 4 GiB), so a count cap either starves small workloads or
// lets a handful of large ones blow the heap. An entry larger than the
// whole budget is not cached at all.
//
// Cached volumes are never returned to the engine buffer pools, even on
// eviction: entries escape to HTTP handlers and job records, and the cache
// cannot prove no reader remains. They become ordinary garbage instead.
type Cache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	hits     int64
	misses   int64
}

type cacheItem struct {
	key   string
	entry *Entry
	size  int64
}

// entrySize is the retained footprint of one entry: the volume payload plus
// a fixed overhead for the Entry/list/map bookkeeping.
func entrySize(e *Entry) int64 {
	const overhead = 512
	if e == nil || e.Volume == nil {
		return overhead
	}
	return overhead + e.Volume.Bytes()
}

// NewCache creates an LRU holding at most maxBytes of results; maxBytes < 1
// disables caching (every Get misses, Put is a no-op).
func NewCache(maxBytes int64) *Cache {
	return &Cache{maxBytes: maxBytes, ll: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the entry for key, promoting it to most recently used.
func (c *Cache) Get(key string) (*Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheItem).entry, true
	}
	c.misses++
	return nil, false
}

// Put stores an entry, evicting least recently used entries until the
// byte budget holds. Entries that alone exceed the budget are not stored
// (and replace-in-place with an oversized entry removes the old one).
func (c *Cache) Put(key string, e *Entry) {
	if c.maxBytes < 1 {
		return
	}
	size := entrySize(e)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.removeLocked(el)
	}
	if size > c.maxBytes {
		return
	}
	c.items[key] = c.ll.PushFront(&cacheItem{key: key, entry: e, size: size})
	c.bytes += size
	for c.bytes > c.maxBytes {
		c.removeLocked(c.ll.Back())
	}
}

func (c *Cache) removeLocked(el *list.Element) {
	it := el.Value.(*cacheItem)
	c.ll.Remove(el)
	delete(c.items, it.key)
	c.bytes -= it.size
}

// Stats returns a snapshot of the hit/miss counters and occupancy. A
// disabled cache (negative budget) reports MaxBytes 0 so consumers never
// see the sentinel as a size.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Entries: c.ll.Len(),
		Bytes: c.bytes, MaxBytes: max(c.maxBytes, 0)}
}
