package service

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"

	"ifdk/internal/core"
	"ifdk/internal/hpc/pfs"
	"ifdk/internal/volume"
)

// Entry is one cached reconstruction result: the assembled volume plus the
// timings of the run that produced it. Entries are immutable once stored
// and may be shared by many jobs.
type Entry struct {
	Volume    *volume.Volume
	Times     core.StageTimes
	BytesSent int64
	RelRMSE   float64 // serial-reference error, when the producing job verified
	Verified  bool
}

// CacheKey content-addresses a reconstruction: the SHA-256 of the canonical
// JSON of the core.Config with the per-job fields (output prefix, progress
// and the other run-time callbacks) zeroed, so two jobs asking for the same
// volume from the same input data map to the same key regardless of where
// they write or who watches them. The input prefix is part of the Config
// and is itself content-derived by the manager (a hash of phantom +
// geometry), making the whole key a content hash of "what is reconstructed
// from which data".
//
// The encoding must be deterministic across processes, restarts and Go
// versions — the key shards the fleet (rendezvous hashing), names PFS spill
// objects and survives in the write-ahead journal via the Spec. json.Marshal
// of the sanitized Config is canonical (struct order is declaration order);
// it can only fail on non-finite geometry floats, which admission never
// produces, so rather than hashing some fallback representation that would
// silently fork the keyspace (the old %+v fallback embedded function
// pointer addresses), an unencodable config panics loudly.
func CacheKey(cfg core.Config) string {
	cfg.OutputPrefix = ""
	// The callbacks are declared `json:"-"` so Marshal ignores them, but
	// zero them anyway: no accidental representation of a per-job field may
	// ever reach the hash.
	cfg.Progress = nil
	cfg.NewRowFilter = nil
	cfg.SliceWritten = nil
	blob, err := json.Marshal(cfg)
	if err != nil {
		panic(fmt.Sprintf("service: CacheKey: config is not canonically encodable "+
			"(non-finite geometry?): %v", err))
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:])
}

// Cache is a byte-budgeted LRU over reconstruction results. It is the
// serving-layer realization of "instant": a repeated identical request
// costs one map lookup instead of a full pipeline run.
//
// Eviction is by total payload bytes, not entry count: entries are whole
// volumes whose sizes span orders of magnitude (a 64³ preview is 1 MiB, a
// 1024³ render is 4 GiB), so a count cap either starves small workloads or
// lets a handful of large ones blow the heap.
//
// Spill-on-evict: with a backing store attached (enableSpill), an entry
// evicted under byte pressure — including one that alone exceeds the whole
// budget — is written to the PFS instead of dropped, and Get falls through
// to a PFS read that readmits the entry. Hits are counted separately
// (Hits = in-memory, SpillHits = served from the spill tier), so the
// effective hit rate of each tier is observable. Spill objects live under
// spill/<key>/ next to the job namespaces; the meta object is written
// last, as the commit point, so a reader never sees a partial spill.
//
// Cached volumes are never returned to the engine buffer pools, even on
// eviction: entries escape to HTTP handlers and job records, and the cache
// cannot prove no reader remains. They become ordinary garbage instead.
type Cache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	hits     int64 // in-memory hits
	misses   int64 // neither in memory nor in the spill tier

	store       *pfs.PFS // spill tier; nil = evictions drop (pre-spill behaviour)
	spills      int64    // evictions written to the spill tier
	spillHits   int64    // Gets served by spill read + readmit
	spillBytes  int64    // cumulative payload bytes spilled
	spillErrors int64    // spill writes/reads that failed
}

type cacheItem struct {
	key     string
	entry   *Entry
	size    int64
	spilled bool // a durable spill copy exists; re-eviction skips the rewrite
}

// entrySize is the retained footprint of one entry: the volume payload plus
// a fixed overhead for the Entry/list/map bookkeeping.
func entrySize(e *Entry) int64 {
	const overhead = 512
	if e == nil || e.Volume == nil {
		return overhead
	}
	return overhead + e.Volume.Bytes()
}

// NewCache creates an LRU holding at most maxBytes of results; maxBytes < 1
// disables caching (every Get misses, Put is a no-op).
func NewCache(maxBytes int64) *Cache {
	return &Cache{maxBytes: maxBytes, ll: list.New(), items: make(map[string]*list.Element)}
}

// enableSpill attaches the PFS the cache spills evicted entries to. Called
// once at manager construction, before any concurrent use.
func (c *Cache) enableSpill(store *pfs.PFS) { c.store = store }

// Get returns the entry for key: from memory (promoting it to most
// recently used), or from the PFS spill tier — readmitting it — when it
// was evicted under byte pressure.
func (c *Cache) Get(key string) (*Entry, bool) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		e := el.Value.(*cacheItem).entry
		c.mu.Unlock()
		return e, true
	}
	c.mu.Unlock()
	if c.store != nil && c.maxBytes >= 1 {
		if e, ok := c.readSpill(key); ok {
			c.mu.Lock()
			c.spillHits++
			c.mu.Unlock()
			c.put(key, e, true)
			return e, true
		}
	}
	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
	return nil, false
}

// Put stores an entry, evicting least recently used entries until the byte
// budget holds; evicted entries spill to the PFS when a store is attached.
// An entry that alone exceeds the budget skips memory and spills directly.
func (c *Cache) Put(key string, e *Entry) { c.put(key, e, false) }

func (c *Cache) put(key string, e *Entry, spilled bool) {
	if c.maxBytes < 1 {
		return
	}
	size := entrySize(e)
	var victims []*cacheItem
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		// Replace in place: the outgoing entry is superseded (same content
		// key, possibly upgraded metadata), not evicted — no spill.
		c.removeLocked(el)
	}
	if size > c.maxBytes {
		c.mu.Unlock()
		if !spilled {
			c.spill(key, e, size)
		}
		return
	}
	c.items[key] = c.ll.PushFront(&cacheItem{key: key, entry: e, size: size, spilled: spilled})
	c.bytes += size
	for c.bytes > c.maxBytes {
		victims = append(victims, c.removeLocked(c.ll.Back()))
	}
	c.mu.Unlock()
	// Spill outside the lock: PFS writes model real storage latency and
	// must not stall every concurrent cache lookup.
	for _, it := range victims {
		if !it.spilled {
			c.spill(it.key, it.entry, it.size)
		}
	}
}

func (c *Cache) removeLocked(el *list.Element) *cacheItem {
	it := el.Value.(*cacheItem)
	c.ll.Remove(el)
	delete(c.items, it.key)
	c.bytes -= it.size
	return it
}

// spillPrefix is the PFS namespace of one spilled entry's slice objects.
func spillPrefix(key string) string { return "spill/" + key }

// spillMetaPath is the entry's commit object: written last on spill, read
// first on load.
func spillMetaPath(key string) string { return spillPrefix(key) + "/meta.json" }

// spillMeta is the JSON sidecar carrying everything but the voxels.
type spillMeta struct {
	NX        int             `json:"nx"`
	NY        int             `json:"ny"`
	NZ        int             `json:"nz"`
	Times     core.StageTimes `json:"times"`
	BytesSent int64           `json:"bytes_sent"`
	RelRMSE   float64         `json:"rel_rmse"`
	Verified  bool            `json:"verified"`
}

// spill writes one evicted entry to the PFS: slices first, meta last (the
// commit point). Failures are counted and the entry is simply lost, the
// pre-spill behaviour.
func (c *Cache) spill(key string, e *Entry, size int64) {
	if c.store == nil || e == nil || e.Volume == nil {
		return
	}
	v := e.Volume
	meta := spillMeta{NX: v.Nx, NY: v.Ny, NZ: v.Nz,
		Times: e.Times, BytesSent: e.BytesSent, RelRMSE: e.RelRMSE, Verified: e.Verified}
	blob, err := json.Marshal(meta)
	if err == nil {
		if _, err = c.store.WriteVolumeSlices(spillPrefix(key), v); err == nil {
			_, err = c.store.Write(spillMetaPath(key), blob)
		}
	}
	c.mu.Lock()
	if err != nil {
		c.spillErrors++
	} else {
		c.spills++
		c.spillBytes += size
	}
	c.mu.Unlock()
}

// readSpill loads a spilled entry back from the PFS; a missing meta object
// is an ordinary miss.
func (c *Cache) readSpill(key string) (*Entry, bool) {
	blob, _, err := c.store.Read(spillMetaPath(key))
	if err != nil {
		return nil, false
	}
	var meta spillMeta
	if err := json.Unmarshal(blob, &meta); err != nil {
		c.mu.Lock()
		c.spillErrors++
		c.mu.Unlock()
		return nil, false
	}
	v, _, err := c.store.ReadVolumeSlices(spillPrefix(key), meta.NX, meta.NY, meta.NZ)
	if err != nil {
		c.mu.Lock()
		c.spillErrors++
		c.mu.Unlock()
		return nil, false
	}
	return &Entry{Volume: v, Times: meta.Times, BytesSent: meta.BytesSent,
		RelRMSE: meta.RelRMSE, Verified: meta.Verified}, true
}

// Stats returns a snapshot of the hit/miss counters and occupancy. A
// disabled cache (negative budget) reports MaxBytes 0 so consumers never
// see the sentinel as a size.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Entries: c.ll.Len(),
		Bytes: c.bytes, MaxBytes: max(c.maxBytes, 0),
		Spills: c.spills, SpillHits: c.spillHits,
		SpillBytes: c.spillBytes, SpillErrors: c.spillErrors}
}
