package service

// The manager's preview phase: the worker-side execution of the quality
// knob's coarse tier (see internal/service/progressive for the tier
// semantics and internal/ct/preview for the reconstruction itself).

import (
	"context"
	"math"
	"time"

	"ifdk/internal/core"
	"ifdk/internal/ct/preview"
	"ifdk/internal/service/progressive"
	"ifdk/internal/volume"
)

// previewStageTimes maps a preview build's segment clock onto the wire's
// stage vocabulary: decimation is part of ingesting the input (Load), and
// Compute aggregates the arithmetic stages the way core.StageTimes does.
func previewStageTimes(tm preview.Timings) core.StageTimes {
	d := func(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }
	return core.StageTimes{
		Load:        d(tm.Load + tm.Decimate),
		Filter:      d(tm.Filter),
		Backproject: d(tm.Backproject),
		Compute:     d(tm.Filter + tm.Backproject),
		Total:       d(tm.Total),
	}
}

// buildPreview resolves the job's preview tier: from the result cache when
// an identical preview already exists (falling through to the PFS spill
// tier), otherwise by reconstructing the decimated problem from the staged
// dataset — through the cross-job batcher under the preview class when
// batching is on. The entry lands in the cache under the preview key and on
// the job record, and its availability is announced with EventPreview —
// for a progressive job, before any full-resolution round has run.
func (m *Manager) buildPreview(ctx context.Context, j *Job) (*Entry, error) {
	t0 := time.Now()
	entry, hit := m.cache.Get(j.previewKey)
	if hit {
		m.met.previewHits.Inc()
	} else {
		run := &progressive.Runner{Store: m.store, Batch: m.batch, Workers: m.opt.PreviewWorkers}
		vol, tm, err := run.Build(ctx, j.plan, j.cfg.InputPrefix, j.cfg.Window)
		if err != nil {
			return nil, err
		}
		entry = &Entry{Volume: vol, Times: previewStageTimes(tm)}
		m.cache.Put(j.previewKey, entry)
		m.met.previewsBuilt.Inc()
	}
	j.mu.Lock()
	j.preview = entry
	j.mu.Unlock()
	m.events.Publish(j.ID, Event{Type: EventPreview, Factor: j.plan.Factor, Total: j.plan.Coarse.Nz})
	sec := time.Since(t0).Seconds()
	m.met.previewSec.Observe(sec)
	m.log.Info("preview ready", "job_id", j.ID, "trace_id", j.traceID,
		"factor", j.plan.Factor, "cached", hit, "preview_sec", sec)
	if m.opt.testOnPreview != nil {
		m.opt.testOnPreview(j.ID, j.plan.Factor)
	}
	return entry, nil
}

// previewFor returns a job's preview entry for serving: the one pinned on
// the job record, else the cache under the preview key (and through it the
// PFS spill tier — a restarted or byte-pressured daemon can still serve a
// preview it no longer holds in memory). nil when the tier has not been
// built or is unreachable.
func (m *Manager) previewFor(j *Job) *Entry {
	if !j.qual.WantsPreview() {
		return nil
	}
	if e := j.Preview(); e != nil {
		return e
	}
	if e, ok := m.cache.Get(j.previewKey); ok {
		return e
	}
	return nil
}

// verifyPreview is the coarse analogue of verifyAgainstSerial: it rebuilds
// the preview through the local (unbatched) filter path and compares. The
// preview contract is determinism — the served coarse volume must be the
// exact function of the staged dataset that journal replay reproduces — so
// the check proves the batcher-riding build matches an independent one.
func (m *Manager) verifyPreview(ctx context.Context, j *Job, e *Entry) error {
	run := &progressive.Runner{Store: m.store, Workers: m.opt.PreviewWorkers}
	ref, _, err := run.Build(ctx, j.plan, j.cfg.InputPrefix, j.cfg.Window)
	if err != nil {
		return err
	}
	rmse, err := volume.RMSE(ref, e.Volume)
	if err != nil {
		return err
	}
	s := ref.Summarize()
	scale := math.Max(math.Abs(float64(s.Min)), math.Abs(float64(s.Max)))
	if scale > 0 {
		rmse /= scale
	}
	e.RelRMSE = rmse
	e.Verified = true
	return nil
}
