package service

import (
	"encoding/json"
	"fmt"
	"mime/multipart"
	"net/http"
	"net/textproto"
	"strconv"
	"strings"

	"ifdk/internal/compress"
	"ifdk/internal/hpc/pfs"
	"ifdk/internal/service/progressive"
	"ifdk/internal/volume"
	"ifdk/pkg/api"
)

// events serves GET /v1/jobs/{id}/events: the job's lifecycle as
// Server-Sent Events. Each event's id is its per-job sequence number, so a
// reconnecting client resumes with the standard Last-Event-ID header (or an
// ?after= query parameter) and replays only what it has not seen. The
// stream replays retained history first — subscribing to a finished job
// yields its full (coalesced) lifecycle — then follows the live run and
// ends after the terminal event.
func (s *Server) events(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.m.Get(id); !ok {
		writeErr(w, api.CodeNotFound, "no such job %q", id)
		return
	}
	after := int64(0)
	lastID := r.Header.Get("Last-Event-ID")
	if lastID == "" {
		lastID = r.URL.Query().Get("after")
	}
	if lastID != "" {
		n, err := strconv.ParseInt(lastID, 10, 64)
		if err != nil || n < 0 {
			writeErr(w, api.CodeBadRequest, "Last-Event-ID must be a non-negative integer")
			return
		}
		after = n
	}
	sub, err := s.m.subscribe(id, after)
	if err != nil {
		writeErr(w, api.CodeNotFound, "no such job %q", id)
		return
	}
	defer sub.Close()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no") // proxies must not buffer the stream
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	// Flush the headers now: a client resuming at the tip of the stream may
	// otherwise sit on an unanswered request until the next event happens.
	if err := rc.Flush(); err != nil {
		return
	}
	for {
		batch, ok := sub.Next(r.Context())
		for _, e := range batch {
			data, err := json.Marshal(e)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, e.Type, data); err != nil {
				return // client went away
			}
		}
		if err := rc.Flush(); err != nil {
			return
		}
		if !ok {
			return
		}
	}
}

// acceptsGzip reports whether the request advertises gzip content coding.
// A quality value of 0 is an explicit refusal (RFC 9110 §12.4.2), so
// "gzip;q=0" disables compression even though it names the coding.
func acceptsGzip(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept-Encoding"), ",") {
		coding, params, _ := strings.Cut(strings.TrimSpace(part), ";")
		if strings.TrimSpace(coding) != "gzip" && strings.TrimSpace(coding) != "*" {
			continue
		}
		q := strings.ReplaceAll(strings.TrimSpace(params), " ", "")
		if strings.HasPrefix(q, "q=") {
			if v, err := strconv.ParseFloat(strings.TrimPrefix(q, "q="), 64); err == nil && v <= 0 {
				continue
			}
		}
		return true
	}
	return false
}

// preview serves GET /v1/jobs/{id}/preview: the job's coarse preview
// volume as one multipart/mixed response, one part per coarse z-slice in
// the PFS image format, each marked with HeaderPreviewFactor. The preview
// is a point-in-time artifact, not a stream — it either exists in full or
// not at all — so a job whose preview phase has not completed answers
// not_yet_written (retryable); a full-quality job has no preview tier and
// answers bad_request; a failed or cancelled job without one answers
// terminal, matching /stream.
func (s *Server) preview(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.m.job(id)
	if !ok {
		writeErr(w, api.CodeNotFound, "no such job %q", id)
		return
	}
	if !j.qual.WantsPreview() {
		writeErr(w, api.CodeBadRequest, "job %s has quality %s: no preview tier", id, j.qual)
		return
	}
	e := s.m.previewFor(j)
	if e == nil || e.Volume == nil {
		if st := j.State(); st == StateFailed || st == StateCancelled {
			writeErr(w, api.CodeTerminal, "job %s is %s: no preview", id, st)
			return
		}
		writeErr(w, api.CodeNotYetWritten, "preview of job %s not built yet (state %s)", id, j.State())
		return
	}
	gzipParts := acceptsGzip(r)
	mw := multipart.NewWriter(w)
	defer mw.Close()
	w.Header().Set("Content-Type", "multipart/mixed; boundary="+mw.Boundary())
	w.Header().Set(api.HeaderPreviewFactor, strconv.Itoa(j.plan.Factor))
	w.WriteHeader(http.StatusOK)
	for z := 0; z < e.Volume.Nz; z++ {
		hdr := textproto.MIMEHeader{}
		hdr.Set("Content-Type", api.ContentTypeSlice)
		hdr.Set(api.HeaderSliceZ, strconv.Itoa(z))
		hdr.Set(api.HeaderSliceTotal, strconv.Itoa(e.Volume.Nz))
		hdr.Set(api.HeaderPreviewFactor, strconv.Itoa(j.plan.Factor))
		blob := volume.ImageToBytes(e.Volume.SliceZ(z))
		if gzipParts {
			gz, err := compress.Gzip(blob)
			if err != nil {
				return
			}
			hdr.Set("Content-Encoding", api.EncodingGzip)
			blob = gz
		}
		part, err := mw.CreatePart(hdr)
		if err != nil {
			return
		}
		if _, err := part.Write(blob); err != nil {
			return
		}
	}
}

// stream serves GET /v1/jobs/{id}/stream: the job's output slices as a
// chunked multipart/mixed body, each part one z-slice in the PFS image
// format (little-endian W,H header + float32 payload), delivered as its row
// group finishes — while the job is still running. Attaching late replays
// the already-written slices first (from the PFS mid-run, or from the
// cached volume once done), then follows the live epilogue. The final part
// is the job's terminal JSON view.
//
// Progressive jobs prepend the coarse tier: as soon as the preview volume
// exists (EventPreview, or immediately on attach once built), its slices
// are emitted as parts marked with HeaderPreviewFactor, indexed on the
// coarse grid — always before the first full-resolution part, so a client
// has a renderable volume while the full pipeline is still in its first
// rounds. Preview-quality jobs are served like ordinary jobs whose result
// happens to be the coarse volume: plain parts, coarse slice total, no
// preview header.
//
// When the request advertises Accept-Encoding: gzip, each slice part is
// DEFLATE-compressed independently (Content-Encoding: gzip on the part, not
// the response) — filtered CT slices are smooth and compress well, and
// independent parts keep late attach and mid-stream resume trivial.
func (s *Server) stream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.m.job(id)
	if !ok {
		writeErr(w, api.CodeNotFound, "no such job %q", id)
		return
	}
	// Subscribe before inspecting state so no slice event can fall between
	// the snapshot and the live tail.
	sub, err := s.m.subscribe(id, 0)
	if err != nil {
		writeErr(w, api.CodeNotFound, "no such job %q", id)
		return
	}
	defer sub.Close()

	nz := j.resultNz()
	if st := j.State(); st == StateFailed || st == StateCancelled {
		writeErr(w, api.CodeTerminal, "job %s is %s: no slice stream", id, st)
		return
	}
	gzipParts := acceptsGzip(r)

	mw := multipart.NewWriter(w)
	defer mw.Close()
	w.Header().Set("Content-Type", "multipart/mixed; boundary="+mw.Boundary())
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	if err := rc.Flush(); err != nil { // headers out before the first slice exists
		return
	}

	sent := make([]bool, nz)
	writePart := func(hdr textproto.MIMEHeader, blob []byte) error {
		if gzipParts {
			gz, err := compress.Gzip(blob)
			if err != nil {
				return err
			}
			hdr.Set("Content-Encoding", api.EncodingGzip)
			blob = gz
		}
		part, err := mw.CreatePart(hdr)
		if err != nil {
			return err
		}
		if _, err := part.Write(blob); err != nil {
			return err
		}
		return rc.Flush()
	}
	sendBlob := func(z int, blob []byte) error {
		hdr := textproto.MIMEHeader{}
		hdr.Set("Content-Type", api.ContentTypeSlice)
		hdr.Set(api.HeaderSliceZ, strconv.Itoa(z))
		hdr.Set(api.HeaderSliceTotal, strconv.Itoa(nz))
		sent[z] = true
		return writePart(hdr, blob)
	}
	// sendPreview emits a progressive job's coarse tier — every preview
	// slice, marked with the decimation factor and indexed on the coarse
	// grid — as soon as the preview volume is reachable. It is called before
	// any full-resolution send on every path (attach-time replay and the
	// EventPreview that precedes all slice events), so preview parts always
	// lead the stream; once emitted it is a no-op.
	previewSent := false
	sendPreview := func() error {
		if previewSent || j.qual != progressive.Progressive {
			return nil
		}
		e := s.m.previewFor(j)
		if e == nil || e.Volume == nil {
			return nil
		}
		previewSent = true
		cnz := e.Volume.Nz
		for z := 0; z < cnz; z++ {
			hdr := textproto.MIMEHeader{}
			hdr.Set("Content-Type", api.ContentTypeSlice)
			hdr.Set(api.HeaderSliceZ, strconv.Itoa(z))
			hdr.Set(api.HeaderSliceTotal, strconv.Itoa(cnz))
			hdr.Set(api.HeaderPreviewFactor, strconv.Itoa(j.plan.Factor))
			if err := writePart(hdr, volume.ImageToBytes(e.Volume.SliceZ(z))); err != nil {
				return err
			}
		}
		return nil
	}
	// sendFromPFS streams slice z if it is already durable; absent slices
	// are simply not ready yet and will arrive with their event.
	sendFromPFS := func(z int) error {
		if z < 0 || z >= nz || sent[z] {
			return nil
		}
		blob, _, err := s.m.store.Read(pfs.SlicePath(j.outPrefix(), z))
		if err != nil {
			return nil
		}
		return sendBlob(z, blob)
	}
	// finish emits any slices the event replay window lost, then the
	// terminal JSON view as the closing part. resultFor falls through to
	// the cache and its PFS spill tier, so a stream attached to a done job
	// whose volume was evicted under byte pressure still completes.
	finish := func() {
		if e := s.m.resultFor(j); e != nil && e.Volume != nil {
			for z := 0; z < nz; z++ {
				if !sent[z] {
					if err := sendBlob(z, volume.ImageToBytes(e.Volume.SliceZ(z))); err != nil {
						return
					}
				}
			}
		} else {
			for z := 0; z < nz; z++ {
				if err := sendFromPFS(z); err != nil {
					return
				}
			}
		}
		hdr := textproto.MIMEHeader{}
		hdr.Set("Content-Type", "application/json")
		v := j.snapshot()
		hdr.Set(api.HeaderStreamEnd, string(v.State))
		part, err := mw.CreatePart(hdr)
		if err != nil {
			return
		}
		_ = json.NewEncoder(part).Encode(v)
		_ = rc.Flush()
	}

	// Replay the preview tier first if it already exists, then slices
	// already on the PFS (late subscribe to a running job), then follow the
	// live event stream; slice events arriving for what the replay already
	// sent are deduplicated by the sent bitmap.
	if err := sendPreview(); err != nil {
		return
	}
	for z := 0; z < nz; z++ {
		if err := sendFromPFS(z); err != nil {
			return
		}
	}
	for {
		batch, ok := sub.Next(r.Context())
		for _, e := range batch {
			switch {
			case e.Type == EventPreview:
				if err := sendPreview(); err != nil {
					return
				}
			case e.Type == EventSlice:
				if err := sendFromPFS(e.Z); err != nil {
					return
				}
			case e.Type.Terminal():
				finish()
				return
			}
		}
		if !ok {
			// Stream over without a terminal event in the retained log:
			// the client disconnected, the job was deleted mid-stream, or
			// the terminal event predates the replay window. If the job
			// is terminal, still close the stream properly.
			if j.State().Terminal() {
				finish()
			}
			return
		}
	}
}
