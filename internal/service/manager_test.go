package service

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"ifdk/internal/hpc/pfs"
)

func testSpec() Spec {
	return Spec{Phantom: "shepplogan", NX: 16, R: 2, C: 2}
}

// pfsThrottled models slow storage so in-flight jobs live long enough for
// cancellation tests to land mid-run.
func pfsThrottled() pfs.Config {
	return pfs.Config{ReadBW: 2e6, Targets: 1, Throttle: true}
}

func waitState(t *testing.T, m *Manager, id string, timeout time.Duration) View {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		v, ok := m.Get(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if v.State.Terminal() {
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	v, _ := m.Get(id)
	t.Fatalf("job %s stuck in %s after %v", id, v.State, timeout)
	return View{}
}

func shutdown(t *testing.T, m *Manager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Errorf("shutdown: %v", err)
	}
}

func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d, baseline %d", runtime.NumGoroutine(), baseline)
}

// A burst beyond queue+pool capacity must hit backpressure; everything
// admitted must complete correctly.
func TestSaturationAndCompletion(t *testing.T) {
	m := NewManager(Options{Workers: 2, QueueCap: 3})
	var admitted []string
	sawFull := false
	spec := testSpec()
	spec.Verify = true
	// Vary NP across submissions so no two specs share a cache entry.
	for i := 0; i < 12; i++ {
		s := spec
		s.NP = 32 + 4*(i%6)
		v, err := m.Submit(s)
		if errors.Is(err, ErrQueueFull) {
			sawFull = true
			time.Sleep(20 * time.Millisecond)
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		admitted = append(admitted, v.ID)
	}
	if !sawFull {
		t.Error("no backpressure despite 12 submits into a 2+3 service")
	}
	if len(admitted) == 0 {
		t.Fatal("nothing admitted")
	}
	for _, id := range admitted {
		v := waitState(t, m, id, 30*time.Second)
		if v.State != StateDone && !v.CacheHit {
			t.Errorf("job %s: state %s (%s)", id, v.State, v.Error)
		}
		if v.State == StateDone && !v.CacheHit {
			if !v.Verified || v.RelRMSE > 1e-5 {
				t.Errorf("job %s: verified=%v relRMSE=%g, want < 1e-5", id, v.Verified, v.RelRMSE)
			}
		}
	}
	shutdown(t, m)
}

// An identical resubmission after completion must be served from the cache
// instantly, sharing the first run's timings and verification.
func TestCacheHitOnResubmit(t *testing.T) {
	m := NewManager(Options{Workers: 1})
	first, err := m.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	v1 := waitState(t, m, first.ID, 30*time.Second)
	if v1.State != StateDone || v1.CacheHit {
		t.Fatalf("first run: %+v", v1)
	}
	second, err := m.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if second.State != StateDone || !second.CacheHit {
		t.Fatalf("resubmission not served from cache: %+v", second)
	}
	volA, err := m.Volume(first.ID)
	if err != nil {
		t.Fatal(err)
	}
	volB, err := m.Volume(second.ID)
	if err != nil {
		t.Fatal(err)
	}
	if volA != volB {
		t.Error("cache hit did not share the stored volume")
	}
	// A different grid over the same dataset is a different result.
	other := testSpec()
	other.R, other.C = 4, 1
	v3, err := m.Submit(other)
	if err != nil {
		t.Fatal(err)
	}
	if v3.CacheHit {
		t.Error("different grid shape hit the cache")
	}
	waitState(t, m, v3.ID, 30*time.Second)
	st := m.Metrics().Cache
	if st.Hits != 1 {
		t.Errorf("cache hits = %d, want 1", st.Hits)
	}
	shutdown(t, m)
}

// A verify request must not be satisfied by an unverified cached entry.
func TestVerifyBypassesUnverifiedCacheEntry(t *testing.T) {
	m := NewManager(Options{Workers: 1})
	plain, err := m.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, plain.ID, 30*time.Second)
	withVerify := testSpec()
	withVerify.Verify = true
	v, err := m.Submit(withVerify)
	if err != nil {
		t.Fatal(err)
	}
	if v.CacheHit {
		t.Fatal("verify request served from an unverified cache entry")
	}
	final := waitState(t, m, v.ID, 30*time.Second)
	if !final.Verified || final.RelRMSE > 1e-5 {
		t.Fatalf("verification missing: %+v", final)
	}
	// The verified entry replaced the cached one: now verify requests hit.
	v2, err := m.Submit(withVerify)
	if err != nil {
		t.Fatal(err)
	}
	if !v2.CacheHit || !v2.Verified {
		t.Fatalf("verified resubmission missed the cache: %+v", v2)
	}
	shutdown(t, m)
}

// Oversized requests are rejected at admission, not run to OOM.
func TestSubmitRejectsOversizedProblems(t *testing.T) {
	m := NewManager(Options{Workers: 1})
	for _, s := range []Spec{
		{Phantom: "sphere", NX: 1024, R: 2, C: 2},
		{Phantom: "sphere", NX: 16, NP: 100000, R: 2, C: 2},
		{Phantom: "sphere", NX: 16, R: 16, C: 16},
	} {
		if _, err := m.Submit(s); err == nil {
			t.Errorf("oversized spec accepted: %+v", s)
		}
	}
	shutdown(t, m)
}

// The job table stays bounded: old terminal records (and their PFS output)
// are pruned once MaxJobs is exceeded.
func TestJobRecordsPruned(t *testing.T) {
	m := NewManager(Options{Workers: 1, MaxJobs: 3})
	var ids []string
	for i := 0; i < 6; i++ {
		s := testSpec()
		s.NP = 32 + 4*i
		v, err := m.Submit(s)
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, m, v.ID, 30*time.Second)
		ids = append(ids, v.ID)
	}
	if n := len(m.List()); n > 3 {
		t.Fatalf("job table holds %d records, want <= 3", n)
	}
	if _, ok := m.Get(ids[0]); ok {
		t.Error("oldest record survived pruning")
	}
	if n := len(m.Store().List("jobs/" + ids[0] + "/")); n != 0 {
		t.Errorf("%d output objects of pruned job survived", n)
	}
	if _, ok := m.Get(ids[5]); !ok {
		t.Error("newest record was pruned")
	}
	shutdown(t, m)
}

// Cancelling an in-flight job must return promptly and leak nothing.
func TestCancelMidRun(t *testing.T) {
	baseline := runtime.NumGoroutine()
	// Throttled storage stretches the run so the cancel lands mid-flight.
	m := NewManager(Options{Workers: 1, PFS: pfsThrottled()})
	v, err := m.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the job to actually start computing.
	deadline := time.Now().Add(10 * time.Second)
	for {
		cur, _ := m.Get(v.ID)
		if cur.State == StateRunning && cur.Progress > 0 {
			break
		}
		if cur.State.Terminal() {
			t.Fatalf("job finished before cancel: %+v", cur)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	start := time.Now()
	if err := m.Cancel(v.ID); err != nil {
		t.Fatal(err)
	}
	final := waitState(t, m, v.ID, 10*time.Second)
	if final.State != StateCancelled {
		t.Fatalf("state = %s, want cancelled", final.State)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("cancel took %v", d)
	}
	if err := m.Cancel(v.ID); err == nil {
		t.Error("cancelling a terminal job succeeded")
	}
	shutdown(t, m)
	waitGoroutines(t, baseline)
}

// Cancelling a queued job withdraws it before it ever runs.
func TestCancelQueued(t *testing.T) {
	m := NewManager(Options{Workers: 1, QueueCap: 8, PFS: pfsThrottled()})
	blocker, err := m.Submit(testSpec()) // occupies the only worker
	if err != nil {
		t.Fatal(err)
	}
	queuedSpec := testSpec()
	queuedSpec.NP = 48
	queued, err := m.Submit(queuedSpec)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	v, _ := m.Get(queued.ID)
	if v.State != StateCancelled {
		t.Fatalf("queued job state = %s", v.State)
	}
	_ = m.Cancel(blocker.ID)
	shutdown(t, m)
}

// Delete removes the record and the job's PFS namespace.
func TestDeleteJobCleansNamespace(t *testing.T) {
	m := NewManager(Options{Workers: 1})
	v, err := m.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, v.ID, 30*time.Second)
	if n := len(m.Store().List("jobs/" + v.ID + "/")); n == 0 {
		t.Fatal("no output slices stored")
	}
	if err := m.Delete(v.ID); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Get(v.ID); ok {
		t.Error("job record survived delete")
	}
	if n := len(m.Store().List("jobs/" + v.ID + "/")); n != 0 {
		t.Errorf("%d output objects survived delete", n)
	}
	shutdown(t, m)
}

// After Shutdown the manager rejects submissions and has drained its pool.
func TestShutdownRejectsAndDrains(t *testing.T) {
	m := NewManager(Options{Workers: 2})
	v, err := m.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	shutdown(t, m)
	final, _ := m.Get(v.ID)
	if !final.State.Terminal() {
		t.Errorf("in-flight job not terminal after graceful shutdown: %s", final.State)
	}
	if _, err := m.Submit(testSpec()); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after shutdown: %v", err)
	}
}

// Hammer the cancel-vs-pop race: Cancel's queue.Remove is best-effort and
// can lose to a concurrent worker Pop, so the worker must re-check terminal
// state after popping. A job the client was told is cancelled must never run
// anyway (flip back to running/done). Run under -race; before the re-check
// this reliably flips a few jobs per thousand.
func TestCancelPopRaceNeverRevivesJob(t *testing.T) {
	m := NewManager(Options{Workers: 4, QueueCap: 256, CacheBytes: -1, PFS: pfsThrottled()})
	defer shutdown(t, m)

	const rounds = 60
	cancelled := make([]string, 0, rounds)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < rounds; i++ {
		spec := testSpec()
		spec.NP = 32 + i // distinct cache keys: a cache hit would dodge the queue entirely
		v, err := m.Submit(spec)
		if err != nil {
			continue // queue momentarily full: fine, the race needs depth, not every job
		}
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			if err := m.Cancel(id); err != nil {
				return // already terminal: not a queued-cancel race
			}
			if v, ok := m.Get(id); ok && v.State == StateCancelled {
				mu.Lock()
				cancelled = append(cancelled, id)
				mu.Unlock()
			}
		}(v.ID)
	}
	wg.Wait()
	if len(cancelled) == 0 {
		t.Skip("no cancellation landed while queued; race window not exercised")
	}
	for _, id := range cancelled {
		v := waitState(t, m, id, time.Minute)
		if v.State != StateCancelled {
			t.Fatalf("job %s was acked cancelled but ended %s — worker revived a corpse", id, v.State)
		}
	}
}
