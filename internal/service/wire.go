package service

import "ifdk/pkg/api"

// The wire types are defined once, in the public pkg/api contract; the
// aliases below exist only so the service internals (and their large test
// surface) can keep the short names. There is deliberately no second
// definition of any wire type in this package — the server marshals exactly
// what pkg/api declares, and pkg/client unmarshals the same.
type (
	// Spec is a reconstruction request (api.Spec).
	Spec = api.Spec
	// View is the JSON representation of a job (api.View).
	View = api.View
	// Stages is the wire form of core.StageTimes (api.Stages).
	Stages = api.Stages
	// State is a job's lifecycle phase (api.State).
	State = api.State
	// Event is one entry of a job's event stream (api.Event).
	Event = api.Event
	// EventType labels one lifecycle event (api.EventType).
	EventType = api.EventType
	// Metrics is the /v1/metrics snapshot (api.Metrics).
	Metrics = api.Metrics
	// AdmissionStats counts admission decisions (api.AdmissionStats).
	AdmissionStats = api.AdmissionStats
	// WaitStats summarizes queue waits per class (api.WaitStats).
	WaitStats = api.WaitStats
	// CacheStats is the result cache snapshot (api.CacheStats).
	CacheStats = api.CacheStats
)

// Re-exported constants, same story as the type aliases above.
const (
	StateQueued    = api.StateQueued
	StateRunning   = api.StateRunning
	StateDone      = api.StateDone
	StateFailed    = api.StateFailed
	StateCancelled = api.StateCancelled

	EventQueued    = api.EventQueued
	EventStarted   = api.EventStarted
	EventRound     = api.EventRound
	EventSlice     = api.EventSlice
	EventPreview   = api.EventPreview
	EventTrace     = api.EventTrace
	EventDone      = api.EventDone
	EventFailed    = api.EventFailed
	EventCancelled = api.EventCancelled
)
