package service

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// The Event and EventType wire types live in pkg/api (see wire.go); this
// file is the server-side fan-out machinery behind them.

// topic is one job's retained event log plus its live subscribers. The log
// is the only buffer: publishers append (never block) and every subscriber
// reads at its own pace through a cursor, so a stalled consumer can never
// exert backpressure on the compute plane — it can only fall behind and, if
// the log overflows its bound, lose the oldest events.
type topic struct {
	mu      sync.Mutex
	events  []Event // retained, seq-stamped, ascending
	nextSeq int64
	closed  bool // a terminal event was published, or the job was dropped
	subs    map[chan struct{}]struct{}
}

// Bus is the per-job event fan-out registry of a Manager.
type Bus struct {
	logCap int
	drops  atomic.Int64 // events discarded by bounded per-job logs
	mu     sync.Mutex
	topics map[string]*topic
}

// NewBus creates a bus retaining up to logCap events per job (≤ 0 uses the
// default of 1024 — comfortably above Nz for the largest admissible volume,
// so slice events survive for full replay to late subscribers).
func NewBus(logCap int) *Bus {
	if logCap <= 0 {
		logCap = 1024
	}
	return &Bus{logCap: logCap, topics: make(map[string]*topic)}
}

func (b *Bus) topicFor(job string, create bool) *topic {
	b.mu.Lock()
	defer b.mu.Unlock()
	tp := b.topics[job]
	if tp == nil && create {
		tp = &topic{nextSeq: 1, subs: make(map[chan struct{}]struct{})}
		b.topics[job] = tp
	}
	return tp
}

// Publish appends one event to the job's stream, stamping its sequence
// number and timestamp, and wakes subscribers. It never blocks: consecutive
// round events coalesce in place (only the latest matters for progress) and
// the log drops its oldest entries beyond the retention bound. Events after
// a terminal event are discarded.
func (b *Bus) Publish(job string, e Event) {
	tp := b.topicFor(job, true)
	tp.mu.Lock()
	if tp.closed {
		tp.mu.Unlock()
		return
	}
	e.Job = job
	e.Seq = tp.nextSeq
	tp.nextSeq++
	e.Time = time.Now().UTC().Format(time.RFC3339Nano)
	if n := len(tp.events); n > 0 && e.Type == EventRound && tp.events[n-1].Type == EventRound {
		tp.events[n-1] = e // coalesce: replace the stale progress tick
	} else {
		tp.events = append(tp.events, e)
	}
	if over := len(tp.events) - b.logCap; over > 0 {
		tp.events = append(tp.events[:0], tp.events[over:]...)
		b.drops.Add(int64(over))
	}
	if e.Type.Terminal() {
		tp.closed = true
	}
	for ch := range tp.subs {
		select {
		case ch <- struct{}{}:
		default: // already signalled; the subscriber will catch up
		}
	}
	tp.mu.Unlock()
}

// Drops reports how many events the bounded per-job logs have discarded
// since startup — a consumer that polls or resumes slower than the
// retention window loses exactly these. Exported via /v1/metrics
// (event_drops) and ifdk_event_drops_total.
func (b *Bus) Drops() int64 { return b.drops.Load() }

// Drop discards a job's topic (the job record was deleted or pruned) and
// wakes its subscribers, whose Next calls then report the stream closed.
func (b *Bus) Drop(job string) {
	b.mu.Lock()
	tp := b.topics[job]
	delete(b.topics, job)
	b.mu.Unlock()
	if tp == nil {
		return
	}
	tp.mu.Lock()
	tp.closed = true
	for ch := range tp.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
	tp.mu.Unlock()
}

// Subscription is one consumer's cursor into a job's event stream.
type Subscription struct {
	tp     *topic
	notify chan struct{}
	cursor int64 // highest Seq already delivered
}

// Subscribe attaches a consumer to a job's stream, replaying retained
// events with Seq > after (after = 0 replays everything still retained; a
// cursor older than the retention window resumes from the oldest event,
// silently skipping what was dropped). The caller must Close the
// subscription when done.
func (b *Bus) Subscribe(job string, after int64) *Subscription {
	tp := b.topicFor(job, true)
	s := &Subscription{tp: tp, notify: make(chan struct{}, 1), cursor: after}
	tp.mu.Lock()
	tp.subs[s.notify] = struct{}{}
	tp.mu.Unlock()
	return s
}

// Close detaches the subscription from the topic.
func (s *Subscription) Close() {
	s.tp.mu.Lock()
	delete(s.tp.subs, s.notify)
	s.tp.mu.Unlock()
}

// pending returns the retained events beyond the cursor and whether the
// stream can still grow.
func (s *Subscription) pending() (batch []Event, open bool) {
	s.tp.mu.Lock()
	defer s.tp.mu.Unlock()
	for _, e := range s.tp.events {
		if e.Seq > s.cursor {
			batch = append(batch, e)
		}
	}
	if n := len(batch); n > 0 {
		s.cursor = batch[n-1].Seq
	}
	return batch, !s.tp.closed
}

// Next blocks until events beyond the cursor are available and returns
// them. ok == false means the stream is over: every retained event has been
// delivered and no more will come (terminal event published, job dropped)
// or ctx ended first. A batch accompanied by ok == false is still valid —
// it is the final batch, ending in the terminal event.
func (s *Subscription) Next(ctx context.Context) (batch []Event, ok bool) {
	for {
		batch, open := s.pending()
		if len(batch) > 0 || !open {
			return batch, open
		}
		select {
		case <-s.notify:
		case <-ctx.Done():
			return nil, false
		}
	}
}
