// Package service is the reconstruction serving layer on top of the iFDK
// core: a job manager with a bounded priority queue, a worker pool running
// up to K concurrent distributed reconstructions, a content-addressed result
// cache, and an HTTP API speaking the versioned pkg/api contract. It turns
// the paper's one-shot pipeline (Fig. 2–4) into a long-lived system with
// submit/status/cancel semantics, backpressure and instant replies for
// repeated requests — the serving-side counterpart of the paper's "instant"
// reconstruction claim.
package service

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"ifdk/internal/core"
	"ifdk/internal/ct/filter"
	"ifdk/internal/ct/geometry"
	"ifdk/internal/ct/phantom"
	"ifdk/internal/ct/preview"
	"ifdk/internal/service/progressive"
	"ifdk/pkg/api"
)

// Priority orders jobs within the queue; higher priorities pop first,
// FIFO within a priority class.
type Priority int

const (
	// PriorityLow is background work (e.g. re-verification sweeps).
	PriorityLow Priority = iota
	// PriorityNormal is the default interactive class.
	PriorityNormal
	// PriorityHigh preempts queued normal work (not running jobs).
	PriorityHigh
	numPriorities
)

// ParsePriority maps the wire strings "low", "normal" (or ""), "high".
func ParsePriority(s string) (Priority, error) {
	switch strings.ToLower(s) {
	case "low":
		return PriorityLow, nil
	case "", "normal":
		return PriorityNormal, nil
	case "high":
		return PriorityHigh, nil
	}
	return 0, fmt.Errorf("service: unknown priority %q", s)
}

func (p Priority) String() string {
	switch p {
	case PriorityLow:
		return "low"
	case PriorityHigh:
		return "high"
	default:
		return "normal"
	}
}

// specWithDefaults fills the zero fields exactly as cmd/ifdk does. (A free
// function, not a method: Spec is an alias of the public api.Spec, and the
// defaulting policy is server business, not contract.)
func specWithDefaults(s Spec) Spec {
	if s.Phantom == "" {
		s.Phantom = "shepplogan"
	}
	if s.NX <= 0 {
		s.NX = 16
	}
	if s.NU <= 0 {
		s.NU = 2 * s.NX
	}
	if s.NP <= 0 {
		s.NP = 2 * s.NX
	}
	if s.R <= 0 {
		s.R = 2
	}
	if s.C <= 0 {
		s.C = 2
	}
	if s.Window == "" {
		s.Window = filter.RamLak.String()
	}
	if s.Quality == "" {
		s.Quality = api.QualityFull
	}
	if s.Client == "" {
		s.Client = "anonymous"
	}
	return s
}

// Admission limits: one request must not be able to allocate unbounded
// memory on the daemon (the in-memory PFS holds every staged projection and
// output slice, and each rank owns a slab of the volume).
const (
	maxNX    = 256
	maxNU    = 1024
	maxNP    = 4096
	maxRanks = 64
)

// compileSpec resolves a Spec into the pieces the worker needs: the phantom,
// the geometry, and a core.Config without I/O prefixes (the manager fills
// those per job).
func compileSpec(s Spec) (phantom.Phantom, core.Config, error) {
	s = specWithDefaults(s)
	if s.NX > maxNX || s.NU > maxNU || s.NP > maxNP {
		return phantom.Phantom{}, core.Config{}, fmt.Errorf(
			"service: problem size nx=%d nu=%d np=%d exceeds limits (%d, %d, %d)",
			s.NX, s.NU, s.NP, maxNX, maxNU, maxNP)
	}
	if s.R*s.C > maxRanks {
		return phantom.Phantom{}, core.Config{}, fmt.Errorf(
			"service: grid %dx%d = %d ranks exceeds limit %d", s.R, s.C, s.R*s.C, maxRanks)
	}
	g := geometry.Default(s.NU, s.NU, s.NP, s.NX, s.NX, s.NX)
	ph, err := pickPhantom(s.Phantom, g)
	if err != nil {
		return phantom.Phantom{}, core.Config{}, err
	}
	win, err := pickWindow(s.Window)
	if err != nil {
		return phantom.Phantom{}, core.Config{}, err
	}
	if _, err := ParsePriority(s.Priority); err != nil {
		return phantom.Phantom{}, core.Config{}, err
	}
	if _, err := progressive.ParseQuality(s.Quality); err != nil {
		return phantom.Phantom{}, core.Config{}, fmt.Errorf("service: %w", err)
	}
	cfg := core.Config{R: s.R, C: s.C, Geometry: g, Window: win}
	probe := cfg
	probe.InputPrefix = "probe" // satisfy Validate; real prefix set at run time
	if err := probe.Validate(); err != nil {
		return phantom.Phantom{}, core.Config{}, err
	}
	return ph, cfg, nil
}

// resolvedSpec is a Spec compiled all the way to its identity: the defaulted
// spec, the worker-side pieces, the quality tier with its preview plan, and
// the cache keys. Submit, journal replay and SpecKey all derive identity
// through this one function, so a crash-replayed or re-routed job lands on
// byte-identical keys.
type resolvedSpec struct {
	spec Spec
	ph   phantom.Phantom
	cfg  core.Config // InputPrefix and AssembleVolume set
	prio Priority
	qual progressive.Quality
	plan preview.Plan // Factor ≥ 1; meaningful when qual.WantsPreview()

	// fullKey is the full-resolution result key — byte-identical to the
	// pre-quality derivation, so existing caches, spills, journals and
	// rendezvous placements stay valid. prevKey ("" unless the tier builds a
	// preview) can never alias any fullKey. key is the job's primary result
	// key: prevKey for preview-quality jobs, fullKey otherwise.
	fullKey string
	prevKey string
	key     string
}

func resolveSpec(s Spec) (resolvedSpec, error) {
	ph, cfg, err := compileSpec(s)
	if err != nil {
		return resolvedSpec{}, err
	}
	spec := specWithDefaults(s)
	cfg.InputPrefix = datasetPrefix(spec, cfg)
	cfg.AssembleVolume = true
	r := resolvedSpec{spec: spec, ph: ph, cfg: cfg, fullKey: CacheKey(cfg)}
	r.prio, _ = ParsePriority(spec.Priority)           // validated by compileSpec
	r.qual, _ = progressive.ParseQuality(spec.Quality) // validated by compileSpec
	r.key = r.fullKey
	if r.qual.WantsPreview() {
		plan, err := preview.PlanFor(cfg.Geometry, 0)
		if err != nil {
			return resolvedSpec{}, err
		}
		r.plan = plan
		r.prevKey = progressive.PreviewKey(r.fullKey, plan.Factor)
		if r.qual == progressive.Preview {
			r.key = r.prevKey
		}
	}
	return r, nil
}

// SpecKey returns the content cache key a Manager would derive for spec —
// "which volume from which data". It is the sharding key a front router
// hashes across backends: two submissions that would be cache-identical on
// one node must land on the same node, or the fleet-wide hit rate collapses
// to 1/N. The key is quality-aware: a preview-quality spec keys (and
// therefore routes) on its preview key, so preview traffic spreads off the
// full-resolution key's shard while repeated previews of one spec still
// share a backend cache. The error mirrors Submit's validation, so a router
// can reject unroutable specs before touching any backend.
func SpecKey(spec Spec) (string, error) {
	r, err := resolveSpec(spec)
	if err != nil {
		return "", err
	}
	return r.key, nil
}

func pickPhantom(name string, g geometry.Params) (phantom.Phantom, error) {
	r := g.FOVRadius() * 0.9
	switch name {
	case "shepplogan":
		return phantom.SheppLogan3D(r), nil
	case "sphere":
		return phantom.UniformSphere(r*0.6, 1), nil
	case "industrial":
		return phantom.IndustrialBlock(r), nil
	default:
		return phantom.Phantom{}, fmt.Errorf("service: unknown phantom %q", name)
	}
}

func pickWindow(name string) (filter.Window, error) {
	for _, w := range []filter.Window{filter.RamLak, filter.SheppLogan, filter.Cosine, filter.Hamming, filter.Hann} {
		if w.String() == name {
			return w, nil
		}
	}
	return 0, fmt.Errorf("service: unknown window %q", name)
}

// Job is one reconstruction request tracked by the manager. All mutable
// fields are guarded by mu; readers use snapshot().
type Job struct {
	ID       string
	Spec     Spec
	Priority Priority

	mu        sync.Mutex
	state     State
	err       string
	done      int // completed AllGather rounds
	total     int // Np rounds in total
	times     core.StageTimes
	cacheHit  bool
	relRMSE   float64 // only meaningful when Spec.Verify and state == done
	verified  bool
	submitted time.Time
	started   time.Time
	finished  time.Time
	cancel    func() // non-nil while running
	result    *Entry // terminal result (shared with the cache)

	// tracing: the job's trace identity (minted at submit or inherited from
	// the caller's traceparent) and the raw timestamps span assembly turns
	// into the lifecycle tree (see trace.go). rounds is rank 0's per-round
	// filter/AllGather clock, recorded by the compute plane into a
	// pre-sized buffer.
	traceID    string
	parentSpan string
	tStage0    time.Time // dataset staging window
	tStage1    time.Time
	tRun0      time.Time // distributed pipeline start
	rounds     []core.RoundTrace
	tVerify0   time.Time // serial-reference verification window
	tVerify1   time.Time

	// worker-side request, resolved once at submit time
	ph       phantom.Phantom
	cfg      core.Config // InputPrefix set; OutputPrefix/Progress set per run
	cacheKey string

	// quality tier (immutable after submit): qual and plan come from
	// resolveSpec; previewKey is the preview tier's cache key ("" unless the
	// tier builds one). For preview-quality jobs cacheKey == previewKey.
	// preview (mu-guarded) is the built preview entry of a progressive job,
	// shared with the cache.
	qual       progressive.Quality
	plan       preview.Plan
	previewKey string
	preview    *Entry

	// recovered marks a job rebuilt from the write-ahead journal after a
	// restart (immutable once the job is visible).
	recovered bool

	// submit-time cost estimate, immutable after Submit: the raw model
	// runtime (model seconds), the calibrated wall-clock estimate charged
	// against the queued-work budget, and the working-set bytes charged
	// against the in-flight byte budget.
	estModelSec float64
	estCost     float64 // calibrated seconds; what Queue.Push charges
	estBytes    int64
	charged     bool // held admission budget (byte accounting) until settled
	settled     bool // guarded by mu; true once the admission charge is released
}

func stagesOf(t core.StageTimes) Stages {
	return Stages{
		Load:        t.Load.Seconds(),
		Filter:      t.Filter.Seconds(),
		AllGather:   t.AllGather.Seconds(),
		Backproject: t.Backproject.Seconds(),
		Compute:     t.Compute.Seconds(),
		Reduce:      t.Reduce.Seconds(),
		Store:       t.Store.Seconds(),
		Total:       t.Total.Seconds(),
	}
}

func fmtTime(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.UTC().Format(time.RFC3339Nano)
}

// snapshot returns a consistent read-only view of the job.
func (j *Job) snapshot() View {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := View{
		ID:        j.ID,
		State:     j.state,
		Spec:      j.Spec,
		Priority:  j.Priority.String(),
		CacheHit:  j.cacheHit,
		Error:     j.err,
		RelRMSE:   j.relRMSE,
		Verified:  j.verified,
		Submitted: fmtTime(j.submitted),
		Started:   fmtTime(j.started),
		Finished:  fmtTime(j.finished),
		EstRunSec: j.estModelSec,
		Cost:      j.estCost,
		EstBytes:  j.estBytes,
		TraceID:   j.traceID,
		Stages:    stagesOf(j.times),
		Recovered: j.recovered,
		Quality:   j.qual.String(),
	}
	if j.qual.WantsPreview() {
		v.PreviewFactor = j.plan.Factor
	}
	if j.total > 0 {
		v.Progress = float64(j.done) / float64(j.total)
	}
	if j.state == StateDone {
		v.Progress = 1
	}
	switch {
	case !j.started.IsZero():
		v.WaitSec = j.started.Sub(j.submitted).Seconds()
	case !j.finished.IsZero(): // cache hit or cancelled while queued
		v.WaitSec = j.finished.Sub(j.submitted).Seconds()
	default:
		v.WaitSec = time.Since(j.submitted).Seconds()
	}
	if !j.started.IsZero() && !j.finished.IsZero() {
		v.RunSec = j.finished.Sub(j.started).Seconds()
	}
	return v
}

// outPrefix is the job's output namespace on the PFS, where the epilogue
// writes finished slices mid-run.
func (j *Job) outPrefix() string { return "jobs/" + j.ID + "/out" }

// resultNz is the z extent of the job's result volume: the coarse grid for
// preview-quality jobs (whose result IS the preview), the full grid
// otherwise. The slice and stream handlers index with this, never with the
// full geometry directly.
func (j *Job) resultNz() int {
	if j.qual == progressive.Preview {
		return j.plan.Coarse.Nz
	}
	return j.cfg.Geometry.Nz
}

// Preview returns the job's built preview entry (nil until the preview tier
// finished; always nil for full-quality jobs).
func (j *Job) Preview() *Entry {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.preview
}

// State returns the job's current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Result returns the terminal result entry (nil unless state == done).
func (j *Job) Result() *Entry {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}
