package service

import (
	"context"
	"net/http"
	"runtime"
	"strconv"
	"testing"
	"time"
)

// waitNetGoroutines is waitGoroutines for tests that stream over real
// HTTP: the default client parks readLoop/writeLoop goroutines on pooled
// idle connections, which are not leaks — evict them while polling so only
// genuinely stuck handlers fail the check.
func waitNetGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		http.DefaultClient.CloseIdleConnections()
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d, baseline %d", runtime.NumGoroutine(), baseline)
}

// waitSliceEvent blocks until the job has published its first slice event
// and returns it.
func waitSliceEvent(t *testing.T, m *Manager, id string) Event {
	t.Helper()
	sub := m.Events().Subscribe(id, 0)
	defer sub.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	for {
		batch, ok := sub.Next(ctx)
		for _, e := range batch {
			if e.Type == EventSlice {
				return e
			}
		}
		if !ok {
			t.Fatal("stream ended before any slice event")
		}
	}
}

// An SSE client that disconnects mid-run must unwind its handler without
// leaking goroutines or disturbing the job, which completes normally.
func TestSSEClientDisconnectMidRun(t *testing.T) {
	gate := newSliceGate()
	defer gate.open()
	opt := Options{Workers: 1}
	opt.testOnSlice = gate.hook
	ts, m := startTestServer(t, opt)
	baseline := runtime.NumGoroutine()

	_, v := postJob(t, ts.URL, testSpec())
	ctx, cancel := context.WithCancel(context.Background())
	events := openSSE(t, ctx, ts.URL+"/v1/jobs/"+v.ID+"/events", 0)
	waitSliceEvent(t, m, v.ID) // the run is parked mid-epilogue, stream live
	cancel()                   // client walks away while events keep coming
	// The drain ending proves the response was torn down while the job was
	// still mid-run (no terminal event had been published yet).
	for range events {
	}

	gate.open()
	if final := waitState(t, m, v.ID, time.Minute); final.State != StateDone {
		t.Fatalf("job after SSE disconnect = %s, want done (disconnect must not touch the run)", final.State)
	}
	waitNetGoroutines(t, baseline) // handler and rank goroutines all unwound
}

// Cancelling a job mid-stream must end the slice stream with a terminal
// cancelled part — not hang the consumer, not leak the handler.
func TestStreamJobCancelledMidStream(t *testing.T) {
	gate := newSliceGate()
	defer gate.open()
	opt := Options{Workers: 1}
	opt.testOnSlice = gate.hook
	ts, m := startTestServer(t, opt)
	baseline := runtime.NumGoroutine()

	_, v := postJob(t, ts.URL, testSpec())
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	parts, views := openStream(t, ctx, ts.URL+"/v1/jobs/"+v.ID+"/stream")
	waitSliceEvent(t, m, v.ID)
	if err := m.Cancel(v.ID); err != nil { // job is running: context teardown
		t.Fatal(err)
	}
	gate.open() // let the parked epilogue observe the cancellation

	for range parts {
	} // whatever was durable before the cancel still streams out
	final, ok := <-views
	if !ok {
		t.Fatal("stream ended without a terminal part after cancellation")
	}
	if final.State != StateCancelled {
		t.Fatalf("terminal stream part state = %s, want cancelled", final.State)
	}
	waitNetGoroutines(t, baseline)
}

// A streaming client on a job that gets deleted outright (terminal, then
// DELETE) is woken by the topic drop rather than left hanging.
func TestStreamEndsWhenJobDeleted(t *testing.T) {
	ts, m := startTestServer(t, Options{Workers: 1})
	baseline := runtime.NumGoroutine()
	_, v := postJob(t, ts.URL, testSpec())
	waitState(t, m, v.ID, time.Minute)

	// Subscribe directly at the bus layer, parked beyond the done event.
	sub := m.Events().Subscribe(v.ID, 1<<30)
	defer sub.Close()
	woken := make(chan bool, 1)
	go func() {
		_, ok := sub.Next(context.Background())
		woken <- ok
	}()
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+v.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	select {
	case ok := <-woken:
		if ok {
			t.Fatal("subscriber saw an open stream after the job was deleted")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("DELETE did not wake the parked subscriber")
	}
	waitNetGoroutines(t, baseline)
}

// Error paths of the streaming endpoints: unknown jobs, malformed resume
// cursors, and slice streams of jobs that ended without output.
func TestStreamEndpointEdgeCases(t *testing.T) {
	gate := newSliceGate()
	defer gate.open()
	opt := Options{Workers: 1}
	opt.testOnSlice = gate.hook
	ts, m := startTestServer(t, opt)

	status := func(path string, hdr map[string]string) int {
		t.Helper()
		req, _ := http.NewRequest(http.MethodGet, ts.URL+path, nil)
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}
	if got := status("/v1/jobs/nope/events", nil); got != http.StatusNotFound {
		t.Errorf("events of unknown job = %d, want 404", got)
	}
	if got := status("/v1/jobs/nope/stream", nil); got != http.StatusNotFound {
		t.Errorf("stream of unknown job = %d, want 404", got)
	}

	// The held job parks the only worker mid-epilogue, pinning the next
	// submission in the queue; cancelling that one is deterministic.
	_, held := postJob(t, ts.URL, testSpec())
	waitSliceEvent(t, m, held.ID)
	if got := status("/v1/jobs/"+held.ID+"/events", map[string]string{"Last-Event-ID": "xyz"}); got != http.StatusBadRequest {
		t.Errorf("events with bad Last-Event-ID = %d, want 400", got)
	}
	if got := status("/v1/jobs/"+held.ID+"/events?after=-3", nil); got != http.StatusBadRequest {
		t.Errorf("events with negative ?after = %d, want 400", got)
	}

	// A job cancelled while queued never produced slices: /stream is 409.
	_, queued := postJob(t, ts.URL, Spec{Phantom: "sphere", NX: 16, NP: 160, R: 2, C: 2})
	if err := m.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	if got := status("/v1/jobs/"+queued.ID+"/stream", nil); got != http.StatusConflict {
		t.Errorf("stream of cancelled job = %d, want 409", got)
	}
	if got := status("/v1/jobs/"+queued.ID+"/slice/3", nil); got != http.StatusConflict {
		t.Errorf("slice of cancelled job = %d, want 409 (it will never be written)", got)
	}
	gate.open()
	waitState(t, m, held.ID, time.Minute)
}

// Status-code regressions for GET /v1/jobs/{id}/slice/{z}: bad indices are
// the client's fault (400), valid-but-unwritten slices are 404 retryable,
// and a slice that IS on the PFS serves mid-run with 200.
func TestSliceStatusCodes(t *testing.T) {
	gate := newSliceGate()
	defer gate.open()
	opt := Options{Workers: 1}
	opt.testOnSlice = gate.hook
	ts, m := startTestServer(t, opt)

	_, v := postJob(t, ts.URL, testSpec()) // nx 16 → Nz 16
	first := waitSliceEvent(t, m, v.ID)    // parked: exactly slices 0 and 4's row heads durable

	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}
	for path, want := range map[string]int{
		"/v1/jobs/" + v.ID + "/slice/abc": http.StatusBadRequest, // not an integer
		"/v1/jobs/" + v.ID + "/slice/-1":  http.StatusBadRequest, // below range
		"/v1/jobs/" + v.ID + "/slice/16":  http.StatusBadRequest, // == Nz
		"/v1/jobs/" + v.ID + "/slice/3":   http.StatusNotFound,   // valid z, not yet written
		"/v1/jobs/nope/slice/0":           http.StatusNotFound,   // unknown job
	} {
		if got := get(path); got != want {
			t.Errorf("GET %s = %d, want %d", path, got, want)
		}
	}
	// The slice whose event fired is durable and must serve mid-run.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/slice/" + strconv.Itoa(first.Z))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("mid-run GET of written slice %d = %d, want 200", first.Z, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "image/png" {
		t.Errorf("mid-run slice Content-Type = %q, want image/png", ct)
	}

	gate.open()
	waitState(t, m, v.ID, time.Minute)
	if got := get("/v1/jobs/" + v.ID + "/slice/3"); got != http.StatusOK {
		t.Errorf("GET of slice 3 after completion = %d, want 200", got)
	}
	if got := get("/v1/jobs/" + v.ID + "/slice/16"); got != http.StatusBadRequest {
		t.Errorf("GET of slice 16 after completion = %d, want 400", got)
	}
}
