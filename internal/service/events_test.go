package service

import (
	"context"
	"testing"
	"time"
)

// Consecutive round events must coalesce to the latest tick, so a job's
// retained log stays tiny no matter how many AllGather rounds it runs.
func TestBusCoalescesRounds(t *testing.T) {
	b := NewBus(64)
	b.Publish("j1", Event{Type: EventStarted, State: StateRunning})
	for i := 1; i <= 500; i++ {
		b.Publish("j1", Event{Type: EventRound, Done: i, Total: 500})
	}
	sub := b.Subscribe("j1", 0)
	defer sub.Close()
	batch, open := sub.pending()
	if !open {
		t.Fatal("stream closed without a terminal event")
	}
	if len(batch) != 2 {
		t.Fatalf("retained %d events, want 2 (started + coalesced round)", len(batch))
	}
	if batch[1].Type != EventRound || batch[1].Done != 500 {
		t.Fatalf("tail event = %+v, want the latest round tick", batch[1])
	}
	if batch[1].Seq <= batch[0].Seq {
		t.Fatalf("coalesced round seq %d not after started seq %d", batch[1].Seq, batch[0].Seq)
	}
}

// The log must stay bounded, drop its oldest events on overflow, and resume
// a stale cursor from the oldest retained event instead of blocking.
func TestBusBoundedLogOverflow(t *testing.T) {
	b := NewBus(8)
	for z := 0; z < 20; z++ {
		b.Publish("j1", Event{Type: EventSlice, Z: z, Written: z + 1, Total: 20})
	}
	sub := b.Subscribe("j1", 0) // cursor far behind the retention window
	defer sub.Close()
	batch, _ := sub.pending()
	if len(batch) != 8 {
		t.Fatalf("retained %d events, want the 8 newest", len(batch))
	}
	if batch[0].Z != 12 || batch[7].Z != 19 {
		t.Fatalf("retained z range [%d,%d], want [12,19]", batch[0].Z, batch[7].Z)
	}
}

// Publish must never block, no matter how unresponsive the subscribers are.
func TestBusPublishNeverBlocks(t *testing.T) {
	b := NewBus(16)
	for i := 0; i < 64; i++ {
		sub := b.Subscribe("j1", 0) // never reads
		defer sub.Close()
	}
	done := make(chan struct{})
	go func() {
		for i := 0; i < 10000; i++ {
			b.Publish("j1", Event{Type: EventRound, Done: i})
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Publish blocked on stuck subscribers")
	}
}

// A terminal event ends the stream: Next hands out the final batch with
// ok == false and later publishes are discarded.
func TestBusTerminalClosesStream(t *testing.T) {
	b := NewBus(0)
	sub := b.Subscribe("j1", 0)
	defer sub.Close()
	b.Publish("j1", Event{Type: EventQueued, State: StateQueued})
	b.Publish("j1", Event{Type: EventDone, State: StateDone})
	b.Publish("j1", Event{Type: EventRound, Done: 1}) // after terminal: dropped
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	batch, ok := sub.Next(ctx)
	if ok {
		t.Fatal("Next reported the stream still open after a terminal event")
	}
	if len(batch) != 2 || batch[1].Type != EventDone {
		t.Fatalf("final batch = %+v, want queued+done", batch)
	}
	if batch[1].Seq != 2 {
		t.Fatalf("done seq = %d, want 2", batch[1].Seq)
	}
}

// Resuming from a mid-stream cursor must replay only later events, and a
// cancelled context must unblock a waiting subscriber.
func TestBusResumeAndContextCancel(t *testing.T) {
	b := NewBus(0)
	b.Publish("j1", Event{Type: EventQueued, State: StateQueued})
	b.Publish("j1", Event{Type: EventSlice, Z: 0, Written: 1})
	b.Publish("j1", Event{Type: EventSlice, Z: 1, Written: 2})

	sub := b.Subscribe("j1", 1) // Last-Event-ID: 1 → skip the queued event
	defer sub.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	batch, ok := sub.Next(ctx)
	if !ok || len(batch) != 2 || batch[0].Z != 0 || batch[1].Z != 1 {
		t.Fatalf("resumed batch = %+v (ok=%v), want the two slice events", batch, ok)
	}

	waitCtx, waitCancel := context.WithCancel(context.Background())
	unblocked := make(chan bool, 1)
	go func() {
		_, ok := sub.Next(waitCtx)
		unblocked <- ok
	}()
	waitCancel()
	select {
	case ok := <-unblocked:
		if ok {
			t.Fatal("Next reported ok after context cancellation")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Next did not honour context cancellation")
	}
}

// Dropping a job wakes its subscribers and closes their streams.
func TestBusDropWakesSubscribers(t *testing.T) {
	b := NewBus(0)
	b.Publish("j1", Event{Type: EventQueued, State: StateQueued})
	sub := b.Subscribe("j1", 1) // already caught up: Next will block
	defer sub.Close()
	got := make(chan bool, 1)
	go func() {
		_, ok := sub.Next(context.Background())
		got <- ok
	}()
	time.Sleep(10 * time.Millisecond) // let Next park on the notify channel
	b.Drop("j1")
	select {
	case ok := <-got:
		if ok {
			t.Fatal("Next reported ok after the topic was dropped")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Drop did not wake the subscriber")
	}
}
