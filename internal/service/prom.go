package service

import (
	"time"

	"ifdk/internal/engine"
	"ifdk/internal/obs"
)

// metricsSet is the Manager's obs.Registry plus the handful of counters the
// hot paths bump directly. Everything else — queue depth, pool bytes, cache
// occupancy, PFS traffic, event drops — is registered as a func-backed view
// over the owning subsystem's own counters, so the Prometheus exposition at
// GET /metrics and the JSON snapshot at /v1/metrics read the same source
// and can never drift.
type metricsSet struct {
	reg *obs.Registry

	completed *obs.Counter // real reconstructions finished
	failed    *obs.Counter
	cancelled *obs.Counter
	cacheHits *obs.Counter // submissions satisfied from the result cache

	// admission decisions, one child per decision label
	admitted      *obs.Counter
	rejectedFull  *obs.Counter
	rejectedCost  *obs.Counter
	rejectedBytes *obs.Counter
	rejectedQuota *obs.Counter

	stageSeconds *obs.HistogramVec // per pipeline stage, observed at job success
	queueWait    *obs.HistogramVec // per priority class, observed at job start

	// shared filter sweeps (Options.FilterBatchWindow > 0)
	filterSweeps      *obs.Counter   // coalesced rounds flushed
	filterBatchedProj *obs.Counter   // projections filtered through shared sweeps
	filterBatchSize   *obs.Histogram // per-sweep batch size

	// write-ahead journal (Options.JournalDir != "")
	journalRecords *obs.CounterVec // appended records by type
	journalErrors  *obs.Counter    // failed appends / unrecoverable replayed jobs
	recovered      *obs.CounterVec // jobs recovered at boot, by outcome

	// preview tier (quality = preview | progressive)
	previewsBuilt *obs.Counter   // preview volumes reconstructed
	previewHits   *obs.Counter   // preview tiers served from the result cache
	previewSec    *obs.Histogram // preview-phase latency (build or cache fetch)
}

// newMetricsSet registers the service's metric families against m's
// subsystems. Call after the Manager's queue, cache, bus, store and tracer
// are in place.
func newMetricsSet(m *Manager) *metricsSet {
	r := obs.NewRegistry()
	s := &metricsSet{reg: r}

	s.completed = r.Counter("ifdk_jobs_completed_total", "Real reconstructions finished (cache hits excluded).")
	s.cacheHits = r.Counter("ifdk_jobs_cache_hits_total", "Submissions satisfied instantly from the result cache.")
	s.failed = r.Counter("ifdk_jobs_failed_total", "Jobs that reached the failed state.")
	s.cancelled = r.Counter("ifdk_jobs_cancelled_total", "Jobs cancelled by the client or shutdown.")

	adm := r.CounterVec("ifdk_admission_total", "Admission decisions by outcome.", "decision")
	s.admitted = adm.With("admitted")
	s.rejectedFull = adm.With("rejected_full")
	s.rejectedCost = adm.With("rejected_cost")
	s.rejectedBytes = adm.With("rejected_bytes")
	s.rejectedQuota = adm.With("rejected_quota")

	s.stageSeconds = r.HistogramVec("ifdk_stage_seconds",
		"Per-stage pipeline latency (max over ranks), observed per completed job.", nil, "stage")
	s.queueWait = r.HistogramVec("ifdk_queue_wait_seconds",
		"Queue wait from admission to worker pickup, by priority class.", nil, "class")

	s.filterSweeps = r.Counter("ifdk_filter_sweeps_total",
		"Shared filter sweeps flushed by the cross-job batcher.")
	s.filterBatchedProj = r.Counter("ifdk_filter_batched_projections_total",
		"Projections filtered through shared sweeps.")
	s.filterBatchSize = r.Histogram("ifdk_filter_batch_size",
		"Projections coalesced per shared filter sweep.",
		[]float64{1, 2, 4, 8, 16, 32})

	s.journalRecords = r.CounterVec("ifdk_journal_records_total",
		"Write-ahead journal records appended and fsynced, by type.", "type")
	s.journalErrors = r.Counter("ifdk_journal_errors_total",
		"Journal appends that failed and journaled jobs that could not be recovered.")
	s.recovered = r.CounterVec("ifdk_journal_recovered_total",
		"Jobs rebuilt from the journal at boot: requeued (re-entered admission) or terminal (view only).",
		"outcome")

	pv := r.CounterVec("ifdk_previews_total",
		"Preview tiers completed, by source (built = reconstructed, cache = served from the result cache).",
		"source")
	s.previewsBuilt = pv.With("built")
	s.previewHits = pv.With("cache")
	s.previewSec = r.Histogram("ifdk_preview_seconds",
		"Preview-phase latency from worker pickup to the preview event.",
		[]float64{0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5})

	r.GaugeFunc("ifdk_uptime_seconds", "Seconds since the manager started.",
		func() float64 { return time.Since(m.started).Seconds() })
	r.GaugeFunc("ifdk_workers", "Configured worker pool size.",
		func() float64 { return float64(m.opt.Workers) })
	r.GaugeFunc("ifdk_busy_workers", "Workers currently running a reconstruction.",
		func() float64 { return float64(m.busy.Load()) })
	r.GaugeFunc("ifdk_queue_depth", "Jobs waiting in the admission queue.",
		func() float64 { return float64(m.queue.Len()) })
	r.GaugeFunc("ifdk_queue_capacity", "Admission queue capacity, jobs.",
		func() float64 { return float64(m.queue.Cap()) })
	r.GaugeFunc("ifdk_queue_cost_seconds", "Estimated seconds of queued work.",
		func() float64 { return m.queue.CostSec() })
	r.GaugeFunc("ifdk_queue_cost_budget_seconds", "Queued-work cost budget (0 = unlimited).",
		func() float64 { return m.queue.MaxCostSec() })
	r.GaugeFunc("ifdk_inflight_est_bytes", "Estimated working set of admitted jobs.",
		func() float64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			return float64(m.inflightBytes)
		})
	r.GaugeFunc("ifdk_inflight_budget_bytes", "In-flight working-set budget (0 = unlimited).",
		func() float64 { return float64(m.opt.MaxInflightBytes) })
	r.GaugeFunc("ifdk_pool_in_use_bytes", "Bytes checked out of the engine buffer pools.",
		func() float64 { return float64(engine.InUseBytes()) })
	r.GaugeFunc("ifdk_cost_scale", "Learned wall-seconds per model-second calibration.",
		func() float64 { return m.scaleNow() })
	r.GaugeFunc("ifdk_jobs_per_sec", "Completed real reconstructions per uptime second.",
		func() float64 {
			if up := time.Since(m.started).Seconds(); up > 0 {
				return float64(s.completed.Value()) / up
			}
			return 0
		})
	r.SampleFunc("ifdk_jobs", "Tracked jobs by lifecycle state.", obs.TypeGauge, []string{"state"},
		func() []obs.Sample {
			m.mu.Lock()
			states := map[string]int{}
			for _, j := range m.jobs {
				states[string(j.State())]++
			}
			m.mu.Unlock()
			out := make([]obs.Sample, 0, len(states))
			for st, n := range states {
				out = append(out, obs.Sample{Labels: []string{st}, Value: float64(n)})
			}
			return out
		})

	r.CounterFunc("ifdk_cache_hits_total", "Result-cache lookups that hit.",
		func() float64 { return float64(m.cache.Stats().Hits) })
	r.CounterFunc("ifdk_cache_misses_total", "Result-cache lookups that missed.",
		func() float64 { return float64(m.cache.Stats().Misses) })
	r.GaugeFunc("ifdk_cache_entries", "Result-cache entries retained.",
		func() float64 { return float64(m.cache.Stats().Entries) })
	r.GaugeFunc("ifdk_cache_bytes", "Result-cache bytes retained.",
		func() float64 { return float64(m.cache.Stats().Bytes) })
	r.GaugeFunc("ifdk_cache_max_bytes", "Result-cache byte budget.",
		func() float64 { return float64(m.cache.Stats().MaxBytes) })
	r.CounterFunc("ifdk_cache_spills_total", "Cache evictions written to the PFS spill tier.",
		func() float64 { return float64(m.cache.Stats().Spills) })
	r.CounterFunc("ifdk_cache_spill_hits_total", "Cache lookups served from the PFS spill tier.",
		func() float64 { return float64(m.cache.Stats().SpillHits) })
	r.CounterFunc("ifdk_cache_spill_bytes_total", "Cumulative payload bytes spilled to the PFS.",
		func() float64 { return float64(m.cache.Stats().SpillBytes) })
	r.CounterFunc("ifdk_cache_spill_errors_total", "Spill writes and reads that failed.",
		func() float64 { return float64(m.cache.Stats().SpillErrors) })

	r.CounterFunc("ifdk_pfs_read_bytes_total", "Bytes read from the simulated PFS.",
		func() float64 { return float64(m.store.Stats().BytesRead) })
	r.CounterFunc("ifdk_pfs_write_bytes_total", "Bytes written to the simulated PFS.",
		func() float64 { return float64(m.store.Stats().BytesWritten) })
	r.GaugeFunc("ifdk_pfs_objects", "Objects currently stored on the simulated PFS.",
		func() float64 { return float64(m.store.Stats().Objects) })

	r.CounterFunc("ifdk_event_drops_total", "Events discarded by bounded per-job logs.",
		func() float64 { return float64(m.events.Drops()) })
	r.GaugeFunc("ifdk_traces_retained", "Job traces held in the bounded in-memory ring.",
		func() float64 { return float64(m.tracer.Len()) })
	r.CounterFunc("ifdk_traces_evicted_total", "Job traces evicted from the ring to stay bounded.",
		func() float64 { return float64(m.tracer.Evicted()) })

	return s
}

// observeStages feeds one completed job's stage clock into the per-stage
// latency histograms.
func (s *metricsSet) observeStages(st Stages) {
	for _, o := range []struct {
		stage string
		sec   float64
	}{
		{"load", st.Load}, {"filter", st.Filter}, {"allgather", st.AllGather},
		{"backproject", st.Backproject}, {"compute", st.Compute},
		{"reduce", st.Reduce}, {"store", st.Store}, {"total", st.Total},
	} {
		s.stageSeconds.With(o.stage).Observe(o.sec)
	}
}
