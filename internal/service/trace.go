package service

import (
	"fmt"
	"strconv"
	"time"

	"ifdk/internal/core"
	"ifdk/internal/obs"
	"ifdk/pkg/api"
)

// Span assembly: one trace per job, spans derived once from the job record
// and the compute plane's pre-sized per-round buffers — the pipeline itself
// never allocates or records spans mid-run. Span IDs are derived
// deterministically from (trace ID, span name), so a mid-run GET and the
// final publication agree on every ID.

// maxRoundSpans bounds the per-round children of the compute span so a
// many-round job cannot balloon the trace; the omission is recorded as a
// rounds_omitted attribute on the compute span.
const maxRoundSpans = 96

// traceState is the under-mutex copy of everything span assembly needs.
type traceState struct {
	traceID    string
	parentSpan string
	state      State
	errStr     string
	cacheHit   bool
	priority   string
	submitted  time.Time
	started    time.Time
	finished   time.Time
	times      core.StageTimes
	tStage0    time.Time
	tStage1    time.Time
	tRun0      time.Time
	rounds     []core.RoundTrace
	tVerify0   time.Time
	tVerify1   time.Time
}

func (j *Job) traceState() traceState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return traceState{
		traceID:    j.traceID,
		parentSpan: j.parentSpan,
		state:      j.state,
		errStr:     j.err,
		cacheHit:   j.cacheHit,
		priority:   j.Priority.String(),
		submitted:  j.submitted,
		started:    j.started,
		finished:   j.finished,
		times:      j.times,
		tStage0:    j.tStage0,
		tStage1:    j.tStage1,
		tRun0:      j.tRun0,
		rounds:     j.rounds,
		tVerify0:   j.tVerify0,
		tVerify1:   j.tVerify1,
	}
}

// assembleSpans builds the job's span tree from its current state. It works
// on live jobs too: spans whose operation has not ended yet carry a zero
// End and report zero duration.
func (m *Manager) assembleSpans(j *Job) []obs.Span {
	ts := j.traceState()
	sid := func(name string) string { return obs.DeriveSpanID(ts.traceID, name) }

	root := obs.Span{
		SpanID: sid("job"),
		Parent: ts.parentSpan,
		Name:   "job",
		Start:  ts.submitted,
		End:    ts.finished,
		Attrs: []obs.Attr{
			{Key: "job_id", Value: j.ID},
			{Key: "node", Value: m.opt.NodeID},
			{Key: "state", Value: string(ts.state)},
			{Key: "priority", Value: ts.priority},
			{Key: "cache_hit", Value: strconv.FormatBool(ts.cacheHit)},
		},
	}
	if j.recovered {
		root.Attrs = append(root.Attrs, obs.Attr{Key: "recovered", Value: "true"})
	}
	if ts.errStr != "" {
		root.Attrs = append(root.Attrs, obs.Attr{Key: "error", Value: ts.errStr})
	}
	spans := []obs.Span{root}

	if ts.cacheHit {
		spans = append(spans, obs.Span{
			SpanID: sid("cache.hit"), Parent: root.SpanID, Name: "cache.hit",
			Start: ts.submitted, End: ts.finished,
		})
		return spans
	}

	spans = append(spans, obs.Span{
		SpanID: sid("queue.wait"), Parent: root.SpanID, Name: "queue.wait",
		Start: ts.submitted, End: ts.started,
	})
	if !ts.tStage0.IsZero() {
		spans = append(spans, obs.Span{
			SpanID: sid("stage.dataset"), Parent: root.SpanID, Name: "stage.dataset",
			Start: ts.tStage0, End: ts.tStage1,
		})
	}
	if !ts.tRun0.IsZero() {
		compute := obs.Span{
			SpanID: sid("compute"), Parent: root.SpanID, Name: "compute",
			Start: ts.tRun0,
		}
		if ts.times.Compute > 0 {
			compute.End = ts.tRun0.Add(ts.times.Compute)
		}
		if omitted := len(ts.rounds) - maxRoundSpans; omitted > 0 {
			compute.Attrs = append(compute.Attrs,
				obs.Attr{Key: "rounds_omitted", Value: strconv.Itoa(omitted)})
		}
		spans = append(spans, compute)
		for r, rt := range ts.rounds {
			if r >= maxRoundSpans {
				break
			}
			attr := []obs.Attr{{Key: "round", Value: strconv.Itoa(rt.Round)}}
			fattr := attr
			if rt.BatchSize > 0 {
				// Coalesced rounds record how many co-resident projections
				// shared the sweep (1 = the round ran unbatched).
				fattr = append(fattr[:1:1], obs.Attr{Key: "batch_size", Value: strconv.Itoa(rt.BatchSize)})
			}
			spans = append(spans,
				obs.Span{
					SpanID: sid(fmt.Sprintf("filter.round.%d", rt.Round)), Parent: compute.SpanID,
					Name:  "filter.round",
					Start: ts.tRun0.Add(rt.FilterOff), End: ts.tRun0.Add(rt.FilterOff + rt.FilterDur),
					Attrs: fattr,
				},
				obs.Span{
					SpanID: sid(fmt.Sprintf("allgather.round.%d", rt.Round)), Parent: compute.SpanID,
					Name:  "allgather.round",
					Start: ts.tRun0.Add(rt.GatherOff), End: ts.tRun0.Add(rt.GatherOff + rt.GatherDur),
					Attrs: attr,
				})
		}
		if ts.times.Backproject > 0 {
			// Back-projection overlaps the filter/AllGather rounds inside
			// the compute phase; its span records accumulated busy time
			// (== StageTimes.Backproject), anchored at the phase start.
			spans = append(spans, obs.Span{
				SpanID: sid("backproject"), Parent: compute.SpanID, Name: "backproject",
				Start: ts.tRun0, End: ts.tRun0.Add(ts.times.Backproject),
				Attrs: []obs.Attr{{Key: "kind", Value: "busy"}},
			})
		}
		if ts.times.Compute > 0 && ts.times.Reduce > 0 {
			t0 := ts.tRun0.Add(ts.times.Compute)
			spans = append(spans, obs.Span{
				SpanID: sid("reduce"), Parent: root.SpanID, Name: "reduce",
				Start: t0, End: t0.Add(ts.times.Reduce),
			})
			if ts.times.Store > 0 {
				t1 := t0.Add(ts.times.Reduce)
				spans = append(spans, obs.Span{
					SpanID: sid("store"), Parent: root.SpanID, Name: "store",
					Start: t1, End: t1.Add(ts.times.Store),
				})
			}
		}
	}
	if !ts.tVerify0.IsZero() {
		spans = append(spans, obs.Span{
			SpanID: sid("verify"), Parent: root.SpanID, Name: "verify",
			Start: ts.tVerify0, End: ts.tVerify1,
		})
	}
	return spans
}

// publishTrace assembles a job's final span set, retains it in the bounded
// tracer ring and announces its availability on the event bus. Called once,
// just before the terminal event, on whichever goroutine settles the job.
func (m *Manager) publishTrace(j *Job) {
	t := m.tracer.Start(j.ID, j.traceID)
	t.Add(m.assembleSpans(j)...)
	t.Finish()
	m.events.Publish(j.ID, Event{Type: EventTrace, TraceID: j.traceID})
}

// toAPISpans converts retained spans to the wire form.
func toAPISpans(traceID, service string, spans []obs.Span) []api.Span {
	out := make([]api.Span, len(spans))
	for i, s := range spans {
		w := api.Span{
			TraceID:      traceID,
			SpanID:       s.SpanID,
			ParentSpanID: s.Parent,
			Name:         s.Name,
			Service:      service,
			Start:        s.Start.UTC().Format(time.RFC3339Nano),
			DurationSec:  s.Duration().Seconds(),
		}
		if len(s.Attrs) > 0 {
			w.Attrs = make(map[string]string, len(s.Attrs))
			for _, a := range s.Attrs {
				w.Attrs[a.Key] = a.Value
			}
		}
		out[i] = w
	}
	return out
}

// TraceFor returns the assembled trace of a job: the published span set for
// a settled job (Complete), or a partial assembly from the live record for
// one still in flight.
func (m *Manager) TraceFor(id string) (api.Trace, error) {
	j, ok := m.job(id)
	if !ok {
		return api.Trace{}, fmt.Errorf("job %q: %w", id, ErrNotFound)
	}
	if t, found := m.tracer.Get(id); found && t.Done() {
		return api.Trace{
			TraceID: t.ID(), Job: id, Complete: true,
			Spans: toAPISpans(t.ID(), "ifdkd", t.Snapshot()),
		}, nil
	}
	ts := j.traceState()
	return api.Trace{
		TraceID: ts.traceID, Job: id, Complete: false,
		Spans: toAPISpans(ts.traceID, "ifdkd", m.assembleSpans(j)),
	}, nil
}
