package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ifdk/pkg/api"
)

// decodeAPIError asserts the response carries a well-formed api.Error
// envelope and returns it.
func decodeAPIError(t *testing.T, resp *http.Response) *api.Error {
	t.Helper()
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("error response Content-Type = %q, want application/json", ct)
	}
	var e api.Error
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("error body is not an api.Error envelope: %v", err)
	}
	if e.Code == "" || e.Message == "" {
		t.Fatalf("envelope missing code or message: %+v", e)
	}
	return &e
}

// Every error path of the HTTP surface must emit the structured api.Error
// envelope with the documented code, the code→status mapping must hold, and
// retryable codes must carry Retry-After.
func TestErrorEnvelopeTable(t *testing.T) {
	m := NewManager(Options{Workers: 1, QueueCap: 2, CacheBytes: -1})
	defer shutdown(t, m)
	ts := httptest.NewServer(NewServer(m))
	defer ts.Close()

	// One cancelled job (terminal without result) for the terminal cases,
	// and one live queued job for slice not_yet_written.
	cv, err := m.Submit(Spec{Phantom: "sphere", NX: 16, NP: 32})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, cv.ID, 60*time.Second)
	// Submit a distinct spec and cancel it immediately: terminal-without-
	// result rows need a cancelled job. If the worker won the race and
	// finished it anyway, the terminal rows are skipped.
	xv, err := m.Submit(Spec{Phantom: "sphere", NX: 16, NP: 64, Priority: "low"})
	if err != nil {
		t.Fatal(err)
	}
	_ = m.Cancel(xv.ID)
	waitState(t, m, xv.ID, 60*time.Second)
	terminalID := xv.ID
	if v, _ := m.Get(xv.ID); v.State == StateDone {
		terminalID = "" // lost the race; terminal rows skipped below
	}

	type row struct {
		name       string
		method     string
		path       string
		body       string
		wantCode   string
		wantStatus int
	}
	rows := []row{
		{"submit malformed JSON", "POST", "/v1/jobs", "{not json", api.CodeBadRequest, 400},
		{"submit unknown phantom", "POST", "/v1/jobs", `{"phantom":"banana"}`, api.CodeInvalidSpec, 400},
		{"submit oversized", "POST", "/v1/jobs", `{"nx":100000}`, api.CodeInvalidSpec, 400},
		{"submit bad priority", "POST", "/v1/jobs", `{"priority":"urgent"}`, api.CodeInvalidSpec, 400},
		{"get unknown job", "GET", "/v1/jobs/nope", "", api.CodeNotFound, 404},
		{"delete unknown job", "DELETE", "/v1/jobs/nope", "", api.CodeNotFound, 404},
		{"events unknown job", "GET", "/v1/jobs/nope/events", "", api.CodeNotFound, 404},
		{"stream unknown job", "GET", "/v1/jobs/nope/stream", "", api.CodeNotFound, 404},
		{"slice unknown job", "GET", "/v1/jobs/nope/slice/0", "", api.CodeNotFound, 404},
		{"slice non-integer", "GET", "/v1/jobs/" + cv.ID + "/slice/abc", "", api.CodeBadRequest, 400},
		{"slice negative", "GET", "/v1/jobs/" + cv.ID + "/slice/-1", "", api.CodeBadRequest, 400},
		{"slice == Nz", "GET", "/v1/jobs/" + cv.ID + "/slice/16", "", api.CodeBadRequest, 400},
		{"events bad Last-Event-ID", "GET", "/v1/jobs/" + cv.ID + "/events?after=-3", "", api.CodeBadRequest, 400},
	}
	if terminalID != "" {
		rows = append(rows,
			row{"slice of cancelled job", "GET", "/v1/jobs/" + terminalID + "/slice/3", "", api.CodeTerminal, 409},
			row{"stream of cancelled job", "GET", "/v1/jobs/" + terminalID + "/stream", "", api.CodeTerminal, 409},
		)
	}
	client := ts.Client()
	for _, r := range rows {
		t.Run(r.name, func(t *testing.T) {
			req, err := http.NewRequest(r.method, ts.URL+r.path, strings.NewReader(r.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := client.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != r.wantStatus {
				resp.Body.Close()
				t.Fatalf("status = %d, want %d", resp.StatusCode, r.wantStatus)
			}
			e := decodeAPIError(t, resp)
			if e.Code != r.wantCode {
				t.Errorf("code = %q, want %q (message %q)", e.Code, r.wantCode, e.Message)
			}
			if api.HTTPStatus(e.Code) != r.wantStatus {
				t.Errorf("contract drift: HTTPStatus(%s) = %d but handler used %d",
					e.Code, api.HTTPStatus(e.Code), r.wantStatus)
			}
			if api.Retryable(e.Code) && e.RetryAfter <= 0 {
				t.Errorf("retryable code %q without retry_after_sec", e.Code)
			}
		})
	}
}

// Saturation paths: queue_full / quota_exhausted envelopes with Retry-After
// on both header and body.
func TestErrorEnvelopeSaturation(t *testing.T) {
	post := func(ts *httptest.Server, spec string) *http.Response {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(spec))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	t.Run("quota_exhausted", func(t *testing.T) {
		m := NewManager(Options{Workers: 1, CacheBytes: -1, QuotaRPS: 0.001, QuotaBurst: 1})
		defer shutdown(t, m)
		ts := httptest.NewServer(NewServer(m))
		defer ts.Close()
		// The first submission eats the single quota token...
		resp := post(ts, `{"phantom":"sphere","nx":16,"np":96,"client":"q"}`)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("first submit: HTTP %d", resp.StatusCode)
		}
		resp.Body.Close()
		// ...so the second is quota_exhausted.
		resp = post(ts, `{"phantom":"sphere","nx":16,"np":128,"client":"q"}`)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("quota submit: HTTP %d, want 429", resp.StatusCode)
		}
		if ra := resp.Header.Get("Retry-After"); ra == "" {
			t.Error("429 without Retry-After header")
		}
		e := decodeAPIError(t, resp)
		if e.Code != api.CodeQuotaExhausted || e.RetryAfter <= 0 {
			t.Fatalf("envelope = %+v, want quota_exhausted with retry_after_sec", e)
		}
	})

	t.Run("queue_full", func(t *testing.T) {
		// Slow staged reads keep the first job running while the 1-slot
		// queue fills behind it.
		m := NewManager(Options{Workers: 1, QueueCap: 1, CacheBytes: -1, PFS: pfsThrottled()})
		defer shutdown(t, m)
		ts := httptest.NewServer(NewServer(m))
		defer ts.Close()
		deadline := time.Now().Add(30 * time.Second)
		for i := 0; ; i++ {
			if time.Now().After(deadline) {
				t.Fatal("never observed queue_full")
			}
			resp := post(ts, fmt.Sprintf(`{"phantom":"sphere","nx":16,"np":%d}`, 96+32*(i%8)))
			if resp.StatusCode == http.StatusServiceUnavailable {
				e := decodeAPIError(t, resp)
				if e.Code != api.CodeQueueFull {
					t.Fatalf("503 code = %q, want queue_full", e.Code)
				}
				if e.RetryAfter <= 0 {
					t.Error("queue_full without retry_after_sec")
				}
				return
			}
			resp.Body.Close()
		}
	})
}
