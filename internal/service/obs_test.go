package service

import (
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"

	"ifdk/pkg/api"
)

// promFor maps every api.Metrics JSON field (nested structs flattened with
// a dot) to its Prometheus-exposition counterpart. An empty name documents
// a field deliberately absent from this daemon's exposition. The contract
// test below fails when a Metrics field is added without deciding its
// exposition story.
var promFor = map[string]string{
	"uptime_sec":         "ifdk_uptime_seconds",
	"workers":            "ifdk_workers",
	"busy_workers":       "ifdk_busy_workers",
	"queue_depth":        "ifdk_queue_depth",
	"queue_cap":          "ifdk_queue_capacity",
	"queue_cost_sec":     "ifdk_queue_cost_seconds",
	"max_queued_sec":     "ifdk_queue_cost_budget_seconds",
	"inflight_est_bytes": "ifdk_inflight_est_bytes",
	"max_inflight_bytes": "ifdk_inflight_budget_bytes",
	"pool_in_use_bytes":  "ifdk_pool_in_use_bytes",
	"cost_scale":         "ifdk_cost_scale",
	"jobs":               "ifdk_jobs",
	"completed":          "ifdk_jobs_completed_total",
	"cache_hits":         "ifdk_jobs_cache_hits_total",
	"failed":             "ifdk_jobs_failed_total",
	"cancelled":          "ifdk_jobs_cancelled_total",
	"jobs_per_sec":       "ifdk_jobs_per_sec",

	"admission.admitted":       "ifdk_admission_total",
	"admission.rejected_full":  "ifdk_admission_total",
	"admission.rejected_cost":  "ifdk_admission_total",
	"admission.rejected_bytes": "ifdk_admission_total",
	"admission.rejected_quota": "ifdk_admission_total",

	"wait_sec": "ifdk_queue_wait_seconds",

	"cache.hits":         "ifdk_cache_hits_total",
	"cache.misses":       "ifdk_cache_misses_total",
	"cache.entries":      "ifdk_cache_entries",
	"cache.bytes":        "ifdk_cache_bytes",
	"cache.max_bytes":    "ifdk_cache_max_bytes",
	"cache.spills":       "ifdk_cache_spills_total",
	"cache.spill_hits":   "ifdk_cache_spill_hits_total",
	"cache.spill_bytes":  "ifdk_cache_spill_bytes_total",
	"cache.spill_errors": "ifdk_cache_spill_errors_total",

	"pfs_read_mb":  "ifdk_pfs_read_bytes_total",
	"pfs_write_mb": "ifdk_pfs_write_bytes_total",
	"pfs_objects":  "ifdk_pfs_objects",
	"event_drops":  "ifdk_event_drops_total",

	// Router-only aggregation detail: the router exposes per-backend
	// ifdk_router_backend_* families instead of a flat field.
	"backends": "",
}

func jsonTag(f reflect.StructField) string {
	tag := strings.Split(f.Tag.Get("json"), ",")[0]
	if tag == "-" {
		return ""
	}
	return tag
}

// metricsFields flattens api.Metrics' JSON field paths (one level of struct
// nesting, which is all the type has).
func metricsFields(t *testing.T) []string {
	t.Helper()
	var paths []string
	mt := reflect.TypeOf(api.Metrics{})
	for i := 0; i < mt.NumField(); i++ {
		f := mt.Field(i)
		tag := jsonTag(f)
		if tag == "" {
			t.Fatalf("api.Metrics field %s has no json tag", f.Name)
		}
		ft := f.Type
		if ft.Kind() == reflect.Struct {
			for k := 0; k < ft.NumField(); k++ {
				paths = append(paths, tag+"."+jsonTag(ft.Field(k)))
			}
			continue
		}
		paths = append(paths, tag)
	}
	return paths
}

// TestMetricsContract: every field of the JSON /v1/metrics snapshot must
// have a decided counterpart in the Prometheus exposition (or a documented
// absence), and every mapped family must actually be registered.
func TestMetricsContract(t *testing.T) {
	m := NewManager(Options{Workers: 1})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = m.Shutdown(ctx)
	}()

	var b strings.Builder
	if err := m.Registry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	exposed := map[string]bool{}
	for _, line := range strings.Split(b.String(), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			exposed[strings.Fields(line)[2]] = true
		}
	}

	for _, path := range metricsFields(t) {
		name, mapped := promFor[path]
		if !mapped {
			t.Errorf("api.Metrics field %q has no exposition mapping — add it to promFor (or map it to \"\" with a reason)", path)
			continue
		}
		if name != "" && !exposed[name] {
			t.Errorf("field %q maps to %q, which the registry does not expose", path, name)
		}
	}
}

// TestExpositionEndpoint: GET /metrics serves valid text exposition whose
// counters agree with the JSON snapshot after real work.
func TestExpositionEndpoint(t *testing.T) {
	ts, m := startTestServer(t, Options{Workers: 2})
	_, v := postJob(t, ts.URL, testSpec())
	waitState(t, m, v.ID, 30*time.Second)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"ifdk_jobs_completed_total 1",
		`ifdk_admission_total{decision="admitted"} 1`,
		`ifdk_stage_seconds_count{stage="backproject"} 1`,
		`ifdk_queue_wait_seconds_count{class="normal"} 1`,
		"ifdk_event_drops_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// JSON view reads the same cells.
	mt := m.Metrics()
	if mt.Completed != 1 || mt.Admission.Admitted != 1 {
		t.Errorf("JSON metrics disagree: completed=%d admitted=%d", mt.Completed, mt.Admission.Admitted)
	}
}

func getTrace(t *testing.T, url, id string) api.Trace {
	t.Helper()
	resp, err := http.Get(url + "/v1/jobs/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status = %d", resp.StatusCode)
	}
	var tr api.Trace
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestTraceEndToEnd: a job submitted with a caller traceparent yields one
// trace ID end to end, and the assembled span tree covers the full
// lifecycle with durations consistent with the stage clock.
func TestTraceEndToEnd(t *testing.T) {
	ts, m := startTestServer(t, Options{Workers: 2, NodeID: "t1"})
	traceID, spanID := api.NewTraceID(), api.NewSpanID()

	body := strings.NewReader(`{"phantom":"shepplogan","nx":16,"r":2,"c":2}`)
	req, err := http.NewRequest("POST", ts.URL+"/v1/jobs", body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(api.TraceParentHeader, api.FormatTraceParent(traceID, spanID))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var v View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if v.TraceID != traceID {
		t.Fatalf("view trace ID = %q, want caller's %q", v.TraceID, traceID)
	}
	final := waitState(t, m, v.ID, 30*time.Second)
	if final.State != StateDone {
		t.Fatalf("job ended %s: %s", final.State, final.Error)
	}

	tr := getTrace(t, ts.URL, v.ID)
	if tr.TraceID != traceID || !tr.Complete {
		t.Fatalf("trace id=%q complete=%v, want caller's id and complete", tr.TraceID, tr.Complete)
	}
	byName := map[string][]api.Span{}
	for _, s := range tr.Spans {
		if s.TraceID != traceID {
			t.Fatalf("span %s carries trace %q", s.Name, s.TraceID)
		}
		byName[s.Name] = append(byName[s.Name], s)
	}
	for _, want := range []string{"job", "queue.wait", "stage.dataset", "compute", "backproject", "reduce", "store"} {
		if len(byName[want]) != 1 {
			t.Fatalf("span %q appears %d times, want 1 (have %v)", want, len(byName[want]), names(tr.Spans))
		}
	}
	root := byName["job"][0]
	if root.ParentSpanID != spanID {
		t.Errorf("root parent = %q, want the caller's span %q", root.ParentSpanID, spanID)
	}
	if root.Attrs["job_id"] != v.ID || root.Attrs["node"] != "t1" || root.Attrs["state"] != "done" {
		t.Errorf("root attrs = %v", root.Attrs)
	}
	compute := byName["compute"][0]
	for _, name := range []string{"queue.wait", "stage.dataset", "compute", "reduce", "store"} {
		if p := byName[name][0].ParentSpanID; p != root.SpanID {
			t.Errorf("span %s parent = %q, want root %q", name, p, root.SpanID)
		}
	}
	if len(byName["filter.round"]) < 1 || len(byName["allgather.round"]) < 1 {
		t.Fatalf("no per-round spans: %v", names(tr.Spans))
	}
	for _, s := range append(byName["filter.round"], byName["allgather.round"]...) {
		if s.ParentSpanID != compute.SpanID {
			t.Errorf("round span parent = %q, want compute %q", s.ParentSpanID, compute.SpanID)
		}
	}
	// Durations agree with the stage clock the View reports.
	const eps = 1e-6
	if d := byName["backproject"][0].DurationSec; math.Abs(d-final.Stages.Backproject) > eps {
		t.Errorf("backproject span %gs, stage clock %gs", d, final.Stages.Backproject)
	}
	if d := compute.DurationSec; math.Abs(d-final.Stages.Compute) > eps {
		t.Errorf("compute span %gs, stage clock %gs", d, final.Stages.Compute)
	}

	// The bus announced the trace before the terminal event.
	sub, err := m.subscribe(v.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var sawTrace bool
	for {
		batch, ok := sub.Next(ctx)
		for _, e := range batch {
			if e.Type == EventTrace {
				sawTrace = true
				if e.TraceID != traceID {
					t.Errorf("trace event carries %q, want %q", e.TraceID, traceID)
				}
			}
			if e.Type.Terminal() && !sawTrace {
				t.Error("terminal event arrived before the trace event")
			}
		}
		if !ok {
			break
		}
	}
	if !sawTrace {
		t.Error("no trace event on the bus")
	}

	// A cache hit still yields a complete (degenerate) trace of its own.
	_, v2 := postJob(t, ts.URL, testSpec())
	if !v2.CacheHit {
		t.Fatalf("resubmission missed the cache")
	}
	tr2 := getTrace(t, ts.URL, v2.ID)
	if !tr2.Complete || tr2.TraceID == traceID {
		t.Fatalf("cache-hit trace complete=%v id=%q", tr2.Complete, tr2.TraceID)
	}
	hitNames := names(tr2.Spans)
	if len(tr2.Spans) != 2 || hitNames[0] != "job" || hitNames[1] != "cache.hit" {
		t.Fatalf("cache-hit spans = %v, want [job cache.hit]", hitNames)
	}
}

func names(spans []api.Span) []string {
	out := make([]string, len(spans))
	for i, s := range spans {
		out[i] = s.Name
	}
	return out
}

// TestTracePartialWhileQueued: a job that has not started yet serves a
// partial trace (root + open queue.wait) rather than a 404.
func TestTracePartialWhileQueued(t *testing.T) {
	m := NewManager(Options{Workers: 1, PFS: pfsThrottled(), QueueCap: 8})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = m.Shutdown(ctx)
	}()
	// Fill the single worker, then queue one more.
	v1, err := m.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	spec2 := testSpec()
	spec2.Phantom = "sphere"
	v2, err := m.Submit(spec2)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := m.TraceFor(v2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Complete {
		t.Error("queued job's trace claims complete")
	}
	got := names(tr.Spans)
	if len(got) < 2 || got[0] != "job" || got[1] != "queue.wait" {
		t.Errorf("partial spans = %v, want job + queue.wait", got)
	}
	for _, s := range tr.Spans {
		if s.DurationSec != 0 {
			t.Errorf("open span %s reports duration %g", s.Name, s.DurationSec)
		}
	}
	waitState(t, m, v1.ID, 30*time.Second)
	waitState(t, m, v2.ID, 30*time.Second)
}

// TestEventDropsSurface: overflowing a tiny per-job log shows up in both
// metric surfaces.
func TestEventDropsSurface(t *testing.T) {
	m := NewManager(Options{Workers: 1, EventLogCap: 2})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = m.Shutdown(ctx)
	}()
	for i := 0; i < 6; i++ {
		m.events.Publish("jx", Event{Type: EventSlice, Z: i})
	}
	if d := m.events.Drops(); d != 4 {
		t.Fatalf("bus drops = %d, want 4", d)
	}
	if d := m.Metrics().EventDrops; d != 4 {
		t.Fatalf("metrics event_drops = %d, want 4", d)
	}
	var b strings.Builder
	if err := m.Registry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "ifdk_event_drops_total 4") {
		t.Error("exposition missing ifdk_event_drops_total 4")
	}
	m.events.Drop("jx")
}
