package service

import (
	"testing"

	"ifdk/internal/core"
	"ifdk/internal/ct/geometry"
	"ifdk/internal/volume"
)

func testCfg(nx int) core.Config {
	return core.Config{
		R: 2, C: 2,
		Geometry:    geometry.Default(2*nx, 2*nx, 2*nx, nx, nx, nx),
		InputPrefix: "ds/abc",
	}
}

// The key must ignore the per-job fields (output prefix, progress callback)
// and change with anything that changes the reconstruction.
func TestCacheKeyNormalization(t *testing.T) {
	a := testCfg(16)
	b := testCfg(16)
	b.OutputPrefix = "jobs/j1/out"
	b.Progress = func(int, int) {}
	if CacheKey(a) != CacheKey(b) {
		t.Error("output prefix / progress changed the key")
	}
	c := testCfg(16)
	c.InputPrefix = "ds/other"
	if CacheKey(a) == CacheKey(c) {
		t.Error("input prefix did not change the key")
	}
	d := testCfg(16)
	d.R, d.C = 4, 1
	if CacheKey(a) == CacheKey(d) {
		t.Error("grid shape did not change the key")
	}
	e := testCfg(32)
	if CacheKey(a) == CacheKey(e) {
		t.Error("geometry did not change the key")
	}
}

// entryOfSize builds an entry whose volume payload is nx³ voxels.
func entryOfSize(nx int) *Entry {
	return &Entry{Volume: volume.New(nx, nx, nx, volume.IMajor)}
}

func TestCacheHitMissAndLRU(t *testing.T) {
	// Budget fits two 16³ volumes (16 KiB each + overhead) but not three.
	c := NewCache(2*(16*16*16*4) + 2048)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache hit")
	}
	c.Put("a", entryOfSize(16))
	c.Put("b", entryOfSize(16))
	if _, ok := c.Get("a"); !ok { // promotes a
		t.Fatal("miss on a")
	}
	c.Put("c", entryOfSize(16)) // over budget: evicts b (LRU)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted despite promotion")
	}
	st := c.Stats()
	if st.Entries != 2 || st.Hits != 2 || st.Misses != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Bytes <= 0 || st.Bytes > st.MaxBytes {
		t.Fatalf("byte accounting out of range: %+v", st)
	}
}

// One large entry must evict many small ones — the scenario a count-based
// cap gets wrong in both directions.
func TestCacheEvictsByBytesNotCount(t *testing.T) {
	small := entryOfSize(8) // 2 KiB payload
	budget := 10*entrySize(small) + entrySize(entryOfSize(16))
	c := NewCache(budget)
	for _, k := range []string{"s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9"} {
		c.Put(k, entryOfSize(8))
	}
	if st := c.Stats(); st.Entries != 10 {
		t.Fatalf("expected all 10 small entries resident, got %+v", st)
	}
	// A 16³ entry fits the remaining headroom without evicting anything.
	c.Put("big", entryOfSize(16))
	if st := c.Stats(); st.Entries != 11 {
		t.Fatalf("big entry should coexist: %+v", st)
	}
	// A 20³ entry (~32 KiB, within budget but larger than the remaining
	// headroom) must displace older entries, count be damned.
	c.Put("huge", entryOfSize(20))
	st := c.Stats()
	if _, ok := c.Get("huge"); !ok {
		t.Fatal("huge entry not cached")
	}
	if st.Entries >= 11 {
		t.Fatalf("no eviction happened: %+v", st)
	}
	if st.Bytes > st.MaxBytes {
		t.Fatalf("budget exceeded: %+v", st)
	}
}

// An entry larger than the whole budget is not cached, and replacing an
// existing key with such an entry removes the stale value.
func TestCacheRejectsOversizedEntry(t *testing.T) {
	small := entryOfSize(8)
	c := NewCache(entrySize(small) + 1)
	c.Put("a", small)
	if _, ok := c.Get("a"); !ok {
		t.Fatal("small entry not cached")
	}
	c.Put("a", entryOfSize(32)) // oversized replacement
	if _, ok := c.Get("a"); ok {
		t.Fatal("oversized replacement left a stale entry readable")
	}
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("stats after oversized replace = %+v", st)
	}
}

// Replacing an entry in place must adjust the byte account.
func TestCacheReplaceAdjustsBytes(t *testing.T) {
	c := NewCache(1 << 20)
	c.Put("a", entryOfSize(8))
	before := c.Stats().Bytes
	c.Put("a", entryOfSize(16))
	st := c.Stats()
	if st.Entries != 1 {
		t.Fatalf("replace duplicated the entry: %+v", st)
	}
	if st.Bytes <= before {
		t.Fatalf("bytes not adjusted on replace: %d -> %d", before, st.Bytes)
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewCache(-1)
	c.Put("a", &Entry{})
	if _, ok := c.Get("a"); ok {
		t.Fatal("disabled cache stored an entry")
	}
}
