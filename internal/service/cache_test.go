package service

import (
	"testing"

	"ifdk/internal/core"
	"ifdk/internal/ct/geometry"
)

func testCfg(nx int) core.Config {
	return core.Config{
		R: 2, C: 2,
		Geometry:    geometry.Default(2*nx, 2*nx, 2*nx, nx, nx, nx),
		InputPrefix: "ds/abc",
	}
}

// The key must ignore the per-job fields (output prefix, progress callback)
// and change with anything that changes the reconstruction.
func TestCacheKeyNormalization(t *testing.T) {
	a := testCfg(16)
	b := testCfg(16)
	b.OutputPrefix = "jobs/j1/out"
	b.Progress = func(int, int) {}
	if CacheKey(a) != CacheKey(b) {
		t.Error("output prefix / progress changed the key")
	}
	c := testCfg(16)
	c.InputPrefix = "ds/other"
	if CacheKey(a) == CacheKey(c) {
		t.Error("input prefix did not change the key")
	}
	d := testCfg(16)
	d.R, d.C = 4, 1
	if CacheKey(a) == CacheKey(d) {
		t.Error("grid shape did not change the key")
	}
	e := testCfg(32)
	if CacheKey(a) == CacheKey(e) {
		t.Error("geometry did not change the key")
	}
}

func TestCacheHitMissAndLRU(t *testing.T) {
	c := NewCache(2)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache hit")
	}
	c.Put("a", &Entry{})
	c.Put("b", &Entry{})
	if _, ok := c.Get("a"); !ok { // promotes a
		t.Fatal("miss on a")
	}
	c.Put("c", &Entry{}) // evicts b (LRU)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted despite promotion")
	}
	st := c.Stats()
	if st.Entries != 2 || st.Hits != 2 || st.Misses != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewCache(-1)
	c.Put("a", &Entry{})
	if _, ok := c.Get("a"); ok {
		t.Fatal("disabled cache stored an entry")
	}
}
