package service

import (
	"bytes"
	"context"
	"encoding/json"
	"image/png"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func startTestServer(t *testing.T, opt Options) (*httptest.Server, *Manager) {
	t.Helper()
	m := NewManager(opt)
	ts := httptest.NewServer(NewServer(m))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = m.Shutdown(ctx)
	})
	return ts, m
}

func postJob(t *testing.T, url string, spec Spec) (*http.Response, View) {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v View
	if resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
	}
	return resp, v
}

func getView(t *testing.T, url, id string) (int, View) {
	t.Helper()
	resp, err := http.Get(url + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v View
	_ = json.NewDecoder(resp.Body).Decode(&v)
	return resp.StatusCode, v
}

// Full API round-trip: submit, poll to completion, fetch a slice PNG,
// observe the cache on resubmission, read metrics, delete.
func TestAPIRoundTrip(t *testing.T) {
	ts, _ := startTestServer(t, Options{Workers: 2})
	spec := testSpec()

	resp, v := postJob(t, ts.URL, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, cur := getView(t, ts.URL, v.ID)
		if code != http.StatusOK {
			t.Fatalf("get status = %d", code)
		}
		if cur.State.Terminal() {
			if cur.State != StateDone {
				t.Fatalf("job ended %s: %s", cur.State, cur.Error)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Slice endpoint returns a decodable PNG of the right size.
	sresp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/slice/8")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("slice status = %d", sresp.StatusCode)
	}
	if ct := sresp.Header.Get("Content-Type"); ct != "image/png" {
		t.Fatalf("slice content type = %s", ct)
	}
	img, err := png.Decode(sresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if b := img.Bounds(); b.Dx() != 16 || b.Dy() != 16 {
		t.Fatalf("slice is %dx%d, want 16x16", b.Dx(), b.Dy())
	}

	// Out-of-range slice is a 400.
	oresp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/slice/99")
	if err != nil {
		t.Fatal(err)
	}
	oresp.Body.Close()
	if oresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range slice status = %d", oresp.StatusCode)
	}

	// Identical resubmission is served instantly from the cache with 200.
	resp2, v2 := postJob(t, ts.URL, spec)
	if resp2.StatusCode != http.StatusOK || !v2.CacheHit {
		t.Fatalf("resubmit: status %d, cacheHit %v", resp2.StatusCode, v2.CacheHit)
	}

	// Metrics reflect the traffic.
	mresp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var mt Metrics
	if err := json.NewDecoder(mresp.Body).Decode(&mt); err != nil {
		t.Fatal(err)
	}
	if mt.Completed < 2 || mt.Cache.Hits < 1 || mt.Workers != 2 {
		t.Fatalf("metrics = %+v", mt)
	}

	// List shows both jobs.
	lresp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	var list []View
	if err := json.NewDecoder(lresp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 {
		t.Fatalf("list has %d jobs, want 2", len(list))
	}

	// DELETE on a terminal job removes it.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+v.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status = %d", dresp.StatusCode)
	}
	if code, _ := getView(t, ts.URL, v.ID); code != http.StatusNotFound {
		t.Fatalf("deleted job still served: %d", code)
	}
}

func TestAPIRejectsBadRequests(t *testing.T) {
	ts, _ := startTestServer(t, Options{Workers: 1})
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON status = %d", resp.StatusCode)
	}
	bad := testSpec()
	bad.Phantom = "unicorn"
	resp2, _ := postJob(t, ts.URL, bad)
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad phantom status = %d", resp2.StatusCode)
	}
	if code, _ := getView(t, ts.URL, "nonexistent"); code != http.StatusNotFound {
		t.Fatalf("unknown job status = %d", code)
	}
}

// DELETE on a live job cancels it.
func TestAPICancelViaDelete(t *testing.T) {
	ts, _ := startTestServer(t, Options{
		Workers: 1,
		PFS:     pfsThrottled(),
	})
	_, v := postJob(t, ts.URL, testSpec())
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+v.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel status = %d", resp.StatusCode)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, cur := getView(t, ts.URL, v.ID)
		if cur.State.Terminal() {
			if cur.State != StateCancelled {
				t.Fatalf("state = %s, want cancelled", cur.State)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("cancel never landed")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
