package service

import (
	"bytes"
	"context"
	"encoding/json"
	"image/png"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func startTestServer(t *testing.T, opt Options) (*httptest.Server, *Manager) {
	t.Helper()
	m := NewManager(opt)
	ts := httptest.NewServer(NewServer(m))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = m.Shutdown(ctx)
	})
	return ts, m
}

func postJob(t *testing.T, url string, spec Spec) (*http.Response, View) {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v View
	if resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
	}
	return resp, v
}

func getView(t *testing.T, url, id string) (int, View) {
	t.Helper()
	resp, err := http.Get(url + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v View
	_ = json.NewDecoder(resp.Body).Decode(&v)
	return resp.StatusCode, v
}

// Full API round-trip: submit, poll to completion, fetch a slice PNG,
// observe the cache on resubmission, read metrics, delete.
func TestAPIRoundTrip(t *testing.T) {
	ts, _ := startTestServer(t, Options{Workers: 2})
	spec := testSpec()

	resp, v := postJob(t, ts.URL, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, cur := getView(t, ts.URL, v.ID)
		if code != http.StatusOK {
			t.Fatalf("get status = %d", code)
		}
		if cur.State.Terminal() {
			if cur.State != StateDone {
				t.Fatalf("job ended %s: %s", cur.State, cur.Error)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Slice endpoint returns a decodable PNG of the right size.
	sresp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/slice/8")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("slice status = %d", sresp.StatusCode)
	}
	if ct := sresp.Header.Get("Content-Type"); ct != "image/png" {
		t.Fatalf("slice content type = %s", ct)
	}
	img, err := png.Decode(sresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if b := img.Bounds(); b.Dx() != 16 || b.Dy() != 16 {
		t.Fatalf("slice is %dx%d, want 16x16", b.Dx(), b.Dy())
	}

	// Out-of-range slice is a 400.
	oresp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/slice/99")
	if err != nil {
		t.Fatal(err)
	}
	oresp.Body.Close()
	if oresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range slice status = %d", oresp.StatusCode)
	}

	// Identical resubmission is served instantly from the cache with 200.
	resp2, v2 := postJob(t, ts.URL, spec)
	if resp2.StatusCode != http.StatusOK || !v2.CacheHit {
		t.Fatalf("resubmit: status %d, cacheHit %v", resp2.StatusCode, v2.CacheHit)
	}

	// Metrics reflect the traffic.
	mresp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var mt Metrics
	if err := json.NewDecoder(mresp.Body).Decode(&mt); err != nil {
		t.Fatal(err)
	}
	// One real reconstruction plus one cache hit: the hit must NOT inflate
	// the completed (real runs) counter that feeds jobs_per_sec.
	if mt.Completed != 1 || mt.CacheHits != 1 || mt.Cache.Hits < 1 || mt.Workers != 2 {
		t.Fatalf("metrics = %+v", mt)
	}

	// List shows both jobs.
	lresp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	var list []View
	if err := json.NewDecoder(lresp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 {
		t.Fatalf("list has %d jobs, want 2", len(list))
	}

	// DELETE on a terminal job removes it.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+v.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status = %d", dresp.StatusCode)
	}
	if code, _ := getView(t, ts.URL, v.ID); code != http.StatusNotFound {
		t.Fatalf("deleted job still served: %d", code)
	}
}

func TestAPIRejectsBadRequests(t *testing.T) {
	ts, _ := startTestServer(t, Options{Workers: 1})
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON status = %d", resp.StatusCode)
	}
	bad := testSpec()
	bad.Phantom = "unicorn"
	resp2, _ := postJob(t, ts.URL, bad)
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad phantom status = %d", resp2.StatusCode)
	}
	if code, _ := getView(t, ts.URL, "nonexistent"); code != http.StatusNotFound {
		t.Fatalf("unknown job status = %d", code)
	}
}

// DELETE must be race-free against job completion: a job may reach a
// terminal state between the handler's Get and its Cancel, and the handler
// must fall through to deletion instead of surfacing a spurious 409. The
// old handler flaked exactly this way; hammer the window with fast jobs.
func TestAPIDeleteNeverConflictsWithCompletion(t *testing.T) {
	ts, _ := startTestServer(t, Options{Workers: 2, QueueCap: 32})
	for i := 0; i < 12; i++ {
		spec := testSpec()
		spec.NP = 32 + 4*(i%5) // mix of fresh runs and cache hits
		_, v := postJob(t, ts.URL, spec)
		if v.ID == "" {
			t.Fatal("submit failed")
		}
		// Race DELETE against the job finishing on its own.
		deadline := time.Now().Add(30 * time.Second)
		for deleted := false; !deleted; {
			req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+v.ID, nil)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusAccepted: // cancelled while live; try again until deleted
			case http.StatusNoContent, http.StatusNotFound:
				deleted = true // gone (404 = raced with our own earlier delete)
			case http.StatusConflict:
				t.Fatalf("job %d: spurious 409 from DELETE race", i)
			default:
				t.Fatalf("job %d: DELETE status %d", i, resp.StatusCode)
			}
			if !deleted {
				if time.Now().After(deadline) {
					t.Fatalf("job %d: never settled", i)
				}
				time.Sleep(2 * time.Millisecond)
			}
		}
	}
}

// Per-client quotas: a client that bursts past its token bucket gets 429
// with Retry-After while other clients keep submitting.
func TestAPIQuota(t *testing.T) {
	ts, _ := startTestServer(t, Options{Workers: 1, QueueCap: 32, QuotaRPS: 0.01, QuotaBurst: 2})
	specN := func(client string, np int) Spec {
		s := testSpec()
		s.Client = client
		s.NP = np
		return s
	}
	for i := 0; i < 2; i++ {
		resp, _ := postJob(t, ts.URL, specN("greedy", 32+4*i))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("burst submit %d: status %d", i, resp.StatusCode)
		}
	}
	body, _ := json.Marshal(specN("greedy", 48))
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if r2, _ := postJob(t, ts.URL, specN("patient", 52)); r2.StatusCode != http.StatusAccepted {
		t.Fatalf("other client hit by greedy client's quota: status %d", r2.StatusCode)
	}
}

// DELETE on a live job cancels it.
func TestAPICancelViaDelete(t *testing.T) {
	ts, _ := startTestServer(t, Options{
		Workers: 1,
		PFS:     pfsThrottled(),
	})
	_, v := postJob(t, ts.URL, testSpec())
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+v.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel status = %d", resp.StatusCode)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, cur := getView(t, ts.URL, v.ID)
		if cur.State.Terminal() {
			if cur.State != StateCancelled {
				t.Fatalf("state = %s, want cancelled", cur.State)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("cancel never landed")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
