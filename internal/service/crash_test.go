package service

import (
	"context"
	"testing"
	"time"

	"ifdk/internal/volume"
)

// The tentpole end-to-end: kill -9 a daemon with one job mid-run and more
// queued behind it, restart on the same journal dir, and every accepted job
// comes back under its original public ID and runs to done — with volumes
// bit-identical to an uninterrupted run of the same specs.
func TestCrashRestartRecoversAcceptedJobs(t *testing.T) {
	dir := t.TempDir()
	specs := []Spec{
		{Phantom: "shepplogan", NX: 16, R: 2, C: 2},
		{Phantom: "sphere", NX: 16, R: 2, C: 2},
		{Phantom: "shepplogan", NX: 16, R: 4, C: 1},
	}

	// Workers=1 over throttled storage: the first job is pinned mid-run
	// while the rest sit queued — the crash catches both phases at once.
	m1, err := OpenManager(Options{Workers: 1, NodeID: "b0", JournalDir: dir, PFS: pfsThrottled()})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, spec := range specs {
		v, err := m1.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
	}
	waitRunning(t, m1, ids[0])
	m1.Crash()

	// Restart on the same journal dir (fast storage: recovery must not
	// depend on the PFS, which died with the process).
	m2, err := OpenManager(Options{Workers: 2, NodeID: "b0", JournalDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = m2.Shutdown(ctx)
	}()

	for i, id := range ids {
		v, ok := m2.Get(id)
		if !ok {
			t.Fatalf("job %d (%s) lost across the crash", i, id)
		}
		if !v.Recovered {
			t.Errorf("job %s not flagged recovered: %+v", id, v)
		}
		if v.Spec.Phantom != specs[i].Phantom || v.Spec.R != specs[i].R {
			t.Errorf("job %s spec mangled across replay: %+v", id, v.Spec)
		}
	}
	for _, id := range ids {
		if v := waitState(t, m2, id, 2*time.Minute); v.State != StateDone {
			t.Fatalf("recovered job %s finished %s (%s), want done", id, v.State, v.Error)
		}
	}

	// Deterministic re-execution: each recovered volume is bit-identical to
	// an uninterrupted run of the same spec.
	control := NewManager(Options{Workers: 2})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = control.Shutdown(ctx)
	}()
	for i, spec := range specs {
		cv, err := control.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, control, cv.ID, 2*time.Minute)
		want, err := control.Volume(cv.ID)
		if err != nil {
			t.Fatal(err)
		}
		got, err := m2.Volume(ids[i])
		if err != nil {
			t.Fatalf("recovered job %s: %v", ids[i], err)
		}
		if d, err := volume.MaxAbsDiff(want, got); err != nil || d != 0 {
			t.Fatalf("job %d not bit-exact across crash/restart: maxAbsDiff=%g err=%v", i, d, err)
		}
	}

	// The restarted daemon must never reissue a journaled public ID.
	nv, err := m2.Submit(Spec{Phantom: "sphere", NX: 16, R: 2, C: 2, Priority: "low"})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if nv.ID == id {
			t.Fatalf("restart reissued public ID %s", id)
		}
	}
}

// Jobs terminal before the crash come back as metadata-only views — state,
// error text, stage timings — without being re-run; deleted jobs stay gone
// but still pin the ID sequence.
func TestCrashRestartPreservesTerminalViews(t *testing.T) {
	dir := t.TempDir()
	m1, err := OpenManager(Options{Workers: 1, NodeID: "b0", JournalDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	done, err := m1.Submit(Spec{Phantom: "shepplogan", NX: 16, R: 2, C: 2})
	if err != nil {
		t.Fatal(err)
	}
	doneView := waitState(t, m1, done.ID, 2*time.Minute)

	gone, err := m1.Submit(Spec{Phantom: "sphere", NX: 16, R: 2, C: 2})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m1, gone.ID, 2*time.Minute)
	if err := m1.Delete(gone.ID); err != nil {
		t.Fatal(err)
	}
	m1.Crash()

	m2, err := OpenManager(Options{Workers: 1, NodeID: "b0", JournalDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = m2.Shutdown(ctx)
	}()

	v, ok := m2.Get(done.ID)
	if !ok {
		t.Fatalf("terminal job %s lost across the crash", done.ID)
	}
	if v.State != StateDone {
		t.Fatalf("terminal job replayed as %s, want done", v.State)
	}
	if v.Stages.Total != doneView.Stages.Total {
		t.Errorf("stage timings not preserved: %v != %v", v.Stages.Total, doneView.Stages.Total)
	}
	if _, ok := m2.Get(gone.ID); ok {
		t.Fatalf("deleted job %s resurrected by replay", gone.ID)
	}
	nv, err := m2.Submit(Spec{Phantom: "sphere", NX: 16, R: 4, C: 1})
	if err != nil {
		t.Fatal(err)
	}
	if nv.ID == gone.ID || nv.ID == done.ID {
		t.Fatalf("restart reissued public ID %s", nv.ID)
	}
}

// A crash with nothing journaled (journaling off) must not recover phantom
// state, and a journaled manager restarted twice in a row replays cleanly —
// the compaction swap is itself durable.
func TestCrashRestartTwice(t *testing.T) {
	dir := t.TempDir()
	m1, err := OpenManager(Options{Workers: 1, NodeID: "b0", JournalDir: dir, PFS: pfsThrottled()})
	if err != nil {
		t.Fatal(err)
	}
	v, err := m1.Submit(Spec{Phantom: "shepplogan", NX: 16, R: 2, C: 2})
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, m1, v.ID)
	m1.Crash()

	// Second crash lands before the recovered job finishes: the job must
	// survive two generations of replay + compaction.
	m2, err := OpenManager(Options{Workers: 1, NodeID: "b0", JournalDir: dir, PFS: pfsThrottled()})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m2.Get(v.ID); !ok {
		t.Fatalf("job %s lost on first restart", v.ID)
	}
	m2.Crash()

	m3, err := OpenManager(Options{Workers: 1, NodeID: "b0", JournalDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = m3.Shutdown(ctx)
	}()
	if fv := waitState(t, m3, v.ID, 2*time.Minute); fv.State != StateDone {
		t.Fatalf("job %s finished %s after two crashes, want done", v.ID, fv.State)
	}
}
