package service

import (
	"errors"
	"sync"
	"time"
)

// ErrQueueFull is returned by Push when the queue holds its maximum number
// of jobs — the backpressure signal the HTTP layer translates to 503.
var ErrQueueFull = errors.New("service: job queue full")

// ErrCostBudget is returned by Push when admitting the job would push the
// estimated seconds of queued work past the configured budget. Unlike
// ErrQueueFull it is per-job: a cheap preview can still be admitted after a
// large job was refused.
var ErrCostBudget = errors.New("service: queued-work cost budget exhausted")

// ErrClosed is returned when the manager is shutting down.
var ErrClosed = errors.New("service: manager closed")

// Queue is a bounded multi-priority queue with cost-aware admission and
// priority aging.
//
// Admission: Push never blocks. It refuses a job when the queue holds
// capacity jobs (ErrQueueFull) or when the sum of the queued jobs' cost
// estimates would exceed maxCost seconds (ErrCostBudget). The cost budget
// is what keeps one 256³ monster from monopolizing admission while 16³
// previews shed 503s: a huge job consumes most of the budget by itself, so
// a second huge job is refused while cheap jobs still fit in the remainder.
// An otherwise-over-budget job is always admitted into an EMPTY queue so a
// job costing more than the whole budget can still run — the budget bounds
// queued backlog, it is not a hard per-job ceiling.
//
// Ordering: Pop drains by effective priority, oldest job first within a
// class. A job's effective priority starts at its submitted class and rises
// one class for every aging interval it has waited, capped at the highest
// class; ties break oldest-first. This bounds starvation: a saturated
// high-priority stream can delay a low-priority job by at most
// (numPriorities-1)·aging before the job competes with — and, being older,
// beats — every fresh high-priority submission.
type Queue struct {
	mu       sync.Mutex
	notEmpty *sync.Cond
	buckets  [numPriorities][]queued
	n        int
	capacity int
	maxCost  float64       // queued-seconds budget; <= 0 means unlimited
	cost     float64       // sum of queued jobs' cost estimates, seconds
	aging    time.Duration // wait per one-class priority boost; <= 0 disables
	closed   bool
}

type queued struct {
	j        *Job
	enqueued time.Time
	cost     float64
}

// NewQueue creates a queue admitting at most capacity jobs (min 1) and at
// most maxCostSec estimated seconds of queued work (<= 0 means unlimited),
// with the given priority-aging interval (<= 0 disables aging).
func NewQueue(capacity int, maxCostSec float64, aging time.Duration) *Queue {
	if capacity < 1 {
		capacity = 1
	}
	q := &Queue{capacity: capacity, maxCost: maxCostSec, aging: aging}
	q.notEmpty = sync.NewCond(&q.mu)
	return q
}

// Cap returns the admission capacity in jobs.
func (q *Queue) Cap() int { return q.capacity }

// MaxCostSec returns the queued-work budget in estimated seconds (0 when
// unlimited).
func (q *Queue) MaxCostSec() float64 {
	if q.maxCost <= 0 {
		return 0
	}
	return q.maxCost
}

// Len returns the number of queued jobs.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

// CostSec returns the estimated seconds of work currently queued.
func (q *Queue) CostSec() float64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.cost
}

// Push admits a job or reports ErrQueueFull / ErrCostBudget / ErrClosed.
// The job's admission cost is read from j.estCost (frozen at submit time).
func (q *Queue) Push(j *Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	if q.n >= q.capacity {
		return ErrQueueFull
	}
	if q.maxCost > 0 && q.n > 0 && q.cost+j.estCost > q.maxCost {
		return ErrCostBudget
	}
	q.buckets[j.Priority] = append(q.buckets[j.Priority], queued{j: j, enqueued: time.Now(), cost: j.estCost})
	q.n++
	q.cost += j.estCost
	q.notEmpty.Signal()
	return nil
}

// forcePush enqueues a recovered job, bypassing the capacity and cost
// budgets: the job was admitted before the restart and must not be lost to
// a transiently smaller queue or busier budget. Journal replay only.
func (q *Queue) forcePush(j *Job) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.buckets[j.Priority] = append(q.buckets[j.Priority], queued{j: j, enqueued: time.Now(), cost: j.estCost})
	q.n++
	q.cost += j.estCost
	q.notEmpty.Signal()
}

// effective returns the aged priority class of a job that has waited for
// the given duration since enqueue.
func (q *Queue) effective(base Priority, waited time.Duration) int {
	p := int(base)
	if q.aging > 0 && waited > 0 {
		boost := int(waited / q.aging)
		if boost > int(numPriorities)-1-p {
			return int(numPriorities) - 1
		}
		p += boost
	}
	return p
}

// Pop blocks until a job is available and returns it; after Close the
// remaining jobs are drained, then Pop reports ok == false.
//
//ifdk:noctx cancellation is Close, whose cond broadcast wakes every parked worker
func (q *Queue) Pop() (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.n == 0 && !q.closed {
		q.notEmpty.Wait()
	}
	if q.n == 0 {
		return nil, false
	}
	// Pick the bucket whose head has the highest effective priority; the
	// head is each bucket's oldest entry, hence also its most aged. Ties
	// go to the oldest head so an aged job beats fresh same-class ones.
	now := time.Now()
	best, bestEff := -1, -1
	var bestEnq time.Time
	for p := 0; p < int(numPriorities); p++ {
		if len(q.buckets[p]) == 0 {
			continue
		}
		head := q.buckets[p][0]
		eff := q.effective(Priority(p), now.Sub(head.enqueued))
		if eff > bestEff || (eff == bestEff && head.enqueued.Before(bestEnq)) {
			best, bestEff, bestEnq = p, eff, head.enqueued
		}
	}
	it := q.buckets[best][0]
	q.buckets[best][0] = queued{}
	q.buckets[best] = q.buckets[best][1:]
	q.n--
	q.cost -= it.cost
	if q.n == 0 {
		q.cost = 0 // clamp float drift so an empty queue charges nothing
	}
	return it.j, true
}

// Remove deletes a queued job by ID (used by cancel); it reports whether
// the job was found.
func (q *Queue) Remove(id string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for p := range q.buckets {
		for i, it := range q.buckets[p] {
			if it.j.ID == id {
				q.buckets[p] = append(q.buckets[p][:i], q.buckets[p][i+1:]...)
				q.n--
				q.cost -= it.cost
				if q.n == 0 {
					q.cost = 0
				}
				return true
			}
		}
	}
	return false
}

// Close stops admission and wakes blocked Pops; queued jobs can still be
// drained (graceful shutdown) — idempotent.
func (q *Queue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.notEmpty.Broadcast()
}
