package service

import (
	"errors"
	"sync"
)

// ErrQueueFull is returned by Push when the queue is at capacity — the
// backpressure signal the HTTP layer translates to 503.
var ErrQueueFull = errors.New("service: job queue full")

// ErrClosed is returned when the manager is shutting down.
var ErrClosed = errors.New("service: manager closed")

// Queue is a bounded multi-priority FIFO: Pop drains the highest non-empty
// priority class first, oldest job first within a class. Push never blocks
// (it reports ErrQueueFull instead) so the admission decision is immediate;
// Pop blocks until a job or Close.
type Queue struct {
	mu       sync.Mutex
	notEmpty *sync.Cond
	buckets  [numPriorities][]*Job
	n        int
	capacity int
	closed   bool
}

// NewQueue creates a queue admitting at most capacity jobs (min 1).
func NewQueue(capacity int) *Queue {
	if capacity < 1 {
		capacity = 1
	}
	q := &Queue{capacity: capacity}
	q.notEmpty = sync.NewCond(&q.mu)
	return q
}

// Cap returns the admission capacity.
func (q *Queue) Cap() int { return q.capacity }

// Len returns the number of queued jobs.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

// Push admits a job or reports ErrQueueFull / ErrClosed.
func (q *Queue) Push(j *Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	if q.n >= q.capacity {
		return ErrQueueFull
	}
	q.buckets[j.Priority] = append(q.buckets[j.Priority], j)
	q.n++
	q.notEmpty.Signal()
	return nil
}

// Pop blocks until a job is available and returns it; after Close the
// remaining jobs are drained, then Pop reports ok == false.
func (q *Queue) Pop() (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.n == 0 && !q.closed {
		q.notEmpty.Wait()
	}
	if q.n == 0 {
		return nil, false
	}
	for p := numPriorities - 1; p >= 0; p-- {
		if len(q.buckets[p]) > 0 {
			j := q.buckets[p][0]
			q.buckets[p][0] = nil
			q.buckets[p] = q.buckets[p][1:]
			q.n--
			return j, true
		}
	}
	return nil, false // unreachable: n > 0 implies a non-empty bucket
}

// Remove deletes a queued job by ID (used by cancel); it reports whether
// the job was found.
func (q *Queue) Remove(id string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for p := range q.buckets {
		for i, j := range q.buckets[p] {
			if j.ID == id {
				q.buckets[p] = append(q.buckets[p][:i], q.buckets[p][i+1:]...)
				q.n--
				return true
			}
		}
	}
	return false
}

// Close stops admission and wakes blocked Pops; queued jobs can still be
// drained (graceful shutdown) — idempotent.
func (q *Queue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.notEmpty.Broadcast()
}
