package service

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ifdk/pkg/api"
)

func jSpec(nx int) api.Spec {
	return api.Spec{Phantom: "shepplogan", NX: nx, R: 2, C: 2}
}

// Replay must be order-tolerant: the worker pool's start/terminal appends
// race the submit path's own append, so any interleaving of a job's records
// must merge to the same state.
func TestMergeRecordsOrderTolerant(t *testing.T) {
	spec := jSpec(16)
	submit := journalRecord{T: recSubmit, ID: "b0-j00000003", Spec: &spec, TraceID: "t1"}
	start := journalRecord{T: recStart, ID: "b0-j00000003", Started: "2026-08-08T10:00:00Z"}
	term := journalRecord{T: recTerminal, ID: "b0-j00000003", State: "done",
		Finished: "2026-08-08T10:00:05Z", Verified: true, RelRMSE: 0.01}

	orders := [][]journalRecord{
		{submit, start, term},
		{term, start, submit}, // worker finished before Submit's append landed
		{start, submit, term},
	}
	for i, recs := range orders {
		jobs, maxSeq := mergeRecords(recs)
		if len(jobs) != 1 {
			t.Fatalf("order %d: %d jobs recovered, want 1", i, len(jobs))
		}
		j := jobs[0]
		if j.State != api.StateDone || !j.Verified || j.RelRMSE != 0.01 {
			t.Fatalf("order %d: terminal state lost: %+v", i, j)
		}
		if j.Spec.NX != 16 || j.TraceID != "t1" {
			t.Fatalf("order %d: submit fields lost: %+v", i, j)
		}
		if j.Started.IsZero() || j.Finished.IsZero() {
			t.Fatalf("order %d: timestamps lost: %+v", i, j)
		}
		if maxSeq != 3 {
			t.Fatalf("order %d: maxSeq = %d, want 3", i, maxSeq)
		}
	}
}

// A job whose records never include a submit (its submit append was the torn
// line) cannot be recovered, and a deleted job must not come back — but both
// IDs must still raise the sequence high-water mark so their public IDs are
// never reissued.
func TestMergeRecordsDropsDeletedButPinsSeq(t *testing.T) {
	spec := jSpec(16)
	jobs, maxSeq := mergeRecords([]journalRecord{
		{T: recSubmit, ID: "b0-j00000002", Spec: &spec},
		{T: recDelete, ID: "b0-j00000002"},
		{T: recStart, ID: "b0-j00000009"}, // submit record lost
		{T: recSeq, ID: "_", Seq: 5},
	})
	if len(jobs) != 0 {
		t.Fatalf("recovered %d jobs, want 0: %+v", len(jobs), jobs)
	}
	if maxSeq != 9 {
		t.Fatalf("maxSeq = %d, want 9 (highest of delete-victim, orphan start and recSeq)", maxSeq)
	}
}

// A non-terminal job — queued or mid-run at the crash — must come back
// StateQueued, whatever its last recorded transition was.
func TestMergeRecordsRequeuesNonTerminal(t *testing.T) {
	spec := jSpec(16)
	jobs, _ := mergeRecords([]journalRecord{
		{T: recSubmit, ID: "b0-j00000001", Spec: &spec},
		{T: recStart, ID: "b0-j00000001", Started: "2026-08-08T10:00:00Z"},
	})
	if len(jobs) != 1 || jobs[0].State != api.StateQueued {
		t.Fatalf("mid-run job not requeued: %+v", jobs)
	}
}

func TestIDSeq(t *testing.T) {
	for _, tc := range []struct {
		id   string
		want int64
	}{
		{"b0-j00000007", 7},
		{"node-j123", 123},
		{"nodigits", 0},
		{"j42", 42},
		{"", 0},
	} {
		if got := idSeq(tc.id); got != tc.want {
			t.Errorf("idSeq(%q) = %d, want %d", tc.id, got, tc.want)
		}
	}
}

// A torn final line — the crash-mid-append signature — and corrupt lines
// elsewhere must be skipped without bricking recovery of the other jobs.
func TestReadJournalSkipsTornLines(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, journalFile)
	content := `{"t":"submit","id":"b0-j00000001","spec":{"phantom":"shepp-logan","nx":16,"ny":16,"nz":16,"nu":32,"nv":32,"np":32}}
this is not json
{"t":"submit","id":"b0-j00000002","spec":{"phantom":"shepp-logan","nx":16,"ny":16,"nz":16,"nu":32,"nv":32,"np":32}}
{"t":"terminal","id":"b0-j000000`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := readJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("recovered %d records, want 2: %+v", len(recs), recs)
	}
	if recs[0].ID != "b0-j00000001" || recs[1].ID != "b0-j00000002" {
		t.Fatalf("wrong records survived: %+v", recs)
	}
}

// openJournal must compact on boot: the rewritten file replays to the same
// recovery set, carries a recSeq pin, and drops dead records (deletes,
// superseded transitions).
func TestJournalCompactionRoundTrip(t *testing.T) {
	dir := t.TempDir()
	jn, recovered, maxSeq, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 0 || maxSeq != 0 {
		t.Fatalf("fresh journal recovered state: %d jobs, seq %d", len(recovered), maxSeq)
	}
	spec := jSpec(16)
	specDel := jSpec(24)
	appendAll := func(recs ...journalRecord) {
		t.Helper()
		for _, rec := range recs {
			if err := jn.append(rec); err != nil {
				t.Fatal(err)
			}
		}
	}
	appendAll(
		journalRecord{T: recSubmit, ID: "b0-j00000001", Spec: &spec, Submitted: "2026-08-08T09:00:00Z"},
		journalRecord{T: recStart, ID: "b0-j00000001", Started: "2026-08-08T09:00:01Z"},
		journalRecord{T: recTerminal, ID: "b0-j00000001", State: "done", Finished: "2026-08-08T09:00:02Z"},
		journalRecord{T: recSubmit, ID: "b0-j00000002", Spec: &spec, Submitted: "2026-08-08T09:01:00Z"},
		journalRecord{T: recStart, ID: "b0-j00000002", Started: "2026-08-08T09:01:01Z"},
		// j3: submitted and deleted — must vanish but pin the sequence.
		journalRecord{T: recSubmit, ID: "b0-j00000003", Spec: &specDel},
		journalRecord{T: recDelete, ID: "b0-j00000003"},
	)
	jn.close()

	jn2, recovered, maxSeq, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer jn2.close()
	if maxSeq != 3 {
		t.Fatalf("maxSeq = %d, want 3 (deleted job still pins the sequence)", maxSeq)
	}
	if len(recovered) != 2 {
		t.Fatalf("recovered %d jobs, want 2: %+v", len(recovered), recovered)
	}
	if recovered[0].ID != "b0-j00000001" || recovered[0].State != api.StateDone {
		t.Fatalf("terminal job mangled: %+v", recovered[0])
	}
	if recovered[1].ID != "b0-j00000002" || recovered[1].State != api.StateQueued {
		t.Fatalf("mid-run job not requeued: %+v", recovered[1])
	}

	// The compacted file must be minimal: a recSeq pin, then submit (+
	// terminal) per live job — no start, delete, or j3 records.
	blob, err := os.ReadFile(filepath.Join(dir, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(blob)), "\n")
	if len(lines) != 4 {
		t.Fatalf("compacted journal has %d lines, want 4 (seq + 2×submit + terminal):\n%s",
			len(lines), blob)
	}
	if !strings.Contains(lines[0], `"t":"seq"`) || !strings.Contains(lines[0], `"seq":3`) {
		t.Fatalf("first compacted line is not the seq pin: %s", lines[0])
	}
	if strings.Contains(string(blob), "j00000003") {
		t.Fatalf("deleted job survived compaction:\n%s", blob)
	}
	if strings.Contains(string(blob), `"t":"start"`) || strings.Contains(string(blob), `"t":"delete"`) {
		t.Fatalf("compaction kept dead record types:\n%s", blob)
	}

	// A third replay of the compacted file must reproduce the same set —
	// compaction is idempotent.
	jn2.close()
	jn3, again, seqAgain, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer jn3.close()
	if len(again) != 2 || seqAgain != 3 {
		t.Fatalf("compaction not idempotent: %d jobs, seq %d", len(again), seqAgain)
	}
}

// Appends after close must report errJournalClosed — Crash's simulated kill
// point: a still-unwinding worker cannot reach the file.
func TestJournalClosedAppend(t *testing.T) {
	jn, _, _, err := openJournal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	jn.close()
	jn.close() // double close is safe
	spec := jSpec(16)
	if err := jn.append(journalRecord{T: recSubmit, ID: "x-j1", Spec: &spec}); err != errJournalClosed {
		t.Fatalf("append after close = %v, want errJournalClosed", err)
	}
}
