package service

import (
	"errors"
	"testing"
	"time"

	"ifdk/internal/hpc/pfs"
	"ifdk/internal/perfmodel"
)

// estOf evaluates the submit-time cost model exactly as Submit does.
func estOf(t *testing.T, s Spec) perfmodel.Cost {
	t.Helper()
	_, cfg, err := compileSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	cfg.InputPrefix = datasetPrefix(specWithDefaults(s), cfg)
	cfg.AssembleVolume = true
	est, err := perfmodel.Estimate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return est
}

func waitRunning(t *testing.T, m *Manager, id string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		v, ok := m.Get(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if v.State == StateRunning {
			return
		}
		if v.State.Terminal() {
			t.Fatalf("job %s finished before it could block: %+v", id, v)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never started running", id)
}

// A saturated high-priority stream must not starve a queued low-priority
// job: priority aging promotes it past fresh high-priority work within the
// aging bound. Without aging this test times out (the low job never pops
// while the flood continues).
func TestNoStarvationUnderHighPriorityFlood(t *testing.T) {
	m := NewManager(Options{
		Workers:  1,
		QueueCap: 64,
		Aging:    25 * time.Millisecond,
		PFS:      pfsThrottled(), // stretch each run so the queue stays contended
	})
	blocker := testSpec()
	blocker.NP = 36
	if _, err := m.Submit(blocker); err != nil {
		t.Fatal(err)
	}
	lowSpec := testSpec()
	lowSpec.Priority = "low"
	low, err := m.Submit(lowSpec)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	floodDone := make(chan struct{})
	go func() {
		defer close(floodDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			s := testSpec()
			s.Priority = "high"
			s.NP = 40 + 4*(i%500) // distinct specs: no cache hits
			_, _ = m.Submit(s)    // queue-full is fine; keep the pressure on
			time.Sleep(5 * time.Millisecond)
		}
	}()
	v := waitState(t, m, low.ID, 30*time.Second)
	close(stop)
	<-floodDone
	if v.State != StateDone {
		t.Fatalf("low-priority job ended %s: %s", v.State, v.Error)
	}
	if mt := m.Metrics(); mt.WaitSec["low"].Count == 0 {
		t.Error("no low-priority wait sample recorded")
	}
	// Drain: cancel whatever the flood left behind, then shut down.
	for _, jv := range m.List() {
		if !jv.State.Terminal() {
			_ = m.Cancel(jv.ID)
		}
	}
	shutdown(t, m)
}

// The queued-work cost budget sheds a second expensive job while cheap
// previews keep flowing — and admission counters say why.
func TestCostBudgetShedsBigAdmitsSmall(t *testing.T) {
	small := testSpec() // 16³
	big := testSpec()
	big.NX = 32 // 32³: both runtime and working set are ~an order larger
	costSmall := estOf(t, small).RunSec
	costBig := estOf(t, big).RunSec
	if costSmall > 0.4*costBig {
		t.Fatalf("model costs not separated enough: small %g vs big %g", costSmall, costBig)
	}
	m := NewManager(Options{
		Workers:      1,
		QueueCap:     16,
		MaxQueuedSec: 1.5 * costBig, // one big job fits; two do not; big+small does
		CostScale:    1,             // no calibration surprises: charged = model cost
		PFS:          pfs.Config{ReadBW: 2e5, Targets: 1, Throttle: true},
	})
	blocker := testSpec()
	blocker.NP = 36
	bv, err := m.Submit(blocker)
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, m, bv.ID) // occupy the only worker; queue is now empty
	bigV, err := m.Submit(big)
	if err != nil {
		t.Fatalf("first big job refused: %v", err)
	}
	if bigV.Cost <= 0 || bigV.EstRunSec <= 0 {
		t.Errorf("admitted job carries no cost estimate: %+v", bigV)
	}
	big2 := big
	big2.NP = big.NX*2 + 4 // distinct spec, same scale
	if _, err := m.Submit(big2); !errors.Is(err, ErrCostBudget) {
		t.Fatalf("second big job: err = %v, want ErrCostBudget", err)
	}
	if _, err := m.Submit(small); err != nil {
		t.Fatalf("cheap job refused while budget had room: %v", err)
	}
	mt := m.Metrics()
	if mt.Admission.RejectedCost != 1 {
		t.Errorf("rejected_cost = %d, want 1", mt.Admission.RejectedCost)
	}
	if mt.QueueCostSec <= 0 {
		t.Errorf("queue_cost_sec = %g, want > 0", mt.QueueCostSec)
	}
	for _, jv := range m.List() {
		if !jv.State.Terminal() {
			_ = m.Cancel(jv.ID)
		}
	}
	shutdown(t, m)
}

// The in-flight working-set byte budget refuses a job whose buffers would
// not fit next to the running ones, while smaller jobs still pass.
func TestWorkingSetBudget(t *testing.T) {
	small := testSpec()
	big := testSpec()
	big.NX = 32
	bytesSmall := estOf(t, small).WorkingSetBytes
	bytesBig := estOf(t, big).WorkingSetBytes
	if bytesBig < 2*bytesSmall {
		t.Fatalf("working sets not separated: small %d vs big %d", bytesSmall, bytesBig)
	}
	m := NewManager(Options{
		Workers:          1,
		QueueCap:         16,
		MaxInflightBytes: 3 * bytesSmall,
		PFS:              pfs.Config{ReadBW: 2e5, Targets: 1, Throttle: true},
	})
	blocker := testSpec()
	blocker.NP = 36
	bv, err := m.Submit(blocker)
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, m, bv.ID) // running jobs stay charged against the budget
	if _, err := m.Submit(big); !errors.Is(err, ErrWorkingSet) {
		t.Fatalf("big job: err = %v, want ErrWorkingSet", err)
	}
	if _, err := m.Submit(small); err != nil {
		t.Fatalf("small job refused with budget room: %v", err)
	}
	if mt := m.Metrics(); mt.Admission.RejectedBytes != 1 || mt.InflightBytes <= 0 {
		t.Errorf("admission = %+v, inflight = %d", mt.Admission, mt.InflightBytes)
	}
	for _, jv := range m.List() {
		if !jv.State.Terminal() {
			_ = m.Cancel(jv.ID)
		}
	}
	shutdown(t, m)
}

// Cache hits are reported separately from completed reconstructions, so
// jobs_per_sec reflects actual pipeline throughput.
func TestCacheHitNotCountedAsCompleted(t *testing.T) {
	m := NewManager(Options{Workers: 1})
	v, err := m.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, v.ID, 30*time.Second)
	if _, err := m.Submit(testSpec()); err != nil { // identical: cache hit
		t.Fatal(err)
	}
	mt := m.Metrics()
	if mt.Completed != 1 {
		t.Errorf("completed = %d, want 1 (cache hit must not count)", mt.Completed)
	}
	if mt.CacheHits != 1 {
		t.Errorf("cache_hits = %d, want 1", mt.CacheHits)
	}
	shutdown(t, m)
}

// Cancelling a job mid-staging must stop synthesis and PFS writes, remove
// the partial dataset, and release the single-flight slot so a resubmission
// stages from scratch.
func TestCancelDuringStaging(t *testing.T) {
	spec := testSpec()
	spec.NP = 512 // long stage: 512 projections written through a slow PFS
	m := NewManager(Options{
		Workers: 1,
		PFS:     pfs.Config{WriteBW: 2e6, ReadBW: 2e6, Targets: 1, Throttle: true},
	})
	v, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, m, v.ID)
	time.Sleep(50 * time.Millisecond) // let staging get partway through
	if err := m.Cancel(v.ID); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	final := waitState(t, m, v.ID, 10*time.Second)
	if final.State != StateCancelled {
		t.Fatalf("state = %s, want cancelled", final.State)
	}
	// The whole dataset would take ~1s to write; a responsive cancel
	// settles in a fraction of that.
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("cancel during staging took %v", d)
	}
	// No partial dataset may survive (a later job would read a half scan).
	if objs := m.Store().List("ds/"); len(objs) != 0 {
		t.Errorf("%d partial dataset objects survived the cancel", len(objs))
	}
	// The single-flight slot is free again: a resubmission is admitted and
	// re-stages rather than waiting on the cancelled leader forever.
	m.stageMu.Lock()
	slots := len(m.staged)
	m.stageMu.Unlock()
	if slots != 0 {
		t.Errorf("%d staging slots still held after cancel", slots)
	}
	v2, err := m.Submit(spec)
	if err != nil {
		t.Fatalf("resubmit after cancelled staging: %v", err)
	}
	waitRunning(t, m, v2.ID) // the new leader is staging again
	_ = m.Cancel(v2.ID)      // keep the test fast; teardown is covered above
	shutdown(t, m)
}

// Cancel on a terminal job reports the typed sentinel the DELETE handler
// keys its race-free fallthrough on.
func TestCancelTerminalReportsSentinel(t *testing.T) {
	m := NewManager(Options{Workers: 1})
	v, err := m.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, v.ID, 30*time.Second)
	if err := m.Cancel(v.ID); !errors.Is(err, ErrAlreadyTerminal) {
		t.Fatalf("err = %v, want ErrAlreadyTerminal", err)
	}
	if err := m.Cancel("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	shutdown(t, m)
}
