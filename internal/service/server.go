package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"ifdk/internal/hpc/pfs"
	"ifdk/internal/volume"
	"ifdk/pkg/api"
)

// Server is the HTTP front of a Manager, speaking API version api.Version.
//
//	POST   /v1/jobs               submit a Spec; 200 on cache hit, 202 when
//	                              queued, 503 + Retry-After when saturated
//	GET    /v1/jobs               list all jobs
//	GET    /v1/jobs/{id}          one job's status/progress/timings
//	GET    /v1/jobs/{id}/events   lifecycle as SSE (resumable, Last-Event-ID)
//	GET    /v1/jobs/{id}/stream   output slices as chunked multipart, live
//	GET    /v1/jobs/{id}/preview  the coarse preview volume as multipart
//	GET    /v1/jobs/{id}/slice/{z} axial slice z as PNG, as soon as written
//	GET    /v1/jobs/{id}/trace    the job's assembled span tree (JSON)
//	DELETE /v1/jobs/{id}          cancel a live job, or delete a terminal one
//	GET    /v1/metrics            queue/pool/cache/storage counters (JSON)
//	GET    /metrics               the same registry, Prometheus text exposition
//	GET    /healthz               liveness
//
// Every non-2xx response body is the structured api.Error JSON envelope;
// clients branch on its stable Code, not on the HTTP status or message.
type Server struct {
	m   *Manager
	mux *http.ServeMux
}

// NewServer wires the API routes around a manager.
func NewServer(m *Manager) *Server {
	s := &Server{m: m, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/jobs", s.submit)
	s.mux.HandleFunc("GET /v1/jobs", s.list)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.get)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.events)
	s.mux.HandleFunc("GET /v1/jobs/{id}/stream", s.stream)
	s.mux.HandleFunc("GET /v1/jobs/{id}/preview", s.preview)
	s.mux.HandleFunc("GET /v1/jobs/{id}/slice/{z}", s.slice)
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace", s.trace)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.remove)
	s.mux.HandleFunc("GET /v1/metrics", s.metrics)
	s.mux.Handle("GET /metrics", m.Registry().Handler())
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "node": m.opt.NodeID})
	})
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// writeJSON and writeErr delegate to the contract package so the daemon
// and the router emit byte-identical envelopes.
func writeJSON(w http.ResponseWriter, code int, v any) { api.WriteJSON(w, code, v) }

func writeErr(w http.ResponseWriter, code string, format string, args ...any) {
	api.WriteError(w, code, format, args...)
}

// submitCode maps Submit's sentinel errors to wire codes.
func submitCode(err error) string {
	switch {
	case errors.Is(err, ErrQueueFull):
		return api.CodeQueueFull
	case errors.Is(err, ErrCostBudget):
		return api.CodeCostBudget
	case errors.Is(err, ErrWorkingSet):
		return api.CodeWorkingSet
	case errors.Is(err, ErrQuota):
		return api.CodeQuotaExhausted
	case errors.Is(err, ErrClosed):
		return api.CodeShuttingDown
	default:
		// Everything else Submit reports is spec validation: unknown
		// phantom/window/priority, size over the hard limits, grid mismatch.
		return api.CodeInvalidSpec
	}
}

func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeErr(w, api.CodeBadRequest, "bad spec: %v", err)
		return
	}
	v, err := s.m.SubmitWithTrace(spec, r.Header.Get(api.TraceParentHeader))
	switch {
	case err != nil:
		writeErr(w, submitCode(err), "%v", err)
	case v.CacheHit:
		writeJSON(w, http.StatusOK, v)
	default:
		writeJSON(w, http.StatusAccepted, v)
	}
}

func (s *Server) list(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.m.List())
}

func (s *Server) get(w http.ResponseWriter, r *http.Request) {
	v, ok := s.m.Get(r.PathValue("id"))
	if !ok {
		writeErr(w, api.CodeNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// slice serves one axial slice as PNG as soon as it exists: from the
// result volume once the job is done, or straight off the PFS mid-run —
// the epilogue writes slices per row group long before the job settles.
// A malformed or out-of-range index is the client's fault (bad_request); a
// valid index whose slice has not been written yet is not_yet_written,
// worth retrying; a failed or cancelled job's slices will never arrive
// (terminal, as /stream).
func (s *Server) slice(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.m.job(id)
	if !ok {
		writeErr(w, api.CodeNotFound, "no such job %q", id)
		return
	}
	nz := j.resultNz()
	z, err := strconv.Atoi(r.PathValue("z"))
	if err != nil {
		writeErr(w, api.CodeBadRequest, "slice index must be an integer")
		return
	}
	if z < 0 || z >= nz {
		writeErr(w, api.CodeBadRequest, "slice %d out of range [0,%d)", z, nz)
		return
	}
	var img *volume.Image
	if e := s.m.resultFor(j); e != nil && e.Volume != nil {
		img = e.Volume.SliceZ(z)
	} else if st := j.State(); st == StateFailed || st == StateCancelled {
		// Terminal without a result: the slice will never arrive, so a
		// retryable not_yet_written would loop clients forever — terminal,
		// matching /stream.
		writeErr(w, api.CodeTerminal, "job %s is %s: slice %d will not be produced", id, st, z)
		return
	} else if img, _, err = s.m.store.ReadImage(pfs.SlicePath(j.outPrefix(), z)); err != nil {
		writeErr(w, api.CodeNotYetWritten, "slice %d of job %s not written yet (state %s)", z, id, j.State())
		return
	}
	w.Header().Set("Content-Type", "image/png")
	if err := img.WritePNG(w, 0, 0); err != nil {
		// Headers are gone; all we can do is drop the connection mid-body.
		return
	}
}

// remove cancels a live job (202) or deletes a terminal one (204). The
// snapshot from Get is advisory only: a job can reach a terminal state
// between Get and Cancel, so a Cancel that reports ErrAlreadyTerminal falls
// through to delete instead of surfacing a spurious conflict — the verb is
// race-free regardless of when the job settles.
func (s *Server) remove(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	v, ok := s.m.Get(id)
	if !ok {
		writeErr(w, api.CodeNotFound, "no such job %q", id)
		return
	}
	if !v.State.Terminal() {
		switch err := s.m.Cancel(id); {
		case err == nil:
			writeJSON(w, http.StatusAccepted, map[string]string{"id": id, "action": "cancelled"})
			return
		case errors.Is(err, ErrAlreadyTerminal):
			// Raced to terminal between Get and Cancel: delete below.
		case errors.Is(err, ErrNotFound):
			writeErr(w, api.CodeNotFound, "%v", err)
			return
		default:
			writeErr(w, api.CodeNotTerminal, "%v", err)
			return
		}
	}
	switch err := s.m.Delete(id); {
	case err == nil:
		w.WriteHeader(http.StatusNoContent)
	case errors.Is(err, ErrNotFound): // raced with a concurrent DELETE
		writeErr(w, api.CodeNotFound, "%v", err)
	default:
		writeErr(w, api.CodeNotTerminal, "%v", err)
	}
}

func (s *Server) metrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.m.Metrics())
}

// trace serves the job's assembled span tree: complete once the job has
// settled, partial (Complete == false) while it is still in flight.
func (s *Server) trace(w http.ResponseWriter, r *http.Request) {
	t, err := s.m.TraceFor(r.PathValue("id"))
	if err != nil {
		writeErr(w, api.CodeNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, t)
}
