package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
)

// Server is the HTTP front of a Manager.
//
//	POST   /v1/jobs               submit a Spec; 200 on cache hit, 202 when
//	                              queued, 503 + Retry-After when saturated
//	GET    /v1/jobs               list all jobs
//	GET    /v1/jobs/{id}          one job's status/progress/timings
//	GET    /v1/jobs/{id}/slice/{z} axial slice z of a done job as PNG
//	DELETE /v1/jobs/{id}          cancel a live job, or delete a terminal one
//	GET    /v1/metrics            queue/pool/cache/storage counters
//	GET    /healthz               liveness
type Server struct {
	m   *Manager
	mux *http.ServeMux
}

// NewServer wires the API routes around a manager.
func NewServer(m *Manager) *Server {
	s := &Server{m: m, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/jobs", s.submit)
	s.mux.HandleFunc("GET /v1/jobs", s.list)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.get)
	s.mux.HandleFunc("GET /v1/jobs/{id}/slice/{z}", s.slice)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.remove)
	s.mux.HandleFunc("GET /v1/metrics", s.metrics)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("bad spec: %v", err)})
		return
	}
	v, err := s.m.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrCostBudget), errors.Is(err, ErrWorkingSet):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: err.Error()})
	case errors.Is(err, ErrQuota):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, apiError{Error: err.Error()})
	case errors.Is(err, ErrClosed):
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: err.Error()})
	case err != nil:
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
	case v.CacheHit:
		writeJSON(w, http.StatusOK, v)
	default:
		writeJSON(w, http.StatusAccepted, v)
	}
}

func (s *Server) list(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.m.List())
}

func (s *Server) get(w http.ResponseWriter, r *http.Request) {
	v, ok := s.m.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such job"})
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) slice(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	z, err := strconv.Atoi(r.PathValue("z"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "slice index must be an integer"})
		return
	}
	vol, err := s.m.Volume(id)
	if err != nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: err.Error()})
		return
	}
	if z < 0 || z >= vol.Nz {
		writeJSON(w, http.StatusBadRequest,
			apiError{Error: fmt.Sprintf("slice %d out of range [0,%d)", z, vol.Nz)})
		return
	}
	w.Header().Set("Content-Type", "image/png")
	if err := vol.SliceZ(z).WritePNG(w, 0, 0); err != nil {
		// Headers are gone; all we can do is drop the connection mid-body.
		return
	}
}

// remove cancels a live job (202) or deletes a terminal one (204). The
// snapshot from Get is advisory only: a job can reach a terminal state
// between Get and Cancel, so a Cancel that reports ErrAlreadyTerminal falls
// through to delete instead of surfacing a spurious 409 — the verb is
// race-free regardless of when the job settles.
func (s *Server) remove(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	v, ok := s.m.Get(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such job"})
		return
	}
	if !v.State.Terminal() {
		switch err := s.m.Cancel(id); {
		case err == nil:
			writeJSON(w, http.StatusAccepted, map[string]string{"id": id, "action": "cancelled"})
			return
		case errors.Is(err, ErrAlreadyTerminal):
			// Raced to terminal between Get and Cancel: delete below.
		case errors.Is(err, ErrNotFound):
			writeJSON(w, http.StatusNotFound, apiError{Error: err.Error()})
			return
		default:
			writeJSON(w, http.StatusConflict, apiError{Error: err.Error()})
			return
		}
	}
	switch err := s.m.Delete(id); {
	case err == nil:
		w.WriteHeader(http.StatusNoContent)
	case errors.Is(err, ErrNotFound): // raced with a concurrent DELETE
		writeJSON(w, http.StatusNotFound, apiError{Error: err.Error()})
	default:
		writeJSON(w, http.StatusConflict, apiError{Error: err.Error()})
	}
}

func (s *Server) metrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.m.Metrics())
}
