package service

import (
	"errors"
	"testing"
	"time"
)

func mkJob(id string, p Priority) *Job {
	return &Job{ID: id, Priority: p, state: StateQueued, submitted: time.Now()}
}

func TestQueuePriorityAndFIFO(t *testing.T) {
	q := NewQueue(10)
	for _, j := range []*Job{
		mkJob("n1", PriorityNormal),
		mkJob("l1", PriorityLow),
		mkJob("h1", PriorityHigh),
		mkJob("n2", PriorityNormal),
		mkJob("h2", PriorityHigh),
	} {
		if err := q.Push(j); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"h1", "h2", "n1", "n2", "l1"}
	for _, id := range want {
		j, ok := q.Pop()
		if !ok || j.ID != id {
			t.Fatalf("popped %v, want %s", j, id)
		}
	}
}

func TestQueueBackpressure(t *testing.T) {
	q := NewQueue(2)
	if err := q.Push(mkJob("a", PriorityNormal)); err != nil {
		t.Fatal(err)
	}
	if err := q.Push(mkJob("b", PriorityHigh)); err != nil {
		t.Fatal(err)
	}
	if err := q.Push(mkJob("c", PriorityHigh)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	q.Pop()
	if err := q.Push(mkJob("c", PriorityHigh)); err != nil {
		t.Fatalf("push after pop: %v", err)
	}
}

func TestQueueRemove(t *testing.T) {
	q := NewQueue(4)
	q.Push(mkJob("a", PriorityNormal))
	q.Push(mkJob("b", PriorityNormal))
	if !q.Remove("a") {
		t.Fatal("remove a failed")
	}
	if q.Remove("a") {
		t.Fatal("double remove succeeded")
	}
	j, ok := q.Pop()
	if !ok || j.ID != "b" {
		t.Fatalf("popped %v, want b", j)
	}
	if q.Len() != 0 {
		t.Fatalf("len = %d", q.Len())
	}
}

func TestQueueCloseDrains(t *testing.T) {
	q := NewQueue(4)
	q.Push(mkJob("a", PriorityNormal))
	q.Close()
	if err := q.Push(mkJob("b", PriorityNormal)); !errors.Is(err, ErrClosed) {
		t.Fatalf("push after close: %v", err)
	}
	if j, ok := q.Pop(); !ok || j.ID != "a" {
		t.Fatal("queued job not drained after close")
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop on drained closed queue reported ok")
	}
}

func TestQueuePopBlocksUntilPush(t *testing.T) {
	q := NewQueue(1)
	got := make(chan *Job, 1)
	go func() {
		j, _ := q.Pop()
		got <- j
	}()
	time.Sleep(10 * time.Millisecond)
	q.Push(mkJob("x", PriorityLow))
	select {
	case j := <-got:
		if j.ID != "x" {
			t.Fatalf("popped %s", j.ID)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pop did not wake")
	}
}
