package service

import (
	"errors"
	"testing"
	"time"
)

func mkJob(id string, p Priority) *Job {
	return &Job{ID: id, Priority: p, state: StateQueued, submitted: time.Now()}
}

func mkCostJob(id string, p Priority, cost float64) *Job {
	j := mkJob(id, p)
	j.estCost = cost
	return j
}

func TestQueuePriorityAndFIFO(t *testing.T) {
	q := NewQueue(10, 0, 0)
	for _, j := range []*Job{
		mkJob("n1", PriorityNormal),
		mkJob("l1", PriorityLow),
		mkJob("h1", PriorityHigh),
		mkJob("n2", PriorityNormal),
		mkJob("h2", PriorityHigh),
	} {
		if err := q.Push(j); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"h1", "h2", "n1", "n2", "l1"}
	for _, id := range want {
		j, ok := q.Pop()
		if !ok || j.ID != id {
			t.Fatalf("popped %v, want %s", j, id)
		}
	}
}

func TestQueueBackpressure(t *testing.T) {
	q := NewQueue(2, 0, 0)
	if err := q.Push(mkJob("a", PriorityNormal)); err != nil {
		t.Fatal(err)
	}
	if err := q.Push(mkJob("b", PriorityHigh)); err != nil {
		t.Fatal(err)
	}
	if err := q.Push(mkJob("c", PriorityHigh)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	q.Pop()
	if err := q.Push(mkJob("c", PriorityHigh)); err != nil {
		t.Fatalf("push after pop: %v", err)
	}
}

// The cost budget sheds expensive jobs while cheap ones keep flowing, and
// never wedges: an over-budget job is still admitted into an empty queue.
func TestQueueCostBudget(t *testing.T) {
	q := NewQueue(10, 1.0, 0)
	if err := q.Push(mkCostJob("big", PriorityNormal, 0.8)); err != nil {
		t.Fatalf("first big job refused: %v", err)
	}
	if err := q.Push(mkCostJob("big2", PriorityNormal, 0.8)); !errors.Is(err, ErrCostBudget) {
		t.Fatalf("second big job: err = %v, want ErrCostBudget", err)
	}
	if err := q.Push(mkCostJob("cheap", PriorityNormal, 0.1)); err != nil {
		t.Fatalf("cheap job refused while budget had room: %v", err)
	}
	if got := q.CostSec(); got < 0.85 || got > 0.95 {
		t.Fatalf("CostSec = %g, want 0.9", got)
	}
	q.Pop()
	q.Pop()
	if q.CostSec() != 0 {
		t.Fatalf("drained queue still charges %g", q.CostSec())
	}
	// A job costing more than the whole budget enters an empty queue.
	if err := q.Push(mkCostJob("monster", PriorityNormal, 5)); err != nil {
		t.Fatalf("over-budget job refused by empty queue: %v", err)
	}
	// ... but holds the budget against everything else until popped.
	if err := q.Push(mkCostJob("later", PriorityNormal, 0.01)); !errors.Is(err, ErrCostBudget) {
		t.Fatalf("err = %v, want ErrCostBudget behind a monster", err)
	}
}

// Aging bounds starvation: a low-priority job that has waited past the
// aging interval outranks a freshly-pushed high-priority job.
func TestQueueAgingPreventsStarvation(t *testing.T) {
	q := NewQueue(10, 0, 10*time.Millisecond)
	if err := q.Push(mkJob("old-low", PriorityLow)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond) // ages past High and caps there
	if err := q.Push(mkJob("fresh-high", PriorityHigh)); err != nil {
		t.Fatal(err)
	}
	j, ok := q.Pop()
	if !ok || j.ID != "old-low" {
		t.Fatalf("popped %v, want the aged low-priority job", j)
	}
	j, ok = q.Pop()
	if !ok || j.ID != "fresh-high" {
		t.Fatalf("popped %v, want fresh-high", j)
	}
}

// Without aging the same scenario starves: priority strictly dominates.
func TestQueueNoAgingKeepsStrictPriority(t *testing.T) {
	q := NewQueue(10, 0, 0)
	q.Push(mkJob("old-low", PriorityLow))
	time.Sleep(20 * time.Millisecond)
	q.Push(mkJob("fresh-high", PriorityHigh))
	if j, _ := q.Pop(); j.ID != "fresh-high" {
		t.Fatalf("popped %s, want fresh-high (aging disabled)", j.ID)
	}
}

func TestQueueRemove(t *testing.T) {
	q := NewQueue(4, 0, 0)
	q.Push(mkCostJob("a", PriorityNormal, 0.5))
	q.Push(mkCostJob("b", PriorityNormal, 0.5))
	if !q.Remove("a") {
		t.Fatal("remove a failed")
	}
	if q.Remove("a") {
		t.Fatal("double remove succeeded")
	}
	if got := q.CostSec(); got != 0.5 {
		t.Fatalf("CostSec after remove = %g, want 0.5", got)
	}
	j, ok := q.Pop()
	if !ok || j.ID != "b" {
		t.Fatalf("popped %v, want b", j)
	}
	if q.Len() != 0 {
		t.Fatalf("len = %d", q.Len())
	}
	if q.CostSec() != 0 {
		t.Fatalf("CostSec = %g after draining", q.CostSec())
	}
}

func TestQueueCloseDrains(t *testing.T) {
	q := NewQueue(4, 0, 0)
	q.Push(mkJob("a", PriorityNormal))
	q.Close()
	if err := q.Push(mkJob("b", PriorityNormal)); !errors.Is(err, ErrClosed) {
		t.Fatalf("push after close: %v", err)
	}
	if j, ok := q.Pop(); !ok || j.ID != "a" {
		t.Fatal("queued job not drained after close")
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop on drained closed queue reported ok")
	}
}

func TestQueuePopBlocksUntilPush(t *testing.T) {
	q := NewQueue(1, 0, 0)
	got := make(chan *Job, 1)
	go func() {
		j, _ := q.Pop()
		got <- j
	}()
	time.Sleep(10 * time.Millisecond)
	q.Push(mkJob("x", PriorityLow))
	select {
	case j := <-got:
		if j.ID != "x" {
			t.Fatalf("popped %s", j.ID)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pop did not wake")
	}
}
