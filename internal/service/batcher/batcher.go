// Package batcher coalesces the filtering stage of co-resident jobs that
// share a (geometry, window) filter plan into single shared row sweeps.
//
// Motivation. Each rank's filter thread processes one projection per
// AllGather round (internal/core). When W workers run W jobs of the same
// geometry concurrently, the service executes W independent ApplyInto calls
// per round — each a full pass over the shared cosine table and ramp
// spectrum, each scheduled separately on the engine worker pool. Coalescing
// them into one filter.Sweep turns N co-scheduled projections into a single
// flat row-index space: one scheduling round, one streaming pass over the
// plan tables, and the per-call fixed costs amortized N ways.
//
// Mechanism. Ranks Join a Pool keyed by the filter plan; each Join returns a
// Member whose Filter parks the projection with the plan's group. The
// group's dispatcher flushes a round either when every seated member has a
// projection pending (all co-resident ranks have arrived) or when the
// coalescing window expires — whichever is first — then runs one
// filter.Sweep over the collected images and wakes every submitter with the
// round's batch size. A submitter whose context is cancelled before its
// projection was taken withdraws it immediately; one already taken rides out
// the in-flight sweep (the sweep owns the image) and then reports the
// context error, so teardown never races the shared pass.
//
// Fairness and billing are untouched: each job's filter-thread clock wraps
// only its own Filter call, and the per-round trace records the observed
// batch size (the filter.round span's batch_size attribute), so coalesced
// rounds remain attributable per job.
//
// Steady state performs at most one small allocation per job per round (the
// pending-slot bookkeeping); the request, its completion channel and the
// dispatcher's scratch are all reused.
package batcher

import (
	"context"
	"sync"
	"time"

	"ifdk/internal/ct/filter"
	"ifdk/internal/ct/geometry"
	"ifdk/internal/volume"
)

// Options configures a Pool.
type Options struct {
	// Window bounds how long a round waits for stragglers once the first
	// projection arrives. 0 flushes as soon as the dispatcher wakes, which
	// still coalesces simultaneous arrivals but never delays a lone one.
	Window time.Duration

	// Workers is the goroutine count handed to each shared sweep
	// (0 = GOMAXPROCS).
	Workers int

	// OnSweep, when non-nil, observes every flushed round's batch size —
	// the service hooks its sweep/batch-size metrics here. Called on the
	// dispatcher goroutine, after the sweep completes.
	OnSweep func(batch int)
}

// planKey identifies a shared filter plan; identical keys hit the same
// memoized filter.Cached entry. class partitions otherwise-identical plans
// into separate groups: the preview tier rides under its own class so a
// coarse preview round is never coalesced into — and never delays or is
// delayed by — a full-resolution sweep whose geometry happens to coincide.
type planKey struct {
	g     geometry.Params
	win   filter.Window
	class string
}

// Pool groups members by filter plan. The zero value is not usable; call
// New.
type Pool struct {
	opt    Options
	mu     sync.Mutex
	groups map[planKey]*group
}

// New builds an empty pool.
func New(opt Options) *Pool {
	return &Pool{opt: opt, groups: make(map[planKey]*group)}
}

// Join seats a rank in the plan's group, creating the group (and its
// dispatcher) on first use. The returned Member is owned by one goroutine:
// Filter calls must be sequential, and Close releases the seat.
func (p *Pool) Join(g geometry.Params, win filter.Window) (*Member, error) {
	return p.JoinClass(g, win, "")
}

// JoinClass is Join within a named coalescing class: members of different
// classes never share a round even when their filter plans are identical.
// The empty class is the full-resolution default; the service seats preview
// sweeps under their own class.
func (p *Pool) JoinClass(g geometry.Params, win filter.Window, class string) (*Member, error) {
	key := planKey{g: g, win: win, class: class}
	p.mu.Lock()
	grp, ok := p.groups[key]
	if ok {
		grp.mu.Lock()
		grp.members++
		grp.mu.Unlock()
		p.mu.Unlock()
	} else {
		p.mu.Unlock()
		flt, err := filter.Cached(g, win) // heavy: build outside the lock
		if err != nil {
			return nil, err
		}
		p.mu.Lock()
		if grp, ok = p.groups[key]; ok {
			grp.mu.Lock()
			grp.members++
			grp.mu.Unlock()
		} else {
			grp = &group{
				pool: p, key: key, flt: flt,
				wake: make(chan struct{}, 1),
				stop: make(chan struct{}),
				done: make(chan struct{}),
			}
			grp.members = 1
			p.groups[key] = grp
			go grp.dispatch()
		}
		p.mu.Unlock()
	}
	m := &Member{grp: grp}
	m.req.done = make(chan result, 1)
	return m, nil
}

// leave drops one seat; the last leaver retires the group and waits for its
// dispatcher to drain (members never Close with a Filter in flight, so the
// final flush finds nothing pending from this member).
func (p *Pool) leave(g *group) {
	p.mu.Lock()
	g.mu.Lock()
	g.members--
	last := g.members == 0
	full := len(g.pending) > 0 && len(g.pending) >= g.members
	g.mu.Unlock()
	if last {
		delete(p.groups, g.key)
	}
	p.mu.Unlock()
	if last {
		close(g.stop)
		<-g.done
		return
	}
	if full {
		g.signal() // the departed seat may have been the straggler a round was waiting on
	}
}

// result is what a flushed round reports to each submitter.
type result struct {
	batch int
	err   error
}

// request is one parked projection. Each Member owns exactly one, reused
// across rounds; done is buffered so the dispatcher never blocks on a
// submitter.
type request struct {
	img   *volume.Image
	taken bool // guarded by group.mu: set when a flush claims the request
	done  chan result
}

// Member is one rank's seat in a shared-sweep group. It implements
// core.RowFilter.
type Member struct {
	grp *group
	req request
}

// Filter parks img with the group and blocks until the round that includes
// it completes, returning the round's batch size. On ctx cancellation an
// unclaimed projection is withdrawn immediately; a claimed one waits out the
// in-flight sweep before reporting ctx's error (the sweep owns the image
// until then).
func (m *Member) Filter(ctx context.Context, img *volume.Image) (int, error) {
	g := m.grp
	r := &m.req
	r.img = img
	g.mu.Lock()
	r.taken = false
	g.pending = append(g.pending, r)
	first := len(g.pending) == 1
	full := len(g.pending) >= g.members
	g.mu.Unlock()
	if first || full {
		g.signal()
	}
	select {
	case res := <-r.done:
		return res.batch, res.err
	case <-ctx.Done():
	}
	g.mu.Lock()
	if !r.taken {
		for i, q := range g.pending {
			if q == r {
				g.pending = append(g.pending[:i], g.pending[i+1:]...)
				break
			}
		}
		g.mu.Unlock()
		r.img = nil
		return 0, ctx.Err()
	}
	g.mu.Unlock()
	<-r.done // in flight: ride out the sweep
	return 0, ctx.Err()
}

// Close releases the member's seat. It must not be called while a Filter is
// in flight.
func (m *Member) Close() { m.grp.pool.leave(m.grp) }

// group is the per-plan coalescing state plus its dispatcher goroutine.
type group struct {
	pool *Pool
	key  planKey
	flt  *filter.Filterer

	mu      sync.Mutex
	members int
	pending []*request

	wake chan struct{} // cap 1: "pending changed, look again"
	stop chan struct{} // closed by the last leaver
	done chan struct{} // closed when the dispatcher has drained

	// Dispatcher-only scratch, reused across rounds.
	take []*request
	imgs []*volume.Image
}

// signal nudges the dispatcher without blocking (cap-1 channel: a pending
// nudge already covers this one).
func (g *group) signal() {
	select {
	case g.wake <- struct{}{}:
	default:
	}
}

// dispatch runs rounds until the group retires: wait for a first arrival,
// collect stragglers up to the window (cut short the moment every seat is
// filled), flush one shared sweep, repeat. On stop it flushes whatever is
// still parked so no submitter blocks forever.
func (g *group) dispatch() {
	defer close(g.done)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	for {
		select {
		case <-g.stop:
			g.flush()
			return
		case <-g.wake:
		}
		if g.pool.opt.Window > 0 && !g.roundFull() {
			timer.Reset(g.pool.opt.Window)
		collect:
			for !g.roundFull() {
				select {
				case <-g.wake:
				case <-timer.C:
					break collect
				case <-g.stop:
					break collect
				}
			}
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
		}
		g.flush()
	}
}

// roundFull reports whether every seated member has a projection parked.
func (g *group) roundFull() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.pending) > 0 && len(g.pending) >= g.members
}

// flush claims everything pending, runs the shared sweep in place, and
// reports the round to every submitter.
func (g *group) flush() {
	g.mu.Lock()
	take := append(g.take[:0], g.pending...)
	for _, r := range take {
		r.taken = true
	}
	g.pending = g.pending[:0]
	g.mu.Unlock()
	g.take = take
	if len(take) == 0 {
		return
	}
	imgs := g.imgs[:0]
	for _, r := range take {
		imgs = append(imgs, r.img)
	}
	g.imgs = imgs
	err := g.flt.Sweep(imgs, imgs, g.pool.opt.Workers)
	if f := g.pool.opt.OnSweep; f != nil {
		f(len(take))
	}
	for _, r := range take {
		r.img = nil
		r.done <- result{batch: len(take), err: err}
	}
}
