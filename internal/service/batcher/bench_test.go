package batcher_test

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"ifdk/internal/bench"
	"ifdk/internal/ct/filter"
	"ifdk/internal/ct/geometry"
	"ifdk/internal/service/batcher"
	"ifdk/internal/volume"
)

// BenchmarkBatchedFilter measures aggregate filtering throughput for J
// co-resident jobs, independent (each job its own ApplyInto, the pre-batcher
// behaviour) versus batched (one shared sweep per round). One iteration is
// one round: every job filters one projection. Results are appended to
// $IFDK_BENCH_OUT via bench.Record; CI gates the 4-job aggregate.
func BenchmarkBatchedFilter(b *testing.B) {
	g := geometry.Default(256, 128, 90, 64, 64, 64)
	rng := rand.New(rand.NewSource(7))
	for _, jobs := range []int{1, 2, 4, 8} {
		imgs := make([]*volume.Image, jobs)
		for i := range imgs {
			imgs[i] = volume.NewImage(g.Nu, g.Nv)
			for k := range imgs[i].Data {
				imgs[i].Data[k] = float32(rng.NormFloat64())
			}
		}
		bytesPerRound := int64(jobs) * 4 * int64(g.Nu) * int64(g.Nv)

		b.Run(fmt.Sprintf("independent/jobs=%d", jobs), func(b *testing.B) {
			flt, err := filter.Cached(g, filter.Hann)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(bytesPerRound)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for j := 0; j < jobs; j++ {
					wg.Add(1)
					go func(img *volume.Image) {
						defer wg.Done()
						if err := flt.ApplyInto(img, img); err != nil {
							b.Error(err)
						}
					}(imgs[j])
				}
				wg.Wait()
			}
			record(b, bytesPerRound)
		})

		b.Run(fmt.Sprintf("batched/jobs=%d", jobs), func(b *testing.B) {
			p := batcher.New(batcher.Options{Window: time.Millisecond})
			members := make([]*batcher.Member, jobs)
			for j := range members {
				var err error
				if members[j], err = p.Join(g, filter.Hann); err != nil {
					b.Fatal(err)
				}
			}
			defer func() {
				for _, m := range members {
					m.Close()
				}
			}()
			b.SetBytes(bytesPerRound)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for j := 0; j < jobs; j++ {
					wg.Add(1)
					go func(m *batcher.Member, img *volume.Image) {
						defer wg.Done()
						if _, err := m.Filter(context.Background(), img); err != nil {
							b.Error(err)
						}
					}(members[j], imgs[j])
				}
				wg.Wait()
			}
			record(b, bytesPerRound)
		})
	}
}

func record(b *testing.B, bytesPerOp int64) {
	nsPerOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	bench.Record(b.Name(), map[string]float64{
		"ns_per_op": nsPerOp,
		"mb_per_s":  float64(bytesPerOp) / nsPerOp * 1e9 / 1e6,
	})
}
