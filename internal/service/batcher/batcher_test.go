package batcher

import (
	"context"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sync"
	"testing"
	"time"

	"ifdk/internal/ct/filter"
	"ifdk/internal/ct/geometry"
	"ifdk/internal/race"
	"ifdk/internal/volume"
)

func testGeom() geometry.Params {
	return geometry.Default(64, 32, 90, 32, 32, 32)
}

func randProj(rng *rand.Rand, g geometry.Params) *volume.Image {
	img := volume.NewImage(g.Nu, g.Nv)
	for i := range img.Data {
		img.Data[i] = float32(rng.NormFloat64())
	}
	return img
}

// A batched sweep must produce exactly what the direct per-rank path
// produces, and a round with every seat filled must report the full batch.
func TestBatchedMatchesDirect(t *testing.T) {
	g := testGeom()
	const members = 4
	p := New(Options{Window: time.Second}) // generous: flush on full rounds only
	flt, err := filter.Cached(g, filter.Hann)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	ins := make([]*volume.Image, members)
	want := make([]*volume.Image, members)
	for i := range ins {
		ins[i] = randProj(rng, g)
		var err error
		if want[i], err = flt.Apply(ins[i]); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	batches := make([]int, members)
	errs := make([]error, members)
	for i := 0; i < members; i++ {
		m, err := p.Join(g, filter.Hann)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, m *Member) {
			defer wg.Done()
			defer m.Close()
			batches[i], errs[i] = m.Filter(context.Background(), ins[i])
		}(i, m)
	}
	wg.Wait()
	for i := 0; i < members; i++ {
		if errs[i] != nil {
			t.Fatalf("member %d: %v", i, errs[i])
		}
		if batches[i] != members {
			t.Errorf("member %d: batch %d, want %d (full round)", i, batches[i], members)
		}
		for k, v := range want[i].Data {
			if ins[i].Data[k] != v {
				t.Fatalf("member %d: filtered pixel %d = %v, want %v", i, k, ins[i].Data[k], v)
			}
		}
	}
}

// A lone member must not wait for a full round beyond the window, and a
// zero window must flush immediately.
func TestLoneMemberFlushes(t *testing.T) {
	g := testGeom()
	for _, window := range []time.Duration{0, 2 * time.Millisecond} {
		p := New(Options{Window: window})
		m, err := p.Join(g, filter.RamLak)
		if err != nil {
			t.Fatal(err)
		}
		// A second seat that never submits: the round can only flush on the
		// window (or instantly at window 0), not on fullness.
		idle, err := p.Join(g, filter.RamLak)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(2))
		img := randProj(rng, g)
		start := time.Now()
		batch, err := m.Filter(context.Background(), img)
		if err != nil {
			t.Fatal(err)
		}
		if batch != 1 {
			t.Errorf("window %v: lone batch %d, want 1", window, batch)
		}
		if d := time.Since(start); d > 5*time.Second {
			t.Errorf("window %v: lone flush took %v", window, d)
		}
		idle.Close()
		m.Close()
	}
}

// Cancelling a parked projection withdraws it without disturbing the
// members still filtering; the group must keep working afterwards.
func TestCancelWithdrawsParked(t *testing.T) {
	g := testGeom()
	p := New(Options{Window: time.Hour}) // rounds flush only when full
	a, err := p.Join(g, filter.RamLak)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Join(g, filter.RamLak)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	ctx, cancel := context.WithCancel(context.Background())
	parked := randProj(rng, g)
	orig := append([]float32(nil), parked.Data...)
	done := make(chan error, 1)
	go func() {
		_, err := a.Filter(ctx, parked)
		done <- err
	}()
	time.Sleep(time.Millisecond) // let the projection park
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("cancelled Filter returned %v", err)
	}
	for i, v := range parked.Data {
		if v != orig[i] {
			t.Fatalf("withdrawn projection was mutated at %d", i)
		}
	}
	// The survivor's next full round is b alone (a withdrew, but its seat is
	// still held — the round stays short of full until a's seat closes).
	a.Close()
	img := randProj(rng, g)
	batch, err := b.Filter(context.Background(), img)
	if err != nil || batch != 1 {
		t.Fatalf("survivor round: batch %d err %v", batch, err)
	}
	b.Close()
}

// Hammer join/leave/filter/cancel from many goroutines; run under -race this
// is the memory-safety and teardown test. Every member must terminate.
func TestConcurrentChurn(t *testing.T) {
	g := testGeom()
	p := New(Options{Window: 200 * time.Microsecond})
	const goroutines = 8
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for it := 0; it < 20; it++ {
				win := filter.Window(it % 2) // two plans churn independently
				m, err := p.Join(g, win)
				if err != nil {
					t.Error(err)
					return
				}
				img := randProj(rng, g)
				ctx := context.Background()
				var cancel context.CancelFunc
				if it%3 == 0 { // some submitters cancel mid-round
					ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Intn(300))*time.Microsecond)
				}
				_, err = m.Filter(ctx, img)
				if cancel != nil {
					cancel()
				}
				if err != nil && err != context.DeadlineExceeded && err != context.Canceled {
					t.Errorf("filter: %v", err)
				}
				m.Close()
			}
		}(int64(i))
	}
	wg.Wait()
}

// The batched path must stay within one heap allocation per job per round in
// steady state: the request, its completion channel and the dispatcher
// scratch are all reused.
func TestBatchedAllocRegression(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation accounting is skewed by race instrumentation")
	}
	g := testGeom()
	const members = 4
	const rounds = 50
	p := New(Options{Window: time.Second})
	ms := make([]*Member, members)
	for i := range ms {
		var err error
		if ms[i], err = p.Join(g, filter.SheppLogan); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(4))
	imgs := make([]*volume.Image, members)
	for i := range imgs {
		imgs[i] = randProj(rng, g)
	}
	runRounds := func(k int) {
		var wg sync.WaitGroup
		for i := 0; i < members; i++ {
			wg.Add(1)
			go func(m *Member, img *volume.Image) {
				defer wg.Done()
				for r := 0; r < k; r++ {
					if _, err := m.Filter(context.Background(), img); err != nil {
						t.Error(err)
						return
					}
				}
			}(ms[i], imgs[i])
		}
		wg.Wait()
	}
	runRounds(4) // warm the scratch and pools
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	runRounds(rounds)
	runtime.ReadMemStats(&after)
	perJobRound := float64(after.Mallocs-before.Mallocs) / (members * rounds)
	t.Logf("batched filtering: %.2f allocs/job/round", perJobRound)
	if perJobRound > 1 {
		t.Fatalf("batched filtering allocates %.2f objects/job/round, want <= 1", perJobRound)
	}
	for _, m := range ms {
		m.Close()
	}
}

// Members of different coalescing classes must never share a round, even on
// an identical geometry and window: a preview's decimated sweep riding a
// full-resolution round (or vice versa) would couple the interactive tier's
// latency to batch traffic. Each class fills and flushes on its own.
func TestJoinClassPartitionsRounds(t *testing.T) {
	g := testGeom()
	const perClass = 2
	p := New(Options{Window: time.Second}) // flush on full rounds only
	flt, err := filter.Cached(g, filter.Hann)
	if err != nil {
		t.Fatal(err)
	}
	classes := []string{"", "preview/2"}
	rng := rand.New(rand.NewSource(7))
	type seat struct {
		in, want *volume.Image
		batch    int
		err      error
	}
	seats := make([]seat, len(classes)*perClass)
	var wg sync.WaitGroup
	for ci, class := range classes {
		for k := 0; k < perClass; k++ {
			i := ci*perClass + k
			seats[i].in = randProj(rng, g)
			if seats[i].want, err = flt.Apply(seats[i].in); err != nil {
				t.Fatal(err)
			}
			m, err := p.JoinClass(g, filter.Hann, class)
			if err != nil {
				t.Fatal(err)
			}
			wg.Add(1)
			go func(s *seat, m *Member) {
				defer wg.Done()
				defer m.Close()
				s.batch, s.err = m.Filter(context.Background(), s.in)
			}(&seats[i], m)
		}
	}
	wg.Wait()
	for i := range seats {
		if seats[i].err != nil {
			t.Fatalf("seat %d: %v", i, seats[i].err)
		}
		// A full round within the class, never a cross-class merge.
		if seats[i].batch != perClass {
			t.Errorf("seat %d: batch %d, want %d (own class only)", i, seats[i].batch, perClass)
		}
		for k, v := range seats[i].want.Data {
			if seats[i].in.Data[k] != v {
				t.Fatalf("seat %d: filtered pixel %d = %v, want %v", i, k, seats[i].in.Data[k], v)
			}
		}
	}
}
