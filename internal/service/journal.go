package service

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"ifdk/internal/core"
	"ifdk/pkg/api"
)

// The write-ahead job journal makes accepted jobs durable across daemon
// restarts. Every lifecycle transition is appended as one JSON line to a
// file on the real filesystem (the simulated PFS dies with the process) and
// fsynced before the client is acked, so a kill -9 at any instant loses at
// most work, never accepted state. On boot the journal is replayed:
// terminal jobs come back as metadata-only views under their original
// public IDs, and non-terminal jobs — queued or mid-run at the crash —
// re-enter admission under their original IDs, because reconstruction is
// deterministic given the Spec and re-execution reproduces the exact
// volume.
//
// Record types. A job's life is at most four lines:
//
//	{"t":"submit","id":"b0-j00000007","spec":{...},"trace_id":...}
//	{"t":"start","id":"b0-j00000007","started":...}
//	{"t":"terminal","id":"b0-j00000007","state":"done","stages":{...}}
//	{"t":"delete","id":"b0-j00000007"}
//
// Appends from the submit path and the worker pool are not ordered with
// respect to each other (a worker can pop and even finish a job before
// Submit's own append lands), so replay merges records per ID
// order-tolerantly: a terminal record wins over a start record wins over a
// submit record, whatever order they appear in. The journal is compacted on
// boot — live state is rewritten as a minimal record set — so the file is
// bounded by the retained job table, not daemon lifetime.
const (
	recSubmit   = "submit"
	recStart    = "start"
	recTerminal = "terminal"
	recDelete   = "delete"
	// recSeq pins the ID sequence high-water mark across compactions, so a
	// deleted job's records vanishing can never let a restarted daemon
	// reissue its public ID.
	recSeq = "seq"
)

// journalRecord is one appended line. Fields are a union over the record
// types; unused ones are omitted.
type journalRecord struct {
	T  string `json:"t"`
	ID string `json:"id"`

	// seq (recSeq records only)
	Seq int64 `json:"seq,omitempty"`

	// submit
	Spec       *api.Spec `json:"spec,omitempty"`
	TraceID    string    `json:"trace_id,omitempty"`
	ParentSpan string    `json:"parent_span,omitempty"`
	Submitted  string    `json:"submitted,omitempty"`

	// start
	Started string `json:"started,omitempty"`

	// terminal
	State    string      `json:"state,omitempty"`
	Error    string      `json:"error,omitempty"`
	Finished string      `json:"finished,omitempty"`
	CacheHit bool        `json:"cache_hit,omitempty"`
	Verified bool        `json:"verified,omitempty"`
	RelRMSE  float64     `json:"rel_rmse,omitempty"`
	Stages   *api.Stages `json:"stages,omitempty"`
}

// errJournalClosed is reported by append after Close/Crash; callers treat
// it as "the process is gone", not as an I/O failure.
var errJournalClosed = errors.New("service: journal closed")

// journal is the append-only WAL. One file, one writer lock; every append
// is flushed and fsynced before it returns, so an acked transition is on
// disk even across power loss — the whole point of the WAL.
type journal struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	closed bool
}

// journalFile is the WAL's name under Options.JournalDir.
const journalFile = "jobs.wal"

// openJournal replays the journal under dir (if any), compacts it, and
// opens it for appending. The returned records are the merged per-job
// recovery set in first-seen order; maxSeq is the ID sequence high-water
// mark the recovering manager must resume past.
func openJournal(dir string) (*journal, []recoveredJob, int64, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, 0, fmt.Errorf("service: journal dir: %w", err)
	}
	path := filepath.Join(dir, journalFile)
	recs, err := readJournal(path)
	if err != nil {
		return nil, nil, 0, err
	}
	jobs, maxSeq := mergeRecords(recs)
	if err := compactJournal(dir, path, jobs, maxSeq); err != nil {
		return nil, nil, 0, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("service: journal open: %w", err)
	}
	return &journal{f: f, path: path}, jobs, maxSeq, nil
}

// readJournal decodes every record in the file. A torn final line — the
// signature of a crash mid-append — is skipped; a torn or corrupt line
// anywhere else is skipped too (one bad record must not brick recovery of
// every other job).
func readJournal(path string) ([]journalRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("service: journal read: %w", err)
	}
	defer f.Close()
	var out []journalRecord
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil || rec.ID == "" {
			continue // torn append or corruption: skip, recover the rest
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("service: journal scan: %w", err)
	}
	return out, nil
}

// recoveredJob is one job's merged journal state, ready for readmission.
type recoveredJob struct {
	ID         string
	Spec       api.Spec
	TraceID    string
	ParentSpan string
	Submitted  time.Time
	Started    time.Time
	Finished   time.Time
	State      api.State
	Error      string
	CacheHit   bool
	Verified   bool
	RelRMSE    float64
	Stages     api.Stages

	hasSubmit bool
	deleted   bool
}

// mergeRecords folds the raw record stream into per-job recovery state,
// order-tolerantly (see the package comment on append interleaving).
// Deleted jobs and jobs with no surviving submit record are dropped, but
// their IDs still raise the returned sequence high-water mark.
func mergeRecords(recs []journalRecord) ([]recoveredJob, int64) {
	byID := make(map[string]*recoveredJob)
	var order []string
	var maxSeq int64
	get := func(id string) *recoveredJob {
		r, ok := byID[id]
		if !ok {
			r = &recoveredJob{ID: id, State: api.StateQueued}
			byID[id] = r
			order = append(order, id)
		}
		return r
	}
	for _, rec := range recs {
		if rec.T == recSeq {
			maxSeq = max(maxSeq, rec.Seq)
			continue
		}
		maxSeq = max(maxSeq, idSeq(rec.ID))
		r := get(rec.ID)
		switch rec.T {
		case recSubmit:
			if rec.Spec != nil {
				r.Spec = *rec.Spec
				r.hasSubmit = true
			}
			r.TraceID, r.ParentSpan = rec.TraceID, rec.ParentSpan
			r.Submitted = parseJTime(rec.Submitted)
		case recStart:
			r.Started = parseJTime(rec.Started)
		case recTerminal:
			r.State = api.State(rec.State)
			r.Error = rec.Error
			r.Finished = parseJTime(rec.Finished)
			r.CacheHit, r.Verified, r.RelRMSE = rec.CacheHit, rec.Verified, rec.RelRMSE
			if rec.Stages != nil {
				r.Stages = *rec.Stages
			}
		case recDelete:
			r.deleted = true
		}
	}
	out := make([]recoveredJob, 0, len(order))
	for _, id := range order {
		r := byID[id]
		if r.deleted || !r.hasSubmit {
			continue
		}
		if !r.State.Terminal() {
			r.State = api.StateQueued // queued or mid-run at the crash: re-enter admission
		}
		out = append(out, *r)
	}
	return out, maxSeq
}

// compactJournal rewrites the live recovery set as a minimal record
// sequence via a temp file + rename, then fsyncs the directory so the
// swap itself is durable.
func compactJournal(dir, path string, jobs []recoveredJob, maxSeq int64) error {
	tmp, err := os.CreateTemp(dir, journalFile+".compact-*")
	if err != nil {
		return fmt.Errorf("service: journal compact: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after the rename succeeds
	enc := json.NewEncoder(tmp)
	if maxSeq > 0 {
		if err := enc.Encode(journalRecord{T: recSeq, ID: "_", Seq: maxSeq}); err != nil {
			tmp.Close()
			return fmt.Errorf("service: journal compact: %w", err)
		}
	}
	for i := range jobs {
		for _, rec := range compactRecords(&jobs[i]) {
			if err := enc.Encode(rec); err != nil {
				tmp.Close()
				return fmt.Errorf("service: journal compact: %w", err)
			}
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("service: journal compact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("service: journal compact: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("service: journal compact: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// compactRecords is the minimal record set reproducing one job's merged
// state on the next replay.
func compactRecords(r *recoveredJob) []journalRecord {
	spec := r.Spec
	recs := []journalRecord{{
		T: recSubmit, ID: r.ID, Spec: &spec,
		TraceID: r.TraceID, ParentSpan: r.ParentSpan,
		Submitted: fmtTime(r.Submitted),
	}}
	if r.State.Terminal() {
		st := r.Stages
		recs = append(recs, journalRecord{
			T: recTerminal, ID: r.ID, State: string(r.State), Error: r.Error,
			Finished: fmtTime(r.Finished), CacheHit: r.CacheHit,
			Verified: r.Verified, RelRMSE: r.RelRMSE, Stages: &st,
		})
	}
	return recs
}

// append writes one record and fsyncs it before returning — the
// fsync-before-ack contract the submit path relies on (and journalcheck
// enforces).
//
//ifdk:journal
func (w *journal) append(rec journalRecord) error {
	blob, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("service: journal encode: %w", err)
	}
	blob = append(blob, '\n')
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return errJournalClosed
	}
	if _, err := w.f.Write(blob); err != nil {
		return fmt.Errorf("service: journal append: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("service: journal fsync: %w", err)
	}
	return nil
}

// close stops the journal; later appends report errJournalClosed. Used by
// Shutdown and by Crash, where closing first is the simulated kill point:
// nothing a still-unwinding worker does afterwards can reach the file.
func (w *journal) close() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return
	}
	w.closed = true
	_ = w.f.Close()
}

// submitRecord builds a job's submit journal record. ID, Spec, trace
// identity and the submitted timestamp are immutable once the job is
// visible, so no lock is needed.
func (j *Job) submitRecord() journalRecord {
	spec := j.Spec
	return journalRecord{
		T: recSubmit, ID: j.ID, Spec: &spec,
		TraceID: j.traceID, ParentSpan: j.parentSpan,
		Submitted: fmtTime(j.submitted),
	}
}

// startRecord builds a job's start journal record.
func (j *Job) startRecord() journalRecord {
	j.mu.Lock()
	defer j.mu.Unlock()
	return journalRecord{T: recStart, ID: j.ID, Started: fmtTime(j.started)}
}

// terminalRecord builds a job's terminal journal record from its settled
// state.
func (j *Job) terminalRecord() journalRecord {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := stagesOf(j.times)
	return journalRecord{
		T: recTerminal, ID: j.ID, State: string(j.state), Error: j.err,
		Finished: fmtTime(j.finished), CacheHit: j.cacheHit,
		Verified: j.verified, RelRMSE: j.relRMSE, Stages: &st,
	}
}

// parseJTime decodes fmtTime's RFC3339Nano output (zero time on "").
func parseJTime(s string) time.Time {
	if s == "" {
		return time.Time{}
	}
	t, err := time.Parse(time.RFC3339Nano, s)
	if err != nil {
		return time.Time{}
	}
	return t
}

// idSeq extracts the numeric sequence from a public job ID
// ("b2-j00000007" → 7), so a recovering manager resumes its ID sequence
// past every journaled job and never reissues a public ID.
func idSeq(id string) int64 {
	i := strings.LastIndex(id, "j")
	if i < 0 {
		return 0
	}
	n, err := strconv.ParseInt(id[i+1:], 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// stagesToTimes inverts stagesOf for replayed terminal views.
func stagesToTimes(s api.Stages) core.StageTimes {
	d := func(sec float64) time.Duration { return time.Duration(sec * float64(time.Second)) }
	return core.StageTimes{
		Load: d(s.Load), Filter: d(s.Filter), AllGather: d(s.AllGather),
		Backproject: d(s.Backproject), Compute: d(s.Compute),
		Reduce: d(s.Reduce), Store: d(s.Store), Total: d(s.Total),
	}
}
