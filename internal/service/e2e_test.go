package service

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"mime"
	"mime/multipart"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"ifdk/internal/compress"
	"ifdk/internal/ct/fdk"
	"ifdk/internal/ct/projector"
	"ifdk/internal/volume"
)

// openSSE attaches to a job's /events stream and decodes it into a channel,
// closed when the server ends the stream (terminal event) or ctx does.
func openSSE(t *testing.T, ctx context.Context, url string, lastEventID int64) <-chan Event {
	t.Helper()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatInt(lastEventID, 10))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("events: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events: Content-Type %q", ct)
	}
	ch := make(chan Event, 8192)
	go func() {
		defer close(ch)
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		var data string
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "data: "):
				data = strings.TrimPrefix(line, "data: ")
			case line == "" && data != "":
				var e Event
				if json.Unmarshal([]byte(data), &e) == nil {
					ch <- e
				}
				data = ""
			}
		}
	}()
	return ch
}

// slicePart is one decoded part of a /stream response.
type slicePart struct {
	z   int
	img *volume.Image
}

// openStream attaches to a job's /stream multipart response. Slice parts
// arrive on the first channel as they are flushed; the terminal JSON view
// arrives on the second. Both close when the response body ends.
func openStream(t *testing.T, ctx context.Context, url string) (<-chan slicePart, <-chan View) {
	t.Helper()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("stream: HTTP %d", resp.StatusCode)
	}
	mediaType, params, err := mime.ParseMediaType(resp.Header.Get("Content-Type"))
	if err != nil || mediaType != "multipart/mixed" || params["boundary"] == "" {
		resp.Body.Close()
		t.Fatalf("stream: Content-Type %q (%v)", resp.Header.Get("Content-Type"), err)
	}
	parts := make(chan slicePart, 1024)
	views := make(chan View, 1)
	go func() {
		defer close(parts)
		defer close(views)
		defer resp.Body.Close()
		mr := multipart.NewReader(resp.Body, params["boundary"])
		for {
			p, err := mr.NextPart()
			if err != nil {
				return // io.EOF on a clean close, anything else on teardown
			}
			if p.Header.Get("Content-Type") == "application/json" {
				var v View
				if json.NewDecoder(p).Decode(&v) == nil {
					views <- v
				}
				continue
			}
			z, err := strconv.Atoi(p.Header.Get("X-Slice-Z"))
			if err != nil {
				continue
			}
			blob, err := io.ReadAll(p)
			if err != nil {
				return
			}
			// Go's transport advertises Accept-Encoding: gzip on our
			// behalf, so the server is entitled to gzip each part; a
			// contract-compliant consumer decodes per-part Content-Encoding.
			if p.Header.Get("Content-Encoding") == "gzip" {
				if blob, err = compress.Gunzip(blob); err != nil {
					continue
				}
			}
			img, err := volume.ImageFromBytes(blob)
			if err != nil {
				continue
			}
			parts <- slicePart{z: z, img: img}
		}
	}()
	return parts, views
}

// sliceGate blocks the reconstruction epilogue inside the first slice
// callback until released, so tests can observe the service in the state
// "first slice durably published, job provably still running".
type sliceGate struct {
	release chan struct{}
	once    sync.Once
}

func newSliceGate() *sliceGate { return &sliceGate{release: make(chan struct{})} }

func (g *sliceGate) hook(string, int) { <-g.release }

func (g *sliceGate) open() { g.once.Do(func() { close(g.release) }) }

// The golden end-to-end path over real HTTP: a client consuming /events and
// /stream concurrently receives its first slice and progress events while
// the job is still running, and the streamed volume reassembles to exactly
// the job's result — which matches a direct serial fdk.Reconstruct of the
// same scan voxel-for-voxel within 1e-5.
func TestE2EStreamingGolden(t *testing.T) {
	gate := newSliceGate()
	defer gate.open()
	opt := Options{Workers: 2}
	opt.testOnSlice = gate.hook
	ts, m := startTestServer(t, opt)

	spec := Spec{Phantom: "shepplogan", NX: 16, R: 2, C: 2}
	resp, v := postJob(t, ts.URL, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	id := v.ID

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	events := openSSE(t, ctx, ts.URL+"/v1/jobs/"+id+"/events", 0)
	parts, views := openStream(t, ctx, ts.URL+"/v1/jobs/"+id+"/stream")

	// Phase 1 — the epilogue is parked inside the first slice callback:
	// the first slice event and the first streamed slice bytes must reach
	// this client while the job is verifiably still running.
	var received []Event
	firstSlice := -1
	for firstSlice < 0 {
		select {
		case e, ok := <-events:
			if !ok {
				t.Fatalf("events stream ended before the first slice (got %+v)", received)
			}
			received = append(received, e)
			if e.Type == EventSlice {
				firstSlice = len(received) - 1
			}
		case <-ctx.Done():
			t.Fatalf("timed out waiting for the first slice event (got %+v)", received)
		}
	}
	rounds := 0
	for _, e := range received[:firstSlice] {
		if e.Type == EventRound {
			rounds++
		}
	}
	if rounds < 1 {
		t.Errorf("no progress (round) events before the first slice: %+v", received)
	}
	var firstPart slicePart
	select {
	case firstPart = <-parts:
	case <-ctx.Done():
		t.Fatal("timed out waiting for the first streamed slice part")
	}
	if firstPart.img == nil || firstPart.img.W != 16 || firstPart.img.H != 16 {
		t.Fatalf("first streamed slice malformed: %+v", firstPart)
	}
	if code, view := getView(t, ts.URL, id); code != http.StatusOK || view.State != StateRunning {
		t.Fatalf("job state with first slice delivered = %s (HTTP %d), want running", view.State, code)
	}
	gate.open()

	// Phase 2 — drain both streams to their terminal markers.
	for e := range events {
		received = append(received, e)
	}
	last := received[len(received)-1]
	if last.Type != EventDone || last.State != StateDone {
		t.Fatalf("final event = %+v, want done", last)
	}
	got := volume.New(16, 16, 16, volume.IMajor)
	seen := map[int]int{firstPart.z: 1}
	if err := got.SetSliceZ(firstPart.z, firstPart.img); err != nil {
		t.Fatal(err)
	}
	for p := range parts {
		seen[p.z]++
		if err := got.SetSliceZ(p.z, p.img); err != nil {
			t.Fatal(err)
		}
	}
	for z := 0; z < 16; z++ {
		if seen[z] != 1 {
			t.Fatalf("slice %d streamed %d times, want exactly once", z, seen[z])
		}
	}
	final, ok := <-views
	if !ok || final.State != StateDone {
		t.Fatalf("terminal stream part = %+v (ok=%v), want done view", final, ok)
	}

	// The streamed volume is bit-identical to the job's own result…
	res, err := m.Volume(id)
	if err != nil {
		t.Fatal(err)
	}
	if d, err := volume.MaxAbsDiff(res, got); err != nil || d != 0 {
		t.Fatalf("streamed volume differs from the job result: maxAbsDiff=%g err=%v", d, err)
	}
	// …and matches a direct serial reconstruction of the same scan
	// voxel-for-voxel within 1e-5.
	ph, cfg, err := compileSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	proj := projector.AnalyticAll(ph, cfg.Geometry, 0)
	ref, err := fdk.Reconstruct(cfg.Geometry, proj, fdk.Config{Window: cfg.Window})
	if err != nil {
		t.Fatal(err)
	}
	if d, err := volume.MaxAbsDiff(ref, got); err != nil || d > 1e-5 {
		t.Fatalf("streamed volume vs direct fdk.Reconstruct: maxAbsDiff=%g err=%v, want <= 1e-5", d, err)
	}

	// SSE resumption: replaying with Last-Event-ID from mid-stream yields
	// only later events and still ends in the same terminal event.
	midSeq := received[firstSlice].Seq
	resumed := openSSE(t, ctx, ts.URL+"/v1/jobs/"+id+"/events", midSeq)
	var tail []Event
	for e := range resumed {
		if e.Seq <= midSeq {
			t.Fatalf("resumed stream replayed seq %d <= Last-Event-ID %d", e.Seq, midSeq)
		}
		tail = append(tail, e)
	}
	if len(tail) == 0 || tail[len(tail)-1].Type != EventDone {
		t.Fatalf("resumed stream tail = %+v, want to end done", tail)
	}
}

// A subscriber that attaches only after the job completed still gets the
// whole thing: the full slice set (served from the result volume) plus the
// terminal view, and a coalesced SSE replay ending in done.
func TestE2ELateSubscribeReplay(t *testing.T) {
	ts, m := startTestServer(t, Options{Workers: 1})
	_, v := postJob(t, ts.URL, Spec{Phantom: "sphere", NX: 16, R: 2, C: 2})
	waitState(t, m, v.ID, time.Minute)

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	parts, views := openStream(t, ctx, ts.URL+"/v1/jobs/"+v.ID+"/stream")
	count := 0
	for range parts {
		count++
	}
	if count != 16 {
		t.Fatalf("late subscribe streamed %d slices, want 16", count)
	}
	if final := <-views; final.State != StateDone {
		t.Fatalf("late subscribe terminal view = %+v, want done", final)
	}

	var replay []Event
	for e := range openSSE(t, ctx, ts.URL+"/v1/jobs/"+v.ID+"/events", 0) {
		replay = append(replay, e)
	}
	if n := len(replay); n == 0 || replay[n-1].Type != EventDone {
		t.Fatalf("late SSE replay = %+v, want a history ending done", replay)
	}
}
