package obs

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one timed operation inside a trace. IDs are opaque hex strings
// (W3C trace-context sized: 16-byte trace IDs, 8-byte span IDs); Parent
// links the span into the tree, and a parent ID that no retained span
// carries marks a root (e.g. a client-side span the fleet never saw).
type Span struct {
	SpanID string
	Parent string
	Name   string
	Start  time.Time
	End    time.Time // zero while the operation is still in flight
	Attrs  []Attr
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key, Value string
}

// Duration is the span's elapsed time, zero while still open.
func (s Span) Duration() time.Duration {
	if s.End.IsZero() {
		return 0
	}
	return s.End.Sub(s.Start)
}

// Trace is one request's assembled span set, bounded in size: spans beyond
// the cap are counted but not retained, so a pathological job (thousands
// of rounds) cannot balloon the daemon's memory.
type Trace struct {
	mu      sync.Mutex
	id      string
	spans   []Span
	cap     int
	dropped int64
	done    bool
}

// ID returns the trace ID.
func (t *Trace) ID() string { return t.id }

// Add appends spans to the trace, up to the retention cap; overflow is
// counted in Dropped. Adding to a finished trace is a no-op.
func (t *Trace) Add(spans ...Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return
	}
	for _, s := range spans {
		if len(t.spans) >= t.cap {
			t.dropped++
			continue
		}
		t.spans = append(t.spans, s)
	}
}

// Finish marks the trace complete; further Adds are ignored.
func (t *Trace) Finish() {
	t.mu.Lock()
	t.done = true
	t.mu.Unlock()
}

// Done reports whether the trace has been finished.
func (t *Trace) Done() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.done
}

// Dropped returns the number of spans lost to the retention cap.
func (t *Trace) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Snapshot returns a copy of the retained spans.
func (t *Trace) Snapshot() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Tracer retains finished traces keyed by an owner (a job ID) in a bounded
// in-memory ring: when the ring is full the oldest trace is evicted. It is
// the storage behind GET /v1/jobs/{id}/trace.
type Tracer struct {
	mu       sync.Mutex
	traces   map[string]*Trace
	order    []string
	capKeys  int
	capSpans int
	evicted  atomic.Int64
}

// NewTracer creates a tracer retaining up to capTraces traces of up to
// capSpans spans each (<= 0 pick defaults of 256 traces x 512 spans).
func NewTracer(capTraces, capSpans int) *Tracer {
	if capTraces <= 0 {
		capTraces = 256
	}
	if capSpans <= 0 {
		capSpans = 512
	}
	return &Tracer{traces: make(map[string]*Trace), capKeys: capTraces, capSpans: capSpans}
}

// Start creates (or returns) the trace for key with the given trace ID,
// evicting the oldest retained trace when the ring is full.
func (tr *Tracer) Start(key, traceID string) *Trace {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if t, ok := tr.traces[key]; ok {
		return t
	}
	t := &Trace{id: traceID, cap: tr.capSpans}
	tr.traces[key] = t
	tr.order = append(tr.order, key)
	for len(tr.order) > tr.capKeys {
		delete(tr.traces, tr.order[0])
		tr.order = tr.order[1:]
		tr.evicted.Add(1)
	}
	return t
}

// Get returns the retained trace for key.
func (tr *Tracer) Get(key string) (*Trace, bool) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	t, ok := tr.traces[key]
	return t, ok
}

// Drop discards the trace for key (the job was deleted or pruned).
func (tr *Tracer) Drop(key string) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if _, ok := tr.traces[key]; !ok {
		return
	}
	delete(tr.traces, key)
	for i, k := range tr.order {
		if k == key {
			tr.order = append(tr.order[:i], tr.order[i+1:]...)
			break
		}
	}
}

// Len returns the number of retained traces.
func (tr *Tracer) Len() int {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return len(tr.traces)
}

// Evicted returns how many traces the ring has evicted to stay bounded.
func (tr *Tracer) Evicted() int64 { return tr.evicted.Load() }

// DeriveSpanID returns a deterministic 8-byte hex span ID for a named
// operation inside a trace. Deterministic derivation keeps span IDs stable
// across repeated assemblies of the same trace (a mid-run GET and the
// final publication agree), without storing ID state per span.
func DeriveSpanID(traceID, name string) string {
	sum := sha256.Sum256([]byte(traceID + "\x00" + name))
	return hex.EncodeToString(sum[:8])
}

// seed mixes the process start time into derived randomness-free IDs.
var idSeq atomic.Uint64

func init() {
	idSeq.Store(uint64(time.Now().UnixNano()))
}

// NewTraceID returns a 16-byte hex trace ID. IDs only need to be unique,
// not unpredictable, so they are derived by hashing a process-local
// sequence seeded from the clock — no crypto/rand syscall on the job path.
func NewTraceID() string {
	var buf [16]byte
	binary.BigEndian.PutUint64(buf[:8], idSeq.Add(1))
	binary.BigEndian.PutUint64(buf[8:], uint64(time.Now().UnixNano()))
	sum := sha256.Sum256(buf[:])
	return hex.EncodeToString(sum[:16])
}

// NewSpanID returns an 8-byte hex span ID.
func NewSpanID() string {
	var buf [16]byte
	binary.BigEndian.PutUint64(buf[:8], idSeq.Add(1))
	binary.BigEndian.PutUint64(buf[8:], uint64(time.Now().UnixNano())^0x9e3779b97f4a7c15)
	sum := sha256.Sum256(buf[:])
	return hex.EncodeToString(sum[:8])
}
