// Package obs is the zero-dependency observability substrate of the iFDK
// fleet: a counter/gauge/histogram metrics registry with Prometheus text
// exposition, lightweight spans with bounded in-memory retention, and
// structured-logging helpers. Every plane of the system — the compute
// pipeline (via pre-sized per-rank buffers in internal/core), the service
// layer, the front router and the daemons — reports through this package,
// so the paper's stage-level performance decomposition (Sec. 4.2) is
// observable per job, per rank and per backend in production, not just in
// offline benchmarks.
//
// The package deliberately implements only the slice of the Prometheus
// exposition format the fleet needs (counters, gauges, cumulative
// histograms, HELP/TYPE metadata, label escaping) rather than depending on
// a client library: the container bakes in nothing beyond the standard
// library, and the format is small and stable.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Metric type strings for the exposition TYPE line.
const (
	TypeCounter   = "counter"
	TypeGauge     = "gauge"
	TypeHistogram = "histogram"
)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the exposition to stay meaningful).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable float metric.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DefBuckets are the default latency buckets (seconds): they span the
// sub-millisecond filter rounds of a small preview up to multi-minute
// full-resolution reconstructions.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300,
}

// Histogram is a fixed-bucket cumulative histogram safe for concurrent
// observation: bucket counts are per-bucket atomics and the sum is a
// CAS-updated float, so Observe never takes a lock on the hot path.
type Histogram struct {
	bounds  []float64 // upper bounds, ascending; +Inf bucket is implicit
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

func newHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	bounds := append([]float64(nil), buckets...)
	sort.Float64s(bounds)
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Snapshot returns the cumulative per-bucket counts (one per bound, plus
// the +Inf bucket last), the total count and the sum. The three are read
// without a lock, so under concurrent observation they may straddle an
// observation; each individually is exact.
func (h *Histogram) Snapshot() (cum []int64, count int64, sum float64) {
	cum = make([]int64, len(h.counts))
	var running int64
	for i := range h.counts {
		running += h.counts[i].Load()
		cum[i] = running
	}
	return cum, h.count.Load(), h.Sum()
}

// Sample is one labelled value emitted by a func-backed metric family.
type Sample struct {
	Labels []string // values for the family's label names, in order
	Value  float64
}

// child is one labelled instance inside a family.
type child struct {
	labels []string
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
}

// family is one named metric family: metadata plus either static children
// (counters, gauges, histograms, possibly labelled) or a sample func
// evaluated at exposition time.
type family struct {
	name, help, typ string
	labels          []string

	mu       sync.Mutex
	children map[string]*child
	order    []string

	fn func() []Sample // non-nil for func-backed families
}

func (f *family) get(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.children[key]
	if !ok {
		c = &child{labels: append([]string(nil), values...)}
		f.children[key] = c
		f.order = append(f.order, key)
	}
	return c
}

// Registry is a collection of metric families with Prometheus text
// exposition. One registry backs both GET /metrics (text exposition for
// scrapers) and the JSON /v1/metrics view, so the two can never drift.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	names    []string
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) register(name, help, typ string, labels []string, fn func() []Sample) *family {
	if !validName(name) {
		panic("obs: invalid metric name " + name)
	}
	for _, l := range labels {
		if !validName(l) {
			panic("obs: invalid label name " + l + " on " + name)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic("obs: duplicate metric " + name)
	}
	f := &family{name: name, help: help, typ: typ, labels: labels,
		children: make(map[string]*child), fn: fn}
	r.families[name] = f
	r.names = append(r.names, name)
	sort.Strings(r.names)
	return f
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Counter registers and returns an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, TypeCounter, nil, nil)
	c := f.get(nil)
	c.ctr = &Counter{}
	return c.ctr
}

// Gauge registers and returns an unlabelled settable gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, TypeGauge, nil, nil)
	c := f.get(nil)
	c.gauge = &Gauge{}
	return c.gauge
}

// Histogram registers and returns an unlabelled histogram (nil buckets use
// DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.register(name, help, TypeHistogram, nil, nil)
	c := f.get(nil)
	c.hist = newHistogram(buckets)
	return c.hist
}

// CounterVec is a labelled counter family.
type CounterVec struct{ f *family }

// CounterVec registers a counter family with the given label names.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, TypeCounter, labels, nil)}
}

// With returns the counter for the given label values, creating it on
// first use.
func (v *CounterVec) With(values ...string) *Counter {
	c := v.f.get(values)
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	if c.ctr == nil {
		c.ctr = &Counter{}
	}
	return c.ctr
}

// GaugeVec is a labelled gauge family.
type GaugeVec struct{ f *family }

// GaugeVec registers a gauge family with the given label names.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, TypeGauge, labels, nil)}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	c := v.f.get(values)
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	if c.gauge == nil {
		c.gauge = &Gauge{}
	}
	return c.gauge
}

// HistogramVec is a labelled histogram family sharing one bucket layout.
type HistogramVec struct {
	f       *family
	buckets []float64
}

// HistogramVec registers a histogram family with the given label names
// (nil buckets use DefBuckets).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{f: r.register(name, help, TypeHistogram, labels, nil), buckets: buckets}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	c := v.f.get(values)
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	if c.hist == nil {
		c.hist = newHistogram(v.buckets)
	}
	return c.hist
}

// GaugeFunc registers a gauge whose value is computed at exposition time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, TypeGauge, nil, func() []Sample { return []Sample{{Value: fn()}} })
}

// CounterFunc registers a counter whose value is computed at exposition
// time — a view over a count maintained elsewhere (an atomic in another
// subsystem), kept here so text and JSON metrics read the same source.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, help, TypeCounter, nil, func() []Sample { return []Sample{{Value: fn()}} })
}

// SampleFunc registers a family whose labelled samples are produced at
// exposition time (e.g. jobs by state). typ is TypeCounter or TypeGauge.
func (r *Registry) SampleFunc(name, help, typ string, labels []string, fn func() []Sample) {
	if typ != TypeCounter && typ != TypeGauge {
		panic("obs: SampleFunc type must be counter or gauge")
	}
	r.register(name, help, typ, labels, fn)
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelString renders {k="v",...} for the given names and values, with
// optional extra pair appended (the histogram "le" bound).
func labelString(names, values []string, extraK, extraV string) string {
	if len(names) == 0 && extraK == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, n, escapeLabel(values[i]))
	}
	if extraK != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, extraK, escapeLabel(extraV))
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4), families sorted by name and children in
// first-use order, so output is stable for golden tests and diffing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		if f.fn != nil {
			for _, s := range f.fn() {
				fmt.Fprintf(&b, "%s%s %s\n", f.name, labelString(f.labels, s.Labels, "", ""), formatFloat(s.Value))
			}
			continue
		}
		f.mu.Lock()
		kids := make([]*child, 0, len(f.order))
		for _, key := range f.order {
			kids = append(kids, f.children[key])
		}
		f.mu.Unlock()
		for _, c := range kids {
			switch {
			case c.ctr != nil:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, labelString(f.labels, c.labels, "", ""), c.ctr.Value())
			case c.gauge != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, labelString(f.labels, c.labels, "", ""), formatFloat(c.gauge.Value()))
			case c.hist != nil:
				cum, count, sum := c.hist.Snapshot()
				for i, bound := range c.hist.bounds {
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, labelString(f.labels, c.labels, "le", formatFloat(bound)), cum[i])
				}
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, labelString(f.labels, c.labels, "le", "+Inf"), cum[len(cum)-1])
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, labelString(f.labels, c.labels, "", ""), formatFloat(sum))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, labelString(f.labels, c.labels, "", ""), count)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Handler returns an http.Handler serving the text exposition, suitable
// for mounting at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
