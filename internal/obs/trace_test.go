package obs

import (
	"regexp"
	"testing"
	"time"
)

func TestTracerRingRetention(t *testing.T) {
	tr := NewTracer(3, 8)
	for _, k := range []string{"j1", "j2", "j3", "j4"} {
		tr.Start(k, NewTraceID()).Add(Span{Name: "root", Start: time.Now()})
	}
	if tr.Len() != 3 {
		t.Fatalf("retained %d traces, want 3", tr.Len())
	}
	if _, ok := tr.Get("j1"); ok {
		t.Error("oldest trace j1 should have been evicted")
	}
	if _, ok := tr.Get("j4"); !ok {
		t.Error("newest trace j4 missing")
	}
	if tr.Evicted() != 1 {
		t.Errorf("evicted = %d, want 1", tr.Evicted())
	}
	tr.Drop("j3")
	if _, ok := tr.Get("j3"); ok {
		t.Error("dropped trace j3 still retained")
	}
	if tr.Len() != 2 {
		t.Errorf("after drop: %d traces, want 2", tr.Len())
	}
}

func TestTraceSpanCap(t *testing.T) {
	tr := NewTracer(4, 2)
	trace := tr.Start("j", "tid")
	for i := 0; i < 5; i++ {
		trace.Add(Span{Name: "s", Start: time.Now()})
	}
	if n := len(trace.Snapshot()); n != 2 {
		t.Fatalf("retained %d spans, want 2 (cap)", n)
	}
	if trace.Dropped() != 3 {
		t.Errorf("dropped = %d, want 3", trace.Dropped())
	}
	trace.Finish()
	trace.Add(Span{Name: "late"})
	if n := len(trace.Snapshot()); n != 2 {
		t.Errorf("add after Finish retained a span (%d)", n)
	}
	if !trace.Done() {
		t.Error("trace not done after Finish")
	}
}

func TestStartIsIdempotent(t *testing.T) {
	tr := NewTracer(4, 8)
	a := tr.Start("j", "tid-a")
	b := tr.Start("j", "tid-b")
	if a != b {
		t.Fatal("Start for the same key returned distinct traces")
	}
	if a.ID() != "tid-a" {
		t.Errorf("trace ID = %q, want the first Start's ID", a.ID())
	}
}

func TestIDs(t *testing.T) {
	hex16 := regexp.MustCompile(`^[0-9a-f]{32}$`)
	hex8 := regexp.MustCompile(`^[0-9a-f]{16}$`)
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewTraceID()
		if !hex16.MatchString(id) {
			t.Fatalf("trace ID %q is not 32 hex chars", id)
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %q", id)
		}
		seen[id] = true
		sid := NewSpanID()
		if !hex8.MatchString(sid) {
			t.Fatalf("span ID %q is not 16 hex chars", sid)
		}
	}
	if DeriveSpanID("t", "filter") != DeriveSpanID("t", "filter") {
		t.Error("DeriveSpanID is not deterministic")
	}
	if DeriveSpanID("t", "filter") == DeriveSpanID("t", "gather") {
		t.Error("DeriveSpanID collides across names")
	}
	if !hex8.MatchString(DeriveSpanID("t", "filter")) {
		t.Error("DeriveSpanID is not 16 hex chars")
	}
}

func TestSpanDuration(t *testing.T) {
	s := Span{Start: time.Unix(0, 0)}
	if s.Duration() != 0 {
		t.Error("open span should report zero duration")
	}
	s.End = s.Start.Add(3 * time.Second)
	if s.Duration() != 3*time.Second {
		t.Errorf("duration = %v, want 3s", s.Duration())
	}
}
