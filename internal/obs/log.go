package obs

import (
	"io"
	"log/slog"
)

// NewLogger builds the fleet's standard structured logger: text or JSON
// handler at the given level, with the component and node identity folded
// into every record. Pass the empty node for single-node deployments.
//
// Field conventions across the fleet (see README "Observability"):
//
//	component  "ifdkd" | "ifdk-router" | "service" | "router"
//	node       the daemon's -node identity (fleet-unique)
//	job_id     public job ID
//	trace_id   the job's trace, shared across SDK -> router -> backend
type NewLoggerOptions struct {
	JSON  bool
	Level slog.Level
}

// NewLogger constructs a *slog.Logger writing to w.
func NewLogger(w io.Writer, opt NewLoggerOptions, component, node string) *slog.Logger {
	ho := &slog.HandlerOptions{Level: opt.Level}
	var h slog.Handler
	if opt.JSON {
		h = slog.NewJSONHandler(w, ho)
	} else {
		h = slog.NewTextHandler(w, ho)
	}
	attrs := []slog.Attr{slog.String("component", component)}
	if node != "" {
		attrs = append(attrs, slog.String("node", node))
	}
	return slog.New(h.WithAttrs(attrs))
}

// NopLogger returns a logger that discards everything — the default for
// library code whose caller did not wire logging.
func NopLogger() *slog.Logger { return slog.New(slog.DiscardHandler) }
