package obs

import (
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// TestExpositionGolden locks the text exposition format — names, HELP/TYPE
// metadata, label rendering, histogram bucket/sum/count lines — against a
// golden file. Run with -update-golden (via UPDATE_GOLDEN=1) after a
// deliberate format change.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ifdk_test_jobs_total", "Jobs processed.")
	c.Add(42)
	g := r.Gauge("ifdk_test_queue_depth", "Jobs queued right now.")
	g.Set(3)
	cv := r.CounterVec("ifdk_test_admission_total", "Admission decisions.", "decision")
	cv.With("admitted").Add(7)
	cv.With("rejected_full").Add(2)
	gv := r.GaugeVec("ifdk_test_backend_alive", "Backend liveness (1 = alive).", "backend")
	gv.With("b0").Set(1)
	gv.With("b1").Set(0)
	h := r.Histogram("ifdk_test_stage_seconds", "Per-stage latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	hv := r.HistogramVec("ifdk_test_wait_seconds", "Queue wait by class.", []float64{1, 10}, "class")
	hv.With("high").Observe(0.5)
	hv.With(`we"ird\cl` + "\n" + `ass`).Observe(20)
	r.GaugeFunc("ifdk_test_uptime_seconds", "Seconds since start.", func() float64 { return 12.5 })
	r.CounterFunc("ifdk_test_pfs_read_bytes_total", "Bytes read\nfrom the PFS.", func() float64 { return 1 << 20 })
	r.SampleFunc("ifdk_test_jobs", "Jobs by state.", TypeGauge, []string{"state"}, func() []Sample {
		return []Sample{{Labels: []string{"queued"}, Value: 2}, {Labels: []string{"running"}, Value: 1}}
	})

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	golden := filepath.Join("testdata", "exposition.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	if got != string(want) {
		t.Errorf("exposition drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestExpositionParses sanity-checks structural invariants every Prometheus
// scraper relies on: each sample line's metric name was declared by a
// preceding TYPE line, and histogram buckets are cumulative.
func TestExpositionParses(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "a").Add(1)
	h := r.Histogram("lat_seconds", "lat", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(99)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	declared := map[string]bool{}
	var lastBucket int64 = -1
	for _, line := range strings.Split(strings.TrimSuffix(b.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			declared[strings.Fields(line)[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if !declared[name] && !declared[base] {
			t.Errorf("sample %q has no TYPE declaration", line)
		}
		if strings.HasPrefix(line, "lat_seconds_bucket") {
			var v int64
			if _, err := fmtSscan(line, &v); err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			if v < lastBucket {
				t.Errorf("bucket counts not cumulative: %d after %d in %q", v, lastBucket, line)
			}
			lastBucket = v
		}
	}
	if lastBucket != 3 {
		t.Errorf("+Inf bucket = %d, want 3", lastBucket)
	}
}

func fmtSscan(line string, v *int64) (int, error) {
	i := strings.LastIndexByte(line, ' ')
	var err error
	*v, err = parseInt(line[i+1:])
	return 1, err
}

func parseInt(s string) (int64, error) {
	var v int64
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, errBadInt
		}
		v = v*10 + int64(c-'0')
	}
	return v, nil
}

var errBadInt = &parseErr{}

type parseErr struct{}

func (*parseErr) Error() string { return "not an integer" }

// TestHistogramConcurrent hammers one histogram from many goroutines and
// checks the books balance: total count, per-bucket cumulative counts and
// the sum must account for every observation. Run under -race in CI.
func TestHistogramConcurrent(t *testing.T) {
	h := newHistogram([]float64{0.25, 0.5, 0.75})
	const goroutines = 8
	const perG = 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Deterministic spread over all four buckets.
				h.Observe(float64(i%4) * 0.25)
			}
		}(g)
	}
	wg.Wait()

	cum, count, sum := h.Snapshot()
	const total = goroutines * perG
	if count != total {
		t.Fatalf("count = %d, want %d", count, total)
	}
	if cum[len(cum)-1] != total {
		t.Fatalf("+Inf cumulative = %d, want %d", cum[len(cum)-1], total)
	}
	// i%4 in {0,1,2,3} ⇒ observations 0, .25, .5, .75 in equal shares.
	// le=0.25 holds both 0 and 0.25, so cumulative = 2/4, 3/4, 4/4, 4/4.
	for i, want := range []int64{total / 2, 3 * total / 4, total, total} {
		if cum[i] != want {
			t.Errorf("bucket %d cumulative = %d, want %d", i, cum[i], want)
		}
	}
	wantSum := float64(total) * (0 + 0.25 + 0.5 + 0.75) / 4
	if math.Abs(sum-wantSum) > 1e-6*wantSum {
		t.Errorf("sum = %g, want %g", sum, wantSum)
	}
}

// TestCounterVecConcurrent checks labelled child creation races cleanly.
func TestCounterVecConcurrent(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("x_total", "x", "k")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				cv.With("a").Inc()
				cv.With("b").Inc()
			}
		}()
	}
	wg.Wait()
	if got := cv.With("a").Value(); got != 8000 {
		t.Errorf("a = %d, want 8000", got)
	}
	if got := cv.With("b").Value(); got != 8000 {
		t.Errorf("b = %d, want 8000", got)
	}
}

func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.Counter("y_total", "y").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition", ct)
	}
	if !strings.Contains(rec.Body.String(), "y_total 1") {
		t.Errorf("body missing sample:\n%s", rec.Body.String())
	}
}

func TestRegistryPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "first")
	for name, fn := range map[string]func(){
		"duplicate":    func() { r.Counter("dup_total", "second") },
		"bad name":     func() { r.Counter("0bad", "x") },
		"bad label":    func() { r.CounterVec("ok_total", "x", "0bad") },
		"label arity":  func() { r.CounterVec("v_total", "x", "k").With("a", "b") },
		"bad functype": func() { r.SampleFunc("f", "x", TypeHistogram, nil, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
