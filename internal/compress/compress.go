// Package compress implements volume compression — the first of the
// paper's two stated future-work items ("we intend to investigate
// compression and visualization of the high-resolution volumes", Sec. 8).
//
// The codec quantizes the float32 voxels to 16-bit fixed point over the
// volume's dynamic range (CT consumers conventionally view 12-bit data, so
// 16 bits are transparent) and entropy-codes the result with DEFLATE. The
// maximum absolute quantization error is (max-min)/65535/2.
package compress

import (
	"bufio"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"ifdk/internal/volume"
)

const magic = 0x69464456 // "iFDV"

// Encode writes the volume to w in the quantized-DEFLATE format.
func Encode(vol *volume.Volume, w io.Writer) error {
	s := vol.Summarize()
	lo, hi := float64(s.Min), float64(s.Max)
	if hi == lo {
		hi = lo + 1
	}
	var header [36]byte
	binary.LittleEndian.PutUint32(header[0:], magic)
	binary.LittleEndian.PutUint32(header[4:], uint32(vol.Nx))
	binary.LittleEndian.PutUint32(header[8:], uint32(vol.Ny))
	binary.LittleEndian.PutUint32(header[12:], uint32(vol.Nz))
	binary.LittleEndian.PutUint32(header[16:], uint32(vol.Layout))
	binary.LittleEndian.PutUint64(header[20:], math.Float64bits(lo))
	binary.LittleEndian.PutUint64(header[28:], math.Float64bits(hi))
	if _, err := w.Write(header[:]); err != nil {
		return err
	}
	fw, err := flate.NewWriter(w, flate.DefaultCompression)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(fw, 1<<16)
	scale := 65535 / (hi - lo)
	var qb [2]byte
	for _, v := range vol.Data {
		q := (float64(v) - lo) * scale
		if q < 0 {
			q = 0
		}
		if q > 65535 {
			q = 65535
		}
		binary.LittleEndian.PutUint16(qb[:], uint16(math.Round(q)))
		if _, err := bw.Write(qb[:]); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return fw.Close()
}

// Decode reads a volume written by Encode.
func Decode(r io.Reader) (*volume.Volume, error) {
	var header [36]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return nil, fmt.Errorf("compress: short header: %w", err)
	}
	if binary.LittleEndian.Uint32(header[0:]) != magic {
		return nil, fmt.Errorf("compress: bad magic")
	}
	nx := int(binary.LittleEndian.Uint32(header[4:]))
	ny := int(binary.LittleEndian.Uint32(header[8:]))
	nz := int(binary.LittleEndian.Uint32(header[12:]))
	layout := volume.Layout(binary.LittleEndian.Uint32(header[16:]))
	lo := math.Float64frombits(binary.LittleEndian.Uint64(header[20:]))
	hi := math.Float64frombits(binary.LittleEndian.Uint64(header[28:]))
	if nx <= 0 || ny <= 0 || nz <= 0 || nx*ny*nz > 1<<31 {
		return nil, fmt.Errorf("compress: implausible dimensions %dx%dx%d", nx, ny, nz)
	}
	if layout != volume.IMajor && layout != volume.KMajor {
		return nil, fmt.Errorf("compress: unknown layout %d", layout)
	}
	vol := volume.New(nx, ny, nz, layout)
	fr := flate.NewReader(r)
	defer fr.Close()
	br := bufio.NewReaderSize(fr, 1<<16)
	scale := (hi - lo) / 65535
	var qb [2]byte
	for n := range vol.Data {
		if _, err := io.ReadFull(br, qb[:]); err != nil {
			return nil, fmt.Errorf("compress: truncated payload at voxel %d: %w", n, err)
		}
		q := binary.LittleEndian.Uint16(qb[:])
		vol.Data[n] = float32(lo + float64(q)*scale)
	}
	return vol, nil
}

// MaxError returns the worst-case absolute quantization error for a volume
// with the given dynamic range.
func MaxError(min, max float32) float64 {
	span := float64(max) - float64(min)
	if span <= 0 {
		span = 1
	}
	return span / 65535 / 2
}
