package compress

import (
	"bytes"
	"math"
	"testing"

	"ifdk/internal/volume"
)

// A slice-like blob (smooth float32 raster) must round-trip bit-exactly and
// actually shrink — the whole point of per-part gzip on the slice stream.
func TestGzipRoundTripBitExact(t *testing.T) {
	img := volume.NewImage(64, 64)
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			img.Data[y*64+x] = float32(math.Sin(float64(x)/9) * math.Cos(float64(y)/7))
		}
	}
	blob := volume.ImageToBytes(img)
	gz, err := Gzip(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(gz) >= len(blob) {
		t.Errorf("smooth slice did not compress: %d -> %d bytes", len(blob), len(gz))
	}
	back, err := Gunzip(gz)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, blob) {
		t.Fatal("gzip round trip is not bit-exact")
	}
}

func TestGunzipRejectsGarbage(t *testing.T) {
	if _, err := Gunzip([]byte("not gzip at all")); err == nil {
		t.Fatal("Gunzip accepted garbage")
	}
	gz, err := Gzip([]byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Gunzip(gz[:len(gz)-3]); err == nil {
		t.Fatal("Gunzip accepted a truncated stream")
	}
}

func TestGzipEmpty(t *testing.T) {
	gz, err := Gzip(nil)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Gunzip(gz)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 0 {
		t.Fatalf("empty round trip returned %d bytes", len(back))
	}
}
