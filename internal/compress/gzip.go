package compress

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
)

// Gzip and Gunzip are the lossless byte-stream half of this package, next
// to the lossy quantized volume codec: they carry opaque wire blobs (the
// slice parts of GET /v1/jobs/{id}/stream) under per-part Content-Encoding:
// gzip. Slice payloads are smooth float32 rasters whose byte planes repeat
// heavily, so DEFLATE recovers a sizeable fraction even without
// quantization — and stays bit-exact, which the streaming contract
// requires (a reassembled volume must equal the job's result).

// Gzip compresses data with DEFLATE at the default level.
func Gzip(data []byte) ([]byte, error) {
	var buf bytes.Buffer
	gw := gzip.NewWriter(&buf)
	if _, err := gw.Write(data); err != nil {
		return nil, fmt.Errorf("compress: gzip: %w", err)
	}
	if err := gw.Close(); err != nil {
		return nil, fmt.Errorf("compress: gzip: %w", err)
	}
	return buf.Bytes(), nil
}

// Gunzip reverses Gzip.
func Gunzip(data []byte) ([]byte, error) {
	gr, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("compress: gunzip: %w", err)
	}
	defer gr.Close()
	out, err := io.ReadAll(gr)
	if err != nil {
		return nil, fmt.Errorf("compress: gunzip: %w", err)
	}
	return out, nil
}
