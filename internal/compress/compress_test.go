package compress

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ifdk/internal/volume"
)

func smoothVolume(n int, seed int64) *volume.Volume {
	vol := volume.New(n, n, n, volume.IMajor)
	rng := rand.New(rand.NewSource(seed))
	base := rng.Float64()
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				v := base + math.Sin(float64(i)/5)*math.Cos(float64(j)/7) + float64(k)/float64(n)
				vol.Set(i, j, k, float32(v))
			}
		}
	}
	return vol
}

func TestRoundTripWithinErrorBound(t *testing.T) {
	vol := smoothVolume(16, 1)
	var buf bytes.Buffer
	if err := Encode(vol, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Nx != 16 || back.Layout != vol.Layout {
		t.Fatalf("metadata lost: %dx%dx%d %v", back.Nx, back.Ny, back.Nz, back.Layout)
	}
	s := vol.Summarize()
	bound := MaxError(s.Min, s.Max) * 1.01 // rounding slack
	worst, err := volume.MaxAbsDiff(vol, back)
	if err != nil {
		t.Fatal(err)
	}
	if worst > bound {
		t.Errorf("max error %g exceeds quantization bound %g", worst, bound)
	}
}

func TestCompressionRatio(t *testing.T) {
	vol := smoothVolume(24, 2)
	var buf bytes.Buffer
	if err := Encode(vol, &buf); err != nil {
		t.Fatal(err)
	}
	raw := 4 * vol.NumVoxels()
	if buf.Len() >= raw/2 {
		t.Errorf("compressed %d bytes of %d raw — expected > 2x on smooth data", buf.Len(), raw)
	}
}

func TestConstantVolume(t *testing.T) {
	vol := volume.New(4, 4, 4, volume.KMajor)
	vol.Fill(3.5)
	var buf bytes.Buffer
	if err := Encode(vol, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	worst, _ := volume.MaxAbsDiff(vol, back)
	if worst > 1e-4 {
		t.Errorf("constant volume error %g", worst)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream accepted")
	}
	bad := make([]byte, 36)
	if _, err := Decode(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
	vol := smoothVolume(8, 3)
	var buf bytes.Buffer
	if err := Encode(vol, &buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := Decode(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated stream accepted")
	}
}

// Property: round trips never exceed the documented error bound for random
// small volumes.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vol := volume.New(5, 4, 3, volume.IMajor)
		for n := range vol.Data {
			vol.Data[n] = rng.Float32()*20 - 10
		}
		var buf bytes.Buffer
		if err := Encode(vol, &buf); err != nil {
			return false
		}
		back, err := Decode(&buf)
		if err != nil {
			return false
		}
		s := vol.Summarize()
		worst, err := volume.MaxAbsDiff(vol, back)
		return err == nil && worst <= MaxError(s.Min, s.Max)*1.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMaxErrorDegenerate(t *testing.T) {
	if MaxError(5, 5) <= 0 {
		t.Error("degenerate range should still give a positive bound")
	}
}
