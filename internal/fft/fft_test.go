package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveDFT is the O(n²) reference implementation.
func naiveDFT(x []complex128, inverse bool) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for k := 0; k < n; k++ {
		var sum complex128
		for j := 0; j < n; j++ {
			angle := sign * 2 * math.Pi * float64(j*k) / float64(n)
			sum += x[j] * cmplx.Rect(1, angle)
		}
		if inverse {
			sum /= complex(float64(n), 0)
		}
		out[k] = sum
	}
	return out
}

func randComplex(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	return out
}

func maxErr(a, b []complex128) float64 {
	var worst float64
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

func TestNewPlanRejectsNonPow2(t *testing.T) {
	for _, n := range []int{0, -1, 3, 6, 100} {
		if _, err := NewPlan(n); err == nil {
			t.Errorf("NewPlan(%d) should fail", n)
		}
	}
	for _, n := range []int{1, 2, 4, 1024} {
		if _, err := NewPlan(n); err != nil {
			t.Errorf("NewPlan(%d): %v", n, err)
		}
	}
}

func TestForwardMatchesNaive(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256} {
		x := randComplex(n, int64(n))
		want := naiveDFT(x, false)
		p, err := NewPlan(n)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]complex128, n)
		copy(got, x)
		p.Forward(got)
		if e := maxErr(got, want); e > 1e-9 {
			t.Errorf("n=%d: max error %g", n, e)
		}
	}
}

func TestInverseRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 8, 128, 1024} {
		x := randComplex(n, int64(n)+100)
		p, _ := NewPlan(n)
		got := make([]complex128, n)
		copy(got, x)
		p.Forward(got)
		p.Inverse(got)
		if e := maxErr(got, x); e > 1e-10 {
			t.Errorf("n=%d: round-trip error %g", n, e)
		}
	}
}

func TestBluesteinMatchesNaive(t *testing.T) {
	for _, n := range []int{3, 5, 7, 12, 17, 31, 100} {
		x := randComplex(n, int64(n)+7)
		want := naiveDFT(x, false)
		got := FFT(x)
		if e := maxErr(got, want); e > 1e-8 {
			t.Errorf("n=%d: max error %g", n, e)
		}
		back := IFFT(got)
		if e := maxErr(back, x); e > 1e-8 {
			t.Errorf("n=%d: ifft round-trip error %g", n, e)
		}
	}
}

func TestImpulseResponse(t *testing.T) {
	// DFT of a unit impulse is all-ones.
	n := 16
	x := make([]complex128, n)
	x[0] = 1
	got := FFT(x)
	for k := range got {
		if cmplx.Abs(got[k]-1) > 1e-12 {
			t.Fatalf("impulse spectrum at %d = %v", k, got[k])
		}
	}
}

func TestDCComponent(t *testing.T) {
	// DFT of constant c has only bin 0 = n*c.
	n := 32
	x := make([]complex128, n)
	for i := range x {
		x[i] = 2
	}
	got := FFT(x)
	if cmplx.Abs(got[0]-complex(float64(2*n), 0)) > 1e-9 {
		t.Errorf("DC bin = %v", got[0])
	}
	for k := 1; k < n; k++ {
		if cmplx.Abs(got[k]) > 1e-9 {
			t.Errorf("bin %d = %v, want 0", k, got[k])
		}
	}
}

func TestParseval(t *testing.T) {
	// Energy in time domain equals energy in frequency domain / n.
	x := randComplex(256, 99)
	spec := FFT(x)
	var et, ef float64
	for i := range x {
		et += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
		ef += real(spec[i])*real(spec[i]) + imag(spec[i])*imag(spec[i])
	}
	if math.Abs(et-ef/256)/et > 1e-12 {
		t.Errorf("Parseval violated: %g vs %g", et, ef/256)
	}
}

// Property: IFFT(FFT(x)) == x for random lengths (both code paths).
func TestRoundTripProperty(t *testing.T) {
	f := func(n uint8, seed int64) bool {
		length := int(n%200) + 1
		x := randComplex(length, seed)
		back := IFFT(FFT(x))
		return maxErr(back, x) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: linearity FFT(a*x + y) == a*FFT(x) + FFT(y).
func TestLinearityProperty(t *testing.T) {
	f := func(seed int64) bool {
		const n = 64
		x := randComplex(n, seed)
		y := randComplex(n, seed+1)
		a := complex(1.7, -0.3)
		mix := make([]complex128, n)
		for i := range mix {
			mix[i] = a*x[i] + y[i]
		}
		lhs := FFT(mix)
		fx, fy := FFT(x), FFT(y)
		rhs := make([]complex128, n)
		for i := range rhs {
			rhs[i] = a*fx[i] + fy[i]
		}
		return maxErr(lhs, rhs) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func naiveConvolve(a, b []float64) []float64 {
	out := make([]float64, len(a)+len(b)-1)
	for i := range a {
		for j := range b {
			out[i+j] += a[i] * b[j]
		}
	}
	return out
}

func TestConvolveMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, sizes := range [][2]int{{1, 1}, {4, 4}, {7, 13}, {64, 33}, {100, 1}} {
		a := make([]float64, sizes[0])
		b := make([]float64, sizes[1])
		for i := range a {
			a[i] = rng.Float64()*2 - 1
		}
		for i := range b {
			b[i] = rng.Float64()*2 - 1
		}
		got := Convolve(a, b)
		want := naiveConvolve(a, b)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("sizes %v: conv[%d] = %g want %g", sizes, i, got[i], want[i])
			}
		}
	}
	if Convolve(nil, []float64{1}) != nil {
		t.Error("Convolve with empty input should return nil")
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{-3: 1, 0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1023: 1024, 1024: 1024, 1025: 2048}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestRealSpectrum(t *testing.T) {
	p, _ := NewPlan(8)
	kernel := []float64{1, 2, 3}
	spec := RealSpectrum(kernel, p)
	x := make([]complex128, 8)
	for i, v := range kernel {
		x[i] = complex(v, 0)
	}
	want := naiveDFT(x, false)
	if e := maxErr(spec, want); e > 1e-10 {
		t.Errorf("RealSpectrum error %g", e)
	}
}

func TestForwardPanicsOnLengthMismatch(t *testing.T) {
	p, _ := NewPlan(8)
	defer func() {
		if recover() == nil {
			t.Error("Forward with wrong length should panic")
		}
	}()
	p.Forward(make([]complex128, 4))
}

func BenchmarkForward1024(b *testing.B) {
	p, _ := NewPlan(1024)
	x := randComplex(1024, 1)
	buf := make([]complex128, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		p.Forward(buf)
	}
}

func BenchmarkForward4096(b *testing.B) {
	p, _ := NewPlan(4096)
	x := randComplex(4096, 1)
	buf := make([]complex128, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		p.Forward(buf)
	}
}
