package fft

// Single-precision transforms for the filtering hot path.
//
// The ramp-filter convolution operates on real float32 detector rows, yet
// the original pipeline widened every row to complex128, transformed, and
// narrowed back — 4× the memory traffic the data requires. This file
// provides the two primitives that remove that round trip:
//
//   - Plan32, an iterative radix-2 transform over complex64 (same butterfly
//     structure as Plan, single precision), and
//   - RealPlan, a half-spectrum real FFT: an n-point real transform computed
//     as an n/2-point complex transform of packed even/odd samples plus an
//     O(n) unpack (the classic "realft" split). Only the n/2+1 independent
//     bins are produced; the conjugate-symmetric upper half is implicit.
//
// Plans are safe for concurrent use: all state is read-only after
// construction, and callers supply their own scratch.

import (
	"fmt"
	"math"
	"math/bits"

	"ifdk/internal/ct/kernels"
)

// Plan32 caches twiddle factors and the bit-reversal permutation for a
// fixed power-of-two complex64 transform length.
type Plan32 struct {
	n       int
	perm    []int32
	twiddle []complex64 // forward twiddles: exp(-2πi k / n), k < n/2
	invTw   []complex64 // conjugated twiddles for the inverse transform
}

// NewPlan32 builds a single-precision plan for length n (a power of two
// ≥ 1). Twiddles are evaluated in float64 and rounded once, so the only
// single-precision error is in the butterflies themselves. The inverse
// twiddles are precomputed conjugates, keeping the direction branch out of
// the butterfly kernel.
func NewPlan32(n int) (*Plan32, error) {
	if n < 1 || n&(n-1) != 0 {
		return nil, fmt.Errorf("fft: plan length %d is not a power of two", n)
	}
	logN := bits.TrailingZeros(uint(n))
	p := &Plan32{n: n}
	p.perm = make([]int32, n)
	for i := 0; i < n; i++ {
		p.perm[i] = int32(bits.Reverse32(uint32(i)) >> (32 - logN))
	}
	p.twiddle = make([]complex64, n/2)
	p.invTw = make([]complex64, n/2)
	for k := range p.twiddle {
		angle := -2 * math.Pi * float64(k) / float64(n)
		w := complex(float32(math.Cos(angle)), float32(math.Sin(angle)))
		p.twiddle[k] = w
		p.invTw[k] = complex(real(w), -imag(w))
	}
	return p, nil
}

// N returns the transform length.
func (p *Plan32) N() int { return p.n }

// Forward computes the in-place DFT of x (len(x) must equal the plan
// length).
func (p *Plan32) Forward(x []complex64) { p.transform(x, false) }

// Inverse computes the in-place inverse DFT including the 1/n scaling.
func (p *Plan32) Inverse(x []complex64) {
	p.transform(x, true)
	inv := float32(1) / float32(p.n)
	for i := range x {
		x[i] = complex(real(x[i])*inv, imag(x[i])*inv)
	}
}

func (p *Plan32) transform(x []complex64, inverse bool) {
	if len(x) != p.n {
		panic(fmt.Sprintf("fft: input length %d does not match plan length %d", len(x), p.n))
	}
	for i, j := range p.perm {
		if int32(i) < j {
			x[i], x[int(j)] = x[int(j)], x[i]
		}
	}
	tw := p.twiddle
	if inverse {
		tw = p.invTw
	}
	for size := 2; size <= p.n; size <<= 1 {
		kernels.ButterflyStage(x, tw, size, p.n/size)
	}
}

// RealPlan computes forward and inverse DFTs of real float32 signals of a
// fixed power-of-two length n ≥ 2, producing/consuming only the half
// spectrum X[0..n/2] (n/2+1 complex64 bins; the remaining bins are the
// conjugate mirror X[n-k] = conj(X[k]) and are never materialized).
type RealPlan struct {
	n    int
	half *Plan32     // n/2-point complex transform of packed samples
	w    []complex64 // unpack twiddles: exp(-2πi k / n), k ≤ n/4
}

// NewRealPlan builds a real-input plan for length n, a power of two ≥ 2.
func NewRealPlan(n int) (*RealPlan, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("fft: real plan length %d is not a power of two ≥ 2", n)
	}
	half, err := NewPlan32(n / 2)
	if err != nil {
		return nil, err
	}
	p := &RealPlan{n: n, half: half}
	p.w = make([]complex64, n/4+1)
	for k := range p.w {
		angle := -2 * math.Pi * float64(k) / float64(n)
		p.w[k] = complex(float32(math.Cos(angle)), float32(math.Sin(angle)))
	}
	return p, nil
}

// N returns the real transform length.
func (p *RealPlan) N() int { return p.n }

// HalfLen returns the number of spectrum bins, n/2 + 1.
func (p *RealPlan) HalfLen() int { return p.n/2 + 1 }

// Forward computes the half spectrum of the real signal src (length n) into
// dst (length ≥ n/2+1). dst doubles as the working buffer, so src and dst
// must not alias. dst[0] and dst[n/2] have zero imaginary parts.
func (p *RealPlan) Forward(dst []complex64, src []float32) {
	m := p.n / 2
	if len(src) != p.n {
		panic(fmt.Sprintf("fft: real input length %d does not match plan length %d", len(src), p.n))
	}
	if len(dst) < m+1 {
		panic(fmt.Sprintf("fft: spectrum buffer %d too short for %d bins", len(dst), m+1))
	}
	// Pack even/odd samples: z[j] = x[2j] + i·x[2j+1].
	z := dst[:m]
	for j := 0; j < m; j++ {
		z[j] = complex(src[2*j], src[2*j+1])
	}
	p.half.Forward(z)
	// Unpack the half transform into the n-point half spectrum (the classic
	// realft split; formulas on kernels.RealUnpackRef).
	kernels.RealUnpack(dst, p.w, m)
}

// Inverse reconstructs the real signal (length n) from the half spectrum
// spec (length ≥ n/2+1), including the 1/n scaling, so
// Inverse(dst, Forward(spec, dst)) round-trips. The imaginary parts of
// spec[0] and spec[n/2] are ignored (they are zero for any real signal).
// spec is consumed as scratch: its contents are undefined afterwards.
func (p *RealPlan) Inverse(dst []float32, spec []complex64) {
	m := p.n / 2
	if len(dst) != p.n {
		panic(fmt.Sprintf("fft: real output length %d does not match plan length %d", len(dst), p.n))
	}
	if len(spec) < m+1 {
		panic(fmt.Sprintf("fft: spectrum buffer %d too short for %d bins", len(spec), m+1))
	}
	// Repack the half spectrum into the m-point spectrum of z (formulas on
	// kernels.RealRepackRef).
	kernels.RealRepack(spec, p.w, m)
	z := spec[:m]
	p.half.Inverse(z)
	for j := 0; j < m; j++ {
		dst[2*j] = real(z[j])
		dst[2*j+1] = imag(z[j])
	}
}
