package fft

import (
	"math"
	"math/rand"
	"testing"
)

// maxMag returns the largest magnitude in a complex128 slice, for relative
// error scaling.
func maxMag(x []complex128) float64 {
	var m float64
	for _, v := range x {
		if a := math.Hypot(real(v), imag(v)); a > m {
			m = a
		}
	}
	return m
}

// The half spectrum must match the complex128 reference transform of the
// same real signal within single-precision tolerance.
func TestRealPlanForwardMatchesComplex128(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{2, 4, 8, 64, 256, 2048} {
		rp, err := NewRealPlan(n)
		if err != nil {
			t.Fatal(err)
		}
		if rp.N() != n || rp.HalfLen() != n/2+1 {
			t.Fatalf("n=%d: N/HalfLen = %d/%d", n, rp.N(), rp.HalfLen())
		}
		src := make([]float32, n)
		ref := make([]complex128, n)
		for i := range src {
			src[i] = rng.Float32()*2 - 1
			ref[i] = complex(float64(src[i]), 0)
		}
		p, _ := NewPlan(n)
		p.Forward(ref)
		dst := make([]complex64, rp.HalfLen())
		rp.Forward(dst, src)
		tol := 1e-5 * (1 + maxMag(ref))
		for k := 0; k <= n/2; k++ {
			dr := float64(real(dst[k])) - real(ref[k])
			di := float64(imag(dst[k])) - imag(ref[k])
			if math.Hypot(dr, di) > tol {
				t.Errorf("n=%d bin %d: rfft %v, reference %v", n, k, dst[k], ref[k])
			}
		}
		if imag(dst[0]) != 0 || imag(dst[n/2]) != 0 {
			t.Errorf("n=%d: DC/Nyquist bins not purely real: %v %v", n, dst[0], dst[n/2])
		}
	}
}

// Inverse(Forward(x)) must reproduce x within single-precision rounding.
func TestRealPlanRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{2, 4, 16, 128, 1024} {
		rp, err := NewRealPlan(n)
		if err != nil {
			t.Fatal(err)
		}
		src := make([]float32, n)
		var peak float64
		for i := range src {
			src[i] = rng.Float32()*20 - 10
			if a := math.Abs(float64(src[i])); a > peak {
				peak = a
			}
		}
		spec := make([]complex64, rp.HalfLen())
		rp.Forward(spec, src)
		got := make([]float32, n)
		rp.Inverse(got, spec)
		tol := 1e-5 * (1 + peak)
		for i := range src {
			if math.Abs(float64(got[i]-src[i])) > tol {
				t.Errorf("n=%d: sample %d round-tripped %g -> %g", n, i, src[i], got[i])
			}
		}
	}
}

// Point-wise multiplication in the half spectrum must implement circular
// convolution with a real even kernel — the exact operation the ramp filter
// performs.
func TestRealPlanSpectralMultiplyConvolves(t *testing.T) {
	const n = 64
	rp, _ := NewRealPlan(n)
	rng := rand.New(rand.NewSource(3))
	x := make([]float32, n)
	h := make([]float32, n)
	for i := range x {
		x[i] = rng.Float32()*2 - 1
	}
	// Even kernel → real spectrum.
	h[0] = 1
	h[1], h[n-1] = 0.5, 0.5
	h[3], h[n-3] = -0.25, -0.25

	// Reference circular convolution in float64.
	want := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want[i] += float64(x[j]) * float64(h[(i-j+n)%n])
		}
	}

	hx := make([]complex64, rp.HalfLen())
	rp.Forward(hx, h)
	spec := make([]complex64, rp.HalfLen())
	rp.Forward(spec, x)
	for k := range spec {
		spec[k] *= complex(real(hx[k]), 0) // kernel spectrum is real
	}
	got := make([]float32, n)
	rp.Inverse(got, spec)
	for i := range got {
		if math.Abs(float64(got[i])-want[i]) > 1e-4 {
			t.Errorf("conv[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestRealPlanRejectsBadLengths(t *testing.T) {
	for _, n := range []int{0, 1, 3, 12, -8} {
		if _, err := NewRealPlan(n); err == nil {
			t.Errorf("NewRealPlan(%d) should fail", n)
		}
	}
	if _, err := NewPlan32(3); err == nil {
		t.Error("NewPlan32(3) should fail")
	}
}

func TestPlan32MatchesPlan(t *testing.T) {
	const n = 128
	p64, _ := NewPlan(n)
	p32, _ := NewPlan32(n)
	rng := rand.New(rand.NewSource(5))
	x64 := make([]complex128, n)
	x32 := make([]complex64, n)
	for i := range x64 {
		re, im := rng.Float32()*2-1, rng.Float32()*2-1
		x64[i] = complex(float64(re), float64(im))
		x32[i] = complex(re, im)
	}
	p64.Forward(x64)
	p32.Forward(x32)
	tol := 1e-5 * (1 + maxMag(x64))
	for i := range x64 {
		dr := float64(real(x32[i])) - real(x64[i])
		di := float64(imag(x32[i])) - imag(x64[i])
		if math.Hypot(dr, di) > tol {
			t.Fatalf("bin %d: %v vs %v", i, x32[i], x64[i])
		}
	}
}

func TestPlan32RoundTrip(t *testing.T) {
	const n = 64
	p, _ := NewPlan32(n)
	rng := rand.New(rand.NewSource(9))
	x := make([]complex64, n)
	orig := make([]complex64, n)
	for i := range x {
		x[i] = complex(rng.Float32()*2-1, rng.Float32()*2-1)
		orig[i] = x[i]
	}
	p.Forward(x)
	p.Inverse(x)
	for i := range x {
		dr := float64(real(x[i]) - real(orig[i]))
		di := float64(imag(x[i]) - imag(orig[i]))
		if math.Hypot(dr, di) > 1e-5 {
			t.Fatalf("sample %d round-tripped %v -> %v", i, orig[i], x[i])
		}
	}
}
