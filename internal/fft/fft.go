// Package fft implements the fast Fourier transforms needed by the iFDK
// filtering stage (Alg. 1 of the paper). The paper uses vendor FFT
// primitives (Intel IPP on the CPU); the Go standard library has none, so
// this package provides:
//
//   - an iterative radix-2 Cooley–Tukey transform with reusable plans for
//     power-of-two lengths (the hot path: ramp-filter convolution rows are
//     zero-padded to a power of two), and
//   - a Bluestein chirp-z fallback for arbitrary lengths.
//
// Convolution helpers implement the Convolution Theorem path referenced in
// Sec. 2.2.3: convolution in the spatial domain equals point-wise product in
// the frequency domain.
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// Plan caches the twiddle factors and bit-reversal permutation for a fixed
// power-of-two transform length. A Plan is safe for concurrent use because
// all state is read-only after construction.
type Plan struct {
	n       int
	logN    int
	perm    []int32
	twiddle []complex128 // forward twiddles: exp(-2πi k / n), k < n/2
}

// NewPlan builds a plan for length n, which must be a power of two ≥ 1.
func NewPlan(n int) (*Plan, error) {
	if n < 1 || n&(n-1) != 0 {
		return nil, fmt.Errorf("fft: plan length %d is not a power of two", n)
	}
	p := &Plan{n: n, logN: bits.TrailingZeros(uint(n))}
	p.perm = make([]int32, n)
	for i := 0; i < n; i++ {
		p.perm[i] = int32(bits.Reverse32(uint32(i)) >> (32 - p.logN))
	}
	p.twiddle = make([]complex128, n/2)
	for k := range p.twiddle {
		angle := -2 * math.Pi * float64(k) / float64(n)
		p.twiddle[k] = cmplx.Rect(1, angle)
	}
	return p, nil
}

// N returns the transform length.
func (p *Plan) N() int { return p.n }

// Forward computes the in-place DFT of x (len(x) must equal the plan
// length): X[k] = Σ x[j]·exp(-2πi jk/n).
func (p *Plan) Forward(x []complex128) {
	p.transform(x, false)
}

// Inverse computes the in-place inverse DFT including the 1/n scaling, so
// Inverse(Forward(x)) == x up to rounding.
func (p *Plan) Inverse(x []complex128) {
	p.transform(x, true)
	inv := 1 / float64(p.n)
	for i := range x {
		x[i] = complex(real(x[i])*inv, imag(x[i])*inv)
	}
}

func (p *Plan) transform(x []complex128, inverse bool) {
	if len(x) != p.n {
		panic(fmt.Sprintf("fft: input length %d does not match plan length %d", len(x), p.n))
	}
	// Bit-reversal permutation.
	for i, j := range p.perm {
		if int32(i) < j {
			x[i], x[int(j)] = x[int(j)], x[i]
		}
	}
	// Iterative butterflies.
	for size := 2; size <= p.n; size <<= 1 {
		half := size >> 1
		step := p.n / size
		for start := 0; start < p.n; start += size {
			for k := 0; k < half; k++ {
				w := p.twiddle[k*step]
				if inverse {
					w = cmplx.Conj(w)
				}
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
			}
		}
	}
	if p.n == 1 {
		return
	}
}

// FFT computes the DFT of x, returning a new slice. Arbitrary lengths are
// supported: powers of two use the radix-2 path, others use Bluestein.
func FFT(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	transformAny(out, false)
	return out
}

// IFFT computes the inverse DFT (with 1/n scaling), returning a new slice.
func IFFT(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	transformAny(out, true)
	return out
}

func transformAny(x []complex128, inverse bool) {
	n := len(x)
	if n == 0 {
		return
	}
	if n&(n-1) == 0 {
		p, _ := NewPlan(n)
		if inverse {
			p.Inverse(x)
		} else {
			p.Forward(x)
		}
		return
	}
	bluestein(x, inverse)
}

// bluestein computes an arbitrary-length DFT via the chirp-z transform,
// expressed as a circular convolution of power-of-two length ≥ 2n-1.
func bluestein(x []complex128, inverse bool) {
	n := len(x)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// chirp[k] = exp(sign * πi k²/n)
	chirp := make([]complex128, n)
	for k := 0; k < n; k++ {
		// k² mod 2n avoids precision loss for large k.
		kk := (int64(k) * int64(k)) % int64(2*n)
		angle := sign * math.Pi * float64(kk) / float64(n)
		chirp[k] = cmplx.Rect(1, angle)
	}
	m := NextPow2(2*n - 1)
	a := make([]complex128, m)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * chirp[k]
		c := cmplx.Conj(chirp[k])
		b[k] = c
		if k > 0 {
			b[m-k] = c
		}
	}
	p, _ := NewPlan(m)
	p.Forward(a)
	p.Forward(b)
	for i := range a {
		a[i] *= b[i]
	}
	p.Inverse(a)
	for k := 0; k < n; k++ {
		x[k] = a[k] * chirp[k]
	}
	if inverse {
		invN := complex(1/float64(n), 0)
		for k := range x {
			x[k] *= invN
		}
	}
}

// NextPow2 returns the smallest power of two ≥ n (and ≥ 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// Convolve computes the full linear convolution of a and b
// (len = len(a)+len(b)-1) using zero-padded FFTs.
func Convolve(a, b []float64) []float64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	outLen := len(a) + len(b) - 1
	m := NextPow2(outLen)
	fa := make([]complex128, m)
	fb := make([]complex128, m)
	for i, v := range a {
		fa[i] = complex(v, 0)
	}
	for i, v := range b {
		fb[i] = complex(v, 0)
	}
	p, _ := NewPlan(m)
	p.Forward(fa)
	p.Forward(fb)
	for i := range fa {
		fa[i] *= fb[i]
	}
	p.Inverse(fa)
	out := make([]float64, outLen)
	for i := range out {
		out[i] = real(fa[i])
	}
	return out
}

// RealSpectrum transforms a real kernel of length n (zero-padded to the plan
// length) and returns its complex spectrum. Used to precompute the ramp
// filter response once per detector width.
func RealSpectrum(kernel []float64, p *Plan) []complex128 {
	buf := make([]complex128, p.N())
	for i, v := range kernel {
		buf[i] = complex(v, 0)
	}
	p.Forward(buf)
	return buf
}
