package engine

import (
	"sync"
	"sync/atomic"

	"ifdk/internal/volume"
)

// Buffer pools for the compute plane.
//
// Acquire/release contract (followed by all pipeline stages):
//
//   - Acquire returns a buffer of exactly the requested shape. Image and
//     Buf contents are UNDEFINED (stages overwrite every element before
//     reading); Volume contents are zeroed, because back-projection
//     accumulates into its destination.
//   - The acquiring stage owns the buffer until it either releases it or
//     hands it to the next pipeline stage, which then owns it. Exactly one
//     owner releases; double release is a caller bug (it would alias two
//     future acquisitions).
//   - Release is optional for correctness — a buffer that escapes (e.g. a
//     volume stored in the result cache and handed to HTTP clients) is
//     simply never released and becomes ordinary garbage. Only buffers that
//     provably do not escape go back.
//   - Release accepts ONLY buffers that came from Acquire. Donating a
//     foreign buffer would skew the in-use byte gauges (see InUseBytes)
//     that pool-aware admission and /v1/metrics rely on.
//   - Pools are process-global and safe for concurrent use; sync.Pool
//     backing means idle buffers are reclaimed by the garbage collector
//     instead of pinning memory forever.
//
// This contract is machine-enforced: internal/analysis/poolcheck (run by
// `go run ./cmd/ifdk-vet ./...`, a required CI step) flow-analyzes every
// caller and rejects double releases, uses after release, foreign
// donations and leaks on early return at build time.

// ImagePool pools *volume.Image by (W, H). The zero value is ready to use.
type ImagePool struct {
	mu    sync.Mutex
	byWH  map[[2]int]*sync.Pool
	inUse atomic.Int64 // bytes currently acquired and not yet released
}

// Images is the shared pool for projection-sized images: filter outputs,
// transpose buffers and pipeline staging all draw from here.
var Images ImagePool

func (p *ImagePool) pool(w, h int) *sync.Pool {
	key := [2]int{w, h}
	p.mu.Lock()
	sp, ok := p.byWH[key]
	if !ok {
		if p.byWH == nil {
			p.byWH = make(map[[2]int]*sync.Pool)
		}
		sp = &sync.Pool{New: func() any { return volume.NewImage(w, h) }}
		p.byWH[key] = sp
	}
	p.mu.Unlock()
	return sp
}

// Acquire returns a W×H image with undefined contents.
func (p *ImagePool) Acquire(w, h int) *volume.Image {
	p.inUse.Add(4 * int64(w) * int64(h))
	return p.pool(w, h).Get().(*volume.Image)
}

// Release returns an image to the pool. The caller must not touch it again.
func (p *ImagePool) Release(img *volume.Image) {
	if img == nil {
		return
	}
	p.inUse.Add(-4 * int64(img.W) * int64(img.H))
	p.pool(img.W, img.H).Put(img)
}

// InUseBytes returns the payload bytes currently checked out of the pool
// (acquired and not yet released). The rare buffer that escapes — acquired
// but intentionally never released — stays counted: the gauge tracks where
// working-set bytes went, which is what pool-aware admission wants to see.
func (p *ImagePool) InUseBytes() int64 { return p.inUse.Load() }

// VolumePool pools *volume.Volume by (Nx, Ny, Nz, Layout). The zero value
// is ready to use.
type VolumePool struct {
	mu    sync.Mutex
	byDim map[volKey]*sync.Pool
	inUse atomic.Int64 // bytes currently acquired and not yet released
}

type volKey struct {
	nx, ny, nz int
	layout     volume.Layout
}

// Volumes is the shared pool for working volumes: per-rank slab pairs and
// intermediate k-major reconstructions.
var Volumes VolumePool

func (p *VolumePool) pool(nx, ny, nz int, layout volume.Layout) *sync.Pool {
	key := volKey{nx, ny, nz, layout}
	p.mu.Lock()
	sp, ok := p.byDim[key]
	if !ok {
		if p.byDim == nil {
			p.byDim = make(map[volKey]*sync.Pool)
		}
		sp = &sync.Pool{New: func() any { return volume.New(nx, ny, nz, layout) }}
		p.byDim[key] = sp
	}
	p.mu.Unlock()
	return sp
}

// Acquire returns a zeroed volume (back-projection accumulates, so reused
// slabs must not leak a previous job's voxels).
func (p *VolumePool) Acquire(nx, ny, nz int, layout volume.Layout) *volume.Volume {
	p.inUse.Add(4 * int64(nx) * int64(ny) * int64(nz))
	v := p.pool(nx, ny, nz, layout).Get().(*volume.Volume)
	clear(v.Data)
	return v
}

// Release returns a volume to the pool. The caller must not touch it again.
func (p *VolumePool) Release(v *volume.Volume) {
	if v == nil {
		return
	}
	p.inUse.Add(-4 * int64(v.Nx) * int64(v.Ny) * int64(v.Nz))
	p.pool(v.Nx, v.Ny, v.Nz, v.Layout).Put(v)
}

// InUseBytes returns the payload bytes currently checked out of the pool;
// see ImagePool.InUseBytes.
func (p *VolumePool) InUseBytes() int64 { return p.inUse.Load() }

// InUseBytes sums the bytes currently checked out of the shared image and
// volume pools — the live working set of every in-flight reconstruction.
// The service exposes it via /v1/metrics next to the *estimated* in-flight
// bytes its admission accounting carries, so the two can be compared.
func InUseBytes() int64 { return Images.InUseBytes() + Volumes.InUseBytes() }

// Buf is a pooled fixed-length slice. It is returned by pointer so that
// putting it back into the underlying sync.Pool does not allocate a box for
// the slice header (the cost this package exists to eliminate).
type Buf[T any] struct {
	Data []T
	home *sync.Pool
}

// Release returns the buffer to its pool. The caller must not touch Data
// again.
func (b *Buf[T]) Release() {
	if b != nil {
		b.home.Put(b)
	}
}

// BufPool pools fixed-length []T scratch buffers by exact length: FFT
// scratch rows, per-worker register files, per-batch matrix tables. The
// zero value is ready to use.
type BufPool[T any] struct {
	mu    sync.Mutex
	byLen map[int]*sync.Pool
}

func (p *BufPool[T]) pool(n int) *sync.Pool {
	p.mu.Lock()
	sp, ok := p.byLen[n]
	if !ok {
		if p.byLen == nil {
			p.byLen = make(map[int]*sync.Pool)
		}
		sp = new(sync.Pool)
		sp.New = func() any { return &Buf[T]{Data: make([]T, n), home: sp} }
		p.byLen[n] = sp
	}
	p.mu.Unlock()
	return sp
}

// Acquire returns a length-n buffer with undefined contents.
func (p *BufPool[T]) Acquire(n int) *Buf[T] {
	return p.pool(n).Get().(*Buf[T])
}

// AcquireZeroed returns a length-n buffer with every element zeroed, for
// callers that accumulate into the scratch rather than overwrite it.
func (p *BufPool[T]) AcquireZeroed(n int) *Buf[T] {
	b := p.Acquire(n)
	clear(b.Data)
	return b
}
