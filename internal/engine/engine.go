// Package engine owns scheduling and memory for the whole compute plane.
//
// The iFDK hot path — filtering, AllGather, back-projection — used to carry
// its own worker pools and allocate fresh images, transpose copies and FFT
// scratch for every projection of every job. With many concurrent
// reconstructions per process (the service layer), that garbage-collector
// pressure, not FLOPs, becomes the binding constraint, mirroring the paper's
// observation that the stages must be engineered around memory traffic to be
// "instant". This package centralizes the two shared resources:
//
//   - Scheduling. ParallelRange and ParallelEach run loop bodies on one
//     process-wide pool of worker goroutines (one goroutine per CPU, started
//     lazily). Callers always participate in their own work, so nested
//     parallel sections and a saturated pool degrade to sequential execution
//     instead of deadlocking, and steady-state dispatch performs no heap
//     allocations (job descriptors are pooled).
//
//   - Memory. ImagePool, VolumePool and BufPool hand out reusable buffers
//     keyed by shape. See pool.go for the acquire/release contract that the
//     pipeline stages follow.
//
// Determinism. The scheduler assigns disjoint index chunks using the same
// split formula for a given (n, workers) pair regardless of which worker
// executes which chunk, so any computation that was deterministic under a
// private goroutine loop (back-projection's per-voxel accumulation order)
// stays bit-identical under the shared pool.
package engine

import (
	"runtime"
	"sync"
	"sync/atomic"
)

var (
	startOnce sync.Once
	taskq     chan *job
	poolSize  int
)

// start launches the process-wide worker pool: one goroutine per logical
// CPU, all feeding from one queue. Workers never block on anything but the
// queue itself, so the pool cannot deadlock.
func start() {
	poolSize = runtime.GOMAXPROCS(0)
	taskq = make(chan *job, 16*poolSize)
	for w := 0; w < poolSize; w++ {
		go func() {
			for j := range taskq {
				j.run()
				j.release()
			}
		}()
	}
}

// Workers returns the size of the shared pool (GOMAXPROCS at first use).
func Workers() int {
	startOnce.Do(start)
	return poolSize
}

// job is one parallel section: [0, n) split into chunks claimed by an
// atomic cursor. Jobs are pooled; refs counts the goroutines (caller +
// enqueued helpers) that may still touch the descriptor.
type job struct {
	body   func(lo, hi int)
	n      int
	chunks int
	next   atomic.Int64
	refs   atomic.Int64
	wg     sync.WaitGroup
}

var jobPool = sync.Pool{New: func() any { return new(job) }}

// run claims and executes chunks until none remain. Chunk c covers
// [c·n/chunks, (c+1)·n/chunks) — the same split parallelRange used when
// every stage rolled its own pool, preserving accumulation determinism.
func (j *job) run() {
	for {
		c := int(j.next.Add(1)) - 1
		if c >= j.chunks {
			return
		}
		lo := c * j.n / j.chunks
		hi := (c + 1) * j.n / j.chunks
		if hi > lo {
			j.body(lo, hi)
		}
		j.wg.Done()
	}
}

// release drops one reference; the last reference returns the descriptor to
// the pool. A helper may dequeue a job after all its chunks are done — it
// then runs zero chunks and merely releases, which is why reuse must wait
// for refs to drain.
func (j *job) release() {
	if j.refs.Add(-1) == 0 {
		j.body = nil
		jobPool.Put(j)
	}
}

// normalize resolves a caller worker count: ≤ 0 means the shared pool size.
func normalize(workers int) int {
	if workers <= 0 {
		return Workers()
	}
	return workers
}

// dispatch splits [0, n) into chunks and executes them on up to `para`
// concurrent goroutines (the caller plus para-1 pool helpers). The caller
// always works too and returns only after every chunk has completed.
func dispatch(n, chunks, para int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if chunks > n {
		chunks = n
	}
	if para > chunks {
		para = chunks
	}
	if chunks <= 1 || para <= 1 {
		body(0, n)
		return
	}
	startOnce.Do(start)
	j := jobPool.Get().(*job)
	j.body, j.n, j.chunks = body, n, chunks
	j.next.Store(0)
	j.wg.Add(chunks)
	helpers := para - 1
	j.refs.Store(int64(helpers) + 1)
	enq := 0
	for ; enq < helpers; enq++ {
		select {
		case taskq <- j:
		default:
			// Queue saturated: the caller (and any helpers that did
			// enqueue) absorb the remaining chunks.
			j.refs.Add(int64(enq - helpers))
			goto work
		}
	}
work:
	j.run()
	j.wg.Wait()
	j.release()
}

// ParallelRange splits [0, n) into one contiguous chunk per worker and runs
// body(lo, hi) concurrently on the shared pool (workers ≤ 0 means the pool
// size). It replaces the per-package goroutine loops the compute stages used
// to carry. The call returns after all chunks complete.
func ParallelRange(n, workers int, body func(lo, hi int)) {
	w := normalize(workers)
	dispatch(n, w, w, body)
}

// ParallelEach runs body(i) for every i in [0, n) with dynamic load
// balancing: each index is claimed individually, so expensive items do not
// serialize behind a static split. Used by batch filtering, where row counts
// are equal but cache behaviour is not.
func ParallelEach(n, workers int, body func(i int)) {
	w := normalize(workers)
	dispatch(n, n, w, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}
