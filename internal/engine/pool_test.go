package engine

import (
	"testing"

	"ifdk/internal/race"
	"ifdk/internal/volume"
)

func TestImagePoolShapeAndReuse(t *testing.T) {
	var p ImagePool
	a := p.Acquire(16, 8)
	if a.W != 16 || a.H != 8 || len(a.Data) != 16*8 {
		t.Fatalf("acquired image %dx%d (len %d)", a.W, a.H, len(a.Data))
	}
	a.Data[0] = 42
	p.Release(a)
	b := p.Acquire(16, 8)
	if b != a {
		// Not guaranteed by sync.Pool, but with no GC between Put and Get
		// on one goroutine the buffer comes back; a failure here is a
		// smell, not a spec violation.
		t.Logf("pool did not reuse the image (allowed, but unexpected)")
	}
	c := p.Acquire(8, 16) // different shape must be a different buffer
	if c == a {
		t.Fatal("pool returned a 16x8 buffer for an 8x16 request")
	}
	p.Release(b)
	p.Release(c)
	p.Release(nil) // must not panic
}

func TestVolumePoolZeroesOnAcquire(t *testing.T) {
	var p VolumePool
	v := p.Acquire(4, 4, 4, volume.KMajor)
	v.Fill(7)
	p.Release(v)
	w := p.Acquire(4, 4, 4, volume.KMajor)
	for n, x := range w.Data {
		if x != 0 {
			t.Fatalf("reused volume not zeroed at %d: %g", n, x)
		}
	}
	if w.Nx != 4 || w.Ny != 4 || w.Nz != 4 || w.Layout != volume.KMajor {
		t.Fatalf("acquired volume has wrong shape: %+v", w)
	}
	p.Release(w)
	p.Release(nil)
}

func TestVolumePoolKeysByLayout(t *testing.T) {
	var p VolumePool
	k := p.Acquire(3, 3, 3, volume.KMajor)
	p.Release(k)
	i := p.Acquire(3, 3, 3, volume.IMajor)
	if i.Layout != volume.IMajor {
		t.Fatalf("layout %v leaked across pool keys", i.Layout)
	}
	p.Release(i)
}

func TestBufPoolLengthsAndRelease(t *testing.T) {
	var p BufPool[float32]
	b := p.Acquire(33)
	if len(b.Data) != 33 {
		t.Fatalf("acquired %d floats, want 33", len(b.Data))
	}
	b.Data[32] = 1
	b.Release()
	c := p.Acquire(64)
	if len(c.Data) != 64 {
		t.Fatalf("acquired %d floats, want 64", len(c.Data))
	}
	c.Release()
	var q BufPool[complex64]
	z := q.Acquire(5)
	if len(z.Data) != 5 {
		t.Fatalf("acquired %d complex64, want 5", len(z.Data))
	}
	z.Release()
}

// Steady-state acquire/release cycles must not allocate — this is the
// zero-per-projection guarantee for the filter scratch and staging images.
func TestPoolsSteadyStateAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("race instrumentation allocates")
	}
	var ip ImagePool
	var bp BufPool[float32]
	for i := 0; i < 50; i++ {
		img := ip.Acquire(32, 4)
		ip.Release(img)
		b := bp.Acquire(128)
		b.Release()
	}
	avg := testing.AllocsPerRun(200, func() {
		img := ip.Acquire(32, 4)
		ip.Release(img)
		b := bp.Acquire(128)
		b.Release()
	})
	if avg > 1 {
		t.Errorf("pool round trip allocates %.2f objects/op in steady state", avg)
	}
}

func TestPoolInUseGauges(t *testing.T) {
	var ip ImagePool
	var vp VolumePool
	if ip.InUseBytes() != 0 || vp.InUseBytes() != 0 {
		t.Fatal("fresh pools report in-use bytes")
	}
	img := ip.Acquire(16, 8)
	if got := ip.InUseBytes(); got != 4*16*8 {
		t.Fatalf("image in-use = %d, want %d", got, 4*16*8)
	}
	vol := vp.Acquire(4, 4, 4, volume.KMajor)
	if got := vp.InUseBytes(); got != 4*4*4*4 {
		t.Fatalf("volume in-use = %d, want %d", got, 4*4*4*4)
	}
	ip.Release(img)
	vp.Release(vol)
	if ip.InUseBytes() != 0 || vp.InUseBytes() != 0 {
		t.Fatalf("gauges nonzero after release: images %d, volumes %d",
			ip.InUseBytes(), vp.InUseBytes())
	}
	ip.Release(nil) // nil release must not move the gauge
	vp.Release(nil)
	if ip.InUseBytes() != 0 || vp.InUseBytes() != 0 {
		t.Fatal("nil release moved a gauge")
	}
}
