package engine

import (
	"sync/atomic"
	"testing"

	"ifdk/internal/race"
)

// Every index must be visited exactly once, for any n/workers combination
// including degenerate ones.
func TestParallelRangeCoversExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 1000} {
		for _, workers := range []int{0, 1, 2, 3, 16, 2000} {
			counts := make([]int32, n)
			ParallelRange(n, workers, func(lo, hi int) {
				if lo < 0 || hi > n || lo > hi {
					t.Errorf("n=%d w=%d: bad chunk [%d,%d)", n, workers, lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&counts[i], 1)
				}
			})
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("n=%d w=%d: index %d visited %d times", n, workers, i, c)
				}
			}
		}
	}
}

// The chunk split must be the stable formula c·n/chunks so parallel
// accumulation stays deterministic across runs and pool states.
func TestParallelRangeChunkBoundariesStable(t *testing.T) {
	const n, workers = 103, 7
	collect := func() map[int]int {
		m := make(map[int]int)
		done := make(chan [2]int, workers)
		ParallelRange(n, workers, func(lo, hi int) { done <- [2]int{lo, hi} })
		close(done)
		for c := range done {
			m[c[0]] = c[1]
		}
		return m
	}
	a, b := collect(), collect()
	if len(a) != workers || len(b) != workers {
		t.Fatalf("chunk counts %d/%d, want %d", len(a), len(b), workers)
	}
	for lo, hi := range a {
		if b[lo] != hi {
			t.Errorf("chunk [%d,%d) not reproduced (got hi=%d)", lo, hi, b[lo])
		}
	}
}

// Nested parallel sections must complete (callers participate in their own
// work, so a saturated pool degrades to sequential execution, never
// deadlock).
func TestNestedParallelSections(t *testing.T) {
	var total atomic.Int64
	ParallelRange(8, 8, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ParallelEach(50, 4, func(j int) {
				total.Add(1)
			})
		}
	})
	if got := total.Load(); got != 8*50 {
		t.Fatalf("nested total = %d, want %d", got, 8*50)
	}
}

func TestParallelEachCoversExactlyOnce(t *testing.T) {
	const n = 257
	counts := make([]int32, n)
	ParallelEach(n, 0, func(i int) { atomic.AddInt32(&counts[i], 1) })
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

// Concurrent dispatches from many goroutines must not interfere (the whole
// point of a shared pool: many jobs, one set of workers).
func TestConcurrentDispatch(t *testing.T) {
	const gor = 8
	done := make(chan int64, gor)
	for g := 0; g < gor; g++ {
		go func() {
			var sum atomic.Int64
			ParallelRange(500, 4, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					sum.Add(int64(i))
				}
			})
			done <- sum.Load()
		}()
	}
	want := int64(500 * 499 / 2)
	for g := 0; g < gor; g++ {
		if got := <-done; got != want {
			t.Fatalf("dispatch %d: sum = %d, want %d", g, got, want)
		}
	}
}

func TestWorkersPositive(t *testing.T) {
	if Workers() < 1 {
		t.Fatalf("Workers() = %d", Workers())
	}
}

// Steady-state dispatch must not allocate per call (job descriptors are
// pooled); the guarantee the zero-allocation pipeline builds on.
func TestParallelRangeSteadyStateAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("race instrumentation allocates")
	}
	body := func(lo, hi int) {}
	for i := 0; i < 100; i++ { // warm the job pool
		ParallelRange(64, 4, body)
	}
	avg := testing.AllocsPerRun(200, func() { ParallelRange(64, 4, body) })
	// Allow a fraction for rare sync.Pool misses under GC pressure.
	if avg > 1 {
		t.Errorf("ParallelRange allocates %.2f objects/call in steady state", avg)
	}
}
