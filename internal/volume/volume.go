// Package volume is a compatibility shim: the dense float32 containers it
// used to define now live in pkg/volume so that external consumers of
// pkg/client (whose Stream reassembles a *volume.Volume) can name the type.
// Every internal importer keeps working through these aliases; new code may
// import either path — they are the same types, not copies.
package volume

import "ifdk/pkg/volume"

// Layout selects the linear memory order of a Volume.
type Layout = volume.Layout

const (
	// IMajor is the conventional layout: the X (i) index varies fastest.
	IMajor = volume.IMajor
	// KMajor is the proposed layout of Alg. 4: the Z (k) index varies fastest.
	KMajor = volume.KMajor
)

// Volume is a dense 3-D float32 grid; see pkg/volume.
type Volume = volume.Volume

// Image is a dense 2-D float32 matrix; see pkg/volume.
type Image = volume.Image

// Stats summarizes a float32 payload.
type Stats = volume.Stats

// New allocates a zeroed volume with the given dimensions and layout.
func New(nx, ny, nz int, layout Layout) *Volume { return volume.New(nx, ny, nz, layout) }

// NewImage allocates a zeroed W×H image.
func NewImage(w, h int) *Image { return volume.NewImage(w, h) }

// RMSE returns the root-mean-square error between two volumes.
func RMSE(a, b *Volume) (float64, error) { return volume.RMSE(a, b) }

// MaxAbsDiff returns the largest absolute voxel-wise difference between two
// equally sized volumes.
func MaxAbsDiff(a, b *Volume) (float64, error) { return volume.MaxAbsDiff(a, b) }

// ImageRMSE returns the root-mean-square error between two equally sized
// images.
func ImageRMSE(a, b *Image) (float64, error) { return volume.ImageRMSE(a, b) }

// Float32sToBytes serializes a float32 slice to little-endian bytes.
func Float32sToBytes(src []float32) []byte { return volume.Float32sToBytes(src) }

// BytesToFloat32s deserializes little-endian bytes into float32 values.
func BytesToFloat32s(src []byte) ([]float32, error) { return volume.BytesToFloat32s(src) }

// ImageToBytes serializes an image header (W, H as uint32) plus payload.
func ImageToBytes(m *Image) []byte { return volume.ImageToBytes(m) }

// ImageFromBytes reverses ImageToBytes.
func ImageFromBytes(src []byte) (*Image, error) { return volume.ImageFromBytes(src) }

// ImageFromBytesInto decodes a blob into dst, whose dimensions must match
// the encoded header.
func ImageFromBytesInto(dst *Image, src []byte) error { return volume.ImageFromBytesInto(dst, src) }
