package router

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"ifdk/internal/service"
	"ifdk/pkg/api"
	"ifdk/pkg/client"
)

func getJSON(t *testing.T, ctx context.Context, url string, out any) {
	t.Helper()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: HTTP %d: %s", url, resp.StatusCode, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

// One trace ID must survive the whole path: the caller's traceparent enters
// the router, the router interposes its proxy span, the owning backend
// records the lifecycle tree under the same trace, and the router's trace
// endpoint returns the merged view with the hop chain intact —
// caller span <- router.proxy <- job <- (queue.wait, compute, ...).
func TestRouterTraceEndToEnd(t *testing.T) {
	f := startFleet(t, 2, nil)
	ctx := testCtx(t)
	c := client.New(f.routerTS.URL)

	callerTrace, callerSpan := api.NewTraceID(), api.NewSpanID()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, f.routerTS.URL+"/v1/jobs",
		strings.NewReader(`{"phantom":"sphere","nx":16,"np":32}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(api.TraceParentHeader, api.FormatTraceParent(callerTrace, callerSpan))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var v api.View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if v.TraceID != callerTrace {
		t.Fatalf("view trace_id = %q, want the caller's %q", v.TraceID, callerTrace)
	}
	if _, err := c.Await(ctx, v.ID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	var tr api.Trace
	getJSON(t, ctx, f.routerTS.URL+"/v1/jobs/"+v.ID+"/trace", &tr)
	if tr.TraceID != callerTrace {
		t.Fatalf("trace id = %q, want %q", tr.TraceID, callerTrace)
	}
	if tr.Job != v.ID {
		t.Fatalf("trace job = %q, want public id %q", tr.Job, v.ID)
	}
	if !tr.Complete {
		t.Fatal("trace of a settled job must be complete")
	}
	byName := map[string]api.Span{}
	for _, s := range tr.Spans {
		if s.TraceID != callerTrace {
			t.Fatalf("span %s carries trace %q, want %q", s.Name, s.TraceID, callerTrace)
		}
		byName[s.Name] = s
	}
	proxy, ok := byName["router.proxy"]
	if !ok {
		t.Fatalf("no router.proxy span in %d spans", len(tr.Spans))
	}
	if proxy.Service != "router" {
		t.Fatalf("router.proxy service = %q, want router", proxy.Service)
	}
	if proxy.ParentSpanID != callerSpan {
		t.Fatalf("router.proxy parent = %q, want the caller span %q", proxy.ParentSpanID, callerSpan)
	}
	if proxy.DurationSec <= 0 {
		t.Fatal("router.proxy span has no duration")
	}
	job, ok := byName["job"]
	if !ok {
		t.Fatal("no job span")
	}
	if job.ParentSpanID != proxy.SpanID {
		t.Fatalf("job span parent = %q, want the router.proxy span %q", job.ParentSpanID, proxy.SpanID)
	}
	if job.Service != "ifdkd" {
		t.Fatalf("job span service = %q, want ifdkd", job.Service)
	}
	for _, name := range []string{"queue.wait", "compute", "backproject", "reduce", "store"} {
		if _, ok := byName[name]; !ok {
			t.Errorf("backend lifecycle span %q missing from the router-merged trace", name)
		}
	}
}

// The router's own observability surfaces: the fleet /v1/metrics aggregate
// carries summed event drops and per-backend health (consecutive probe
// failures, probe and scrape latency), /v1/backends reports the same fields,
// and GET /metrics serves the ifdk_router_* registry as Prometheus text.
func TestRouterObservabilitySurfaces(t *testing.T) {
	f := startFleet(t, 2, func(int) service.Options {
		// A 2-entry event log under a many-round job forces drops, which
		// must surface in the fleet aggregate.
		return service.Options{Workers: 2, EventLogCap: 2}
	})
	ctx := testCtx(t)
	c := client.New(f.routerTS.URL)

	v, err := c.Submit(ctx, api.Spec{Phantom: "sphere", NX: 16, NP: 64})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Await(ctx, v.ID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	// Wait until the health loop has probed every backend at least once.
	var backends []api.BackendHealth
	deadline := time.Now().Add(5 * time.Second)
	for {
		backends = nil
		getJSON(t, ctx, f.routerTS.URL+"/v1/backends", &backends)
		probed := len(backends) == 2
		for _, b := range backends {
			probed = probed && b.ProbeLatencyMS > 0
		}
		if probed || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, b := range backends {
		if !b.Alive || b.ProbeFails != 0 {
			t.Fatalf("backend %s: alive=%v probe_fails=%d, want alive with 0 fails", b.Name, b.Alive, b.ProbeFails)
		}
		if b.ProbeLatencyMS <= 0 {
			t.Fatalf("backend %s reports no probe latency", b.Name)
		}
	}

	var m api.Metrics
	getJSON(t, ctx, f.routerTS.URL+"/v1/metrics", &m)
	if m.EventDrops <= 0 {
		t.Fatalf("fleet event_drops = %d, want > 0 under a 2-entry event log", m.EventDrops)
	}
	if len(m.Backends) != 2 {
		t.Fatalf("fleet metrics carries %d backends, want 2", len(m.Backends))
	}
	for _, b := range m.Backends {
		if !b.Alive {
			t.Fatalf("backend %s not alive in fleet metrics", b.Name)
		}
		if b.ScrapeLatencyMS <= 0 {
			t.Fatalf("backend %s reports no scrape latency after the fan-in that just scraped it", b.Name)
		}
	}

	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.routerTS.URL+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(blob)
	for _, want := range []string{
		"# TYPE ifdk_router_backend_alive gauge",
		`ifdk_router_backend_alive{backend="b0"} 1`,
		`ifdk_router_backend_alive{backend="b1"} 1`,
		`ifdk_router_backend_probe_failures{backend="b0"} 0`,
		"# TYPE ifdk_router_probe_seconds histogram",
		"# TYPE ifdk_router_scrape_seconds histogram",
		"ifdk_router_reroutes_total 0",
		"ifdk_router_backends 2",
		"ifdk_router_backends_alive 2",
		"ifdk_router_routes 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("router exposition missing %q", want)
		}
	}
	// The probe histogram accumulated at least one observation per backend.
	if !strings.Contains(text, `ifdk_router_probe_seconds_count{backend="b0"}`) {
		t.Error("no probe latency observations for b0")
	}
}
