package router

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ifdk/internal/hpc/pfs"
	"ifdk/internal/service"
	"ifdk/pkg/api"
	"ifdk/pkg/client"
	"ifdk/pkg/volume"
)

// testLogger routes the router's structured log through t.Logf so fleet
// events land in the test output, correctly attributed per test.
func testLogger(t *testing.T) *slog.Logger {
	return slog.New(slog.NewTextHandler(testLogWriter{t}, nil))
}

type testLogWriter struct{ t *testing.T }

func (w testLogWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", strings.TrimRight(string(p), "\n"))
	return len(p), nil
}

// fleet is a router over n real ifdkd backends (full service.Manager +
// HTTP server each), the e2e fixture of the multi-node story.
type fleet struct {
	router   *Router
	routerTS *httptest.Server
	backends []*httptest.Server
	managers []*service.Manager
	names    []string
}

func startFleet(t *testing.T, n int, optFor func(i int) service.Options) *fleet {
	t.Helper()
	f := &fleet{}
	var rbs []Backend
	for i := 0; i < n; i++ {
		opt := service.Options{Workers: 2}
		if optFor != nil {
			opt = optFor(i)
		}
		opt.NodeID = fmt.Sprintf("b%d", i)
		m := service.NewManager(opt)
		ts := httptest.NewServer(service.NewServer(m))
		f.managers = append(f.managers, m)
		f.backends = append(f.backends, ts)
		f.names = append(f.names, opt.NodeID)
		rbs = append(rbs, Backend{Name: opt.NodeID, URL: ts.URL})
	}
	rt, err := New(Options{Backends: rbs, HealthEvery: 25 * time.Millisecond, DeadAfter: 2, Logger: testLogger(t)})
	if err != nil {
		t.Fatal(err)
	}
	f.router = rt
	f.routerTS = httptest.NewServer(rt)
	t.Cleanup(func() {
		f.routerTS.Close()
		rt.Close()
		for i, ts := range f.backends {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			if err := f.managers[i].Shutdown(ctx); err != nil {
				t.Errorf("backend %d shutdown: %v", i, err)
			}
			cancel()
		}
	})
	return f
}

// backendOf maps a fleet job ID back to the node that minted it — the
// NodeID prefix is the attribution.
func backendOf(t *testing.T, id string) string {
	t.Helper()
	node, _, ok := strings.Cut(id, "-")
	if !ok {
		t.Fatalf("job id %q has no node prefix", id)
	}
	return node
}

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	t.Cleanup(cancel)
	return ctx
}

// Rendezvous hashing itself: deterministic, total over candidates, and
// removing one backend moves only that backend's keys.
func TestRendezvousStability(t *testing.T) {
	names := []string{"b0", "b1", "b2"}
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
	}
	first := map[string]string{}
	hit := map[string]int{}
	for _, k := range keys {
		first[k] = rendezvous(k, names)
		hit[first[k]]++
		if got := rendezvous(k, names); got != first[k] {
			t.Fatalf("rendezvous(%q) not deterministic: %s vs %s", k, got, first[k])
		}
	}
	if len(hit) != 3 {
		t.Fatalf("64 keys landed on %d backends, want all 3 used: %v", len(hit), hit)
	}
	// Kill b1: its keys move, everyone else's stay.
	survivors := []string{"b0", "b2"}
	for _, k := range keys {
		got := rendezvous(k, survivors)
		if first[k] != "b1" && got != first[k] {
			t.Fatalf("key %q moved from %s to %s though its backend survived", k, first[k], got)
		}
		if first[k] == "b1" && got == "b1" {
			t.Fatal("dead backend still chosen")
		}
	}
}

// Jobs with distinct cache keys land on distinct backends deterministically,
// and resubmitting an identical spec returns to the same backend — as a
// cache hit, proving placement affinity keeps the fleet cache hot.
func TestRoutingDeterministicSpread(t *testing.T) {
	f := startFleet(t, 3, nil)
	c := client.New(f.routerTS.URL)
	ctx := testCtx(t)

	specs := make([]api.Spec, 8)
	for i := range specs {
		specs[i] = api.Spec{Phantom: []string{"sphere", "shepplogan", "industrial"}[i%3],
			NX: 16, NP: 32 + 32*i}
	}
	placed := map[int]string{}
	used := map[string]bool{}
	for i, s := range specs {
		v, err := c.Submit(ctx, s)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		placed[i] = backendOf(t, v.ID)
		used[placed[i]] = true
		if _, err := c.Await(ctx, v.ID, 5*time.Millisecond); err != nil {
			t.Fatalf("await %d: %v", i, err)
		}
	}
	if len(used) < 2 {
		t.Fatalf("8 distinct keys all landed on %v; rendezvous spread broken", used)
	}
	// Same specs again: same backends, served from their result caches.
	for i, s := range specs {
		v, err := c.Submit(ctx, s)
		if err != nil {
			t.Fatalf("resubmit %d: %v", i, err)
		}
		if got := backendOf(t, v.ID); got != placed[i] {
			t.Fatalf("spec %d moved from %s to %s on resubmission", i, placed[i], got)
		}
		if !v.CacheHit {
			t.Errorf("resubmitted spec %d missed the cache on its own backend", i)
		}
	}
	// The fleet list through the router sees every job exactly once.
	vs, err := c.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for _, v := range vs {
		seen[v.ID]++
	}
	if len(seen) != 16 {
		t.Fatalf("fleet list has %d distinct jobs, want 16", len(seen))
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("job %s listed %d times", id, n)
		}
	}
}

// A mid-run SSE + multipart stream consumer through the router must match a
// direct-backend consumer bit-exactly, with live (unbuffered) delivery and
// exactly-once slices.
func TestStreamThroughRouterBitExact(t *testing.T) {
	// Throttled reads stretch the run so the consumers provably attach
	// mid-run (the stream begins before the job settles).
	f := startFleet(t, 2, func(int) service.Options {
		return service.Options{Workers: 2, PFS: pfs.Config{ReadBW: 2e6, Targets: 1, Throttle: true}}
	})
	c := client.New(f.routerTS.URL)
	ctx := testCtx(t)

	v, err := c.Submit(ctx, api.Spec{Phantom: "shepplogan", NX: 16, NP: 128})
	if err != nil {
		t.Fatal(err)
	}
	owner := backendOf(t, v.ID)

	// SSE watcher through the router, concurrent with the stream consumer.
	type watchOut struct {
		rounds, slices int
		state          api.State
		err            error
	}
	wc := make(chan watchOut, 1)
	go func() {
		var out watchOut
		out.state, out.err = c.Watch(ctx, v.ID, func(e api.Event) error {
			switch e.Type {
			case api.EventRound:
				out.rounds++
			case api.EventSlice:
				out.slices++
			}
			return nil
		})
		wc <- out
	}()

	var sawRunningMidStream bool
	res, err := c.Stream(ctx, v.ID, func(z, total int) {
		if !sawRunningMidStream {
			if view, err := c.Get(ctx, v.ID); err == nil && view.State == api.StateRunning {
				sawRunningMidStream = true
			}
		}
	})
	if err != nil {
		t.Fatalf("stream through router: %v", err)
	}
	w := <-wc
	if w.err != nil {
		t.Fatalf("watch through router: %v", w.err)
	}
	if w.state != api.StateDone || res.Final.State != api.StateDone {
		t.Fatalf("terminal states: watch %s, stream %s", w.state, res.Final.State)
	}
	if w.slices != 16 || res.Slices != 16 {
		t.Fatalf("SSE delivered %d slice events, stream %d parts; want 16 each", w.slices, res.Slices)
	}
	if w.rounds < 1 {
		t.Error("no round progress events crossed the router")
	}
	if !sawRunningMidStream {
		t.Log("note: job settled before a mid-stream running state was observed (timing)")
	}

	// The same stream taken directly from the owning backend must be
	// bit-identical.
	var directURL string
	for i, name := range f.names {
		if name == owner {
			directURL = f.backends[i].URL
		}
	}
	direct, err := client.New(directURL).Stream(ctx, v.ID, nil)
	if err != nil {
		t.Fatalf("direct stream: %v", err)
	}
	if len(direct.Volume.Data) != len(res.Volume.Data) {
		t.Fatalf("volume sizes differ: %d vs %d", len(direct.Volume.Data), len(res.Volume.Data))
	}
	for i := range direct.Volume.Data {
		if direct.Volume.Data[i] != res.Volume.Data[i] {
			t.Fatalf("routed stream differs from direct stream at voxel %d", i)
		}
	}

	// /slice/{z} proxies too (PNG of a written slice).
	resp, err := http.Get(f.routerTS.URL + "/v1/jobs/" + v.ID + "/slice/8")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != "image/png" {
		t.Fatalf("slice through router: HTTP %d %s", resp.StatusCode, resp.Header.Get("Content-Type"))
	}

	// SSE resume through the router: a watcher reattaching with
	// Last-Event-ID must replay only the tail.
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, f.routerTS.URL+"/v1/jobs/"+v.ID+"/events", nil)
	req.Header.Set("Last-Event-ID", "3")
	eresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer eresp.Body.Close()
	first, ok := firstSSEEvent(t, eresp.Body)
	if !ok {
		t.Fatal("resumed SSE through router delivered nothing")
	}
	if first.Seq <= 3 {
		t.Fatalf("resume replayed seq %d <= Last-Event-ID 3", first.Seq)
	}
}

// firstSSEEvent decodes the first data frame of an SSE body.
func firstSSEEvent(t *testing.T, body io.Reader) (api.Event, bool) {
	t.Helper()
	sc := bufio.NewScanner(body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var e api.Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &e); err != nil {
			t.Fatalf("bad SSE payload: %v", err)
		}
		return e, true
	}
	return api.Event{}, false
}

// The route table is bounded: terminal routes are pruned oldest-first once
// MaxRoutes is exceeded, and pruned jobs remain reachable through the
// backend probe.
func TestRouteTableBounded(t *testing.T) {
	f := startFleet(t, 2, nil)
	f.router.opt.MaxRoutes = 4 // shrink the bound before any submissions
	c := client.New(f.routerTS.URL)
	ctx := testCtx(t)
	var ids []string
	for i := 0; i < 10; i++ {
		v, err := c.Submit(ctx, api.Spec{Phantom: "sphere", NX: 16, NP: 32 + 32*i})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
		if _, err := c.Await(ctx, v.ID, 5*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	f.router.mu.Lock()
	routes := len(f.router.jobs)
	f.router.mu.Unlock()
	if routes > 4 {
		t.Fatalf("route table holds %d routes, want <= 4", routes)
	}
	// A pruned job is still reachable: resolve probes the backends.
	v, err := c.Get(ctx, ids[0])
	if err != nil || v.ID != ids[0] || v.State != api.StateDone {
		t.Fatalf("pruned job via probe: %+v, %v", v, err)
	}
}

// Fleet metrics aggregate across backends.
func TestMetricsFanIn(t *testing.T) {
	f := startFleet(t, 3, func(int) service.Options { return service.Options{Workers: 2} })
	c := client.New(f.routerTS.URL)
	ctx := testCtx(t)
	for i := 0; i < 4; i++ {
		v, err := c.Submit(ctx, api.Spec{Phantom: "sphere", NX: 16, NP: 32 + 32*i})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Await(ctx, v.ID, 5*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Workers != 6 {
		t.Errorf("aggregate workers = %d, want 6 (3 backends × 2)", m.Workers)
	}
	if m.Completed != 4 {
		t.Errorf("aggregate completed = %d, want 4", m.Completed)
	}
	if m.Jobs["done"] != 4 {
		t.Errorf("aggregate jobs[done] = %d, want 4", m.Jobs["done"])
	}

	// Per-backend health listing.
	resp, err := http.Get(f.routerTS.URL + "/v1/backends")
	if err != nil {
		t.Fatal(err)
	}
	var bh []api.BackendHealth
	err = json.NewDecoder(resp.Body).Decode(&bh)
	resp.Body.Close()
	if err != nil || len(bh) != 3 {
		t.Fatalf("backends = %+v, %v", bh, err)
	}
	jobs := 0
	for _, b := range bh {
		if !b.Alive {
			t.Errorf("backend %s reported dead", b.Name)
		}
		jobs += b.Jobs
	}
	if jobs != 4 {
		t.Errorf("routed job count = %d, want 4", jobs)
	}
}

// Killing a backend reroutes every non-terminal job the router saw on it —
// queued AND running — to a surviving backend, preserving their public IDs.
// The running job is re-executed from scratch on the survivor (deterministic
// reconstruction makes the re-run equivalent); the client polling it sees it
// complete under its original ID, never a dead end.
func TestFailoverPendingJobsOnBackendDeath(t *testing.T) {
	// One worker per backend and slow reads: the first job per backend
	// runs for seconds, everything behind it stays queued.
	f := startFleet(t, 3, func(int) service.Options {
		return service.Options{Workers: 1, CacheBytes: -1,
			PFS: pfs.Config{ReadBW: 1e6, Targets: 1, Throttle: true}}
	})
	c := client.New(f.routerTS.URL)
	ctx := testCtx(t)

	// Submit distinct specs until some backend owns at least two jobs
	// (first = running, rest = queued behind the single worker).
	owners := map[string][]string{} // backend → job IDs in submit order
	var victim string
	for i := 0; i < 24 && victim == ""; i++ {
		v, err := c.Submit(ctx, api.Spec{Phantom: "sphere", NX: 16, NP: 64 + 32*i})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		b := backendOf(t, v.ID)
		owners[b] = append(owners[b], v.ID)
		if len(owners[b]) >= 3 {
			victim = b
		}
	}
	if victim == "" {
		t.Fatalf("no backend accumulated 3 jobs: %v", owners)
	}
	runningID, queuedIDs := owners[victim][0], owners[victim][1:]

	// Observe the first job running through the router (recording its state
	// — the predicate that exempts it from failover). It may still be
	// staging; poll briefly.
	deadline := time.Now().Add(30 * time.Second)
	for {
		view, err := c.Get(ctx, runningID)
		if err != nil {
			t.Fatal(err)
		}
		if view.State == api.StateRunning {
			break
		}
		if view.State.Terminal() {
			t.Skipf("blocker finished before the kill (%s); environment too fast for this scenario", view.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("blocker stuck %s", view.State)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Kill the victim backend: hard server close, manager torn down.
	var victimIdx int
	for i, name := range f.names {
		if name == victim {
			victimIdx = i
		}
	}
	f.backends[victimIdx].CloseClientConnections()
	f.backends[victimIdx].Close()

	// The router's health loop must mark it dead and reroute every
	// non-terminal job — the queued ones and the one caught running; their
	// public IDs keep working through the router and complete on a
	// surviving backend.
	for _, id := range append([]string{runningID}, queuedIDs...) {
		final, err := c.Await(ctx, id, 10*time.Millisecond)
		if err != nil {
			t.Fatalf("rerouted job %s: %v", id, err)
		}
		if final.State != api.StateDone {
			t.Fatalf("rerouted job %s ended %s: %s", id, final.State, final.Error)
		}
		if final.ID != id {
			t.Fatalf("public ID changed across failover: %s -> %s", id, final.ID)
		}
	}
	if got := f.router.Reroutes(); got < int64(len(queuedIDs)+1) {
		t.Errorf("router rerouted %d jobs, want >= %d", got, len(queuedIDs)+1)
	}

	// The dead backend is reported in the health listing.
	resp, err := http.Get(f.routerTS.URL + "/v1/backends")
	if err != nil {
		t.Fatal(err)
	}
	var bh []api.BackendHealth
	err = json.NewDecoder(resp.Body).Decode(&bh)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range bh {
		if b.Name == victim && b.Alive {
			t.Errorf("victim %s still reported alive", victim)
		}
	}
}

// The relay tentpole: a client watching AND streaming a job through the
// router survives the owning backend's death mid-run. The relays hold the
// client connections open across the takeover, the job re-executes on a
// survivor under its original public ID, and the client sees one gapless
// strictly-increasing event stream plus an exactly-once slice set — never
// "unavailable", never a duplicate.
func TestRelaySurvivesBackendKillMidRun(t *testing.T) {
	f := startFleet(t, 2, func(int) service.Options {
		return service.Options{Workers: 1, CacheBytes: -1,
			PFS: pfs.Config{ReadBW: 1e6, Targets: 1, Throttle: true}}
	})
	c := client.New(f.routerTS.URL)
	ctx := testCtx(t)

	v, err := c.Submit(ctx, api.Spec{Phantom: "shepplogan", NX: 16, NP: 96})
	if err != nil {
		t.Fatal(err)
	}
	id := v.ID
	victim := backendOf(t, id)

	// Wait until the job is provably mid-run before attaching the consumers.
	deadline := time.Now().Add(30 * time.Second)
	for {
		view, err := c.Get(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if view.State == api.StateRunning {
			break
		}
		if view.State.Terminal() {
			t.Skipf("job finished before the kill (%s); environment too fast for this scenario", view.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck %s", view.State)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// SSE watcher through the relay. Every event must carry the public ID
	// with strictly increasing sequence numbers — across the takeover.
	type watchOut struct {
		state api.State
		err   error
	}
	firstEvent := make(chan struct{})
	gotEvent := false
	var lastSeq int64
	wc := make(chan watchOut, 1)
	go func() {
		var out watchOut
		out.state, out.err = c.Watch(ctx, id, func(e api.Event) error {
			if !gotEvent {
				gotEvent = true
				close(firstEvent)
			}
			if e.Job != id {
				return fmt.Errorf("event for %q leaked a backend ID", e.Job)
			}
			if e.Seq <= lastSeq {
				return fmt.Errorf("seq not strictly increasing: %d after %d", e.Seq, lastSeq)
			}
			lastSeq = e.Seq
			return nil
		})
		wc <- out
	}()

	// Multipart stream consumer through the relay, concurrently.
	type streamOut struct {
		res *client.StreamResult
		err error
	}
	sc := make(chan streamOut, 1)
	go func() {
		res, err := c.Stream(ctx, id, nil)
		sc <- streamOut{res, err}
	}()

	// Both consumers attached (the watcher demonstrably receiving frames):
	// kill the owning backend mid-run.
	select {
	case <-firstEvent:
	case <-time.After(30 * time.Second):
		t.Fatal("watcher received nothing before the kill")
	}
	var victimIdx int
	for i, name := range f.names {
		if name == victim {
			victimIdx = i
		}
	}
	f.backends[victimIdx].CloseClientConnections()
	f.backends[victimIdx].Close()

	w := <-wc
	if w.err != nil {
		t.Fatalf("watch across the takeover: %v", w.err)
	}
	if w.state != api.StateDone {
		t.Fatalf("watch ended %s, want done", w.state)
	}
	s := <-sc
	if s.err != nil {
		t.Fatalf("stream across the takeover: %v", s.err)
	}
	if s.res.Final.State != api.StateDone || s.res.Final.ID != id {
		t.Fatalf("stream final = %+v, want done under the original ID", s.res.Final)
	}
	if s.res.Slices != 16 {
		t.Fatalf("stream delivered %d slices, want exactly 16", s.res.Slices)
	}
	if got := f.router.relayTakeovers.Load(); got < 1 {
		t.Errorf("relay takeovers = %d, want >= 1", got)
	}

	// Deterministic re-execution: the relayed volume is bit-identical to the
	// survivor's own copy of the job (known there under its takeover ID).
	var survivorURL string
	for i, name := range f.names {
		if name != victim {
			survivorURL = f.backends[i].URL
		}
	}
	f.router.mu.Lock()
	route, ok := f.router.jobs[id]
	f.router.mu.Unlock()
	if !ok {
		t.Fatalf("route for %s gone after the takeover", id)
	}
	direct, err := client.New(survivorURL).Stream(ctx, route.backendID, nil)
	if err != nil {
		t.Fatalf("direct stream from survivor: %v", err)
	}
	for i := range direct.Volume.Data {
		if direct.Volume.Data[i] != s.res.Volume.Data[i] {
			t.Fatalf("relayed volume differs from the survivor's at voxel %d", i)
		}
	}
}

// Terminal routes expire after TerminalTTL without MaxRoutes pressure; the
// job stays reachable because resolve falls back to probing the backends.
func TestTerminalRouteTTLExpiry(t *testing.T) {
	f := startFleet(t, 2, nil)
	f.router.mu.Lock()
	f.router.opt.TerminalTTL = 50 * time.Millisecond // prune rides the 25ms probe tick
	f.router.mu.Unlock()
	c := client.New(f.routerTS.URL)
	ctx := testCtx(t)

	v, err := c.Submit(ctx, api.Spec{Phantom: "sphere", NX: 16, NP: 32})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Await(ctx, v.ID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		f.router.mu.Lock()
		_, present := f.router.jobs[v.ID]
		f.router.mu.Unlock()
		if !present {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("terminal route for %s never expired", v.ID)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := f.router.routesExpired.Load(); got < 1 {
		t.Errorf("routes expired = %d, want >= 1", got)
	}
	got, err := c.Get(ctx, v.ID)
	if err != nil || got.ID != v.ID || got.State != api.StateDone {
		t.Fatalf("expired-route job unreachable: %+v, %v", got, err)
	}
}

// A progressive stream relayed through the router must keep both tiers: the
// coarse preview parts (factor-marked, coarse z indices) strictly before
// the first full-resolution part, and every full slice after — the relay's
// takeover dedup keys on (preview factor, z), so a full slice must never be
// swallowed because a preview slice already used its index. The preview
// artifact endpoint proxies through as well.
func TestProgressiveStreamThroughRouter(t *testing.T) {
	f := startFleet(t, 2, nil)
	ctx := testCtx(t)
	c := client.New(f.routerTS.URL)

	v, err := c.Submit(ctx, api.Spec{Phantom: "shepplogan", NX: 16, R: 2, C: 2, Quality: api.QualityProgressive})
	if err != nil {
		t.Fatal(err)
	}
	sawFull := false
	res, err := c.StreamProgressive(ctx, v.ID, client.StreamHooks{
		OnSlice: func(int, int) { sawFull = true },
		OnPreview: func(z, total, factor int) {
			if sawFull {
				t.Errorf("preview part z=%d after a full-resolution part", z)
			}
			if factor != 2 || total != 8 {
				t.Errorf("preview part z=%d factor=%d total=%d, want 2/8", z, factor, total)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.State != api.StateDone {
		t.Fatalf("stream ended %s (%s), want done", res.Final.State, res.Final.Error)
	}
	if res.PreviewFactor != 2 || res.PreviewSlices != 8 || res.Preview == nil || res.Preview.Nz != 8 {
		t.Fatalf("preview tier lost in relay: factor=%d slices=%d", res.PreviewFactor, res.PreviewSlices)
	}
	// The dedup regression: all 16 full slices must survive the relay even
	// though preview parts already used indices 0..7.
	if res.Slices != 16 || res.Volume == nil || res.Volume.Nz != 16 {
		t.Fatalf("full tier truncated through the router: %d slices", res.Slices)
	}

	pv, factor, err := c.Preview(ctx, v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if factor != 2 || pv.Nz != 8 {
		t.Fatalf("proxied preview artifact: factor=%d nz=%d, want 2/8", factor, pv.Nz)
	}
	if d, err := volume.MaxAbsDiff(pv, res.Preview); err != nil || d != 0 {
		t.Fatalf("preview artifact differs from streamed tier: maxAbsDiff=%g err=%v", d, err)
	}

	// Quality-aware routing: preview-quality submissions of the same scan
	// may land on a different shard (distinct key), but must be deterministic.
	pk1, err := service.SpecKey(api.Spec{Phantom: "shepplogan", NX: 16, R: 2, C: 2, Quality: api.QualityPreview})
	if err != nil {
		t.Fatal(err)
	}
	fk, err := service.SpecKey(api.Spec{Phantom: "shepplogan", NX: 16, R: 2, C: 2})
	if err != nil {
		t.Fatal(err)
	}
	if pk1 == fk {
		t.Fatal("preview and full specs share a routing key")
	}
}
