package router

import (
	"ifdk/internal/obs"

	"ifdk/pkg/api"
)

// routerMetrics is the router's own observability registry — one level above
// the per-daemon registries it scrapes. Everything here is about the *fleet
// fabric*: backend liveness, probe and scrape latency, transport failures on
// the request path, and failover activity. Per-job reconstruction metrics
// stay on the backends; /v1/metrics aggregates those separately.
type routerMetrics struct {
	reg *obs.Registry

	alive         *obs.GaugeVec     // ifdk_router_backend_alive{backend}
	probeFails    *obs.GaugeVec     // ifdk_router_backend_probe_failures{backend} (consecutive)
	probeSeconds  *obs.HistogramVec // ifdk_router_probe_seconds{backend}
	scrapeSeconds *obs.HistogramVec // ifdk_router_scrape_seconds{backend}
	backendErrors *obs.CounterVec   // ifdk_router_backend_errors_total{backend}
}

// newRouterMetrics builds the registry over a router whose backend set is
// already final (New registers backends before starting the health loop).
// Per-backend series are pre-touched so every backend exposes a full set of
// families from the first scrape, not only after its first probe.
func newRouterMetrics(rt *Router) *routerMetrics {
	reg := obs.NewRegistry()
	m := &routerMetrics{
		reg: reg,
		alive: reg.GaugeVec("ifdk_router_backend_alive",
			"Backend liveness as seen by the health loop (1 alive, 0 dead).", "backend"),
		probeFails: reg.GaugeVec("ifdk_router_backend_probe_failures",
			"Consecutive failed health probes per backend; resets to 0 on success.", "backend"),
		probeSeconds: reg.HistogramVec("ifdk_router_probe_seconds",
			"Health probe round-trip latency per backend.", nil, "backend"),
		scrapeSeconds: reg.HistogramVec("ifdk_router_scrape_seconds",
			"Per-backend /v1/metrics scrape latency during fleet aggregation.", nil, "backend"),
		backendErrors: reg.CounterVec("ifdk_router_backend_errors_total",
			"Request-path transport failures per backend (client-side cancellations excluded).", "backend"),
	}
	reg.CounterFunc("ifdk_router_reroutes_total",
		"Non-terminal jobs resubmitted to a surviving backend after a backend death.",
		func() float64 { return float64(rt.reroutes.Load()) })
	reg.CounterFunc("ifdk_router_failover_running_total",
		"Of the reroutes, jobs last observed running — re-executed from scratch on the survivor.",
		func() float64 { return float64(rt.reroutesRunning.Load()) })
	reg.CounterFunc("ifdk_router_relay_takeovers_total",
		"Relayed event/slice streams that reattached to a surviving backend mid-stream.",
		func() float64 { return float64(rt.relayTakeovers.Load()) })
	reg.CounterFunc("ifdk_router_routes_expired_total",
		"Terminal job routes dropped by TerminalTTL expiry.",
		func() float64 { return float64(rt.routesExpired.Load()) })
	reg.GaugeFunc("ifdk_router_routes",
		"Job routes currently tracked (bounded by MaxRoutes).",
		func() float64 {
			rt.mu.Lock()
			defer rt.mu.Unlock()
			return float64(len(rt.jobs))
		})
	reg.GaugeFunc("ifdk_router_backends",
		"Backends configured behind this router.",
		func() float64 {
			rt.mu.Lock()
			defer rt.mu.Unlock()
			return float64(len(rt.backends))
		})
	reg.GaugeFunc("ifdk_router_backends_alive",
		"Backends currently considered alive.",
		func() float64 {
			rt.mu.Lock()
			defer rt.mu.Unlock()
			n := 0
			for _, b := range rt.backends {
				if b.alive {
					n++
				}
			}
			return float64(n)
		})
	for _, b := range rt.opt.Backends {
		m.alive.With(b.Name).Set(1)
		m.probeFails.With(b.Name).Set(0)
		m.backendErrors.With(b.Name).Add(0)
	}
	return m
}

// backendHealth snapshots per-backend health, consecutive probe failures,
// last probe/scrape latencies and route counts — the shared payload of
// GET /v1/backends and the Backends field of the fleet /v1/metrics.
func (rt *Router) backendHealth() []api.BackendHealth {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	counts := map[string]int{}
	for _, route := range rt.jobs {
		counts[route.backend]++
	}
	out := make([]api.BackendHealth, 0, len(rt.names))
	for _, name := range rt.names {
		b := rt.backends[name]
		out = append(out, api.BackendHealth{
			Name:            name,
			URL:             b.URL,
			Alive:           b.alive,
			Jobs:            counts[name],
			ProbeFails:      b.fails,
			ProbeLatencyMS:  b.probeLatency.Seconds() * 1e3,
			ScrapeLatencyMS: b.scrapeLatency.Seconds() * 1e3,
		})
	}
	return out
}
