package router

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"mime/multipart"
	"net/http"
	"net/textproto"
	"strconv"
	"strings"
	"time"

	"ifdk/pkg/api"
)

// The long-lived streaming endpoints — SSE /events and multipart /stream —
// are not reverse-proxied: the router terminates them and re-emits every
// frame itself. A raw proxy ties the client's connection to one backend's
// lifetime, so a backend death mid-stream surfaces as a dropped connection
// and, on reconnect, "unavailable" until the client gives up. The relay
// instead holds the client connection open across the death: it notices the
// backend stream break, waits for the health loop to fail the job over to a
// survivor (failover resubmits it under a fresh backend ID), reattaches to
// the survivor's stream, and keeps forwarding — deduplicating what the
// re-execution replays.
//
// Deduplication leans on determinism. A re-executed job publishes the same
// event sequence its first execution did (same Spec → same rounds, same
// slices, same publish count), so the SSE relay forwards only events whose
// Seq exceeds the highest already delivered and the client sees one gapless,
// strictly-increasing stream with no restart. Slice parts are bit-identical
// across executions, so the multipart relay forwards each z exactly once,
// whichever execution produced it.

// relayPoll is the reattach probe period while a takeover is in flight.
const relayPoll = 25 * time.Millisecond

var (
	errNoRoute     = errors.New("router: job unknown in the fleet")
	errBackendDown = errors.New("router: job's backend is down")
)

// dialJob opens a streaming GET against the job's *current* backend (the
// route table moves under failover, so every reattach re-resolves). A non-OK
// backend response comes back as *rawResponse; transport failures count
// against the backend's health.
func (rt *Router) dialJob(ctx context.Context, id, sub string, hdr map[string]string) (*http.Response, string, error) {
	route, ok := rt.resolve(ctx, id)
	if !ok {
		return nil, "", errNoRoute
	}
	b, errCode := rt.routeTarget(route)
	if errCode != "" {
		return nil, route.backend, errBackendDown
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.URL+"/v1/jobs/"+route.backendID+sub, nil)
	if err != nil {
		return nil, route.backend, err
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := rt.streamClient.Do(req)
	if err != nil {
		rt.markFailure(ctx, route.backend)
		return nil, route.backend, err
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		return nil, route.backend, &rawResponse{status: resp.StatusCode, retryAfter: resp.Header.Get("Retry-After"), body: body}
	}
	return resp, route.backend, nil
}

// fetchView reads the job's current view through the route table (public ID
// rewritten), folding the observed state in. It is the relay's tie-breaker
// when a backend stream ends without a terminal frame: if the fleet already
// knows the outcome, the relay can settle the client instead of waiting.
func (rt *Router) fetchView(ctx context.Context, id string) (api.View, bool) {
	route, ok := rt.resolve(ctx, id)
	if !ok {
		return api.View{}, false
	}
	b, errCode := rt.routeTarget(route)
	if errCode != "" {
		return api.View{}, false
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.URL+"/v1/jobs/"+route.backendID, nil)
	if err != nil {
		return api.View{}, false
	}
	resp, err := rt.opt.Client.Do(req)
	if err != nil {
		rt.markFailure(ctx, route.backend)
		return api.View{}, false
	}
	defer resp.Body.Close()
	var v api.View
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&v) != nil {
		return api.View{}, false
	}
	rt.noteState(id, v.ID, v.State)
	v.ID = id
	return v, true
}

// noteState folds a state observed for a public job into its route.
func (rt *Router) noteState(id, backendID string, st api.State) {
	rt.mu.Lock()
	if cur, ok := rt.jobs[id]; ok && cur.backendID == backendID {
		cur.setState(st)
	}
	rt.mu.Unlock()
}

// terminalEventType maps a terminal state to its stream-ending event type.
func terminalEventType(st api.State) api.EventType {
	switch st {
	case api.StateFailed:
		return api.EventFailed
	case api.StateCancelled:
		return api.EventCancelled
	default:
		return api.EventDone
	}
}

// relayEvents serves GET /v1/jobs/{id}/events by relaying the owning
// backend's SSE stream frame by frame. The cursor (seeded from the client's
// Last-Event-ID / ?after=) is the single source of truth for what the client
// has seen: only frames beyond it are forwarded, and after a takeover it is
// passed to the survivor as ?after= so the deterministic re-execution's
// already-delivered prefix is filtered at the source. If the takeover target
// settled below the cursor (the survivor served the resubmission from its
// result cache, whose terminal event predates what the client saw), the
// relay synthesizes the closing frame at cursor+1 from the job's view.
func (rt *Router) relayEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	cursor := int64(0)
	lastID := r.Header.Get("Last-Event-ID")
	if lastID == "" {
		lastID = r.URL.Query().Get("after")
	}
	if lastID != "" {
		n, err := strconv.ParseInt(lastID, 10, 64)
		if err != nil || n < 0 {
			writeErr(w, api.CodeBadRequest, "Last-Event-ID must be a non-negative integer")
			return
		}
		cursor = n
	}

	// A relay that ends without delivering a terminal frame (client gave up
	// mid-run) leaves the route's observed state stale — refresh it so the
	// failover predicate and the terminal TTL stay truthful.
	terminalSeen := false
	defer func() {
		if !terminalSeen {
			go rt.refreshState(id)
		}
	}()

	rc := http.NewResponseController(w)
	headersSent := false
	sendHeaders := func() error {
		if headersSent {
			return nil
		}
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		w.Header().Set("X-Accel-Buffering", "no")
		w.WriteHeader(http.StatusOK)
		headersSent = true
		return rc.Flush()
	}
	emit := func(e api.Event) error {
		data, err := json.Marshal(e)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, e.Type, data); err != nil {
			return err
		}
		return rc.Flush()
	}
	settle := func() bool { // close out from the view when the stream cannot
		v, ok := rt.fetchView(r.Context(), id)
		if !ok || !v.State.Terminal() {
			return false
		}
		terminalSeen = true
		if sendHeaders() != nil {
			return true
		}
		_ = emit(api.Event{
			Seq: cursor + 1, Job: id, Type: terminalEventType(v.State),
			Time:  time.Now().UTC().Format(time.RFC3339Nano),
			State: v.State, Error: v.Error,
		})
		return true
	}

	deadline := time.Now().Add(rt.opt.FailoverWait)
	attached := false
	for {
		if r.Context().Err() != nil {
			return
		}
		resp, backend, err := rt.dialJob(r.Context(), id, "/events?after="+strconv.FormatInt(cursor, 10),
			map[string]string{"Accept": "text/event-stream"})
		if err != nil {
			var raw *rawResponse
			if asRaw(err, &raw) && !headersSent {
				raw.write(w) // the backend's verdict (not_found, bad request) relays verbatim
				return
			}
			if settle() {
				return
			}
			if errors.Is(err, errNoRoute) && !headersSent {
				writeErr(w, api.CodeNotFound, "no such job %q in the fleet", id)
				return
			}
			if time.Now().After(deadline) {
				if !headersSent {
					writeErr(w, api.CodeUnavailable, "job %s: no live backend within the failover wait", id)
				}
				return
			}
			select {
			case <-time.After(relayPoll):
			case <-r.Context().Done():
				return
			}
			continue
		}
		if attached {
			rt.relayTakeovers.Add(1)
		}
		attached = true
		if sendHeaders() != nil {
			resp.Body.Close()
			return
		}
		deadline = time.Now().Add(rt.opt.FailoverWait)
		terminal, pumpErr := rt.pumpEvents(resp.Body, id, &cursor, emit)
		resp.Body.Close()
		if terminal != "" {
			terminalSeen = true
			return
		}
		if r.Context().Err() != nil {
			return // the client went away, not the backend
		}
		if pumpErr != nil {
			rt.markFailure(r.Context(), backend)
		}
		// The backend stream ended without a terminal frame: the backend died
		// mid-stream, or the takeover settled below the cursor. Try the view,
		// then loop to reattach.
		if settle() {
			return
		}
	}
}

// pumpEvents copies one backend SSE connection to the client, rewriting each
// event's job ID to the public one and dropping frames at or below the
// cursor (replay overlap, or a re-execution's already-delivered prefix).
// It returns the terminal state once a terminal frame has been forwarded.
func (rt *Router) pumpEvents(body io.Reader, id string, cursor *int64, emit func(api.Event) error) (api.State, error) {
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var e api.Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &e); err != nil {
			return "", err
		}
		if e.Seq <= *cursor {
			continue
		}
		backendJob := e.Job
		e.Job = id
		if err := emit(e); err != nil {
			return "", err
		}
		*cursor = e.Seq
		if e.Type.Terminal() {
			rt.noteState(id, backendJob, e.State)
			return e.State, nil
		}
	}
	return "", sc.Err()
}

// relayStream serves GET /v1/jobs/{id}/stream by re-terminating the owning
// backend's multipart slice stream under the router's own boundary. Each
// slice part is forwarded at most once, keyed by its z-index header — after
// a takeover the survivor's stream replays every slice it has (PFS replay
// plus the re-execution's live tail), and the bit-identical duplicates are
// dropped here so the client's exactly-once accounting holds. Parts are
// forwarded whole (read fully before the first byte is re-emitted): a
// backend dying mid-part must not leak a truncated payload into the client's
// stream. The closing JSON part carries the public job ID whichever
// execution finished the job.
func (rt *Router) relayStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	hdr := map[string]string{}
	// The client's content-coding choice passes through untouched: slice
	// parts are forwarded byte-for-byte, so whatever per-part encoding the
	// backend negotiates is exactly what the client asked for.
	if ae := r.Header.Get("Accept-Encoding"); ae != "" {
		hdr["Accept-Encoding"] = ae
	}

	terminalSeen := false
	defer func() {
		if !terminalSeen {
			go rt.refreshState(id)
		}
	}()

	rc := http.NewResponseController(w)
	var mw *multipart.Writer
	headersSent := false
	seen := map[string]bool{}
	sendTerminalView := func(v api.View) {
		terminalSeen = true
		phdr := textproto.MIMEHeader{}
		phdr.Set("Content-Type", "application/json")
		phdr.Set(api.HeaderStreamEnd, string(v.State))
		part, err := mw.CreatePart(phdr)
		if err != nil {
			return
		}
		if json.NewEncoder(part).Encode(v) == nil {
			_ = mw.Close()
			_ = rc.Flush()
		}
	}

	deadline := time.Now().Add(rt.opt.FailoverWait)
	attached := false
	for {
		if r.Context().Err() != nil {
			return
		}
		resp, backend, err := rt.dialJob(r.Context(), id, "/stream", hdr)
		if err != nil {
			var raw *rawResponse
			if asRaw(err, &raw) && !headersSent {
				raw.write(w)
				return
			}
			if headersSent {
				// Mid-relay refusal (e.g. the re-execution was cancelled on
				// the survivor: terminal, no slices): settle with the view.
				if v, ok := rt.fetchView(r.Context(), id); ok && v.State.Terminal() {
					sendTerminalView(v)
					return
				}
			}
			if errors.Is(err, errNoRoute) && !headersSent {
				writeErr(w, api.CodeNotFound, "no such job %q in the fleet", id)
				return
			}
			if time.Now().After(deadline) {
				if !headersSent {
					writeErr(w, api.CodeUnavailable, "job %s: no live backend within the failover wait", id)
				}
				return
			}
			select {
			case <-time.After(relayPoll):
			case <-r.Context().Done():
				return
			}
			continue
		}
		if attached {
			rt.relayTakeovers.Add(1)
		}
		attached = true
		if !headersSent {
			mw = multipart.NewWriter(w)
			w.Header().Set("Content-Type", "multipart/mixed; boundary="+mw.Boundary())
			w.Header().Set("X-Accel-Buffering", "no")
			w.WriteHeader(http.StatusOK)
			headersSent = true
			if rc.Flush() != nil {
				resp.Body.Close()
				return
			}
		}
		deadline = time.Now().Add(rt.opt.FailoverWait)
		done, pumpErr := rt.pumpStream(resp, id, seen, mw, rc)
		resp.Body.Close()
		if done {
			terminalSeen = true
			return
		}
		if r.Context().Err() != nil {
			return
		}
		if pumpErr != nil {
			rt.markFailure(r.Context(), backend)
		}
		// Backend died mid-stream: loop to reattach after the failover.
	}
}

// pumpStream copies one backend multipart connection into the relay's
// writer, skipping slices already forwarded. It reports done once the
// terminal JSON part has been relayed (with the public job ID restored).
// The dedup key includes the part's preview factor: a progressive stream
// carries a coarse slice z and a full-resolution slice z as distinct parts,
// and keying on the bare index would silently drop the refinement.
func (rt *Router) pumpStream(resp *http.Response, id string, seen map[string]bool, mw *multipart.Writer, rc *http.ResponseController) (bool, error) {
	_, params, err := mime.ParseMediaType(resp.Header.Get("Content-Type"))
	if err != nil || params["boundary"] == "" {
		return false, fmt.Errorf("backend stream Content-Type %q has no boundary", resp.Header.Get("Content-Type"))
	}
	mr := multipart.NewReader(resp.Body, params["boundary"])
	for {
		part, err := mr.NextPart()
		if err != nil {
			return false, err // EOF mid-stream: the backend died; the caller reattaches
		}
		if part.Header.Get("Content-Type") == "application/json" {
			var v api.View
			if err := json.NewDecoder(part).Decode(&v); err != nil {
				return false, err
			}
			rt.noteState(id, v.ID, v.State)
			v.ID = id // public identity survives failover
			phdr := textproto.MIMEHeader{}
			phdr.Set("Content-Type", "application/json")
			phdr.Set(api.HeaderStreamEnd, string(v.State))
			out, err := mw.CreatePart(phdr)
			if err != nil {
				return true, err
			}
			if err := json.NewEncoder(out).Encode(v); err != nil {
				return true, err
			}
			_ = mw.Close()
			return true, rc.Flush()
		}
		z, err := strconv.Atoi(part.Header.Get(api.HeaderSliceZ))
		if err != nil {
			return false, fmt.Errorf("backend slice part without a %s header", api.HeaderSliceZ)
		}
		key := part.Header.Get(api.HeaderPreviewFactor) + "/" + strconv.Itoa(z)
		if seen[key] {
			continue // replayed duplicate after a takeover; NextPart discards it
		}
		blob, err := io.ReadAll(part)
		if err != nil {
			return false, err // truncated part: nothing was forwarded, safe to retry
		}
		out, err := mw.CreatePart(part.Header)
		if err != nil {
			return true, err
		}
		if _, err := out.Write(blob); err != nil {
			return true, err
		}
		seen[key] = true
		if err := rc.Flush(); err != nil {
			return true, err
		}
	}
}
