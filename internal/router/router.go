// Package router is the front of an ifdkd fleet: one HTTP endpoint that
// speaks the same versioned pkg/api contract as a single daemon, backed by
// N reconstruction backends. It is the serving-side half of the paper's
// scalability story — the compute plane already partitions across a rank
// grid (Fig. 3), and the router partitions the *service* across nodes.
//
// Placement is rendezvous hashing on the job's content cache key
// (service.SpecKey): every submission of the same reconstruction lands on
// the same backend, so each backend's result cache and staged datasets stay
// as hot as a single node's would — adding nodes multiplies capacity
// without multiplying cold misses. Rendezvous (highest-random-weight)
// hashing means a dead backend reshuffles only its own keys.
//
// The router proxies the full v1 surface, including the streaming
// endpoints: SSE event streams (with Last-Event-ID resume) and mid-run
// multipart slice streams pass through unbuffered. /v1/metrics fans in all
// live backends into one fleet-aggregate snapshot (with per-backend health
// and scrape latency riding along); GET /metrics serves the router's own
// ifdk_router_* registry as Prometheus text. Submissions carry W3C trace
// context: the router inherits or mints a traceparent, interposes its proxy
// span, and GET /v1/jobs/{id}/trace returns the backend's span tree with
// the router hop appended. A health loop probes
// /healthz; when a backend dies, every job the router last saw non-terminal
// on it — queued or running — is resubmitted to a surviving backend under
// its original public ID. Reconstruction is deterministic given the Spec,
// so re-executing a running job from scratch on a survivor yields the same
// bits its first execution would have; the partial state on the dead node's
// PFS is simply abandoned. SSE and slice-stream subscribers ride across the
// takeover: the router terminates those streams itself (relay.go) instead
// of raw-proxying them, so a backend death mid-stream becomes a reconnect
// to the survivor rather than a client-visible "unavailable".
package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"net/http"
	"net/http/httputil"
	"net/url"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ifdk/internal/obs"
	"ifdk/internal/service"
	"ifdk/pkg/api"
)

// Backend names one ifdkd instance behind the router.
type Backend struct {
	Name string // stable identity in the hash ring (e.g. "b0")
	URL  string // base URL, e.g. "http://10.0.0.7:8080"
}

// Options configures a Router.
type Options struct {
	Backends    []Backend
	HealthEvery time.Duration // health probe period (default 500ms)
	DeadAfter   int           // consecutive probe failures before a backend is dead (default 2)
	MaxRoutes   int           // retained job routes; terminal ones are pruned first (default 8192)
	TerminalTTL time.Duration // terminal routes expire after this (0 = default 10m, < 0 = only under MaxRoutes pressure)
	// FailoverWait bounds how long a relayed event/slice stream waits for a
	// dead route to fail over to a survivor before giving up on the client
	// connection (default 30s). It must comfortably cover death detection
	// (HealthEvery × DeadAfter) plus the resubmission round trip.
	FailoverWait time.Duration
	Client       *http.Client // JSON/health transport (default: 15s timeout)
	Logger       *slog.Logger // structured event log (default: discard)
}

func (o Options) withDefaults() Options {
	if o.HealthEvery <= 0 {
		o.HealthEvery = 500 * time.Millisecond
	}
	if o.DeadAfter <= 0 {
		o.DeadAfter = 2
	}
	if o.MaxRoutes <= 0 {
		o.MaxRoutes = 8192
	}
	if o.TerminalTTL == 0 {
		o.TerminalTTL = 10 * time.Minute
	}
	if o.FailoverWait <= 0 {
		o.FailoverWait = 30 * time.Second
	}
	if o.Client == nil {
		o.Client = &http.Client{Timeout: 15 * time.Second}
	}
	if o.Logger == nil {
		o.Logger = obs.NopLogger()
	}
	return o
}

// backendState is one backend plus its health bookkeeping.
type backendState struct {
	Backend
	proxy         *httputil.ReverseProxy
	alive         bool
	fails         int           // consecutive failed probes
	probeLatency  time.Duration // last health probe round trip
	scrapeLatency time.Duration // last /v1/metrics scrape round trip
	nodeWarned    bool          // one-shot warning about a missing/mismatched -node id
}

// jobRoute records where a public job ID lives. backendID differs from the
// public ID only after a failover resubmission. The trace fields hold the
// router's hop in the job's span tree: clientSpan is the caller's parent
// span (empty when the caller sent no traceparent), routerSpan is the proxy
// span the router interposed — the backend's job span parents under it.
// Routes discovered by probing (resolve) have no trace fields; their traces
// relay without a router span.
type jobRoute struct {
	backend    string
	backendID  string
	spec       api.Spec
	state      api.State // last state the router observed for the job
	terminalAt time.Time // when the router first observed a terminal state (zero while live)

	traceID    string
	clientSpan string
	routerSpan string
	proxyStart time.Time
	proxyDur   time.Duration
}

// setState folds a freshly observed job state into the route, stamping (or
// clearing) the terminal timestamp that drives TTL expiry. Callers hold rt.mu.
func (route *jobRoute) setState(st api.State) {
	if st.Terminal() {
		if route.terminalAt.IsZero() || !route.state.Terminal() {
			route.terminalAt = time.Now()
		}
	} else {
		route.terminalAt = time.Time{}
	}
	route.state = st
}

// Router is an http.Handler fronting a fleet of ifdkd backends.
type Router struct {
	opt Options
	mux *http.ServeMux
	log *slog.Logger
	met *routerMetrics
	// streamClient carries the relayed /events and /stream connections: no
	// overall timeout (streams legitimately live for minutes), cancellation
	// rides on each inbound request's context instead.
	streamClient *http.Client

	mu       sync.Mutex
	backends map[string]*backendState
	names    []string // stable iteration order
	jobs     map[string]*jobRoute
	order    []string // route insertion order, for bounded pruning

	reroutes        atomic.Int64 // jobs failed over after backend death
	reroutesRunning atomic.Int64 // of those, jobs last observed running (re-executed from scratch)
	relayTakeovers  atomic.Int64 // relayed streams that reattached to a surviving backend
	routesExpired   atomic.Int64 // terminal routes dropped by TTL expiry
	stop            chan struct{}
	healthWG        sync.WaitGroup
	startOnce       sync.Once
}

// New builds a router over the given backends and starts its health loop.
// Call Close to stop it.
func New(opt Options) (*Router, error) {
	opt = opt.withDefaults()
	if len(opt.Backends) == 0 {
		return nil, fmt.Errorf("router: no backends configured")
	}
	rt := &Router{
		opt:          opt,
		mux:          http.NewServeMux(),
		log:          opt.Logger,
		streamClient: &http.Client{},
		backends:     make(map[string]*backendState),
		jobs:         make(map[string]*jobRoute),
		stop:         make(chan struct{}),
	}
	for _, b := range opt.Backends {
		if b.Name == "" || b.URL == "" {
			return nil, fmt.Errorf("router: backend needs both name and URL (%+v)", b)
		}
		if _, dup := rt.backends[b.Name]; dup {
			return nil, fmt.Errorf("router: duplicate backend name %q", b.Name)
		}
		u, err := url.Parse(b.URL)
		if err != nil {
			return nil, fmt.Errorf("router: backend %s: %w", b.Name, err)
		}
		proxy := httputil.NewSingleHostReverseProxy(u)
		proxy.FlushInterval = -1 // SSE and mid-run multipart must not buffer
		proxy.ErrorHandler = func(w http.ResponseWriter, r *http.Request, err error) {
			writeErr(w, api.CodeUnavailable, "backend %s: %v", b.Name, err)
		}
		rt.backends[b.Name] = &backendState{Backend: b, proxy: proxy, alive: true}
		rt.names = append(rt.names, b.Name)
	}
	sort.Strings(rt.names)
	rt.met = newRouterMetrics(rt)

	rt.mux.HandleFunc("POST /v1/jobs", rt.submit)
	rt.mux.HandleFunc("GET /v1/jobs", rt.list)
	rt.mux.HandleFunc("GET /v1/jobs/{id}", rt.get)
	rt.mux.HandleFunc("DELETE /v1/jobs/{id}", rt.remove)
	rt.mux.HandleFunc("GET /v1/jobs/{id}/events", rt.relayEvents)
	rt.mux.HandleFunc("GET /v1/jobs/{id}/stream", rt.relayStream)
	rt.mux.HandleFunc("GET /v1/jobs/{id}/slice/{z}", func(w http.ResponseWriter, r *http.Request) {
		rt.proxyStream(w, r, "/slice/"+r.PathValue("z"))
	})
	rt.mux.HandleFunc("GET /v1/jobs/{id}/preview", func(w http.ResponseWriter, r *http.Request) {
		rt.proxyStream(w, r, "/preview")
	})
	rt.mux.HandleFunc("GET /v1/jobs/{id}/trace", rt.trace)
	rt.mux.HandleFunc("GET /v1/metrics", rt.metrics)
	rt.mux.Handle("GET /metrics", rt.met.reg.Handler())
	rt.mux.HandleFunc("GET /v1/backends", rt.backendsHandler)
	rt.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "role": "router"})
	})

	rt.healthWG.Add(1)
	go rt.healthLoop()
	return rt, nil
}

// Close stops the health loop. In-flight proxied requests are unaffected.
//
//ifdk:noctx shutdown join: the wait is bounded by the health loop observing stop
func (rt *Router) Close() {
	rt.startOnce.Do(func() { close(rt.stop) })
	rt.healthWG.Wait()
}

// ServeHTTP implements http.Handler.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) { rt.mux.ServeHTTP(w, r) }

// Reroutes returns how many pending jobs have been failed over so far.
func (rt *Router) Reroutes() int64 { return rt.reroutes.Load() }

// Registry exposes the router's own metric registry (the ifdk_router_*
// families served at GET /metrics) for embedding and tests.
func (rt *Router) Registry() *obs.Registry { return rt.met.reg }

// writeJSON and writeErr delegate to the contract package so the router
// and the daemon emit byte-identical envelopes.
func writeJSON(w http.ResponseWriter, code int, v any) { api.WriteJSON(w, code, v) }

func writeErr(w http.ResponseWriter, code string, format string, args ...any) {
	api.WriteError(w, code, format, args...)
}

// rendezvous picks the backend owning key among candidates by
// highest-random-weight hashing: deterministic for a fixed candidate set,
// and removing one candidate moves only that candidate's keys.
func rendezvous(key string, candidates []string) string {
	var best string
	var bestScore uint64
	for _, name := range candidates {
		h := fnv.New64a()
		_, _ = io.WriteString(h, key)
		_, _ = io.WriteString(h, "|")
		_, _ = io.WriteString(h, name)
		if s := h.Sum64(); best == "" || s > bestScore {
			best, bestScore = name, s
		}
	}
	return best
}

// recordRoute remembers where a public job ID lives, keeping the table
// bounded: backends prune their own terminal records (Options.MaxJobs), so
// a router that never forgot would leak one route (with its Spec) per
// submission forever. Terminal routes older than TerminalTTL expire
// outright; beyond MaxRoutes the remaining terminal routes are dropped
// oldest-first, and if the table is somehow all-live, the oldest route goes
// regardless — its job is rediscoverable through resolve's backend probe.
func (rt *Router) recordRoute(id string, route *jobRoute) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	route.setState(route.state) // stamp terminalAt for routes born terminal (cache hits)
	if _, exists := rt.jobs[id]; !exists {
		rt.order = append(rt.order, id)
	}
	rt.jobs[id] = route
	rt.pruneExpiredLocked()
	if len(rt.jobs) <= rt.opt.MaxRoutes {
		return
	}
	keep := rt.order[:0]
	for _, oid := range rt.order {
		r, ok := rt.jobs[oid]
		if !ok {
			continue // deleted via DELETE; drop the stale order entry
		}
		if len(rt.jobs) > rt.opt.MaxRoutes && r.state.Terminal() {
			delete(rt.jobs, oid)
			continue
		}
		keep = append(keep, oid)
	}
	rt.order = keep
	for len(rt.jobs) > rt.opt.MaxRoutes && len(rt.order) > 0 {
		delete(rt.jobs, rt.order[0])
		rt.order = rt.order[1:]
	}
}

// pruneExpiredLocked drops terminal routes whose TerminalTTL has elapsed.
// Before the TTL existed the table only shrank under MaxRoutes pressure, so
// a quiet router hoarded every finished job's Spec for the lifetime of the
// process; expired jobs stay reachable through resolve's backend probe for
// as long as their backend retains the record. Callers hold rt.mu.
func (rt *Router) pruneExpiredLocked() {
	if rt.opt.TerminalTTL < 0 {
		return
	}
	cutoff := time.Now().Add(-rt.opt.TerminalTTL)
	expired := 0
	for id, route := range rt.jobs {
		if !route.terminalAt.IsZero() && route.terminalAt.Before(cutoff) {
			delete(rt.jobs, id)
			expired++
		}
	}
	if expired == 0 {
		return
	}
	rt.routesExpired.Add(int64(expired))
	keep := rt.order[:0]
	for _, oid := range rt.order {
		if _, ok := rt.jobs[oid]; ok {
			keep = append(keep, oid)
		}
	}
	rt.order = keep
}

// aliveNames snapshots the currently-live backend names in stable order.
func (rt *Router) aliveNames() []string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]string, 0, len(rt.names))
	for _, n := range rt.names {
		if rt.backends[n].alive {
			out = append(out, n)
		}
	}
	return out
}

// markFailure records a request-path transport failure against a backend,
// counting it like a failed health probe so a hard-down node is retired
// without waiting a full probe period.
// Request-path failures only count against a backend's health when the
// *backend* failed, not when the inbound client gave up: a cancelled or
// timed-out client request says nothing about the node, and counting it
// would let an impatient client (or two) declare healthy backends dead and
// trigger failover that runs queued jobs twice.
func (rt *Router) markFailure(ctx context.Context, name string) {
	if ctx != nil && ctx.Err() != nil {
		return
	}
	rt.met.backendErrors.With(name).Inc()
	rt.observeHealth(name, false)
}

// observeHealth folds one probe result into a backend's state, firing
// failover on the alive→dead transition.
func (rt *Router) observeHealth(name string, ok bool) {
	rt.mu.Lock()
	b := rt.backends[name]
	if b == nil {
		rt.mu.Unlock()
		return
	}
	var died bool
	if ok {
		if !b.alive {
			rt.log.Info("backend back alive", "backend", name)
		}
		b.alive, b.fails = true, 0
	} else {
		b.fails++
		if b.alive && b.fails >= rt.opt.DeadAfter {
			b.alive = false
			died = true
		}
	}
	alive, fails := b.alive, b.fails
	rt.mu.Unlock()
	var g float64
	if alive {
		g = 1
	}
	rt.met.alive.With(name).Set(g)
	rt.met.probeFails.With(name).Set(float64(fails))
	if died {
		rt.log.Warn("backend dead; rerouting pending jobs",
			"backend", name, "fails", fails, "dead_after", rt.opt.DeadAfter)
		rt.failover(name)
	}
}

// checkNodeID warns (once per backend) when a backend's reported node id
// does not match the router's name for it. Fleet-unique job IDs — and with
// them the route table's integrity — depend on every ifdkd running with a
// distinct -node: without one, two backends both mint "j00000001" and the
// router would silently serve one client the other's job.
func (rt *Router) checkNodeID(name, node string) {
	rt.mu.Lock()
	b := rt.backends[name]
	warn := b != nil && !b.nodeWarned && node != name
	if warn {
		b.nodeWarned = true
	}
	rt.mu.Unlock()
	if !warn {
		return
	}
	if node == "" {
		rt.log.Warn("backend runs without -node; job IDs can collide across the fleet",
			"backend", name, "hint", "start it with 'ifdkd -node "+name+"'")
	} else {
		rt.log.Warn("backend node id does not match its registered name; job-ID attribution needs them equal",
			"backend", name, "node", node, "hint", "start it with 'ifdkd -node "+name+"' or register it as "+node+"=")
	}
}

func (rt *Router) healthLoop() {
	defer rt.healthWG.Done()
	tick := time.NewTicker(rt.opt.HealthEvery)
	defer tick.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-tick.C:
		}
		// Probe timeout floors at 2s regardless of the probe period: a
		// slow-but-alive backend (busy CPU, GC pause) must not be declared
		// dead by an impatient probe — a dead one fails fast anyway
		// (connection refused), so kill detection stays prompt.
		probeTimeout := rt.opt.HealthEvery * 4
		if probeTimeout < 2*time.Second {
			probeTimeout = 2 * time.Second
		}
		for _, name := range rt.names {
			rt.mu.Lock()
			b := rt.backends[name]
			rt.mu.Unlock()
			ctx, cancel := context.WithTimeout(context.Background(), probeTimeout)
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.URL+"/healthz", nil)
			ok := false
			var node struct {
				Node string `json:"node"`
			}
			probe0 := time.Now()
			if err == nil {
				if resp, rerr := rt.opt.Client.Do(req); rerr == nil {
					_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<12)).Decode(&node)
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					ok = resp.StatusCode == http.StatusOK
				}
			}
			probeDur := time.Since(probe0)
			cancel()
			rt.met.probeSeconds.With(name).Observe(probeDur.Seconds())
			rt.mu.Lock()
			b.probeLatency = probeDur
			rt.mu.Unlock()
			if ok {
				rt.checkNodeID(name, node.Node)
			}
			rt.observeHealth(name, ok)
		}
		// Terminal-route expiry rides the probe tick so a quiet router (no
		// submissions, no lookups) still forgets finished jobs on time.
		rt.mu.Lock()
		rt.pruneExpiredLocked()
		rt.mu.Unlock()
	}
}

// failover resubmits every job the router last observed non-terminal on the
// dead backend — queued or running — to a surviving one, preserving the
// public job ID. Reconstruction is a pure function of the Spec, so
// re-executing a running job from scratch on a survivor converges on the
// exact volume its first execution would have produced; the partial output
// on the dead node's PFS is abandoned rather than recovered (deterministic
// re-execution trades wasted compute for zero replication cost — replicated
// PFS would be the exact-resume alternative). Jobs observed terminal keep
// their dead route and surface "unavailable" until expiry: their result
// died with the node, and silently recomputing a job the client already saw
// finish would be a new execution, not a recovery.
func (rt *Router) failover(dead string) {
	rt.mu.Lock()
	type pending struct {
		id          string
		spec        api.Spec
		state       api.State
		traceparent string
	}
	var moves []pending
	for id, route := range rt.jobs {
		if route.backend == dead && !route.state.Terminal() {
			mv := pending{id: id, spec: route.spec, state: route.state}
			// Re-forward the same trace context the original submission
			// carried: the resubmitted job keeps its trace ID, and its job
			// span still parents under the router's proxy span.
			if route.traceID != "" && route.routerSpan != "" {
				mv.traceparent = api.FormatTraceParent(route.traceID, route.routerSpan)
			}
			moves = append(moves, mv)
		}
	}
	rt.mu.Unlock()
	sort.Slice(moves, func(i, j int) bool { return moves[i].id < moves[j].id })

	for _, mv := range moves {
		alive := rt.aliveNames()
		if len(alive) == 0 {
			rt.log.Warn("no live backend to reroute job", "job_id", mv.id)
			return
		}
		key, err := service.SpecKey(mv.spec)
		if err != nil {
			continue // cannot happen: the spec was admitted once already
		}
		target := rendezvous(key, alive)
		v, status, err := rt.postSpec(context.Background(), target, mv.spec, mv.traceparent)
		if err != nil || status < 200 || status > 299 {
			rt.log.Warn("reroute failed", "job_id", mv.id, "target", target, "status", status, "err", err)
			continue
		}
		rt.mu.Lock()
		if route, ok := rt.jobs[mv.id]; ok && route.backend == dead {
			route.backend, route.backendID = target, v.ID
			route.setState(v.State)
		}
		rt.mu.Unlock()
		rt.reroutes.Add(1)
		if mv.state == api.StateRunning {
			rt.reroutesRunning.Add(1)
		}
		rt.log.Info("rerouted job", "job_id", mv.id, "target", target,
			"backend_id", v.ID, "was", string(mv.state))
	}
}

// postSpec submits a spec to one backend and decodes the view, forwarding
// the (already router-stamped) traceparent when one is set.
func (rt *Router) postSpec(ctx context.Context, name string, spec api.Spec, traceparent string) (api.View, int, error) {
	rt.mu.Lock()
	b := rt.backends[name]
	rt.mu.Unlock()
	blob, err := json.Marshal(spec)
	if err != nil {
		return api.View{}, 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.URL+"/v1/jobs", bytes.NewReader(blob))
	if err != nil {
		return api.View{}, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if traceparent != "" {
		req.Header.Set(api.TraceParentHeader, traceparent)
	}
	resp, err := rt.opt.Client.Do(req)
	if err != nil {
		rt.markFailure(ctx, name)
		return api.View{}, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return api.View{}, resp.StatusCode, err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return api.View{}, resp.StatusCode, &rawResponse{status: resp.StatusCode, retryAfter: resp.Header.Get("Retry-After"), body: body}
	}
	var v api.View
	if err := json.Unmarshal(body, &v); err != nil {
		return api.View{}, resp.StatusCode, err
	}
	return v, resp.StatusCode, nil
}

// rawResponse carries a backend's non-2xx response verbatim so the router
// can relay envelope and status untouched.
type rawResponse struct {
	status     int
	retryAfter string
	body       []byte
}

func (r *rawResponse) Error() string { return fmt.Sprintf("backend HTTP %d", r.status) }

func (r *rawResponse) write(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json")
	if r.retryAfter != "" {
		w.Header().Set("Retry-After", r.retryAfter)
	}
	w.WriteHeader(r.status)
	_, _ = w.Write(r.body)
}

// submit routes POST /v1/jobs by the spec's content cache key.
func (rt *Router) submit(w http.ResponseWriter, r *http.Request) {
	proxy0 := time.Now()
	var spec api.Spec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeErr(w, api.CodeBadRequest, "bad spec: %v", err)
		return
	}
	key, err := service.SpecKey(spec)
	if err != nil {
		writeErr(w, api.CodeInvalidSpec, "%v", err)
		return
	}
	// Trace context: inherit the caller's traceparent (or mint a fresh trace
	// for header-less callers) and interpose the router's proxy span, so the
	// backend's job span parents under the router hop rather than directly
	// under the client.
	traceID, clientSpan, perr := api.ParseTraceParent(r.Header.Get(api.TraceParentHeader))
	if perr != nil {
		traceID, clientSpan = api.NewTraceID(), ""
	}
	routerSpan := api.NewSpanID()
	traceparent := api.FormatTraceParent(traceID, routerSpan)
	// A transport-dead target is retired and the next-highest backend takes
	// the key; application errors (saturation, quota) relay verbatim — the
	// owning backend said no, and bouncing the job elsewhere would shatter
	// cache affinity.
	for attempt := 0; attempt < len(rt.names)+1; attempt++ {
		alive := rt.aliveNames()
		if len(alive) == 0 {
			writeErr(w, api.CodeUnavailable, "no live backend")
			return
		}
		target := rendezvous(key, alive)
		v, status, err := rt.postSpec(r.Context(), target, spec, traceparent)
		if err != nil {
			var raw *rawResponse
			if asRaw(err, &raw) {
				raw.write(w)
				return
			}
			continue // transport failure: target was marked, re-pick
		}
		rt.recordRoute(v.ID, &jobRoute{
			backend: target, backendID: v.ID, spec: spec, state: v.State,
			traceID: traceID, clientSpan: clientSpan, routerSpan: routerSpan,
			proxyStart: proxy0, proxyDur: time.Since(proxy0),
		})
		rt.log.Info("job routed",
			"job_id", v.ID, "backend", target, "trace_id", traceID,
			"cache_hit", v.CacheHit, "state", string(v.State))
		writeJSON(w, status, v)
		return
	}
	writeErr(w, api.CodeUnavailable, "no backend accepted the job")
}

func asRaw(err error, out **rawResponse) bool {
	r, ok := err.(*rawResponse)
	if ok {
		*out = r
	}
	return ok
}

// resolve finds the route for a public job ID, probing live backends for
// jobs the router has never seen (submitted before a router restart, or
// directly to a backend). Probes run concurrently with their own short
// deadline so one hung backend cannot stall every unknown-ID lookup for
// the full client timeout, and a probe cancelled because a sibling already
// found the job never counts against anyone's health.
// It returns a value snapshot: the live record is mutated under rt.mu by
// failover and state refreshes, so handlers must not hold a pointer into it.
func (rt *Router) resolve(ctx context.Context, id string) (jobRoute, bool) {
	rt.mu.Lock()
	route, ok := rt.jobs[id]
	var snap jobRoute
	if ok {
		snap = *route
	}
	rt.mu.Unlock()
	if ok {
		return snap, true
	}
	alive := rt.aliveNames()
	if len(alive) == 0 {
		return jobRoute{}, false
	}
	probeCtx, cancel := context.WithTimeout(ctx, 3*time.Second)
	defer cancel()
	type hit struct {
		name string
		view api.View
	}
	results := make(chan *hit, len(alive))
	for _, name := range alive {
		go func(name string) {
			rt.mu.Lock()
			b := rt.backends[name]
			rt.mu.Unlock()
			req, err := http.NewRequestWithContext(probeCtx, http.MethodGet, b.URL+"/v1/jobs/"+id, nil)
			if err != nil {
				results <- nil
				return
			}
			resp, err := rt.opt.Client.Do(req)
			if err != nil {
				rt.markFailure(probeCtx, name)
				results <- nil
				return
			}
			var v api.View
			decodeErr := json.NewDecoder(resp.Body).Decode(&v)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK && decodeErr == nil && v.ID == id {
				results <- &hit{name: name, view: v}
				return
			}
			results <- nil
		}(name)
	}
	for range alive {
		if h := <-results; h != nil {
			route := jobRoute{backend: h.name, backendID: id, spec: h.view.Spec, state: h.view.State}
			rt.recordRoute(id, &route)
			return route, true
		}
	}
	return jobRoute{}, false
}

// routeTarget returns the live backend for a route, or an error code.
func (rt *Router) routeTarget(route jobRoute) (*backendState, string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	b := rt.backends[route.backend]
	if b == nil || !b.alive {
		return nil, api.CodeUnavailable
	}
	return b, ""
}

// get proxies GET /v1/jobs/{id}, rewriting the backend's job ID back to the
// public one for failed-over jobs and tracking the observed state (the
// failover predicate: non-terminal routes are rerouted off a dead backend,
// terminal ones are not).
func (rt *Router) get(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	route, ok := rt.resolve(r.Context(), id)
	if !ok {
		writeErr(w, api.CodeNotFound, "no such job %q in the fleet", id)
		return
	}
	b, errCode := rt.routeTarget(route)
	if errCode != "" {
		writeErr(w, errCode, "backend %s for job %s is down", route.backend, id)
		return
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, b.URL+"/v1/jobs/"+route.backendID, nil)
	if err != nil {
		writeErr(w, api.CodeInternal, "%v", err)
		return
	}
	resp, err := rt.opt.Client.Do(req)
	if err != nil {
		rt.markFailure(r.Context(), route.backend)
		writeErr(w, api.CodeUnavailable, "backend %s: %v", route.backend, err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		(&rawResponse{status: resp.StatusCode, retryAfter: resp.Header.Get("Retry-After"), body: body}).write(w)
		return
	}
	var v api.View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		writeErr(w, api.CodeInternal, "backend %s sent a bad view: %v", route.backend, err)
		return
	}
	rt.mu.Lock()
	if cur, ok := rt.jobs[id]; ok && cur.backendID == v.ID { // still the same underlying job
		cur.setState(v.State)
	}
	rt.mu.Unlock()
	v.ID = id // public identity survives failover
	writeJSON(w, http.StatusOK, v)
}

// trace proxies GET /v1/jobs/{id}/trace from the owning backend, rewrites
// the backend's job ID back to the public one, and appends the router's own
// proxy span — the returned tree then covers the full path client → router
// → daemon → compute plane under one trace ID. Routes the router never
// submitted (discovered by probing) relay the backend's trace untouched.
func (rt *Router) trace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	route, ok := rt.resolve(r.Context(), id)
	if !ok {
		writeErr(w, api.CodeNotFound, "no such job %q in the fleet", id)
		return
	}
	b, errCode := rt.routeTarget(route)
	if errCode != "" {
		writeErr(w, errCode, "backend %s for job %s is down", route.backend, id)
		return
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, b.URL+"/v1/jobs/"+route.backendID+"/trace", nil)
	if err != nil {
		writeErr(w, api.CodeInternal, "%v", err)
		return
	}
	resp, err := rt.opt.Client.Do(req)
	if err != nil {
		rt.markFailure(r.Context(), route.backend)
		writeErr(w, api.CodeUnavailable, "backend %s: %v", route.backend, err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		(&rawResponse{status: resp.StatusCode, retryAfter: resp.Header.Get("Retry-After"), body: body}).write(w)
		return
	}
	var t api.Trace
	if err := json.NewDecoder(resp.Body).Decode(&t); err != nil {
		writeErr(w, api.CodeInternal, "backend %s sent a bad trace: %v", route.backend, err)
		return
	}
	t.Job = id // public identity survives failover
	if route.routerSpan != "" && t.TraceID == route.traceID {
		t.Spans = append(t.Spans, api.Span{
			TraceID:      route.traceID,
			SpanID:       route.routerSpan,
			ParentSpanID: route.clientSpan,
			Name:         "router.proxy",
			Service:      "router",
			Start:        route.proxyStart.UTC().Format(time.RFC3339Nano),
			DurationSec:  route.proxyDur.Seconds(),
			Attrs:        map[string]string{"backend": route.backend, "job_id": id},
		})
	}
	writeJSON(w, http.StatusOK, t)
}

// remove proxies DELETE /v1/jobs/{id} and forgets the route once the
// record is gone (204).
func (rt *Router) remove(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	route, ok := rt.resolve(r.Context(), id)
	if !ok {
		writeErr(w, api.CodeNotFound, "no such job %q in the fleet", id)
		return
	}
	b, errCode := rt.routeTarget(route)
	if errCode != "" {
		writeErr(w, errCode, "backend %s for job %s is down", route.backend, id)
		return
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodDelete, b.URL+"/v1/jobs/"+route.backendID, nil)
	if err != nil {
		writeErr(w, api.CodeInternal, "%v", err)
		return
	}
	resp, err := rt.opt.Client.Do(req)
	if err != nil {
		rt.markFailure(r.Context(), route.backend)
		writeErr(w, api.CodeUnavailable, "backend %s: %v", route.backend, err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNoContent {
		rt.mu.Lock()
		delete(rt.jobs, id)
		rt.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
		return
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
	w.WriteHeader(resp.StatusCode)
	_, _ = w.Write(body)
}

// proxyStream hands a one-shot streaming endpoint (slice PNGs) to the
// backend's reverse proxy, which flushes every write. The long-lived
// streams — /events and /stream — do not come through here: they are
// relayed (relay.go) so subscribers survive a backend death mid-stream.
func (rt *Router) proxyStream(w http.ResponseWriter, r *http.Request, sub string) {
	id := r.PathValue("id")
	route, ok := rt.resolve(r.Context(), id)
	if !ok {
		writeErr(w, api.CodeNotFound, "no such job %q in the fleet", id)
		return
	}
	b, errCode := rt.routeTarget(route)
	if errCode != "" {
		writeErr(w, errCode, "backend %s for job %s is down", route.backend, id)
		return
	}
	r2 := r.Clone(r.Context())
	r2.URL.Path = "/v1/jobs/" + route.backendID + sub
	b.proxy.ServeHTTP(w, r2)
}

// refreshState re-reads a job's state from its backend and folds it into
// the route table (the failover predicate).
func (rt *Router) refreshState(id string) {
	rt.mu.Lock()
	route, ok := rt.jobs[id]
	var backendID, baseURL string
	alive := false
	if ok {
		backendID = route.backendID
		if b := rt.backends[route.backend]; b != nil && b.alive {
			alive, baseURL = true, b.URL
		}
	}
	rt.mu.Unlock()
	if !ok || !alive {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/v1/jobs/"+backendID, nil)
	if err != nil {
		return
	}
	resp, err := rt.opt.Client.Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	var v api.View
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&v) != nil {
		return
	}
	rt.mu.Lock()
	if cur, ok := rt.jobs[id]; ok && cur.backendID == v.ID {
		cur.setState(v.State)
	}
	rt.mu.Unlock()
}

// list fans GET /v1/jobs out to all live backends and merges the views in
// submission-time order.
func (rt *Router) list(w http.ResponseWriter, r *http.Request) {
	type result struct {
		views []api.View
		err   error
	}
	alive := rt.aliveNames()
	results := make(chan result, len(alive))
	for _, name := range alive {
		go func(name string) {
			rt.mu.Lock()
			b := rt.backends[name]
			rt.mu.Unlock()
			req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, b.URL+"/v1/jobs", nil)
			if err != nil {
				results <- result{err: err}
				return
			}
			resp, err := rt.opt.Client.Do(req)
			if err != nil {
				rt.markFailure(r.Context(), name)
				results <- result{err: err}
				return
			}
			defer resp.Body.Close()
			var vs []api.View
			if err := json.NewDecoder(resp.Body).Decode(&vs); err != nil {
				results <- result{err: err}
				return
			}
			results <- result{views: vs}
		}(name)
	}
	var merged []api.View
	for range alive {
		res := <-results
		if res.err == nil {
			merged = append(merged, res.views...)
		}
	}
	// Failed-over jobs keep their public identity in the fleet listing
	// (the backends know them by their reissued IDs), and every listed
	// view refreshes the router's observed state for its route.
	rt.mu.Lock()
	alias := map[string]string{}
	for id, route := range rt.jobs {
		if route.backendID != id {
			alias[route.backendID] = id
		}
	}
	for i := range merged {
		backendID := merged[i].ID
		pub, aliased := alias[backendID]
		if aliased {
			merged[i].ID = pub
		} else {
			pub = backendID
		}
		if cur, ok := rt.jobs[pub]; ok && cur.backendID == backendID {
			cur.setState(merged[i].State)
		}
	}
	rt.mu.Unlock()
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].Submitted != merged[j].Submitted {
			return merged[i].Submitted < merged[j].Submitted
		}
		return merged[i].ID < merged[j].ID
	})
	if merged == nil {
		merged = []api.View{}
	}
	writeJSON(w, http.StatusOK, merged)
}

// metrics fans /v1/metrics in from all live backends as one fleet
// aggregate: counters and gauges sum, uptime is the fleet maximum,
// cost_scale averages, and wait percentiles take the per-class worst (a
// conservative merge — exact percentiles do not compose).
func (rt *Router) metrics(w http.ResponseWriter, r *http.Request) {
	alive := rt.aliveNames()
	type scrape struct {
		name string
		m    *api.Metrics
		dur  time.Duration
	}
	results := make(chan scrape, len(alive))
	for _, name := range alive {
		go func(name string) {
			rt.mu.Lock()
			b := rt.backends[name]
			rt.mu.Unlock()
			req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, b.URL+"/v1/metrics", nil)
			if err != nil {
				results <- scrape{name: name}
				return
			}
			t0 := time.Now()
			resp, err := rt.opt.Client.Do(req)
			if err != nil {
				rt.markFailure(r.Context(), name)
				results <- scrape{name: name}
				return
			}
			defer resp.Body.Close()
			var m api.Metrics
			if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
				results <- scrape{name: name}
				return
			}
			results <- scrape{name: name, m: &m, dur: time.Since(t0)}
		}(name)
	}
	agg := api.Metrics{Jobs: map[string]int{}, WaitSec: map[string]api.WaitStats{}}
	n := 0
	for range alive {
		res := <-results
		if res.m == nil {
			continue
		}
		rt.met.scrapeSeconds.With(res.name).Observe(res.dur.Seconds())
		rt.mu.Lock()
		if b := rt.backends[res.name]; b != nil {
			b.scrapeLatency = res.dur
		}
		rt.mu.Unlock()
		m := res.m
		n++
		if m.UptimeSec > agg.UptimeSec {
			agg.UptimeSec = m.UptimeSec
		}
		agg.Workers += m.Workers
		agg.BusyWorkers += m.BusyWorkers
		agg.QueueDepth += m.QueueDepth
		agg.QueueCap += m.QueueCap
		agg.QueueCostSec += m.QueueCostSec
		agg.MaxQueuedSec += m.MaxQueuedSec
		agg.InflightBytes += m.InflightBytes
		agg.MaxInflight += m.MaxInflight
		agg.PoolBytes += m.PoolBytes
		agg.CostScale += m.CostScale
		agg.Completed += m.Completed
		agg.CacheHits += m.CacheHits
		agg.Failed += m.Failed
		agg.Cancelled += m.Cancelled
		agg.Admission.Admitted += m.Admission.Admitted
		agg.Admission.RejectedFull += m.Admission.RejectedFull
		agg.Admission.RejectedCost += m.Admission.RejectedCost
		agg.Admission.RejectedBytes += m.Admission.RejectedBytes
		agg.Admission.RejectedQuota += m.Admission.RejectedQuota
		agg.Cache.Hits += m.Cache.Hits
		agg.Cache.Misses += m.Cache.Misses
		agg.Cache.Entries += m.Cache.Entries
		agg.Cache.Bytes += m.Cache.Bytes
		agg.Cache.MaxBytes += m.Cache.MaxBytes
		agg.PFSReadMB += m.PFSReadMB
		agg.PFSWriteMB += m.PFSWriteMB
		agg.PFSObjects += m.PFSObjects
		agg.EventDrops += m.EventDrops
		for k, v := range m.Jobs {
			agg.Jobs[k] += v
		}
		for class, ws := range m.WaitSec {
			cur := agg.WaitSec[class]
			cur.Count += ws.Count
			if ws.P50 > cur.P50 {
				cur.P50 = ws.P50
			}
			if ws.P90 > cur.P90 {
				cur.P90 = ws.P90
			}
			if ws.P99 > cur.P99 {
				cur.P99 = ws.P99
			}
			agg.WaitSec[class] = cur
		}
	}
	if n > 0 {
		agg.CostScale /= float64(n)
	}
	if agg.UptimeSec > 0 {
		agg.JobsPerSec = float64(agg.Completed) / agg.UptimeSec
	}
	// Per-backend health rides along: scrape latency above was just
	// refreshed, so the Backends view reflects this very fan-in.
	agg.Backends = rt.backendHealth()
	writeJSON(w, http.StatusOK, agg)
}

// backendsHandler reports per-backend health, probe/scrape latencies and
// route counts.
func (rt *Router) backendsHandler(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, rt.backendHealth())
}
