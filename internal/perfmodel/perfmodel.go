// Package perfmodel implements the iFDK performance model of the paper's
// Sec. 4.2: closed-form stage times (Eqs. 8–19) parameterized by
// micro-benchmarked system throughputs (Sec. 4.2.1). The model produces the
// "potential peak" series of Fig. 5 and, combined with the discrete-event
// pipeline simulation in internal/simcluster, the full scaling study.
//
// Billing note: the service's cost-aware admission estimates each job
// independently from this model and calibrates against each job's own
// observed stage clock. Cross-job shared filter sweeps
// (internal/service/batcher) do not change that accounting — every job's
// filter time is measured around its own rank's Filter calls (including any
// coalescing wait), so a batched round's cost lands on the jobs that rode
// it, never on a bystander. Batching can only lower a job's observed filter
// time relative to this model's THFlt term, which the calibration EWMA
// absorbs the same way it absorbs any other machine-speed delta.
package perfmodel

import (
	"fmt"
	"math"

	"ifdk/internal/ct/geometry"
)

// MicroBench holds the measured constants of Sec. 4.2.1. Bandwidths are in
// bytes/s; THFlt and THAllGather are in projections/s (the units the
// paper's equations use); THBp is in projections/s per GPU for the
// configured sub-volume; THReduce and THTrans are bytes/s.
type MicroBench struct {
	BWLoad  float64 // PFS aggregate read bandwidth (IOR)
	BWStore float64 // PFS aggregate write bandwidth (IOR)

	THFlt       float64 // filtering throughput per node, projections/s
	THBpGUPS    float64 // back-projection kernel throughput, GUPS
	BWAllGather float64 // per-rank ring AllGather throughput, bytes/s
	THReduce    float64 // Reduce throughput per node, bytes/s
	THTrans     float64 // on-GPU volume transpose throughput, bytes/s

	BWPCIe         float64 // per-connector PCIe bandwidth (bandwidthTest)
	NPCIe          int     // PCIe connectors per node
	PCIeContention float64 // achieved fraction when GPUs share a switch (Sec. 5.3.3)

	NGpuPerNode int
}

// ABCI returns the constants of the paper's testbed (Sec. 5.1/5.3.3):
// GPFS at 28.5 GB/s sequential write, PCIe gen3 x16 at 11.9 GB/s with two
// connectors feeding four V100s (hence ~0.5 contention), dual InfiniBand
// EDR HCAs, and the stage throughputs implied by Table 5.
func ABCI() MicroBench {
	return MicroBench{
		BWLoad:         60e9,
		BWStore:        28.5e9,
		THFlt:          360,    // 2048² projections/s per node (IPP-class filtering)
		THBpGUPS:       200,    // the proposed kernel's plateau (Table 4)
		BWAllGather:    2.0e9,  // ring step throughput per rank (dual EDR / 4 ranks, fit to Table 5)
		THReduce:       2.96e9, // 8 GB in ≈2.7 s over dual EDR (Sec. 5.3.3)
		THTrans:        200e9,
		BWPCIe:         11.9e9,
		NPCIe:          2,
		PCIeContention: 0.5,
		NGpuPerNode:    4,
	}
}

// Validate reports nonsensical constants.
func (mb MicroBench) Validate() error {
	if mb.BWLoad <= 0 || mb.BWStore <= 0 || mb.THFlt <= 0 || mb.THBpGUPS <= 0 ||
		mb.BWAllGather <= 0 || mb.THReduce <= 0 || mb.BWPCIe <= 0 || mb.NPCIe <= 0 ||
		mb.NGpuPerNode <= 0 {
		return fmt.Errorf("perfmodel: all micro-benchmark constants must be positive: %+v", mb)
	}
	if mb.PCIeContention <= 0 || mb.PCIeContention > 1 {
		return fmt.Errorf("perfmodel: PCIe contention %g outside (0, 1]", mb.PCIeContention)
	}
	return nil
}

// THBpProj converts the kernel GUPS into per-GPU projections/s for a given
// sub-volume (Eq. 12's TH_bp): one projection updates every sub-volume
// voxel once.
func (mb MicroBench) THBpProj(voxelsPerSub float64) float64 {
	return mb.THBpGUPS * (1 << 30) / voxelsPerSub
}

// Times are the stage durations of Eqs. 8–19, in seconds.
type Times struct {
	Load      float64 // Eq. 8
	Flt       float64 // Eq. 9
	AllGather float64 // Eq. 10
	H2D       float64 // Eq. 11
	Bp        float64 // Eq. 12 (includes H2D)
	Trans     float64 // Eq. 13
	D2H       float64 // Eq. 14
	Reduce    float64 // Eq. 15 (zero when C = 1)
	Store     float64 // Eq. 16
	Compute   float64 // Eq. 17: max(Load, Flt, AllGather, Bp)
	Post      float64 // Eq. 18: D2H + Reduce + Store (Trans folded in)
	Runtime   float64 // Eq. 19: Compute + Post
}

// GUPS converts the modelled runtime into end-to-end GUPS (Fig. 6).
func (t Times) GUPS(pr geometry.Problem) float64 {
	return pr.GUPS(t.Runtime)
}

// Predict evaluates the closed-form model for the problem decomposed on an
// R×C grid.
func Predict(pr geometry.Problem, r, c int, mb MicroBench) (Times, error) {
	if err := mb.Validate(); err != nil {
		return Times{}, err
	}
	if r < 1 || c < 1 {
		return Times{}, fmt.Errorf("perfmodel: invalid grid %dx%d", r, c)
	}
	var t Times
	fr, fc := float64(r), float64(c)
	np := float64(pr.Np)
	inBytes := float64(pr.InputBytes())
	outBytes := float64(pr.OutputBytes())
	voxPerSub := float64(pr.Nx) * float64(pr.Ny) * float64(pr.Nz) / fr
	gpn := float64(mb.NGpuPerNode)
	pcie := mb.BWPCIe * float64(mb.NPCIe) * mb.PCIeContention

	projBytes := 4 * float64(pr.Nu) * float64(pr.Nv)

	t.Load = inBytes / mb.BWLoad            // Eq. 8
	t.Flt = np * gpn / (fc * fr * mb.THFlt) // Eq. 9
	// Eq. 10 with the ring cost made explicit: each of the Np/(C·R) rounds
	// moves R-1 projection blocks per rank (the paper's constant
	// TH_AllGather cannot reproduce Table 5's R dependence; see
	// EXPERIMENTS.md).
	t.AllGather = np / (fc * fr) * float64(r-1) * projBytes / mb.BWAllGather
	t.H2D = inBytes * gpn / (fc * pcie)           // Eq. 11
	t.Bp = t.H2D + np/(fc*mb.THBpProj(voxPerSub)) // Eq. 12
	t.Trans = outBytes / (fr * mb.THTrans)        // Eq. 13
	t.D2H = outBytes * gpn / (fr * pcie)          // Eq. 14
	if c > 1 {
		t.Reduce = outBytes / (fr * mb.THReduce) // Eq. 15
	}
	t.Store = outBytes / mb.BWStore // Eq. 16

	t.Compute = math.Max(math.Max(t.Load, t.Flt), math.Max(t.AllGather, t.Bp)) // Eq. 17
	t.Post = t.Trans + t.D2H + t.Reduce + t.Store                              // Eq. 18
	t.Runtime = t.Compute + t.Post                                             // Eq. 19
	return t, nil
}
