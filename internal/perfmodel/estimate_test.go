package perfmodel

import (
	"testing"

	"ifdk/internal/core"
	"ifdk/internal/ct/geometry"
)

func svcConfig(nx int) core.Config {
	g := geometry.Default(2*nx, 2*nx, 2*nx, nx, nx, nx)
	return core.Config{R: 2, C: 2, Geometry: g}
}

func TestEstimateScalesWithProblemSize(t *testing.T) {
	small, err := Estimate(svcConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	big, err := Estimate(svcConfig(64))
	if err != nil {
		t.Fatal(err)
	}
	if small.RunSec <= 0 || small.WorkingSetBytes <= 0 {
		t.Fatalf("small estimate not positive: %+v", small)
	}
	if big.RunSec <= small.RunSec {
		t.Errorf("runtime estimate not monotone: 64³ %g <= 16³ %g", big.RunSec, small.RunSec)
	}
	if big.WorkingSetBytes <= small.WorkingSetBytes {
		t.Errorf("working set not monotone: %d <= %d", big.WorkingSetBytes, small.WorkingSetBytes)
	}
	// The working set covers at least the staged input plus the slab pairs
	// and the assembled result.
	if want := small.InputBytes + 2*small.OutputBytes; small.WorkingSetBytes < want {
		t.Errorf("working set %d < input+2·output %d", small.WorkingSetBytes, want)
	}
}

func TestEstimateMatchesPredict(t *testing.T) {
	cfg := svcConfig(32)
	est, err := Estimate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := cfg.Geometry
	pr := geometry.Problem{Nu: g.Nu, Nv: g.Nv, Np: g.Np, Nx: g.Nx, Ny: g.Ny, Nz: g.Nz}
	// The facade evaluates Predict with TH_flt rescaled from the paper's
	// 2048² measurement resolution to this problem's projection size.
	mb := ABCI()
	mb.THFlt *= refFltPixels / (float64(pr.Nu) * float64(pr.Nv))
	times, err := Predict(pr, cfg.R, cfg.C, mb)
	if err != nil {
		t.Fatal(err)
	}
	if est.RunSec != times.Runtime {
		t.Errorf("Estimate.RunSec %g != Predict.Runtime %g", est.RunSec, times.Runtime)
	}
	if est.RunSec != est.Times.Runtime {
		t.Errorf("RunSec %g != Times.Runtime %g", est.RunSec, est.Times.Runtime)
	}
	// At the measurement resolution the facade and the raw model agree.
	big := core.Config{R: 2, C: 2, Geometry: geometry.Default(2048, 2048, 64, 64, 64, 64)}
	bigEst, err := Estimate(big)
	if err != nil {
		t.Fatal(err)
	}
	bigPr := geometry.Problem{Nu: 2048, Nv: 2048, Np: 64, Nx: 64, Ny: 64, Nz: 64}
	raw, err := Predict(bigPr, 2, 2, ABCI())
	if err != nil {
		t.Fatal(err)
	}
	if bigEst.RunSec != raw.Runtime {
		t.Errorf("at 2048² the facade must match the paper's model: %g != %g", bigEst.RunSec, raw.Runtime)
	}
	if est.InputBytes != pr.InputBytes() || est.OutputBytes != pr.OutputBytes() {
		t.Errorf("byte accounting mismatch: %+v vs problem %v", est, pr)
	}
}

func TestEstimateRejectsBadGrid(t *testing.T) {
	cfg := svcConfig(16)
	cfg.R = 0
	if _, err := Estimate(cfg); err == nil {
		t.Error("estimate accepted a 0-row grid")
	}
}
