package perfmodel

import (
	"math"
	"testing"

	"ifdk/internal/ct/geometry"
)

func fourK() geometry.Problem {
	return geometry.Problem{Nu: 2048, Nv: 2048, Np: 4096, Nx: 4096, Ny: 4096, Nz: 4096}
}

func eightK() geometry.Problem {
	return geometry.Problem{Nu: 2048, Nv: 2048, Np: 4096, Nx: 8192, Ny: 8192, Nz: 8192}
}

func TestABCIValid(t *testing.T) {
	if err := ABCI().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadConstants(t *testing.T) {
	mb := ABCI()
	mb.BWStore = 0
	if err := mb.Validate(); err == nil {
		t.Error("zero store bandwidth accepted")
	}
	mb = ABCI()
	mb.PCIeContention = 1.5
	if err := mb.Validate(); err == nil {
		t.Error("contention > 1 accepted")
	}
}

func TestPredictRejectsBadGrid(t *testing.T) {
	if _, err := Predict(fourK(), 0, 4, ABCI()); err == nil {
		t.Error("R = 0 accepted")
	}
}

// Sec. 5.3.3 calibration points: storing 256 GB at 28.5 GB/s ≈ 9.0 s;
// storing 2 TB ≈ 77–88 s; D2H of 4×8 GB over dual PCIe ≈ 2.6 s;
// reducing 8 GB ≈ 2.7 s.
func TestPaperCalibrationPoints(t *testing.T) {
	mb := ABCI()
	t4k, err := Predict(fourK(), 32, 4, mb)
	if err != nil {
		t.Fatal(err)
	}
	// The paper quotes 9.0s for "256 GB"; 4·4096³ bytes is 256 GiB, hence
	// the ≈7% difference.
	if math.Abs(t4k.Store-9.0) > 0.75 {
		t.Errorf("4K store = %gs, paper ≈ 9.0s", t4k.Store)
	}
	if math.Abs(t4k.D2H-2.6) > 0.5 {
		t.Errorf("4K D2H = %gs, paper ≈ 2.6s", t4k.D2H)
	}
	if math.Abs(t4k.Reduce-2.7) > 0.4 {
		t.Errorf("4K reduce = %gs, paper ≈ 2.7s", t4k.Reduce)
	}
	t8k, err := Predict(eightK(), 256, 8, mb)
	if err != nil {
		t.Fatal(err)
	}
	if t8k.Store < 70 || t8k.Store > 90 {
		t.Errorf("8K store = %gs, paper ≈ 77–88s", t8k.Store)
	}
}

// Fig. 5a theoretical series: Tcompute halves as C doubles (R fixed at 32).
func TestStrongScalingCompute(t *testing.T) {
	mb := ABCI()
	prev := math.Inf(1)
	for _, c := range []int{1, 2, 4, 8, 16, 32, 64} {
		tm, err := Predict(fourK(), 32, c, mb)
		if err != nil {
			t.Fatal(err)
		}
		if tm.Compute >= prev {
			t.Errorf("C=%d: compute %g did not decrease (prev %g)", c, tm.Compute, prev)
		}
		prev = tm.Compute
	}
}

// Table 5 shape at 32 GPUs (R=32, C=1): Tbp ≈ 54.8 s dominates and
// TAllGather ≈ 31.4 s; our model should land in the same regime.
func TestTable5Anchor(t *testing.T) {
	tm, err := Predict(fourK(), 32, 1, ABCI())
	if err != nil {
		t.Fatal(err)
	}
	if tm.Bp < 35 || tm.Bp > 80 {
		t.Errorf("Tbp = %g, paper ≈ 54.8", tm.Bp)
	}
	if tm.AllGather < 20 || tm.AllGather > 45 {
		t.Errorf("TAllGather = %g, paper ≈ 31.4", tm.AllGather)
	}
	if tm.AllGather >= tm.Bp {
		t.Error("observation (ii) of Sec. 5.3.5: TAllGather < Tbp")
	}
	if tm.Compute != tm.Bp {
		t.Error("at 32 GPUs the back-projection dominates Tcompute")
	}
}

// Post time is independent of C (Eq. 18) and Reduce vanishes at C = 1.
func TestPostIndependentOfC(t *testing.T) {
	mb := ABCI()
	t1, _ := Predict(fourK(), 32, 1, mb)
	t4, _ := Predict(fourK(), 32, 4, mb)
	if t1.Reduce != 0 {
		t.Error("reduce should be zero for C = 1")
	}
	if t4.Reduce <= 0 {
		t.Error("reduce should be positive for C > 1")
	}
	if math.Abs(t1.Store-t4.Store) > 1e-9 || math.Abs(t1.D2H-t4.D2H) > 1e-9 {
		t.Error("store/D2H should not depend on C")
	}
}

// The AllGather ring cost grows with R for a fixed GPU count — the
// pressure that motivates minimizing R (Sec. 4.1.5 point III).
func TestAllGatherGrowsWithR(t *testing.T) {
	mb := ABCI()
	small, _ := Predict(eightK(), 32, 64, mb)
	big, _ := Predict(eightK(), 256, 8, mb)
	if big.AllGather <= small.AllGather {
		t.Errorf("AllGather should grow with R: R=256 %g vs R=32 %g", big.AllGather, small.AllGather)
	}
}

func TestTHBpProj(t *testing.T) {
	mb := ABCI()
	// 200 GUPS on a 2 Gi-voxel sub-volume = 100 projections/s.
	got := mb.THBpProj(2 * (1 << 30))
	if math.Abs(got-100) > 1e-9 {
		t.Errorf("THBpProj = %g, want 100", got)
	}
}

func TestRuntimeComposition(t *testing.T) {
	tm, err := Predict(fourK(), 32, 16, ABCI())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tm.Runtime-(tm.Compute+tm.Post)) > 1e-12 {
		t.Error("Eq. 19 violated")
	}
	wantPost := tm.Trans + tm.D2H + tm.Reduce + tm.Store
	if math.Abs(tm.Post-wantPost) > 1e-12 {
		t.Error("Eq. 18 violated")
	}
	if tm.Compute < tm.Load || tm.Compute < tm.Flt || tm.Compute < tm.AllGather || tm.Compute < tm.Bp {
		t.Error("Eq. 17 violated")
	}
	if g := tm.GUPS(fourK()); g <= 0 {
		t.Errorf("GUPS = %g", g)
	}
}
