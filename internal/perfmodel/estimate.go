package perfmodel

import (
	"fmt"

	"ifdk/internal/core"
	"ifdk/internal/ct/geometry"
)

// Cost is a submit-time estimate of what one reconstruction job will cost
// the service: the modelled runtime (Sec. 4.2, Eqs. 8–19) plus the working
// set the job pins while in flight. It is the currency of cost-aware
// admission: the service budgets queued work in estimated seconds and
// in-flight jobs in estimated bytes instead of a bare job count.
type Cost struct {
	Times Times // per-stage model times (model seconds)

	// RunSec is Times.Runtime: the modelled end-to-end duration in model
	// seconds. The service multiplies it by a calibration factor learned
	// from observed wall-clock runtimes, so only the *relative* cost
	// between geometries needs to be right, not the absolute scale.
	RunSec float64

	InputBytes  int64 // staged projection set (lives in the PFS for the run)
	OutputBytes int64 // assembled output volume

	// WorkingSetBytes is the peak bytes the job holds across the PFS and
	// the engine buffer pools: the staged input, the per-rank slab pairs
	// (which sum to one output volume), the assembled result volume, and
	// the pipeline's in-flight projection images.
	WorkingSetBytes int64
}

// pipelineDepth mirrors core.Config's default inter-stage ring-buffer
// capacity: each rank keeps up to this many decoded/filtered projection
// images in flight between its pipeline threads.
const pipelineDepth = 8

// Estimate evaluates the closed-form performance model for one service job
// described by cfg, using the paper's ABCI constants. Absolute times are
// therefore "model seconds" on the paper's testbed; admission calibrates
// them against observed runtimes (see Cost.RunSec).
func Estimate(cfg core.Config) (Cost, error) {
	return EstimateWith(cfg, ABCI())
}

// refFltPixels is the projection size (2048²) at which the paper measured
// TH_flt, which Predict treats as resolution-independent projections/s.
// Admission needs estimates that discriminate across resolutions, so the
// facade re-expresses filtering as constant PIXEL throughput: TH_flt is
// scaled by refFltPixels/(Nu·Nv) before evaluating the model. At 2048² the
// two are identical; at service-sized previews the scaled model no longer
// charges a 32² projection like a 2048² one.
const refFltPixels = 2048 * 2048

// EstimateWith is Estimate with explicit micro-benchmark constants.
func EstimateWith(cfg core.Config, mb MicroBench) (Cost, error) {
	g := cfg.Geometry
	pr := geometry.Problem{Nu: g.Nu, Nv: g.Nv, Np: g.Np, Nx: g.Nx, Ny: g.Ny, Nz: g.Nz}
	if pr.Nu > 0 && pr.Nv > 0 {
		mb.THFlt *= refFltPixels / (float64(pr.Nu) * float64(pr.Nv))
	}
	t, err := Predict(pr, cfg.R, cfg.C, mb)
	if err != nil {
		return Cost{}, err
	}
	if t.Runtime <= 0 {
		return Cost{}, fmt.Errorf("perfmodel: modelled runtime %g for %s is not positive", t.Runtime, pr)
	}
	in, out := pr.InputBytes(), pr.OutputBytes()
	projBytes := 4 * int64(pr.Nu) * int64(pr.Nv)
	scratch := int64(pipelineDepth) * int64(cfg.R) * int64(cfg.C) * projBytes
	return Cost{
		Times:           t,
		RunSec:          t.Runtime,
		InputBytes:      in,
		OutputBytes:     out,
		WorkingSetBytes: in + 2*out + scratch,
	}, nil
}
