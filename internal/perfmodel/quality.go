package perfmodel

// Quality-tier cost estimates: the pricing side of the service's quality
// knob (pkg/api.QualityPreview / QualityProgressive). A preview is a
// deliberately cheap admission class — it reconstructs the decimated
// problem (counts/d, pitches×d; see internal/ct/preview) from every d-th
// staged projection — so charging it the full job's modelled cost would
// starve exactly the interactive traffic the tier exists for. These
// estimates price the coarse problem on its own terms and let admission's
// runtime calibration absorb the absolute scale, as everywhere else.

import (
	"fmt"
	"math"

	"ifdk/internal/core"
	"ifdk/internal/ct/geometry"
)

// THDecim is the modelled block-mean decimation throughput in source
// pixels/s. The kernel (internal/ct/kernels AccRow/BlockMean) is a
// streaming accumulate over rows, so it runs at memory bandwidth; 4 Gpx/s
// (16 GB/s of float32 reads) is a deliberately conservative single-thread
// figure — like every constant here it only needs to rank previews
// sensibly against each other and against full jobs.
const THDecim = 4e9

// EstimatePreview prices the coarse tier of cfg's problem: the decimated
// geometry reconstructed on one rank. The Load term is corrected to what
// the preview actually reads — every factor-th projection of the FULL
// dataset at full resolution (decimation happens after the read) — and the
// block-mean arithmetic is folded into the filter stage, since both run on
// the same per-projection ingest path.
func EstimatePreview(cfg core.Config, coarse geometry.Params, factor int) (Cost, error) {
	if factor < 1 {
		return Cost{}, fmt.Errorf("perfmodel: preview factor %d < 1", factor)
	}
	mb := ABCI()
	pr := geometry.Problem{Nu: coarse.Nu, Nv: coarse.Nv, Np: coarse.Np,
		Nx: coarse.Nx, Ny: coarse.Ny, Nz: coarse.Nz}
	if pr.Nu > 0 && pr.Nv > 0 {
		mb.THFlt *= refFltPixels / (float64(pr.Nu) * float64(pr.Nv))
	}
	t, err := Predict(pr, 1, 1, mb)
	if err != nil {
		return Cost{}, err
	}

	full := cfg.Geometry
	srcPixels := float64(full.Nu) * float64(full.Nv) * float64(pr.Np)
	readBytes := 4 * int64(full.Nu) * int64(full.Nv) * int64(pr.Np)
	t.Load = float64(readBytes) / mb.BWLoad
	t.Flt += srcPixels / THDecim
	t.Compute = math.Max(math.Max(t.Load, t.Flt), math.Max(t.AllGather, t.Bp)) // Eq. 17
	t.Runtime = t.Compute + t.Post                                             // Eq. 19
	if t.Runtime <= 0 {
		return Cost{}, fmt.Errorf("perfmodel: modelled preview runtime %g for %s is not positive", t.Runtime, pr)
	}

	out := pr.OutputBytes()
	// Scratch: the pipeline's coarse images plus the one full-resolution
	// staging image the decimator reuses across reads.
	coarseProj := 4 * int64(pr.Nu) * int64(pr.Nv)
	fullProj := 4 * int64(full.Nu) * int64(full.Nv)
	scratch := int64(pipelineDepth)*coarseProj + fullProj
	return Cost{
		Times:           t,
		RunSec:          t.Runtime,
		InputBytes:      readBytes,
		OutputBytes:     out,
		WorkingSetBytes: readBytes + 2*out + scratch,
	}, nil
}

// EstimateProgressive prices a progressive job: the full-resolution
// reconstruction plus its leading preview phase, run back to back under one
// job ID. The stage breakdown reported is the full job's (the phase that
// dominates and that calibration observes end to end); the preview's
// modelled seconds are added to RunSec, and its retained coarse volume to
// the working set. InputBytes stays the full staged dataset — the preview
// reads from the same staging, it does not stage again.
func EstimateProgressive(cfg core.Config, coarse geometry.Params, factor int) (Cost, error) {
	fc, err := Estimate(cfg)
	if err != nil {
		return Cost{}, err
	}
	pc, err := EstimatePreview(cfg, coarse, factor)
	if err != nil {
		return Cost{}, err
	}
	fc.RunSec += pc.RunSec
	fc.Times.Runtime += pc.RunSec
	fc.OutputBytes += pc.OutputBytes
	// The preview's working set minus the staged input it shares with the
	// full job (already counted once in fc).
	fc.WorkingSetBytes += pc.WorkingSetBytes - pc.InputBytes
	return fc, nil
}
