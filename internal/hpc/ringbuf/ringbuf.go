// Package ringbuf implements the bounded, blocking circular buffer that
// connects the three pipeline threads inside each iFDK rank (Fig. 4a of the
// paper: Filtering-thread → Main-thread → Bp-thread exchange data via two
// "queue-buffers").
//
// The buffer is a classic fixed-capacity ring guarded by a mutex and two
// condition variables. Put blocks while the ring is full, Get blocks while
// it is empty, and Close releases all waiters: pending items can still be
// drained, after which Get reports !ok.
package ringbuf

import (
	"fmt"
	"sync"
)

// Ring is a bounded FIFO queue safe for concurrent producers and consumers.
type Ring[T any] struct {
	mu       sync.Mutex
	notFull  *sync.Cond
	notEmpty *sync.Cond
	buf      []T
	head     int // index of the oldest element
	n        int // number of stored elements
	closed   bool
}

// New creates a ring with the given capacity (must be > 0).
func New[T any](capacity int) *Ring[T] {
	if capacity <= 0 {
		panic(fmt.Sprintf("ringbuf: invalid capacity %d", capacity))
	}
	r := &Ring[T]{buf: make([]T, capacity)}
	r.notFull = sync.NewCond(&r.mu)
	r.notEmpty = sync.NewCond(&r.mu)
	return r
}

// Cap returns the fixed capacity.
func (r *Ring[T]) Cap() int { return len(r.buf) }

// Len returns the current number of buffered elements.
func (r *Ring[T]) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Put appends v, blocking while the ring is full. It returns false when the
// ring has been closed (the value is dropped).
func (r *Ring[T]) Put(v T) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.n == len(r.buf) && !r.closed {
		r.notFull.Wait()
	}
	if r.closed {
		return false
	}
	r.buf[(r.head+r.n)%len(r.buf)] = v
	r.n++
	r.notEmpty.Signal()
	return true
}

// TryPut appends v without blocking; it reports whether the value was
// stored.
func (r *Ring[T]) TryPut(v T) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed || r.n == len(r.buf) {
		return false
	}
	r.buf[(r.head+r.n)%len(r.buf)] = v
	r.n++
	r.notEmpty.Signal()
	return true
}

// Get removes and returns the oldest element, blocking while the ring is
// empty. After Close, buffered elements are still returned; once drained
// Get returns the zero value and false.
func (r *Ring[T]) Get() (T, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.n == 0 && !r.closed {
		r.notEmpty.Wait()
	}
	if r.n == 0 {
		var zero T
		return zero, false
	}
	return r.popLocked(), true
}

// TryGet removes the oldest element without blocking.
func (r *Ring[T]) TryGet() (T, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.n == 0 {
		var zero T
		return zero, false
	}
	return r.popLocked(), true
}

func (r *Ring[T]) popLocked() T {
	v := r.buf[r.head]
	var zero T
	r.buf[r.head] = zero // release references for the garbage collector
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	r.notFull.Signal()
	return v
}

// Close marks the ring closed. Blocked producers return false; consumers
// drain the remaining elements and then observe !ok. Close is idempotent.
func (r *Ring[T]) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	r.closed = true
	r.notFull.Broadcast()
	r.notEmpty.Broadcast()
}

// Closed reports whether Close has been called.
func (r *Ring[T]) Closed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.closed
}
