package ringbuf

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestFIFOOrder(t *testing.T) {
	r := New[int](4)
	for i := 0; i < 4; i++ {
		if !r.Put(i) {
			t.Fatalf("Put(%d) failed", i)
		}
	}
	for i := 0; i < 4; i++ {
		v, ok := r.Get()
		if !ok || v != i {
			t.Fatalf("Get = %d,%v want %d", v, ok, i)
		}
	}
}

func TestTryPutTryGet(t *testing.T) {
	r := New[string](1)
	if ok := r.TryPut("a"); !ok {
		t.Fatal("TryPut on empty ring failed")
	}
	if ok := r.TryPut("b"); ok {
		t.Fatal("TryPut on full ring succeeded")
	}
	v, ok := r.TryGet()
	if !ok || v != "a" {
		t.Fatalf("TryGet = %q,%v", v, ok)
	}
	if _, ok := r.TryGet(); ok {
		t.Fatal("TryGet on empty ring succeeded")
	}
}

func TestBlockingPut(t *testing.T) {
	r := New[int](1)
	r.Put(1)
	done := make(chan bool)
	go func() {
		done <- r.Put(2) // must block until a Get frees a slot
	}()
	select {
	case <-done:
		t.Fatal("Put returned while ring was full")
	case <-time.After(20 * time.Millisecond):
	}
	if v, ok := r.Get(); !ok || v != 1 {
		t.Fatalf("Get = %d,%v", v, ok)
	}
	if ok := <-done; !ok {
		t.Fatal("blocked Put should have succeeded")
	}
	if v, ok := r.Get(); !ok || v != 2 {
		t.Fatalf("Get = %d,%v", v, ok)
	}
}

func TestCloseDrains(t *testing.T) {
	r := New[int](4)
	r.Put(1)
	r.Put(2)
	r.Close()
	if r.Put(3) {
		t.Error("Put after Close should fail")
	}
	if v, ok := r.Get(); !ok || v != 1 {
		t.Errorf("drain Get = %d,%v", v, ok)
	}
	if v, ok := r.Get(); !ok || v != 2 {
		t.Errorf("drain Get = %d,%v", v, ok)
	}
	if _, ok := r.Get(); ok {
		t.Error("Get after drain should report !ok")
	}
	r.Close() // idempotent
	if !r.Closed() {
		t.Error("Closed() = false after Close")
	}
}

func TestCloseWakesBlockedConsumer(t *testing.T) {
	r := New[int](1)
	done := make(chan bool)
	go func() {
		_, ok := r.Get()
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	r.Close()
	select {
	case ok := <-done:
		if ok {
			t.Error("Get on closed empty ring should report !ok")
		}
	case <-time.After(time.Second):
		t.Fatal("Close did not wake consumer")
	}
}

func TestConcurrentProducersConsumers(t *testing.T) {
	const producers, perProducer = 4, 500
	r := New[int](8)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				r.Put(p*perProducer + i)
			}
		}(p)
	}
	var mu sync.Mutex
	seen := make(map[int]bool)
	var cg sync.WaitGroup
	for c := 0; c < 3; c++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			for {
				v, ok := r.Get()
				if !ok {
					return
				}
				mu.Lock()
				if seen[v] {
					t.Errorf("duplicate value %d", v)
				}
				seen[v] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	r.Close()
	cg.Wait()
	if len(seen) != producers*perProducer {
		t.Errorf("received %d of %d values", len(seen), producers*perProducer)
	}
}

// Property: for any sequence of puts within capacity, gets return the same
// sequence (FIFO invariant).
func TestFIFOProperty(t *testing.T) {
	f := func(vals []int16) bool {
		if len(vals) == 0 {
			return true
		}
		r := New[int16](len(vals))
		for _, v := range vals {
			if !r.Put(v) {
				return false
			}
		}
		if r.Len() != len(vals) {
			return false
		}
		for _, want := range vals {
			got, ok := r.Get()
			if !ok || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestWrapAround(t *testing.T) {
	r := New[int](3)
	for round := 0; round < 10; round++ {
		for i := 0; i < 3; i++ {
			r.Put(round*3 + i)
		}
		for i := 0; i < 3; i++ {
			v, ok := r.Get()
			if !ok || v != round*3+i {
				t.Fatalf("round %d: Get = %d,%v", round, v, ok)
			}
		}
	}
}

func TestNewPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) should panic")
		}
	}()
	New[int](0)
}
