package mpi

import (
	"runtime"
	"runtime/debug"
	"testing"

	"ifdk/internal/race"
)

// ReduceBufs must combine in the same order as Reduce (bit-identical
// accumulation) at every root, including non-power-of-two world sizes
// where the binomial tree is irregular.
func TestReduceBufsMatchesReduce(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8} {
		for root := 0; root < n; root++ {
			err := Run(n, func(c *Comm) error {
				data := make([]float32, 33)
				for i := range data {
					data[i] = float32(c.Rank()+1) * float32(i+1) * 0.127
				}
				ref, err := c.Reduce(root, data, OpSum)
				if err != nil {
					return err
				}
				got, err := c.ReduceBufs(root, data, OpSum)
				if err != nil {
					return err
				}
				defer got.Release()
				if (got != nil) != (c.Rank() == root) {
					t.Errorf("n=%d root=%d rank %d: block presence wrong (got=%v)", n, root, c.Rank(), got != nil)
					return nil
				}
				if got == nil {
					return nil
				}
				for i := range ref {
					if got.Data[i] != ref[i] {
						t.Errorf("n=%d root=%d: element %d: pooled %v vs %v", n, root, i, got.Data[i], ref[i])
						return nil
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
}

// BcastBufs must deliver the root payload to every rank, with each rank
// owning an independent pooled block.
func TestBcastBufsMatchesBcast(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		for root := 0; root < n; root++ {
			err := Run(n, func(c *Comm) error {
				var payload []float32
				if c.Rank() == root {
					payload = make([]float32, 17)
					for i := range payload {
						payload[i] = float32(root*100 + i)
					}
				}
				got, err := c.BcastBufs(root, payload)
				if err != nil {
					return err
				}
				defer got.Release()
				if len(got.Data) != 17 {
					t.Errorf("n=%d root=%d rank %d: got %d elements, want 17", n, root, c.Rank(), len(got.Data))
					return nil
				}
				for i := range got.Data {
					if got.Data[i] != float32(root*100+i) {
						t.Errorf("n=%d root=%d rank %d: element %d = %v", n, root, c.Rank(), i, got.Data[i])
						return nil
					}
				}
				// Each rank owns its block: writing here must not corrupt
				// anyone else (Run joins all ranks, so a shared backing array
				// would be caught by -race and by value checks above).
				got.Data[0] = float32(c.Rank())
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
}

// SendBuf/RecvBuf must move a pooled payload point-to-point with the
// ownership contract intact, and SendBuf must release the block itself on
// a validation error (ownership always transfers).
func TestSendBufRecvBuf(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			buf := blockPool.Acquire(8)
			for i := range buf.Data {
				buf.Data[i] = float32(i) * 2
			}
			if err := c.SendBuf(1, 7, buf); err != nil {
				return err
			}
			// Invalid destination: SendBuf still consumes the block.
			bad := blockPool.Acquire(4)
			if err := c.SendBuf(99, 7, bad); err == nil {
				t.Error("SendBuf to invalid rank succeeded")
			}
			bad = blockPool.Acquire(4)
			if err := c.SendBuf(1, -1, bad); err == nil {
				t.Error("SendBuf with negative tag succeeded")
			}
			return nil
		}
		got, err := c.RecvBuf(0, 7)
		if err != nil {
			return err
		}
		defer got.Release()
		for i := range got.Data {
			if got.Data[i] != float32(i)*2 {
				t.Errorf("element %d = %v", i, got.Data[i])
				return nil
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// The reduce/bcast epilogue must run on pooled blocks: steady-state
// allocation per AllReduce round has to sit far below the unpooled
// baseline of one accumulator plus one tree transfer per rank. GC is
// disabled across the measurement so sync.Pool cannot be drained mid-test.
func TestReduceBcastBufsAllocRegression(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation accounting is skewed by race instrumentation")
	}
	const (
		ranks    = 4
		blockLen = 64 * 1024 // 256 KiB per block, a realistic slab-pair shard
		rounds   = 50
	)
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	doRounds := func(k int) error {
		return Run(ranks, func(c *Comm) error {
			data := make([]float32, blockLen)
			for r := 0; r < k; r++ {
				red, err := c.ReduceBufs(0, data, OpSum)
				if err != nil {
					return err
				}
				var payload []float32
				if red != nil {
					payload = red.Data
				}
				got, err := c.BcastBufs(0, payload)
				red.Release()
				if err != nil {
					return err
				}
				got.Release()
			}
			return nil
		})
	}
	// Warm the pool (first rounds do allocate their blocks).
	if err := doRounds(4); err != nil {
		t.Fatal(err)
	}

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	if err := doRounds(rounds); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)

	perRound := int64(after.TotalAlloc-before.TotalAlloc) / rounds
	// Unpooled, every rank allocates an accumulator and every tree edge a
	// transfer copy: ~2 × ranks × blockLen × 4 bytes per round.
	unpooled := int64(2 * ranks * blockLen * 4)
	t.Logf("pooled reduce+bcast allocates %d B/round (unpooled baseline %d B/round)", perRound, unpooled)
	if perRound > unpooled/5 {
		t.Fatalf("ReduceBufs+BcastBufs allocate %d B/round, want < 20%% of the %d B/round unpooled baseline — blocks are not being pooled",
			perRound, unpooled)
	}
}
