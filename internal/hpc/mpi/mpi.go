// Package mpi provides an in-process message-passing runtime with MPI-like
// semantics: ranks execute as goroutines, exchange copied messages through
// matched (source, tag) mailboxes, and synchronize through collectives
// implemented on top of point-to-point transfers (ring AllGather, binomial
// Reduce/Bcast), so their cost structure matches the models in the paper's
// Sec. 4.2.
//
// The paper drives iFDK with Intel MPI over InfiniBand; this package is the
// substitution that lets the full framework — the 2-D rank grid, the column
// AllGather of filtered projections and the row Reduce of sub-volumes
// (Fig. 3) — run unmodified on one machine. Collective reduction orders are
// fixed by the tree shape, so distributed results are deterministic for a
// given communicator size.
package mpi

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"ifdk/internal/engine"
)

// ErrAborted is returned by communication calls after any rank in the world
// has failed; it prevents surviving ranks from deadlocking in collectives.
var ErrAborted = errors.New("mpi: world aborted")

// envelope is an in-flight message.
type envelope struct {
	ctx  int64 // communicator context id
	src  int   // global source rank
	tag  int
	data []float32
	buf  *engine.Buf[float32] // non-nil when data rides a pooled block
}

// blockPool recycles collective payload blocks across rounds. The paper's
// pipeline performs one AllGather per projection round (Sec. 4.1.3), so an
// unpooled implementation allocates size×block bytes per rank per round —
// the last steady-state allocation left in the compute plane after PR 2.
var blockPool engine.BufPool[float32]

// mailbox holds undelivered messages for one global rank.
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []envelope
	aborted bool
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// world is the shared state behind all communicators of one Run.
type world struct {
	size      int
	boxes     []*mailbox
	nextCtx   atomic.Int64
	aborted   atomic.Bool
	bytesSent atomic.Int64
	msgsSent  atomic.Int64

	splitMu sync.Mutex
	splits  map[string]*splitState

	sharedMu sync.Mutex
	shareds  []*commShared // every communicator ever built, for abort wakeups
}

type splitState struct {
	want    int
	entries []splitEntry
	done    bool
	result  map[int]*commShared // global rank → new shared comm
	cond    *sync.Cond
}

type splitEntry struct {
	color, key, globalRank, commRank int
}

// commShared is the per-communicator state shared by all member handles.
type commShared struct {
	ctx    int64
	w      *world
	global []int // commRank → global rank

	barrierMu   sync.Mutex
	barrierCond *sync.Cond
	barrierCnt  int
	barrierGen  int
}

// Comm is one rank's handle on a communicator.
type Comm struct {
	shared   *commShared
	rank     int // rank within this communicator
	splitSeq int // number of Splits this rank has performed on this comm
}

func newWorld(n int) *world {
	w := &world{size: n, boxes: make([]*mailbox, n), splits: make(map[string]*splitState)}
	for i := range w.boxes {
		w.boxes[i] = newMailbox()
	}
	return w
}

func (w *world) newShared(global []int) *commShared {
	s := &commShared{ctx: w.nextCtx.Add(1), w: w, global: global}
	s.barrierCond = sync.NewCond(&s.barrierMu)
	w.sharedMu.Lock()
	w.shareds = append(w.shareds, s)
	w.sharedMu.Unlock()
	return s
}

// abort marks the world dead and wakes every blocked waiter: mailbox
// receivers, in-flight Split rendezvous and Barrier parties. All of them
// re-check the aborted flag under the same mutex their wait uses, so no
// wakeup is lost.
func (w *world) abort() {
	if w.aborted.Swap(true) {
		return
	}
	for _, b := range w.boxes {
		b.mu.Lock()
		b.aborted = true
		// Undelivered messages will never be received (recv reports
		// ErrAborted without dequeuing); recycle their pooled blocks
		// instead of stranding them until GC.
		for i := range b.queue {
			b.queue[i].buf.Release() // nil-safe
		}
		b.queue = nil
		b.cond.Broadcast()
		b.mu.Unlock()
	}
	w.splitMu.Lock()
	for _, st := range w.splits {
		st.cond.Broadcast()
	}
	w.splitMu.Unlock()
	w.sharedMu.Lock()
	shareds := append([]*commShared(nil), w.shareds...)
	w.sharedMu.Unlock()
	for _, s := range shareds {
		s.barrierMu.Lock()
		s.barrierCond.Broadcast()
		s.barrierMu.Unlock()
	}
}

// Run executes body on n ranks (goroutines) sharing a fresh world and
// returns the combined errors of all ranks. A panicking rank is converted to
// an error and aborts the world, releasing ranks blocked in communication.
func Run(n int, body func(c *Comm) error) error {
	return RunContext(context.Background(), n, body)
}

// RunContext is Run with external cancellation: when ctx is cancelled the
// world aborts, so ranks blocked in point-to-point or collective calls
// return ErrAborted instead of deadlocking. This is the teardown path a
// long-lived service uses to cancel an in-flight reconstruction.
func RunContext(ctx context.Context, n int, body func(c *Comm) error) error {
	if n <= 0 {
		return fmt.Errorf("mpi: world size %d must be positive", n)
	}
	w := newWorld(n)
	stop := make(chan struct{})
	defer close(stop)
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				w.abort()
			case <-stop:
			}
		}()
	}
	global := make([]int, n)
	for i := range global {
		global[i] = i
	}
	shared := w.newShared(global)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[r] = fmt.Errorf("mpi: rank %d panicked: %v", r, p)
					w.abort()
				}
			}()
			errs[r] = body(&Comm{shared: shared, rank: r})
			if errs[r] != nil {
				w.abort()
			}
		}(r)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Rank returns this rank's id within the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.shared.global) }

// GlobalRank returns this rank's id in the world communicator.
func (c *Comm) GlobalRank() int { return c.shared.global[c.rank] }

// BytesSent returns the total payload bytes sent so far across the world —
// a hook for validating the communication-volume terms of the performance
// model.
func (c *Comm) BytesSent() int64 { return c.shared.w.bytesSent.Load() }

// MessagesSent returns the total number of messages sent across the world.
func (c *Comm) MessagesSent() int64 { return c.shared.w.msgsSent.Load() }

// Send delivers a copy of data to dst (a rank of this communicator) with
// the given non-negative tag. Sends are buffered and never block.
func (c *Comm) Send(dst, tag int, data []float32) error {
	if tag < 0 {
		return fmt.Errorf("mpi: negative tags are reserved")
	}
	return c.send(dst, tag, data)
}

func (c *Comm) send(dst, tag int, data []float32) error {
	if dst < 0 || dst >= c.Size() {
		return fmt.Errorf("mpi: send to invalid rank %d (size %d)", dst, c.Size())
	}
	if c.shared.w.aborted.Load() {
		return ErrAborted
	}
	cp := make([]float32, len(data))
	copy(cp, data)
	c.enqueue(dst, tag, envelope{data: cp})
	return nil
}

// sendPooled is send with the payload copy drawn from the shared block
// pool instead of the heap; the receiving end recovers the pooled handle
// through recvPooled and owns its release.
//
//ifdk:hotpath
func (c *Comm) sendPooled(dst, tag int, data []float32) error {
	if dst < 0 || dst >= c.Size() {
		return fmt.Errorf("mpi: send to invalid rank %d (size %d)", dst, c.Size())
	}
	if c.shared.w.aborted.Load() {
		// An aborted world delivers nothing: drop before acquiring, or the
		// block would strand in a mailbox no one will ever drain.
		return ErrAborted
	}
	buf := blockPool.Acquire(len(data))
	copy(buf.Data, data)
	c.enqueue(dst, tag, envelope{data: buf.Data, buf: buf})
	return nil
}

// sendBuf delivers an already-pooled block to dst, transferring ownership
// into the mailbox without a copy — the zero-copy counterpart of sendPooled
// for payloads that already live in pooled blocks (e.g. a ReduceBufs
// accumulator moving up the tree). Ownership ALWAYS transfers: on any error
// the block is released here, so the caller must not touch it afterwards
// regardless of outcome.
//
//ifdk:hotpath
func (c *Comm) sendBuf(dst, tag int, buf *engine.Buf[float32]) error {
	if dst < 0 || dst >= c.Size() {
		buf.Release()
		return fmt.Errorf("mpi: send to invalid rank %d (size %d)", dst, c.Size())
	}
	if c.shared.w.aborted.Load() {
		buf.Release()
		return ErrAborted
	}
	c.enqueue(dst, tag, envelope{data: buf.Data, buf: buf})
	return nil
}

// SendBuf is Send for pooled blocks: the payload moves to dst without a
// copy, and ownership of buf always transfers (released internally on
// error). Pair with RecvBuf on the receiving side.
func (c *Comm) SendBuf(dst, tag int, buf *engine.Buf[float32]) error {
	if tag < 0 {
		buf.Release()
		return fmt.Errorf("mpi: negative tags are reserved")
	}
	return c.sendBuf(dst, tag, buf)
}

// RecvBuf is Recv returning the pooled block handle; the caller owns the
// release.
func (c *Comm) RecvBuf(src, tag int) (*engine.Buf[float32], error) {
	if tag < 0 {
		return nil, fmt.Errorf("mpi: negative tags are reserved")
	}
	return c.recvPooled(src, tag)
}

func (c *Comm) enqueue(dst, tag int, env envelope) {
	env.ctx, env.src, env.tag = c.shared.ctx, c.rank, tag
	box := c.shared.w.boxes[c.shared.global[dst]]
	box.mu.Lock()
	box.queue = append(box.queue, env)
	box.cond.Broadcast()
	box.mu.Unlock()
	c.shared.w.bytesSent.Add(int64(4 * len(env.data)))
	c.shared.w.msgsSent.Add(1)
}

// Recv blocks until a message from src with the given tag arrives and
// returns its payload.
func (c *Comm) Recv(src, tag int) ([]float32, error) {
	if tag < 0 {
		return nil, fmt.Errorf("mpi: negative tags are reserved")
	}
	return c.recv(src, tag)
}

func (c *Comm) recv(src, tag int) ([]float32, error) {
	env, err := c.recvEnvelope(src, tag)
	if err != nil {
		return nil, err
	}
	return env.data, nil
}

// recvPooled is recv returning the pooled block handle; the caller owns the
// release. A payload that arrived unpooled is copied into a pooled block so
// the ownership contract is uniform.
func (c *Comm) recvPooled(src, tag int) (*engine.Buf[float32], error) {
	env, err := c.recvEnvelope(src, tag)
	if err != nil {
		return nil, err
	}
	if env.buf != nil {
		return env.buf, nil
	}
	buf := blockPool.Acquire(len(env.data))
	copy(buf.Data, env.data)
	return buf, nil
}

func (c *Comm) recvEnvelope(src, tag int) (envelope, error) {
	if src < 0 || src >= c.Size() {
		return envelope{}, fmt.Errorf("mpi: recv from invalid rank %d (size %d)", src, c.Size())
	}
	box := c.shared.w.boxes[c.GlobalRank()]
	box.mu.Lock()
	defer box.mu.Unlock()
	for {
		for i, env := range box.queue {
			if env.ctx == c.shared.ctx && env.src == src && env.tag == tag {
				box.queue = append(box.queue[:i], box.queue[i+1:]...)
				return env, nil
			}
		}
		if box.aborted {
			return envelope{}, ErrAborted
		}
		box.cond.Wait()
	}
}

// Barrier blocks until every rank of the communicator has entered it.
//
//ifdk:noctx cancellation contract is Abort/RunContext, which wakes every parked collective
func (c *Comm) Barrier() error {
	s := c.shared
	s.barrierMu.Lock()
	defer s.barrierMu.Unlock()
	gen := s.barrierGen
	s.barrierCnt++
	if s.barrierCnt == c.Size() {
		s.barrierCnt = 0
		s.barrierGen++
		s.barrierCond.Broadcast()
		return nil
	}
	for s.barrierGen == gen {
		if s.w.aborted.Load() {
			s.barrierCond.Broadcast()
			return ErrAborted
		}
		s.barrierCond.Wait()
	}
	return nil
}

const (
	tagBcast  = -2
	tagGather = -3
	tagAllG   = -4
	tagReduce = -5
)

// Bcast distributes root's data to every rank: root passes the payload and
// receives a copy of it; other ranks pass nil. A binomial tree is used, so
// the critical path is log2(size) messages.
func (c *Comm) Bcast(root int, data []float32) ([]float32, error) {
	size := c.Size()
	if root < 0 || root >= size {
		return nil, fmt.Errorf("mpi: bcast root %d out of range", root)
	}
	// Rotate ranks so the root is virtual rank 0.
	vr := (c.rank - root + size) % size
	var buf []float32
	if vr == 0 {
		buf = make([]float32, len(data))
		copy(buf, data)
	} else {
		// Receive from the parent in the binomial tree.
		mask := 1
		for mask < size {
			if vr&mask != 0 {
				parent := (vr - mask + root) % size
				got, err := c.recv(parent, tagBcast)
				if err != nil {
					return nil, err
				}
				buf = got
				break
			}
			mask <<= 1
		}
	}
	// Forward to children.
	mask := 1
	for mask < size {
		if vr&mask != 0 {
			break
		}
		mask <<= 1
	}
	for m := mask >> 1; m > 0; m >>= 1 {
		child := vr | m
		if child < size && child != vr {
			if err := c.send((child+root)%size, tagBcast, buf); err != nil {
				return nil, err
			}
		}
	}
	return buf, nil
}

// Gather collects each rank's data at root. Root receives size slices in
// rank order; other ranks receive nil.
func (c *Comm) Gather(root int, data []float32) ([][]float32, error) {
	size := c.Size()
	if root < 0 || root >= size {
		return nil, fmt.Errorf("mpi: gather root %d out of range", root)
	}
	if c.rank != root {
		return nil, c.send(root, tagGather, data)
	}
	out := make([][]float32, size)
	own := make([]float32, len(data))
	copy(own, data)
	out[root] = own
	for r := 0; r < size; r++ {
		if r == root {
			continue
		}
		got, err := c.recv(r, tagGather)
		if err != nil {
			return nil, err
		}
		out[r] = got
	}
	return out, nil
}

// AllGather gathers every rank's payload on every rank (rank order
// preserved) with the ring algorithm: size-1 steps, each transferring one
// block to the right neighbour. This is the collective used to share
// filtered projections within a column group (Fig. 3b).
func (c *Comm) AllGather(data []float32) ([][]float32, error) {
	size := c.Size()
	out := make([][]float32, size)
	own := make([]float32, len(data))
	copy(own, data)
	out[c.rank] = own
	if size == 1 {
		return out, nil
	}
	right := (c.rank + 1) % size
	left := (c.rank - 1 + size) % size
	for step := 0; step < size-1; step++ {
		sendIdx := (c.rank - step + size) % size
		if err := c.send(right, tagAllG, out[sendIdx]); err != nil {
			return nil, err
		}
		got, err := c.recv(left, tagAllG)
		if err != nil {
			return nil, err
		}
		out[(c.rank-step-1+size)%size] = got
	}
	return out, nil
}

// AllGatherBufs is AllGather with every block — the rank's own copy and
// each received one — drawn from a shared pool instead of the heap. The
// caller owns all size returned blocks and must Release each when done;
// out[i].Data is rank i's payload. This is the allocation-free path the
// per-round pipeline uses: the ring exchanges the same block sizes every
// round, so steady state recycles instead of allocating (see the
// AllGather-block item on the ROADMAP, closed by this method).
func (c *Comm) AllGatherBufs(data []float32) ([]*engine.Buf[float32], error) {
	size := c.Size()
	out := make([]*engine.Buf[float32], size)
	release := func() {
		for _, b := range out {
			b.Release() // nil-safe
		}
	}
	own := blockPool.Acquire(len(data))
	copy(own.Data, data)
	out[c.rank] = own
	if size == 1 {
		return out, nil
	}
	right := (c.rank + 1) % size
	left := (c.rank - 1 + size) % size
	for step := 0; step < size-1; step++ {
		sendIdx := (c.rank - step + size) % size
		if err := c.sendPooled(right, tagAllG, out[sendIdx].Data); err != nil {
			release()
			return nil, err
		}
		got, err := c.recvPooled(left, tagAllG)
		if err != nil {
			release()
			return nil, err
		}
		out[(c.rank-step-1+size)%size] = got
	}
	return out, nil
}

// ReduceOp is a binary element-wise reduction operator.
type ReduceOp int

const (
	// OpSum adds elements (the volume reduction of Fig. 4b).
	OpSum ReduceOp = iota
	// OpMax keeps the per-element maximum.
	OpMax
	// OpMin keeps the per-element minimum.
	OpMin
)

func (op ReduceOp) apply(acc, in []float32) error {
	if len(acc) != len(in) {
		return fmt.Errorf("mpi: reduce length mismatch %d vs %d", len(acc), len(in))
	}
	switch op {
	case OpSum:
		for i := range acc {
			acc[i] += in[i]
		}
	case OpMax:
		for i := range acc {
			if in[i] > acc[i] {
				acc[i] = in[i]
			}
		}
	case OpMin:
		for i := range acc {
			if in[i] < acc[i] {
				acc[i] = in[i]
			}
		}
	default:
		return fmt.Errorf("mpi: unknown reduce op %d", op)
	}
	return nil
}

// Reduce combines all ranks' equally sized payloads element-wise at root
// using a binomial tree (log2(size) combining steps on the critical path,
// matching the cost model of Eq. 15). Root receives the result; other ranks
// receive nil. The combine order is fixed by the tree, so results are
// deterministic.
func (c *Comm) Reduce(root int, data []float32, op ReduceOp) ([]float32, error) {
	size := c.Size()
	if root < 0 || root >= size {
		return nil, fmt.Errorf("mpi: reduce root %d out of range", root)
	}
	vr := (c.rank - root + size) % size
	acc := make([]float32, len(data))
	copy(acc, data)
	for mask := 1; mask < size; mask <<= 1 {
		if vr&mask != 0 {
			parent := (vr - mask + root) % size
			return nil, c.send(parent, tagReduce, acc)
		}
		peer := vr | mask
		if peer < size {
			got, err := c.recv((peer+root)%size, tagReduce)
			if err != nil {
				return nil, err
			}
			if err := op.apply(acc, got); err != nil {
				return nil, err
			}
		}
	}
	if vr == 0 {
		return acc, nil
	}
	return nil, nil
}

// ReduceBufs is Reduce with the accumulator and every tree transfer drawn
// from the shared block pool — the allocation-free path the per-job epilogue
// uses once per reconstruction (the last unpooled per-round payloads after
// the AllGather blocks were pooled). The combine order matches Reduce
// exactly, so results stay deterministic. Root owns the returned block and
// must Release it; other ranks receive nil.
func (c *Comm) ReduceBufs(root int, data []float32, op ReduceOp) (*engine.Buf[float32], error) {
	size := c.Size()
	if root < 0 || root >= size {
		return nil, fmt.Errorf("mpi: reduce root %d out of range", root)
	}
	vr := (c.rank - root + size) % size
	acc := blockPool.Acquire(len(data))
	copy(acc.Data, data)
	for mask := 1; mask < size; mask <<= 1 {
		if vr&mask != 0 {
			// Interior rank: the accumulator itself moves to the parent.
			parent := (vr - mask + root) % size
			return nil, c.sendBuf(parent, tagReduce, acc)
		}
		peer := vr | mask
		if peer < size {
			got, err := c.recvPooled((peer+root)%size, tagReduce)
			if err != nil {
				acc.Release()
				return nil, err
			}
			err = op.apply(acc.Data, got.Data)
			got.Release()
			if err != nil {
				acc.Release()
				return nil, err
			}
		}
	}
	return acc, nil
}

// BcastBufs is Bcast with every payload block drawn from the shared pool:
// each rank owns the returned block and must Release it. Root passes the
// payload; other ranks pass nil.
func (c *Comm) BcastBufs(root int, data []float32) (*engine.Buf[float32], error) {
	size := c.Size()
	if root < 0 || root >= size {
		return nil, fmt.Errorf("mpi: bcast root %d out of range", root)
	}
	vr := (c.rank - root + size) % size
	var buf *engine.Buf[float32]
	if vr == 0 {
		buf = blockPool.Acquire(len(data))
		copy(buf.Data, data)
	} else {
		mask := 1
		for mask < size {
			if vr&mask != 0 {
				parent := (vr - mask + root) % size
				got, err := c.recvPooled(parent, tagBcast)
				if err != nil {
					return nil, err
				}
				buf = got
				break
			}
			mask <<= 1
		}
	}
	mask := 1
	for mask < size {
		if vr&mask != 0 {
			break
		}
		mask <<= 1
	}
	for m := mask >> 1; m > 0; m >>= 1 {
		child := vr | m
		if child < size && child != vr {
			if err := c.sendPooled((child+root)%size, tagBcast, buf.Data); err != nil {
				buf.Release()
				return nil, err
			}
		}
	}
	return buf, nil
}

// AllReduce combines payloads on every rank (Reduce to rank 0 + Bcast). The
// tree transfers ride pooled blocks; only the returned slice is heap-owned
// by the caller.
func (c *Comm) AllReduce(data []float32, op ReduceOp) ([]float32, error) {
	acc, err := c.ReduceBufs(0, data, op)
	if err != nil {
		return nil, err
	}
	var payload []float32
	if acc != nil {
		payload = acc.Data
	}
	got, err := c.BcastBufs(0, payload)
	acc.Release() // nil-safe; root's accumulator is copied into the bcast block
	if err != nil {
		return nil, err
	}
	out := make([]float32, len(got.Data))
	copy(out, got.Data)
	got.Release()
	return out, nil
}

// Split partitions the communicator: ranks passing the same color form a
// new communicator, ordered by (key, rank). Every rank of the parent must
// call Split. iFDK uses two splits to build the R×C grid: one by row index,
// one by column index (Sec. 4.1.1).
//
//ifdk:noctx cancellation contract is Abort/RunContext, which wakes every parked collective
func (c *Comm) Split(color, key int) (*Comm, error) {
	if c.shared.w.aborted.Load() {
		return nil, ErrAborted
	}
	w := c.shared.w
	// Key by communicator and per-rank split sequence number: MPI requires
	// all ranks to call collectives in the same order, so the n-th Split on
	// a communicator forms one matching set even when ranks overlap in time.
	stateKey := fmt.Sprintf("%d:%d", c.shared.ctx, c.splitSeq)
	c.splitSeq++
	w.splitMu.Lock()
	st, ok := w.splits[stateKey]
	if !ok {
		st = &splitState{want: c.Size()}
		st.cond = sync.NewCond(&w.splitMu)
		w.splits[stateKey] = st
	}
	st.entries = append(st.entries, splitEntry{color: color, key: key, globalRank: c.GlobalRank(), commRank: c.rank})
	if len(st.entries) == st.want {
		// Last arrival builds all sub-communicators.
		st.result = make(map[int]*commShared)
		groups := map[int][]splitEntry{}
		for _, e := range st.entries {
			groups[e.color] = append(groups[e.color], e)
		}
		colors := make([]int, 0, len(groups))
		for col := range groups {
			colors = append(colors, col)
		}
		sort.Ints(colors)
		for _, col := range colors {
			g := groups[col]
			sort.Slice(g, func(a, b int) bool {
				if g[a].key != g[b].key {
					return g[a].key < g[b].key
				}
				return g[a].commRank < g[b].commRank
			})
			global := make([]int, len(g))
			for i, e := range g {
				global[i] = e.globalRank
			}
			shared := w.newShared(global)
			for _, e := range g {
				st.result[e.globalRank] = shared
			}
		}
		st.done = true
		// Reset for the next Split on this parent communicator.
		delete(w.splits, stateKey)
		st.cond.Broadcast()
	} else {
		for !st.done {
			if w.aborted.Load() {
				st.cond.Broadcast()
				w.splitMu.Unlock()
				return nil, ErrAborted
			}
			st.cond.Wait()
		}
	}
	shared := st.result[c.GlobalRank()]
	w.splitMu.Unlock()
	if shared == nil {
		return nil, fmt.Errorf("mpi: split produced no group for rank %d", c.rank)
	}
	newRank := -1
	for i, g := range shared.global {
		if g == c.GlobalRank() {
			newRank = i
			break
		}
	}
	return &Comm{shared: shared, rank: newRank}, nil
}
