package mpi

import (
	"context"
	"errors"
	"testing"
	"time"
)

// Cancelling the context must abort the world and release ranks blocked in
// point-to-point calls instead of deadlocking them.
func TestRunContextCancelUnblocksRecv(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	done := make(chan error, 1)
	go func() {
		done <- RunContext(ctx, 2, func(c *Comm) error {
			if c.Rank() == 0 {
				_, err := c.Recv(1, 7) // rank 1 never sends
				return err
			}
			<-ctx.Done()
			return nil
		})
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrAborted) {
			t.Fatalf("err = %v, want ErrAborted", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunContext did not return after cancellation")
	}
}

// Cancelling during a collective releases all ranks too.
func TestRunContextCancelUnblocksCollective(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	err := RunContext(ctx, 3, func(c *Comm) error {
		if c.Rank() == 2 {
			<-ctx.Done() // skip the collective: peers must still unblock
			return nil
		}
		_, err := c.AllGather([]float32{float32(c.Rank())})
		return err
	})
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
}

// A context that is never cancelled must not perturb a normal run.
func TestRunContextNormalCompletion(t *testing.T) {
	err := RunContext(context.Background(), 4, func(c *Comm) error {
		got, err := c.AllGather([]float32{float32(c.Rank())})
		if err != nil {
			return err
		}
		for r, blk := range got {
			if len(blk) != 1 || blk[0] != float32(r) {
				t.Errorf("rank %d: block %d = %v", c.Rank(), r, blk)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
