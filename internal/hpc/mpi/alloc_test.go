package mpi

import (
	"runtime"
	"runtime/debug"
	"testing"

	"ifdk/internal/race"
)

// AllGatherBufs must return exactly what AllGather returns, block for
// block, under the pooled ownership contract.
func TestAllGatherBufsMatchesAllGather(t *testing.T) {
	const n = 4
	err := Run(n, func(c *Comm) error {
		data := make([]float32, 64)
		for i := range data {
			data[i] = float32(c.Rank()*1000 + i)
		}
		ref, err := c.AllGather(data)
		if err != nil {
			return err
		}
		got, err := c.AllGatherBufs(data)
		if err != nil {
			return err
		}
		defer func() {
			for _, b := range got {
				b.Release()
			}
		}()
		for r := 0; r < n; r++ {
			if len(got[r].Data) != len(ref[r]) {
				t.Errorf("rank %d block %d: len %d vs %d", c.Rank(), r, len(got[r].Data), len(ref[r]))
				return nil
			}
			for i := range ref[r] {
				if got[r].Data[i] != ref[r][i] {
					t.Errorf("rank %d block %d differs at %d", c.Rank(), r, i)
					return nil
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// The per-round receive blocks must come from the pool, not the heap: the
// steady-state allocation rate of pooled rounds has to sit far below the
// unpooled baseline of size blocks × block bytes per rank per round. GC is
// disabled across the measurement so sync.Pool cannot be drained mid-test.
func TestAllGatherBufsAllocRegression(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation accounting is skewed by race instrumentation")
	}
	const (
		ranks    = 4
		blockLen = 16 * 1024 // 64 KiB per block, a realistic projection row block
		rounds   = 50
	)
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	doRounds := func(k int) error {
		return Run(ranks, func(c *Comm) error {
			data := make([]float32, blockLen)
			for r := 0; r < k; r++ {
				bufs, err := c.AllGatherBufs(data)
				if err != nil {
					return err
				}
				for _, b := range bufs {
					b.Release()
				}
			}
			return nil
		})
	}
	// Warm the pool (first rounds do allocate their blocks).
	if err := doRounds(4); err != nil {
		t.Fatal(err)
	}

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	if err := doRounds(rounds); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)

	perRound := int64(after.TotalAlloc-before.TotalAlloc) / rounds
	// Unpooled, every rank allocates its own copy plus size-1 receive
	// blocks per round: ranks × ranks × blockLen × 4 bytes.
	unpooled := int64(ranks * ranks * blockLen * 4)
	t.Logf("pooled AllGather allocates %d B/round (unpooled baseline %d B/round)", perRound, unpooled)
	if perRound > unpooled/5 {
		t.Fatalf("AllGatherBufs allocates %d B/round, want < 20%% of the %d B/round unpooled baseline — blocks are not being pooled",
			perRound, unpooled)
	}
}
