package mpi

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestRunRequiresPositiveSize(t *testing.T) {
	if err := Run(0, func(c *Comm) error { return nil }); err == nil {
		t.Error("Run(0) should fail")
	}
}

func TestRankAndSize(t *testing.T) {
	var seen [4]atomic.Bool
	err := Run(4, func(c *Comm) error {
		if c.Size() != 4 {
			return fmt.Errorf("size %d", c.Size())
		}
		if seen[c.Rank()].Swap(true) {
			return fmt.Errorf("duplicate rank %d", c.Rank())
		}
		if c.GlobalRank() != c.Rank() {
			return fmt.Errorf("world global rank %d != %d", c.GlobalRank(), c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := range seen {
		if !seen[r].Load() {
			t.Errorf("rank %d never ran", r)
		}
	}
}

func TestSendRecv(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 7, []float32{1, 2, 3})
		}
		got, err := c.Recv(0, 7)
		if err != nil {
			return err
		}
		if len(got) != 3 || got[0] != 1 || got[2] != 3 {
			return fmt.Errorf("got %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendCopiesPayload(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			buf := []float32{5}
			if err := c.Send(1, 0, buf); err != nil {
				return err
			}
			buf[0] = 99 // must not affect the in-flight message
			return nil
		}
		got, err := c.Recv(0, 0)
		if err != nil {
			return err
		}
		if got[0] != 5 {
			return fmt.Errorf("message was aliased: %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagMatching(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			// Send tag 2 first, then tag 1; receiver asks for tag 1 first.
			if err := c.Send(1, 2, []float32{2}); err != nil {
				return err
			}
			return c.Send(1, 1, []float32{1})
		}
		first, err := c.Recv(0, 1)
		if err != nil {
			return err
		}
		second, err := c.Recv(0, 2)
		if err != nil {
			return err
		}
		if first[0] != 1 || second[0] != 2 {
			return fmt.Errorf("tag matching failed: %v %v", first, second)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFIFOPerSender(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		const n = 50
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				if err := c.Send(1, 3, []float32{float32(i)}); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < n; i++ {
			got, err := c.Recv(0, 3)
			if err != nil {
				return err
			}
			if got[0] != float32(i) {
				return fmt.Errorf("message %d out of order: %v", i, got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNegativeTagRejected(t *testing.T) {
	err := Run(1, func(c *Comm) error {
		if err := c.Send(0, -1, nil); err == nil {
			return errors.New("negative send tag accepted")
		}
		if _, err := c.Recv(0, -1); err == nil {
			return errors.New("negative recv tag accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInvalidRanks(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if err := c.Send(5, 0, nil); err == nil {
			return errors.New("send to rank 5 accepted")
		}
		if _, err := c.Recv(-2, 0); err == nil {
			return errors.New("recv from rank -2 accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrier(t *testing.T) {
	var phase atomic.Int32
	err := Run(8, func(c *Comm) error {
		phase.Add(1)
		if err := c.Barrier(); err != nil {
			return err
		}
		if got := phase.Load(); got != 8 {
			return fmt.Errorf("rank %d passed barrier with phase %d", c.Rank(), got)
		}
		return c.Barrier() // a second barrier must also work
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcast(t *testing.T) {
	for _, root := range []int{0, 2, 6} {
		err := Run(7, func(c *Comm) error {
			var payload []float32
			if c.Rank() == root {
				payload = []float32{3, 1, 4, 1, 5}
			}
			got, err := c.Bcast(root, payload)
			if err != nil {
				return err
			}
			if len(got) != 5 || got[0] != 3 || got[4] != 5 {
				return fmt.Errorf("rank %d got %v", c.Rank(), got)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("root %d: %v", root, err)
		}
	}
}

func TestGather(t *testing.T) {
	err := Run(5, func(c *Comm) error {
		data := []float32{float32(c.Rank() * 10)}
		got, err := c.Gather(2, data)
		if err != nil {
			return err
		}
		if c.Rank() != 2 {
			if got != nil {
				return errors.New("non-root received data")
			}
			return nil
		}
		for r := 0; r < 5; r++ {
			if got[r][0] != float32(r*10) {
				return fmt.Errorf("slot %d = %v", r, got[r])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllGather(t *testing.T) {
	for _, size := range []int{1, 2, 3, 8} {
		err := Run(size, func(c *Comm) error {
			data := []float32{float32(c.Rank()), float32(c.Rank() * 2)}
			got, err := c.AllGather(data)
			if err != nil {
				return err
			}
			if len(got) != size {
				return fmt.Errorf("got %d blocks", len(got))
			}
			for r := 0; r < size; r++ {
				if got[r][0] != float32(r) || got[r][1] != float32(r*2) {
					return fmt.Errorf("rank %d: block %d = %v", c.Rank(), r, got[r])
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
	}
}

func TestReduceSum(t *testing.T) {
	for _, size := range []int{1, 2, 5, 8} {
		err := Run(size, func(c *Comm) error {
			data := []float32{float32(c.Rank()), 1}
			got, err := c.Reduce(0, data, OpSum)
			if err != nil {
				return err
			}
			if c.Rank() != 0 {
				if got != nil {
					return errors.New("non-root received reduction")
				}
				return nil
			}
			wantSum := float32(size * (size - 1) / 2)
			if got[0] != wantSum || got[1] != float32(size) {
				return fmt.Errorf("reduced to %v", got)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
	}
}

func TestReduceMaxMinNonZeroRoot(t *testing.T) {
	err := Run(6, func(c *Comm) error {
		data := []float32{float32(c.Rank()), -float32(c.Rank())}
		gotMax, err := c.Reduce(3, data, OpMax)
		if err != nil {
			return err
		}
		gotMin, err := c.Reduce(3, data, OpMin)
		if err != nil {
			return err
		}
		if c.Rank() == 3 {
			if gotMax[0] != 5 || gotMax[1] != 0 {
				return fmt.Errorf("max = %v", gotMax)
			}
			if gotMin[0] != 0 || gotMin[1] != -5 {
				return fmt.Errorf("min = %v", gotMin)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllReduce(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		got, err := c.AllReduce([]float32{1}, OpSum)
		if err != nil {
			return err
		}
		if got[0] != 4 {
			return fmt.Errorf("allreduce = %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Reduce sums must be deterministic: two identical runs bit-match even for
// orders that float addition would distinguish.
func TestReduceDeterministic(t *testing.T) {
	run := func() []float32 {
		var result []float32
		err := Run(8, func(c *Comm) error {
			data := []float32{float32(math.Pi) * float32(c.Rank()+1) * 1e-3}
			got, err := c.Reduce(0, data, OpSum)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				result = got
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return result
	}
	a, b := run(), run()
	if a[0] != b[0] {
		t.Errorf("reduce not deterministic: %v vs %v", a[0], b[0])
	}
}

// The 2-D grid decomposition of iFDK: split the world into rows and
// columns and check group shapes and membership (Fig. 3a: R=4, C=2).
func TestSplitGrid(t *testing.T) {
	const R, C = 4, 2
	err := Run(R*C, func(c *Comm) error {
		row := c.Rank() % R
		col := c.Rank() / R
		rowComm, err := c.Split(row, col)
		if err != nil {
			return err
		}
		colComm, err := c.Split(col, row)
		if err != nil {
			return err
		}
		if rowComm.Size() != C {
			return fmt.Errorf("row comm size %d, want %d", rowComm.Size(), C)
		}
		if colComm.Size() != R {
			return fmt.Errorf("col comm size %d, want %d", colComm.Size(), R)
		}
		if rowComm.Rank() != col || colComm.Rank() != row {
			return fmt.Errorf("sub-ranks (%d,%d), want (%d,%d)", rowComm.Rank(), colComm.Rank(), col, row)
		}
		// Collectives on the sub-communicators must stay within the group.
		got, err := colComm.AllGather([]float32{float32(c.Rank())})
		if err != nil {
			return err
		}
		for r := 0; r < R; r++ {
			want := float32(col*R + r)
			if got[r][0] != want {
				return fmt.Errorf("col gather slot %d = %v, want %v", r, got[r][0], want)
			}
		}
		sum, err := rowComm.Reduce(0, []float32{1}, OpSum)
		if err != nil {
			return err
		}
		if rowComm.Rank() == 0 && sum[0] != C {
			return fmt.Errorf("row reduce = %v", sum)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitOrdersByKey(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		// All same color, keys reversed: new ranks must be reversed.
		sub, err := c.Split(0, -c.Rank())
		if err != nil {
			return err
		}
		if want := 3 - c.Rank(); sub.Rank() != want {
			return fmt.Errorf("sub rank %d, want %d", sub.Rank(), want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRankErrorAbortsWorld(t *testing.T) {
	sentinel := errors.New("injected failure")
	err := Run(4, func(c *Comm) error {
		if c.Rank() == 2 {
			return sentinel
		}
		// Other ranks block in a collective that can never complete.
		_, err := c.Recv((c.Rank()+1)%4, 9)
		if !errors.Is(err, ErrAborted) {
			return fmt.Errorf("expected ErrAborted, got %v", err)
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("aggregate error should include sentinel: %v", err)
	}
}

func TestRankPanicBecomesError(t *testing.T) {
	err := Run(3, func(c *Comm) error {
		if c.Rank() == 0 {
			panic("boom")
		}
		_, err := c.Recv(0, 1)
		if !errors.Is(err, ErrAborted) && err != nil {
			return nil // rank may have received abort as error; fine
		}
		return nil
	})
	if err == nil || err.Error() == "" {
		t.Error("panic should surface as an error")
	}
}

func TestStatsCounters(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 0, make([]float32, 100)); err != nil {
				return err
			}
		} else {
			if _, err := c.Recv(0, 0); err != nil {
				return err
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if c.BytesSent() < 400 {
			return fmt.Errorf("bytes sent = %d", c.BytesSent())
		}
		if c.MessagesSent() < 1 {
			return fmt.Errorf("messages sent = %d", c.MessagesSent())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: AllGather + local flatten equals Gather at root + Bcast for
// random payload sizes and world sizes.
func TestAllGatherGatherEquivalenceProperty(t *testing.T) {
	f := func(sizeSeed, lenSeed uint8) bool {
		size := int(sizeSeed%6) + 1
		payloadLen := int(lenSeed % 17)
		ok := true
		err := Run(size, func(c *Comm) error {
			data := make([]float32, payloadLen)
			for i := range data {
				data[i] = float32(c.Rank()*100 + i)
			}
			ag, err := c.AllGather(data)
			if err != nil {
				return err
			}
			g, err := c.Gather(0, data)
			if err != nil {
				return err
			}
			bGot, err := c.Bcast(0, flatten(g))
			if err != nil {
				return err
			}
			if !equalFlat(flatten(ag), bGot) {
				ok = false
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func flatten(blocks [][]float32) []float32 {
	var out []float32
	for _, b := range blocks {
		out = append(out, b...)
	}
	return out
}

func equalFlat(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func BenchmarkAllGather8(b *testing.B) {
	payload := make([]float32, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := Run(8, func(c *Comm) error {
			_, err := c.AllGather(payload)
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReduce8(b *testing.B) {
	payload := make([]float32, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := Run(8, func(c *Comm) error {
			_, err := c.Reduce(0, payload, OpSum)
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
