package pfs

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"ifdk/internal/volume"
)

func testCfg() Config {
	return Config{ReadBW: 1e9, WriteBW: 5e8, Targets: 4, StripeSize: 1024}
}

func TestWriteReadRoundTrip(t *testing.T) {
	p := New(testCfg())
	data := []byte("hello pfs")
	if _, err := p.Write("a/b", data); err != nil {
		t.Fatal(err)
	}
	got, _, err := p.Read("a/b")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(data) {
		t.Errorf("got %q", got)
	}
	// The returned slice must be a copy.
	got[0] = 'X'
	again, _, _ := p.Read("a/b")
	if again[0] == 'X' {
		t.Error("Read aliases stored data")
	}
}

func TestWriteCopiesInput(t *testing.T) {
	p := New(testCfg())
	data := []byte{1, 2, 3}
	if _, err := p.Write("x", data); err != nil {
		t.Fatal(err)
	}
	data[0] = 9
	got, _, _ := p.Read("x")
	if got[0] != 1 {
		t.Error("Write aliases caller data")
	}
}

func TestReadMissing(t *testing.T) {
	p := New(testCfg())
	if _, _, err := p.Read("nope"); err == nil {
		t.Error("missing object should error")
	}
}

func TestEmptyPathRejected(t *testing.T) {
	p := New(testCfg())
	if _, err := p.Write("", nil); err == nil {
		t.Error("empty path accepted")
	}
}

func TestOverwriteAndDelete(t *testing.T) {
	p := New(testCfg())
	p.Write("k", []byte{1})
	p.Write("k", []byte{2, 3})
	if p.Size("k") != 2 {
		t.Errorf("size after overwrite = %d", p.Size("k"))
	}
	p.Delete("k")
	if p.Exists("k") {
		t.Error("object survived Delete")
	}
	if p.Size("k") != -1 {
		t.Error("Size of missing object should be -1")
	}
	p.Delete("k") // idempotent
}

func TestListPrefix(t *testing.T) {
	p := New(testCfg())
	for _, k := range []string{"in/b", "in/a", "out/c"} {
		p.Write(k, nil)
	}
	got := p.List("in/")
	if len(got) != 2 || got[0] != "in/a" || got[1] != "in/b" {
		t.Errorf("List = %v", got)
	}
	if n := len(p.List("")); n != 3 {
		t.Errorf("List(\"\") returned %d", n)
	}
}

func TestSimulatedDurationScalesWithSize(t *testing.T) {
	cfg := testCfg()
	cfg.Latency = 0
	p := New(cfg)
	d1, _ := p.Write("small", make([]byte, 4*1024))  // one stripe per target
	d2, _ := p.Write("large", make([]byte, 40*1024)) // ten stripes per target
	if d2 <= d1 {
		t.Errorf("duration did not scale: %v vs %v", d1, d2)
	}
	// Full aggregate bandwidth: 40 KiB at 500 MB/s across 4 targets.
	want := time.Duration(float64(10*1024) / (cfg.WriteBW / 4) * float64(time.Second))
	if math.Abs(float64(d2-want)) > 0.2*float64(want) {
		t.Errorf("duration %v, want ≈ %v", d2, want)
	}
}

func TestSmallObjectUnderutilizesStripes(t *testing.T) {
	// An object smaller than one stripe uses a single target: its effective
	// bandwidth is BW/Targets (the slice-tuning effect of Sec. 5.3.3).
	cfg := testCfg()
	cfg.Latency = 0
	p := New(cfg)
	small := 512 // half a stripe
	d, _ := p.Write("tiny", make([]byte, small))
	wantSingleTarget := time.Duration(float64(small) / (cfg.WriteBW / float64(cfg.Targets)) * float64(time.Second))
	if math.Abs(float64(d-wantSingleTarget)) > 0.01*float64(wantSingleTarget) {
		t.Errorf("tiny object duration %v, want %v (single target)", d, wantSingleTarget)
	}
}

func TestLatencyIncluded(t *testing.T) {
	cfg := testCfg()
	cfg.Latency = time.Millisecond
	p := New(cfg)
	d, _ := p.Write("o", nil)
	if d != time.Millisecond {
		t.Errorf("zero-byte write duration = %v", d)
	}
}

func TestStats(t *testing.T) {
	p := New(testCfg())
	p.Write("a", make([]byte, 100))
	p.Write("b", make([]byte, 50))
	p.Read("a")
	s := p.Stats()
	if s.BytesWritten != 150 || s.Writes != 2 {
		t.Errorf("write stats %+v", s)
	}
	if s.BytesRead != 100 || s.Reads != 1 {
		t.Errorf("read stats %+v", s)
	}
	if s.Objects != 2 {
		t.Errorf("objects = %d", s.Objects)
	}
	if s.SimWriteTime <= 0 || s.SimReadTime <= 0 {
		t.Error("simulated times not accumulated")
	}
}

func TestConcurrentAccess(t *testing.T) {
	p := New(testCfg())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("w%d/o%d", w, i)
				if _, err := p.Write(key, []byte{byte(i)}); err != nil {
					t.Error(err)
					return
				}
				got, _, err := p.Read(key)
				if err != nil || got[0] != byte(i) {
					t.Errorf("read back %v, %v", got, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if p.Stats().Objects != 400 {
		t.Errorf("objects = %d", p.Stats().Objects)
	}
}

func TestProjectionRoundTrip(t *testing.T) {
	p := New(testCfg())
	img := volume.NewImage(8, 6)
	for n := range img.Data {
		img.Data[n] = float32(n)
	}
	if _, err := p.WriteProjection("ds", 3, img); err != nil {
		t.Fatal(err)
	}
	got, _, err := p.ReadProjection("ds", 3)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := volume.ImageRMSE(img, got)
	if r != 0 {
		t.Errorf("projection round trip rmse = %g", r)
	}
	if _, _, err := p.ReadProjection("ds", 4); err == nil {
		t.Error("missing projection should error")
	}
}

func TestVolumeSliceRoundTrip(t *testing.T) {
	p := New(testCfg())
	vol := volume.New(6, 5, 4, volume.IMajor)
	for n := range vol.Data {
		vol.Data[n] = float32(n % 31)
	}
	if _, err := p.WriteVolumeSlices("out/vol", vol); err != nil {
		t.Fatal(err)
	}
	if got := len(p.List("out/vol/")); got != 4 {
		t.Fatalf("stored %d slices", got)
	}
	back, _, err := p.ReadVolumeSlices("out/vol", 6, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := volume.RMSE(vol, back)
	if r != 0 {
		t.Errorf("volume round trip rmse = %g", r)
	}
}

func TestABCIConfigSane(t *testing.T) {
	cfg := ABCIConfig()
	if cfg.WriteBW != 28.5e9 {
		t.Errorf("ABCI write BW = %g", cfg.WriteBW)
	}
	p := New(cfg)
	// Storing a 2 TB volume (the 8K case) should take ≈ 2TB/28.5GB/s ≈ 77 s
	// of simulated time; check the model with a direct computation.
	d := p.simDuration(2<<40, cfg.WriteBW)
	got := d.Seconds()
	want := float64(2<<40) / 28.5e9
	if math.Abs(got-want) > 0.05*want {
		t.Errorf("8K store model = %gs, want ≈ %gs", got, want)
	}
}

func TestDefaultsApplied(t *testing.T) {
	p := New(Config{})
	cfg := p.Config()
	if cfg.ReadBW <= 0 || cfg.WriteBW <= 0 || cfg.Targets <= 0 || cfg.StripeSize <= 0 {
		t.Errorf("defaults missing: %+v", cfg)
	}
}
