// Package pfs simulates the parallel file system of the paper's testbed
// (ABCI's GPFS): a striped object store with configurable aggregate read and
// write bandwidths. Payloads are held in memory (functionally exact), while
// every operation returns the simulated wall time it would take on the
// modelled storage — the Tload and Tstore terms of the performance model
// (Eqs. 8 and 16).
//
// Objects are striped round-robin across Targets in StripeSize chunks. An
// object that spans fewer stripes than there are targets cannot use the full
// aggregate bandwidth — reproducing the paper's observation that volume
// slices not tuned to the stripe size leave some Tstore on the table
// (Sec. 5.3.3).
package pfs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Config describes the modelled storage system.
type Config struct {
	ReadBW     float64       // aggregate read bandwidth, bytes/s
	WriteBW    float64       // aggregate write bandwidth, bytes/s
	Targets    int           // number of storage targets (stripes)
	StripeSize int           // stripe chunk in bytes
	Latency    time.Duration // fixed per-operation latency
	Throttle   bool          // if true, operations really sleep their simulated time
}

// ABCIConfig returns a configuration calibrated to the paper's measured
// GPFS numbers: 28.5 GB/s sequential write (Sec. 5.3.3) and a comparable
// read bandwidth.
func ABCIConfig() Config {
	return Config{
		ReadBW:     60e9,
		WriteBW:    28.5e9,
		Targets:    64,
		StripeSize: 1 << 20,
		Latency:    300 * time.Microsecond,
	}
}

func (c Config) withDefaults() Config {
	if c.ReadBW <= 0 {
		c.ReadBW = 1e9
	}
	if c.WriteBW <= 0 {
		c.WriteBW = 1e9
	}
	if c.Targets <= 0 {
		c.Targets = 1
	}
	if c.StripeSize <= 0 {
		c.StripeSize = 1 << 20
	}
	return c
}

// Stats aggregates traffic counters.
type Stats struct {
	BytesRead    int64
	BytesWritten int64
	Reads        int64
	Writes       int64
	Objects      int
	SimReadTime  time.Duration
	SimWriteTime time.Duration
}

// PFS is a simulated parallel file system. It is safe for concurrent use.
type PFS struct {
	cfg Config

	mu      sync.RWMutex
	objects map[string][]byte
	stats   Stats

	failAfterWrites int64 // fault injection: fail writes once the counter passes this (-1 = off)
}

// New creates an empty store with the given configuration (zero fields get
// safe defaults).
func New(cfg Config) *PFS {
	return &PFS{cfg: cfg.withDefaults(), objects: make(map[string][]byte), failAfterWrites: -1}
}

// FailAfterWrites arms fault injection: every Write after the next n
// successful ones returns an error (n = 0 fails immediately; negative
// disarms). Used by failure-propagation tests of the distributed framework.
func (p *PFS) FailAfterWrites(n int64) {
	p.mu.Lock()
	p.failAfterWrites = n
	p.mu.Unlock()
}

// Config returns the (defaulted) configuration.
func (p *PFS) Config() Config { return p.cfg }

// simDuration models one transfer: per-op latency plus the time for the
// most-loaded target to move its share of the stripes at BW/Targets.
func (p *PFS) simDuration(n int, bw float64) time.Duration {
	if n == 0 {
		return p.cfg.Latency
	}
	stripes := (n + p.cfg.StripeSize - 1) / p.cfg.StripeSize
	used := stripes
	if used > p.cfg.Targets {
		used = p.cfg.Targets
	}
	// Stripes are dealt round-robin; the most-loaded target holds
	// ceil(stripes/Targets) of them.
	perTarget := (stripes + p.cfg.Targets - 1) / p.cfg.Targets
	bytesOnWorst := perTarget * p.cfg.StripeSize
	if bytesOnWorst > n {
		bytesOnWorst = n
	}
	targetBW := bw / float64(p.cfg.Targets)
	return p.cfg.Latency + time.Duration(float64(bytesOnWorst)/targetBW*float64(time.Second))
}

// Write stores data under path (overwriting any prior object) and returns
// the simulated transfer time.
func (p *PFS) Write(path string, data []byte) (time.Duration, error) {
	if path == "" {
		return 0, fmt.Errorf("pfs: empty path")
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	d := p.simDuration(len(data), p.cfg.WriteBW)
	p.mu.Lock()
	if p.failAfterWrites >= 0 {
		if p.failAfterWrites == 0 {
			p.mu.Unlock()
			return 0, fmt.Errorf("pfs: injected write failure for %q", path)
		}
		p.failAfterWrites--
	}
	p.objects[path] = cp
	p.stats.BytesWritten += int64(len(data))
	p.stats.Writes++
	p.stats.SimWriteTime += d
	p.mu.Unlock()
	if p.cfg.Throttle {
		time.Sleep(d)
	}
	return d, nil
}

// Read returns a copy of the object at path and the simulated transfer
// time.
func (p *PFS) Read(path string) ([]byte, time.Duration, error) {
	data, d, err := p.peek(path)
	if err != nil {
		return nil, 0, err
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, d, nil
}

// peek accounts for a read and returns the stored payload without copying
// it. Safe to hand out because Write replaces payloads wholesale and never
// mutates them in place; callers must treat the slice as read-only.
func (p *PFS) peek(path string) ([]byte, time.Duration, error) {
	p.mu.Lock()
	data, ok := p.objects[path]
	var d time.Duration
	if ok {
		d = p.simDuration(len(data), p.cfg.ReadBW)
		p.stats.BytesRead += int64(len(data))
		p.stats.Reads++
		p.stats.SimReadTime += d
	}
	p.mu.Unlock()
	if !ok {
		return nil, 0, fmt.Errorf("pfs: no object %q", path)
	}
	if p.cfg.Throttle {
		time.Sleep(d)
	}
	return data, d, nil
}

// Exists reports whether an object is stored at path.
func (p *PFS) Exists(path string) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	_, ok := p.objects[path]
	return ok
}

// Delete removes the object at path (no-op when absent).
func (p *PFS) Delete(path string) {
	p.mu.Lock()
	delete(p.objects, path)
	p.mu.Unlock()
}

// List returns the sorted paths with the given prefix.
func (p *PFS) List(prefix string) []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	var out []string
	for k := range p.objects {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Size returns the byte size of the object at path, or -1 when absent.
func (p *PFS) Size(path string) int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if data, ok := p.objects[path]; ok {
		return len(data)
	}
	return -1
}

// Stats returns a snapshot of the traffic counters.
func (p *PFS) Stats() Stats {
	p.mu.RLock()
	defer p.mu.RUnlock()
	s := p.stats
	s.Objects = len(p.objects)
	return s
}
