package pfs

import (
	"fmt"
	"time"

	"ifdk/internal/volume"
)

// Projection and volume naming conventions shared by the writer (projection
// generator) and reader (iFDK ranks).

// ProjectionPath returns the object path of the s-th projection under a
// dataset prefix.
func ProjectionPath(prefix string, s int) string {
	return fmt.Sprintf("%s/proj_%06d.img", prefix, s)
}

// SlicePath returns the object path of the k-th volume slice under an
// output prefix. The volume of size Nx×Ny×Nz is stored as Nz slices of
// Nx×Ny (Sec. 4.1.3).
func SlicePath(prefix string, k int) string {
	return fmt.Sprintf("%s/slice_%06d.img", prefix, k)
}

// WriteProjection stores one projection image and returns the simulated
// transfer time.
func (p *PFS) WriteProjection(prefix string, s int, img *volume.Image) (time.Duration, error) {
	return p.Write(ProjectionPath(prefix, s), volume.ImageToBytes(img))
}

// ReadProjection loads one projection image.
func (p *PFS) ReadProjection(prefix string, s int) (*volume.Image, time.Duration, error) {
	return p.ReadImage(ProjectionPath(prefix, s))
}

// ReadProjectionInto loads one projection into dst, whose dimensions must
// match the stored image. See ReadImageInto.
func (p *PFS) ReadProjectionInto(dst *volume.Image, prefix string, s int) (time.Duration, error) {
	return p.ReadImageInto(dst, ProjectionPath(prefix, s))
}

// ReadImageInto decodes the object at path directly into dst: the stats and
// simulated timing of a Read with none of its allocations. It is safe
// against concurrent writers because Write replaces an object's payload
// wholesale and never mutates it in place.
func (p *PFS) ReadImageInto(dst *volume.Image, path string) (time.Duration, error) {
	blob, d, err := p.peek(path)
	if err != nil {
		return 0, err
	}
	if err := volume.ImageFromBytesInto(dst, blob); err != nil {
		return 0, err
	}
	return d, nil
}

// ReadImage loads any image object by full path.
func (p *PFS) ReadImage(path string) (*volume.Image, time.Duration, error) {
	blob, d, err := p.Read(path)
	if err != nil {
		return nil, 0, err
	}
	img, err := volume.ImageFromBytes(blob)
	if err != nil {
		return nil, 0, err
	}
	return img, d, nil
}

// WriteVolumeSlices stores a volume as Nz axial slices and returns the total
// simulated write time.
func (p *PFS) WriteVolumeSlices(prefix string, vol *volume.Volume) (time.Duration, error) {
	var total time.Duration
	for k := 0; k < vol.Nz; k++ {
		d, err := p.Write(SlicePath(prefix, k), volume.ImageToBytes(vol.SliceZ(k)))
		if err != nil {
			return total, err
		}
		total += d
	}
	return total, nil
}

// ReadVolumeSlices loads a volume stored by WriteVolumeSlices; nz slices of
// size nx×ny are expected. The result uses the i-major (storage) layout.
func (p *PFS) ReadVolumeSlices(prefix string, nx, ny, nz int) (*volume.Volume, time.Duration, error) {
	vol := volume.New(nx, ny, nz, volume.IMajor)
	var total time.Duration
	for k := 0; k < nz; k++ {
		img, d, err := p.ReadImage(SlicePath(prefix, k))
		if err != nil {
			return nil, total, err
		}
		if err := vol.SetSliceZ(k, img); err != nil {
			return nil, total, err
		}
		total += d
	}
	return vol, total, nil
}
