// Package poolfix seeds engine pool ownership-contract violations for
// poolcheck: each want line is a definite violation on every path, and
// the clean functions pin the conservative silences (escapes, branches
// that merge to "maybe") that keep the analyzer false-positive-free.
package poolfix

import (
	"errors"

	"ifdk/internal/engine"
	"ifdk/internal/volume"
)

var (
	images  engine.ImagePool
	scratch engine.BufPool[float32]
	errFull = errors.New("full")
)

func doubleRelease() {
	b := scratch.Acquire(16)
	b.Release()
	b.Release() // want `released again`
}

func useAfterRelease() int {
	b := scratch.Acquire(8)
	b.Release()
	return len(b.Data) // want `use of b after Release`
}

func foreignDonation() {
	img := volume.NewImage(4, 4)
	images.Release(img) // want `was not acquired from the pool`
}

func leakOnEarlyReturn(fail bool) error {
	b := scratch.Acquire(32)
	if fail {
		return errFull // want `not released on this return path`
	}
	b.Release()
	return nil
}

func deferredDouble() {
	b := scratch.Acquire(8)
	defer b.Release()
	b.Release() // want `released here and again by a deferred Release`
}

func scopeLeak(n int) {
	if n > 0 {
		b := scratch.Acquire(n)
		_ = b.Data
	} // want `goes out of scope without Release`
}

// --- clean: ownership transfers and conservative merges stay silent ---

func okDeferred(n int) []float32 {
	b := scratch.Acquire(n)
	defer b.Release()
	out := make([]float32, n)
	copy(out, b.Data)
	return out
}

func okReturnHandsOff() *engine.Buf[float32] {
	b := scratch.Acquire(8)
	return b // ownership moves to the caller
}

func consume(b *engine.Buf[float32]) { b.Release() }

func okCallHandsOff() {
	b := scratch.Acquire(8)
	consume(b) // ownership moves to the callee
}

type parcel struct{ buf *engine.Buf[float32] }

func okStoreHandsOff(out chan parcel) {
	b := scratch.Acquire(8)
	out <- parcel{buf: b} // ownership moves into the container
}

func okClosureHandsOff(run func(func())) {
	b := scratch.Acquire(8)
	run(func() { b.Release() }) // the closure owns the release schedule
}

func okMaybe(flush bool) {
	b := scratch.Acquire(8)
	if flush {
		b.Release()
	}
	// Released on one path only: "maybe" states stay silent by design.
}
