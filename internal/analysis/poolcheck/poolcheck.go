// Package poolcheck is a flow-sensitive checker for the internal/engine
// buffer-pool ownership contract (see the contract comment in
// internal/engine/pool.go, which names this analyzer as its enforcement):
//
//   - double release: a buffer released twice on one path would alias two
//     future acquisitions — the worst class of pool bug, corrupting
//     another job's working set
//   - use after release: reading Buf.Data, an Image row or a Volume after
//     the buffer went back to the pool races with its next owner
//   - foreign donation: releasing a buffer that did not come from Acquire
//     (e.g. a fresh volume.NewImage) skews the in-use byte gauges that
//     pool-aware admission and /v1/metrics rely on — the bug class fixed
//     by hand in PR 3
//   - leak on early return: a pooled buffer that is acquired, never
//     escapes, and is not released on some return path quietly grows the
//     working set under error load — exactly what the decomposed-FDK
//     memory-budget analysis assumes cannot happen
//
// The analysis is intraprocedural and deliberately conservative: a buffer
// that is returned, stored, sent on a channel, captured by a closure or
// passed to another function transfers ownership ("the next pipeline
// stage owns it") and is not tracked further; states that differ between
// branches degrade to "maybe" and stay silent. Diagnostics therefore mean
// a definite contract violation on every path through the reported code.
package poolcheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"ifdk/internal/analysis"
)

// Analyzer is the poolcheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "poolcheck",
	Doc:  "enforce the engine pool acquire/release ownership contract",
	Run:  run,
}

type state uint8

const (
	live     state = iota // definitely acquired and owned here
	released              // definitely released
	maybe                 // owned on some paths only
	escaped               // ownership transferred out of this function
	foreign               // fresh non-pooled buffer (volume.NewImage/New)
)

// vinfo tracks one local variable holding a pooled buffer.
type vinfo struct {
	state      state
	acquirePos token.Pos
	releasePos token.Pos
	deferred   bool // a deferred Release owns cleanup
}

type env map[*types.Var]*vinfo

func (e env) clone() env {
	out := make(env, len(e))
	for k, v := range e {
		c := *v
		out[k] = &c
	}
	return out
}

func run(pass *analysis.Pass) error {
	if analysis.Rel(pass.Path) == "internal/engine" {
		// The pool implementation itself manipulates raw sync.Pools.
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				w := &walker{pass: pass}
				w.walkFunc(fd.Body)
			}
		}
	}
	return nil
}

type walker struct {
	pass *analysis.Pass
}

// walkFunc analyzes one function (or func literal) body with a fresh
// environment and applies the end-of-function leak check.
func (w *walker) walkFunc(body *ast.BlockStmt) {
	e := make(env)
	terminated := w.stmts(body.List, e)
	if !terminated {
		w.leakCheck(e, body.End())
	}
}

// --- recognition -----------------------------------------------------

// acquireCall reports whether call is a pool acquisition
// (ImagePool/VolumePool/BufPool Acquire or AcquireZeroed).
func (w *walker) acquireCall(call *ast.CallExpr) bool {
	fn := analysis.CalleeFunc(w.pass.TypesInfo, call)
	if fn == nil || (fn.Name() != "Acquire" && fn.Name() != "AcquireZeroed") {
		return false
	}
	pkg, typ, ok := analysis.ReceiverNamed(fn)
	if !ok || analysis.Rel(pkg) != "internal/engine" {
		return false
	}
	return typ == "ImagePool" || typ == "VolumePool" || typ == "BufPool"
}

// freshCall reports whether call constructs a fresh non-pooled buffer
// (volume.NewImage / volume.New) — a "foreign" buffer the pools must
// never be donated.
func (w *walker) freshCall(call *ast.CallExpr) bool {
	fn := analysis.CalleeFunc(w.pass.TypesInfo, call)
	if fn == nil || (fn.Name() != "NewImage" && fn.Name() != "New") {
		return false
	}
	rel := analysis.Rel(analysis.PkgPathOf(fn))
	return rel == "pkg/volume" || rel == "internal/volume"
}

// releaseTarget returns the expression whose buffer a call releases:
// the argument of ImagePool/VolumePool.Release, or the receiver of
// Buf.Release. poolRelease is true for the pool-method form (the only
// form a foreign buffer can be donated through).
func (w *walker) releaseTarget(call *ast.CallExpr) (target ast.Expr, poolRelease, ok bool) {
	fn := analysis.CalleeFunc(w.pass.TypesInfo, call)
	if fn == nil || fn.Name() != "Release" {
		return nil, false, false
	}
	pkg, typ, isMethod := analysis.ReceiverNamed(fn)
	if !isMethod || analysis.Rel(pkg) != "internal/engine" {
		return nil, false, false
	}
	switch typ {
	case "ImagePool", "VolumePool":
		if len(call.Args) == 1 {
			return call.Args[0], true, true
		}
	case "Buf":
		if sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); isSel {
			return sel.X, false, true
		}
	}
	return nil, false, false
}

// trackedVar resolves e to a tracked local variable, unwrapping parens.
func trackedVar(info *types.Info, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := info.Uses[id].(*types.Var)
	if v == nil {
		v, _ = info.Defs[id].(*types.Var)
	}
	return v
}

// --- statement walk --------------------------------------------------

// stmts walks a statement list, returning whether it definitely
// terminates by leaving the function (return or panic). A break,
// continue or goto stops the walk of the remaining (unreachable)
// statements but does not count as termination: its state still flows to
// the code after the enclosing loop or switch.
func (w *walker) stmts(list []ast.Stmt, e env) bool {
	for _, s := range list {
		if _, isBranch := s.(*ast.BranchStmt); isBranch {
			return false
		}
		if w.stmt(s, e) {
			return true
		}
	}
	return false
}

func (w *walker) stmt(s ast.Stmt, e env) (terminated bool) {
	switch s := s.(type) {
	case nil:
	case *ast.AssignStmt:
		w.assign(s, e)
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			w.call(call, e, false)
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		} else {
			w.uses(s.X, e)
		}
	case *ast.DeferStmt:
		if target, _, isRelease := w.releaseTarget(s.Call); isRelease {
			if v := trackedVar(w.pass.TypesInfo, target); v != nil {
				if vi, ok := e[v]; ok {
					vi.deferred = true
				}
				return false
			}
		}
		w.call(s.Call, e, false)
	case *ast.ReturnStmt:
		// Results (and any calls nested in them, like
		// `return nil, c.sendBuf(parent, tag, acc)`) hand ownership out.
		for _, r := range s.Results {
			w.expr(r, e, true)
		}
		w.leakCheck(e, s.Pos())
		return true
	case *ast.BranchStmt:
		// Handled by stmts; a lone branch statement terminates nothing.
	case *ast.IfStmt:
		w.stmt(s.Init, e)
		w.uses(s.Cond, e)
		thenEnv := e.clone()
		tThen := w.stmts(s.Body.List, thenEnv)
		if !tThen {
			w.scopeExit(e, thenEnv, s.Body)
		}
		elseEnv := e.clone()
		tElse := false
		if s.Else != nil {
			tElse = w.stmt(s.Else, elseEnv)
		}
		switch {
		case tThen && tElse:
			return true
		case tThen:
			replace(e, elseEnv)
		case tElse:
			replace(e, thenEnv)
		default:
			merge(e, thenEnv, elseEnv)
		}
	case *ast.BlockStmt:
		return w.stmts(s.List, e)
	case *ast.ForStmt:
		w.stmt(s.Init, e)
		w.uses(s.Cond, e)
		bodyEnv := e.clone()
		if !w.stmts(s.Body.List, bodyEnv) {
			if s.Post != nil {
				w.stmt(s.Post, bodyEnv)
			}
			w.scopeExit(e, bodyEnv, s.Body)
		}
		blur(e, bodyEnv)
	case *ast.RangeStmt:
		w.uses(s.X, e)
		bodyEnv := e.clone()
		if !w.stmts(s.Body.List, bodyEnv) {
			w.scopeExit(e, bodyEnv, s.Body)
		}
		blur(e, bodyEnv)
	case *ast.SwitchStmt:
		w.stmt(s.Init, e)
		w.uses(s.Tag, e)
		return w.caseBodies(s.Body, e)
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init, e)
		return w.caseBodies(s.Body, e)
	case *ast.SelectStmt:
		return w.selectStmt(s, e)
	case *ast.SendStmt:
		w.uses(s.Chan, e)
		w.expr(s.Value, e, true)
	case *ast.GoStmt:
		w.call(s.Call, e, false)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, e)
	case *ast.IncDecStmt:
		w.uses(s.X, e)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, val := range vs.Values {
						w.expr(val, e, true) // var x = b aliases the handle
					}
				}
			}
		}
	default:
		ast.Inspect(s, func(n ast.Node) bool {
			if exp, ok := n.(ast.Expr); ok {
				w.uses(exp, e)
				return false
			}
			return true
		})
	}
	return false
}

// caseBodies analyzes a switch body: each clause runs from a clone of
// the entry state; non-terminating outcomes merge together, plus the
// entry state itself when no clause might run (no default). It returns
// whether every reachable path leaves the function.
func (w *walker) caseBodies(body *ast.BlockStmt, e env) bool {
	entry := e.clone()
	var outs []env
	hasDefault := false
	for _, cl := range body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		for _, cond := range cc.List {
			w.uses(cond, entry)
		}
		ce := entry.clone()
		if !w.stmts(cc.Body, ce) {
			w.scopeExit(entry, ce, cc)
			outs = append(outs, ce)
		}
	}
	if !hasDefault {
		outs = append(outs, entry)
	}
	if len(outs) == 0 {
		return true
	}
	mergeAll(e, outs)
	return false
}

// selectStmt is caseBodies for select: exactly one comm clause runs.
func (w *walker) selectStmt(s *ast.SelectStmt, e env) bool {
	entry := e.clone()
	var outs []env
	sawClause := false
	for _, cl := range s.Body.List {
		cc, ok := cl.(*ast.CommClause)
		if !ok {
			continue
		}
		sawClause = true
		ce := entry.clone()
		if cc.Comm != nil {
			w.stmt(cc.Comm, ce)
		}
		if !w.stmts(cc.Body, ce) {
			w.scopeExit(entry, ce, cc)
			outs = append(outs, ce)
		}
	}
	if len(outs) == 0 {
		return sawClause
	}
	mergeAll(e, outs)
	return false
}

// scopeExit reports buffers acquired inside a nested scope (branch or
// loop body) that are still definitely owned when the scope ends: the
// handle is about to go out of scope with the buffer checked out. Only
// variables whose declaration lies inside the scope qualify — a
// function-level `var buf` assigned inside a branch survives it.
func (w *walker) scopeExit(parent, child env, scope ast.Node) {
	for v, vi := range child {
		if _, inParent := parent[v]; inParent {
			continue
		}
		if v.Pos() < scope.Pos() || v.Pos() >= scope.End() {
			continue
		}
		if vi.state == live && !vi.deferred {
			w.pass.Reportf(scope.End(), "%s acquired at %s goes out of scope without Release (pool leak)",
				v.Name(), w.pass.Fset.Position(vi.acquirePos))
		}
	}
}

// assign handles acquisitions, fresh buffers and reassignment.
func (w *walker) assign(s *ast.AssignStmt, e env) {
	for _, r := range s.Rhs {
		if call, ok := ast.Unparen(r).(*ast.CallExpr); ok {
			w.call(call, e, true)
		} else {
			w.expr(r, e, true) // copying the handle aliases it
		}
	}
	for _, l := range s.Lhs {
		if _, ok := ast.Unparen(l).(*ast.Ident); !ok {
			w.uses(l, e)
		}
	}
	if len(s.Lhs) != len(s.Rhs) {
		// Multi-value assignment from one call: results are not pool
		// acquisitions (Acquire returns one value).
		for _, l := range s.Lhs {
			if v := trackedVar(w.pass.TypesInfo, l); v != nil {
				delete(e, v)
			}
		}
		return
	}
	for i, l := range s.Lhs {
		v := trackedVar(w.pass.TypesInfo, l)
		if v == nil {
			continue
		}
		call, isCall := ast.Unparen(s.Rhs[i]).(*ast.CallExpr)
		switch {
		case isCall && w.acquireCall(call):
			e[v] = &vinfo{state: live, acquirePos: s.Rhs[i].Pos()}
		case isCall && w.freshCall(call):
			e[v] = &vinfo{state: foreign, acquirePos: s.Rhs[i].Pos()}
		default:
			// Reassigned from something we do not track.
			delete(e, v)
		}
	}
}

// call handles release recognition and ownership transfer through call
// arguments. inAssign suppresses the escape of acquire/fresh calls
// themselves (their result is bound by the caller).
func (w *walker) call(call *ast.CallExpr, e env, inAssign bool) {
	if target, poolRelease, isRelease := w.releaseTarget(call); isRelease {
		w.release(target, poolRelease, call.Pos(), e)
		return
	}
	if inAssign && (w.acquireCall(call) || w.freshCall(call)) {
		for _, a := range call.Args {
			w.uses(a, e)
		}
		return
	}
	w.uses(call.Fun, e)
	for _, a := range call.Args {
		w.expr(a, e, true) // passing the handle transfers ownership
	}
}

func (w *walker) release(target ast.Expr, poolRelease bool, pos token.Pos, e env) {
	v := trackedVar(w.pass.TypesInfo, target)
	if v == nil {
		w.uses(target, e) // complex target: still flag released reads in it
		return
	}
	vi, ok := e[v]
	if !ok {
		return
	}
	switch vi.state {
	case released:
		w.pass.Reportf(pos, "%s released again: already released at %s (double release would alias two future acquisitions)",
			v.Name(), w.pass.Fset.Position(vi.releasePos))
	case foreign:
		if poolRelease {
			w.pass.Reportf(pos, "%s was not acquired from the pool (constructed at %s): donating foreign buffers skews the in-use byte gauges",
				v.Name(), w.pass.Fset.Position(vi.acquirePos))
		}
		vi.state = escaped
	case live:
		if vi.deferred {
			w.pass.Reportf(pos, "%s released here and again by a deferred Release", v.Name())
		}
		vi.state = released
		vi.releasePos = pos
	case maybe, escaped:
		// Not provably wrong; stay silent.
	}
}

// expr walks an expression. Reads of definitely-released buffers are
// reported everywhere; when escape is true, a bare tracked identifier in
// a value position (call argument, composite-literal element, return
// value, channel send, alias) transfers ownership out of this function.
// Field and element reads (b.Data, img.Row(v)) keep ownership: only the
// handle itself moving counts.
func (w *walker) expr(e0 ast.Expr, e env, escape bool) {
	switch x := e0.(type) {
	case nil:
	case *ast.Ident:
		w.ident(x, e, escape)
	case *ast.ParenExpr:
		w.expr(x.X, e, escape)
	case *ast.SelectorExpr:
		w.expr(x.X, e, false)
	case *ast.IndexExpr:
		w.expr(x.X, e, false)
		w.expr(x.Index, e, false)
	case *ast.IndexListExpr:
		w.expr(x.X, e, false)
	case *ast.SliceExpr:
		w.expr(x.X, e, false)
		w.expr(x.Low, e, false)
		w.expr(x.High, e, false)
		w.expr(x.Max, e, false)
	case *ast.StarExpr:
		w.expr(x.X, e, false)
	case *ast.UnaryExpr:
		// &b aliases the handle; everything else is a read.
		w.expr(x.X, e, x.Op == token.AND)
	case *ast.BinaryExpr:
		w.expr(x.X, e, false)
		w.expr(x.Y, e, false)
	case *ast.CallExpr:
		w.call(x, e, false)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			w.expr(el, e, true)
		}
	case *ast.KeyValueExpr:
		w.expr(x.Key, e, false)
		w.expr(x.Value, e, escape)
	case *ast.TypeAssertExpr:
		w.expr(x.X, e, escape)
	case *ast.FuncLit:
		// Captured buffers escape to the closure; its body may release
		// or keep them on any schedule. The body itself is analyzed as
		// an independent function for its own acquisitions.
		w.captureEscapes(x, e)
		w.walkFunc(x.Body)
	}
}

func (w *walker) ident(id *ast.Ident, e env, escape bool) {
	v, _ := w.pass.TypesInfo.Uses[id].(*types.Var)
	if v == nil {
		return
	}
	vi, ok := e[v]
	if !ok {
		return
	}
	if vi.state == released {
		w.pass.Reportf(id.Pos(), "use of %s after Release at %s: the buffer may already belong to another goroutine",
			v.Name(), w.pass.Fset.Position(vi.releasePos))
	}
	if escape && (vi.state == live || vi.state == maybe) {
		vi.state = escaped
	}
}

// uses walks an expression in read-only position.
func (w *walker) uses(e0 ast.Expr, e env) { w.expr(e0, e, false) }

// captureEscapes marks every tracked variable referenced inside a func
// literal as escaped in the enclosing environment.
func (w *walker) captureEscapes(fl *ast.FuncLit, e env) {
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, _ := w.pass.TypesInfo.Uses[id].(*types.Var); v != nil {
				if vi, ok := e[v]; ok {
					vi.state = escaped
				}
			}
		}
		return true
	})
}

// leakCheck reports buffers that are definitely still owned (live, no
// deferred release) at a point where the function returns.
func (w *walker) leakCheck(e env, at token.Pos) {
	for v, vi := range e {
		if vi.state == live && !vi.deferred {
			w.pass.Reportf(at, "%s acquired at %s is not released on this return path (pool leak: the working set grows until GC)",
				v.Name(), w.pass.Fset.Position(vi.acquirePos))
		}
	}
}

// --- merges ----------------------------------------------------------

// replace copies src into dst in place.
func replace(dst, src env) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}

// merge folds two branch outcomes into dst: agreeing states survive,
// disagreements degrade to maybe (escaped wins over everything — the
// buffer may be gone).
func merge(dst, a, b env) {
	replace(dst, a)
	mergeAll(dst, []env{a, b})
}

// mergeAll folds any number of branch outcomes into dst.
func mergeAll(dst env, outs []env) {
	if len(outs) == 0 {
		return
	}
	keys := make(map[*types.Var]bool)
	for _, o := range outs {
		for k := range o {
			keys[k] = true
		}
	}
	for k := range dst {
		keys[k] = true
	}
	result := make(env)
	for k := range keys {
		var combined *vinfo
		consistent := true
		for _, o := range outs {
			vi, ok := o[k]
			if !ok {
				consistent = false
				break
			}
			if combined == nil {
				c := *vi
				combined = &c
				continue
			}
			if combined.state != vi.state {
				if combined.state == escaped || vi.state == escaped {
					combined.state = escaped
				} else {
					combined.state = maybe
				}
			}
			combined.deferred = combined.deferred || vi.deferred
		}
		if !consistent || combined == nil {
			continue
		}
		result[k] = combined
	}
	replace(dst, result)
}

// blur folds a loop body's effects back conservatively: any variable
// whose state the body changed degrades to maybe; variables untouched by
// the body keep their entry state.
func blur(entry, body env) {
	for k, vi := range entry {
		b, ok := body[k]
		if !ok {
			delete(entry, k)
			continue
		}
		if b.state != vi.state {
			if b.state == escaped {
				vi.state = escaped
			} else {
				vi.state = maybe
			}
		}
		vi.deferred = vi.deferred || b.deferred
	}
	for k, b := range body {
		if _, ok := entry[k]; !ok && b.state == live {
			// Acquired inside the loop and leaked past its end: keep
			// tracking as maybe (a per-iteration acquire that is
			// released per-iteration never reaches here live).
			c := *b
			c.state = maybe
			entry[k] = &c
		}
	}
}
