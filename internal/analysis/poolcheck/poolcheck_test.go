package poolcheck_test

import (
	"testing"

	"ifdk/internal/analysis/analysistest"
	"ifdk/internal/analysis/poolcheck"
)

func TestPoolCheck(t *testing.T) {
	analysistest.Run(t, poolcheck.Analyzer, "testdata/src/internal/ct/poolfix")
}
