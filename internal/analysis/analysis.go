// Package analysis is the iFDK static-analysis substrate: a small,
// dependency-free re-implementation of the golang.org/x/tools/go/analysis
// driver shape (Analyzer, Pass, Diagnostic) on top of the standard
// library's go/ast, go/build and go/types. The container this repo builds
// in bakes in nothing beyond the Go toolchain, so — exactly like
// internal/obs re-implements the slice of the Prometheus exposition format
// the fleet needs — this package re-implements the slice of the analysis
// framework the repo's checkers need: package loading with full type
// information, per-package analyzer runs, and positioned diagnostics.
//
// The checkers themselves live in the subpackages poolcheck, hotpathcheck,
// slogcheck, ctxcheck and metricscheck; cmd/ifdk-vet is the multichecker
// binary CI runs over ./... . They machine-enforce the invariants the
// paper's performance claims rest on (zero-allocation hot paths, the
// engine pool ownership contract, cancellation threaded through blocking
// collectives) plus the fleet's logging and metrics discipline — things
// the compiler cannot see and review keeps re-learning.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check. It mirrors the x/tools analysis
// shape so the checkers port mechanically if the dependency ever lands.
type Analyzer struct {
	// Name is the short identifier used in diagnostics and CLI output.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run applies the analyzer to one package, reporting findings via
	// pass.Reportf. The error return is for operational failures only
	// (diagnostics are not errors).
	Run func(pass *Pass) error
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer

	// Path is the package's import path; Files are its parsed sources
	// (comments retained), Pkg and TypesInfo the type-checker's output.
	Path      string
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Run applies every analyzer to every package and returns the combined
// diagnostics sorted by position. Analyzer errors (not diagnostics) abort
// the run.
func Run(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Path:      pkg.Path,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}
