package ctxcheck_test

import (
	"testing"

	"ifdk/internal/analysis/analysistest"
	"ifdk/internal/analysis/ctxcheck"
)

func TestCtxCheck(t *testing.T) {
	analysistest.Run(t, ctxcheck.Analyzer, "testdata/src/internal/service")
}
