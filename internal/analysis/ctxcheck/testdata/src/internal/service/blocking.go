// Package service seeds cancellation-discipline violations for ctxcheck.
// Its fixture path puts it in the blocking-path scope, where exported
// blocking functions must take a context and select loops must be able to
// escape.
package service

import (
	"context"
	"sync"
	"time"
)

func Collect(ch chan int) int { // want `exported function Collect blocks`
	return <-ch
}

func Flush(wg *sync.WaitGroup) { // want `exported function Flush blocks`
	wg.Wait()
}

func Nap() { // want `exported function Nap blocks`
	time.Sleep(10 * time.Millisecond)
}

type Server struct{ jobs chan int }

func (s *Server) Submit(job int) { // want `exported method Submit blocks`
	s.jobs <- job
}

//ifdk:noctx
func Drain(ch chan int) int { // want `needs a reason`
	return <-ch
}

func pump(in, out chan int) {
	for {
		select { // want `no cancellation case`
		case v := <-in:
			out <- v
		}
	}
}

// --- clean -----------------------------------------------------------

// CollectCtx threads cancellation, so blocking is fine.
func CollectCtx(ctx context.Context, ch chan int) (int, error) {
	select {
	case v := <-ch:
		return v, nil
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

// TryNotify only performs a non-blocking send: a select with a default
// case cannot park (the events.Publish pattern).
func TryNotify(ch chan struct{}) {
	select {
	case ch <- struct{}{}:
	default:
	}
}

//ifdk:noctx cancellation is Close, which closes the channel and wakes receivers
func Waived(ch chan int) int {
	return <-ch
}

func pumpCtx(ctx context.Context, in, out chan int) {
	for {
		select {
		case <-ctx.Done():
			return
		case v := <-in:
			out <- v
		}
	}
}

func pumpStop(stop chan struct{}, in chan int) {
	for {
		select {
		case <-stop:
			return
		case <-in:
		}
	}
}

func pumpTimer(t *time.Ticker, in chan int) {
	for {
		select {
		case <-t.C:
			return
		case <-in:
		}
	}
}
