// Package ctxcheck enforces cancellation discipline in the packages that
// sit on blocking paths (service, router, MPI collectives, client SDK):
//
//   - exported functions that block (channel operations, select,
//     time.Sleep, WaitGroup.Wait) must accept a context.Context, so
//     callers can always cancel; a deliberate exception is waived with a
//     "//ifdk:noctx <reason>" doc directive (the mpi.Comm collectives,
//     whose cancellation contract is Abort/RunContext, carry one)
//   - a blocking select inside a loop must include an escape case —
//     ctx.Done(), a close/abort/stop channel, or a timer — or the
//     goroutine can park forever after shutdown, the bug class behind the
//     PR 1 abort deadlock
package ctxcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"ifdk/internal/analysis"
)

// Scopes lists the module-relative package prefixes on blocking paths.
var Scopes = []string{
	"internal/service",
	"internal/router",
	"internal/hpc/mpi",
	"pkg/client",
}

// Analyzer is the ctxcheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "ctxcheck",
	Doc:  "exported blocking functions take context.Context; select loops have a cancellation case",
	Run:  run,
}

// escapeName matches channel names conventionally used as shutdown /
// completion signals.
var escapeName = regexp.MustCompile(`(?i)(done|close|quit|stop|abort|exit|term|cancel|shutdown|dying|dead|fail)`)

func run(pass *analysis.Pass) error {
	if !analysis.InScope(pass.Path, Scopes) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if analysis.HasAnnotation(fd.Doc, "noctx") {
				if !noctxHasReason(fd.Doc) {
					pass.Reportf(fd.Pos(), "//ifdk:noctx needs a reason (e.g. //ifdk:noctx cancellation via Abort)")
				}
				continue
			}
			checkExportedBlocking(pass, fd)
			checkSelectLoops(pass, fd)
		}
	}
	return nil
}

func noctxHasReason(doc *ast.CommentGroup) bool {
	for _, c := range doc.List {
		if rest, ok := strings.CutPrefix(c.Text, "//ifdk:noctx"); ok && strings.TrimSpace(rest) != "" {
			return true
		}
	}
	return false
}

// checkExportedBlocking reports exported functions that block directly
// but have no context.Context parameter.
func checkExportedBlocking(pass *analysis.Pass, fd *ast.FuncDecl) {
	if !fd.Name.IsExported() {
		return
	}
	if hasContextParam(pass.TypesInfo, fd) {
		return
	}
	pos := firstBlockingOp(fd.Body)
	if !pos.IsValid() {
		return
	}
	what := "function"
	if fd.Recv != nil {
		what = "method"
	}
	pass.Reportf(fd.Pos(), "exported %s %s blocks (see %s) but has no context.Context parameter; thread cancellation or waive with //ifdk:noctx <reason>",
		what, fd.Name.Name, pass.Fset.Position(pos))
}

func hasContextParam(info *types.Info, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		if tv, ok := info.Types[field.Type]; ok && analysis.IsContext(tv.Type) {
			return true
		}
	}
	return false
}

// firstBlockingOp returns the position of the first operation that can
// park the calling goroutine, not descending into func literals (their
// blocking happens on the goroutine that runs them; the select-loop rule
// covers those). Channel operations that are the comm clause of a select
// with a default case are non-blocking by construction and do not count;
// the clause bodies are still scanned.
func firstBlockingOp(n ast.Node) token.Pos {
	var pos token.Pos
	found := func(p token.Pos) {
		if !pos.IsValid() {
			pos = p
		}
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if pos.IsValid() {
			return false
		}
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt:
			if !hasDefault(m) {
				found(m.Pos())
				return false
			}
			for _, c := range m.Body.List {
				cc, ok := c.(*ast.CommClause)
				if !ok {
					continue
				}
				for _, st := range cc.Body {
					if p := firstBlockingOp(st); p.IsValid() {
						found(p)
					}
				}
			}
			return false
		case *ast.SendStmt:
			found(m.Pos())
		case *ast.UnaryExpr:
			if m.Op == token.ARROW {
				found(m.Pos())
			}
		case *ast.RangeStmt:
			// Ranging over a channel blocks between elements.
		case *ast.CallExpr:
			if isBlockingCall(m) {
				found(m.Pos())
			}
		}
		return !pos.IsValid()
	})
	return pos
}

func isBlockingCall(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Sleep":
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == "time" {
			return true
		}
	case "Wait":
		return true // sync.WaitGroup.Wait, Cond.Wait, errgroup-style waits
	}
	return false
}

func hasDefault(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// checkSelectLoops walks the function (including func literals — those
// are the worker goroutines) and reports blocking selects lexically
// inside a loop that have no escape case.
func checkSelectLoops(pass *analysis.Pass, fd *ast.FuncDecl) {
	var walk func(n ast.Node, loopDepth int)
	walk = func(n ast.Node, loopDepth int) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.ForStmt:
				if m.Init != nil {
					walk(m.Init, loopDepth)
				}
				if m.Cond != nil {
					walk(m.Cond, loopDepth)
				}
				if m.Post != nil {
					walk(m.Post, loopDepth)
				}
				walk(m.Body, loopDepth+1)
				return false
			case *ast.RangeStmt:
				walk(m.Body, loopDepth+1)
				return false
			case *ast.FuncLit:
				walk(m.Body, 0)
				return false
			case *ast.SelectStmt:
				if loopDepth > 0 && !hasDefault(m) && !hasEscapeCase(pass.TypesInfo, m) {
					pass.Reportf(m.Pos(), "select inside a loop has no cancellation case: add ctx.Done(), a shutdown channel, or a timer so the goroutine cannot park forever")
				}
			}
			return true
		})
	}
	walk(fd.Body, 0)
}

// hasEscapeCase reports whether any comm case receives from a channel
// that signals shutdown or the passage of time.
func hasEscapeCase(info *types.Info, sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok || cc.Comm == nil {
			continue
		}
		var ch ast.Expr
		switch comm := cc.Comm.(type) {
		case *ast.ExprStmt:
			if u, ok := ast.Unparen(comm.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				ch = u.X
			}
		case *ast.AssignStmt:
			if len(comm.Rhs) == 1 {
				if u, ok := ast.Unparen(comm.Rhs[0]).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					ch = u.X
				}
			}
		}
		if ch == nil {
			continue
		}
		if isEscapeChan(info, ch) {
			return true
		}
	}
	return false
}

func isEscapeChan(info *types.Info, ch ast.Expr) bool {
	switch e := ast.Unparen(ch).(type) {
	case *ast.CallExpr:
		// ctx.Done(), time.After(d), time.Tick(d).
		if fn := analysis.CalleeFunc(info, e); fn != nil {
			if fn.Name() == "Done" {
				if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
					if tv, ok := info.Types[sel.X]; ok && analysis.IsContext(tv.Type) {
						return true
					}
				}
			}
			if analysis.PkgPathOf(fn) == "time" && (fn.Name() == "After" || fn.Name() == "Tick") {
				return true
			}
		}
		// Method values like t.C() or named accessors that look like
		// shutdown signals.
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok && escapeName.MatchString(sel.Sel.Name) {
			return true
		}
	case *ast.SelectorExpr:
		// ticker.C / timer.C, or a done/closed/quit field.
		if e.Sel.Name == "C" || escapeName.MatchString(e.Sel.Name) {
			return true
		}
	case *ast.Ident:
		if escapeName.MatchString(e.Name) {
			return true
		}
	}
	return false
}
