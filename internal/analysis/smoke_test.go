package analysis_test

import (
	"testing"

	"ifdk/internal/analysis"
	"ifdk/internal/analysis/ctxcheck"
	"ifdk/internal/analysis/hotpathcheck"
	"ifdk/internal/analysis/journalcheck"
	"ifdk/internal/analysis/metricscheck"
	"ifdk/internal/analysis/poolcheck"
	"ifdk/internal/analysis/slogcheck"
)

// TestRepoIsVetClean is the same run CI performs with `go run
// ./cmd/ifdk-vet ./...`: every analyzer over every package of the module,
// expecting zero findings. It keeps the tree vet-clean even when run
// through plain `go test ./...`.
func TestRepoIsVetClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages — the module walk looks broken", len(pkgs))
	}
	all := []*analysis.Analyzer{
		poolcheck.Analyzer,
		hotpathcheck.Analyzer,
		journalcheck.Analyzer,
		slogcheck.Analyzer,
		ctxcheck.Analyzer,
		metricscheck.Analyzer,
	}
	diags, err := analysis.Run(all, pkgs)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("ifdk-vet finding: %s", d)
	}
}
