package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path ("ifdk/internal/service"); Dir the source
	// directory on disk.
	Path string
	Dir  string

	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// Loader loads and type-checks module-local packages with full syntax and
// type information. Standard-library imports resolve through the
// toolchain's export data when available, falling back to type-checking
// from GOROOT source, so loading works offline in the build container and
// on CI runners alike.
type Loader struct {
	ModRoot string // directory containing go.mod
	ModPath string // module path declared in go.mod

	fset    *token.FileSet
	pkgs    map[string]*Package // module-local, by import path
	loading map[string]bool     // import-cycle guard
	gc      types.Importer      // std via export data (fast)
	source  types.Importer      // std via GOROOT source (always works)
}

// NewLoader locates the enclosing module starting from dir.
func NewLoader(dir string) (*Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModRoot: root,
		ModPath: modPath,
		fset:    fset,
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
		gc:      importer.ForCompiler(fset, "gc", nil),
		source:  importer.ForCompiler(fset, "source", nil),
	}, nil
}

// findModule walks up from dir to the nearest go.mod and returns its
// directory and module path.
func findModule(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Load resolves the given patterns to module-local packages and
// type-checks them (plus everything they import). Accepted patterns:
//
//   - "./..." — every package under the module root, skipping testdata
//   - "./rel/dir" or "rel/dir" — one package by module-relative directory
//   - "ifdk/x/y" — one package by full import path
//
// Testdata packages are never matched by "./..." but load fine when named
// explicitly — the analysistest harness relies on that.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	var paths []string
	seen := make(map[string]bool)
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			paths = append(paths, p)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			dirs, err := l.walkModule()
			if err != nil {
				return nil, err
			}
			for _, d := range dirs {
				add(d)
			}
		default:
			rel := strings.TrimPrefix(pat, "./")
			rel = strings.TrimPrefix(rel, l.ModPath+"/")
			if rel == l.ModPath {
				rel = "."
			}
			add(path.Clean(rel))
		}
	}
	sort.Strings(paths)
	out := make([]*Package, 0, len(paths))
	for _, rel := range paths {
		pkg, err := l.loadDir(rel)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			out = append(out, pkg)
		}
	}
	return out, nil
}

// walkModule returns the module-relative directories of every buildable
// package under the module root, excluding testdata and hidden trees.
func (l *Loader) walkModule() ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModRoot, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.ModRoot && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if bp, err := build.ImportDir(p, 0); err == nil && len(bp.GoFiles) > 0 {
			rel, err := filepath.Rel(l.ModRoot, p)
			if err != nil {
				return err
			}
			dirs = append(dirs, filepath.ToSlash(rel))
		}
		return nil
	})
	return dirs, err
}

// loadDir loads the package in the module-relative directory rel. It
// returns (nil, nil) when the directory holds no buildable Go files.
func (l *Loader) loadDir(rel string) (*Package, error) {
	importPath := l.ModPath
	if rel != "." {
		importPath = l.ModPath + "/" + rel
	}
	pkg, err := l.loadLocal(importPath)
	if err != nil {
		if _, none := err.(*build.NoGoError); none {
			return nil, nil
		}
		return nil, err
	}
	return pkg, nil
}

// loadLocal loads a module-local package by import path, memoized.
func (l *Loader) loadLocal(importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("analysis: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	rel := "."
	if importPath != l.ModPath {
		rel = strings.TrimPrefix(importPath, l.ModPath+"/")
	}
	dir := filepath.Join(l.ModRoot, filepath.FromSlash(rel))
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}

	files := make([]*ast.File, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	var typeErrs []string
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error: func(err error) {
			typeErrs = append(typeErrs, err.Error())
		},
	}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if len(typeErrs) > 0 {
		const max = 10
		if len(typeErrs) > max {
			typeErrs = append(typeErrs[:max], "...")
		}
		return nil, fmt.Errorf("analysis: type errors in %s:\n\t%s", importPath, strings.Join(typeErrs, "\n\t"))
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", importPath, err)
	}

	pkg := &Package{
		Path:      importPath,
		Dir:       dir,
		Fset:      l.fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// loaderImporter adapts the Loader to types.Importer: module-local paths
// load from source; everything else tries toolchain export data first and
// falls back to GOROOT source.
type loaderImporter Loader

func (li *loaderImporter) Import(importPath string) (*types.Package, error) {
	l := (*Loader)(li)
	if importPath == "unsafe" {
		return types.Unsafe, nil
	}
	if importPath == l.ModPath || strings.HasPrefix(importPath, l.ModPath+"/") {
		pkg, err := l.loadLocal(importPath)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	if pkg, err := l.gc.Import(importPath); err == nil {
		return pkg, nil
	}
	return l.source.Import(importPath)
}
