// Package journalcheck enforces the write-ahead journal's durability
// contract: a function annotated with a "//ifdk:journal" doc directive is
// an append path whose caller acks clients once it returns, so every byte
// it writes must be fsynced before any return — fsync-before-ack.
//
// The pass checks three things, in source order over the function body:
//
//   - the function calls Sync at least once (a journal append that never
//     syncs leaves acked records in the page cache, which a power cut
//     eats);
//   - no Write-family call (Write, WriteString, WriteAt) appears after
//     the last Sync — bytes written there would return unsynced;
//   - the Sync error is not discarded (an ExprStmt or blank assign): a
//     failed fsync means the record is NOT durable, and the append must
//     report that instead of acking.
//
// The ordering check is positional, not path-sensitive — good enough for
// the straight-line append shape the contract demands, and it fails
// closed: restructure the function rather than the invariant.
package journalcheck

import (
	"go/ast"
	"go/token"

	"ifdk/internal/analysis"
)

// Analyzer is the journalcheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "journalcheck",
	Doc:  "enforce fsync-before-ack in //ifdk:journal append paths",
	Run:  run,
}

// writeNames are the Write-family methods whose bytes Sync must cover.
var writeNames = map[string]bool{"Write": true, "WriteString": true, "WriteAt": true}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !analysis.HasAnnotation(fd.Doc, "journal") {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// selCall returns the method name of a call of the form x.Name(...).
func selCall(call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	return sel.Sel.Name
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	var writes []token.Pos
	var lastSync token.Pos

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // a nested closure is somebody else's contract
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok && selCall(call) == "Sync" {
				pass.Reportf(call.Pos(),
					"journal append %s: Sync result discarded — a failed fsync must fail the append, not ack it",
					fd.Name.Name)
			}
		case *ast.AssignStmt:
			if len(n.Rhs) == 1 {
				if call, ok := n.Rhs[0].(*ast.CallExpr); ok && selCall(call) == "Sync" && allBlank(n.Lhs) {
					pass.Reportf(call.Pos(),
						"journal append %s: Sync result discarded — a failed fsync must fail the append, not ack it",
						fd.Name.Name)
				}
			}
		case *ast.CallExpr:
			switch name := selCall(n); {
			case name == "Sync":
				if n.End() > lastSync {
					lastSync = n.End()
				}
			case writeNames[name]:
				writes = append(writes, n.Pos())
			}
		}
		return true
	})

	if lastSync == token.NoPos {
		pass.Reportf(fd.Name.Pos(),
			"journal append %s never calls Sync — fsync-before-ack cannot hold", fd.Name.Name)
		return
	}
	for _, w := range writes {
		if w > lastSync {
			pass.Reportf(w,
				"journal append %s: write after the last Sync returns unsynced bytes", fd.Name.Name)
		}
	}
}

func allBlank(lhs []ast.Expr) bool {
	for _, e := range lhs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return true
}
