package journalcheck_test

import (
	"testing"

	"ifdk/internal/analysis/analysistest"
	"ifdk/internal/analysis/journalcheck"
)

func TestJournalCheck(t *testing.T) {
	analysistest.Run(t, journalcheck.Analyzer, "testdata/src/internal/service/journalfix")
}
