// Package journalfix seeds durability-contract violations for
// journalcheck: annotated append paths that skip the fsync, write past it,
// or swallow its error — plus the clean shape that must stay quiet.
package journalfix

import "os"

type wal struct{ f *os.File }

// The canonical append: write, then sync, both errors propagated.
//
//ifdk:journal
func (w *wal) goodAppend(blob []byte) error {
	if _, err := w.f.Write(blob); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	return nil
}

// Syncing through a helper method named Sync on another receiver is fine
// too: the check is shape-based, not type-based.
//
//ifdk:journal
func (w *wal) goodAppendString(s string) error {
	if _, err := w.f.WriteString(s); err != nil {
		return err
	}
	return w.f.Sync()
}

//ifdk:journal
func (w *wal) badNoSync(blob []byte) error { // want `never calls Sync`
	_, err := w.f.Write(blob)
	return err
}

//ifdk:journal
func (w *wal) badWriteAfterSync(head, tail []byte) error {
	if _, err := w.f.Write(head); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	_, err := w.f.Write(tail) // want `write after the last Sync`
	return err
}

//ifdk:journal
func (w *wal) badDiscardedSync(blob []byte) error {
	if _, err := w.f.Write(blob); err != nil {
		return err
	}
	w.f.Sync() // want `Sync result discarded`
	return nil
}

//ifdk:journal
func (w *wal) badBlankSync(blob []byte) error {
	if _, err := w.f.Write(blob); err != nil {
		return err
	}
	_ = w.f.Sync() // want `Sync result discarded`
	return nil
}

// Unannotated writers owe nobody an fsync.
func (w *wal) buffered(blob []byte) {
	_, _ = w.f.Write(blob)
}
