// Package metricscheck enforces obs metric-registry discipline at every
// registration site, in any package:
//
//   - metric and label names are compile-time constant strings — dynamic
//     names defeat dashboards and make duplicates unauditable
//   - names are Prometheus-legal ([a-zA-Z_:][a-zA-Z0-9_:]*; labels may
//     not use ':' or the reserved "__" prefix, and histograms may not
//     declare the reserved "le" label)
//   - the same name is not registered twice on the same registry — obs
//     panics on duplicates, but only at runtime on the code path that
//     registers second
package metricscheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"ifdk/internal/analysis"
)

// Analyzer is the metricscheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "metricscheck",
	Doc:  "enforce obs metric registry discipline (legal constant names, no duplicate registration)",
	Run:  run,
}

// registerMethods maps obs.Registry registration methods to the argument
// index where label names start (-1: no label name variadics; SampleFunc
// takes its labels as a []string literal at index 3).
var registerMethods = map[string]int{
	"Counter": -1, "Gauge": -1, "Histogram": -1,
	"GaugeFunc": -1, "CounterFunc": -1,
	"CounterVec": 2, "GaugeVec": 2, "HistogramVec": 3,
	"SampleFunc": -1,
}

func run(pass *analysis.Pass) error {
	// Registration sites grouped by (receiver object, metric name): a
	// second registration of one name on one registry is a guaranteed
	// runtime panic.
	type regKey struct {
		recv types.Object
		name string
	}
	first := make(map[regKey]token.Pos)

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.CalleeFunc(pass.TypesInfo, call)
			labelStart, isReg := registerMethods[nameOf(fn)]
			if !isReg || fn == nil {
				return true
			}
			if pkg, typ, ok := analysis.ReceiverNamed(fn); !ok || typ != "Registry" || analysis.Rel(pkg) != "internal/obs" {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}

			name, isConst := analysis.ConstString(pass.TypesInfo, call.Args[0])
			if !isConst {
				pass.Reportf(call.Args[0].Pos(), "metric name must be a constant string: dynamic names cannot be audited for duplicates or dashboard use")
				return true
			}
			if !legalMetricName(name) {
				pass.Reportf(call.Args[0].Pos(), "metric name %q is not Prometheus-legal (want [a-zA-Z_:][a-zA-Z0-9_:]*)", name)
			}

			if recv := receiverObj(pass.TypesInfo, call); recv != nil {
				key := regKey{recv, name}
				if pos, dup := first[key]; dup {
					pass.Reportf(call.Args[0].Pos(), "metric %q already registered on this registry at %s (obs panics on duplicate registration)",
						name, pass.Fset.Position(pos))
				} else {
					first[key] = call.Args[0].Pos()
				}
			}

			isHist := fn.Name() == "Histogram" || fn.Name() == "HistogramVec"
			for _, lab := range labelArgs(call, fn.Name(), labelStart) {
				lname, isConst := analysis.ConstString(pass.TypesInfo, lab)
				if !isConst {
					pass.Reportf(lab.Pos(), "label name must be a constant string")
					continue
				}
				if !legalLabelName(lname) {
					pass.Reportf(lab.Pos(), "label name %q is not Prometheus-legal (want [a-zA-Z_][a-zA-Z0-9_]*, no __ prefix)", lname)
				}
				if isHist && lname == "le" {
					pass.Reportf(lab.Pos(), "histogram label %q is reserved for bucket bounds", lname)
				}
			}
			return true
		})
	}
	return nil
}

func nameOf(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	return fn.Name()
}

// labelArgs extracts the label-name expressions of a registration call:
// trailing variadic strings for the Vec constructors, the []string
// composite literal for SampleFunc.
func labelArgs(call *ast.CallExpr, method string, labelStart int) []ast.Expr {
	if method == "SampleFunc" {
		if len(call.Args) > 3 {
			if lit, ok := ast.Unparen(call.Args[3]).(*ast.CompositeLit); ok {
				return lit.Elts
			}
		}
		return nil
	}
	if labelStart < 0 || len(call.Args) <= labelStart {
		return nil
	}
	return call.Args[labelStart:]
}

// receiverObj resolves the registry expression a method is called on to a
// stable object (variable or field), so duplicate detection can group
// registrations on the same registry. Unresolvable receivers (call
// results, complex expressions) return nil and are skipped.
func receiverObj(info *types.Info, call *ast.CallExpr) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.Ident:
		return info.Uses[x]
	case *ast.SelectorExpr:
		return info.Uses[x.Sel]
	}
	return nil
}

func legalMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func legalLabelName(s string) bool {
	if s == "" || len(s) >= 2 && s[0] == '_' && s[1] == '_' {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
