// Package metricsfix seeds metric-registry violations for metricscheck:
// illegal and dynamic names, reserved labels, and the double registration
// that obs only catches by panicking at runtime.
package metricsfix

import "ifdk/internal/obs"

var reg = obs.NewRegistry()

func registerBadly(suffix string) {
	reg.Counter("jobs_total", "accepted jobs")
	reg.Counter("jobs_total", "dup") // want `already registered on this registry`
	reg.Gauge("queue-depth", "x")    // want `not Prometheus-legal`
	reg.Gauge("9lives", "x")         // want `not Prometheus-legal`
	reg.Counter("jobs_"+suffix, "x") // want `must be a constant string`

	reg.CounterVec("rpc_total", "rpcs", "method", "bad-label")        // want `label name "bad-label" is not Prometheus-legal`
	reg.GaugeVec("inflight", "in flight", "__reserved")               // want `label name "__reserved" is not Prometheus-legal`
	reg.HistogramVec("lat_seconds", "latency", []float64{1, 2}, "le") // want `reserved for bucket bounds`
}

// --- clean -----------------------------------------------------------

const nameScans = "scans_total"

func registerWell(other *obs.Registry) {
	reg.Counter(nameScans, "completed scans")
	other.Counter("jobs_total", "same name, different registry")
	reg.HistogramVec("filter_seconds", "filter latency", []float64{0.1, 1}, "node", "rank")
	reg.SampleFunc("pool_in_use_bytes", "pooled bytes", "gauge", []string{"pool"}, nil)
}
