package metricscheck_test

import (
	"testing"

	"ifdk/internal/analysis/analysistest"
	"ifdk/internal/analysis/metricscheck"
)

func TestMetricsCheck(t *testing.T) {
	analysistest.Run(t, metricscheck.Analyzer, "testdata/src/internal/ct/metricsfix")
}
