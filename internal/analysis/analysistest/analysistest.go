// Package analysistest runs an analyzer over a testdata fixture package
// and checks its diagnostics against "// want" comments, mirroring the
// x/tools harness of the same name.
//
// A fixture file marks each line that must produce a diagnostic with a
// trailing comment of the form
//
//	x.Release() // want `released again`
//
// where the backquoted string is a regular expression matched against the
// diagnostic message. Several expectations may follow one want on the
// same line. Every diagnostic must be wanted and every want must be
// matched, so fixtures double as negative tests: clean lines prove the
// analyzer stays quiet on idiomatic code.
package analysistest

import (
	"path/filepath"
	"regexp"
	"runtime"
	"strings"
	"testing"

	"ifdk/internal/analysis"
)

var wantRe = regexp.MustCompile("`([^`]*)`")

// Run loads the fixture package in dir (a path relative to the calling
// test's package directory, conventionally "testdata/src/...") and checks
// the analyzer's diagnostics against its want comments.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	_, caller, _, ok := runtime.Caller(1)
	if !ok {
		t.Fatal("analysistest: cannot locate caller")
	}
	abs := filepath.Join(filepath.Dir(caller), dir)

	loader, err := analysis.NewLoader(abs)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := filepath.Rel(loader.ModRoot, abs)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load(filepath.ToSlash(rel))
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("analysistest: loaded %d packages from %s, want 1", len(pkgs), dir)
	}
	pkg := pkgs[0]

	diags, err := analysis.Run([]*analysis.Analyzer{a}, pkgs)
	if err != nil {
		t.Fatal(err)
	}

	type want struct {
		file string
		line int
		re   *regexp.Regexp
		hit  bool
	}
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				i := strings.Index(text, "want ")
				if i < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantRe.FindAllStringSubmatch(text[i:], -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, m[1], err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}

	match := func(d analysis.Diagnostic) bool {
		for _, w := range wants {
			if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				return true
			}
		}
		return false
	}
	for _, d := range diags {
		if !match(d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", shortPath(w.file), w.line, w.re)
		}
	}
}

func shortPath(p string) string {
	if i := strings.LastIndex(p, "testdata"); i >= 0 {
		return p[i:]
	}
	return p
}
