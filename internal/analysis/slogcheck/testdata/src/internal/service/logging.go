// Package service seeds logging-discipline violations for slogcheck. Its
// fixture path puts it in the daemon/service scope, where stdout printing
// and raw slog construction are banned.
package service

import (
	"fmt"
	"log"
	"log/slog"
	"os"
)

func logBadly(n int, err error) {
	fmt.Println("starting", n)       // want `fmt.Println in daemon/service code`
	fmt.Printf("n=%d\n", n)          // want `fmt.Printf in daemon/service code`
	log.Printf("count=%d", n)        // want `log.Printf in daemon/service code`
	println("debug")                 // want `builtin println in daemon/service code`
	slog.Error("failed", "err", err) // want `package-level slog.Error`
}

func rawConstruction() *slog.Logger {
	h := slog.NewJSONHandler(os.Stderr, nil) // want `slog.NewJSONHandler bypasses the fleet logger contract`
	return slog.New(h)                       // want `slog.New bypasses the fleet logger contract`
}

func arity(logger *slog.Logger, user string, jobs int) {
	logger.Info("accepted", "jobs", jobs, user) // want `slog key must be a constant string`
	logger.Warn("queue full", "depth")          // want `has no value`
}

// --- clean -----------------------------------------------------------

const keyComponent = "component"

func logWell(logger *slog.Logger, jobs int, err error) {
	logger.Info("accepted", "jobs", jobs, slog.Int("queued", 2))
	logger.With(keyComponent, "service").Debug("draining")
	if err != nil {
		logger.Error("reconstruction failed", "err", err)
	}
}

// Writing to an explicit io.Writer is not stdout printing.
func logToWriter(n int) {
	fmt.Fprintf(os.Stderr, "emergency: %d\n", n)
}
