// Package slogcheck enforces the fleet's logging discipline in daemon and
// service code, replacing the brittle CI grep gate with an AST-level
// check:
//
//   - no fmt.Print*/log.Print* (or builtin print/println) — daemon output
//     flows through structured slog or not at all
//   - loggers are constructed via obs.NewLogger, which folds the component
//     and node identity into every record; raw slog.New / package-level
//     slog.Info etc. bypass that contract
//   - slog key/value calls have even arity with constant string keys, so
//     records never degrade to !BADKEY noise in production logs
package slogcheck

import (
	"go/ast"
	"go/types"

	"ifdk/internal/analysis"
)

// Scopes lists the module-relative package prefixes the logging
// discipline applies to — the long-running daemon and service planes.
// Library and compute packages may print (tools, examples, benchmarks).
var Scopes = []string{
	"cmd/ifdkd",
	"cmd/ifdk-router",
	"internal/service",
	"internal/router",
	"internal/obs",
}

// Analyzer is the slogcheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "slogcheck",
	Doc:  "enforce structured logging discipline in daemon/service code",
	Run:  run,
}

// printFuncs are the ad-hoc printing entry points banned in scope.
var printFuncs = map[string]map[string]bool{
	"fmt": {"Print": true, "Printf": true, "Println": true},
	"log": {"Print": true, "Printf": true, "Println": true,
		"Fatal": true, "Fatalf": true, "Fatalln": true,
		"Panic": true, "Panicf": true, "Panicln": true},
}

// rawConstructors are the log/slog entry points that mint or install
// loggers without the fleet's component/node fields.
var rawConstructors = map[string]bool{
	"New": true, "Default": true, "SetDefault": true,
	"NewTextHandler": true, "NewJSONHandler": true,
}

// levelMethods maps slog.Logger methods to the index of their first
// key/value argument.
var levelMethods = map[string]int{
	"Debug": 1, "Info": 1, "Warn": 1, "Error": 1,
	"DebugContext": 2, "InfoContext": 2, "WarnContext": 2, "ErrorContext": 2,
	"Log": 3, "With": 0,
}

func run(pass *analysis.Pass) error {
	if !analysis.InScope(pass.Path, Scopes) {
		return nil
	}
	inObs := analysis.Rel(pass.Path) == "internal/obs"
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if obj := pass.TypesInfo.Uses[id]; obj != nil && obj.Pkg() == nil &&
					(id.Name == "print" || id.Name == "println") {
					pass.Reportf(call.Pos(), "builtin %s in daemon/service code: log through the obs slog logger", id.Name)
					return true
				}
			}
			fn := analysis.CalleeFunc(pass.TypesInfo, call)
			if fn == nil {
				return true
			}
			pkgPath := analysis.PkgPathOf(fn)
			switch pkgPath {
			case "fmt", "log":
				if printFuncs[pkgPath][fn.Name()] {
					pass.Reportf(call.Pos(), "%s.%s in daemon/service code: log through the obs slog logger", pkgPath, fn.Name())
				}
			case "log/slog":
				checkSlog(pass, call, fn, inObs)
			}
			return true
		})
	}
	return nil
}

func checkSlog(pass *analysis.Pass, call *ast.CallExpr, fn *types.Func, inObs bool) {
	name := fn.Name()
	sig, _ := fn.Type().(*types.Signature)
	isMethod := sig != nil && sig.Recv() != nil

	if !isMethod {
		if !inObs && rawConstructors[name] {
			pass.Reportf(call.Pos(), "slog.%s bypasses the fleet logger contract: construct loggers via obs.NewLogger so records carry component/node fields", name)
			return
		}
		if _, isLevel := levelMethods[name]; isLevel && !inObs {
			pass.Reportf(call.Pos(), "package-level slog.%s logs through the default logger without component/node fields: use a logger from obs.NewLogger", name)
			// Fall through: arity still worth checking.
		}
	}
	kvStart, ok := levelMethods[name]
	if !ok {
		return
	}
	if isMethod {
		// Only *slog.Logger methods carry the key/value convention.
		if pkg, typ, ok := analysis.ReceiverNamed(fn); !ok || pkg != "log/slog" || typ != "Logger" {
			return
		}
	}
	if call.Ellipsis.IsValid() || len(call.Args) <= kvStart {
		return
	}
	args := call.Args[kvStart:]
	for i := 0; i < len(args); {
		if isSlogAttr(pass.TypesInfo, args[i]) {
			i++
			continue
		}
		key, isConst := analysis.ConstString(pass.TypesInfo, args[i])
		if !isConst {
			pass.Reportf(args[i].Pos(), "slog key must be a constant string (or slog.Attr): dynamic keys defeat log indexing")
			return
		}
		if i+1 >= len(args) {
			pass.Reportf(args[i].Pos(), "slog key %q has no value: key/value arguments must pair up", key)
			return
		}
		i += 2
	}
}

func isSlogAttr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Attr" && analysis.PkgPathOf(obj) == "log/slog"
}
