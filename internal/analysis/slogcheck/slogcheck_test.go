package slogcheck_test

import (
	"testing"

	"ifdk/internal/analysis/analysistest"
	"ifdk/internal/analysis/slogcheck"
)

func TestSlogCheck(t *testing.T) {
	analysistest.Run(t, slogcheck.Analyzer, "testdata/src/internal/service")
}
