package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// Rel strips the module prefix and any testdata prefix from an import
// path, yielding the module-relative package path scope rules match on.
// "ifdk/internal/service" and
// "ifdk/internal/analysis/slogcheck/testdata/src/internal/service" both
// reduce to "internal/service", so analysistest fixtures land in the same
// scopes as the real packages they mirror.
func Rel(importPath string) string {
	if i := strings.LastIndex(importPath, "/testdata/src/"); i >= 0 {
		return importPath[i+len("/testdata/src/"):]
	}
	if i := strings.Index(importPath, "/"); i >= 0 {
		return importPath[i+1:]
	}
	return importPath
}

// InScope reports whether the package with the given import path falls
// under any of the module-relative scope prefixes ("internal/service"
// covers internal/service and internal/service/batcher).
func InScope(importPath string, scopes []string) bool {
	rel := Rel(importPath)
	for _, s := range scopes {
		if rel == s || strings.HasPrefix(rel, s+"/") {
			return true
		}
	}
	return false
}

// HasAnnotation reports whether the doc comment contains a line whose
// directive part is exactly "//ifdk:<name>" or starts with
// "//ifdk:<name> " (trailing free text is the annotation's argument).
func HasAnnotation(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	want := "//ifdk:" + name
	for _, c := range doc.List {
		if c.Text == want || strings.HasPrefix(c.Text, want+" ") {
			return true
		}
	}
	return false
}

// ConstString returns the compile-time string value of e, if it has one.
func ConstString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// CalleeFunc resolves the called function or method object of a call
// expression, or nil for builtins, type conversions and indirect calls.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.IndexExpr:
		if x, ok := fun.X.(*ast.Ident); ok {
			id = x
		}
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// PkgPathOf returns the import path of the package an object belongs to,
// or "" for builtins and universe-scope objects.
func PkgPathOf(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// FromPkg reports whether obj is declared in a package whose
// module-relative path equals rel — "internal/engine", "log/slog" (std
// paths have no module prefix and compare whole).
func FromPkg(obj types.Object, rel string) bool {
	p := PkgPathOf(obj)
	return p == rel || Rel(p) == rel
}

// ReceiverNamed returns the name of the method's receiver base type and
// the import path of its package, unwrapping pointers and generic
// instantiations. ok is false for non-methods.
func ReceiverNamed(fn *types.Func) (pkgPath, typeName string, ok bool) {
	if fn == nil {
		return "", "", false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return "", "", false
	}
	t := sig.Recv().Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return "", "", false
	}
	obj := named.Obj()
	return PkgPathOf(obj), obj.Name(), true
}

// IsContext reports whether t is context.Context.
func IsContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && PkgPathOf(obj) == "context"
}
