// Package hotfix seeds allocation-gate violations for hotpathcheck: the
// annotated functions contain the heap-allocating constructs the gate
// rejects, plus the two deliberate exemptions (cold early-exit blocks and
// the scheduler closure pattern).
package hotfix

import (
	"errors"
	"fmt"
)

//ifdk:hotpath
func badAppend(xs []int) []int {
	xs = append(xs, 1) // want `append may grow its backing array`
	return xs
}

//ifdk:hotpath
func badMake(n int) []float32 {
	return make([]float32, n) // want `make allocates`
}

//ifdk:hotpath
func badLiterals() int {
	xs := []int{1, 2, 3}          // want `slice literal allocates`
	m := map[string]int{"one": 1} // want `map literal allocates`
	return len(xs) + len(m)
}

type point struct{ x, y int }

//ifdk:hotpath
func badAddr() *point {
	return &point{1, 2} // want `&composite literal escapes to the heap`
}

//ifdk:hotpath
func badClosure(n int) func() int {
	f := func() int { return n } // want `closure allocates its captured variables`
	return f
}

func worker(ch chan int) { ch <- 1 }

//ifdk:hotpath
func badGo(ch chan int) {
	go worker(ch) // want `go statement spawns a goroutine`
}

//ifdk:hotpath
func badFmt(n int) {
	fmt.Println("n =", n) // want `fmt.Println allocates`
}

//ifdk:hotpath
func badConcat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

//ifdk:hotpath
func badConversions(s string, v int) ([]byte, any) {
	bs := []byte(s)   // want `string to slice conversion allocates`
	return bs, any(v) // want `conversion to interface type boxes its operand`
}

//ifdk:hotpath
func coldPathExempt(n int) error {
	if n < 0 {
		// The early-exit error path is cold: its allocations are fine.
		return fmt.Errorf("negative count %d", n)
	}
	return errors.New("hot") // want `errors.New allocates`
}

// --- clean -----------------------------------------------------------

// Unannotated functions are never gated.
func coldSetup(n int) []float32 { return make([]float32, n) }

func parallelRange(n int, body func(lo, hi int)) { body(0, n) }

//ifdk:hotpath
func okKernel(dst, src []float32) {
	n := len(src)
	dst = dst[:n]
	for i := 0; i < n; i++ {
		dst[i] = src[i] * 2
	}
}

//ifdk:hotpath
func okSweep(xs []float32) {
	// A func literal passed directly to a call is the scheduler pattern
	// (one closure per sweep): the literal is exempt, its body is not.
	parallelRange(len(xs), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			xs[i] *= 2
		}
	})
}
