package hotpathcheck_test

import (
	"testing"

	"ifdk/internal/analysis/analysistest"
	"ifdk/internal/analysis/hotpathcheck"
)

func TestHotPathCheck(t *testing.T) {
	analysistest.Run(t, hotpathcheck.Analyzer, "testdata/src/internal/ct/hotfix")
}
