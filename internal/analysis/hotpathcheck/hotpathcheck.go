// Package hotpathcheck is the repo-wide allocation gate behind the
// paper's zero-allocation pipeline claim. Functions annotated with a
// "//ifdk:hotpath" doc directive (kernels fast paths, the filter row
// loop, back-projection inner loops, pooled MPI collectives) are rejected
// if they contain heap-allocating constructs:
//
//   - append (backing-array growth), make/new, slice or map composite
//     literals, &composite (heap escape)
//   - closures, except a func literal passed directly to a call (the
//     engine.ParallelRange pattern: one closure per sweep, amortized over
//     the whole row space)
//   - fmt/errors calls, string concatenation, []byte<->string
//     conversions, explicit conversions to interface types
//   - go statements
//
// Early-exit blocks — an if body whose last statement is a return — are
// cold paths (validation errors) and are exempt, so hot functions keep
// ordinary Go error handling. The three bespoke alloc-regression
// benchmarks still gate end-to-end counts; this pass catches the
// construct at the line that introduces it, before a benchmark drifts.
package hotpathcheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"ifdk/internal/analysis"
)

// Analyzer is the hotpathcheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "hotpathcheck",
	Doc:  "reject heap-allocating constructs in //ifdk:hotpath functions",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !analysis.HasAnnotation(fd.Doc, "hotpath") {
				continue
			}
			c := &checker{pass: pass, fname: fd.Name.Name}
			c.block(fd.Body, false)
		}
	}
	return nil
}

type checker struct {
	pass  *analysis.Pass
	fname string
}

func (c *checker) reportf(pos token.Pos, format string, args ...any) {
	c.pass.Reportf(pos, "hot path %s: "+format, append([]any{c.fname}, args...)...)
}

// block walks a statement list; cold suppresses reports (early-exit
// error paths).
func (c *checker) block(b *ast.BlockStmt, cold bool) {
	for _, s := range b.List {
		c.stmt(s, cold)
	}
}

func endsInReturn(b *ast.BlockStmt) bool {
	if b == nil || len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func (c *checker) stmt(s ast.Stmt, cold bool) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		c.block(s, cold)
	case *ast.IfStmt:
		c.stmt(s.Init, cold)
		c.expr(s.Cond, cold)
		// An if body that exits the function is a cold path: validation
		// and error returns keep their allocations.
		c.block(s.Body, cold || endsInReturn(s.Body))
		c.stmt(s.Else, cold)
	case *ast.ForStmt:
		c.stmt(s.Init, cold)
		c.expr(s.Cond, cold)
		c.stmt(s.Post, cold)
		c.block(s.Body, cold)
	case *ast.RangeStmt:
		c.expr(s.X, cold)
		c.block(s.Body, cold)
	case *ast.SwitchStmt:
		c.stmt(s.Init, cold)
		c.expr(s.Tag, cold)
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CaseClause)
			for _, e := range cc.List {
				c.expr(e, cold)
			}
			body := &ast.BlockStmt{List: cc.Body}
			coldCase := cold || endsInReturn(body)
			for _, st := range cc.Body {
				c.stmt(st, coldCase)
			}
		}
	case *ast.TypeSwitchStmt:
		c.stmt(s.Init, cold)
		c.stmt(s.Assign, cold)
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CaseClause)
			for _, st := range cc.Body {
				c.stmt(st, cold)
			}
		}
	case *ast.SelectStmt:
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CommClause)
			c.stmt(cc.Comm, cold)
			for _, st := range cc.Body {
				c.stmt(st, cold)
			}
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			c.expr(e, cold)
		}
		for _, e := range s.Lhs {
			c.expr(e, cold)
		}
	case *ast.ExprStmt:
		c.expr(s.X, cold)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.expr(e, cold)
		}
	case *ast.GoStmt:
		if !cold {
			c.reportf(s.Pos(), "go statement spawns a goroutine per call")
		}
		c.expr(s.Call, cold)
	case *ast.DeferStmt:
		c.expr(s.Call, cold)
	case *ast.SendStmt:
		c.expr(s.Chan, cold)
		c.expr(s.Value, cold)
	case *ast.DeclStmt, *ast.IncDecStmt, *ast.LabeledStmt, *ast.BranchStmt, *ast.EmptyStmt:
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				c.expr(e, cold)
				return false
			}
			return true
		})
	default:
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				c.expr(e, cold)
				return false
			}
			return true
		})
	}
}

func (c *checker) expr(e ast.Expr, cold bool) {
	if e == nil {
		return
	}
	info := c.pass.TypesInfo
	switch e := e.(type) {
	case *ast.CallExpr:
		c.call(e, cold)
	case *ast.FuncLit:
		// A bare closure (assigned, returned, stored) allocates its
		// captures; call-argument closures are handled in call().
		if !cold {
			c.reportf(e.Pos(), "closure allocates its captured variables")
		}
		c.block(e.Body, cold)
	case *ast.CompositeLit:
		c.compositeLit(e, cold)
	case *ast.UnaryExpr:
		if lit, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok && e.Op == token.AND {
			if !cold {
				c.reportf(e.Pos(), "&composite literal escapes to the heap")
			}
			c.compositeElems(lit, cold)
			return
		}
		c.expr(e.X, cold)
	case *ast.BinaryExpr:
		if e.Op == token.ADD && !cold {
			if tv, ok := info.Types[e]; ok && tv.Value == nil && isString(tv.Type) {
				c.reportf(e.Pos(), "string concatenation allocates")
			}
		}
		c.expr(e.X, cold)
		c.expr(e.Y, cold)
	case *ast.ParenExpr:
		c.expr(e.X, cold)
	case *ast.StarExpr:
		c.expr(e.X, cold)
	case *ast.SelectorExpr:
		c.expr(e.X, cold)
	case *ast.IndexExpr:
		c.expr(e.X, cold)
		c.expr(e.Index, cold)
	case *ast.IndexListExpr:
		c.expr(e.X, cold)
	case *ast.SliceExpr:
		c.expr(e.X, cold)
		c.expr(e.Low, cold)
		c.expr(e.High, cold)
		c.expr(e.Max, cold)
	case *ast.TypeAssertExpr:
		c.expr(e.X, cold)
	case *ast.KeyValueExpr:
		c.expr(e.Key, cold)
		c.expr(e.Value, cold)
	}
}

func (c *checker) compositeLit(lit *ast.CompositeLit, cold bool) {
	if !cold {
		if tv, ok := c.pass.TypesInfo.Types[lit]; ok {
			switch tv.Type.Underlying().(type) {
			case *types.Slice:
				c.reportf(lit.Pos(), "slice literal allocates")
			case *types.Map:
				c.reportf(lit.Pos(), "map literal allocates")
			}
		}
	}
	c.compositeElems(lit, cold)
}

func (c *checker) compositeElems(lit *ast.CompositeLit, cold bool) {
	for _, el := range lit.Elts {
		c.expr(el, cold)
	}
}

func (c *checker) call(call *ast.CallExpr, cold bool) {
	info := c.pass.TypesInfo

	// Type conversions: string round trips and interface boxing allocate.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if !cold && len(call.Args) == 1 {
			target := tv.Type
			if argTV, ok := info.Types[call.Args[0]]; ok {
				switch {
				case isString(target) && !isString(argTV.Type) && argTV.Value == nil:
					c.reportf(call.Pos(), "conversion to string allocates")
				case isByteOrRuneSlice(target) && isString(argTV.Type):
					c.reportf(call.Pos(), "string to slice conversion allocates")
				case types.IsInterface(target.Underlying()) && !types.IsInterface(argTV.Type.Underlying()):
					c.reportf(call.Pos(), "conversion to interface type boxes its operand")
				}
			}
		}
		for _, a := range call.Args {
			c.expr(a, cold)
		}
		return
	}

	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if obj, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && !cold {
			switch obj.Name() {
			case "append":
				c.reportf(call.Pos(), "append may grow its backing array on the hot path")
			case "make":
				c.reportf(call.Pos(), "make allocates")
			case "new":
				c.reportf(call.Pos(), "new allocates")
			}
		}
	}
	if fn := analysis.CalleeFunc(info, call); fn != nil && !cold {
		switch analysis.PkgPathOf(fn) {
		case "fmt":
			c.reportf(call.Pos(), "fmt.%s allocates (formatting, interface boxing)", fn.Name())
		case "errors":
			c.reportf(call.Pos(), "errors.%s allocates", fn.Name())
		}
	}

	c.expr(call.Fun, cold)
	for _, a := range call.Args {
		// A func literal passed directly to a call is the scheduler
		// pattern (one closure per sweep): scan its body, don't flag the
		// literal itself.
		if fl, ok := ast.Unparen(a).(*ast.FuncLit); ok {
			c.block(fl.Body, cold)
			continue
		}
		c.expr(a, cold)
	}
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
