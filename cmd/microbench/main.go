// Command microbench runs the micro-benchmarks of the paper's Sec. 4.2.1
// against this repository's substrates and prints the constants that feed
// the performance model:
//
//   - BWload/BWstore — the simulated PFS (IOR analog),
//   - TH_flt — the real CPU filtering stage,
//   - TH_bp — the simulated V100 back-projection kernel (Table 4 analog),
//   - AllGather/Reduce — the in-process MPI collectives (IMB analog),
//   - BWPCIe — the device model (bandwidthTest analog).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ifdk/internal/ct/filter"
	"ifdk/internal/ct/geometry"
	"ifdk/internal/gpusim"
	"ifdk/internal/hpc/mpi"
	"ifdk/internal/hpc/pfs"
	"ifdk/internal/perfmodel"
	"ifdk/internal/volume"
)

func main() {
	nu := flag.Int("nu", 512, "projection side for the filtering benchmark")
	reps := flag.Int("reps", 8, "repetitions per measurement")
	ranks := flag.Int("ranks", 8, "ranks for the collective benchmarks")
	flag.Parse()
	if err := run(*nu, *reps, *ranks); err != nil {
		fmt.Fprintln(os.Stderr, "microbench:", err)
		os.Exit(1)
	}
}

func run(nu, reps, ranks int) error {
	fmt.Println("iFDK micro-benchmarks (Sec. 4.2.1 analogs)")

	// --- PFS (IOR analog): simulated bandwidths by construction.
	store := pfs.New(pfs.ABCIConfig())
	payload := make([]byte, 64<<20)
	wd, err := store.Write("bench/obj", payload)
	if err != nil {
		return err
	}
	_, rd, err := store.Read("bench/obj")
	if err != nil {
		return err
	}
	fmt.Printf("  PFS model   : write %.1f GB/s, read %.1f GB/s (64 MiB object)\n",
		float64(len(payload))/wd.Seconds()/1e9, float64(len(payload))/rd.Seconds()/1e9)

	// --- Filtering (TH_flt): real CPU measurement.
	g := geometry.Default(nu, nu, 64, nu/2, nu/2, nu/2)
	flt, err := filter.New(g, filter.RamLak)
	if err != nil {
		return err
	}
	img := volume.NewImage(g.Nu, g.Nv)
	for n := range img.Data {
		img.Data[n] = float32(n % 97)
	}
	start := time.Now()
	n := 0
	for time.Since(start) < time.Second/2 {
		if _, err := flt.Apply(img); err != nil {
			return err
		}
		n++
	}
	thFlt := float64(n) / time.Since(start).Seconds()
	fmt.Printf("  TH_flt      : %.1f projections/s (%dx%d, this CPU)\n", thFlt, nu, nu)

	// --- Back-projection (TH_bp): simulated V100 kernel.
	pr := geometry.Problem{Nu: 1024, Nv: 1024, Np: 1024, Nx: 512, Ny: 512, Nz: 512}
	rep := gpusim.Estimate(gpusim.TeslaV100(), pr, gpusim.L1Tran, gpusim.EstimateConfig{})
	fmt.Printf("  TH_bp       : %.0f GUPS (L1-Tran on %s, V100 model)\n", rep.GUPS, pr)

	// --- MPI collectives (IMB analog): real in-process measurement.
	blob := make([]float32, 1<<18) // 1 MiB
	agTime, redTime := time.Duration(0), time.Duration(0)
	for i := 0; i < reps; i++ {
		err := mpi.Run(ranks, func(c *mpi.Comm) error {
			if err := c.Barrier(); err != nil {
				return err
			}
			t0 := time.Now()
			if _, err := c.AllGather(blob); err != nil {
				return err
			}
			if c.Rank() == 0 {
				agTime += time.Since(t0)
			}
			if err := c.Barrier(); err != nil {
				return err
			}
			t0 = time.Now()
			if _, err := c.Reduce(0, blob, mpi.OpSum); err != nil {
				return err
			}
			if c.Rank() == 0 {
				redTime += time.Since(t0)
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	bytes := float64(4*len(blob)) * float64(reps)
	fmt.Printf("  AllGather   : %.2f GB/s per rank (%d ranks, 1 MiB blocks, in-process)\n",
		bytes*float64(ranks-1)/agTime.Seconds()/1e9, ranks)
	fmt.Printf("  Reduce      : %.2f GB/s (%d ranks, 1 MiB blocks, in-process)\n",
		bytes/redTime.Seconds()/1e9, ranks)

	// --- PCIe (bandwidthTest analog): device model constant.
	dev := gpusim.TeslaV100()
	fmt.Printf("  BW_PCIe     : %.1f GB/s per connector (device model)\n", dev.PCIeBw/1e9)

	mb := perfmodel.ABCI()
	fmt.Printf("\nABCI model constants used by the scaling experiments: %+v\n", mb)
	return nil
}
