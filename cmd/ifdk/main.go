// Command ifdk runs a distributed FDK reconstruction end to end at laptop
// scale: it synthesizes cone-beam projections of a phantom, executes the
// iFDK pipeline on an in-process R×C rank grid backed by the simulated
// parallel file system, verifies the result against the serial reference,
// and writes the centre slice as a PNG.
//
// Example:
//
//	ifdk -nx 64 -np 64 -r 4 -c 2 -phantom shepplogan -o slice.png
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"ifdk/internal/core"
	"ifdk/internal/ct/fdk"
	"ifdk/internal/ct/filter"
	"ifdk/internal/ct/geometry"
	"ifdk/internal/ct/phantom"
	"ifdk/internal/ct/projector"
	"ifdk/internal/hpc/pfs"
	"ifdk/internal/volume"
)

func main() {
	nx := flag.Int("nx", 64, "output volume voxels per side")
	nu := flag.Int("nu", 0, "detector pixels per side (default 2·nx)")
	np := flag.Int("np", 0, "number of projections (default 2·nx)")
	r := flag.Int("r", 2, "grid rows R (sub-volume owners)")
	c := flag.Int("c", 2, "grid columns C (projection groups)")
	phantomName := flag.String("phantom", "shepplogan", "phantom: shepplogan|sphere|industrial")
	windowName := flag.String("window", "ram-lak", "ramp window: ram-lak|shepp-logan|cosine|hamming|hann")
	out := flag.String("o", "slice.png", "output PNG for the centre slice (\"\" = skip)")
	verify := flag.Bool("verify", true, "compare against the serial reference pipeline")
	flag.Parse()

	if err := run(*nx, *nu, *np, *r, *c, *phantomName, *windowName, *out, *verify); err != nil {
		fmt.Fprintln(os.Stderr, "ifdk:", err)
		os.Exit(1)
	}
}

func run(nx, nu, np, r, c int, phantomName, windowName, out string, verify bool) error {
	if nu == 0 {
		nu = 2 * nx
	}
	if np == 0 {
		np = 2 * nx
	}
	g := geometry.Default(nu, nu, np, nx, nx, nx)
	ph, err := pickPhantom(phantomName, g)
	if err != nil {
		return err
	}
	win, err := pickWindow(windowName)
	if err != nil {
		return err
	}

	fmt.Printf("problem: %dx%dx%d -> %dx%dx%d on a %dx%d grid (%d ranks)\n",
		g.Nu, g.Nv, g.Np, g.Nx, g.Ny, g.Nz, r, c, r*c)
	fmt.Print("generating projections... ")
	start := time.Now()
	proj := projector.AnalyticAll(ph, g, 0)
	fmt.Printf("%.2fs\n", time.Since(start).Seconds())

	store := pfs.New(pfs.Config{})
	if err := core.StageProjections(store, "in", proj); err != nil {
		return err
	}
	fmt.Print("running iFDK... ")
	start = time.Now()
	res, err := core.Run(core.Config{
		R: r, C: c,
		Geometry:       g,
		Window:         win,
		InputPrefix:    "in",
		OutputPrefix:   "out",
		AssembleVolume: true,
	}, store)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	pr := geometry.Problem{Nu: g.Nu, Nv: g.Nv, Np: g.Np, Nx: g.Nx, Ny: g.Ny, Nz: g.Nz}
	fmt.Printf("%.2fs (%.3f GUPS)\n", elapsed.Seconds(), pr.GUPS(elapsed.Seconds()))
	m := res.Max
	fmt.Printf("stages (max over ranks): load %.3fs filter %.3fs allgather %.3fs bp %.3fs "+
		"compute %.3fs reduce %.3fs store %.3fs  δ=%.2f\n",
		m.Load.Seconds(), m.Filter.Seconds(), m.AllGather.Seconds(), m.Backproject.Seconds(),
		m.Compute.Seconds(), m.Reduce.Seconds(), m.Store.Seconds(), m.Delta())

	if verify {
		serial, err := fdk.Reconstruct(g, proj, fdk.Config{Window: win})
		if err != nil {
			return err
		}
		rmse, err := volume.RMSE(serial, res.Volume)
		if err != nil {
			return err
		}
		s := serial.Summarize()
		scale := math.Max(math.Abs(float64(s.Min)), math.Abs(float64(s.Max)))
		fmt.Printf("verification: relative RMSE vs serial = %.2e (paper bound: 1e-5)\n", rmse/scale)
	}
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := res.Volume.SliceZ(g.Nz/2).WritePNG(f, 0, 0); err != nil {
			return err
		}
		fmt.Printf("centre slice written to %s\n", out)
	}
	return nil
}

func pickPhantom(name string, g geometry.Params) (phantom.Phantom, error) {
	r := g.FOVRadius() * 0.9
	switch name {
	case "shepplogan":
		return phantom.SheppLogan3D(r), nil
	case "sphere":
		return phantom.UniformSphere(r*0.6, 1), nil
	case "industrial":
		return phantom.IndustrialBlock(r), nil
	default:
		return phantom.Phantom{}, fmt.Errorf("unknown phantom %q", name)
	}
}

func pickWindow(name string) (filter.Window, error) {
	for _, w := range []filter.Window{filter.RamLak, filter.SheppLogan, filter.Cosine, filter.Hamming, filter.Hann} {
		if w.String() == name {
			return w, nil
		}
	}
	return 0, fmt.Errorf("unknown window %q", name)
}
