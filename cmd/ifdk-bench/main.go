// Command ifdk-bench regenerates every table and figure of the paper's
// evaluation section from the simulated substrates (see DESIGN.md for the
// per-experiment index):
//
//	ifdk-bench table3          kernel characteristics (Table 3)
//	ifdk-bench table4          back-projection kernel GUPS (Table 4)
//	ifdk-bench table5          Tcompute breakdown and δ (Table 5)
//	ifdk-bench fig5a..fig5d    strong/weak scaling, 4K and 8K (Fig. 5)
//	ifdk-bench fig6            end-to-end GUPS (Fig. 6)
//	ifdk-bench fig7            volume-reduction demo (Fig. 7)
//	ifdk-bench ablate          CPU ablation of the Alg. 4 design choices
//	ifdk-bench all             everything above
package main

import (
	"flag"
	"fmt"
	"os"

	"ifdk/internal/bench"
	"ifdk/internal/gpusim"
	"ifdk/internal/perfmodel"
)

func main() {
	samples := flag.Int("samples", 256, "sampled warps per kernel estimate (higher = tighter)")
	fig7Scale := flag.Int("fig7-scale", 32, "voxels per side for the real fig7 run (multiple of 8)")
	ablNx := flag.Int("ablate-nx", 24, "volume side for the CPU ablation")
	ablNp := flag.Int("ablate-np", 16, "projections for the CPU ablation")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ifdk-bench [flags] {table3|table4|table5|fig5a|fig5b|fig5c|fig5d|fig6|fig7|ablate|all}\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	cmd := flag.Arg(0)
	if err := run(cmd, *samples, *fig7Scale, *ablNx, *ablNp); err != nil {
		fmt.Fprintln(os.Stderr, "ifdk-bench:", err)
		os.Exit(1)
	}
}

func run(cmd string, samples, fig7Scale, ablNx, ablNp int) error {
	mb := perfmodel.ABCI()
	est := gpusim.EstimateConfig{SampleWarps: samples}
	dev := gpusim.TeslaV100()
	all := cmd == "all"
	ran := false

	if all || cmd == "table3" {
		fmt.Println(bench.RenderTable3())
		ran = true
	}
	if all || cmd == "table4" {
		rows := bench.Table4(dev, est)
		fmt.Println(bench.RenderTable4(rows))
		s := bench.Speedup(rows)
		fmt.Printf("L1-Tran vs RTK-32 speedup: max %.2fx, mean %.2fx, mean(α≤8) %.2fx over %d rows\n",
			s.Max, s.Mean, s.MeanLowAlpha, s.Rows)
		fmt.Printf("(paper, Table 4/abstract: up to ≈1.6–1.8x in the low-α regime)\n\n")
		ran = true
	}
	if all || cmd == "table5" {
		points, err := bench.Table5(mb)
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderTable5(points))
		ran = true
	}
	figs := map[string]func() bench.Fig5Config{
		"fig5a": bench.Fig5a, "fig5b": bench.Fig5b, "fig5c": bench.Fig5c, "fig5d": bench.Fig5d,
	}
	for name, cfgFn := range figs {
		if all || cmd == name {
			cfg := cfgFn()
			points, err := bench.RunFig5(cfg, mb)
			if err != nil {
				return err
			}
			fmt.Println(bench.RenderFig5(cfg, points))
			ran = true
		}
	}
	if all || cmd == "fig6" {
		series, err := bench.Fig6(mb)
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderFig6(series))
		ran = true
	}
	if all || cmd == "fig7" {
		res, err := bench.Fig7(fig7Scale, mb)
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderFig7(res))
		ran = true
	}
	if all || cmd == "ablate" {
		rows, err := bench.Ablation(ablNx, ablNp, 1)
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderAblation(rows))
		ran = true
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", cmd)
	}
	return nil
}
