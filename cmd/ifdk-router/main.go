// Command ifdk-router fronts a fleet of ifdkd backends with one endpoint
// speaking the same versioned /v1 API as a single daemon. Jobs are placed
// by rendezvous-hashing their content cache key, so identical requests
// always land on the same backend and every node's result cache stays hot;
// SSE event streams and mid-run multipart slice streams proxy through
// unbuffered; /v1/metrics aggregates the whole fleet (GET /metrics serves
// the router's own Prometheus registry); trace context propagates through
// every submission; and a health loop reroutes every non-terminal job —
// queued or running — off dead backends by deterministic re-execution on a
// survivor, with live SSE/stream subscribers relayed across the takeover.
//
//	ifdkd -addr :8081 -node b0 &
//	ifdkd -addr :8082 -node b1 &
//	ifdk-router -addr :8080 -backends b0=http://localhost:8081,b1=http://localhost:8082
//
// Clients point pkg/client (or curl) at the router exactly as they would at
// one ifdkd. Run each backend with a distinct -node so job IDs are globally
// unique across the fleet.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	_ "net/http/pprof"

	"ifdk/internal/obs"
	"ifdk/internal/router"
)

func parseBackends(s string) ([]router.Backend, error) {
	if s == "" {
		return nil, fmt.Errorf("-backends is required (name=url,name=url,... or url,url,...)")
	}
	var out []router.Backend
	for i, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		name, u, ok := strings.Cut(item, "=")
		if !ok {
			name, u = fmt.Sprintf("b%d", i), item
		}
		out = append(out, router.Backend{Name: name, URL: strings.TrimRight(u, "/")})
	}
	return out, nil
}

func parseLevel(s string) (slog.Level, error) {
	var l slog.Level
	if err := l.UnmarshalText([]byte(s)); err != nil {
		return 0, fmt.Errorf("bad -log-level %q (want debug, info, warn or error)", s)
	}
	return l, nil
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	backends := flag.String("backends", "",
		"comma-separated backends, name=url pairs (bare urls get b0,b1,... names matching each ifdkd's -node)")
	healthEvery := flag.Duration("health-every", 500*time.Millisecond, "backend health probe period")
	deadAfter := flag.Int("dead-after", 2, "consecutive failed probes before a backend is dead")
	terminalTTL := flag.Duration("terminal-ttl", 10*time.Minute,
		"forget terminal job routes after this long (negative = only under route-table pressure)")
	failoverWait := flag.Duration("failover-wait", 30*time.Second,
		"how long relayed event/slice streams wait for a dead route to fail over before giving up")
	logJSON := flag.Bool("log-json", false, "emit logs as JSON records instead of text")
	logLevel := flag.String("log-level", "info", "minimum log level (debug, info, warn, error)")
	debugAddr := flag.String("debug-addr", "", "optional debug listen address serving net/http/pprof (off when empty)")
	flag.Parse()

	if err := run(*addr, *backends, *healthEvery, *deadAfter, *terminalTTL, *failoverWait, *logJSON, *logLevel, *debugAddr); err != nil {
		fmt.Fprintln(os.Stderr, "ifdk-router:", err)
		os.Exit(1)
	}
}

func run(addr, backendSpec string, healthEvery time.Duration, deadAfter int, terminalTTL, failoverWait time.Duration, logJSON bool, logLevel, debugAddr string) error {
	bs, err := parseBackends(backendSpec)
	if err != nil {
		return err
	}
	level, err := parseLevel(logLevel)
	if err != nil {
		return err
	}
	logger := obs.NewLogger(os.Stderr, obs.NewLoggerOptions{JSON: logJSON, Level: level}, "ifdk-router", "")

	rt, err := router.New(router.Options{
		Backends:     bs,
		HealthEvery:  healthEvery,
		DeadAfter:    deadAfter,
		TerminalTTL:  terminalTTL,
		FailoverWait: failoverWait,
		Logger:       logger,
	})
	if err != nil {
		return err
	}
	defer rt.Close()

	if debugAddr != "" {
		// pprof registers on http.DefaultServeMux via its import side effect;
		// serve it on a separate listener so profiling stays off the API port.
		go func() {
			logger.Info("pprof debug server listening", "addr", debugAddr)
			if err := http.ListenAndServe(debugAddr, nil); err != nil {
				logger.Error("pprof debug server failed", "err", err)
			}
		}()
	}

	srv := &http.Server{Addr: addr, Handler: rt}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Info("serving", "addr", addr, "backends", len(bs),
			"probe_every", healthEvery.String(), "dead_after", deadAfter)
		for _, b := range bs {
			logger.Info("backend registered", "backend", b.Name, "url", b.URL)
		}
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			errc <- err
		}
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	logger.Info("shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		logger.Warn("http shutdown", "err", err)
	}
	logger.Info("bye")
	return nil
}
